package faults

import (
	"reflect"
	"testing"

	"onepass/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"fail@2s:n1",
		"disk-slow@1s+5s:n2x8",
		"straggler@0s:n3x50,net-slow@4s:n0x10",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseFields(t *testing.T) {
	s, err := Parse("disk-slow@1.5+30:n2x4")
	if err != nil {
		t.Fatal(err)
	}
	want := Fault{Kind: DiskSlow, Node: 2, At: sim.Seconds(1.5), For: sim.Seconds(30), Factor: 4}
	if len(s.Faults) != 1 || s.Faults[0] != want {
		t.Fatalf("got %+v, want %+v", s.Faults, want)
	}
	// Factor defaults to 8 when omitted.
	s, err = Parse("straggler@0:n1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults[0].Factor != 8 {
		t.Errorf("default factor = %g, want 8", s.Faults[0].Factor)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"fail",              // no @
		"fail@2s",           // no target
		"melt@2s:n1",        // unknown kind
		"fail@2s:node1",     // bad target
		"fail@abc:n1",       // bad time
		"disk-slow@1s:n1xq", // bad factor
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Schedule{Faults: []Fault{
		{Kind: NodeFailure, Node: 1, At: sim.Seconds(2)},
		{Kind: DiskSlow, Node: 0, At: 0, Factor: 4},
	}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Faults: []Fault{{Kind: NodeFailure, Node: 9, At: 0}}},                        // node range
		{Faults: []Fault{{Kind: NodeFailure, Node: 0, At: -sim.Seconds(1)}}},          // negative time
		{Faults: []Fault{{Kind: Straggler, Node: 0, At: 0, Factor: 0.5}}},             // factor < 1
		{Faults: []Fault{{Kind: NodeFailure, Node: 0}, {Kind: NodeFailure, Node: 1}}}, // kills whole cluster
	}
	for i, s := range bad {
		if err := s.Validate(2); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestChaosDeterministicAndValid(t *testing.T) {
	a := Chaos(7, 10, sim.Seconds(60))
	b := Chaos(7, 10, sim.Seconds(60))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave different schedules:\n%v\n%v", a, b)
	}
	if err := a.Validate(10); err != nil {
		t.Fatalf("chaos schedule invalid: %v", err)
	}
	fails := 0
	for _, f := range a.Faults {
		if f.Kind.Terminal() {
			fails++
		}
		if f.At > sim.Seconds(60) {
			t.Errorf("fault at %v beyond horizon", f.At)
		}
	}
	if fails != 1 {
		t.Errorf("chaos schedule has %d failures, want exactly 1", fails)
	}
	if c := Chaos(8, 10, sim.Seconds(60)); reflect.DeepEqual(a, c) {
		t.Error("different seeds gave identical schedules")
	}
}
