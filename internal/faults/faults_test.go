package faults

import (
	"math"
	"reflect"
	"testing"

	"onepass/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"fail@2s:n1",
		"disk-slow@1s+5s:n2x8",
		"straggler@0s:n3x50,net-slow@4s:n0x10",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseFields(t *testing.T) {
	s, err := Parse("disk-slow@1.5+30:n2x4")
	if err != nil {
		t.Fatal(err)
	}
	want := Fault{Kind: DiskSlow, Node: 2, At: sim.Seconds(1.5), For: sim.Seconds(30), Factor: 4}
	if len(s.Faults) != 1 || s.Faults[0] != want {
		t.Fatalf("got %+v, want %+v", s.Faults, want)
	}
	// Factor defaults to 8 when omitted.
	s, err = Parse("straggler@0:n1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults[0].Factor != 8 {
		t.Errorf("default factor = %g, want 8", s.Faults[0].Factor)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"fail",              // no @
		"fail@2s",           // no target
		"melt@2s:n1",        // unknown kind
		"fail@2s:node1",     // bad target
		"fail@abc:n1",       // bad time
		"disk-slow@1s:n1xq", // bad factor
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Schedule{Faults: []Fault{
		{Kind: NodeFailure, Node: 1, At: sim.Seconds(2)},
		{Kind: DiskSlow, Node: 0, At: 0, Factor: 4},
	}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Faults: []Fault{{Kind: NodeFailure, Node: 9, At: 0}}},                        // node range
		{Faults: []Fault{{Kind: NodeFailure, Node: 0, At: -sim.Seconds(1)}}},          // negative time
		{Faults: []Fault{{Kind: Straggler, Node: 0, At: 0, Factor: 0.5}}},             // factor < 1
		{Faults: []Fault{{Kind: NodeFailure, Node: 0}, {Kind: NodeFailure, Node: 1}}}, // kills whole cluster
	}
	for i, s := range bad {
		if err := s.Validate(2); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

// TestScheduleStringParseRoundTrip is the property test in the structural
// direction: for generated schedules s, Parse(s.String()) must reproduce s
// field for field. Chaos draws injection times as raw nanosecond values, so
// this pins both the %g seconds rendering (full float precision) and the
// round-to-nearest-ns reparse — truncation loses 1 ns — and the
// terminal-fault factor (String omits it, so Parse must not default it to 8
// for fail faults).
func TestScheduleStringParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := Chaos(seed, 10, sim.Seconds(97.3))
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, s.String(), err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("seed %d: round trip broke:\n  in:  %+v\n  out: %+v\n  via %q",
				seed, s, got, s.String())
		}
	}
	// Hand-built schedules exercising the grammar corners Chaos never emits:
	// fractional windows, factor 1, and sub-second times.
	hand := Schedule{Faults: []Fault{
		{Kind: NodeFailure, Node: 3, At: sim.Millisecond * 7},
		{Kind: DiskSlow, Node: 0, At: sim.Seconds(0.25), For: sim.Seconds(1.125), Factor: 1},
		{Kind: Straggler, Node: 9, At: 0, Factor: 2.5},
	}}
	got, err := Parse(hand.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", hand.String(), err)
	}
	if !reflect.DeepEqual(got, hand) {
		t.Fatalf("hand-built round trip broke:\n  in:  %+v\n  out: %+v", hand, got)
	}
}

func TestValidateRejectsNonFiniteAndNegativeWindow(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	bad := []Schedule{
		{Faults: []Fault{{Kind: DiskSlow, Node: 0, Factor: nan}}},                                                    // NaN factor
		{Faults: []Fault{{Kind: NetDegrade, Node: 0, Factor: inf}}},                                                  // +Inf factor
		{Faults: []Fault{{Kind: Straggler, Node: 0, Factor: math.Inf(-1)}}},                                          // -Inf factor
		{Faults: []Fault{{Kind: DiskSlow, Node: 0, Factor: 4, For: -sim.Seconds(1)}}},                                // negative window
		{Faults: []Fault{{Kind: NodeFailure, Node: 0, For: -sim.Millisecond}, {Kind: DiskSlow, Node: 1, Factor: 2}}}, // negative window, terminal
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Errorf("bad schedule %d accepted: %+v", i, s.Faults)
		}
	}
	// The spelled-out case from the issue: NaN < 1 is false, so the old check
	// let this through.
	if s, err := Parse("disk-slow@1s:n0xNaN"); err == nil {
		if verr := s.Validate(4); verr == nil {
			t.Error("disk-slow@1s:n0xNaN validated — non-finite factor accepted")
		}
	}
}

func TestParseRejectsNonFiniteTimes(t *testing.T) {
	for _, spec := range []string{
		"fail@NaN:n1",
		"fail@Inf:n1",
		"disk-slow@1s+NaNs:n0x2",
		"disk-slow@1s+Infs:n0x2",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error for non-finite time", spec)
		}
	}
}

func TestChaosDeterministicAndValid(t *testing.T) {
	a := Chaos(7, 10, sim.Seconds(60))
	b := Chaos(7, 10, sim.Seconds(60))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave different schedules:\n%v\n%v", a, b)
	}
	if err := a.Validate(10); err != nil {
		t.Fatalf("chaos schedule invalid: %v", err)
	}
	fails := 0
	for _, f := range a.Faults {
		if f.Kind.Terminal() {
			fails++
		}
		if f.At > sim.Seconds(60) {
			t.Errorf("fault at %v beyond horizon", f.At)
		}
	}
	if fails != 1 {
		t.Errorf("chaos schedule has %d failures, want exactly 1", fails)
	}
	if c := Chaos(8, 10, sim.Seconds(60)); reflect.DeepEqual(a, c) {
		t.Error("different seeds gave identical schedules")
	}
}
