// Package faults defines the deterministic fault schedules every engine
// honors: which node degrades or dies, when, and for how long. The paper's
// case for persisting map output at all is fault tolerance (§III.B.2), and
// its HOP discussion (§III.D) calls out push shuffle as trading recovery
// away — so fault injection is an engine-level concern, not a Hadoop-only
// test knob. A Schedule is pure data: engine.Runtime installs it, the
// simulated substrate applies it, and because everything downstream of the
// virtual clock is deterministic, the same schedule (or the same chaos
// seed) reproduces the same run byte for byte.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"onepass/internal/sim"
)

// Kind classifies a fault.
type Kind int

// Fault kinds. NodeFailure is terminal (the machine is lost between tasks:
// it takes no new work, its NIC stops delivering, and its persisted scratch
// data is gone). The other three are degradations over a window: they end
// when the window closes or the job finishes.
const (
	// NodeFailure kills the node at At.
	NodeFailure Kind = iota
	// DiskSlow scales the node's disk service times by Factor over the
	// window — a failing spindle or a saturated shared volume.
	DiskSlow
	// NetDegrade scales transfer times through the node's NIC by Factor
	// over the window — a renegotiated link or an oversubscribed uplink.
	NetDegrade
	// Straggler scales the node's CPU time by Factor over the window — the
	// classic slow-node case speculative execution targets.
	Straggler
)

var kindNames = map[Kind]string{
	NodeFailure: "fail",
	DiskSlow:    "disk-slow",
	NetDegrade:  "net-slow",
	Straggler:   "straggler",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Terminal reports whether the fault permanently removes the node (no
// restore when the window ends).
func (k Kind) Terminal() bool { return k == NodeFailure }

// Fault is one scheduled fault against one node.
type Fault struct {
	Kind Kind
	// Node is the target node id.
	Node int
	// At is when the fault strikes, relative to job start.
	At sim.Duration
	// For is the degradation window; zero means until the job ends.
	// Ignored for NodeFailure (dead stays dead).
	For sim.Duration
	// Factor is the slowdown multiplier for degradations (>= 1). Ignored
	// for NodeFailure.
	Factor float64
}

// String renders the fault in the Parse grammar.
func (f Fault) String() string {
	s := fmt.Sprintf("%s@%gs", f.Kind, f.At.Seconds())
	if f.For > 0 && !f.Kind.Terminal() {
		s += fmt.Sprintf("+%gs", f.For.Seconds())
	}
	s += fmt.Sprintf(":n%d", f.Node)
	if !f.Kind.Terminal() && f.Factor > 0 {
		s += fmt.Sprintf("x%g", f.Factor)
	}
	return s
}

// Schedule is an ordered set of faults for one job run.
type Schedule struct {
	Faults []Fault
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Faults) == 0 }

// String renders the schedule in the Parse grammar (comma-separated).
func (s Schedule) String() string {
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Validate checks every fault against a cluster of n nodes.
func (s Schedule) Validate(nodes int) error {
	fails := 0
	for _, f := range s.Faults {
		if _, ok := kindNames[f.Kind]; !ok {
			return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
		}
		if f.Node < 0 || f.Node >= nodes {
			return fmt.Errorf("faults: node %d out of range [0,%d)", f.Node, nodes)
		}
		if f.At < 0 {
			return fmt.Errorf("faults: negative injection time %v", f.At)
		}
		if f.For < 0 {
			return fmt.Errorf("faults: negative window %v", f.For)
		}
		// NaN compares false against everything, so "NaN < 1" would let a
		// non-finite factor through; require factor >= 1 AND finite.
		if !f.Kind.Terminal() && (!(f.Factor >= 1) || math.IsInf(f.Factor, 0)) {
			return fmt.Errorf("faults: %s needs a finite factor >= 1, got %g", f.Kind, f.Factor)
		}
		if f.Kind.Terminal() {
			fails++
		}
	}
	if fails >= nodes {
		return fmt.Errorf("faults: schedule kills all %d nodes", nodes)
	}
	return nil
}

// Parse reads a comma-separated schedule in the grammar
//
//	kind@T[+W]:nN[xF]
//
// where kind is fail | disk-slow | net-slow | straggler, T is the injection
// time in seconds (suffix "s" optional), +W an optional window length, nN
// the target node, and xF the slowdown factor for degradations (default 8).
// Examples:
//
//	fail@2s:n1
//	disk-slow@1s+5s:n2x8
//	straggler@0s:n3x50,net-slow@4s:n0x10
func Parse(spec string) (Schedule, error) {
	var s Schedule
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		f, err := parseOne(tok)
		if err != nil {
			return Schedule{}, err
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

func parseOne(tok string) (Fault, error) {
	name, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return Fault{}, fmt.Errorf("faults: %q: want kind@time:nNODE", tok)
	}
	var f Fault
	found := false
	for k, n := range kindNames {
		if n == name {
			f.Kind, found = k, true
			break
		}
	}
	if !found {
		return Fault{}, fmt.Errorf("faults: unknown kind %q (want fail|disk-slow|net-slow|straggler)", name)
	}
	when, target, ok := strings.Cut(rest, ":")
	if !ok {
		return Fault{}, fmt.Errorf("faults: %q: missing :nNODE target", tok)
	}
	at, window, hasWindow := strings.Cut(when, "+")
	atSec, err := parseSeconds(at)
	if err != nil {
		return Fault{}, fmt.Errorf("faults: %q: bad time %q: %v", tok, at, err)
	}
	f.At = roundSeconds(atSec)
	if hasWindow {
		wSec, err := parseSeconds(window)
		if err != nil {
			return Fault{}, fmt.Errorf("faults: %q: bad window %q: %v", tok, window, err)
		}
		f.For = roundSeconds(wSec)
	}
	node, factor, hasFactor := strings.Cut(target, "x")
	if !strings.HasPrefix(node, "n") {
		return Fault{}, fmt.Errorf("faults: %q: target %q must be nNODE", tok, node)
	}
	if f.Node, err = strconv.Atoi(node[1:]); err != nil {
		return Fault{}, fmt.Errorf("faults: %q: bad node %q", tok, node)
	}
	if !f.Kind.Terminal() {
		// Degradations default to 8x; terminal faults keep Factor 0 (String
		// omits it, so the default would break Parse/String round-trips).
		f.Factor = 8
	}
	if hasFactor {
		if f.Factor, err = strconv.ParseFloat(factor, 64); err != nil {
			return Fault{}, fmt.Errorf("faults: %q: bad factor %q", tok, factor)
		}
	}
	return f, nil
}

// roundSeconds converts seconds to a Duration rounding to the nearest
// nanosecond. String renders times as %g seconds, which is exact for the
// float64 value but a hair off the integer nanosecond it came from;
// truncation (sim.Seconds) would then shift a reparsed schedule by 1 ns and
// break Parse(s.String()) == s.
func roundSeconds(v float64) sim.Duration {
	return sim.Duration(math.Round(v * float64(sim.Second)))
}

func parseSeconds(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite seconds %q", s)
	}
	return v, nil
}

// Chaos generates a seeded random schedule over a run expected to last
// about horizon: one node failure plus a handful of degradations, all
// timed within the horizon's first two thirds so they land while work is
// in flight. The same (seed, nodes, horizon) always yields the same
// schedule — chaos here means adversarial, not irreproducible.
func Chaos(seed int64, nodes int, horizon sim.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	span := float64(horizon) * 2 / 3
	at := func() sim.Duration { return sim.Duration(rng.Float64() * span) }
	var s Schedule
	// Exactly one failure: chaos schedules must stay survivable, and the
	// recovery machinery tolerates one lost replica set by construction.
	s.Faults = append(s.Faults, Fault{Kind: NodeFailure, Node: rng.Intn(nodes), At: at()})
	degrade := []Kind{DiskSlow, NetDegrade, Straggler}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		s.Faults = append(s.Faults, Fault{
			Kind:   degrade[rng.Intn(len(degrade))],
			Node:   rng.Intn(nodes),
			At:     at(),
			For:    sim.Duration(float64(horizon) / 6),
			Factor: float64(2 + rng.Intn(15)),
		})
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].At < s.Faults[j].At })
	return s
}
