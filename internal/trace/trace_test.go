package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"onepass/internal/sim"
)

func sampleLog() *Log {
	l := NewLog()
	l.Emit(Event{At: 0, Type: TaskStart, Name: "map", Engine: "hadoop", Node: 0, Task: 0})
	l.Emit(Event{At: 1500, Type: CombineFlush, Name: "combine", Engine: "hadoop", Node: 0, Task: 0,
		Args: []Arg{Num("pairs", 12)}})
	l.Emit(Event{At: 2000, Type: TaskFinish, Name: "map", Engine: "hadoop", Node: 0, Task: 0})
	l.Emit(Event{At: 2000, Type: ShuffleTransfer, Name: "shuffle", Engine: "hadoop", Node: 1, Task: 0,
		Args: []Arg{Str("mode", "pull"), Num("bytes", 4096)}})
	l.Emit(Event{At: 2500, Type: TaskStart, Name: "reduce", Engine: "hadoop", Node: 1, Task: 0})
	l.Emit(Event{At: 3000, Type: Spill, Name: "reduce-spill", Engine: "hadoop", Node: 1, Task: 0,
		Args: []Arg{Num("bytes", 1<<20)}})
	l.Emit(Event{At: 4000, Type: TaskFinish, Name: "reduce", Engine: "hadoop", Node: 1, Task: 0})
	return l
}

func TestLogRecordsInOrder(t *testing.T) {
	l := sampleLog()
	if l.Len() != 7 {
		t.Fatalf("Len = %d, want 7", l.Len())
	}
	evs := l.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
	names := l.Names()
	want := []string{"map", "combine", "shuffle", "reduce", "reduce-spill"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	counts := l.CountByType()
	if counts[TaskStart] != 2 || counts[TaskFinish] != 2 || counts[Spill] != 1 {
		t.Fatalf("CountByType = %v", counts)
	}
}

func TestTypeSpan(t *testing.T) {
	for _, tc := range []struct {
		typ          Type
		isSpan, open bool
	}{
		{TaskStart, true, true},
		{TaskFinish, true, false},
		{PhaseStart, true, true},
		{PhaseEnd, true, false},
		{Spill, false, false},
		{EarlyAnswer, false, false},
	} {
		isSpan, open := tc.typ.Span()
		if isSpan != tc.isSpan || open != tc.open {
			t.Errorf("%s.Span() = %v,%v want %v,%v", tc.typ, isSpan, open, tc.isSpan, tc.open)
		}
	}
}

func TestTrackSeparatesMapAndReduce(t *testing.T) {
	mapEv := Event{Type: TaskStart, Name: "map", Node: 0, Task: 3}
	redEv := Event{Type: TaskStart, Name: "reduce", Node: 0, Task: 3}
	mt, ml := trackOf(mapEv)
	rt, rl := trackOf(redEv)
	if mt == rt {
		t.Fatalf("map and reduce task 3 share track %d", mt)
	}
	if !strings.HasPrefix(ml, "map-") || !strings.HasPrefix(rl, "reduce-") {
		t.Fatalf("labels %q / %q", ml, rl)
	}
	// Map-side internals ride the map track even without a "map" span name.
	push := Event{Type: ShuffleTransfer, Name: "shuffle", Node: 0, Task: 3,
		Args: []Arg{Str("mode", "push")}}
	pt, _ := trackOf(push)
	if pt != mt {
		t.Fatalf("push transfer track %d, want map track %d", pt, mt)
	}
	nodeEv := Event{Type: Fault, Node: 2, Task: -1}
	if nt, nl := trackOf(nodeEv); nt != 0 || nl != "node" {
		t.Fatalf("node event track = %d %q", nt, nl)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	var sawMeta, sawBegin, sawEnd, sawInstant bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			sawMeta = true
			continue
		case "B":
			sawBegin = true
		case "E":
			sawEnd = true
		case "i":
			sawInstant = true
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant scope = %q, want t", s)
			}
		}
		args, ok := ev["args"].(map[string]interface{})
		if !ok {
			t.Fatalf("event missing args: %v", ev)
		}
		for _, k := range []string{"engine", "node", "task"} {
			if _, ok := args[k]; !ok {
				t.Fatalf("args missing %q: %v", k, ev)
			}
		}
	}
	if !sawMeta || !sawBegin || !sawEnd || !sawInstant {
		t.Fatalf("missing phases: %v", phases)
	}
	if phases["B"] != phases["E"] {
		t.Fatalf("unbalanced spans: %d B vs %d E", phases["B"], phases["E"])
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	l := sampleLog()
	if err := l.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated export differs")
	}
}

func TestFormatTS(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{0, "0"},
		{1000, "1"},
		{1500, "1.5"},
		{1234567, "1234.567"},
		{42, "0.042"},
	} {
		if got := formatTS(tc.ns); got != tc.want {
			t.Errorf("formatTS(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestFormatNum(t *testing.T) {
	if got := formatNum(4096); got != "4096" {
		t.Errorf("formatNum(4096) = %q", got)
	}
	if got := formatNum(0.25); got != "0.25" {
		t.Errorf("formatNum(0.25) = %q", got)
	}
}

func TestGantt(t *testing.T) {
	out := sampleLog().Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + map track on node 0 + reduce track on node 1.
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "map-0000") || !strings.Contains(lines[1], "█") {
		t.Fatalf("map row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "reduce-0000") || !strings.Contains(lines[2], "•") {
		t.Fatalf("reduce row missing spill mark: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := NewLog().Gantt(40); got != "(no events)\n" {
		t.Fatalf("empty gantt = %q", got)
	}
	l := NewLog()
	l.Emit(Event{At: sim.Time(0), Type: Fault, Node: 0, Task: -1})
	if got := l.Gantt(40); got != "(no events)\n" {
		t.Fatalf("zero-horizon gantt = %q", got)
	}
}
