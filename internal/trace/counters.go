package trace

import (
	"sort"

	"onepass/internal/sim"
)

// CounterPoint is one sample of a counter track.
type CounterPoint struct {
	At    sim.Time
	Value float64
}

// CounterTrack is a numeric time series rendered as a Perfetto counter
// track ("C" events) alongside the span timeline — cluster utilization,
// queue depths, in-flight work. Tracks are attached to a Log after the run
// (they usually derive from the sampled Result series or from the span
// events themselves), and export in attachment order with points in slice
// order, keeping the Chrome bytes deterministic.
type CounterTrack struct {
	Name   string
	Unit   string
	Points []CounterPoint
}

// AddCounterTrack attaches a counter track to the log's Chrome export.
// Tracks with no points are dropped.
func (l *Log) AddCounterTrack(t CounterTrack) {
	if len(t.Points) == 0 {
		return
	}
	l.counters = append(l.counters, t)
}

// CounterTracks returns the attached counter tracks in attachment order.
func (l *Log) CounterTracks() []CounterTrack { return l.counters }

// InFlightTrack derives a counter track from the log's own span events: how
// many spans named spanName (of the task or phase flavor picked by phase)
// were open at each transition instant. This is the "in-flight work" view —
// concurrent map tasks, reducers still shuffling — computed purely from the
// deterministic event sequence.
func (l *Log) InFlightTrack(name, spanName string, phase bool) CounterTrack {
	type delta struct {
		at sim.Time
		d  int
	}
	var deltas []delta
	for _, ev := range l.events {
		isSpan, opens := ev.Type.Span()
		if !isSpan || ev.Name != spanName {
			continue
		}
		if evPhase := ev.Type == PhaseStart || ev.Type == PhaseEnd; evPhase != phase {
			continue
		}
		if opens {
			deltas = append(deltas, delta{ev.At, 1})
		} else {
			deltas = append(deltas, delta{ev.At, -1})
		}
	}
	// Events are already in virtual-time order, but ends at the same instant
	// as starts must apply first so the counter never double-counts a
	// back-to-back handoff; stable-sort by time keeping -1 before +1.
	sort.SliceStable(deltas, func(i, j int) bool {
		if deltas[i].at != deltas[j].at {
			return deltas[i].at < deltas[j].at
		}
		return deltas[i].d < deltas[j].d
	})
	t := CounterTrack{Name: name, Unit: "tasks"}
	cur := 0
	for i, d := range deltas {
		cur += d.d
		// Collapse same-instant transitions into the final value.
		if i+1 < len(deltas) && deltas[i+1].at == d.at {
			continue
		}
		t.Points = append(t.Points, CounterPoint{At: d.at, Value: float64(cur)})
	}
	return t
}
