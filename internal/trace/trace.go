// Package trace is the structured run-tracing layer: a deterministic,
// virtual-time event log every engine feeds through a Sink threaded into
// engine.Runtime. Where metrics.Timeline records bare phase-name spans and
// metrics.Counters cluster-wide totals, a trace attributes every event to a
// node, task, attempt, and engine, with a typed key/value payload — the
// per-task drill-down behind the paper's Fig. 2/3 task timelines and the
// per-stage accounting that systems like i2MapReduce and M3R use to justify
// their wins. The log exports to Chrome trace-event JSON (loadable in
// ui.perfetto.dev) and to a plain-text Gantt chart for terminals.
//
// Determinism: events carry only virtual time and values derived from the
// simulation, are appended in simulation order (exactly one process runs at
// any instant), and the exporters iterate in recorded order with no map
// traversal — so the same spec and seed produce byte-identical traces.
package trace

import (
	"strconv"

	"onepass/internal/sim"
)

// Type classifies an event. Start/End pairs become spans in the exporters;
// everything else renders as an instant.
type Type string

// Event types. TaskStart/TaskFinish bracket whole tasks, PhaseStart/PhaseEnd
// bracket stages inside a task (shuffle, merge, finalize); the rest are
// engine internals the cluster-aggregate metrics cannot see.
const (
	TaskStart  Type = "task-start"
	TaskFinish Type = "task-finish"
	PhaseStart Type = "phase-start"
	PhaseEnd   Type = "phase-end"
	// Spill is intermediate data forced to disk: reducer spill runs,
	// hash-bucket flushes, HOP's backpressure stashes, push-shuffle
	// leftovers.
	Spill Type = "spill"
	// MergePass is one pass of blocking post-shuffle work: a sort-merge
	// multi-pass step or an external-hash bucket resolution.
	MergePass Type = "merge-pass"
	// ShuffleTransfer is one map→reduce data movement (push or pull).
	ShuffleTransfer Type = "shuffle-transfer"
	// CombineFlush is a map-side combiner table flushing its states.
	CombineFlush Type = "combine-flush"
	// HotKeyEvict is the hot-key engine shedding cold states to disk.
	HotKeyEvict Type = "hotkey-evict"
	// EarlyAnswer is output produced before job completion: HOP snapshots,
	// hot-key approximate emissions, threshold-query emits.
	EarlyAnswer Type = "early-answer"
	// OutputWrite is the synchronous map-output persistence (§III.B.2).
	OutputWrite Type = "output-write"
	// FirstOutput marks the job's first output pair — the incremental
	// latency metric.
	FirstOutput Type = "first-output"
	// Fault is an injected node failure, or the recovery work it triggers
	// (map re-execution).
	Fault Type = "fault"
)

// Span reports whether the type is a Start/End pair member, and whether it
// opens a span.
func (t Type) Span() (isSpan, opens bool) {
	switch t {
	case TaskStart, PhaseStart:
		return true, true
	case TaskFinish, PhaseEnd:
		return true, false
	}
	return false, false
}

// Arg is one ordered key/value payload entry. Values are either numeric or
// string; ordered slices (not maps) keep encoding deterministic.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsStr bool
}

// Num returns a numeric argument.
func Num(key string, v float64) Arg { return Arg{Key: key, Num: v} }

// Str returns a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Event is one attributed occurrence in a run.
type Event struct {
	// At is the virtual instant of the event.
	At sim.Time
	// Type classifies it; Name labels it within the type (the span name for
	// Start/End pairs: "map", "reduce", "shuffle", "merge", ...).
	Type Type
	Name string
	// Engine is the engine that emitted it (stamped by engine.Runtime).
	Engine string
	// Node, Task, Attempt attribute the event; -1 means not applicable
	// (Attempt 0 means first/only attempt).
	Node    int
	Task    int
	Attempt int
	// Args is the ordered key/value payload.
	Args []Arg
}

// Sink receives events as they happen. Implementations need no locking: the
// simulator runs exactly one process at any instant, so emissions are
// serialized by construction.
type Sink interface {
	Emit(ev Event)
}

// Log is the standard Sink: an in-order event buffer with exporters, plus
// any counter tracks attached after the run (AddCounterTrack).
type Log struct {
	events   []Event
	counters []CounterTrack
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Emit appends one event.
func (l *Log) Emit(ev Event) { l.events = append(l.events, ev) }

// Events returns the recorded events in emission order.
func (l *Log) Events() []Event { return l.events }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Names returns the distinct event names in first-seen order; unnamed events
// contribute their type.
func (l *Log) Names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range l.events {
		n := ev.Name
		if n == "" {
			n = string(ev.Type)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// CountByType returns how many events of each type were recorded.
func (l *Log) CountByType() map[Type]int {
	out := make(map[Type]int)
	for _, ev := range l.events {
		out[ev.Type]++
	}
	return out
}

// trackOf derives the stable per-task track an event renders on: tasks get
// one track each (disambiguated by name so map task 3 and reduce task 3
// differ), node-scoped events share the node's own track.
func trackOf(ev Event) (id int64, label string) {
	switch {
	case ev.Task >= 0 && (ev.Name == "map" || spanRootIsMap(ev)):
		return 1_000_000 + int64(ev.Task), "map-" + pad(ev.Task, 4)
	case ev.Task >= 0:
		return 2_000_000 + int64(ev.Task), "reduce-" + pad(ev.Task, 4)
	default:
		return 0, "node"
	}
}

// spanRootIsMap reports whether the event belongs to the map side: map tasks
// and their internals (output writes, combine flushes, push transfers) carry
// map-task ids, which would collide with reducer ids on one track space.
func spanRootIsMap(ev Event) bool {
	switch ev.Type {
	case OutputWrite, CombineFlush:
		return true
	case ShuffleTransfer:
		// Pushes are emitted by the mapper (task = map task); pulls by the
		// reducer (task = reducer).
		for _, a := range ev.Args {
			if a.Key == "mode" {
				return a.Str == "push"
			}
		}
	case Spill:
		return ev.Name == "map-stash" || ev.Name == "leftover"
	}
	return false
}

func pad(n, width int) string {
	s := strconv.Itoa(n)
	for len(s) < width {
		s = "0" + s
	}
	return s
}
