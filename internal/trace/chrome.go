package trace

import (
	"io"
	"strconv"
	"strings"
)

// WriteChrome exports the log in Chrome trace-event JSON (the format
// chrome://tracing and ui.perfetto.dev load): one process per node, one
// thread track per task, "B"/"E" duration pairs for Start/End events and
// thread-scoped instants for everything else. Virtual nanoseconds map to the
// format's microsecond timestamps.
//
// The encoding is hand-rolled in recorded order with ordered args, so the
// bytes are a pure function of the event sequence — the property the golden
// determinism test pins.
func (l *Log) WriteChrome(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}

	// Metadata: name each process (node) and thread (task track) in
	// first-seen order.
	seenPid := make(map[int]bool)
	type pidTid struct {
		pid int
		tid int64
	}
	seenTid := make(map[pidTid]bool)
	for _, ev := range l.events {
		if !seenPid[ev.Node] {
			seenPid[ev.Node] = true
			emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + strconv.Itoa(ev.Node) +
				",\"args\":{\"name\":" + strconv.Quote("node "+strconv.Itoa(ev.Node)) + "}}")
		}
		tid, label := trackOf(ev)
		if pt := (pidTid{ev.Node, tid}); !seenTid[pt] {
			seenTid[pt] = true
			emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + strconv.Itoa(ev.Node) +
				",\"tid\":" + strconv.FormatInt(tid, 10) +
				",\"args\":{\"name\":" + strconv.Quote(label) + "}}")
		}
	}

	for _, ev := range l.events {
		emit(chromeEvent(ev))
	}

	// Counter tracks render as "C" events under their own synthetic process
	// so Perfetto groups them away from the node/task span tracks.
	if len(l.counters) > 0 {
		emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + strconv.Itoa(counterPid) +
			",\"args\":{\"name\":\"counters\"}}")
		for _, ct := range l.counters {
			for _, pt := range ct.Points {
				emit("{\"name\":" + strconv.Quote(ct.Name) +
					",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":" + formatTS(int64(pt.At)) +
					",\"pid\":" + strconv.Itoa(counterPid) +
					",\"args\":{\"value\":" + formatNum(pt.Value) + "}}")
			}
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// counterPid is the synthetic process id counter tracks render under —
// far above any node id so it cannot collide.
const counterPid = 1 << 20

func chromeEvent(ev Event) string {
	name := ev.Name
	if name == "" {
		name = string(ev.Type)
	}
	ph := "i"
	if isSpan, opens := ev.Type.Span(); isSpan {
		if opens {
			ph = "B"
		} else {
			ph = "E"
		}
	}
	tid, _ := trackOf(ev)

	var b strings.Builder
	b.WriteString("{\"name\":")
	b.WriteString(strconv.Quote(name))
	b.WriteString(",\"cat\":")
	b.WriteString(strconv.Quote(string(ev.Type)))
	b.WriteString(",\"ph\":\"")
	b.WriteString(ph)
	b.WriteString("\",\"ts\":")
	b.WriteString(formatTS(int64(ev.At)))
	if ph == "i" {
		b.WriteString(",\"s\":\"t\"")
	}
	b.WriteString(",\"pid\":")
	b.WriteString(strconv.Itoa(ev.Node))
	b.WriteString(",\"tid\":")
	b.WriteString(strconv.FormatInt(tid, 10))
	b.WriteString(",\"args\":{")
	b.WriteString("\"engine\":")
	b.WriteString(strconv.Quote(ev.Engine))
	b.WriteString(",\"node\":")
	b.WriteString(strconv.Itoa(ev.Node))
	b.WriteString(",\"task\":")
	b.WriteString(strconv.Itoa(ev.Task))
	if ev.Attempt > 0 {
		b.WriteString(",\"attempt\":")
		b.WriteString(strconv.Itoa(ev.Attempt))
	}
	for _, a := range ev.Args {
		b.WriteString(",")
		b.WriteString(strconv.Quote(a.Key))
		b.WriteString(":")
		if a.IsStr {
			b.WriteString(strconv.Quote(a.Str))
		} else {
			b.WriteString(formatNum(a.Num))
		}
	}
	b.WriteString("}}")
	return b.String()
}

// formatTS renders virtual nanoseconds as the trace format's microseconds,
// keeping sub-microsecond precision without floating point: "1234.567".
func formatTS(ns int64) string {
	us, rem := ns/1000, ns%1000
	if rem == 0 {
		return strconv.FormatInt(us, 10)
	}
	s := strconv.FormatInt(rem, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return strconv.FormatInt(us, 10) + "." + strings.TrimRight(s, "0")
}

// formatNum renders a float argument deterministically (shortest round-trip
// form, as encoding/json does).
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
