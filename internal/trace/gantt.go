package trace

import (
	"fmt"
	"sort"
	"strings"

	"onepass/internal/sim"
)

// Gantt renders the trace as a terminal Gantt chart: one row per task track,
// grouped by node, a bar spanning each task's lifetime, and '•' marks where
// engine internals (spills, merge passes, evictions, early answers) hit that
// track — a textual Perfetto for quick looks at a run.
func (l *Log) Gantt(width int) string {
	if width <= 0 {
		width = 72
	}
	var horizon sim.Time
	for _, ev := range l.events {
		if ev.At > horizon {
			horizon = ev.At
		}
	}
	if horizon == 0 || len(l.events) == 0 {
		return "(no events)\n"
	}

	type rowKey struct {
		node int
		tid  int64
	}
	type span struct{ start, end sim.Time }
	type row struct {
		key    rowKey
		label  string
		spans  []span
		opens  []sim.Time
		marks  []sim.Time
		phases []span // phase-level sub-spans (shuffle, merge, ...)
	}
	rows := make(map[rowKey]*row)
	get := func(ev Event) *row {
		tid, label := trackOf(ev)
		k := rowKey{ev.Node, tid}
		r := rows[k]
		if r == nil {
			r = &row{key: k, label: fmt.Sprintf("n%-2d %s", ev.Node, label)}
			rows[k] = r
		}
		return r
	}
	for _, ev := range l.events {
		r := get(ev)
		switch ev.Type {
		case TaskStart:
			r.opens = append(r.opens, ev.At)
		case TaskFinish:
			if n := len(r.opens); n > 0 {
				r.spans = append(r.spans, span{r.opens[n-1], ev.At})
				r.opens = r.opens[:n-1]
			}
		case PhaseStart:
			r.phases = append(r.phases, span{ev.At, -1})
		case PhaseEnd:
			for i := len(r.phases) - 1; i >= 0; i-- {
				if r.phases[i].end < 0 {
					r.phases[i].end = ev.At
					break
				}
			}
		default:
			r.marks = append(r.marks, ev.At)
		}
	}

	ordered := make([]*row, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].key.node != ordered[j].key.node {
			return ordered[i].key.node < ordered[j].key.node
		}
		return ordered[i].key.tid < ordered[j].key.tid
	})

	col := func(t sim.Time) int {
		c := int(int64(t) * int64(width-1) / int64(horizon))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	labelW := 0
	for _, r := range ordered {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  0s%*s\n", labelW, "virtual time", width-2+len(horizon.String()), horizon)
	for _, r := range ordered {
		cells := make([]rune, width)
		for i := range cells {
			cells[i] = '·'
		}
		fill := func(s span, glyph rune) {
			if s.end < 0 {
				s.end = horizon
			}
			for c := col(s.start); c <= col(s.end); c++ {
				cells[c] = glyph
			}
		}
		for _, s := range r.spans {
			fill(s, '█')
		}
		for _, t := range r.opens { // never finished: draw to horizon
			fill(span{t, horizon}, '█')
		}
		for _, s := range r.phases {
			fill(s, '▒')
		}
		for _, t := range r.marks {
			cells[col(t)] = '•'
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, r.label, string(cells))
	}
	return b.String()
}
