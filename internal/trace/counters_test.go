package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"onepass/internal/sim"
)

func TestInFlightTrack(t *testing.T) {
	l := NewLog()
	// Two overlapping maps; map 1 ends exactly when map 2 starts (handoff).
	l.Emit(Event{At: 0, Type: TaskStart, Name: "map", Node: 0, Task: 0})
	l.Emit(Event{At: 1000, Type: TaskStart, Name: "map", Node: 1, Task: 1})
	l.Emit(Event{At: 2000, Type: TaskFinish, Name: "map", Node: 1, Task: 1})
	l.Emit(Event{At: 2000, Type: TaskStart, Name: "map", Node: 1, Task: 2})
	l.Emit(Event{At: 3000, Type: TaskFinish, Name: "map", Node: 0, Task: 0})
	l.Emit(Event{At: 4000, Type: TaskFinish, Name: "map", Node: 1, Task: 2})
	// A phase span with the same name must not leak into the task view.
	l.Emit(Event{At: 0, Type: PhaseStart, Name: "map", Node: 0, Task: 0})
	l.Emit(Event{At: 500, Type: PhaseEnd, Name: "map", Node: 0, Task: 0})

	tr := l.InFlightTrack("maps-in-flight", "map", false)
	want := []CounterPoint{
		{At: 0, Value: 1},
		{At: 1000, Value: 2},
		{At: 2000, Value: 2}, // handoff collapses to the final same-instant value
		{At: 3000, Value: 1},
		{At: 4000, Value: 0},
	}
	if len(tr.Points) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(tr.Points), len(want), tr.Points)
	}
	for i, w := range want {
		if tr.Points[i] != w {
			t.Errorf("point %d = %+v, want %+v", i, tr.Points[i], w)
		}
	}
}

func TestAddCounterTrackDropsEmpty(t *testing.T) {
	l := NewLog()
	l.AddCounterTrack(CounterTrack{Name: "empty"})
	if len(l.CounterTracks()) != 0 {
		t.Fatal("empty track retained")
	}
	l.AddCounterTrack(CounterTrack{Name: "ok", Points: []CounterPoint{{At: 0, Value: 1}}})
	if len(l.CounterTracks()) != 1 {
		t.Fatal("non-empty track dropped")
	}
}

func TestWriteChromeCounterEvents(t *testing.T) {
	l := sampleLog()
	l.AddCounterTrack(CounterTrack{Name: "cpu-util", Unit: "frac", Points: []CounterPoint{
		{At: 0, Value: 0.25},
		{At: sim.Time(2000), Value: 1},
	}})
	var buf bytes.Buffer
	if err := l.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var counters int
	var sawCounterProc bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		pid, _ := ev["pid"].(float64)
		if ph == "M" && int(pid) == counterPid {
			sawCounterProc = true
		}
		if ph != "C" {
			continue
		}
		counters++
		if int(pid) != counterPid {
			t.Errorf("counter event pid = %v, want %d", pid, counterPid)
		}
		if name, _ := ev["name"].(string); name != "cpu-util" {
			t.Errorf("counter name = %q", name)
		}
		args, _ := ev["args"].(map[string]interface{})
		if _, ok := args["value"]; !ok {
			t.Errorf("counter event missing args.value: %v", ev)
		}
	}
	if counters != 2 {
		t.Fatalf("got %d C events, want 2", counters)
	}
	if !sawCounterProc {
		t.Fatal("missing counters process_name metadata")
	}

	// Attaching tracks keeps the export deterministic.
	var again bytes.Buffer
	if err := l.WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("repeated export with counters differs")
	}
}
