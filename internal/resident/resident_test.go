package resident

import (
	"fmt"
	"testing"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/enginetest"
	"onepass/internal/faults"
	"onepass/internal/gen"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

func smallClicks() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	cfg.Users = 300
	cfg.URLs = 150
	return cfg
}

func run(t *testing.T, w *workloads.Workload, cfg enginetest.Config, opts Options) (*enginetest.Fixture, *engine.Result) {
	t.Helper()
	f := enginetest.New(t, w, cfg)
	res, err := Run(f.RT, f.Job, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestAllWorkloadsMatchReference(t *testing.T) {
	docs := gen.DefaultDocConfig()
	docs.Vocab = 400
	docs.WordsPerDoc = 60
	cases := []*workloads.Workload{
		workloads.Sessionization(smallClicks()),
		workloads.PageFrequency(smallClicks()),
		workloads.PerUserCount(smallClicks()),
		workloads.InvertedIndex(docs),
	}
	for _, w := range cases {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, res := run(t, w, enginetest.Config{}, Options{})
			f.CheckOutput(t, w, res)
			if res.Engine != "resident" {
				t.Fatalf("result labeled %q", res.Engine)
			}
		})
	}
}

// TestMonoidFoldingShrinksShuffle: with the monoid declared, map-side
// folding collapses per-key duplicates before the push, so fewer bytes
// cross the network than with the monoid stripped — and both runs must
// still produce the reference answer with identical checksums.
func TestMonoidFoldingShrinksShuffle(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	fOn, resOn := run(t, w, enginetest.Config{}, Options{})
	fOn.CheckOutput(t, w, resOn)

	w2 := workloads.PerUserCount(smallClicks())
	w2.Job.Monoid = nil
	fOff, resOff := run(t, w2, enginetest.Config{}, Options{})
	fOff.CheckOutput(t, w2, resOff)

	if resOn.OutputChecksum != resOff.OutputChecksum {
		t.Fatalf("monoid changed the answer: %016x vs %016x", resOn.OutputChecksum, resOff.OutputChecksum)
	}
	on := resOn.Counters.Get(engine.CtrShuffleBytes)
	off := resOff.Counters.Get(engine.CtrShuffleBytes)
	if on == 0 || off == 0 {
		t.Fatalf("nothing shuffled: on=%v off=%v", on, off)
	}
	if on >= off {
		t.Fatalf("map-side folding did not shrink the shuffle: %v >= %v", on, off)
	}
}

// TestNoScratchDiskTraffic: the engine's contract is an all-memory data
// path — no sort spills, no staged chunks, no intermediate files. Even
// under backpressure tight enough to make mappers wait, scratch devices
// must see zero data bytes.
func TestNoScratchDiskTraffic(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	f, res := run(t, w, enginetest.Config{Reducers: 2, MemPerTask: 4 << 10},
		Options{ChunkBytes: 2 << 10, BackpressureBytes: 4 << 10})
	f.CheckOutput(t, w, res)
	if spilled := res.Counters.Get(engine.CtrMapSpillBytes); spilled != 0 {
		t.Fatalf("map-side staged %v bytes to disk", spilled)
	}
	for _, n := range f.RT.Cluster.ComputeNodes() {
		if wr := n.ScratchDevice().BytesWritten(); wr != 0 {
			t.Fatalf("node %d scratch device wrote %v bytes", n.ID, wr)
		}
	}
}

func TestNodeFailureRepushesLostChunks(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	// Enough blocks that node 1 still has map tasks (and undelivered
	// chunks) in flight when it dies.
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 32 * 64 << 10})
	res, err := Run(f.RT, f.Job, Options{Faults: faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.NodeFailure, Node: 1, At: 20 * sim.Millisecond}}}})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrFaultsInjected) != 1 {
		t.Fatal("fault not injected")
	}
	if res.Counters.Get(engine.CtrTasksReexecuted) == 0 {
		t.Fatal("no lost map task was recovered")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var sums []uint64
	for i := 0; i < 2; i++ {
		w := workloads.PageFrequency(smallClicks())
		_, res := run(t, w, enginetest.Config{}, Options{ChunkBytes: 3 << 10})
		sums = append(sums, res.OutputChecksum)
	}
	if sums[0] != sums[1] {
		t.Fatalf("checksums differ across identical runs: %016x vs %016x", sums[0], sums[1])
	}
}

// identityJob re-emits a previous stage's (key, value) pairs unchanged:
// its output format equals its input format, so it chains onto itself
// indefinitely — the shape of an iterative computation's per-step job.
func identityJob(i int) engine.Job {
	return engine.Job{
		Name:   fmt.Sprintf("identity-%d", i),
		Reader: workloads.PairReader,
		Map: func(rec []byte, emit engine.Emit) {
			k, v, n := kv.DecodePair(rec)
			if n == 0 {
				return
			}
			emit(k, v)
		},
		Reduce: func(key []byte, vals [][]byte, emit engine.Emit) {
			for _, v := range vals {
				emit(key, v)
			}
		},
		Reducers: 4,
	}
}

// TestChainedIterationsReadNoDisk is the resident engine's reason to
// exist, as a regression test: after the first iteration reads the real
// input, every later iteration of a chained computation maps over the
// previous reduce output as memory-resident DFS blocks — the cluster-wide
// disk read counter must not move again, across the whole chain.
func TestChainedIterationsReadNoDisk(t *testing.T) {
	env := sim.New()
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 4
	ccfg.CoresPerNode = 2
	c := cluster.New(env, ccfg)
	d := dfs.New(c, 64<<10, 1)
	w := workloads.PageFrequency(smallClicks())
	if err := d.RegisterGenerated("input/clicks", 8*64<<10, w.Gen); err != nil {
		t.Fatal(err)
	}

	runStage := func(job engine.Job) *engine.Result {
		t.Helper()
		rt := engine.NewRuntime(env, c, d)
		res, err := Run(rt, job, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	stage0 := w.Job
	stage0.InputPath = "input/clicks"
	stage0.OutputPath = "iter-0"
	stage0.Reducers = 4
	base := runStage(stage0)
	if base.OutputPairs == 0 {
		t.Fatal("stage 0 produced no output")
	}
	afterStage0 := c.DiskBytesRead()
	if afterStage0 == 0 {
		t.Fatal("stage 0 read no disk bytes — input was not disk-resident")
	}

	var prev *engine.Result = base
	for i := 1; i <= 3; i++ {
		job := identityJob(i)
		job.InputPath = fmt.Sprintf("iter-%d", i-1)
		job.OutputPath = fmt.Sprintf("iter-%d", i)
		job.RetainOutput = true
		before := c.DiskBytesRead()
		res := runStage(job)
		if delta := c.DiskBytesRead() - before; delta != 0 {
			t.Fatalf("iteration %d read %v disk bytes; want 0 (resident hand-off missed)", i, delta)
		}
		if res.OutputPairs != prev.OutputPairs {
			t.Fatalf("iteration %d emitted %d pairs, previous stage %d", i, res.OutputPairs, prev.OutputPairs)
		}
		if res.OutputChecksum != prev.OutputChecksum {
			t.Fatalf("iteration %d checksum %016x != iteration %d's %016x",
				i, res.OutputChecksum, i-1, prev.OutputChecksum)
		}
		prev = res
	}
}
