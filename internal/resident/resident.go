// Package resident is the testbed's sixth engine: an M3R-style resident
// in-memory runtime (Shinnar et al., "M3R: Increased Performance for
// In-Memory Hadoop Jobs", VLDB 2012) layered over the same simulated
// substrate as the paper's five disk engines. Where the paper's engines pay
// the DFS on every hand-off, resident keeps reduce output alive in the
// reducer's memory and publishes it into the DFS namespace as
// memory-resident blocks (dfs.RegisterResident): iteration N+1 of a chained
// computation maps over iteration N's output with zero disk I/O, and —
// because reducer placement is partition-stable (engine.Runtime.ReducerNode)
// and map scheduling prefers local replicas — usually zero network too.
//
// The data path is push-only, modeled on the HOP engine's chunked shuffle
// but without any disk staging: map output is folded in memory (per-key
// aggregator states when the job declares a kv.Monoid or an explicit
// engine.Aggregator, raw pair lists otherwise), chunked, and pushed straight
// into the reducers' in-memory fold tables. Nothing is sorted and nothing is
// persisted; like M3R, the engine trades the fault-tolerance writes for
// speed and recovers from a lost node by re-running the deterministic map
// and re-pushing only the undelivered chunks under their original
// (task, seq) identities, exactly like the HOP recovery path.
//
// The engine assumes the working set fits in cluster memory — M3R's stated
// contract — so reduce-side tables never spill.
package resident

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/faults"
	"onepass/internal/hadoop"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// FrameworkNsPerRecord is the resident engine's per-record runtime
// overhead: below even the hash engine's byte-array runtime because a
// resident job skips per-job JVM setup and re-reads nothing — M3R's
// "increased performance" came largely from eliminating exactly this
// bookkeeping between the jobs of a chain.
const FrameworkNsPerRecord = 900

// Options tunes the engine.
type Options struct {
	// ChunkBytes is the push granularity: folded map output is serialized
	// and pushed in chunks of this size.
	ChunkBytes int64
	// BackpressureBytes bounds a reducer's inbound queue; a mapper whose
	// push is refused holds the chunk in memory and waits (no disk staging —
	// the resident engine never touches scratch disks for data).
	BackpressureBytes int64
	// Faults is the deterministic fault schedule to inject during the run.
	Faults faults.Schedule
}

func (o *Options) defaults() {
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 256 << 10
	}
	if o.BackpressureBytes == 0 {
		o.BackpressureBytes = 4 << 20
	}
}

// Run executes job on rt with the resident in-memory engine.
func Run(rt *engine.Runtime, job engine.Job, opts Options) (*engine.Result, error) {
	var res *engine.Result
	if err := Start(rt, job, opts, func(_ *sim.Proc, r *engine.Result) { res = r }); err != nil {
		return nil, err
	}
	rt.Env.Run()
	rt.FinishResult(res)
	return res, nil
}

// partSink is one reducer's in-memory output buffer, published to the DFS
// namespace after the reducer closes.
type partSink struct {
	node int
	data []byte
}

// Start launches job on rt without driving the simulation; see hadoop.Start
// for the contract. The controller invokes done at the job's completion
// instant, after lost-chunk recovery, JobDone, and StopSampling.
func Start(rt *engine.Runtime, job engine.Job, opts Options, done func(p *sim.Proc, res *engine.Result)) error {
	if err := job.Validate(); err != nil {
		return err
	}
	if job.Reduce == nil {
		return fmt.Errorf("resident: job %q has no reduce function", job.Name)
	}
	blocks, err := rt.InputBlocks(job.InputPath)
	if err != nil {
		return err
	}
	if len(blocks) == 0 {
		return fmt.Errorf("%s: input %q has no blocks (was a chained stage's output discarded?)", "resident", job.InputPath)
	}
	opts.defaults()
	if job.Costs.FrameworkNsPerRecord == 0 {
		job.Costs.FrameworkNsPerRecord = FrameworkNsPerRecord
	}
	costs := hadoop.JobCosts(&job)
	if costs.HashNs == 0 {
		costs.HashNs = engine.DefaultCosts().HashNs
	}
	if costs.UpdateNsPerRecord == 0 {
		costs.UpdateNsPerRecord = engine.DefaultCosts().UpdateNsPerRecord
	}
	res := &engine.Result{Job: job.Name, Engine: "resident"}
	rt.EngineLabel = "resident"
	oc := rt.NewOutputCollector(&job, res)
	// Reduce output lands in per-partition memory buffers instead of DFS
	// writers; the collector keeps the checksum, serialize charges, and
	// retained output identical to the disk path.
	sinks := make([]*partSink, job.Reducers)
	oc.NewSink = func(r, nodeID int) func(p *sim.Proc, data []byte) {
		s := &partSink{node: nodeID}
		sinks[r] = s
		if job.DiscardOutput {
			return func(*sim.Proc, []byte) {}
		}
		return func(_ *sim.Proc, data []byte) { s.data = append(s.data, data...) }
	}
	reg := rt.NewRegistry(len(blocks)) // progress signal + recovery bookkeeping
	channels := rt.NewPushChannels(job.Reducers, opts.BackpressureBytes)
	partition := hadoop.Partitioner()
	blockByTask := make(map[int]*dfs.Block, len(blocks))
	for _, b := range blocks {
		blockByTask[b.Index] = b
	}
	rt.InstallFaults(opts.Faults, reg.FailNode)

	rt.StartSampling()
	mapsWG := rt.RunMaps(&job, blocks, func(p *sim.Proc, node *cluster.Node, b *dfs.Block) {
		runMapTask(rt, p, node, &job, costs, b, partition, channels, &opts, reg)
	})
	redsWG := rt.RunReduces(&job, func(p *sim.Proc, node *cluster.Node, r int) {
		runReduceTask(rt, p, node, &job, costs, channels[r], oc, r, sinks)
	})
	rt.Env.Go("job-controller", func(p *sim.Proc) {
		mapsWG.Wait(p)
		// Degraded-mode recovery, exactly as in the HOP engine: a failed
		// node's undelivered chunks are regenerated by re-executing the map
		// on a surviving node and re-pushed under their original (task, seq)
		// identities; reducers suppress any duplicates.
		for i := 0; i < reg.Completed(); i++ {
			out := reg.Out(i)
			if !out.Lost {
				continue
			}
			fully := true
			for _, done := range out.Pushed {
				fully = fully && done
			}
			if fully {
				out.Lost = false
				continue
			}
			recoverMapTask(rt, p, &job, costs, blockByTask[out.TaskID], partition, channels, &opts, out)
			rt.Counters.Add(engine.CtrTasksReexecuted, 1)
			rt.Emit(trace.Fault, "map-repush", out.Node, out.TaskID, 0)
		}
		for _, pc := range channels {
			pc.Close()
		}
		redsWG.Wait(p)
		rt.JobDone()
		rt.StopSampling()
		done(p, res)
	})
	return nil
}

// jobAggregator picks the map/reduce-side aggregation for a job: an explicit
// engine.Aggregator when declared, the monoid-derived one when the job
// declares a kv.Monoid, and nil (raw value lists, Reduce at finalize) for
// holistic workloads — the same selection the hash engines make.
func jobAggregator(job *engine.Job) engine.Aggregator {
	if job.Agg != nil {
		return job.Agg
	}
	if job.Monoid != nil {
		return engine.MonoidAgg{M: job.Monoid}
	}
	return nil
}

// resChunk is one sealed, serialized chunk of (folded) map output awaiting
// push delivery under its (partition, seq) identity.
type resChunk struct {
	r, seq int
	enc    []byte
	// pairBytes is the chunk's key+val byte volume after map-side folding
	// (equal to the raw volume without an aggregator) — the unit of the
	// combine-conservation ledger.
	pairBytes int64
}

// buildChunks runs the map-side data path: with an aggregator, records are
// folded into per-partition insertion-ordered state tables and the tables'
// (key, state) pairs are chunked; without one, raw pairs are chunked in
// production order. Everything is deterministic in the block, so a recovery
// attempt regenerates byte-identical chunks under the same (partition, seq)
// identities. The fold and chunking are pure data work riding the map
// task's pooled closure; the hash/update charges land here after the join,
// and the caller charges serialization at each chunk's delivery point.
func buildChunks(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner,
	opts *Options) (chunks []resChunk, sealed []int, buf *kv.Buffer, folded bool) {

	tj := rt.TaskJob(job)
	tAgg := jobAggregator(tj)
	R := job.Reducers
	sealed = make([]int, R)
	cur := make([][]byte, R)
	curPairBytes := make([]int64, R)
	seal := func(r int) {
		if len(cur[r]) == 0 {
			return
		}
		chunks = append(chunks, resChunk{r: r, seq: sealed[r], enc: cur[r], pairBytes: curPairBytes[r]})
		sealed[r]++
		cur[r] = nil
		curPairBytes[r] = 0
	}
	addPair := func(r int, key, val []byte) {
		cur[r] = kv.AppendPair(cur[r], key, val)
		curPairBytes[r] += int64(len(key) + len(val))
		if int64(len(cur[r])) >= opts.ChunkBytes {
			seal(r)
		}
	}
	var n int
	buf, err := rt.ExecuteMapWith(p, node, tj, b, partition, func(buf *kv.Buffer) {
		if tAgg != nil {
			// Map-side folding: per-partition insertion-ordered hash tables
			// of aggregator states — the resident analogue of the hash
			// engines' map-side combining, lit up for every workload that
			// declares a monoid or aggregator.
			tables := make([]*mapTable, R)
			for r := range tables {
				tables[r] = newMapTable(tAgg)
			}
			n = buf.Len()
			for i := 0; i < n; i++ {
				tables[buf.Partition(i)].fold(buf.Key(i), buf.Val(i))
			}
			for r, tb := range tables {
				for i, k := range tb.keys {
					addPair(r, k, tb.states[i])
				}
			}
		} else {
			for i := 0; i < buf.Len(); i++ {
				addPair(buf.Partition(i), buf.Key(i), buf.Val(i))
			}
		}
		for r := 0; r < R; r++ {
			seal(r)
		}
	})
	if err != nil {
		panic(fmt.Sprintf("resident: %v", err))
	}
	if tAgg != nil {
		node.Compute(p, engine.Dur(float64(n), costs.HashNs), engine.PhaseHash)
		node.Compute(p, engine.Dur(float64(n), costs.UpdateNsPerRecord), engine.PhaseCombine)
		rt.Counters.Add(engine.CtrHashOps, float64(n))
	}
	return chunks, sealed, buf, tAgg != nil
}

// mapTable is the map side's insertion-ordered fold table: key order is the
// first-appearance order of keys in the block, so rebuilding the table on
// recovery reproduces chunk contents byte for byte.
type mapTable struct {
	agg    engine.Aggregator
	idx    map[string]int
	keys   [][]byte
	states [][]byte
}

func newMapTable(agg engine.Aggregator) *mapTable {
	return &mapTable{agg: agg, idx: make(map[string]int)}
}

func (t *mapTable) fold(key, val []byte) {
	if i, ok := t.idx[string(key)]; ok {
		t.states[i] = t.agg.Update(t.states[i], val)
		return
	}
	t.idx[string(key)] = len(t.keys)
	t.keys = append(t.keys, key)
	t.states = append(t.states, t.agg.Init(val))
}

// pushChunk delivers one chunk, holding it in memory and waiting when
// backpressure refuses the push (no disk staging — the whole point of the
// engine). It returns false if the node fails before delivery succeeds.
func pushChunk(rt *engine.Runtime, p *sim.Proc, node *cluster.Node,
	channels []*engine.PushChannel, c *resChunk, taskID int) bool {

	toNode := rt.ReducerNode(c.r).ID
	for !channels[c.r].TryPush(p, node.ID, toNode, taskID, c.seq, c.enc) {
		if node.Failed() {
			rt.Counters.Add("push.chunks.lost", 1)
			return false
		}
		channels[c.r].WaitSpace(p)
	}
	return true
}

// runMapTask maps a block, folds its output in memory, and pushes the
// result as chunks.
func runMapTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner,
	channels []*engine.PushChannel, opts *Options, reg *engine.Registry) {

	chunks, sealed, buf, folded := buildChunks(rt, p, node, job, costs, b, partition, opts)
	if rt.Auditing() {
		var finalPairBytes int64
		for i := range chunks {
			finalPairBytes += chunks[i].pairBytes
		}
		rt.Audit.MapFinalPairs(b.Index, finalPairBytes)
		if folded {
			rt.Audit.CombineSaved(b.Index, buf.Bytes()-finalPairBytes)
		}
	}
	delivered := make([]int, job.Reducers)
	for i := range chunks {
		c := &chunks[i]
		if node.Failed() {
			// Dead NIC: the chunk cannot leave the machine. The recovery
			// pass re-pushes it from a surviving node after the map wave.
			rt.Counters.Add("push.chunks.lost", 1)
			continue
		}
		node.Compute(p, engine.Dur(float64(len(c.enc)), costs.SerializeNsPerByte), engine.PhaseMapFn)
		if pushChunk(rt, p, node, channels, c, b.Index) {
			delivered[c.r] = c.seq + 1
		}
	}
	// Register completion (progress signal plus recovery bookkeeping); the
	// data itself lives only in the push stream, so the output carries no
	// bytes — just the zero-size progress marker.
	out := engine.NewMapOutput(p, node.ScratchStore(),
		fmt.Sprintf("%s/res-map-%05d/progress", job.Name, b.Index),
		b.Index, node.ID, job.Reducers, func(int) []byte { return nil })
	out.Delivered = delivered
	for r := range out.Pushed {
		out.Pushed[r] = delivered[r] == sealed[r]
	}
	reg.Complete(out)
}

// recoverMapTask re-executes a lost map task on a surviving node and pushes
// the chunks the dead node never delivered, under their original
// (task, seq) identities. If the recovery node itself dies mid-way, the
// loop moves to the next survivor, resuming from the updated delivery
// counts.
func recoverMapTask(rt *engine.Runtime, p *sim.Proc, job *engine.Job, costs engine.CostModel,
	b *dfs.Block, partition engine.Partitioner, channels []*engine.PushChannel,
	opts *Options, out *engine.MapOutput) {

	for attempt := 1; ; attempt++ {
		node := survivingNode(rt)
		// Span the recovery attempt like a real map task so the profiler's
		// span DAG stays connected through fault recovery.
		span := rt.Timeline.Begin(engine.SpanMap, p.Now())
		rt.Emit(trace.TaskStart, engine.SpanMap, node.ID, out.TaskID, attempt)
		chunks, _, _, _ := buildChunks(rt, p, node, job, costs, b, partition, opts)
		failedMid := false
		for i := range chunks {
			c := &chunks[i]
			if c.seq < out.Delivered[c.r] {
				continue
			}
			node.Compute(p, engine.Dur(float64(len(c.enc)), costs.SerializeNsPerByte), engine.PhaseMapFn)
			if !pushChunk(rt, p, node, channels, c, out.TaskID) {
				failedMid = true
				break
			}
			out.Delivered[c.r] = c.seq + 1
		}
		span.End(p.Now())
		rt.Emit(trace.TaskFinish, engine.SpanMap, node.ID, out.TaskID, attempt)
		if !failedMid {
			for r := range out.Pushed {
				out.Pushed[r] = true
			}
			out.Node = node.ID
			out.Lost = false
			return
		}
	}
}

// survivingNode returns the first compute node that has not failed.
func survivingNode(rt *engine.Runtime) *cluster.Node {
	for _, n := range rt.Cluster.ComputeNodes() {
		if !n.Failed() {
			return n
		}
	}
	panic("resident: no surviving compute node for recovery")
}

// foldTable is a reducer's insertion-ordered in-memory table. With an
// aggregator, incoming values are map-side states merged via Merge; without
// one, raw values accumulate per key and Reduce runs at finalize. Either
// way the table is the engine's entire reduce-side state: nothing spills.
type foldTable struct {
	agg    engine.Aggregator
	idx    map[string]int
	keys   []string
	states [][]byte
	lists  [][][]byte
	vals   int
}

func newFoldTable(agg engine.Aggregator) *foldTable {
	return &foldTable{agg: agg, idx: make(map[string]int)}
}

func (t *foldTable) fold(key, val []byte) {
	t.vals++
	i, ok := t.idx[string(key)]
	if !ok {
		i = len(t.keys)
		t.idx[string(key)] = i
		t.keys = append(t.keys, string(key))
		if t.agg != nil {
			// Copy: Merge may grow the stored state in place, and an aliased
			// chunk buffer could carry a neighboring pair's bytes in its
			// spare capacity.
			t.states = append(t.states, append([]byte(nil), val...))
		} else {
			t.lists = append(t.lists, [][]byte{val})
		}
		return
	}
	if t.agg != nil {
		t.states[i] = t.agg.Merge(t.states[i], val)
	} else {
		t.lists[i] = append(t.lists[i], val)
	}
}

// runReduceTask drains the push channel into the fold table, then emits the
// table in insertion order and publishes the partition's output as a
// memory-resident DFS file for the next job in the chain to map over.
func runReduceTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, pc *engine.PushChannel, oc *engine.OutputCollector,
	r int, sinks []*partSink) {

	tj := rt.TaskJob(job)
	table := newFoldTable(jobAggregator(tj))
	// seen dedups inbound chunks by (map task, seq): recovery re-pushes and
	// speculative attempts may both re-deliver a chunk, and the map data
	// path is deterministic, so a repeated identity carries identical
	// content.
	seen := make(map[[2]int]struct{})

	shuffleSpan := rt.Timeline.Begin(engine.SpanShuffle, p.Now())
	rt.Emit(trace.PhaseStart, engine.SpanShuffle, node.ID, r, 0)
	for {
		chunk, ok := pc.Pop(p)
		if !ok {
			break
		}
		id := [2]int{chunk.MapTask, chunk.Seq}
		if _, dup := seen[id]; dup {
			rt.Counters.Add(engine.CtrShuffleDupChunks, 1)
			continue
		}
		seen[id] = struct{}{}
		if rt.Auditing() {
			rt.Audit.ShuffleIngested(node.ID, chunk.MapTask, r, chunk.Seq, int64(len(chunk.Data)))
		}
		// The decode+fold is pure data work: dispatch it to the worker pool
		// and overlap the pre-counted CPU charge, exactly like the hash
		// engines' reduce ingest.
		n, bytes := countChunk(chunk.Data)
		data := chunk.Data
		work := p.StartWork(func() { decodePairs(data, table.fold) })
		node.Compute(p, engine.Dur(float64(n), costs.HashNs), engine.PhaseHash)
		node.Compute(p, engine.Dur(float64(n), costs.UpdateNsPerRecord)+
			engine.Dur(float64(bytes), costs.SerializeNsPerByte), engine.PhaseUpdate)
		node.Compute(p, engine.Dur(float64(n), costs.FrameworkNsPerRecord), engine.PhaseFramework)
		rt.Counters.Add(engine.CtrHashOps, float64(n))
		work.Wait()
	}
	shuffleSpan.End(p.Now())
	rt.Emit(trace.PhaseEnd, engine.SpanShuffle, node.ID, r, 0)

	reduceSpan := rt.Timeline.Begin(engine.SpanReduce, p.Now())
	rt.Emit(trace.PhaseStart, engine.SpanReduce, node.ID, r, 0)
	emit := func(k, v []byte) { oc.Emit(p, r, node.ID, k, v) }
	for i, k := range table.keys {
		if table.agg != nil {
			state := table.states[i]
			table.agg.Final([]byte(k), state, emit)
			node.Compute(p, engine.Dur(1, costs.ReduceNsPerRecord)+
				engine.Dur(float64(len(state)), costs.SerializeNsPerByte), engine.PhaseReduce)
		} else {
			vals := table.lists[i]
			tj.Reduce([]byte(k), vals, emit)
			node.Compute(p, engine.Dur(float64(len(vals)), costs.ReduceNsPerRecord), engine.PhaseReduce)
		}
	}
	oc.Close(p, r)
	// Publish the partition into the DFS namespace as a memory-resident
	// block hosted here: a chained job's map tasks read it locally from
	// memory — the zero-disk hand-off the chained-iteration experiments
	// measure. Reducers that emitted nothing create no file, matching the
	// disk path's lazy writer creation.
	if s := sinks[r]; s != nil && !job.DiscardOutput {
		path := fmt.Sprintf("%s/part-r-%05d", job.OutputPath, r)
		if err := rt.DFS.RegisterResident(path, s.node, s.data); err != nil {
			panic(fmt.Sprintf("resident: publishing %s: %v", path, err))
		}
	}
	reduceSpan.End(p.Now())
	rt.Emit(trace.PhaseEnd, engine.SpanReduce, node.ID, r, 0)
}

// decodePairs walks an encoded chunk.
func decodePairs(chunk []byte, f func(key, val []byte)) {
	d := kv.NewDecoder(chunk)
	for {
		k, v, ok := d.Next()
		if !ok {
			return
		}
		f(k, v)
	}
}

// countChunk pre-scans an encoded chunk for the pair count and payload
// bytes the ingest charge needs, so the charge can overlap the pooled fold.
func countChunk(chunk []byte) (n int, bytes int64) {
	d := kv.NewDecoder(chunk)
	for {
		k, v, ok := d.Next()
		if !ok {
			return
		}
		n++
		bytes += int64(len(k) + len(v))
	}
}
