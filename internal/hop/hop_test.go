package hop

import (
	"testing"

	"onepass/internal/cluster"
	"onepass/internal/engine"
	"onepass/internal/enginetest"
	"onepass/internal/faults"
	"onepass/internal/gen"
	"onepass/internal/hadoop"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

func smallClicks() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	cfg.Users = 300
	cfg.URLs = 150
	return cfg
}

func run(t *testing.T, w *workloads.Workload, cfg enginetest.Config, opts Options) (*enginetest.Fixture, *engine.Result) {
	t.Helper()
	f := enginetest.New(t, w, cfg)
	res, err := Run(f.RT, f.Job, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestAllWorkloadsMatchReference(t *testing.T) {
	docs := gen.DefaultDocConfig()
	docs.Vocab = 400
	docs.WordsPerDoc = 60
	cases := []*workloads.Workload{
		workloads.Sessionization(smallClicks()),
		workloads.PageFrequency(smallClicks()),
		workloads.PerUserCount(smallClicks()),
		workloads.InvertedIndex(docs),
	}
	for _, w := range cases {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, res := run(t, w, enginetest.Config{}, Options{})
			f.CheckOutput(t, w, res)
		})
	}
}

func TestSnapshotsEmitted(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	_, res := run(t, w, enginetest.Config{Reducers: 2}, Options{})
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots emitted")
	}
	fracs := map[float64]bool{}
	for _, s := range res.Snapshots {
		fracs[s.Fraction] = true
		if s.At <= 0 {
			t.Error("snapshot without timestamp")
		}
	}
	if !fracs[0.25] && !fracs[0.5] && !fracs[0.75] {
		t.Fatalf("unexpected snapshot fractions: %v", res.Snapshots)
	}
	// Snapshots must precede job completion.
	if res.Snapshots[0].At >= res.FirstOutputAt && res.OutputPairs > 0 {
		t.Fatalf("first snapshot at %v not before final output at %v",
			res.Snapshots[0].At, res.FirstOutputAt)
	}
}

func TestSnapshotsCanBeDisabled(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	f, res := run(t, w, enginetest.Config{}, Options{DisableSnapshots: true})
	if len(res.Snapshots) != 0 {
		t.Fatalf("snapshots = %v", res.Snapshots)
	}
	f.CheckOutput(t, w, res)
}

func TestBackpressureSpillsToMapperDisk(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	// Tiny inbound queues force the adaptive path: mappers stage chunks to
	// local disk and wait.
	// Tiny reducer memory keeps the reducers busy spilling while chunks
	// keep arriving, so their inbound queues overflow.
	f, res := run(t, w, enginetest.Config{Reducers: 2, MemPerTask: 4 << 10},
		Options{ChunkBytes: 2 << 10, BackpressureBytes: 4 << 10, FanIn: 2, DisableSnapshots: true})
	if res.Counters.Get(engine.CtrMapSpillBytes) == 0 {
		t.Fatal("expected mapper-side staging under backpressure")
	}
	f.CheckOutput(t, w, res)
}

func TestStillBlockingLikeHadoop(t *testing.T) {
	// HOP's pipelining must not make the final answer incremental: first
	// *final* output still comes after the last map completes.
	w := workloads.Sessionization(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{DisableSnapshots: true})
	_, mapEnd, _ := res.Timeline.PhaseWindow(engine.SpanMap)
	if res.FirstOutputAt < mapEnd {
		t.Fatalf("first output %v before map end %v", res.FirstOutputAt, mapEnd)
	}
}

func TestSortWorkMovedToReducers(t *testing.T) {
	// Mapper-side sort comparisons must be lower than stock Hadoop's, and
	// reducer-side merge comparisons higher — work redistributed, not
	// removed (§III.D).
	w1 := workloads.Sessionization(smallClicks())
	fHop := enginetest.New(t, w1, enginetest.Config{})
	hopRes, err := Run(fHop.RT, fHop.Job, Options{ChunkBytes: 4 << 10, DisableSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	w2 := workloads.Sessionization(smallClicks())
	fH := enginetest.New(t, w2, enginetest.Config{})
	hRes, err := hadoop.Run(fH.RT, fH.Job, hadoop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hopSort := hopRes.Counters.Get(engine.CtrSortComparisons)
	hSort := hRes.Counters.Get(engine.CtrSortComparisons)
	if hopSort >= hSort {
		t.Errorf("HOP mapper sort comparisons %v should be < Hadoop's %v", hopSort, hSort)
	}
	hopMerge := hopRes.Counters.Get(engine.CtrMergeComparisons)
	hMerge := hRes.Counters.Get(engine.CtrMergeComparisons)
	if hopMerge <= hMerge {
		t.Errorf("HOP merge comparisons %v should be > Hadoop's %v", hopMerge, hMerge)
	}
}

func TestShuffleBytesMatchMapOutput(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{DisableSnapshots: true})
	shuffled := res.Counters.Get(engine.CtrShuffleBytes)
	if shuffled == 0 {
		t.Fatal("nothing shuffled")
	}
}

func TestNodeFailureRepushesLostChunks(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	// Enough blocks that node 1 still has map tasks (and undelivered
	// chunks) in flight when it dies.
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 32 * 64 << 10})
	res, err := Run(f.RT, f.Job, Options{Faults: faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.NodeFailure, Node: 1, At: 20 * sim.Millisecond}}}})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrFaultsInjected) != 1 {
		t.Fatal("fault not injected")
	}
	if res.Counters.Get(engine.CtrTasksReexecuted) == 0 {
		t.Fatal("no lost map task was recovered")
	}
}

func TestSpeculationDedupsDuplicateChunks(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 16 * 64 << 10,
		Cluster: func(c *cluster.Config) { c.SSDIntermediate = true }})
	f.Job.Speculation = true
	// A crippled scratch disk makes node 3's map attempts straggle, so the
	// drained queue backs them up on other nodes; both attempts push the
	// same (map task, seq) chunks and reducers must drop the duplicates.
	f.RT.Cluster.Node(3).ScratchDevice().SetSlowdown(100)
	res, err := Run(f.RT, f.Job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrMapTasksSpeculative) == 0 {
		t.Fatal("no speculative attempt launched")
	}
}
