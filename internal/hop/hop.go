// Package hop reproduces MapReduce Online (the Hadoop Online Prototype,
// Condie et al., NSDI'10) as the paper's §III.D characterizes it: a fork of
// Hadoop that pipelines map output to reducers eagerly in small sorted
// chunks with adaptive backpressure (mappers stage chunks to local disk and
// wait when reducers fall behind), and that emits periodic snapshot answers
// at input fractions (25%, 50%, 75%) by repeating the merge over the data
// received so far. The group-by core is still sort-merge — pipelining
// redistributes the sorting/merging work between mappers and reducers but
// does not remove the blocking multi-pass merge, which is the paper's
// central observation about this system.
package hop

import (
	"fmt"
	"sort"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/hadoop"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/sortmerge"
	"onepass/internal/trace"
)

// Options tunes the engine.
type Options struct {
	// FanIn is the multi-pass merge factor (as in stock Hadoop).
	FanIn int
	// ChunkBytes is the pipelining granularity: map output is sorted and
	// pushed in chunks of this size. Smaller chunks mean earlier delivery
	// but more network operations and more reducer-side merge work.
	ChunkBytes int64
	// BackpressureBytes bounds a reducer's inbound queue; pushes beyond it
	// force the mapper to stage the chunk to local disk and wait.
	BackpressureBytes int64
	// SnapshotFractions lists the input fractions at which reducers emit
	// snapshot answers. Nil means the classic 25/50/75%.
	SnapshotFractions []float64
	// DisableSnapshots turns snapshot emission off.
	DisableSnapshots bool
}

func (o *Options) defaults() {
	if o.FanIn == 0 {
		o.FanIn = sortmerge.DefaultFanIn
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 256 << 10
	}
	if o.BackpressureBytes == 0 {
		o.BackpressureBytes = 4 << 20
	}
	if o.SnapshotFractions == nil && !o.DisableSnapshots {
		o.SnapshotFractions = []float64{0.25, 0.5, 0.75}
	}
}

// Run executes job on rt with the MapReduce Online engine.
func Run(rt *engine.Runtime, job engine.Job, opts Options) (*engine.Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if job.Reduce == nil {
		return nil, fmt.Errorf("hop: job %q has no reduce function", job.Name)
	}
	if job.Speculation {
		return nil, fmt.Errorf("hop: speculative execution is not supported — duplicate push attempts would double-deliver chunks (HOP trades fault tolerance for pipelining)")
	}
	blocks, err := rt.InputBlocks(job.InputPath)
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%s: input %q has no blocks (was a chained stage's output discarded?)", "hop", job.InputPath)
	}
	opts.defaults()
	costs := hadoop.JobCosts(&job)
	rt.EngineLabel = "hop"
	res := &engine.Result{Job: job.Name, Engine: "hop"}
	oc := rt.NewOutputCollector(&job, res)
	reg := rt.NewRegistry(len(blocks)) // progress signal for snapshots
	channels := rt.NewPushChannels(job.Reducers, opts.BackpressureBytes)
	partition := hadoop.Partitioner()

	rt.StartSampling()
	mapsWG := rt.RunMaps(&job, blocks, func(p *sim.Proc, node *cluster.Node, b *dfs.Block) {
		runMapTask(rt, p, node, &job, costs, b, partition, channels, &opts, reg)
	})
	redsWG := rt.RunReduces(&job, func(p *sim.Proc, node *cluster.Node, r int) {
		runReduceTask(rt, p, node, &job, costs, channels[r], reg, oc, r, &opts)
	})
	rt.Env.Go("job-controller", func(p *sim.Proc) {
		mapsWG.Wait(p)
		for _, pc := range channels {
			pc.Close()
		}
		redsWG.Wait(p)
		rt.StopSampling()
	})
	rt.Env.Run()
	rt.FinishResult(res)
	return res, nil
}

// runMapTask maps a block, then pushes its output as small sorted chunks.
func runMapTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner,
	channels []*engine.PushChannel, opts *Options, reg *engine.Registry) {

	buf, err := rt.ExecuteMap(p, node, job, b, partition)
	if err != nil {
		panic(fmt.Sprintf("hop: %v", err))
	}
	// Pipelined emission: walk pairs in production order, accumulating a
	// per-reducer chunk; each full chunk is sorted (cheap — it's small) and
	// pushed immediately. Sorting many small chunks costs fewer mapper
	// comparisons than one big sort; the deficit reappears as extra merge
	// comparisons in the reducers — HOP "moves some of the sorting work to
	// reducers" (§III.D).
	spillSeq := 0
	idxByPart := make([][]int, job.Reducers)
	var bytesByPart = make([]int64, job.Reducers)
	flush := func(r int) {
		idxs := idxByPart[r]
		if len(idxs) == 0 {
			return
		}
		idxByPart[r] = nil
		bytesByPart[r] = 0
		// Sort this chunk by key with real counted comparisons.
		var cmps int64
		sortIdxByKey(buf, idxs, &cmps)
		node.Compute(p, engine.Dur(float64(cmps), costs.CompareNs), engine.PhaseSort)
		rt.Counters.Add(engine.CtrSortComparisons, float64(cmps))
		var enc []byte
		for _, i := range idxs {
			enc = kv.AppendPair(enc, buf.Key(i), buf.Val(i))
		}
		node.Compute(p, engine.Dur(float64(len(enc)), costs.SerializeNsPerByte), engine.PhaseMapFn)

		toNode := rt.ReducerNode(r).ID
		if !channels[r].TryPush(p, node.ID, toNode, b.Index, enc) {
			// Adaptive mode: reducer overloaded. Stage the chunk to local
			// disk, wait for the reducer to catch up, then push from disk.
			store := node.ScratchStore()
			spillSeq++
			f := store.Create(fmt.Sprintf("%s/hop-map-%05d/stash-%04d", job.Name, b.Index, spillSeq), false)
			store.Append(p, f, enc)
			rt.Counters.Add(engine.CtrMapSpillBytes, float64(len(enc)))
			if rt.Tracing() {
				rt.Emit(trace.Spill, "map-stash", node.ID, b.Index, 0,
					trace.Num("bytes", float64(len(enc))), trace.Num("reducer", float64(r)))
			}
			channels[r].WaitSpace(p)
			store.Device().Read(p, f.Size(), false)
			store.Delete(f.Name())
			if !channels[r].TryPush(p, node.ID, toNode, b.Index, enc) {
				// Space check raced with another mapper; block until it
				// really fits.
				for !channels[r].TryPush(p, node.ID, toNode, b.Index, enc) {
					channels[r].WaitSpace(p)
				}
			}
		}
	}
	for i := 0; i < buf.Len(); i++ {
		r := buf.Partition(i)
		idxByPart[r] = append(idxByPart[r], i)
		bytesByPart[r] += int64(len(buf.Key(i)) + len(buf.Val(i)))
		if bytesByPart[r] >= opts.ChunkBytes {
			flush(r)
		}
	}
	for r := 0; r < job.Reducers; r++ {
		flush(r)
	}
	// Register completion (progress signal for snapshot fractions); the
	// data itself has all been pushed, so the output carries no bytes.
	out := engine.NewMapOutput(p, node.ScratchStore(),
		fmt.Sprintf("%s/hop-map-%05d/progress", job.Name, b.Index),
		b.Index, node.ID, job.Reducers, func(int) []byte { return nil })
	for r := range out.Pushed {
		out.Pushed[r] = true
	}
	reg.Complete(out)
}

func sortIdxByKey(buf *kv.Buffer, idxs []int, cmps *int64) {
	sort.Slice(idxs, func(a, b int) bool {
		if c := kv.Compare(buf.Key(idxs[a]), buf.Key(idxs[b]), cmps); c != 0 {
			return c < 0
		}
		return idxs[a] < idxs[b] // stable order at sort.Slice cost
	})
}

// runReduceTask drains the push channel, spilling and merging exactly like
// stock Hadoop, emitting snapshots as input fractions are crossed, and
// finishing with the same blocking multi-pass + final merge.
func runReduceTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, pc *engine.PushChannel, reg *engine.Registry,
	oc *engine.OutputCollector, r int, opts *Options) {

	rs := hadoop.NewReduceSide(rt, job, costs, node, r, opts.FanIn)
	snapIdx := 0

	shuffleSpan := rt.Timeline.Begin(engine.SpanShuffle, p.Now())
	rt.Emit(trace.PhaseStart, engine.SpanShuffle, node.ID, r, 0)
	for {
		chunk, ok := pc.Pop(p)
		if !ok {
			break
		}
		rs.Add(p, chunk.Data)
		// Snapshot when the input fraction crosses the next threshold.
		for snapIdx < len(opts.SnapshotFractions) &&
			float64(reg.Completed())/float64(reg.TotalMaps()) >= opts.SnapshotFractions[snapIdx] {
			emitSnapshot(rt, p, node, job, costs, rs, oc, r, opts.SnapshotFractions[snapIdx])
			snapIdx++
		}
	}
	shuffleSpan.End(p.Now())
	rt.Emit(trace.PhaseEnd, engine.SpanShuffle, node.ID, r, 0)

	rs.Finish(p, oc)
}

// emitSnapshot repeats the merge over everything received so far — runs are
// re-read from disk, in-memory segments re-streamed — and applies the
// reduce function to produce an early answer. This is HOP's snapshot
// mechanism; the repeated merge is exactly the "significant I/O overhead"
// the paper calls out.
func emitSnapshot(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, rs *hadoop.ReduceSide, oc *engine.OutputCollector, r int, frac float64) {

	span := rt.Timeline.Begin(engine.SpanMerge, p.Now())
	var streams []kv.PairStream
	for _, run := range rs.Merger.RunList() {
		streams = append(streams, sortmerge.NewStream(p, run))
	}
	streams = append(streams, rs.Acc.PeekStreams()...)
	pairs := 0
	sink := newSnapshotSink(rt, p, node, job, r, frac)
	cmps, inputs := hadoop.MergeGroupReduce(streams, job, func(k, v []byte) {
		pairs++
		sink.write(k, v)
	})
	sink.flush()
	node.Compute(p, engine.Dur(float64(cmps), costs.CompareNs), engine.PhaseMerge)
	node.Compute(p, engine.Dur(float64(inputs), costs.ReduceNsPerRecord), engine.PhaseReduce)
	rt.Counters.Add(engine.CtrMergeComparisons, float64(cmps))
	rt.Counters.Add("hop.snapshot.pairs", float64(pairs))
	oc.NoteSnapshot(p.Now(), frac, pairs)
	span.End(p.Now())
	if rt.Tracing() {
		rt.Emit(trace.EarlyAnswer, "snapshot", node.ID, r, 0,
			trace.Num("fraction", frac), trace.Num("pairs", float64(pairs)))
	}
}

// snapshotSink writes snapshot output to its own DFS file (discarded
// payloads — only sizes matter) so snapshots don't pollute the final
// output.
type snapshotSink struct {
	p      *sim.Proc
	append func(p *sim.Proc, data []byte)
	buf    []byte
}

func newSnapshotSink(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job, r int, frac float64) *snapshotSink {
	path := fmt.Sprintf("%s/snapshot-%03.0f/part-r-%05d", job.OutputPath, frac*100, r)
	w, err := rt.DFS.CreateWriter(path, node.ID, true)
	if err != nil {
		panic(fmt.Sprintf("hop: snapshot writer: %v", err))
	}
	return &snapshotSink{p: p, append: w.Append}
}

func (s *snapshotSink) write(k, v []byte) {
	s.buf = kv.AppendPair(s.buf, k, v)
	if len(s.buf) >= 128<<10 {
		s.flush()
	}
}

func (s *snapshotSink) flush() {
	if len(s.buf) == 0 {
		return
	}
	s.append(s.p, s.buf)
	s.buf = nil
}
