// Package enginetest holds the shared fixture for engine correctness tests:
// it stands up a small simulated cluster, registers a workload's generated
// input in the DFS, and checks engine output against the workload's
// single-threaded reference evaluation.
package enginetest

import (
	"testing"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

// Fixture is one prepared job run.
type Fixture struct {
	RT     *engine.Runtime
	Job    engine.Job
	Blocks [][]byte
}

// Config tunes the fixture.
type Config struct {
	Nodes      int
	BlockSize  int64
	InputSize  int64
	Reducers   int
	MemPerTask int64
	Cluster    func(*cluster.Config) // optional extra cluster tweaks
}

// New builds a runtime and job for the workload.
func New(t *testing.T, w *workloads.Workload, cfg Config) *Fixture {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64 << 10
	}
	if cfg.InputSize == 0 {
		cfg.InputSize = 4 * cfg.BlockSize
	}
	if cfg.Reducers == 0 {
		cfg.Reducers = 4
	}
	env := sim.New()
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = cfg.Nodes
	ccfg.CoresPerNode = 2
	if cfg.Cluster != nil {
		cfg.Cluster(&ccfg)
	}
	c := cluster.New(env, ccfg)
	d := dfs.New(c, cfg.BlockSize, 1)
	if err := d.RegisterGenerated("input/"+w.Name, cfg.InputSize, w.Gen); err != nil {
		t.Fatal(err)
	}
	rt := engine.NewRuntime(env, c, d)

	job := w.Job
	job.InputPath = "input/" + w.Name
	job.OutputPath = "output/" + w.Name
	job.Reducers = cfg.Reducers
	job.RetainOutput = true
	if cfg.MemPerTask > 0 {
		job.MemoryPerTask = cfg.MemPerTask
	}

	blocks, err := d.Blocks(job.InputPath)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][]byte, len(blocks))
	for i, b := range blocks {
		raw[i] = w.Gen(b.Index, b.Size)
	}
	return &Fixture{RT: rt, Job: job, Blocks: raw}
}

// CheckOutput compares a result against the reference evaluation.
func (f *Fixture) CheckOutput(t *testing.T, w *workloads.Workload, res *engine.Result) {
	t.Helper()
	want := workloads.Reference(w, f.Blocks)
	if res.Output == nil {
		t.Fatal("result has no retained output")
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output has %d keys, reference %d", len(res.Output), len(want))
	}
	bad := 0
	for k, v := range want {
		if got, ok := res.Output[k]; !ok {
			t.Errorf("missing key %q", k)
			bad++
		} else if got != v {
			t.Errorf("key %q = %q, want %q", k, got, v)
			bad++
		}
		if bad > 5 {
			t.Fatal("too many mismatches")
		}
	}
}
