package core

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/disk"
	"onepass/internal/engine"
	"onepass/internal/hashlib"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// runMapTask is the hash engine's map side (§V's two options): (1) with no
// combiner, one scan partitions output with no grouping effort at all;
// (2) with a combiner, an in-memory hash table per partition performs
// partial aggregation (hybrid hash degrades to streaming flushes if the
// table outgrows the task budget). Either way there is no sort — that is
// the whole point. Output is persisted for fault tolerance (as in stock
// Hadoop) and then pushed eagerly to the reducers.
func runMapTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner,
	channels []*engine.PushChannel, reg *engine.Registry, opts *Options,
	agg engine.Aggregator, mapCombined bool) {

	chunks := buildMapChunks(rt, p, node, job, costs, b, partition, opts, agg, mapCombined)
	R := job.Reducers
	// Persist the map output for fault tolerance as one indexed file
	// (charging the synchronous write), then push.
	store := node.ScratchStore()
	out := engine.NewMapOutput(p, store,
		fmt.Sprintf("%s/hashmap-%05d/file.out", job.Name, b.Index),
		b.Index, node.ID, R,
		func(r int) []byte {
			total := 0
			for _, c := range chunks[r] {
				total += len(c)
			}
			enc := make([]byte, 0, total)
			for _, c := range chunks[r] {
				enc = append(enc, c...)
			}
			return enc
		})
	outBytes := out.File.Size()
	node.Compute(p, engine.Dur(float64(outBytes), costs.SerializeNsPerByte), engine.PhaseMapFn)
	rt.Counters.Add(engine.CtrMapWrittenBytes, float64(outBytes))
	if rt.Tracing() {
		rt.Emit(trace.OutputWrite, "map-output", node.ID, b.Index, 0,
			trace.Num("bytes", float64(outBytes)))
	}
	// Completion is registered only after the push loop below resolves
	// which partitions were fully delivered, so pull-side reducers never
	// see a stale Pushed flag.
	defer reg.Complete(out)

	if opts.DisablePush {
		if rt.Auditing() {
			// Pull-only mode: whole partitions move through FetchPart, so
			// record each as one produced unit like the sort-merge engine.
			for r, n := range out.PartLen {
				rt.Audit.ShuffleProduced(node.ID, b.Index, r, -1, n)
			}
		}
		return
	}
	// Eager push with a non-blocking fallback: the moment a reducer's queue
	// refuses a chunk, the rest of that partition is staged as a "leftover"
	// file the reducer pulls later. The mapper never stalls — unlike HOP's
	// adaptive wait, the hash engine's push is best-effort because the
	// persisted copy already guarantees delivery.
	out.Leftover = make([]*disk.File, R)
	for r := 0; r < R; r++ {
		toNode := rt.ReducerNode(r).ID
		var leftover []byte
		for i, c := range chunks[r] {
			if leftover == nil && channels[r].TryPush(p, node.ID, toNode, b.Index, i, c) {
				// Delivered counts gate what a re-execution regenerates: a
				// recovered output serves only the undelivered tail.
				out.Delivered[r] = i + 1
				continue
			}
			if leftover == nil {
				leftover = make([]byte, 0, int64(len(chunks[r])-i)*opts.ChunkBytes)
			}
			leftover = append(leftover, c...)
		}
		if leftover == nil {
			out.Pushed[r] = true
			continue
		}
		lf := store.Create(fmt.Sprintf("%s/hashmap-%05d/leftover-%05d", job.Name, b.Index, r), false)
		store.Append(p, lf, leftover)
		rt.Counters.Add(engine.CtrMapSpillBytes, float64(len(leftover)))
		if rt.Auditing() {
			// The staged tail reaches its reducer through a pull fetch, so it
			// belongs in the shuffle ledger (as the partition's seq -1 unit),
			// not the spill ledger — the read-back happens remotely.
			rt.Audit.ShuffleProduced(node.ID, b.Index, r, -1, int64(len(leftover)))
		}
		if rt.Tracing() {
			rt.Emit(trace.Spill, "leftover", node.ID, b.Index, 0,
				trace.Num("bytes", float64(len(leftover))), trace.Num("reducer", float64(r)))
		}
		out.Leftover[r] = lf
	}
	// Every partition is now either push-delivered or staged in a leftover
	// file; the persisted copy served its fault-tolerance write and can be
	// released to bound host memory.
	out.ReleaseFile()
}

// buildMapChunks runs the map-side data path and returns the per-partition
// chunk lists. It is deterministic in the block and options, so a recovery
// attempt on another node reproduces the exact chunk boundaries and
// contents of the lost attempt.
func buildMapChunks(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner, opts *Options,
	agg engine.Aggregator, mapCombined bool) [][][]byte {

	R := job.Reducers
	chunks := make([][][]byte, R) // per partition: encoded chunks <= ChunkBytes
	cur := make([][]byte, R)
	auditing := rt.Auditing()
	var finalPairBytes int64
	// The plain partitioning scan copies the whole record stream through, so
	// nearly every chunk fills to ChunkBytes and exact sizing avoids the
	// doubling reallocations; combined output is usually far below one chunk
	// per partition, so it keeps plain append growth.
	var chunkPrealloc int64
	if !mapCombined {
		chunkPrealloc = opts.ChunkBytes + 1<<10
	}
	addPair := func(r int, key, val []byte) {
		if auditing {
			finalPairBytes += int64(len(key) + len(val))
		}
		if cur[r] == nil && chunkPrealloc > 0 {
			cur[r] = make([]byte, 0, chunkPrealloc)
		}
		cur[r] = kv.AppendPair(cur[r], key, val)
		if int64(len(cur[r])) >= opts.ChunkBytes {
			chunks[r] = append(chunks[r], cur[r])
			cur[r] = nil
		}
	}

	// Everything the chunk-building walk needs from the runtime is resolved
	// before dispatch: the walk itself (hash folds, flush sweeps, chunk
	// sealing) is pure data work, so it rides inside the map task's pooled
	// closure and overlaps the parse charge. The CPU charges and the
	// CombineFlush trace events land after the join.
	tj := rt.TaskJob(job)
	tAgg := agg
	if tj != job {
		tAgg, _ = jobAggregator(tj)
	}
	grouping := rt.TaskMemory(job)
	var n int
	var flushCounts []int
	buf, err := rt.ExecuteMapWith(p, node, tj, b, partition, func(buf *kv.Buffer) {
		if mapCombined {
			// Map-side hash aggregation: real hash tables, real states.
			tables := make([]*stateTable, R)
			for r := range tables {
				tables[r] = newStateTable(hashAtShared(1), tAgg, false)
			}
			used := func() int64 {
				var t int64
				for _, tb := range tables {
					t += tb.usedBytes()
				}
				return t
			}
			flushTables := func() {
				flushed := 0
				for r, tb := range tables {
					tb.iterate(func(k, s []byte) bool {
						addPair(r, k, s)
						flushed++
						return true
					})
					tb.reset()
				}
				flushCounts = append(flushCounts, flushed)
			}
			n = buf.Len()
			for i := 0; i < n; i++ {
				r := buf.Partition(i)
				tables[r].fold(buf.Key(i), buf.Val(i), formIncoming)
				if i%1024 == 1023 && used() > grouping {
					flushTables()
				}
			}
			flushTables()
		} else {
			// Option (1): single partitioning scan, no grouping at all.
			for i := 0; i < buf.Len(); i++ {
				addPair(buf.Partition(i), buf.Key(i), buf.Val(i))
			}
		}
		for r := 0; r < R; r++ {
			if len(cur[r]) > 0 {
				chunks[r] = append(chunks[r], cur[r])
				cur[r] = nil
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	if mapCombined {
		node.Compute(p, engine.Dur(float64(n), costs.HashNs), engine.PhaseHash)
		node.Compute(p, engine.Dur(float64(n), costs.UpdateNsPerRecord), engine.PhaseCombine)
		rt.Counters.Add(engine.CtrHashOps, float64(n))
		if rt.Tracing() {
			for _, flushed := range flushCounts {
				rt.Emit(trace.CombineFlush, "map-combine", node.ID, b.Index, 0,
					trace.Num("states", float64(flushed)))
			}
		}
	}
	if auditing {
		rt.Audit.MapFinalPairs(b.Index, finalPairBytes)
		if mapCombined {
			rt.Audit.CombineSaved(b.Index, buf.Bytes()-finalPairBytes)
		}
	}
	return chunks
}

// reexecMapOutput re-runs a lost map task's data path on node and builds a
// fresh output holding, per partition, only what the reducers still need:
// nothing for fully-pushed partitions, and the undelivered chunk tail
// (everything past lost.Delivered) for the rest.
func reexecMapOutput(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner, opts *Options,
	agg engine.Aggregator, mapCombined bool, lost *engine.MapOutput) *engine.MapOutput {

	chunks := buildMapChunks(rt, p, node, job, costs, b, partition, opts, agg, mapCombined)
	fresh := engine.NewMapOutput(p, node.ScratchStore(),
		fmt.Sprintf("%s/hashmap-%05d/reexec", job.Name, lost.TaskID),
		lost.TaskID, node.ID, job.Reducers,
		func(r int) []byte {
			if lost.WasPushed(r) {
				return nil
			}
			skip := lost.Delivered[r]
			if skip > len(chunks[r]) {
				skip = len(chunks[r])
			}
			total := 0
			for _, c := range chunks[r][skip:] {
				total += len(c)
			}
			enc := make([]byte, 0, total)
			for _, c := range chunks[r][skip:] {
				enc = append(enc, c...)
			}
			return enc
		})
	node.Compute(p, engine.Dur(float64(fresh.File.Size()), costs.SerializeNsPerByte), engine.PhaseMapFn)
	// Chunks delivered before the failure stay delivered; the pull fetch of
	// the recovered partition covers exactly the rest.
	fresh.Pushed = append([]bool(nil), lost.Pushed...)
	fresh.Delivered = append([]int(nil), lost.Delivered...)
	return fresh
}

// hashAtShared returns hash family member i from hashlib's immutable
// process-wide cache; the family is deterministic, so every task sees the
// same function without rebuilding its tables.
func hashAtShared(i int) *hashlib.Func {
	return hashlib.Shared(HashSeed, i)
}
