package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"onepass/internal/engine"
	"onepass/internal/hashlib"
	"onepass/internal/workloads"
)

func TestListAggRoundTrip(t *testing.T) {
	var got [][]byte
	agg := listAgg{reduce: func(key []byte, vals [][]byte, emit engine.Emit) {
		got = vals
	}}
	state := agg.Init([]byte("first"))
	state = agg.Update(state, []byte("second"))
	other := agg.Init([]byte("third"))
	state = agg.Merge(state, other)
	agg.Final([]byte("k"), state, nil)
	if len(got) != 3 || string(got[0]) != "first" || string(got[2]) != "third" {
		t.Fatalf("vals = %q", got)
	}
}

func TestListAggEmptyValues(t *testing.T) {
	var got [][]byte
	agg := listAgg{reduce: func(key []byte, vals [][]byte, emit engine.Emit) { got = vals }}
	state := agg.Init(nil)
	state = agg.Update(state, []byte{})
	agg.Final([]byte("k"), state, nil)
	if len(got) != 2 || len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("vals = %q", got)
	}
}

func TestFrameIterProperty(t *testing.T) {
	f := func(vals [][]byte) bool {
		var state []byte
		for _, v := range vals {
			state = frameAppend(state, v)
		}
		var got [][]byte
		n := frameIter(state, func(v []byte) { got = append(got, append([]byte(nil), v...)) })
		if n != len(vals) || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if !bytes.Equal(got[i], vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJobAggregatorSelection(t *testing.T) {
	withMonoid := workloads.PerUserCount(smallClicks()).Job
	agg, combined := jobAggregator(&withMonoid)
	if !combined {
		t.Fatal("counting workload should map-combine")
	}
	ma, ok := agg.(engine.MonoidAgg)
	if !ok {
		t.Fatalf("agg = %T", agg)
	}
	if _, ok := ma.M.(workloads.CountMonoid); !ok {
		t.Fatalf("monoid = %T", ma.M)
	}
	withAgg := withMonoid
	withAgg.Monoid, withAgg.Agg = nil, workloads.CountAgg{}
	aggExp, combinedExp := jobAggregator(&withAgg)
	if !combinedExp {
		t.Fatal("explicit aggregator should map-combine")
	}
	if _, ok := aggExp.(workloads.CountAgg); !ok {
		t.Fatalf("agg = %T", aggExp)
	}
	noAgg := workloads.Sessionization(smallClicks()).Job
	agg2, combined2 := jobAggregator(&noAgg)
	if combined2 {
		t.Fatal("holistic workload must not map-combine")
	}
	if _, ok := agg2.(listAgg); !ok {
		t.Fatalf("agg = %T", agg2)
	}
}

func newTestStateTable(mapComb bool) *stateTable {
	agg := engine.Aggregator(workloads.CountAgg{})
	return newStateTable(hashlib.NewAt(1, 0), agg, mapComb)
}

func TestStateTableFoldRawValues(t *testing.T) {
	st := newTestStateTable(false)
	if !st.fold([]byte("a"), []byte("5"), formIncoming) {
		t.Fatal("first fold should report new")
	}
	if st.fold([]byte("a"), []byte("7"), formIncoming) {
		t.Fatal("second fold should not report new")
	}
	s, ok := st.get([]byte("a"))
	if !ok || workloads.CountState(s) != 12 {
		t.Fatalf("state = %v", s)
	}
	if st.len() != 1 {
		t.Fatalf("len = %d", st.len())
	}
}

func TestStateTableFoldStates(t *testing.T) {
	// mapComb: incoming values are already binary states, folded via Merge.
	st := newTestStateTable(true)
	mk := func(n uint64) []byte {
		agg := workloads.CountAgg{}
		return agg.Init([]byte(fmt.Sprint(n)))
	}
	st.fold([]byte("a"), mk(10), formIncoming)
	st.fold([]byte("a"), mk(32), formIncoming)
	st.fold([]byte("a"), mk(100), formState) // explicit state form always merges
	s, _ := st.get([]byte("a"))
	if workloads.CountState(s) != 142 {
		t.Fatalf("count = %d", workloads.CountState(s))
	}
}

func TestStateTableBudgetAccounting(t *testing.T) {
	st := newTestStateTable(false)
	before := st.usedBytes()
	for i := 0; i < 100; i++ {
		st.fold([]byte(fmt.Sprintf("key-%03d", i)), []byte("1"), formIncoming)
	}
	grown := st.usedBytes()
	if grown <= before {
		t.Fatal("usedBytes must grow")
	}
	// Removing everything must release the live accounting even though the
	// arena keeps its allocations.
	st.iterate(func(k, s []byte) bool {
		st.remove(append([]byte(nil), k...))
		return true
	})
	if st.len() != 0 {
		t.Fatalf("len = %d after removal", st.len())
	}
	if st.usedBytes() >= grown/2 {
		t.Fatalf("usedBytes %d did not shrink after removing all keys (was %d)", st.usedBytes(), grown)
	}
}

func TestStateTableIterateMatchesFolds(t *testing.T) {
	st := newTestStateTable(false)
	want := map[string]uint64{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i%37)
		st.fold([]byte(k), []byte("1"), formIncoming)
		want[k]++
	}
	got := map[string]uint64{}
	st.iterate(func(k, s []byte) bool {
		got[string(k)] = workloads.CountState(s)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("keys = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %d, want %d", k, got[k], v)
		}
	}
}
