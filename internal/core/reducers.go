package core

import (
	"fmt"

	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/sketch"
	"onepass/internal/trace"
)

// --- Hybrid Hash (§V reduce technique 1) ---------------------------------
//
// Blocking but sort-free: arriving pairs hash into K buckets; buckets stay
// resident until the budget forces the largest one to demote to disk, after
// which its traffic streams straight to its file. Finalization emits the
// resident buckets and externally hashes the demoted ones.

type hybridReducer struct {
	rc     *reduceCtx
	tables []*stateTable // nil = demoted
	spill  *spillSet
}

func newHybridReducer(rc *reduceCtx) *hybridReducer {
	h := &hybridReducer{
		rc:     rc,
		tables: make([]*stateTable, rc.opts.SpillBuckets),
		spill:  newSpillSet(rc, 0, fmt.Sprintf("%s/red-%04d/hybrid", rc.job.Name, rc.r)),
	}
	for b := range h.tables {
		h.tables[b] = newStateTable(rc.hashAt(1), rc.agg, rc.mapComb)
	}
	return h
}

func (h *hybridReducer) used() int64 {
	var t int64
	for _, tb := range h.tables {
		if tb != nil {
			t += tb.usedBytes()
		}
	}
	return t
}

func (h *hybridReducer) demoteLargest(p *sim.Proc) bool {
	largest, size := -1, int64(0)
	for b, tb := range h.tables {
		if tb != nil && tb.usedBytes() > size {
			largest, size = b, tb.usedBytes()
		}
	}
	if largest < 0 {
		return false
	}
	h.tables[largest].iterate(func(k, s []byte) bool {
		h.spill.add(p, largest, k, s, formState)
		return true
	})
	h.tables[largest] = nil
	return true
}

// allResident reports whether no bucket has demoted yet — the condition
// under which ingest is pure folding with no spill I/O.
func (h *hybridReducer) allResident() bool {
	for _, tb := range h.tables {
		if tb == nil {
			return false
		}
	}
	return true
}

func (h *hybridReducer) ingest(p *sim.Proc, chunk []byte) {
	h.rc.join()
	if h.allResident() {
		// Every bucket is resident, so the decode+fold loop touches only
		// this reducer's tables — pure data work that rides the pool. The
		// gate depends only on demotion state, which evolves identically
		// with and without workers.
		n, bytes := countChunk(chunk)
		h.rc.foldChunk(p, n, bytes, func() {
			decodePairs(chunk, func(key, val []byte) {
				h.tables[h.spill.bucketOf(key)].fold(key, val, formIncoming)
			})
		})
	} else {
		// A demoted bucket streams its traffic straight to disk: virtual
		// I/O mid-loop, so this path stays inline.
		var bytes int64
		n := decodePairs(chunk, func(key, val []byte) {
			b := h.spill.bucketOf(key)
			bytes += int64(len(key) + len(val))
			if tb := h.tables[b]; tb != nil {
				tb.fold(key, val, formIncoming)
			} else {
				h.spill.add(p, b, key, val, formIncoming)
			}
		})
		h.rc.chargeFold(p, n, bytes)
	}
	for h.used() > h.rc.budget {
		if !h.demoteLargest(p) {
			break
		}
	}
}

func (h *hybridReducer) finalize(p *sim.Proc) {
	final := func(k, s []byte) { h.rc.emitFinal(p, k, s) }
	for b, tb := range h.tables {
		if tb != nil {
			tb.iterate(func(k, s []byte) bool {
				final(k, s)
				return true
			})
			continue
		}
		h.spill.processBucket(p, b, nil, final)
	}
}

// --- Incremental hash (§V reduce technique 2) -----------------------------
//
// One state per key, updated as each value arrives. When everything fits,
// answers are emitted the instant the last input arrives — no merge phase
// at all. Under memory pressure, whole hash buckets of states are evicted
// to disk and reconciled at the end.

type incReducer struct {
	rc         *reduceCtx
	st         *stateTable
	spill      *spillSet
	emitted    map[string]bool
	nextVictim int
	pairsSeen  int
}

func newIncReducer(rc *reduceCtx) *incReducer {
	return &incReducer{
		rc:    rc,
		st:    newStateTable(rc.hashAt(1), rc.agg, rc.mapComb),
		spill: newSpillSet(rc, 0, fmt.Sprintf("%s/red-%04d/inc", rc.job.Name, rc.r)),
	}
}

func (ir *incReducer) evictBucket(p *sim.Proc) {
	// Round-robin over buckets until one actually holds keys.
	for tries := 0; tries < ir.rc.opts.SpillBuckets; tries++ {
		b := ir.nextVictim % ir.rc.opts.SpillBuckets
		ir.nextVictim++
		var victims [][2][]byte
		ir.st.iterate(func(k, s []byte) bool {
			if ir.spill.bucketOf(k) == b {
				victims = append(victims, [2][]byte{append([]byte(nil), k...), s})
			}
			return true
		})
		if len(victims) == 0 {
			continue
		}
		for _, v := range victims {
			ir.spill.add(p, b, v[0], v[1], formState)
			ir.st.remove(v[0])
		}
		return
	}
}

func (ir *incReducer) ingest(p *sim.Proc, chunk []byte) {
	ir.rc.join()
	if ir.rc.job.EmitWhen == nil {
		// Without threshold emission the loop is pure folding, so it rides
		// the pool; budget-driven evictions move to one post-chunk sweep —
		// the same point in both modes, so serial and parallel runs evict
		// the same states at the same virtual instants.
		n, bytes := countChunk(chunk)
		ir.rc.foldChunk(p, n, bytes, func() {
			decodePairs(chunk, func(key, val []byte) {
				ir.st.fold(key, val, formIncoming)
			})
		})
		ir.pairsSeen += n
		for ir.st.usedBytes() > ir.rc.budget && ir.st.len() > 0 {
			ir.evictBucket(p)
		}
		return
	}
	// Threshold emission reads each key's state the instant it folds and
	// may emit output mid-loop — virtual effects that keep this path
	// inline.
	var bytes int64
	early := 0
	n := decodePairs(chunk, func(key, val []byte) {
		ir.st.fold(key, val, formIncoming)
		bytes += int64(len(key) + len(val))
		if s, ok := ir.st.get(key); ok && ir.rc.job.EmitWhen(key, s) {
			if ir.emitted == nil {
				ir.emitted = make(map[string]bool)
			}
			if !ir.emitted[string(key)] {
				ir.emitted[string(key)] = true
				// Incremental processing: the answer leaves the system
				// the moment its condition is met (§IV point 3).
				ir.rc.emitFinal(p, key, s)
				early++
			}
		}
		ir.pairsSeen++
		if ir.pairsSeen%256 == 0 {
			for ir.st.usedBytes() > ir.rc.budget && ir.st.len() > 0 {
				ir.evictBucket(p)
			}
		}
	})
	ir.rc.chargeFold(p, n, bytes)
	if early > 0 {
		// One progress point per chunk with threshold emits, not per pair,
		// to bound the series.
		ir.rc.noteProgress(p, ir.rc.oc.OutputPairs())
		if ir.rc.rt.Tracing() {
			ir.rc.rt.Emit(trace.EarlyAnswer, "threshold-emit", ir.rc.node.ID, ir.rc.r, 0,
				trace.Num("pairs", float64(early)))
		}
	}
}

func (ir *incReducer) finalize(p *sim.Proc) {
	finalizeWithSpill(p, ir.rc, ir.st, ir.spill)
}

// finalizeWithSpill emits every key exactly once: buckets with spilled data
// are externally hashed with their resident states folded in; untouched
// buckets emit straight from memory (the zero-I/O fast path).
func finalizeWithSpill(p *sim.Proc, rc *reduceCtx, st *stateTable, spill *spillSet) {
	final := func(k, s []byte) { rc.emitFinal(p, k, s) }
	if !spill.anySpilled() {
		st.iterate(func(k, s []byte) bool {
			final(k, s)
			return true
		})
		return
	}
	// Group resident states by bucket.
	residents := make([][]entry, rc.opts.SpillBuckets)
	st.iterate(func(k, s []byte) bool {
		b := spill.bucketOf(k)
		residents[b] = append(residents[b], entry{
			key: append([]byte(nil), k...), payload: s, f: formState})
		return true
	})
	for b := 0; b < rc.opts.SpillBuckets; b++ {
		if !spill.hasData(b) {
			for _, e := range residents[b] {
				final(e.key, e.payload)
			}
			continue
		}
		spill.processBucket(p, b, residents[b], final)
	}
}

// --- Hot-key incremental hash (§V reduce technique 3) ---------------------
//
// A SpaceSaving sketch watches the key stream; states of keys the sketch
// considers frequent stay pinned in memory, everything else goes to cold
// bucket files. Because per-key state is sublinear in the values folded
// into it, keeping the *hot* keys resident minimizes spill I/O — and their
// (approximate) answers can be emitted as soon as all input has arrived.

type hotReducer struct {
	rc        *reduceCtx
	st        *stateTable
	sk        *sketch.SpaceSaving
	spill     *spillSet
	pairsSeen int
}

func newHotReducer(rc *reduceCtx) *hotReducer {
	return &hotReducer{
		rc:    rc,
		st:    newStateTable(rc.hashAt(1), rc.agg, rc.mapComb),
		sk:    sketch.NewSpaceSaving(rc.opts.HotKeyCounters),
		spill: newSpillSet(rc, 0, fmt.Sprintf("%s/red-%04d/hot", rc.job.Name, rc.r)),
	}
}

// hotThreshold computes the minimum estimated frequency a key must have to
// deserve residency: memory holds roughly budget/avgKeyCost keys, so a key
// is "important" when its share of the stream exceeds 1/capacity — hotness
// is relative to the memory actually available, not to the sketch size.
func (hr *hotReducer) hotThreshold() uint64 {
	n := hr.st.len()
	if n == 0 {
		return 0
	}
	avg := hr.st.usedBytes() / int64(n)
	if avg <= 0 {
		avg = 1
	}
	capacity := hr.rc.budget / avg
	if capacity < 1 {
		capacity = 1
	}
	return hr.sk.N() / uint64(capacity)
}

// sweepCold evicts coldest-first — keys the sketch does not track, then
// tracked keys below the residency threshold, then (as a progress
// guarantee) anything — stopping as soon as the table is comfortably under
// budget. Evictions write *states* (sublinear in the values folded into
// them) to the spill buckets.
func (hr *hotReducer) sweepCold(p *sim.Proc) {
	target := hr.rc.budget * 9 / 10 // hysteresis: leave headroom for arrivals
	thresh := hr.hotThreshold()
	evicted := 0
	pass := func(victim func(k []byte) bool) {
		if hr.st.usedBytes() <= target {
			return
		}
		var victims [][2][]byte
		hr.st.iterate(func(k, s []byte) bool {
			if victim(k) {
				victims = append(victims, [2][]byte{append([]byte(nil), k...), s})
			}
			return true
		})
		for _, v := range victims {
			hr.spill.add(p, hr.spill.bucketOf(v[0]), v[0], v[1], formState)
			hr.st.remove(v[0])
			evicted++
			if hr.st.usedBytes() <= target {
				return
			}
		}
	}
	pass(func(k []byte) bool { _, _, tracked := hr.sk.Estimate(k); return !tracked })
	pass(func(k []byte) bool { est, _, tracked := hr.sk.Estimate(k); return tracked && est < thresh })
	pass(func(k []byte) bool { return true })
	hr.rc.rt.Counters.Add("core.hotkey.evictions", float64(evicted))
	if hr.rc.rt.Tracing() {
		hr.rc.rt.Emit(trace.HotKeyEvict, "sweep-cold", hr.rc.node.ID, hr.rc.r, 0,
			trace.Num("evicted", float64(evicted)),
			trace.Num("residentKeys", float64(hr.st.len())))
	}
}

func (hr *hotReducer) ingest(p *sim.Proc, chunk []byte) {
	hr.rc.join()
	// Always fold: resident keys absorb their entire value stream with
	// zero I/O, which is where the win comes from. When the table outgrows
	// its budget, the sweep sheds the *coldest* states — so hot keys stay
	// pinned and cold keys pay one small state write instead of raw-record
	// spills. The sketch offers and folds are pure data work, so they ride
	// the pool; the cold sweep (spill I/O) runs as one post-chunk pass at
	// the same point in both modes.
	n, bytes := countChunk(chunk)
	hr.rc.foldChunk(p, n, bytes, func() {
		decodePairs(chunk, func(key, val []byte) {
			hr.sk.Offer(key, 1)
			hr.st.fold(key, val, formIncoming)
		})
	})
	hr.pairsSeen += n
	if hr.st.usedBytes() > hr.rc.budget {
		hr.sweepCold(p)
	}
}

func (hr *hotReducer) finalize(p *sim.Proc) {
	if hr.rc.opts.ApproximateEarly && hr.st.len() > 0 {
		// Early, possibly-approximate answers for the hot keys, available
		// the instant the input finishes arriving — before any cold-data
		// reconciliation I/O.
		path := fmt.Sprintf("%s/early/part-r-%05d", hr.rc.job.OutputPath, hr.rc.r)
		w, err := hr.rc.rt.DFS.CreateWriter(path, hr.rc.node.ID, hr.rc.job.DiscardOutput)
		if err != nil {
			panic(fmt.Sprintf("core: early output: %v", err))
		}
		pairs := 0
		var buf []byte
		hr.st.iterate(func(k, s []byte) bool {
			hr.rc.agg.Final(k, s, func(kk, vv []byte) {
				buf = kv.AppendPair(buf, kk, vv)
				pairs++
			})
			return true
		})
		if len(buf) > 0 {
			w.Append(p, buf)
		}
		hr.rc.oc.NoteSnapshot(p.Now(), 1.0, pairs)
		hr.rc.rt.Counters.Add("core.hotkey.early.pairs", float64(pairs))
		// The early-answer coverage point: hot-key pairs available now, vs
		// the exact answer still behind the cold-data reconciliation below.
		hr.rc.noteProgress(p, hr.rc.oc.OutputPairs()+pairs)
		if hr.rc.rt.Tracing() {
			hr.rc.rt.Emit(trace.EarlyAnswer, "approximate-early", hr.rc.node.ID, hr.rc.r, 0,
				trace.Num("pairs", float64(pairs)),
				trace.Num("spilledBytes", float64(hr.spill.Bytes)))
		}
	}
	finalizeWithSpill(p, hr.rc, hr.st, hr.spill)
	// Completion point: exact pairs out, final spill volume.
	hr.rc.noteProgress(p, hr.rc.oc.OutputPairs())
}
