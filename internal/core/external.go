package core

import (
	"fmt"

	"onepass/internal/disk"
	"onepass/internal/engine"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/sortmerge"
	"onepass/internal/trace"
)

// spillSet is the on-disk side of all three hash techniques: K bucket files
// of tagged (key, payload) entries, written through small write-behind
// buffers, and an external-hash processor that loads one bucket at a time
// into a fresh state table, recursively splitting any bucket that does not
// fit the memory budget (classic Hybrid Hash / Grace recursion).
type spillSet struct {
	rc     *reduceCtx
	level  int
	prefix string
	bufs   [][]byte
	files  []*disk.File
	// Bytes is the total spill volume written — the paper's reduce-side
	// internal spill I/O, the quantity §V reports dropping by three orders
	// of magnitude under hot-key hashing.
	Bytes int64
}

// spillBufSize is the per-bucket write-behind buffer.
const spillBufSize = 64 << 10

// maxRecursion caps external-hash recursion depth; beyond it a bucket is
// processed even if over budget (counted, never silent).
const maxRecursion = 8

func newSpillSet(rc *reduceCtx, level int, prefix string) *spillSet {
	return &spillSet{
		rc: rc, level: level, prefix: prefix,
		bufs:  make([][]byte, rc.opts.SpillBuckets),
		files: make([]*disk.File, rc.opts.SpillBuckets),
	}
}

// bucketOf assigns a key to a bucket at this set's hash level.
func (ss *spillSet) bucketOf(key []byte) int {
	return ss.rc.hashAt(ss.level).Bucket(key, ss.rc.opts.SpillBuckets)
}

// add spills one tagged entry into bucket b.
func (ss *spillSet) add(p *sim.Proc, b int, key, payload []byte, f form) {
	entry := make([]byte, 0, len(payload)+1)
	entry = append(entry, byte(f))
	entry = append(entry, payload...)
	ss.bufs[b] = kv.AppendPair(ss.bufs[b], key, entry)
	if len(ss.bufs[b]) >= spillBufSize {
		ss.flushBucket(p, b)
	}
}

func (ss *spillSet) flushBucket(p *sim.Proc, b int) {
	if len(ss.bufs[b]) == 0 {
		return
	}
	store := ss.rc.node.ScratchStore()
	if ss.files[b] == nil {
		ss.files[b] = store.Create(fmt.Sprintf("%s/bucket-%02d", ss.prefix, b), false)
	}
	n := int64(len(ss.bufs[b]))
	ss.rc.node.Compute(p, engine.Dur(float64(n), ss.rc.costs.SerializeNsPerByte), engine.PhaseHash)
	store.Append(p, ss.files[b], ss.bufs[b])
	ss.bufs[b] = nil
	ss.Bytes += n
	ss.rc.rt.Counters.Add(engine.CtrReduceSpillBytes, float64(n))
	if ss.rc.rt.Auditing() {
		ss.rc.rt.Audit.SpillWritten(ss.rc.node.ID, n)
	}
	if ss.rc.rt.Tracing() {
		ss.rc.rt.Emit(trace.Spill, "hash-bucket", ss.rc.node.ID, ss.rc.r, 0,
			trace.Num("bytes", float64(n)), trace.Num("bucket", float64(b)),
			trace.Num("level", float64(ss.level)))
	}
}

// hasData reports whether bucket b holds anything.
func (ss *spillSet) hasData(b int) bool {
	return len(ss.bufs[b]) > 0 || (ss.files[b] != nil && ss.files[b].Size() > 0)
}

// anySpilled reports whether any bucket holds anything.
func (ss *spillSet) anySpilled() bool {
	for b := range ss.bufs {
		if ss.hasData(b) {
			return true
		}
	}
	return false
}

// entry is an in-memory tagged contribution handed to processBucket.
type entry struct {
	key     []byte
	payload []byte
	f       form
}

// processBucket loads bucket b plus the given in-memory entries into a
// fresh state table at the next hash level and calls final for every key.
// If the table outgrows the budget mid-load, the remainder (and the table)
// divert into a child spill set one level down, which is then processed
// recursively.
func (ss *spillSet) processBucket(p *sim.Proc, b int, extra []entry, final func(key, state []byte)) {
	ss.flushBucket(p, b)
	if ss.rc.rt.Tracing() {
		ss.rc.rt.Emit(trace.MergePass, "external-bucket", ss.rc.node.ID, ss.rc.r, 0,
			trace.Num("bucket", float64(b)), trace.Num("level", float64(ss.level)))
	}
	nextLevel := ss.level + 1
	st := newStateTable(ss.rc.hashAt(nextLevel), ss.rc.agg, ss.rc.mapComb)

	var child *spillSet
	divert := func(key, payload []byte, f form) {
		if child == nil {
			child = newSpillSet(ss.rc, nextLevel, fmt.Sprintf("%s/b%02d", ss.prefix, b))
			// The resident table moves down with everything else.
			st.iterate(func(k, s []byte) bool {
				child.add(p, child.bucketOf(k), k, s, formState)
				return true
			})
			st = nil
		}
		child.add(p, child.bucketOf(key), key, payload, f)
	}
	over := false
	process := func(key, payload []byte, f form) {
		if over {
			divert(key, payload, f)
			return
		}
		st.fold(key, payload, f)
		if st.usedBytes() > ss.rc.budget {
			// Recursing only helps if the bucket can actually be split: a
			// single key whose state alone exceeds the budget would be
			// rewritten at every level without ever fitting.
			if st.len() > 1 && nextLevel < maxRecursion {
				over = true
			} else {
				ss.rc.rt.Counters.Add("core.overbudget.buckets", 1)
			}
		}
	}

	for _, e := range extra {
		process(e.key, e.payload, e.f)
	}
	if f := ss.files[b]; f != nil && f.Size() > 0 {
		if ss.rc.rt.Auditing() {
			// The stream below drains the bucket file exactly once.
			ss.rc.rt.Audit.SpillRead(ss.rc.node.ID, f.Size())
		}
		stream := sortmerge.NewStream(p, &sortmerge.Run{Store: ss.rc.node.ScratchStore(), File: f})
		n := 0
		var bytes int64
		for {
			k, v, ok := stream.Peek()
			if !ok {
				break
			}
			process(k, v[1:], form(v[0]))
			n++
			bytes += int64(len(k) + len(v))
			stream.Advance()
		}
		ss.rc.chargeFold(p, n, bytes)
	}
	if ss.files[b] != nil {
		ss.rc.node.ScratchStore().Delete(ss.files[b].Name())
		ss.files[b] = nil
	}
	if child != nil {
		// The resident table went down into the child when it was created
		// ... except entries folded before `over` flipped. Move them now.
		if st != nil {
			st.iterate(func(k, s []byte) bool {
				child.add(p, child.bucketOf(k), k, s, formState)
				return true
			})
		}
		for cb := 0; cb < ss.rc.opts.SpillBuckets; cb++ {
			if child.hasData(cb) {
				child.processBucket(p, cb, nil, final)
			}
		}
		return
	}
	st.iterate(func(k, s []byte) bool {
		final(k, s)
		return true
	})
}
