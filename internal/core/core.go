package core

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/faults"
	"onepass/internal/hadoop"
	"onepass/internal/hashlib"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// Mode selects the reduce-side hash technique (§V's three options).
type Mode int

const (
	// HybridHash groups with classic Hybrid Hash: still blocking, I/O
	// comparable to sort-merge, but no sorting CPU.
	HybridHash Mode = iota
	// Incremental maintains a per-key state updated as data arrives; fully
	// pipelined answers when states fit in memory.
	Incremental
	// HotKey is Incremental plus a SpaceSaving sketch that keeps frequent
	// keys' states in memory and spills only cold data; supports early
	// approximate answers for the hot keys.
	HotKey
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case HybridHash:
		return "hybrid-hash"
	case Incremental:
		return "incremental"
	case HotKey:
		return "hot-key"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// HashFrameworkNsPerRecord is the hash engine's per-record runtime
// overhead: byte-array data structures avoid the allocation and GC churn
// behind the baselines' FrameworkNsPerRecord.
const HashFrameworkNsPerRecord = 2600

// HashSeed seeds the engine's hash family: function 0 is shared with the
// baselines for partitioning; functions 1.. serve grouping and each
// recursion level of external hashing.
const HashSeed = hadoop.PartitionSeed

// Options tunes the hash engine.
type Options struct {
	Mode Mode
	// Push enables eager push shuffle (default). Under backpressure the
	// engine falls back to pull from the persisted map output.
	DisablePush bool
	// ChunkBytes is the push granularity.
	ChunkBytes int64
	// BackpressureBytes bounds a reducer's inbound push queue.
	BackpressureBytes int64
	// SpillBuckets is the number of hash buckets used for spilled/cold
	// data (K in DESIGN.md).
	SpillBuckets int
	// HotKeyCounters sizes the SpaceSaving sketch (HotKey mode).
	HotKeyCounters int
	// ApproximateEarly, in HotKey mode, emits the in-memory hot-key states
	// as an approximate snapshot the moment all input has arrived, before
	// the exact completion pass (§V's early answers for hot keys).
	ApproximateEarly bool
	// Faults is the deterministic fault schedule to inject during the run.
	Faults faults.Schedule
}

func (o *Options) defaults() {
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 512 << 10
	}
	if o.BackpressureBytes == 0 {
		o.BackpressureBytes = 8 << 20
	}
	if o.SpillBuckets == 0 {
		o.SpillBuckets = 16
	}
	if o.HotKeyCounters == 0 {
		o.HotKeyCounters = 4096
	}
}

// reducerImpl is one reduce-side hash technique.
type reducerImpl interface {
	// ingest folds one arriving chunk of encoded (key, value) pairs.
	ingest(p *sim.Proc, chunk []byte)
	// finalize emits all results after the last chunk.
	finalize(p *sim.Proc)
}

// Run executes job on rt with the hash-based engine.
func Run(rt *engine.Runtime, job engine.Job, opts Options) (*engine.Result, error) {
	var res *engine.Result
	if err := Start(rt, job, opts, func(_ *sim.Proc, r *engine.Result) { res = r }); err != nil {
		return nil, err
	}
	rt.Env.Run()
	rt.FinishResult(res)
	return res, nil
}

// Start launches job on rt without driving the simulation; see hadoop.Start
// for the contract. The controller invokes done at the job's completion
// instant, after JobDone and StopSampling.
func Start(rt *engine.Runtime, job engine.Job, opts Options, done func(p *sim.Proc, res *engine.Result)) error {
	if err := job.Validate(); err != nil {
		return err
	}
	blocks, err := rt.InputBlocks(job.InputPath)
	if err != nil {
		return err
	}
	if len(blocks) == 0 {
		return fmt.Errorf("%s: input %q has no blocks (was a chained stage's output discarded?)", "core", job.InputPath)
	}
	opts.defaults()
	if job.Speculation && !opts.DisablePush {
		return fmt.Errorf("core: speculative execution requires pull shuffle (DisablePush) — duplicate push attempts would double-deliver chunks")
	}
	// The byte-array memory management library (§V) removes most of the
	// per-record object churn the JVM-based baselines pay; calibrated to
	// land the paper's "up to 48% of CPU cycles" saving.
	if job.Costs.FrameworkNsPerRecord == 0 {
		job.Costs.FrameworkNsPerRecord = HashFrameworkNsPerRecord
	}
	costs := hadoop.JobCosts(&job)
	if costs.HashNs == 0 {
		costs.HashNs = engine.DefaultCosts().HashNs
	}
	if costs.UpdateNsPerRecord == 0 {
		costs.UpdateNsPerRecord = engine.DefaultCosts().UpdateNsPerRecord
	}
	res := &engine.Result{Job: job.Name, Engine: "hash-" + opts.Mode.String()}
	rt.EngineLabel = res.Engine
	oc := rt.NewOutputCollector(&job, res)
	reg := rt.NewRegistry(len(blocks))
	channels := rt.NewPushChannels(job.Reducers, opts.BackpressureBytes)
	partition := hadoop.Partitioner()
	agg, mapCombined := jobAggregator(&job)
	// Fault tolerance: a lost output is recomputed from its DFS block on a
	// surviving node; chunk building is deterministic, so the recovered
	// output serves exactly the chunks that were never push-delivered.
	blockByTask := make(map[int]*dfs.Block, len(blocks))
	for _, b := range blocks {
		blockByTask[b.Index] = b
	}
	reg.Reexec = func(p *sim.Proc, readerNode int, lost *engine.MapOutput) *engine.MapOutput {
		node := rt.Cluster.Node(readerNode)
		if node.Failed() {
			node = survivingNode(rt)
		}
		// Span the recovery attempt like a real map task (attempt 1) so the
		// profiler's span DAG stays connected through fault recovery.
		span := rt.Timeline.Begin(engine.SpanMap, p.Now())
		rt.Emit(trace.TaskStart, engine.SpanMap, node.ID, lost.TaskID, 1)
		out := reexecMapOutput(rt, p, node, &job, costs, blockByTask[lost.TaskID],
			partition, &opts, agg, mapCombined, lost)
		span.End(p.Now())
		rt.Emit(trace.TaskFinish, engine.SpanMap, node.ID, lost.TaskID, 1)
		return out
	}
	rt.InstallFaults(opts.Faults, reg.FailNode)

	rt.StartSampling()
	mapsWG := rt.RunMaps(&job, blocks, func(p *sim.Proc, node *cluster.Node, b *dfs.Block) {
		runMapTask(rt, p, node, &job, costs, b, partition, channels, reg, &opts, agg, mapCombined)
	})
	redsWG := rt.RunReduces(&job, func(p *sim.Proc, node *cluster.Node, r int) {
		runReduceTask(rt, p, node, &job, costs, channels[r], reg, oc, r, &opts, agg, mapCombined)
	})
	rt.Env.Go("job-controller", func(p *sim.Proc) {
		mapsWG.Wait(p)
		for _, pc := range channels {
			pc.Close()
		}
		redsWG.Wait(p)
		rt.JobDone()
		rt.StopSampling()
		done(p, res)
	})
	return nil
}

// reduceCtx bundles what every reduce-side technique needs.
type reduceCtx struct {
	rt      *engine.Runtime
	job     *engine.Job
	costs   engine.CostModel
	node    *cluster.Node
	oc      *engine.OutputCollector
	r       int
	opts    *Options
	agg     engine.Aggregator
	mapComb bool
	budget  int64
	// mapProgress reports the fraction of map tasks completed, for the
	// progress-vs-accuracy series; nil when no registry view is attached.
	mapProgress func() float64
	// hashAt returns the hash function for recursion level l (level 0 is
	// the in-memory grouping hash).
	hashAt func(l int) *hashlib.Func
	// pending is the in-flight pooled fold, if any. The push and pull
	// arrival paths share the single-threaded reducer state, so any access
	// to that state must join first.
	pending *sim.Work
}

func newReduceCtx(rt *engine.Runtime, job *engine.Job, costs engine.CostModel,
	node *cluster.Node, oc *engine.OutputCollector, r int, opts *Options,
	agg engine.Aggregator, mapCombined bool) *reduceCtx {
	cache := map[int]*hashlib.Func{}
	return &reduceCtx{
		rt: rt, job: job, costs: costs, node: node, oc: oc, r: r, opts: opts,
		agg: agg, mapComb: mapCombined, budget: rt.TaskMemory(job),
		hashAt: func(l int) *hashlib.Func {
			if f, ok := cache[l]; ok {
				return f
			}
			f := hashlib.Shared(HashSeed, l+1)
			cache[l] = f
			return f
		},
	}
}

// join waits out any in-flight pooled fold. Both arrival paths (push and
// pull) call it on ingest entry, and foldChunk calls it before returning,
// so reducer state is never read or mutated while a fold is still on the
// pool. The wait is real-time only — it has no virtual effect, so the
// event schedule is identical with and without workers.
func (rc *reduceCtx) join() {
	if rc.pending != nil {
		w := rc.pending
		rc.pending = nil
		w.Wait()
	}
}

// foldChunk applies one chunk's pure decode+fold closure and its CPU
// charge. The closure has no virtual effects, so it rides the worker pool
// and overlaps its own charge; with the pool disabled StartWork runs it
// inline and the virtual sequence — just the chargeFold — is unchanged.
// n and bytes are the chunk's pre-scanned pair count and payload size
// (countChunk), needed because the charge is issued before the join.
func (rc *reduceCtx) foldChunk(p *sim.Proc, n int, bytes int64, fold func()) {
	rc.pending = p.StartWork(fold)
	rc.chargeFold(p, n, bytes)
	rc.join()
}

// chargeFold accounts the CPU of folding n pairs totalling bytes through
// the hash table.
func (rc *reduceCtx) chargeFold(p *sim.Proc, n int, bytes int64) {
	rc.node.Compute(p, engine.Dur(float64(n), rc.costs.HashNs), engine.PhaseHash)
	rc.node.Compute(p, engine.Dur(float64(n), rc.costs.UpdateNsPerRecord)+
		engine.Dur(float64(bytes), rc.costs.SerializeNsPerByte), engine.PhaseUpdate)
	rc.node.Compute(p, engine.Dur(float64(n), rc.costs.FrameworkNsPerRecord), engine.PhaseFramework)
	rc.rt.Counters.Add(engine.CtrHashOps, float64(n))
}

// noteProgress records one progress-vs-accuracy point: current map progress,
// the cumulative pairs made available to the consumer, and the run's
// cumulative reduce-side spill volume.
func (rc *reduceCtx) noteProgress(p *sim.Proc, pairs int) {
	frac := -1.0
	if rc.mapProgress != nil {
		frac = rc.mapProgress()
	}
	rc.oc.NoteProgress(p.Now(), frac, pairs, int64(rc.rt.Counters.Get(engine.CtrReduceSpillBytes)))
}

// emitFinal emits one key's result and charges finalization CPU.
func (rc *reduceCtx) emitFinal(p *sim.Proc, key, state []byte) {
	rc.agg.Final(key, state, func(k, v []byte) {
		rc.oc.Emit(p, rc.r, rc.node.ID, k, v)
	})
	rc.node.Compute(p, engine.Dur(1, rc.costs.ReduceNsPerRecord)+
		engine.Dur(float64(len(state)), rc.costs.SerializeNsPerByte), engine.PhaseReduce)
}

func runReduceTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, pc *engine.PushChannel, reg *engine.Registry,
	oc *engine.OutputCollector, r int, opts *Options, agg engine.Aggregator, mapCombined bool) {

	rc := newReduceCtx(rt, job, costs, node, oc, r, opts, agg, mapCombined)
	rc.mapProgress = func() float64 {
		return float64(reg.Completed()) / float64(reg.TotalMaps())
	}
	var impl reducerImpl
	switch opts.Mode {
	case HybridHash:
		impl = newHybridReducer(rc)
	case Incremental:
		impl = newIncReducer(rc)
	case HotKey:
		impl = newHotReducer(rc)
	default:
		panic(fmt.Sprintf("core: unknown mode %v", opts.Mode))
	}

	// Two arrival paths share the single-threaded reducer state: the push
	// channel, and a puller that fetches partitions the mappers could not
	// push (backpressure fallback) or did not push (pull-only mode).
	done := rt.NewWaitGroup(fmt.Sprintf("hash-red-%d", r), 2)
	shuffleSpan := rt.Timeline.Begin(engine.SpanShuffle, p.Now())
	rt.Emit(trace.PhaseStart, engine.SpanShuffle, node.ID, r, 0)

	rt.Env.Go(fmt.Sprintf("hash-red-%d-pull", r), func(pp *sim.Proc) {
		seen := 0
		for {
			reg.WaitBeyond(pp, seen)
			for ; seen < reg.Completed(); seen++ {
				out := reg.Out(seen)
				if out.WasPushed(r) {
					continue
				}
				data := reg.FetchPart(pp, node.ID, out, r)
				if rt.Auditing() {
					rt.Audit.ShuffleIngested(node.ID, out.TaskID, r, -1, int64(len(data)))
				}
				if len(data) > 0 {
					impl.ingest(pp, data)
				}
				out.ConsumePart(r)
			}
			if reg.AllDone() {
				break
			}
		}
		done.Done()
	})

	for {
		chunk, ok := pc.Pop(p)
		if !ok {
			break
		}
		if rt.Auditing() {
			rt.Audit.ShuffleIngested(node.ID, chunk.MapTask, r, chunk.Seq, int64(len(chunk.Data)))
		}
		impl.ingest(p, chunk.Data)
	}
	done.Done()
	done.Wait(p)
	shuffleSpan.End(p.Now())
	rt.Emit(trace.PhaseEnd, engine.SpanShuffle, node.ID, r, 0)

	reduceSpan := rt.Timeline.Begin(engine.SpanReduce, p.Now())
	rt.Emit(trace.PhaseStart, engine.SpanReduce, node.ID, r, 0)
	impl.finalize(p)
	oc.Close(p, r)
	reduceSpan.End(p.Now())
	rt.Emit(trace.PhaseEnd, engine.SpanReduce, node.ID, r, 0)
}

// survivingNode returns the first compute node that has not failed.
func survivingNode(rt *engine.Runtime) *cluster.Node {
	for _, n := range rt.Cluster.ComputeNodes() {
		if !n.Failed() {
			return n
		}
	}
	panic("core: no surviving compute node for re-execution")
}

// decodePairs walks an encoded chunk.
func decodePairs(chunk []byte, f func(key, val []byte)) (n int) {
	d := kv.NewDecoder(chunk)
	for {
		k, v, ok := d.Next()
		if !ok {
			return n
		}
		n++
		f(k, v)
	}
}

// countChunk pre-scans an encoded chunk for the pair count and payload
// bytes that chargeFold needs, so the charge can overlap the pooled fold.
func countChunk(chunk []byte) (n int, bytes int64) {
	d := kv.NewDecoder(chunk)
	for {
		k, v, ok := d.Next()
		if !ok {
			return
		}
		n++
		bytes += int64(len(k) + len(v))
	}
}
