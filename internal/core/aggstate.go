// Package core is the paper's contribution (§V): a hash-based MapReduce
// runtime that replaces sort-merge group-by entirely. The map side
// partitions by hash with no sorting and combines through an in-memory hash
// table; the reduce side offers three hash techniques — blocking Hybrid
// Hash [Shapiro 86], fully incremental per-key state update, and the
// hot-key variant that couples incremental update with an online
// frequent-items sketch so the important keys stay in memory when the full
// key set does not fit.
package core

import (
	"encoding/binary"

	"onepass/internal/engine"
	"onepass/internal/hashlib"
	"onepass/internal/memtable"
)

// form describes how a payload folds into per-key state.
type form byte

const (
	// formIncoming is a value as shuffled from mappers: a partial aggregate
	// state when the map side combined, a raw value otherwise.
	formIncoming form = 0
	// formState is a serialized state (from an evicted or demoted table
	// entry); it always folds with Merge.
	formState form = 1
)

// listAgg adapts a reduce-function-only job (no Aggregator) to the
// incremental interface: the state is the framed concatenation of raw
// values, and Final replays them through the job's reduce function. This is
// how the hash engines run holistic tasks like sessionization.
type listAgg struct {
	reduce engine.ReduceFunc
}

func frameAppend(state, val []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(val)))
	state = append(state, hdr[:n]...)
	return append(state, val...)
}

func frameIter(state []byte, f func(val []byte)) int {
	n := 0
	off := 0
	for off < len(state) {
		l, k := binary.Uvarint(state[off:])
		off += k
		f(state[off : off+int(l)])
		off += int(l)
		n++
	}
	return n
}

func (a listAgg) Init(val []byte) []byte          { return frameAppend(nil, val) }
func (a listAgg) Update(state, val []byte) []byte { return frameAppend(state, val) }
func (a listAgg) Merge(x, y []byte) []byte        { return append(x, y...) }
func (a listAgg) Final(key, state []byte, emit engine.Emit) {
	var vals [][]byte
	frameIter(state, func(v []byte) { vals = append(vals, v) })
	a.reduce(key, vals, emit)
}

// jobAggregator returns the aggregator to run the job with and whether the
// map side performs hash-based combining (only when a real aggregator
// exists — a list state on the map side would not shrink anything).
func jobAggregator(job *engine.Job) (agg engine.Aggregator, mapCombined bool) {
	if job.Agg != nil {
		return job.Agg, true
	}
	if job.Monoid != nil {
		return engine.MonoidAgg{M: job.Monoid}, true
	}
	return listAgg{reduce: job.Reduce}, false
}

// stateTable maps keys to aggregation states with byte-accurate memory
// accounting. Keys live in a memtable arena (the paper's byte-array memory
// management); states are byte strings indexed through the table value.
type stateTable struct {
	tbl        *memtable.Table
	states     [][]byte
	stateBytes int64
	// keyBytes tracks live keys' byte volume. Budget accounting uses live
	// bytes rather than the arena's cumulative allocation: evicted keys'
	// arena space is reclaimable by a table rebuild, so charging it forever
	// would make eviction unable to ever get back under budget.
	keyBytes int64
	agg      engine.Aggregator
	mapComb  bool
}

// stateSliceOverhead approximates per-state slice bookkeeping.
const stateSliceOverhead = 24

func newStateTable(h *hashlib.Func, agg engine.Aggregator, mapCombined bool) *stateTable {
	return &stateTable{
		tbl:     memtable.NewTable(h, memtable.NewArena(0), 64),
		agg:     agg,
		mapComb: mapCombined,
	}
}

// reset empties the table for reuse: slots and arena slabs are recycled in
// place, so a table that is flushed and refilled (the map-side combine
// cycle) stops allocating once it reaches steady state.
func (st *stateTable) reset() {
	st.tbl.Reset()
	for i := range st.states {
		st.states[i] = nil
	}
	st.states = st.states[:0]
	st.stateBytes = 0
	st.keyBytes = 0
}

// fold incorporates one payload for key. It returns true when the key was
// newly inserted.
func (st *stateTable) fold(key, payload []byte, f form) bool {
	isNew := false
	st.tbl.Upsert(key, func(old uint64, exists bool) uint64 {
		if !exists {
			var s []byte
			switch {
			case f == formState || st.mapComb:
				s = append([]byte(nil), payload...)
			default:
				s = st.agg.Init(payload)
			}
			st.states = append(st.states, s)
			st.stateBytes += int64(len(s)) + stateSliceOverhead
			st.keyBytes += int64(len(key))
			isNew = true
			return uint64(len(st.states) - 1)
		}
		prev := st.states[old]
		st.stateBytes -= int64(len(prev))
		var s []byte
		switch {
		case f == formState || st.mapComb:
			s = st.agg.Merge(prev, payload)
		default:
			s = st.agg.Update(prev, payload)
		}
		st.states[old] = s
		st.stateBytes += int64(len(s))
		return old
	})
	return isNew
}

// get returns the current state for key.
func (st *stateTable) get(key []byte) ([]byte, bool) {
	idx, ok := st.tbl.Get(key)
	if !ok {
		return nil, false
	}
	return st.states[idx], true
}

// len returns the number of live keys.
func (st *stateTable) len() int { return st.tbl.Len() }

// entrySlotCost approximates the hash-table slot plus arena bookkeeping per
// live key.
const entrySlotCost = 48

// usedBytes is the budget-relevant footprint: live keys, their states, and
// table slots.
func (st *stateTable) usedBytes() int64 {
	return st.keyBytes + st.stateBytes + int64(st.tbl.Len())*entrySlotCost
}

// iterate visits (key, state) for every live key. Keys alias arena memory.
func (st *stateTable) iterate(f func(key, state []byte) bool) {
	st.tbl.Iterate(func(key []byte, idx uint64) bool {
		return f(key, st.states[idx])
	})
}

// remove deletes key (its state bytes stop counting against the budget).
func (st *stateTable) remove(key []byte) {
	idx, ok := st.tbl.Get(key)
	if !ok {
		return
	}
	st.stateBytes -= int64(len(st.states[idx])) + stateSliceOverhead
	st.keyBytes -= int64(len(key))
	st.states[idx] = nil
	st.tbl.Delete(key)
}
