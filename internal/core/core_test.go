package core

import (
	"fmt"
	"strconv"
	"testing"

	"onepass/internal/engine"
	"onepass/internal/enginetest"
	"onepass/internal/faults"
	"onepass/internal/gen"
	"onepass/internal/hadoop"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

func smallClicks() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	cfg.Users = 300
	cfg.URLs = 150
	return cfg
}

func smallDocs() gen.DocConfig {
	cfg := gen.DefaultDocConfig()
	cfg.Vocab = 400
	cfg.WordsPerDoc = 60
	return cfg
}

func run(t *testing.T, w *workloads.Workload, cfg enginetest.Config, opts Options) (*enginetest.Fixture, *engine.Result) {
	t.Helper()
	f := enginetest.New(t, w, cfg)
	res, err := Run(f.RT, f.Job, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

// Every mode x every workload must match the reference output exactly.
func TestAllModesAllWorkloadsMatchReference(t *testing.T) {
	for _, mode := range []Mode{HybridHash, Incremental, HotKey} {
		for _, mk := range []func() *workloads.Workload{
			func() *workloads.Workload { return workloads.Sessionization(smallClicks()) },
			func() *workloads.Workload { return workloads.PageFrequency(smallClicks()) },
			func() *workloads.Workload { return workloads.PerUserCount(smallClicks()) },
			func() *workloads.Workload { return workloads.InvertedIndex(smallDocs()) },
		} {
			w := mk()
			t.Run(fmt.Sprintf("%s/%s", mode, w.Name), func(t *testing.T) {
				f, res := run(t, w, enginetest.Config{}, Options{Mode: mode})
				f.CheckOutput(t, w, res)
			})
		}
	}
}

// The same matrix under severe memory pressure: spills, evictions, and
// external hashing must not corrupt results. manyClicks uses enough
// distinct users that per-key states cannot fit a 16 KB budget.
func manyClicks() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	cfg.Users = 8000
	cfg.URLs = 150
	cfg.UserSkew = 1.05
	return cfg
}

func TestAllModesUnderMemoryPressure(t *testing.T) {
	for _, mode := range []Mode{HybridHash, Incremental, HotKey} {
		for _, mk := range []func() *workloads.Workload{
			func() *workloads.Workload { return workloads.Sessionization(manyClicks()) },
			func() *workloads.Workload { return workloads.PerUserCount(manyClicks()) },
		} {
			w := mk()
			t.Run(fmt.Sprintf("%s/%s", mode, w.Name), func(t *testing.T) {
				f, res := run(t, w, enginetest.Config{MemPerTask: 16 << 10, Reducers: 2},
					Options{Mode: mode, SpillBuckets: 4, HotKeyCounters: 32})
				f.CheckOutput(t, w, res)
				if res.Counters.Get(engine.CtrReduceSpillBytes) == 0 {
					t.Error("expected reduce-side spills under a 16KB budget")
				}
			})
		}
	}
}

func TestPullOnlyModeMatches(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	f, res := run(t, w, enginetest.Config{}, Options{Mode: Incremental, DisablePush: true})
	f.CheckOutput(t, w, res)
}

func TestNoSortingCPU(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{Mode: Incremental})
	if res.CPU.Seconds(engine.PhaseSort) != 0 {
		t.Fatalf("hash engine charged %v s of sort CPU", res.CPU.Seconds(engine.PhaseSort))
	}
	if res.Counters.Get(engine.CtrSortComparisons) != 0 {
		t.Fatal("hash engine counted sort comparisons")
	}
	if res.Counters.Get(engine.CtrHashOps) == 0 {
		t.Fatal("hash ops not counted")
	}
}

func TestIncrementalNoSpillWhenMemoryAmple(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	_, res := run(t, w, enginetest.Config{MemPerTask: 1 << 30}, Options{Mode: Incremental})
	if res.Counters.Get(engine.CtrReduceSpillBytes) != 0 {
		t.Fatalf("spilled %v bytes with ample memory", res.Counters.Get(engine.CtrReduceSpillBytes))
	}
}

func TestIncrementalFasterThanHadoopFirstOutput(t *testing.T) {
	// The hash engine's first answer arrives well before Hadoop's: no
	// blocking merge in front of the reduce function.
	// Sessionization at a size where the sort-merge pipeline's buffer sort
	// and merge actually cost something.
	cfg := enginetest.Config{InputSize: 2 << 20, MemPerTask: 64 << 10, Reducers: 2}
	w1 := workloads.Sessionization(smallClicks())
	f1 := enginetest.New(t, w1, cfg)
	hashRes, err := Run(f1.RT, f1.Job, Options{Mode: Incremental})
	if err != nil {
		t.Fatal(err)
	}
	w2 := workloads.Sessionization(smallClicks())
	f2 := enginetest.New(t, w2, cfg)
	hRes, err := hadoop.Run(f2.RT, f2.Job, hadoop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Makespans round up to the 1s sampler tick at this tiny scale, so
	// compare the un-rounded observables: first-answer latency and CPU.
	if hashRes.FirstOutputAt >= hRes.FirstOutputAt {
		t.Errorf("hash first output %v not before hadoop %v", hashRes.FirstOutputAt, hRes.FirstOutputAt)
	}
	if hashRes.CPU.Total() >= hRes.CPU.Total() {
		t.Errorf("hash CPU %.2fs not below hadoop %.2fs", hashRes.CPU.Total(), hRes.CPU.Total())
	}
}

func TestEmitWhenThresholdFiresEarly(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	job := w.Job
	const threshold = 50
	job.EmitWhen = func(key, state []byte) bool {
		return workloads.CountState(state) >= threshold
	}
	f := enginetest.New(t, w, enginetest.Config{})
	f.Job.EmitWhen = job.EmitWhen
	res, err := Run(f.RT, f.Job, Options{Mode: Incremental})
	if err != nil {
		t.Fatal(err)
	}
	// Some user must cross the threshold before the last map finishes.
	_, mapEnd, _ := res.Timeline.PhaseWindow(engine.SpanMap)
	if res.FirstOutputAt >= mapEnd {
		t.Fatalf("threshold answer at %v, maps ended %v — not incremental", res.FirstOutputAt, mapEnd)
	}
}

func TestHotKeySpillsLessThanIncremental(t *testing.T) {
	// Zipf-skewed per-user counting with memory far below the key-state
	// volume: cold-first eviction must not spill more than blind bucket
	// eviction, and both must stay correct.
	mem := int64(16 << 10)
	clicks := manyClicks()
	clicks.UserSkew = 1.5 // hot keys must exist for pinning to pay
	w1 := workloads.PerUserCount(clicks)
	_, inc := run(t, w1, enginetest.Config{MemPerTask: mem, Reducers: 2, InputSize: 512 << 10},
		Options{Mode: Incremental, SpillBuckets: 8})
	w2 := workloads.PerUserCount(clicks)
	f2, hot := run(t, w2, enginetest.Config{MemPerTask: mem, Reducers: 2, InputSize: 512 << 10},
		Options{Mode: HotKey, SpillBuckets: 8, HotKeyCounters: 512})
	f2.CheckOutput(t, workloads.PerUserCount(clicks), hot)
	incSpill := inc.Counters.Get(engine.CtrReduceSpillBytes)
	hotSpill := hot.Counters.Get(engine.CtrReduceSpillBytes)
	if incSpill == 0 {
		t.Fatal("incremental should have spilled at this budget")
	}
	if float64(hotSpill) > 1.05*float64(incSpill) {
		t.Fatalf("hot-key spill %v exceeds incremental %v", hotSpill, incSpill)
	}
	if hot.Counters.Get("core.hotkey.evictions") == 0 {
		t.Fatal("hot-key engine never evicted — budget not exercised")
	}
}

func TestHotKeyApproximateEarlySnapshot(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	f, res := run(t, w, enginetest.Config{MemPerTask: 16 << 10, Reducers: 2},
		Options{Mode: HotKey, ApproximateEarly: true, SpillBuckets: 4, HotKeyCounters: 64})
	if len(res.Snapshots) == 0 {
		t.Fatal("no early hot-key snapshot")
	}
	f.CheckOutput(t, w, res) // exact completion must still hold
}

func TestHybridHashIsBlocking(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{Mode: HybridHash})
	_, mapEnd, _ := res.Timeline.PhaseWindow(engine.SpanMap)
	if res.FirstOutputAt < mapEnd {
		t.Fatalf("hybrid hash emitted at %v before maps ended %v", res.FirstOutputAt, mapEnd)
	}
}

func TestMapSideCombineShrinksShuffle(t *testing.T) {
	w := workloads.PageFrequency(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{Mode: Incremental})
	shuffle := res.Counters.Get(engine.CtrShuffleBytes)
	mapIn := res.Counters.Get(engine.CtrMapInputBytes)
	if shuffle > mapIn/10 {
		t.Fatalf("map-side hash combine left shuffle at %v of %v input bytes", shuffle, mapIn)
	}
}

func TestDeterministic(t *testing.T) {
	r := func() *engine.Result {
		w := workloads.PerUserCount(smallClicks())
		_, res := run(t, w, enginetest.Config{}, Options{Mode: HotKey})
		return res
	}
	a, b := r(), r()
	if a.Makespan != b.Makespan || a.OutputPairs != b.OutputPairs {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Makespan, a.OutputPairs, b.Makespan, b.OutputPairs)
	}
}

func TestModeString(t *testing.T) {
	if HybridHash.String() != "hybrid-hash" || Incremental.String() != "incremental" ||
		HotKey.String() != "hot-key" || Mode(99).String() == "" {
		t.Fatal("mode strings broken")
	}
}

// TestHotKeyEarlyAnswersApproximateButClose captures the §V claim that the
// hot-key technique "can return (approximate) results for these keys as
// early as when all the input data has arrived": early emissions may
// undercount (contributions that passed through a cold phase are
// reconciled later) but never overcount, and for the dominant keys they
// carry most of the mass.
func TestHotKeyEarlyAnswersApproximateButClose(t *testing.T) {
	clicks := manyClicks()
	clicks.UserSkew = 1.5
	w := workloads.PerUserCount(clicks)
	f := enginetest.New(t, w, enginetest.Config{MemPerTask: 16 << 10, Reducers: 2, InputSize: 512 << 10})
	res, err := Run(f.RT, f.Job, Options{Mode: HotKey, ApproximateEarly: true,
		SpillBuckets: 8, HotKeyCounters: 512})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if len(res.Snapshots) == 0 {
		t.Fatal("no early snapshot")
	}
	// Early output was written under <output>/early/; read it back and
	// compare against the exact final counts: early never overcounts, and
	// for the keys it covers it carries most of the mass.
	early := map[string]uint64{}
	for r := 0; r < 2; r++ {
		path := fmt.Sprintf("%s/early/part-r-%05d", f.Job.OutputPath, r)
		blocks, err := f.RT.DFS.Blocks(path)
		if err != nil {
			continue
		}
		for _, b := range blocks {
			data := b.Peek()
			off := 0
			for off < len(data) {
				k, v, n := kv.DecodePair(data[off:])
				if n == 0 {
					break
				}
				early[string(k)], _ = strconv.ParseUint(string(v), 10, 64)
				off += n
			}
		}
	}
	if len(early) == 0 {
		t.Fatal("no early answers retained")
	}
	var coveredMass, exactMass float64
	for k, ev := range early {
		exact, err := strconv.ParseUint(res.Output[k], 10, 64)
		if err != nil {
			t.Fatalf("early key %q missing from exact output", k)
		}
		if ev > exact {
			t.Fatalf("early answer for %q overcounts: %d > %d", k, ev, exact)
		}
		coveredMass += float64(ev)
		exactMass += float64(exact)
	}
	if coveredMass < 0.5*exactMass {
		t.Fatalf("early answers carry only %.0f%% of their keys' exact mass", 100*coveredMass/exactMass)
	}
	totalEarly := 0
	for _, s := range res.Snapshots {
		totalEarly += s.Pairs
		if s.At <= 0 {
			t.Fatal("snapshot missing timestamp")
		}
	}
	if totalEarly == 0 {
		t.Fatal("early snapshots carried no pairs")
	}
	// Early answers cover the hot keys — far fewer than all keys, but the
	// point is they exist before the cold-completion pass.
	if totalEarly >= res.OutputPairs {
		t.Fatalf("early pairs %d should be a subset of final %d", totalEarly, res.OutputPairs)
	}
}

func TestNodeFailureReexecutesLostMaps(t *testing.T) {
	for _, mode := range []Mode{HybridHash, Incremental, HotKey} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			w := workloads.PerUserCount(smallClicks())
			// Enough blocks that node 1 is still mapping when it dies; its
			// persisted outputs and leftover files are lost and must be
			// recomputed when reducers pull them.
			f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 32 * 64 << 10})
			res, err := Run(f.RT, f.Job, Options{Mode: mode,
				Faults: faults.Schedule{Faults: []faults.Fault{
					{Kind: faults.NodeFailure, Node: 1, At: 10 * sim.Millisecond}}}})
			if err != nil {
				t.Fatal(err)
			}
			f.CheckOutput(t, w, res)
			if res.Counters.Get(engine.CtrFaultsInjected) != 1 {
				t.Fatal("fault not injected")
			}
		})
	}
}

func TestPullOnlyNodeFailureReexecutes(t *testing.T) {
	// With push disabled every partition travels through the pull path, so a
	// failure always forces re-execution of the dead node's completed maps.
	w := workloads.PerUserCount(smallClicks())
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 32 * 64 << 10})
	res, err := Run(f.RT, f.Job, Options{Mode: Incremental, DisablePush: true,
		Faults: faults.Schedule{Faults: []faults.Fault{
			{Kind: faults.NodeFailure, Node: 1, At: 20 * sim.Millisecond}}}})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrTasksReexecuted) == 0 {
		t.Fatal("no map tasks were re-executed after the failure")
	}
}
