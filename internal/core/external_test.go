package core

import (
	"fmt"
	"testing"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

// newTestReduceCtx builds a reduceCtx over a 2-node simulated cluster with
// the given budget, plus the env to drive processes.
func newTestReduceCtx(t *testing.T, budget int64, buckets int) (*sim.Env, *reduceCtx) {
	t.Helper()
	env := sim.New()
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 2
	cl := cluster.New(env, ccfg)
	rt := engine.NewRuntime(env, cl, dfs.New(cl, 64<<10, 1))
	job := workloads.PerUserCount(smallClicks()).Job
	job.Name = "ext-test"
	job.Reducers = 1
	agg, mapComb := jobAggregator(&job)
	opts := &Options{}
	opts.defaults()
	opts.SpillBuckets = buckets
	rc := newReduceCtx(rt, &job, engine.DefaultCosts(), cl.Node(0), nil, 0, opts, agg, mapComb)
	rc.budget = budget
	return env, rc
}

func TestSpillSetRoundTripThroughBuckets(t *testing.T) {
	env, rc := newTestReduceCtx(t, 1<<20, 4)
	env.Go("t", func(p *sim.Proc) {
		ss := newSpillSet(rc, 0, "t")
		agg := engine.MonoidAgg{M: workloads.CountMonoid{}}
		want := map[string]uint64{}
		for i := 0; i < 300; i++ {
			key := []byte(fmt.Sprintf("k%03d", i%50))
			ss.add(p, ss.bucketOf(key), key, agg.Init([]byte("1")), formIncoming)
			want[string(key)]++
		}
		if !ss.anySpilled() {
			t.Error("nothing spilled")
		}
		got := map[string]uint64{}
		for b := 0; b < 4; b++ {
			if !ss.hasData(b) {
				continue
			}
			ss.processBucket(p, b, nil, func(k, s []byte) {
				got[string(k)] = workloads.CountState(s)
			})
		}
		if len(got) != len(want) {
			t.Errorf("keys = %d, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s = %d, want %d", k, got[k], v)
			}
		}
	})
	env.Run()
}

func TestSpillSetExtraEntriesMergeWithFile(t *testing.T) {
	env, rc := newTestReduceCtx(t, 1<<20, 2)
	env.Go("t", func(p *sim.Proc) {
		ss := newSpillSet(rc, 0, "t")
		agg := engine.MonoidAgg{M: workloads.CountMonoid{}}
		key := []byte("shared")
		b := ss.bucketOf(key)
		ss.add(p, b, key, agg.Init([]byte("7")), formIncoming)
		resident := agg.Init([]byte("35"))
		var got uint64
		ss.processBucket(p, b, []entry{{key: key, payload: resident, f: formState}},
			func(k, s []byte) { got = workloads.CountState(s) })
		if got != 42 {
			t.Errorf("merged count = %d, want 42", got)
		}
	})
	env.Run()
}

func TestSpillSetRecursionOnOversizedBucket(t *testing.T) {
	// A budget so small that any loaded bucket must recurse at least once.
	env, rc := newTestReduceCtx(t, 600, 2)
	env.Go("t", func(p *sim.Proc) {
		ss := newSpillSet(rc, 0, "t")
		agg := engine.MonoidAgg{M: workloads.CountMonoid{}}
		want := map[string]uint64{}
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			ss.add(p, ss.bucketOf(key), key, agg.Init([]byte("1")), formIncoming)
			want[string(key)]++
		}
		got := map[string]uint64{}
		for b := 0; b < 2; b++ {
			if ss.hasData(b) {
				ss.processBucket(p, b, nil, func(k, s []byte) {
					got[string(k)] += workloads.CountState(s)
				})
			}
		}
		if len(got) != len(want) {
			t.Errorf("keys = %d, want %d (recursion lost or duplicated keys)", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s = %d, want %d", k, got[k], v)
			}
		}
	})
	env.Run()
}

func TestSpillSetSingleOversizedKeyDoesNotRecurseForever(t *testing.T) {
	env, rc := newTestReduceCtx(t, 200, 2)
	// List states (no mapComb): one key accumulating far past the budget.
	job := workloads.Sessionization(smallClicks()).Job
	agg, mapComb := jobAggregator(&job)
	rc.agg, rc.mapComb = agg, mapComb
	env.Go("t", func(p *sim.Proc) {
		ss := newSpillSet(rc, 0, "t")
		key := []byte("hot-user")
		b := ss.bucketOf(key)
		for i := 0; i < 100; i++ {
			ss.add(p, b, key, []byte(fmt.Sprintf("%d /page", i)), formIncoming)
		}
		vals := 0
		ss.processBucket(p, b, nil, func(k, s []byte) {
			vals = frameIter(s, func([]byte) {})
		})
		if vals != 100 {
			t.Errorf("values = %d, want 100", vals)
		}
	})
	env.Run()
	if rc.rt.Counters.Get("core.overbudget.buckets") == 0 {
		t.Fatal("oversized single key should be counted as over-budget, not recursed")
	}
}

func TestSpillSetDeletesFilesAfterProcessing(t *testing.T) {
	env, rc := newTestReduceCtx(t, 1<<20, 2)
	env.Go("t", func(p *sim.Proc) {
		ss := newSpillSet(rc, 0, "t")
		agg := engine.MonoidAgg{M: workloads.CountMonoid{}}
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("k%d", i))
			ss.add(p, ss.bucketOf(key), key, agg.Init([]byte("1")), formIncoming)
		}
		for b := 0; b < 2; b++ {
			if ss.hasData(b) {
				ss.processBucket(p, b, nil, func(k, s []byte) {})
			}
		}
		if n := len(rc.node.ScratchStore().Names()); n != 0 {
			t.Errorf("%d leftover spill files: %v", n, rc.node.ScratchStore().Names())
		}
	})
	env.Run()
}
