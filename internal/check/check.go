// Package check is the cross-engine differential checker: a seeded config
// fuzzer feeds (workload, configuration, fault schedule) tuples to every
// registered engine and asserts that all of them produce identical grouped
// output, that the output matches the single-threaded in-memory reference,
// that faulted runs converge to the clean answer, that monoid workloads
// produce the same answer with the monoid stripped (the monoid-off
// equivalence axis), that incremental re-runs over a fuzzed delta match a
// full re-run over the evolved input byte for byte (the delta equivalence
// axis), and that chained multi-stage pipelines carry traces and faults
// into every stage. All runs execute with the runtime invariant
// audits armed, so any conservation or leak violation at a fuzzed
// configuration also fails the check.
package check

import (
	"fmt"
	"io"

	"onepass"
	"onepass/internal/engine"
	"onepass/internal/workloads"
)

// Options parameterizes a differential-check sweep.
type Options struct {
	// Seeds is how many fuzzed tuples to check (default 25).
	Seeds int
	// Seed is the base seed; tuple i uses Seed+i (default 1).
	Seed int64
	// Parallelism is the intra-run worker pool width applied to every run
	// (Config.Parallelism). 0 or 1 keeps runs serial; reports are
	// byte-identical at any width — CI runs the same slice serial and
	// parallel and diffs the reports.
	Parallelism int
	// Log, when non-nil, receives one progress line per tuple.
	Log io.Writer
}

// Failure is one differential or audit violation, with enough context to
// reproduce it.
type Failure struct {
	Seed   int64
	Engine string
	Stage  string // "clean", "reference", "monoid-off", "delta", "faulted", "chained", "chained-faulted"
	Detail string
	Tuple  string
}

func (f Failure) String() string {
	return fmt.Sprintf("seed %d [%s/%s]: %s\n  tuple: %s\n  repro: go run ./cmd/check -seed %d -seeds 1",
		f.Seed, f.Engine, f.Stage, f.Detail, f.Tuple, f.Seed)
}

// Report summarizes a sweep.
type Report struct {
	Tuples   int
	Runs     int
	Failures []Failure
}

// Run executes the sweep described by opts.
func Run(opts Options) *Report {
	if opts.Seeds <= 0 {
		opts.Seeds = 25
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rep := &Report{}
	for i := 0; i < opts.Seeds; i++ {
		seed := opts.Seed + int64(i)
		runs, fails := CheckSeed(seed, opts.Parallelism)
		rep.Tuples++
		rep.Runs += runs
		rep.Failures = append(rep.Failures, fails...)
		if opts.Log != nil {
			status := "ok"
			if len(fails) > 0 {
				status = fmt.Sprintf("%d FAILURES", len(fails))
			}
			fmt.Fprintf(opts.Log, "seed %d: %d runs, %s\n", seed, runs, status)
		}
	}
	return rep
}

// CheckSeed runs every check for one fuzzed tuple: the clean all-engine
// differential with reference agreement always; for monoid workloads a
// per-engine monoid-off rerun that must reproduce the clean checksum
// byte-for-byte (the combining layer is an optimization, never an answer
// change); on even seeds a per-engine chaos-faulted rerun (single stage, so
// node failures are survivable — the input is regenerable); on odd seeds a
// chained two-stage pipeline, clean and under a degradation-only schedule
// (stage-1 output is written data a node failure could strand, so chained
// runs degrade rather than kill). parallelism sets each run's intra-run
// worker pool width (0 = serial).
func CheckSeed(seed int64, parallelism int) (runs int, fails []Failure) {
	t := FuzzTuple(seed)
	t.Cfg.Parallelism = parallelism
	add := func(eng, stage, format string, args ...any) {
		fails = append(fails, Failure{
			Seed: seed, Engine: eng, Stage: stage,
			Detail: fmt.Sprintf(format, args...), Tuple: t.String(),
		})
	}

	ref := workloads.Reference(t.Workload, ReferenceBlocks(t.Workload, t.Input, t.Cfg.BlockSize))

	clean := make(map[onepass.Engine]*onepass.Result)
	var wantSum uint64
	var wantEngine string
	for _, e := range onepass.Engines() {
		cfg := t.Cfg
		cfg.Engine = e
		res, err := onepass.RunWorkload(cfg, t.Workload, t.Input)
		runs++
		if err != nil {
			add(e.String(), "clean", "%v", err)
			continue
		}
		clean[e] = res
		if diff := diffOutput(res.Output, ref); diff != "" {
			add(e.String(), "reference", "output disagrees with reference: %s", diff)
		}
		if wantEngine == "" {
			wantSum, wantEngine = res.OutputChecksum, e.String()
		} else if res.OutputChecksum != wantSum {
			add(e.String(), "clean", "checksum %016x != %s's %016x", res.OutputChecksum, wantEngine, wantSum)
		}
	}

	if t.Workload.Job.Monoid != nil {
		for _, e := range onepass.Engines() {
			base := clean[e]
			if base == nil {
				continue
			}
			cfg := t.Cfg
			cfg.Engine = e
			cfg.DisableMonoid = true
			res, err := onepass.RunWorkload(cfg, t.Workload, t.Input)
			runs++
			if err != nil {
				add(e.String(), "monoid-off", "%v", err)
				continue
			}
			if res.OutputChecksum != base.OutputChecksum {
				add(e.String(), "monoid-off", "checksum %016x != monoid-on %016x: combining changed the answer",
					res.OutputChecksum, base.OutputChecksum)
			}
			if diff := diffOutput(res.Output, ref); diff != "" {
				add(e.String(), "monoid-off", "output disagrees with reference: %s", diff)
			}
		}
	}

	if t.Delta != nil {
		runs += checkDelta(t, add)
	}

	if seed%2 == 0 {
		for _, e := range onepass.Engines() {
			base := clean[e]
			if base == nil {
				continue
			}
			cfg := t.Cfg
			cfg.Engine = e
			cfg.Faults = onepass.ChaosFaults(seed, cfg.Nodes, base.Makespan)
			res, err := onepass.RunWorkload(cfg, t.Workload, t.Input)
			runs++
			if err != nil {
				add(e.String(), "faulted", "%v", err)
				continue
			}
			if res.OutputChecksum != base.OutputChecksum {
				add(e.String(), "faulted", "checksum %016x diverged from clean %016x under %v",
					res.OutputChecksum, base.OutputChecksum, cfg.Faults)
			}
			if res.Counters.Get(engine.CtrFaultsInjected) == 0 {
				add(e.String(), "faulted", "schedule %v injected no faults (schedule dropped?)", cfg.Faults)
			}
		}
	} else {
		runs += checkChained(t, add)
	}
	return runs, fails
}

// checkDelta is the delta equivalence axis: one engine per seed (rotating
// through the registry so the sweep covers all of them) applies the tuple's
// fuzzed delta incrementally — priming preserved state on the base, then
// re-running over changed blocks only — and must reproduce a plain full run
// over the evolved dataset byte for byte, checksum and grouped output both.
func checkDelta(t Tuple, add func(eng, stage, format string, args ...any)) (runs int) {
	engines := onepass.Engines()
	e := engines[int(t.Seed)%len(engines)]
	cfg := t.Cfg
	cfg.Engine = e
	data := onepass.Dataset{Path: "input/" + t.Workload.Name, Size: t.Input, Gen: t.Workload.Gen}
	dr, err := onepass.RunDelta(cfg, data, t.Workload.Job, *t.Delta)
	runs += 2 // base prime + incremental re-run
	if err != nil {
		add(e.String(), "delta", "%v", err)
		return runs
	}
	cl := onepass.NewCluster(cfg)
	v2 := onepass.DeltaDataset(data, *t.Delta, cfg.BlockSize)
	if err := cl.Register(v2); err != nil {
		add(e.String(), "delta", "registering evolved dataset: %v", err)
		return runs
	}
	job := t.Workload.Job
	job.InputPath = v2.Path
	job.RetainOutput = true
	full, err := cl.RunJob(job)
	runs++
	if err != nil {
		add(e.String(), "delta", "full re-run: %v", err)
		return runs
	}
	if dr.Incremental.OutputChecksum != full.OutputChecksum {
		add(e.String(), "delta", "incremental checksum %016x != full re-run %016x",
			dr.Incremental.OutputChecksum, full.OutputChecksum)
	}
	if diff := diffOutput(dr.Incremental.Output, full.Output); diff != "" {
		add(e.String(), "delta", "incremental output disagrees with full re-run: %s", diff)
	}
	return runs
}

// checkChained runs the two-stage page-count -> top-k pipeline on every
// engine: clean with a trace sink (both stages must record spans), then
// under a degradation-only fault schedule (both stages' checksums must
// match the clean run and the schedule must actually fire). This is the
// differential form of the chained-job regression: an engine runner that
// drops the trace, audit, or fault schedule on Cluster.RunJob fails here.
func checkChained(t Tuple, add func(eng, stage, format string, args ...any)) (runs int) {
	type pair struct{ count, top uint64 }
	clean := make(map[onepass.Engine]*chainedRun)
	var want pair
	var wantEngine string
	for _, e := range onepass.Engines() {
		cfg := t.Cfg
		cfg.Engine = e
		tl := onepass.NewTraceLog()
		cr, err := runChained(cfg, t.Clicks, t.Input, tl)
		runs += cr.runs
		if err != nil {
			add(e.String(), "chained", "%v", err)
			continue
		}
		clean[e] = cr
		if cr.span1 == 0 {
			add(e.String(), "chained", "stage 1 recorded no trace events")
		}
		if tl.Len() <= cr.span1 {
			add(e.String(), "chained", "stage 2 recorded no trace events (%d after stage 1, %d after stage 2): trace sink dropped between jobs", cr.span1, tl.Len())
		}
		got := pair{cr.count.OutputChecksum, cr.top.OutputChecksum}
		if wantEngine == "" {
			want, wantEngine = got, e.String()
		} else if got != want {
			add(e.String(), "chained", "stage checksums (%016x,%016x) != %s's (%016x,%016x)",
				got.count, got.top, wantEngine, want.count, want.top)
		}
	}

	for _, e := range onepass.Engines() {
		base := clean[e]
		if base == nil {
			continue
		}
		cfg := t.Cfg
		cfg.Engine = e
		// Degradations land well inside stage 1's clean makespan so the
		// schedule is guaranteed to fire; offsets re-arm per stage.
		ms := base.count.Makespan
		cfg.Faults = onepass.FaultSchedule{Faults: []onepass.Fault{
			{Kind: onepass.DiskSlow, Node: 0, At: ms / 5, For: ms / 2, Factor: 4},
			{Kind: onepass.NetDegrade, Node: 1, At: ms / 4, For: ms / 2, Factor: 4},
			{Kind: onepass.Straggler, Node: 2, At: ms / 3, For: ms / 2, Factor: 3},
		}}
		cr, err := runChained(cfg, t.Clicks, t.Input, nil)
		runs += cr.runs
		if err != nil {
			add(e.String(), "chained-faulted", "%v", err)
			continue
		}
		if cr.count.OutputChecksum != base.count.OutputChecksum {
			add(e.String(), "chained-faulted", "stage 1 checksum %016x diverged from clean %016x",
				cr.count.OutputChecksum, base.count.OutputChecksum)
		}
		if cr.top.OutputChecksum != base.top.OutputChecksum {
			add(e.String(), "chained-faulted", "stage 2 checksum %016x diverged from clean %016x",
				cr.top.OutputChecksum, base.top.OutputChecksum)
		}
		if cr.count.Counters.Get(engine.CtrFaultsInjected) == 0 {
			add(e.String(), "chained-faulted", "stage 1 injected no faults (RunJob dropped the schedule?)")
		}
	}
	return runs
}

// chainedRun holds both stages' results of one pipeline execution.
type chainedRun struct {
	count, top *onepass.Result
	span1      int // trace events recorded by the end of stage 1
	runs       int // jobs actually executed (for run accounting)
}

func runChained(cfg onepass.Config, cc onepass.ClickConfig, input int64, tl *onepass.TraceLog) (*chainedRun, error) {
	if tl != nil {
		cfg.Trace = tl
	}
	cr := &chainedRun{}
	cl := onepass.NewCluster(cfg)
	count := onepass.PageFrequency(cc)
	if err := cl.Register(onepass.Dataset{Path: "input/clicks", Size: input, Gen: count.Gen}); err != nil {
		return cr, err
	}
	stage1 := count.Job
	stage1.InputPath = "input/clicks"
	stage1.OutputPath = "out/counts"
	stage1.RetainOutput = true
	res1, err := cl.RunJob(stage1)
	cr.runs++
	if err != nil {
		return cr, fmt.Errorf("stage 1: %w", err)
	}
	cr.count = res1
	if tl != nil {
		cr.span1 = tl.Len()
	}
	stage2 := onepass.TopK(5)
	stage2.InputPath = "out/counts"
	stage2.RetainOutput = true
	res2, err := cl.RunJob(stage2)
	cr.runs++
	if err != nil {
		return cr, fmt.Errorf("stage 2: %w", err)
	}
	cr.top = res2
	return cr, nil
}

// diffOutput compares an engine's grouped output against the reference map
// and describes the first discrepancy ("" if identical).
func diffOutput(got, want map[string]string) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d keys, reference has %d", len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Sprintf("key %q missing", k)
		}
		if gv != wv {
			return fmt.Sprintf("key %q: value %q, reference %q", k, truncate(gv), truncate(wv))
		}
	}
	return ""
}

func truncate(s string) string {
	if len(s) > 48 {
		return s[:48] + "..."
	}
	return s
}

// Markdown renders the report as the artifact cmd/check uploads from CI.
func (r *Report) Markdown(baseSeed int64) string {
	out := fmt.Sprintf("# Differential check report\n\nbase seed %d, %d tuples, %d runs, %d failure(s)\n",
		baseSeed, r.Tuples, r.Runs, len(r.Failures))
	if len(r.Failures) == 0 {
		return out + "\nAll engines agree on every tuple; all audits clean.\n"
	}
	out += "\n| seed | engine | stage | detail |\n|---|---|---|---|\n"
	for _, f := range r.Failures {
		out += fmt.Sprintf("| %d | %s | %s | %s |\n", f.Seed, f.Engine, f.Stage, f.Detail)
	}
	out += "\nFailing tuples:\n\n"
	seen := map[int64]bool{}
	for _, f := range r.Failures {
		if !seen[f.Seed] {
			seen[f.Seed] = true
			out += fmt.Sprintf("- `%s`\n", f.Tuple)
		}
	}
	return out
}
