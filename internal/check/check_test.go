package check

import (
	"strings"
	"testing"
)

// TestFuzzTupleDeterministic: the same seed must always describe the same
// tuple — repro lines in failure reports depend on it.
func TestFuzzTupleDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a, b := FuzzTuple(seed), FuzzTuple(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %s != %s", seed, a, b)
		}
		c := a.Cfg
		if c.Nodes < 3 || c.Nodes > 8 || c.Reducers < 1 || c.Reducers > 8 ||
			c.MemoryPerTask < 256<<10 || c.BlockSize < 16<<10 || c.ChunkBytes < 4<<10 {
			t.Fatalf("seed %d: out-of-range config: %s", seed, a)
		}
		if !c.Audit || !c.RetainOutput {
			t.Fatalf("seed %d: audits or output retention disarmed: %s", seed, a)
		}
	}
}

// TestCheckSeeds runs one odd (chained) and one even (chaos-faulted) seed
// end to end: every registered engine, audits armed, no failures — serial,
// then with the intra-run worker pool on (the pool must not perturb any
// run).
func TestCheckSeeds(t *testing.T) {
	for _, parallelism := range []int{0, 4} {
		for _, seed := range []int64{1, 2} {
			runs, fails := CheckSeed(seed, parallelism)
			if len(fails) > 0 {
				t.Fatalf("seed %d (parallelism %d): %d failures, first: %s",
					seed, parallelism, len(fails), fails[0])
			}
			if runs < 10 {
				t.Fatalf("seed %d (parallelism %d): only %d runs", seed, parallelism, runs)
			}
		}
	}
}

// TestReportMarkdown: the failing-tuples artifact must carry the seed, the
// tuple, and a per-failure table row.
func TestReportMarkdown(t *testing.T) {
	rep := &Report{Tuples: 2, Runs: 35, Failures: []Failure{{
		Seed: 7, Engine: "hadoop", Stage: "faulted",
		Detail: "checksum diverged", Tuple: "seed=7 workload=x",
	}}}
	md := rep.Markdown(1)
	for _, want := range []string{"| 7 | hadoop | faulted |", "seed=7 workload=x", "1 failure"} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q:\n%s", want, md)
		}
	}
	clean := (&Report{Tuples: 2, Runs: 35}).Markdown(1)
	if !strings.Contains(clean, "All engines agree") {
		t.Fatalf("clean report: %s", clean)
	}
}
