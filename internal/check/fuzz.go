package check

import (
	"fmt"
	"math/rand"

	"onepass"
)

// Tuple is one fuzzed differential-check case: a workload, an input size,
// and a seeded configuration with every engine-independent knob randomized
// inside its valid range. The Engine field of Cfg is left zero; the harness
// sets it as it sweeps the tuple across all engines.
type Tuple struct {
	Seed     int64
	Workload *onepass.Workload
	// Clicks is the click-stream generator config used both by click
	// workloads and by the chained page-count -> top-k pipeline.
	Clicks onepass.ClickConfig
	Input  int64
	Cfg    onepass.Config
	// Delta is the fuzzed input evolution for the incremental-vs-full
	// equivalence axis; nil for non-click workloads (deltas mutate click
	// records, so only click-log inputs can evolve).
	Delta *onepass.Delta
}

// String renders the tuple compactly for failure reports.
func (t Tuple) String() string {
	c := t.Cfg
	s := fmt.Sprintf("seed=%d workload=%s input=%dKB nodes=%d cores=%d reducers=%d mem=%dKB block=%dKB chunk=%dKB fanin=%d buckets=%d hotkeys=%d ssd=%v",
		t.Seed, t.Workload.Name, t.Input>>10, c.Nodes, c.CoresPerNode, c.Reducers,
		c.MemoryPerTask>>10, c.BlockSize>>10, c.ChunkBytes>>10, c.FanIn,
		c.SpillBuckets, c.HotKeyCounters, c.SSDIntermediate)
	if t.Delta != nil {
		s += fmt.Sprintf(" delta=%.3f/seed=%d", t.Delta.DirtyFrac, t.Delta.Seed)
	}
	return s
}

// FuzzTuple derives a Tuple deterministically from seed. Ranges are chosen
// to stay inside every engine's valid envelope while still exercising the
// interesting regimes: memory budgets small enough to force spills, chunk
// sizes small enough to fragment pushes, reducer counts from one to well
// past the node count, and both disk classes for intermediate data.
func FuzzTuple(seed int64) Tuple {
	rng := rand.New(rand.NewSource(seed))
	cfg := onepass.DefaultConfig()
	// No SplitStorageCompute: with few nodes it can leave a single compute
	// node, and a chaos NodeFailure on it would make the run unsurvivable.
	cfg.Nodes = 3 + rng.Intn(6)                             // 3..8
	cfg.CoresPerNode = 1 + rng.Intn(4)                      // 1..4
	cfg.Reducers = 1 + rng.Intn(8)                          // 1..8
	cfg.MemoryPerTask = (256 + int64(rng.Intn(1793))) << 10 // 256KB..2MB
	cfg.BlockSize = (16 + int64(rng.Intn(113))) << 10       // 16..128KB
	cfg.ChunkBytes = (4 + int64(rng.Intn(61))) << 10        // 4..64KB
	cfg.FanIn = 2 + rng.Intn(7)                             // 2..8
	cfg.SpillBuckets = 2 + rng.Intn(15)                     // 2..16
	cfg.HotKeyCounters = 8 + rng.Intn(57)                   // 8..64
	cfg.SSDIntermediate = rng.Intn(2) == 1
	cfg.RetainOutput = true
	cfg.Audit = true

	input := (128 + int64(rng.Intn(385))) << 10 // 128KB..512KB

	cc := onepass.DefaultClickConfig()
	cc.Users = 200 + rng.Intn(400)
	cc.URLs = 100 + rng.Intn(300)

	var w *onepass.Workload
	clicks := true
	switch rng.Intn(4) {
	case 0:
		w = onepass.Sessionization(cc)
	case 1:
		w = onepass.PageFrequency(cc)
	case 2:
		w = onepass.PerUserCount(cc)
	default:
		dc := onepass.DefaultDocConfig()
		dc.Vocab = 2000 + rng.Intn(4000)
		w = onepass.InvertedIndex(dc)
		clicks = false
	}
	t := Tuple{Seed: seed, Workload: w, Clicks: cc, Input: input, Cfg: cfg}
	// Delta draws come last so the streams feeding every pre-existing field
	// stay aligned with older tuple derivations, seed for seed.
	if clicks {
		d := onepass.DefaultDelta(cc, rng.Uint64(), 0.02+0.3*rng.Float64())
		t.Delta = &d
	}
	return t
}

// ReferenceBlocks regenerates exactly the blocks the DFS would register for
// this input (same sizing rule as dfs.RegisterStream), for the in-memory
// reference evaluation.
func ReferenceBlocks(w *onepass.Workload, input, blockSize int64) [][]byte {
	var blocks [][]byte
	for i := int64(0); i*blockSize < input; i++ {
		size := blockSize
		if rem := input - i*blockSize; rem < size {
			size = rem
		}
		blocks = append(blocks, w.Gen(int(i), size))
	}
	return blocks
}
