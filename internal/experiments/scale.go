// Package experiments regenerates every table and figure of the paper's
// evaluation at simulation scale. Each experiment runs the relevant
// engine/workload/topology combination, then reports the paper's number
// next to the measured one; EXPERIMENTS.md is generated from these reports
// and the root bench suite prints them per table/figure.
package experiments

import (
	"fmt"
	"os"
	"strconv"

	"onepass/internal/gen"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

// GB is the unit the paper reports dataset sizes in.
const GB = float64(1 << 30)

// Scale maps the paper's dataset sizes onto simulation sizes.
type Scale struct {
	// Factor multiplies the paper's byte sizes (default 1/4000 — a 256 GB
	// dataset becomes 64 MB). Block size shrinks with the same spirit so
	// map-task counts stay "many waves per slot".
	Factor    float64
	BlockSize int64
	Nodes     int
	Reducers  int
	// SampleInterval is the metrics bucket width; it shrinks with the
	// makespan so figures keep enough buckets to show shape.
	SampleInterval sim.Duration
}

// DefaultScale returns the bench-friendly scale; cmd/experiments can pass a
// larger factor for closer shape fidelity. The ONEPASS_SCALE environment
// variable (e.g. "0.001") overrides Factor.
func DefaultScale() Scale {
	s := Scale{Factor: 1.0 / 4000, BlockSize: 1 << 20, Nodes: 10, Reducers: 20,
		SampleInterval: 250 * sim.Millisecond}
	if v := os.Getenv("ONEPASS_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			s.Factor = f
		}
	}
	return s
}

// Bytes scales a paper size in GB to simulation bytes.
func (s Scale) Bytes(paperGB float64) int64 {
	b := int64(paperGB * GB * s.Factor)
	if b < s.BlockSize {
		b = s.BlockSize
	}
	return b
}

// TaskMemory scales the paper's per-task memory so the data:memory ratio a
// reducer experiences matches the testbed's. The paper configured a 1 GB
// JVM heap of which roughly a third is usable shuffle/merge buffer; the 60
// reducers each saw ~4.5 GB of sessionization data, i.e. data ≈ 14x buffer
// — enough to trigger multi-pass merging at F=10.
func (s Scale) TaskMemory() int64 {
	m := int64(0.30 * GB * s.Factor * 60.0 / float64(s.Reducers))
	if m < 8<<10 {
		m = 8 << 10
	}
	return m
}

// blockRatio is how our block size relates to the paper's 64 MB blocks;
// per-block entity counts (distinct users/URLs per block) scale with it so
// combiner effectiveness matches Table I.
func (s Scale) blockRatio() float64 {
	return float64(s.BlockSize) / float64(64<<20)
}

// paperWorkload holds one Table I row's published numbers.
type paperWorkload struct {
	Name          string
	InputGB       float64
	MapOutputGB   float64
	ReduceSpillGB float64
	OutputGB      float64
	MapTasks      int
	ReduceTasks   int
	CompletionMin float64
	Make          func() *workloads.Workload
}

// clickCfg sizes the synthetic click log so distinct-users-per-block and
// distinct-URLs-per-block match the paper's 64 MB-block statistics at our
// block size — that ratio is what makes the combiner shrink per-user count
// to 1% of input and page frequency to 0.4% (Table I).
func (s Scale) clickCfg() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	r := s.blockRatio()
	cfg.Users = clampInt(int(float64(cfg.Users)*r), 1000, cfg.Users)
	cfg.URLs = clampInt(int(float64(cfg.URLs)*r), 300, cfg.URLs)
	return cfg
}

func (s Scale) docCfg() gen.DocConfig {
	cfg := gen.DefaultDocConfig()
	cfg.Vocab = clampInt(int(float64(cfg.Vocab)*s.blockRatio()), 2000, cfg.Vocab)
	return cfg
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TableIWorkloads is the paper's Table I, row by row, built at scale s.
func (s Scale) TableIWorkloads() []paperWorkload {
	return []paperWorkload{
		{
			Name: "sessionization", InputGB: 256, MapOutputGB: 269, ReduceSpillGB: 370,
			OutputGB: 256, MapTasks: 3773, ReduceTasks: 60, CompletionMin: 76,
			Make: func() *workloads.Workload { return workloads.Sessionization(s.clickCfg()) },
		},
		{
			Name: "page-frequency", InputGB: 508, MapOutputGB: 1.8, ReduceSpillGB: 0.2,
			OutputGB: 0.02, MapTasks: 7580, ReduceTasks: 60, CompletionMin: 40,
			Make: func() *workloads.Workload { return workloads.PageFrequency(s.clickCfg()) },
		},
		{
			Name: "per-user-count", InputGB: 256, MapOutputGB: 2.6, ReduceSpillGB: 1.4,
			OutputGB: 0.6, MapTasks: 3773, ReduceTasks: 60, CompletionMin: 24,
			Make: func() *workloads.Workload { return workloads.PerUserCount(s.clickCfg()) },
		},
		{
			Name: "inverted-index", InputGB: 427, MapOutputGB: 150, ReduceSpillGB: 150,
			OutputGB: 103, MapTasks: 6803, ReduceTasks: 60, CompletionMin: 118,
			Make: func() *workloads.Workload { return workloads.InvertedIndex(s.docCfg()) },
		},
	}
}

func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
