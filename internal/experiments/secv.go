package experiments

import (
	"fmt"

	"onepass/internal/engine"
)

// secVWorkloads are the two workloads §V compares engines on.
var secVWorkloads = []string{"sessionization", "per-user-count"}

func secVHashVsHadoopSpecs(*Session) []runSpec {
	var out []runSpec
	for _, wl := range secVWorkloads {
		out = append(out,
			runSpec{Workload: wl, Engine: "hadoop", InputGB: 256},
			runSpec{Workload: wl, Engine: "hash-incremental", InputGB: 256})
	}
	return out
}

// SecVHashVsHadoop reproduces §V's headline comparison: the hash engine
// saves up to 48% of CPU cycles and up to 53% of running time against
// carefully tuned stock Hadoop.
func (s *Session) SecVHashVsHadoop() *Report {
	rep := &Report{ID: "§V", Title: "Hash-based engine vs tuned Hadoop"}
	for _, wl := range secVWorkloads {
		inputGB := 256.0
		hd := s.Run(runSpec{Workload: wl, Engine: "hadoop", InputGB: inputGB})
		hi := s.Run(runSpec{Workload: wl, Engine: "hash-incremental", InputGB: inputGB})
		cpuSaved := 1 - hi.CPU.Total()/hd.CPU.Total()
		timeSaved := 1 - float64(hi.Makespan)/float64(hd.Makespan)
		rep.Rows = append(rep.Rows,
			Row{
				Name:     wl + ": CPU cycles saved",
				Paper:    "up to 48%",
				Measured: pct(cpuSaved),
				Note:     fmt.Sprintf("%.1f vs %.1f CPU-s", hi.CPU.Total(), hd.CPU.Total()),
			},
			Row{
				Name:     wl + ": running time saved",
				Paper:    "up to 53%",
				Measured: pct(timeSaved),
				Note:     fmt.Sprintf("%s vs %s", fmtDur(hi.Makespan), fmtDur(hd.Makespan)),
			},
		)
	}
	return rep
}

func secVSpillSpecs(*Session) []runSpec {
	return []runSpec{
		{Workload: "per-user-count", Engine: "hadoop", InputGB: 256},
		{Workload: "per-user-count", Engine: "hash-incremental", InputGB: 256},
		{Workload: "per-user-count", Engine: "hash-hotkey", InputGB: 256, HotCounters: 2048},
	}
}

// SecVSpillReduction reproduces the frequent-algorithm result: reduce-side
// internal spill I/O drops by ~3 orders of magnitude when the hot-key
// technique is used, on a skewed counting workload whose key states exceed
// reducer memory.
func (s *Session) SecVSpillReduction() *Report {
	// Same configuration as Table I's per-user count: reducer memory is
	// ample for the aggregate states, yet Hadoop still spills because its
	// in-memory segment threshold forces merges to disk "waiting for all
	// future data to produce a single sorted run" (§III.B.4). The hash
	// engines fold arrivals into states immediately, so nothing spills.
	specs := secVSpillSpecs(s)
	hd := s.Run(specs[0])
	inc := s.Run(specs[1])
	hot := s.Run(specs[2])
	hdSpill := hd.Counters.Get(engine.CtrReduceSpillBytes)
	incSpill := inc.Counters.Get(engine.CtrReduceSpillBytes)
	hotSpill := hot.Counters.Get(engine.CtrReduceSpillBytes)
	ratio := func(a, b float64) string {
		if b == 0 {
			return "eliminated (zero spill)"
		}
		return fmt.Sprintf("%.0fx less", a/b)
	}
	return &Report{
		ID:    "§V (spills)",
		Title: "Reduce-side spill I/O: sort-merge vs hash + frequent algorithm",
		Rows: []Row{
			{
				Name:     "sort-merge reduce spill",
				Paper:    "1.4 GB for 256 GB per-user count, despite ample memory",
				Measured: fmtBytes(hdSpill),
				Note:     "segment-threshold merges write to disk anyway (§III.B.4)",
			},
			{
				Name:     "incremental hash",
				Paper:    "near zero (states fit in memory)",
				Measured: fmt.Sprintf("%s (%s)", fmtBytes(incSpill), ratio(hdSpill, incSpill)),
			},
			{
				Name:     "hot-key hash (frequent algorithm)",
				Paper:    "three orders of magnitude below sort-merge",
				Measured: fmt.Sprintf("%s (%s)", fmtBytes(hotSpill), ratio(hdSpill, hotSpill)),
				Note:     "when states exceed memory, only cold states spill — see the memory-sweep ablation",
			},
		},
	}
}

func secVLatencySpecs(*Session) []runSpec {
	return []runSpec{
		{Workload: "per-user-count", Engine: "hadoop", InputGB: 64},
		{Workload: "per-user-count", Engine: "hash-incremental", InputGB: 64},
	}
}

// SecVIncrementalLatency measures the incremental-processing requirement
// (§IV point 3): first answers long before the blocking engines produce
// anything.
func (s *Session) SecVIncrementalLatency() *Report {
	specs := secVLatencySpecs(s)
	hd := s.Run(specs[0])
	hi := s.Run(specs[1])
	_, mapEndH, _ := hd.Timeline.PhaseWindow(engine.SpanMap)
	return &Report{
		ID:    "§IV/§V (latency)",
		Title: "Time to first answer (per-user count)",
		Rows: []Row{
			{
				Name:     "Hadoop first output",
				Paper:    "after all maps + merge (blocking)",
				Measured: fmt.Sprintf("%v (maps ended %v)", hd.FirstOutputAt, mapEndH),
			},
			{
				Name:     "hash-incremental first output",
				Paper:    "as soon as the data needed has been read",
				Measured: fmt.Sprintf("%v", hi.FirstOutputAt),
				Note:     "with Job.EmitWhen, threshold answers stream mid-job (see examples/onlineagg)",
			},
		},
	}
}

// streamingSpecs: sessionization with no combiner, so the reducers hold
// (and merge) the whole stream — the architecture's post-arrival tail is
// fully exposed.
func streamingSpecs(*Session) []runSpec {
	spec := runSpec{Workload: "sessionization", InputGB: 256, StreamPerMinute: 1}
	hdSpec, hoSpec, hiSpec := spec, spec, spec
	hdSpec.Engine = "hadoop"
	hoSpec.Engine = "hop"
	hoSpec.Snapshots = true
	hiSpec.Engine = "hash-incremental"
	return []runSpec{hdSpec, hoSpec, hiSpec}
}

// Streaming reproduces the paper's §I/§IV framing directly: the data
// arrives into the system over one virtual minute instead of being
// preloaded, and the metric is how long after the *last byte arrives* each
// architecture takes to deliver the complete answer — the "no data loading,
// pipelined answers" property the proposed platform targets.
func (s *Session) Streaming() *Report {
	specs := streamingSpecs(s)
	hd := s.Run(specs[0])
	ho := s.Run(specs[1])
	hi := s.Run(specs[2])
	arrival := 60.0 // seconds: the stream finishes arriving after 1 minute
	lag := func(r *engine.Result) string {
		return fmt.Sprintf("+%.1f s after last arrival", r.Makespan.Seconds()-arrival)
	}
	return &Report{
		ID:    "§I/§IV (streaming)",
		Title: "Answer latency when data arrives as a stream (1-minute arrival)",
		Rows: []Row{
			{
				Name:     "Hadoop: complete answer",
				Paper:    "blocked behind load + sort-merge",
				Measured: lag(hd),
			},
			{
				Name:     "MR Online: complete answer",
				Paper:    "pipelines but still merges",
				Measured: fmt.Sprintf("%s (+%d snapshots en route)", lag(ho), len(ho.Snapshots)),
			},
			{
				Name:     "hash-incremental: complete answer",
				Paper:    "pipelined; answers as data arrives",
				Measured: lag(hi),
				Note:     "per-key states are complete the moment the last block is folded",
			},
		},
	}
}

// fanInSweep is the merge fan-in ablation's parameter grid.
var fanInSweep = []int{2, 4, 10, 32}

func ablationFanInSpecs(*Session) []runSpec {
	out := make([]runSpec, len(fanInSweep))
	for i, fanIn := range fanInSweep {
		out[i] = runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 64,
			FanIn: fanIn, MemoryPerTask: 256 << 10}
	}
	return out
}

// AblationFanIn sweeps the multi-pass merge factor F for Hadoop
// sessionization — the design knob behind the paper's multi-pass merge
// analysis (lower F = more passes = more merge I/O).
func (s *Session) AblationFanIn() *Report {
	rep := &Report{ID: "Ablation", Title: "Merge fan-in F sweep (Hadoop, sessionization)"}
	for i, spec := range ablationFanInSpecs(s) {
		res := s.Run(spec)
		rep.Rows = append(rep.Rows, Row{
			Name:  fmt.Sprintf("F=%d", fanInSweep[i]),
			Paper: "more passes at small F",
			Measured: fmt.Sprintf("%.0f passes, %s merge I/O, makespan %s",
				res.Counters.Get(engine.CtrMergePasses),
				fmtBytes(res.Counters.Get(engine.CtrReduceSpillBytes)),
				fmtDur(res.Makespan)),
		})
	}
	return rep
}

// hopChunkSweep is the HOP granularity ablation's parameter grid.
var hopChunkSweep = []int64{64 << 10, 256 << 10, 1 << 20}

func ablationHOPChunkSpecs(*Session) []runSpec {
	out := make([]runSpec, len(hopChunkSweep))
	for i, chunk := range hopChunkSweep {
		out[i] = runSpec{Workload: "sessionization", Engine: "hop", InputGB: 64, ChunkBytes: chunk}
	}
	return out
}

// AblationHOPChunk sweeps HOP's pipelining granularity: finer chunks
// deliver earlier but cost more network operations and reducer merge work.
func (s *Session) AblationHOPChunk() *Report {
	rep := &Report{ID: "Ablation", Title: "HOP pipelining chunk-size sweep (sessionization)"}
	for i, spec := range ablationHOPChunkSpecs(s) {
		res := s.Run(spec)
		rep.Rows = append(rep.Rows, Row{
			Name:  fmt.Sprintf("chunk=%s", fmtBytes(float64(hopChunkSweep[i]))),
			Paper: "finer granularity increases network cost (§III.D)",
			Measured: fmt.Sprintf("makespan %s, %.1fM merge comparisons",
				fmtDur(res.Makespan), res.Counters.Get(engine.CtrMergeComparisons)/1e6),
		})
	}
	return rep
}

// hotKeyMemSweep is the hot-key memory ablation's parameter grid.
var hotKeyMemSweep = []int64{2 << 10, 4 << 10, 8 << 10, 32 << 10, 1 << 20}

func ablationHotKeyMemorySpecs(*Session) []runSpec {
	out := make([]runSpec, len(hotKeyMemSweep))
	for i, mem := range hotKeyMemSweep {
		out[i] = runSpec{Workload: "per-user-count", Engine: "hash-hotkey", InputGB: 64,
			MemoryPerTask: mem, HotCounters: 2048}
	}
	return out
}

// AblationHotKeyMemory sweeps reducer memory for the hot-key engine: spill
// volume should fall steeply as memory approaches the hot set's size.
func (s *Session) AblationHotKeyMemory() *Report {
	rep := &Report{ID: "Ablation", Title: "Hot-key engine reducer-memory sweep (per-user count)"}
	for i, spec := range ablationHotKeyMemorySpecs(s) {
		res := s.Run(spec)
		rep.Rows = append(rep.Rows, Row{
			Name:  fmt.Sprintf("task memory %s", fmtBytes(float64(hotKeyMemSweep[i]))),
			Paper: "in-memory processing for important keys when memory is limited",
			Measured: fmt.Sprintf("spill %s, makespan %s",
				fmtBytes(res.Counters.Get(engine.CtrReduceSpillBytes)), fmtDur(res.Makespan)),
		})
	}
	return rep
}

// faultSpec is FaultTolerance's second-wave run: it depends on the
// fault-free baseline's makespan, so the parallel driver schedules it after
// the baseline completes (the s.Run here is a cache hit by then).
func (s *Session) faultSpec() runSpec {
	base := s.hadoopSessionization()
	return runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 256,
		FaultNode: 3, FaultNodeAtFrac: 0.12, BaselineMS: base.Makespan}
}

// FaultTolerance exercises the mechanism the paper's design discussion
// leans on — map output is persisted *so that* its loss is recoverable: a
// node dies mid-job, reducers hit lost outputs, the lost map tasks re-run,
// and the answer is unchanged (verified by the test suite's output checks).
func (s *Session) FaultTolerance() *Report {
	base := s.hadoopSessionization()
	faulted := s.Run(s.faultSpec())
	return &Report{
		ID:    "Fault tolerance",
		Title: "Node failure during the map phase (beyond the paper's evaluation)",
		Rows: []Row{
			{
				Name:     "makespan (fault-free vs one node lost)",
				Paper:    "(not evaluated; motivates the map-output write of §III.B.2)",
				Measured: fmt.Sprintf("%s vs %s", fmtDur(base.Makespan), fmtDur(faulted.Makespan)),
			},
			{
				Name:     "map tasks re-executed",
				Paper:    "-",
				Measured: fmt.Sprintf("%.0f of %.0f", faulted.Counters.Get(engine.CtrTasksReexecuted), faulted.Counters.Get(engine.CtrMapTasks)),
				Note:     "lost outputs recomputed on the fetching reducer's node",
			},
		},
	}
}
