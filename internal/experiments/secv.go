package experiments

import (
	"fmt"

	"onepass/internal/engine"
)

// SecVHashVsHadoop reproduces §V's headline comparison: the hash engine
// saves up to 48% of CPU cycles and up to 53% of running time against
// carefully tuned stock Hadoop.
func (s *Session) SecVHashVsHadoop() *Report {
	rep := &Report{ID: "§V", Title: "Hash-based engine vs tuned Hadoop"}
	for _, wl := range []string{"sessionization", "per-user-count"} {
		inputGB := 256.0
		hd := s.Run(runSpec{Workload: wl, Engine: "hadoop", InputGB: inputGB})
		hi := s.Run(runSpec{Workload: wl, Engine: "hash-incremental", InputGB: inputGB})
		cpuSaved := 1 - hi.CPU.Total()/hd.CPU.Total()
		timeSaved := 1 - float64(hi.Makespan)/float64(hd.Makespan)
		rep.Rows = append(rep.Rows,
			Row{
				Name:     wl + ": CPU cycles saved",
				Paper:    "up to 48%",
				Measured: pct(cpuSaved),
				Note:     fmt.Sprintf("%.1f vs %.1f CPU-s", hi.CPU.Total(), hd.CPU.Total()),
			},
			Row{
				Name:     wl + ": running time saved",
				Paper:    "up to 53%",
				Measured: pct(timeSaved),
				Note:     fmt.Sprintf("%s vs %s", fmtDur(hi.Makespan), fmtDur(hd.Makespan)),
			},
		)
	}
	return rep
}

// SecVSpillReduction reproduces the frequent-algorithm result: reduce-side
// internal spill I/O drops by ~3 orders of magnitude when the hot-key
// technique is used, on a skewed counting workload whose key states exceed
// reducer memory.
func (s *Session) SecVSpillReduction() *Report {
	// Same configuration as Table I's per-user count: reducer memory is
	// ample for the aggregate states, yet Hadoop still spills because its
	// in-memory segment threshold forces merges to disk "waiting for all
	// future data to produce a single sorted run" (§III.B.4). The hash
	// engines fold arrivals into states immediately, so nothing spills.
	inputGB := 256.0
	hd := s.Run(runSpec{Workload: "per-user-count", Engine: "hadoop", InputGB: inputGB})
	inc := s.Run(runSpec{Workload: "per-user-count", Engine: "hash-incremental", InputGB: inputGB})
	hot := s.Run(runSpec{Workload: "per-user-count", Engine: "hash-hotkey", InputGB: inputGB, HotCounters: 2048})
	hdSpill := hd.Counters.Get(engine.CtrReduceSpillBytes)
	incSpill := inc.Counters.Get(engine.CtrReduceSpillBytes)
	hotSpill := hot.Counters.Get(engine.CtrReduceSpillBytes)
	ratio := func(a, b float64) string {
		if b == 0 {
			return "eliminated (zero spill)"
		}
		return fmt.Sprintf("%.0fx less", a/b)
	}
	return &Report{
		ID:    "§V (spills)",
		Title: "Reduce-side spill I/O: sort-merge vs hash + frequent algorithm",
		Rows: []Row{
			{
				Name:     "sort-merge reduce spill",
				Paper:    "1.4 GB for 256 GB per-user count, despite ample memory",
				Measured: fmtBytes(hdSpill),
				Note:     "segment-threshold merges write to disk anyway (§III.B.4)",
			},
			{
				Name:     "incremental hash",
				Paper:    "near zero (states fit in memory)",
				Measured: fmt.Sprintf("%s (%s)", fmtBytes(incSpill), ratio(hdSpill, incSpill)),
			},
			{
				Name:     "hot-key hash (frequent algorithm)",
				Paper:    "three orders of magnitude below sort-merge",
				Measured: fmt.Sprintf("%s (%s)", fmtBytes(hotSpill), ratio(hdSpill, hotSpill)),
				Note:     "when states exceed memory, only cold states spill — see the memory-sweep ablation",
			},
		},
	}
}

// SecVIncrementalLatency measures the incremental-processing requirement
// (§IV point 3): first answers long before the blocking engines produce
// anything.
func (s *Session) SecVIncrementalLatency() *Report {
	inputGB := 64.0
	hd := s.Run(runSpec{Workload: "per-user-count", Engine: "hadoop", InputGB: inputGB})
	hi := s.Run(runSpec{Workload: "per-user-count", Engine: "hash-incremental", InputGB: inputGB})
	_, mapEndH, _ := hd.Timeline.PhaseWindow(engine.SpanMap)
	return &Report{
		ID:    "§IV/§V (latency)",
		Title: "Time to first answer (per-user count)",
		Rows: []Row{
			{
				Name:     "Hadoop first output",
				Paper:    "after all maps + merge (blocking)",
				Measured: fmt.Sprintf("%v (maps ended %v)", hd.FirstOutputAt, mapEndH),
			},
			{
				Name:     "hash-incremental first output",
				Paper:    "as soon as the data needed has been read",
				Measured: fmt.Sprintf("%v", hi.FirstOutputAt),
				Note:     "with Job.EmitWhen, threshold answers stream mid-job (see examples/onlineagg)",
			},
		},
	}
}

// Streaming reproduces the paper's §I/§IV framing directly: the data
// arrives into the system over one virtual minute instead of being
// preloaded, and the metric is how long after the *last byte arrives* each
// architecture takes to deliver the complete answer — the "no data loading,
// pipelined answers" property the proposed platform targets.
func (s *Session) Streaming() *Report {
	// Sessionization: no combiner, so the reducers hold (and merge) the
	// whole stream — the architecture's post-arrival tail is fully exposed.
	spec := runSpec{Workload: "sessionization", InputGB: 256, StreamPerMinute: 1}
	hdSpec, hoSpec, hiSpec := spec, spec, spec
	hdSpec.Engine = "hadoop"
	hoSpec.Engine = "hop"
	hoSpec.Snapshots = true
	hiSpec.Engine = "hash-incremental"
	hd := s.Run(hdSpec)
	ho := s.Run(hoSpec)
	hi := s.Run(hiSpec)
	arrival := 60.0 // seconds: the stream finishes arriving after 1 minute
	lag := func(r *engine.Result) string {
		return fmt.Sprintf("+%.1f s after last arrival", r.Makespan.Seconds()-arrival)
	}
	return &Report{
		ID:    "§I/§IV (streaming)",
		Title: "Answer latency when data arrives as a stream (1-minute arrival)",
		Rows: []Row{
			{
				Name:     "Hadoop: complete answer",
				Paper:    "blocked behind load + sort-merge",
				Measured: lag(hd),
			},
			{
				Name:     "MR Online: complete answer",
				Paper:    "pipelines but still merges",
				Measured: fmt.Sprintf("%s (+%d snapshots en route)", lag(ho), len(ho.Snapshots)),
			},
			{
				Name:     "hash-incremental: complete answer",
				Paper:    "pipelined; answers as data arrives",
				Measured: lag(hi),
				Note:     "per-key states are complete the moment the last block is folded",
			},
		},
	}
}

// AblationFanIn sweeps the multi-pass merge factor F for Hadoop
// sessionization — the design knob behind the paper's multi-pass merge
// analysis (lower F = more passes = more merge I/O).
func (s *Session) AblationFanIn() *Report {
	rep := &Report{ID: "Ablation", Title: "Merge fan-in F sweep (Hadoop, sessionization)"}
	mem := int64(256 << 10)
	for _, fanIn := range []int{2, 4, 10, 32} {
		res := s.Run(runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 64,
			FanIn: fanIn, MemoryPerTask: mem})
		rep.Rows = append(rep.Rows, Row{
			Name:  fmt.Sprintf("F=%d", fanIn),
			Paper: "more passes at small F",
			Measured: fmt.Sprintf("%.0f passes, %s merge I/O, makespan %s",
				res.Counters.Get(engine.CtrMergePasses),
				fmtBytes(res.Counters.Get(engine.CtrReduceSpillBytes)),
				fmtDur(res.Makespan)),
		})
	}
	return rep
}

// AblationHOPChunk sweeps HOP's pipelining granularity: finer chunks
// deliver earlier but cost more network operations and reducer merge work.
func (s *Session) AblationHOPChunk() *Report {
	rep := &Report{ID: "Ablation", Title: "HOP pipelining chunk-size sweep (sessionization)"}
	for _, chunk := range []int64{64 << 10, 256 << 10, 1 << 20} {
		res := s.Run(runSpec{Workload: "sessionization", Engine: "hop", InputGB: 64, ChunkBytes: chunk})
		rep.Rows = append(rep.Rows, Row{
			Name:  fmt.Sprintf("chunk=%s", fmtBytes(float64(chunk))),
			Paper: "finer granularity increases network cost (§III.D)",
			Measured: fmt.Sprintf("makespan %s, %.1fM merge comparisons",
				fmtDur(res.Makespan), res.Counters.Get(engine.CtrMergeComparisons)/1e6),
		})
	}
	return rep
}

// AblationHotKeyMemory sweeps reducer memory for the hot-key engine: spill
// volume should fall steeply as memory approaches the hot set's size.
func (s *Session) AblationHotKeyMemory() *Report {
	rep := &Report{ID: "Ablation", Title: "Hot-key engine reducer-memory sweep (per-user count)"}
	for _, mem := range []int64{2 << 10, 4 << 10, 8 << 10, 32 << 10, 1 << 20} {
		res := s.Run(runSpec{Workload: "per-user-count", Engine: "hash-hotkey", InputGB: 64,
			MemoryPerTask: mem, HotCounters: 2048})
		rep.Rows = append(rep.Rows, Row{
			Name:  fmt.Sprintf("task memory %s", fmtBytes(float64(mem))),
			Paper: "in-memory processing for important keys when memory is limited",
			Measured: fmt.Sprintf("spill %s, makespan %s",
				fmtBytes(res.Counters.Get(engine.CtrReduceSpillBytes)), fmtDur(res.Makespan)),
		})
	}
	return rep
}

// FaultTolerance exercises the mechanism the paper's design discussion
// leans on — map output is persisted *so that* its loss is recoverable: a
// node dies mid-job, reducers hit lost outputs, the lost map tasks re-run,
// and the answer is unchanged (verified by the test suite's output checks).
func (s *Session) FaultTolerance() *Report {
	base := s.hadoopSessionization()
	spec := runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 256,
		FaultNode: 3, FaultNodeAtFrac: 0.12, baselineMS: base.Makespan}
	faulted := s.Run(spec)
	return &Report{
		ID:    "Fault tolerance",
		Title: "Node failure during the map phase (beyond the paper's evaluation)",
		Rows: []Row{
			{
				Name:     "makespan (fault-free vs one node lost)",
				Paper:    "(not evaluated; motivates the map-output write of §III.B.2)",
				Measured: fmt.Sprintf("%s vs %s", fmtDur(base.Makespan), fmtDur(faulted.Makespan)),
			},
			{
				Name:     "map tasks re-executed",
				Paper:    "-",
				Measured: fmt.Sprintf("%.0f of %.0f", faulted.Counters.Get(engine.CtrMapTasksReexecuted), faulted.Counters.Get(engine.CtrMapTasks)),
				Note:     "lost outputs recomputed on the fetching reducer's node",
			},
		},
	}
}

// All runs every experiment in paper order.
func (s *Session) All() []*Report {
	return []*Report{
		s.TableI(),
		s.TableII(),
		s.TableIII(),
		s.ParsingCost(),
		s.MapOutputWriteShare(),
		s.Fig2a(), s.Fig2b(), s.Fig2c(), s.Fig2d(), s.Fig2e(), s.Fig2f(),
		s.Fig3(),
		s.Fig4(),
		s.SecVHashVsHadoop(),
		s.SecVSpillReduction(),
		s.SecVIncrementalLatency(),
		s.Streaming(),
		s.FaultTolerance(),
		s.AblationFanIn(),
		s.AblationHOPChunk(),
		s.AblationHotKeyMemory(),
	}
}
