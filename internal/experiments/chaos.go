package experiments

import (
	"fmt"

	"onepass"
	"onepass/internal/engine"
	"onepass/internal/faults"
)

// chaosSeed fixes the chaos schedule derivation; changing it reshuffles
// which nodes fail and when, but any single seed reproduces byte for byte.
const chaosSeed = 7

// chaosInputGB keeps the twelve-run sweep (all six engines, fault-free +
// faulted) affordable next to the 256 GB headline experiments.
const chaosInputGB = 64

// chaosEngines is the full engine registry: every engine — the resident
// in-memory one included — must make injected faults invisible in the
// answer. Deriving the list keeps the sweep in sync as engines are added
// (TestSweepEnginesMatchRegistry enforces it).
var chaosEngines = onepass.EngineNames()

func chaosBaseSpec(eng string) runSpec {
	return runSpec{Workload: "sessionization", Engine: eng, InputGB: chaosInputGB}
}

// chaosSpecs is wave 1: a fault-free baseline per engine, both the output
// reference and the horizon the chaos schedule is timed against.
func chaosSpecs(s *Session) []runSpec {
	specs := make([]runSpec, 0, len(chaosEngines))
	for _, eng := range chaosEngines {
		specs = append(specs, chaosBaseSpec(eng))
	}
	return specs
}

// chaosFaultedSpec derives one engine's chaos run from its own fault-free
// makespan, so every fault lands while that engine still has work in
// flight — a schedule timed against slow Hadoop would cancel harmlessly on
// the hash engines.
func (s *Session) chaosFaultedSpec(eng string) runSpec {
	base := s.Run(chaosBaseSpec(eng))
	spec := chaosBaseSpec(eng)
	spec.Faults = faults.Chaos(chaosSeed, s.Scale.Nodes, base.Makespan).String()
	return spec
}

// chaosAfterSpecs is wave 2: the faulted runs, schedulable only once the
// baselines exist.
func chaosAfterSpecs(s *Session) []runSpec {
	specs := make([]runSpec, 0, len(chaosEngines))
	for _, eng := range chaosEngines {
		specs = append(specs, s.chaosFaultedSpec(eng))
	}
	return specs
}

// ChaosSweep injects a seeded chaos schedule (one node failure plus a few
// degradations) into every engine and checks the recovered output against
// the engine's fault-free run: the order-independent output checksum must
// match exactly. This is the system-level statement of the paper's
// fault-tolerance argument (§III.B.2): persistence plus deterministic
// re-execution makes failures invisible in the answer.
func (s *Session) ChaosSweep() *Report {
	rep := &Report{ID: "Chaos sweep", Title: "Seeded fault schedules on every engine (output must not change)"}
	for _, eng := range chaosEngines {
		base := s.Run(chaosBaseSpec(eng))
		spec := s.chaosFaultedSpec(eng)
		faulted := s.Run(spec)
		verdict := "identical output"
		if faulted.OutputChecksum != base.OutputChecksum || faulted.OutputPairs != base.OutputPairs {
			verdict = fmt.Sprintf("OUTPUT DIVERGED (checksum %016x vs %016x)",
				faulted.OutputChecksum, base.OutputChecksum)
		}
		rep.Rows = append(rep.Rows, Row{
			Name:  eng,
			Paper: "(not evaluated; §III.B.2 motivates recoverable map output)",
			Measured: fmt.Sprintf("%s; makespan %s vs %s", verdict,
				fmtDur(base.Makespan), fmtDur(faulted.Makespan)),
			Note: fmt.Sprintf("faults=%.0f reexec=%.0f retries=%.0f dup-chunks=%.0f [%s]",
				faulted.Counters.Get(engine.CtrFaultsInjected),
				faulted.Counters.Get(engine.CtrTasksReexecuted),
				faulted.Counters.Get(engine.CtrShuffleRetries),
				faulted.Counters.Get(engine.CtrShuffleDupChunks),
				spec.Faults),
		})
	}
	return rep
}
