package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"onepass/internal/engine"
)

// cacheVersion guards the run-cache file format; bump it when runSpec,
// Result serialization, or any simulation behaviour changes in a way that
// invalidates persisted results.
const cacheVersion = 2

// cacheFile is the persisted run cache: every completed run keyed by its
// spec, stamped with the scale it was produced at. Repeated sweeps and CI
// reruns load it to skip completed simulations; the simulator is
// deterministic, so a cached result is bit-identical to re-running.
type cacheFile struct {
	Version int          `json:"version"`
	Scale   Scale        `json:"scale"`
	Runs    []cacheEntry `json:"runs"`
}

type cacheEntry struct {
	Spec   runSpec        `json:"spec"`
	Result *engine.Result `json:"result"`
}

// LoadCache installs previously persisted results into the session's run
// cache. A missing file is not an error (returns 0, nil); a file from a
// different format version or scale is ignored with an error describing
// why, so a stale cache can never corrupt a sweep.
func (s *Session) LoadCache(path string) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return 0, fmt.Errorf("experiments: run cache %s: %w", path, err)
	}
	if cf.Version != cacheVersion {
		return 0, fmt.Errorf("experiments: run cache %s has version %d, want %d — ignoring it",
			path, cf.Version, cacheVersion)
	}
	if cf.Scale != s.Scale {
		return 0, fmt.Errorf("experiments: run cache %s was produced at scale %+v, session is %+v — ignoring it",
			path, cf.Scale, s.Scale)
	}
	loaded := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ce := range cf.Runs {
		if ce.Result == nil {
			continue
		}
		if _, ok := s.results[ce.Spec]; ok {
			continue
		}
		e := &runEntry{done: make(chan struct{}), res: ce.Result}
		close(e.done)
		s.results[ce.Spec] = e
		loaded++
	}
	return loaded, nil
}

// SaveCache persists every completed run to path (atomically, via a
// temporary file) so later sweeps can skip them. Entries are sorted by
// their JSON-encoded spec, making the file deterministic for a given set of
// runs. Returns the number of runs written.
func (s *Session) SaveCache(path string) (int, error) {
	s.mu.Lock()
	cf := cacheFile{Version: cacheVersion, Scale: s.Scale}
	for spec, e := range s.results {
		select {
		case <-e.done:
		default:
			continue // still in flight
		}
		if e.res == nil {
			continue // run panicked; nothing to persist
		}
		cf.Runs = append(cf.Runs, cacheEntry{Spec: spec, Result: e.res})
	}
	s.mu.Unlock()

	keys := make([]string, len(cf.Runs))
	for i, ce := range cf.Runs {
		b, err := json.Marshal(ce.Spec)
		if err != nil {
			return 0, err
		}
		keys[i] = string(b)
	}
	sort.Sort(&byKey{keys: keys, runs: cf.Runs})

	data, err := json.MarshalIndent(&cf, "", " ")
	if err != nil {
		return 0, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return len(cf.Runs), nil
}

// byKey sorts cache entries and their precomputed spec keys together.
type byKey struct {
	keys []string
	runs []cacheEntry
}

func (b *byKey) Len() int           { return len(b.keys) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.runs[i], b.runs[j] = b.runs[j], b.runs[i]
}
