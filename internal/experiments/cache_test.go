package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunCachePersistRoundTrip proves the property CI reruns rely on: a
// sweep loaded from a persisted run cache renders byte-identical reports
// without executing a single simulation.
func TestRunCachePersistRoundTrip(t *testing.T) {
	scale := testScale()
	path := filepath.Join(t.TempDir(), "runs.json")

	s1 := NewSession(scale)
	rep1 := s1.SecVSpillReduction().Render()
	runs1, _ := s1.RunStats()
	if runs1 == 0 {
		t.Fatal("first sweep executed no runs")
	}
	saved, err := s1.SaveCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved != runs1 {
		t.Fatalf("saved %d runs, executed %d", saved, runs1)
	}

	s2 := NewSession(scale)
	loaded, err := s2.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d runs, saved %d", loaded, saved)
	}
	rep2 := s2.SecVSpillReduction().Render()
	if runs2, _ := s2.RunStats(); runs2 != 0 {
		t.Fatalf("cached sweep still executed %d runs", runs2)
	}
	if rep1 != rep2 {
		t.Fatalf("cached render differs from fresh render:\n%s\nvs\n%s", rep1, rep2)
	}

	// Saving the cached session reproduces the file byte-for-byte: the
	// cache is deterministic and idempotent.
	path2 := filepath.Join(t.TempDir(), "runs2.json")
	if _, err := s2.SaveCache(path2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("re-saved cache differs from original file")
	}
}

func TestRunCacheScaleMismatchIgnored(t *testing.T) {
	scale := testScale()
	path := filepath.Join(t.TempDir(), "runs.json")
	s1 := NewSession(scale)
	s1.Run(runSpec{Workload: "per-user-count", Engine: "hash-incremental", InputGB: 64})
	if _, err := s1.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	other := scale
	other.Factor *= 2
	s2 := NewSession(other)
	if n, err := s2.LoadCache(path); err == nil || n != 0 {
		t.Fatalf("LoadCache accepted a cache from a different scale (n=%d, err=%v)", n, err)
	}
	if runs, _ := s2.RunStats(); runs != 0 {
		t.Fatalf("mismatch load executed %d runs", runs)
	}
}

func TestRunCacheMissingFileIsEmpty(t *testing.T) {
	s := NewSession(testScale())
	if n, err := s.LoadCache(filepath.Join(t.TempDir(), "absent.json")); n != 0 || err != nil {
		t.Fatalf("missing cache: n=%d err=%v, want 0, nil", n, err)
	}
}

func TestRunCacheVersionMismatchIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	if err := os.WriteFile(path, []byte(`{"version":999,"scale":{},"runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSession(testScale())
	if n, err := s.LoadCache(path); err == nil || n != 0 {
		t.Fatalf("LoadCache accepted version 999 (n=%d, err=%v)", n, err)
	}
}
