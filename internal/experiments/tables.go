package experiments

import (
	"fmt"

	"onepass/internal/engine"
	"onepass/internal/workloads"
)

func tableISpecs(s *Session) []runSpec {
	var out []runSpec
	for _, pw := range s.Scale.TableIWorkloads() {
		out = append(out, runSpec{Workload: pw.Name, Engine: "hadoop", InputGB: pw.InputGB})
	}
	return out
}

// TableI reproduces "Workloads and their running time in the benchmark":
// data volumes, task counts, and completion times for the four workloads on
// stock Hadoop. Absolute numbers scale with Scale.Factor; the ratios
// (intermediate/input per workload, relative completion ordering) are the
// reproduction targets.
func (s *Session) TableI() *Report {
	rep := &Report{ID: "Table I", Title: "Workloads and their running time (Hadoop engine)"}
	specs := tableISpecs(s)
	for i, pw := range s.Scale.TableIWorkloads() {
		res := s.Run(specs[i])
		input := res.Counters.Get(engine.CtrMapInputBytes)
		mapOut := res.Counters.Get(engine.CtrMapWrittenBytes)
		spill := res.Counters.Get(engine.CtrReduceSpillBytes)
		out := res.Counters.Get(engine.CtrOutputBytes)
		paperRatio := (pw.MapOutputGB + pw.ReduceSpillGB) / pw.InputGB
		measRatio := (mapOut + spill) / input
		rep.Rows = append(rep.Rows,
			Row{
				Name:     pw.Name + ": intermediate/input",
				Paper:    pct(paperRatio),
				Measured: pct(measRatio),
				Note: fmt.Sprintf("map output %s, reduce spill %s over %s input",
					fmtBytes(mapOut), fmtBytes(spill), fmtBytes(input)),
			},
			Row{
				Name:     pw.Name + ": output/input",
				Paper:    pct(pw.OutputGB / pw.InputGB),
				Measured: pct(out / input),
			},
			Row{
				Name:     pw.Name + ": map/reduce tasks",
				Paper:    fmt.Sprintf("%d / %d", pw.MapTasks, pw.ReduceTasks),
				Measured: fmt.Sprintf("%.0f / %.0f", res.Counters.Get(engine.CtrMapTasks), res.Counters.Get(engine.CtrReduceTasks)),
				Note:     "task counts scale with input/block size",
			},
			Row{
				Name:     pw.Name + ": completion time",
				Paper:    fmt.Sprintf("%.0f min", pw.CompletionMin),
				Measured: fmtDur(res.Makespan),
				Note:     "virtual time at simulation scale",
			},
		)
	}
	return rep
}

func tableIISpecs(*Session) []runSpec {
	return []runSpec{
		specHadoopSessionization(),
		{Workload: "per-user-count", Engine: "hadoop", InputGB: 256},
	}
}

// TableII reproduces the map-phase CPU split between the map function
// (including parsing) and sorting: sessionization 61%/39%, per-user count
// 52%/48%.
func (s *Session) TableII() *Report {
	rep := &Report{ID: "Table II", Title: "Map-phase CPU: map function vs sorting (Hadoop engine)"}
	cases := []struct {
		name               string
		paperFn, paperSort float64
	}{
		{"sessionization", 0.61, 0.39},
		{"per-user-count", 0.52, 0.48},
	}
	for _, c := range cases {
		var res *engine.Result
		if c.name == "sessionization" {
			res = s.hadoopSessionization()
		} else {
			res = s.Run(runSpec{Workload: c.name, Engine: "hadoop", InputGB: 256})
		}
		fn := mapFnCPU(res)
		sort := res.CPU.Seconds(engine.PhaseSort)
		total := fn + sort
		rep.Rows = append(rep.Rows,
			Row{
				Name:     c.name + ": map function share",
				Paper:    pct(c.paperFn),
				Measured: pct(fn / total),
				Note:     fmt.Sprintf("%.1f CPU-s of %.1f map-phase CPU-s", fn, total),
			},
			Row{
				Name:     c.name + ": sorting share",
				Paper:    pct(c.paperSort),
				Measured: pct(sort / total),
				Note:     fmt.Sprintf("%.0fM real comparisons", res.Counters.Get(engine.CtrSortComparisons)/1e6),
			},
		)
	}
	return rep
}

func tableIIISpecs(*Session) []runSpec {
	spec := func(eng string) runSpec {
		return runSpec{Workload: "per-user-count", Engine: eng, InputGB: 64, Snapshots: eng == "hop"}
	}
	hiSpec := spec("hash-incremental")
	hiSpec.Threshold = 50 // §IV's "count exceeds a threshold" query
	return []runSpec{spec("hadoop"), spec("hop"), hiSpec}
}

// TableIII reproduces the qualitative comparison of Hadoop, MapReduce
// Online, and the ideal incremental one-pass system — except each claim is
// verified against an actual run rather than asserted.
func (s *Session) TableIII() *Report {
	rep := &Report{ID: "Table III", Title: "Hadoop vs MR Online vs hash engine (verified capabilities)"}
	specs := tableIIISpecs(s)
	hd := s.Run(specs[0])
	ho := s.Run(specs[1])
	hi := s.Run(specs[2])

	sortCPU := func(r *engine.Result) string {
		if r.CPU.Seconds(engine.PhaseSort) > 0 {
			return "sort-merge"
		}
		return "hash only"
	}
	incremental := func(r *engine.Result) string {
		_, mapEnd, _ := r.Timeline.PhaseWindow(engine.SpanMap)
		switch {
		case len(r.Snapshots) > 0 && r.FirstOutputAt >= mapEnd:
			return "periodic snapshots only"
		case r.FirstOutputAt < mapEnd:
			return "fully incremental"
		default:
			return "no"
		}
	}
	// The incremental claim for the hash engine is demonstrated with a
	// threshold query (EmitWhen) in SecVIncrementalLatency; here "fully
	// incremental" is evidenced by zero merge comparisons and first output
	// at all-data-arrived.
	inMem := func(r *engine.Result) string {
		if r.Counters.Get(engine.CtrReduceSpillBytes) == 0 {
			return "yes (no reduce spill)"
		}
		return "no (spills)"
	}
	rep.Rows = append(rep.Rows,
		Row{Name: "group-by implementation", Paper: "sort-merge / sort-merge / hash only",
			Measured: fmt.Sprintf("%s / %s / %s", sortCPU(hd), sortCPU(ho), sortCPU(hi))},
		Row{Name: "incremental processing", Paper: "no / snapshots / fully incremental",
			Measured: fmt.Sprintf("%s / %s / %s", incremental(hd), incremental(ho), incremental(hi))},
		Row{Name: "in-memory processing (data < memory)", Paper: "no / no / yes",
			Measured: fmt.Sprintf("%s / %s / %s", inMem(hd), inMem(ho), inMem(hi)),
			Note:     "Hadoop/HOP still write spills while buffering sorted runs"},
	)
	return rep
}

func mapOutputWriteShareSpecs(*Session) []runSpec {
	return []runSpec{specHadoopSessionization()}
}

// MapOutputWriteShare reproduces §III.B.2: the synchronous map-output
// write is a small share of a map task's lifetime (paper: 1.3 s of 21.6 s
// ≈ 6%).
func (s *Session) MapOutputWriteShare() *Report {
	res := s.hadoopSessionization()
	writeS := res.Counters.Get(engine.CtrMapOutputWriteSeconds)
	tasks := res.Counters.Get(engine.CtrMapTasks)
	var taskS float64
	for _, sp := range res.Timeline.Spans() {
		if sp.Phase == engine.SpanMap {
			taskS += sp.Finish.Sub(sp.Start).Seconds()
		}
	}
	return &Report{
		ID:    "§III.B.2",
		Title: "Cost of the synchronous map-output write",
		Rows: []Row{
			{
				Name:     "write share of map task time",
				Paper:    "6% (1.3s of 21.6s)",
				Measured: pct(writeS / taskS),
				Note: fmt.Sprintf("%.2fs write of %.2fs avg task over %.0f tasks",
					writeS/tasks, taskS/tasks, tasks),
			},
		},
	}
}

// binaryInputRatio probes both encodings of the same logical click data and
// returns bytes-per-record binary/text, so a binary run can be sized to
// process the same record count as its text twin (binary records are
// denser). Pure computation over the deterministic generators — no
// simulation runs.
func (s *Session) binaryInputRatio() float64 {
	cfgT := s.Scale.clickCfg()
	cfgB := cfgT
	cfgB.Binary = true
	const probe = int64(256 << 10)
	countT, countB := 0, 0
	workloads.LineReader(cfgT.Block(0, probe), func([]byte) { countT++ })
	workloads.BinaryClickReader(cfgB.Block(0, probe), func([]byte) { countB++ })
	return float64(countT) / float64(countB)
}

func parsingCostSpecs(s *Session) []runSpec {
	return []runSpec{
		specHadoopSessionization(),
		{Workload: "sessionization", Engine: "hadoop", InputGB: 256 * s.binaryInputRatio(), BinaryInput: true},
	}
}

// ParsingCost reproduces §III.B.1: text vs binary (SequenceFile-like)
// input makes almost no difference end to end.
func (s *Session) ParsingCost() *Report {
	specs := parsingCostSpecs(s)
	text := s.Run(specs[0])
	bin := s.Run(specs[1])
	return &Report{
		ID:    "§III.B.1",
		Title: "Cost of parsing: text vs binary input",
		Rows: []Row{
			{
				Name:     "completion time (text vs binary)",
				Paper:    "almost no difference",
				Measured: fmt.Sprintf("%s vs %s", fmtDur(text.Makespan), fmtDur(bin.Makespan)),
				Note:     "job is disk/merge bound, not parse bound",
			},
			{
				Name:     "parse CPU share of total",
				Paper:    "(not reported)",
				Measured: fmt.Sprintf("%s vs %s", pct(text.CPU.Seconds(engine.PhaseParse)/text.CPU.Total()), pct(bin.CPU.Seconds(engine.PhaseParse)/bin.CPU.Total())),
			},
		},
	}
}
