package experiments

import (
	"fmt"
	"strings"

	"onepass/internal/metrics"
	"onepass/internal/sim"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string
	Paper    string
	Measured string
	Note     string
}

// Figure is one reproduced plot, rendered as sparklines.
type Figure struct {
	Title string
	Lines []string
	Notes []string
}

// Report is one experiment's full output.
type Report struct {
	ID      string // e.g. "Table I", "Fig 2(b)"
	Title   string
	Rows    []Row
	Figures []Figure
}

// Render formats the report for terminals and EXPERIMENTS.md.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		nameW, paperW, measW := len("metric"), len("paper"), len("measured")
		for _, row := range r.Rows {
			nameW = max(nameW, len(row.Name))
			paperW = max(paperW, len(row.Paper))
			measW = max(measW, len(row.Measured))
		}
		fmt.Fprintf(&b, "| %-*s | %-*s | %-*s | note |\n", nameW, "metric", paperW, "paper", measW, "measured")
		fmt.Fprintf(&b, "|%s|%s|%s|------|\n", dashes(nameW+2), dashes(paperW+2), dashes(measW+2))
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "| %-*s | %-*s | %-*s | %s |\n", nameW, row.Name, paperW, row.Paper, measW, row.Measured, row.Note)
		}
		b.WriteString("\n")
	}
	for _, f := range r.Figures {
		fmt.Fprintf(&b, "```\n%s\n", f.Title)
		for _, l := range f.Lines {
			b.WriteString(l)
			b.WriteString("\n")
		}
		b.WriteString("```\n")
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func dashes(n int) string { return strings.Repeat("-", n) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// seriesLine renders one series as a labeled sparkline of at most width
// buckets.
func seriesLine(name string, s *metrics.Series, width int) string {
	ds := s
	if s.Len() > width {
		ds = s.Downsample((s.Len() + width - 1) / width)
	}
	return fmt.Sprintf("%-16s |%s| max=%.2f mean=%.2f", name, ds.Spark(), s.Max(), s.Mean())
}

// fmtDur renders a virtual duration compactly.
func fmtDur(d sim.Duration) string {
	if d >= sim.Minute {
		return fmt.Sprintf("%.1f min", d.Seconds()/60)
	}
	return fmt.Sprintf("%.1f s", d.Seconds())
}

// fmtBytes is a shorthand for the metrics formatter.
func fmtBytes(b float64) string { return metrics.FormatBytes(b) }
