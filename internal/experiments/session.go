package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"onepass/internal/cluster"
	"onepass/internal/core"
	"onepass/internal/dfs"
	"onepass/internal/disk"
	"onepass/internal/engine"
	"onepass/internal/faults"
	"onepass/internal/gen"
	"onepass/internal/hadoop"
	"onepass/internal/hop"
	"onepass/internal/profile"
	"onepass/internal/resident"
	"onepass/internal/sim"
	"onepass/internal/trace"
	"onepass/internal/workloads"
)

// runSpec fully determines one experiment run (and is its cache key).
type runSpec struct {
	Workload string
	// Engine is a registry name from onepass.EngineNames() ("hadoop",
	// "mapreduce-online", "hash-hybrid", "hash-incremental", "hash-hotkey",
	// "resident"); "hop" stays accepted as the historical spelling baked
	// into existing specs and cache keys.
	Engine  string
	InputGB float64
	// Topology deltas.
	SSD   bool `json:",omitempty"`
	Split bool `json:",omitempty"`
	// Engine knobs (zero = default).
	FanIn         int   `json:",omitempty"`
	ChunkBytes    int64 `json:",omitempty"`
	MemoryPerTask int64 `json:",omitempty"`
	HotCounters   int   `json:",omitempty"`
	Snapshots     bool  `json:",omitempty"`
	BinaryInput   bool  `json:",omitempty"`
	// SkewedUsers swaps in an unscaled, strongly Zipf-skewed user space —
	// the regime where hot-key pinning pays (§V's spill experiment).
	SkewedUsers bool `json:",omitempty"`
	// Threshold, when positive, attaches the §IV threshold query: emit a
	// key the moment its count reaches this value (hash engines only).
	Threshold uint64 `json:",omitempty"`
	// StreamPerMinute, when positive, streams the input into the system at
	// this fraction of the dataset per virtual minute instead of preloading
	// it.
	StreamPerMinute float64 `json:",omitempty"`
	// FaultNodeAtFrac, when positive, fails FaultNode at this fraction of
	// the fault-free makespan (hadoop engine only). BaselineMS carries that
	// makespan; it is part of the cache key and persists with it.
	FaultNode       int          `json:",omitempty"`
	FaultNodeAtFrac float64      `json:",omitempty"`
	BaselineMS      sim.Duration `json:",omitempty"`
	// Faults, when non-empty, is a fault schedule in the faults.Parse
	// grammar, injected into the run on any engine. Like every other field
	// it is part of the cache key.
	Faults string `json:",omitempty"`
}

// runEntry is one cache slot. The goroutine that inserts the entry runs the
// simulation and closes done; concurrent requesters of the same spec block
// on done instead of duplicating the run (singleflight).
type runEntry struct {
	done chan struct{}
	res  *engine.Result // nil after done only if the producing run panicked
}

// Session caches experiment runs so Figs 2(a)–(d) share one sessionization
// execution, exactly as the paper plots one run four ways. It is safe for
// concurrent use: the parallel driver calls Run from many goroutines, each
// run executing on a private sim.Env/cluster/DFS.
type Session struct {
	Scale Scale
	// Log, if set, receives progress lines. It may be called from multiple
	// goroutines; Session serializes the calls.
	Log func(format string, args ...interface{})
	// TraceDir, when non-empty, attaches a trace sink to every run this
	// session actually executes (cache misses) and writes each as a Chrome
	// trace-event file under the directory, named by workload, engine, and
	// a hash of the full spec. Tracing is observational: results are
	// byte-identical with or without it.
	TraceDir string
	// ProfileDir, when non-empty, traces every executed run and writes its
	// RunProfile (critical path, makespan attribution, span statistics) as
	// a JSON artifact under the directory, named like TraceDir's files. A
	// run whose trace fails profiling (broken span DAG, attribution that
	// does not tile the makespan) panics the sweep: experiment numbers
	// built on a malformed run would be silently wrong.
	ProfileDir string
	// Audit arms the runtime invariant audits on every executed run. A
	// violated invariant panics the run (experiment results built on a run
	// that broke conservation would be silently wrong). Like tracing, the
	// audits are observational: results are byte-identical either way.
	Audit bool
	// Parallelism sets the intra-run worker pool width on every executed
	// run (sim.Env.SetWorkers). 0 or 1 keeps task data work inline; any
	// width yields byte-identical results. NewSession seeds it from the
	// ONEPASS_PARALLEL environment variable.
	Parallelism int

	mu      sync.Mutex
	results map[runSpec]*runEntry
	// runWall accumulates real wall-clock spent executing (non-cached)
	// runs; comparing it with elapsed wall time gives the parallel
	// speedup the driver reports.
	runWall time.Duration
	runs    int // number of runs actually executed (cache misses)
	// pool accumulates every executed run's intra-run worker pool stats
	// (closures dispatched, aggregate closure time, peak in flight).
	pool sim.WorkStats

	logMu sync.Mutex
}

// NewSession returns a session at the given scale. The ONEPASS_PARALLEL
// environment variable (e.g. "4") seeds the intra-run worker pool width,
// mirroring how ONEPASS_SCALE seeds the scale factor.
func NewSession(s Scale) *Session {
	sess := &Session{Scale: s, results: make(map[runSpec]*runEntry)}
	if v := os.Getenv("ONEPASS_PARALLEL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			sess.Parallelism = n
		}
	}
	return sess
}

func (s *Session) logf(format string, args ...interface{}) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.Log(format, args...)
}

// RunStats reports how many simulations this session actually executed and
// the wall-clock they consumed in aggregate (the serial-equivalent cost).
func (s *Session) RunStats() (runs int, wall time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.runWall
}

// PoolStats reports the intra-run worker pool activity accumulated across
// every executed run: the aggregate-closure-time share of RunStats' wall is
// the Amdahl numerator for -parallel-intra overlap on a multi-core host.
func (s *Session) PoolStats() sim.WorkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

func (s *Session) workload(name string, binary, skewed bool) *workloads.Workload {
	if skewed {
		cfg := gen.DefaultClickConfig()
		cfg.UserSkew = 1.5
		switch name {
		case "per-user-count":
			return workloads.PerUserCount(cfg)
		case "sessionization":
			return workloads.Sessionization(cfg)
		}
	}
	for _, pw := range s.Scale.TableIWorkloads() {
		if pw.Name == name {
			w := pw.Make()
			if binary {
				cfg := s.Scale.clickCfg()
				cfg.Binary = true
				switch name {
				case "sessionization":
					w = workloads.Sessionization(cfg)
				case "page-frequency":
					w = workloads.PageFrequency(cfg)
				case "per-user-count":
					w = workloads.PerUserCount(cfg)
				}
			}
			return w
		}
	}
	panic(fmt.Sprintf("experiments: unknown workload %q", name))
}

// Run executes (or returns the cached result of) one spec. Concurrent calls
// with the same spec share a single execution.
func (s *Session) Run(spec runSpec) *engine.Result {
	s.mu.Lock()
	if e, ok := s.results[spec]; ok {
		s.mu.Unlock()
		<-e.done
		if e.res == nil {
			panic(fmt.Sprintf("experiments: %s/%s: awaited run failed", spec.Engine, spec.Workload))
		}
		return e.res
	}
	e := &runEntry{done: make(chan struct{})}
	s.results[spec] = e
	s.mu.Unlock()

	start := time.Now()
	// close(e.done) must happen even if execute panics, so waiting
	// goroutines wake up (and see res == nil) instead of hanging.
	defer close(e.done)
	res := s.execute(spec)
	e.res = res

	s.mu.Lock()
	s.runWall += time.Since(start)
	s.runs++
	s.pool.Add(res.Pool)
	s.mu.Unlock()
	return res
}

// execute performs one simulation on a private environment. Everything the
// run touches — sim clock, cluster, DFS, metrics — is created here, so runs
// are independent and their results depend only on the spec and scale.
func (s *Session) execute(spec runSpec) *engine.Result {
	w := s.workload(spec.Workload, spec.BinaryInput, spec.SkewedUsers)

	env := sim.New()
	env.SetWorkers(s.Parallelism)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = s.Scale.Nodes
	ccfg.SSDIntermediate = spec.SSD
	ccfg.SplitStorage = spec.Split
	ccfg.DiskProfile = disk.HDD
	cl := cluster.New(env, ccfg)
	d := dfs.New(cl, s.Scale.BlockSize, 1)
	inputSize := s.Scale.Bytes(spec.InputGB)
	rate := 0.0
	if spec.StreamPerMinute > 0 {
		rate = float64(inputSize) * spec.StreamPerMinute / 60
	}
	if err := d.RegisterStream("input/"+w.Name, inputSize, rate, w.Gen); err != nil {
		panic(err)
	}
	rt := engine.NewRuntimeSampled(env, cl, d, s.sampleInterval())
	var tl *trace.Log
	if s.TraceDir != "" || s.ProfileDir != "" {
		tl = trace.NewLog()
		rt.Tracer = tl
	}
	if s.Audit {
		rt.Audit = engine.NewAudit()
	}

	job := w.Job
	job.InputPath = "input/" + w.Name
	job.OutputPath = "out/" + w.Name
	job.Reducers = s.Scale.Reducers
	job.DiscardOutput = true
	job.BinaryInput = spec.BinaryInput
	job.MemoryPerTask = s.Scale.TaskMemory()
	if spec.MemoryPerTask > 0 {
		job.MemoryPerTask = spec.MemoryPerTask
	}
	if spec.Threshold > 0 {
		th := spec.Threshold
		job.EmitWhen = func(key, state []byte) bool {
			return workloads.CountState(state) >= th
		}
	}

	var sched faults.Schedule
	if spec.Faults != "" {
		var ferr error
		if sched, ferr = faults.Parse(spec.Faults); ferr != nil {
			panic(fmt.Sprintf("experiments: %s/%s: %v", spec.Engine, spec.Workload, ferr))
		}
	}

	s.logf("running %s on %s (%s input)...", w.Name, spec.Engine, fmtBytes(float64(inputSize)))
	var res *engine.Result
	var err error
	switch spec.Engine {
	case "hadoop":
		hopts := hadoop.Options{FanIn: spec.FanIn, SegmentLimit: s.segmentLimit(inputSize), Faults: sched}
		if spec.FaultNodeAtFrac > 0 {
			hopts.Faults = faults.Schedule{Faults: []faults.Fault{{
				Kind: faults.NodeFailure, Node: spec.FaultNode,
				At: sim.Duration(float64(spec.BaselineMS) * spec.FaultNodeAtFrac)}}}
		}
		res, err = hadoop.Run(rt, job, hopts)
	case "hop", "mapreduce-online":
		res, err = hop.Run(rt, job, hop.Options{
			FanIn: spec.FanIn, ChunkBytes: spec.ChunkBytes, DisableSnapshots: !spec.Snapshots,
			Faults: sched,
		})
	case "hash-hybrid":
		res, err = core.Run(rt, job, core.Options{Mode: core.HybridHash, Faults: sched})
	case "hash-incremental":
		res, err = core.Run(rt, job, core.Options{Mode: core.Incremental, Faults: sched})
	case "hash-hotkey":
		res, err = core.Run(rt, job, core.Options{Mode: core.HotKey, HotKeyCounters: spec.HotCounters, Faults: sched})
	case "resident":
		// Options derived the same way cmd/runjob does: the resident engine
		// takes the push chunk size and the fault schedule.
		res, err = resident.Run(rt, job, resident.Options{ChunkBytes: spec.ChunkBytes, Faults: sched})
	default:
		panic(fmt.Sprintf("experiments: unknown engine %q", spec.Engine))
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%s: %v", spec.Engine, spec.Workload, err))
	}
	if aerr := res.AuditError(); aerr != nil {
		panic(fmt.Sprintf("experiments: %s/%s: %v", spec.Engine, spec.Workload, aerr))
	}
	if tl != nil {
		if s.ProfileDir != "" {
			if perr := s.writeProfile(spec, tl, res); perr != nil {
				panic(fmt.Sprintf("experiments: %s/%s: profile: %v", spec.Engine, spec.Workload, perr))
			}
		}
		if s.TraceDir != "" {
			if terr := s.writeTrace(spec, tl); terr != nil {
				s.logf("  trace write failed: %v", terr)
			}
		}
	}
	s.logf("  done: makespan=%v cpu=%.1fs", res.Makespan, res.CPU.Total())
	return res
}

// artifactName builds a per-run artifact file name: workload, engine, and a
// hash of the JSON spec so distinct parameterizations of the same
// workload/engine pair never collide.
func artifactName(spec runSpec, suffix string) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	h := fnv.New32a()
	h.Write(b)
	return fmt.Sprintf("%s-%s-%08x.%s", spec.Workload, spec.Engine, h.Sum32(), suffix), nil
}

// writeTrace persists one executed run's trace under TraceDir.
func (s *Session) writeTrace(spec runSpec, tl *trace.Log) error {
	name, err := artifactName(spec, "trace.json")
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.TraceDir, name))
	if err != nil {
		return err
	}
	if err := tl.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeProfile analyzes one executed run's trace and persists the RunProfile
// JSON under ProfileDir. Analysis errors propagate: they mean the run's span
// DAG or attribution is broken, not that the artifact is optional.
func (s *Session) writeProfile(spec runSpec, tl *trace.Log, res *engine.Result) error {
	rp, err := profile.Compute(tl, res)
	if err != nil {
		return err
	}
	b, err := rp.MarshalIndentJSON()
	if err != nil {
		return err
	}
	name, err := artifactName(spec, "profile.json")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.ProfileDir, name), b, 0o644)
}

// segmentLimit scales Hadoop's in-memory merge threshold (1000 segments at
// the paper's 3773-map scale) to our map-task count, so the "spill even
// with ample memory" behaviour of §III.B.4 reproduces.
func (s *Session) segmentLimit(inputSize int64) int {
	maps := int(inputSize / s.Scale.BlockSize)
	limit := 1000 * maps / 3773
	if limit < 4 {
		limit = 4
	}
	return limit
}

func (s *Session) sampleInterval() sim.Duration {
	if s.Scale.SampleInterval > 0 {
		return s.Scale.SampleInterval
	}
	return engine.SampleInterval
}

// specHadoopSessionization is the shared run behind Figs 2(a)–(d), Table
// II, and several §V comparisons.
func specHadoopSessionization() runSpec {
	return runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 256}
}

// hadoopSessionization is the shared run behind Figs 2(a)–(d) and Table II.
func (s *Session) hadoopSessionization() *engine.Result {
	return s.Run(specHadoopSessionization())
}

// mapFnCPU sums the map-side per-record CPU phases the paper's Table II
// calls "Map function" (parsing + the function body + partitioning +
// map-side combining).
func mapFnCPU(res *engine.Result) float64 {
	return res.CPU.Seconds(engine.PhaseParse) + res.CPU.Seconds(engine.PhaseMapFn) +
		res.CPU.Seconds(engine.PhaseHash) + res.CPU.Seconds(engine.PhaseCombine)
}
