package experiments

// The resident-iteration experiment is not a paper table — it is the
// chained-computation case the paper's one-pass argument leaves on the
// table and M3R (Shinnar et al., VLDB 2012) makes: when one job's output is
// the next job's input, a disk-backed engine pays the DFS round-trip at
// every hand-off, while the resident engine keeps reduce output alive in
// reducer memory and republishes it as memory-resident DFS blocks. The
// experiment runs the same PageRank power-iteration chain (the paper's
// "graph queries" benchmark extension) on the best disk engine and on
// resident, and attributes per-iteration disk reads and makespan to each.
// Rank arithmetic is fixed-point, so both chains must agree bit-for-bit.
//
// Like the service experiment this one does not go through Session.Run:
// each data point is a whole multi-job pipeline on its own simulated
// cluster, so it declares no specs and builds its clusters directly at
// render time (deterministically — everything runs on virtual time).

import (
	"fmt"

	"onepass"
)

// residentIterations is the number of chained power iterations after the
// init stage.
const residentIterations = 4

// residentGraphNodes scales the synthetic link graph to the session factor,
// keeping the smoke scale fast while the default scale exercises real
// chunking.
func (s *Session) residentGraphNodes() int {
	n := int(2_000_000 * s.Scale.Factor * 10)
	if n < 500 {
		n = 500
	}
	return n
}

// residentChain runs init + residentIterations chained PageRank jobs on one
// engine and returns the per-stage makespans, per-stage disk-read deltas,
// and the final iteration's result.
func (s *Session) residentChain(eng onepass.Engine) (makespans []float64, diskMB []float64, last *onepass.Result) {
	cfg := onepass.DefaultConfig()
	cfg.Engine = eng
	cfg.Nodes = s.Scale.Nodes
	cfg.BlockSize = s.Scale.BlockSize / 4
	cfg.Reducers = s.Scale.Reducers
	cfg.RetainOutput = true
	cfg.Parallelism = s.Parallelism
	cfg.Audit = true
	cl := onepass.NewCluster(cfg)

	graph := onepass.DefaultGraphConfig()
	graph.Nodes = s.residentGraphNodes()
	init := onepass.PageRankInit(graph)
	if err := cl.Register(onepass.Dataset{
		Path: "graph", Size: graph.TotalBytes(cfg.BlockSize), Gen: init.Gen,
	}); err != nil {
		panic(fmt.Sprintf("experiments: resident chain: %v", err))
	}

	run := func(job onepass.Job) *onepass.Result {
		before := cl.DiskBytesRead()
		res, err := cl.RunJob(job)
		if err != nil {
			panic(fmt.Sprintf("experiments: resident chain (%s/%s): %v", eng, job.Name, err))
		}
		makespans = append(makespans, res.Makespan.Seconds())
		diskMB = append(diskMB, (cl.DiskBytesRead()-before)/(1<<20))
		return res
	}

	job := init.Job
	job.InputPath = "graph"
	job.OutputPath = "pr/iter-00"
	run(job)
	for i := 1; i <= residentIterations; i++ {
		iter := onepass.PageRankIter(graph.Nodes)
		iter.InputPath = fmt.Sprintf("pr/iter-%02d", i-1)
		iter.OutputPath = fmt.Sprintf("pr/iter-%02d", i)
		last = run(iter)
	}
	return makespans, diskMB, last
}

// ResidentIterative renders the chained-iteration comparison: the hash
// engine re-reads every iteration's input from the DFS; the resident engine
// reads disk only for the init stage and hands every later iteration its
// input from reducer memory.
func (s *Session) ResidentIterative() *Report {
	s.logf("running resident iterative chain (%d vertices, %d iterations)...",
		s.residentGraphNodes(), residentIterations)
	diskMS, diskIO, diskLast := s.residentChain(onepass.HashIncremental)
	resMS, resIO, resLast := s.residentChain(onepass.Resident)

	rep := &Report{
		ID:    "Resident (iterative)",
		Title: "chained PageRank: disk engine vs resident in-memory hand-off",
	}
	agree := "bit-identical"
	if diskLast.OutputChecksum != resLast.OutputChecksum {
		agree = fmt.Sprintf("DIVERGED (%016x vs %016x)", diskLast.OutputChecksum, resLast.OutputChecksum)
	}
	var diskTot, resTot, diskIOTot, resIOTot float64
	for i := range diskMS {
		stage := fmt.Sprintf("iteration %d", i)
		if i == 0 {
			stage = "init (reads graph)"
		}
		rep.Rows = append(rep.Rows, Row{
			Name:     stage,
			Paper:    fmt.Sprintf("%.2fs / %.1f MB read", diskMS[i], diskIO[i]),
			Measured: fmt.Sprintf("%.2fs / %.1f MB read", resMS[i], resIO[i]),
			Note:     "hash-incremental vs resident",
		})
		diskTot += diskMS[i]
		resTot += resMS[i]
		diskIOTot += diskIO[i]
		resIOTot += resIO[i]
	}
	speedup := "n/a"
	if resTot > 0 {
		speedup = fmt.Sprintf("%.2fx chain speedup", diskTot/resTot)
	}
	rep.Rows = append(rep.Rows, Row{
		Name:     "chain total",
		Paper:    fmt.Sprintf("%.2fs / %.1f MB read", diskTot, diskIOTot),
		Measured: fmt.Sprintf("%.2fs / %.1f MB read", resTot, resIOTot),
		Note:     speedup,
	})
	rep.Rows = append(rep.Rows, Row{
		Name:     "final ranks",
		Paper:    fmt.Sprintf("%016x", diskLast.OutputChecksum),
		Measured: fmt.Sprintf("%016x", resLast.OutputChecksum),
		Note:     agree,
	})
	rep.Rows = append(rep.Rows, Row{
		Name:     "disk reads after init",
		Paper:    fmt.Sprintf("%.1f MB", diskIOTot-diskIO[0]),
		Measured: fmt.Sprintf("%.1f MB", resIOTot-resIO[0]),
		Note:     "resident hand-off target: 0 MB",
	})
	return rep
}
