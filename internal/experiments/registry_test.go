package experiments

import (
	"testing"

	"onepass"
)

// TestSweepEnginesMatchRegistry pins the full-registry sweeps to the engine
// registry itself: a seventh engine must get chaos-recovery, service, and
// delta coverage the moment it is registered, and a renamed engine must
// break loudly here instead of silently dropping out of a sweep.
func TestSweepEnginesMatchRegistry(t *testing.T) {
	want := onepass.EngineNames()
	for _, sweep := range []struct {
		name    string
		engines []string
	}{
		{"chaos", chaosEngines},
		{"service", serviceEngines},
		{"incremental", incrementalEngines},
	} {
		if len(sweep.engines) != len(want) {
			t.Fatalf("%s sweep covers %d engines, registry has %d: %v vs %v",
				sweep.name, len(sweep.engines), len(want), sweep.engines, want)
		}
		for i, e := range want {
			if sweep.engines[i] != e {
				t.Fatalf("%s sweep engine[%d] = %q, registry says %q",
					sweep.name, i, sweep.engines[i], e)
			}
		}
	}
}

// TestExecuteAcceptsEveryRegistryName: the run dispatcher must accept every
// canonical registry spelling (plus the historical "hop" alias), so sweeps
// built from EngineNames() cannot hit the unknown-engine panic that used to
// fire on "resident".
func TestExecuteAcceptsEveryRegistryName(t *testing.T) {
	s := NewSession(testScale())
	for _, eng := range append(onepass.EngineNames(), "hop") {
		res := s.Run(runSpec{Workload: "per-user-count", Engine: eng, InputGB: 1})
		if res.Makespan <= 0 {
			t.Fatalf("%s: no makespan", eng)
		}
	}
}
