package experiments

import (
	"context"
	"fmt"

	"onepass/internal/parallel"
)

// Experiment is one reproduced table/figure/section: the runs it needs and
// the renderer that turns cached results into a Report.
//
// Specs lists runs knowable before anything executes (wave 1). After lists
// runs whose spec depends on a wave-1 result — e.g. the fault-injection run
// is timed against the fault-free baseline's makespan — and is consulted
// only once every wave-1 run completed (wave 2). Renderers call Session.Run
// directly, so a spec missing from these lists still executes correctly —
// it just runs serially at render time instead of inside the parallel
// waves. The determinism test pins parallel output to serial output, and
// TestExperimentSpecsCoverRenders pins the lists to what renders actually
// consume.
type Experiment struct {
	ID     string // matches the rendered Report.ID (e.g. "Table I", "Fig 2(b)")
	Specs  func(s *Session) []runSpec
	After  func(s *Session) []runSpec
	Render func(s *Session) *Report
}

// Experiments returns every reproduced experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "Table I", Specs: tableISpecs, Render: (*Session).TableI},
		{ID: "Table II", Specs: tableIISpecs, Render: (*Session).TableII},
		{ID: "Table III", Specs: tableIIISpecs, Render: (*Session).TableIII},
		{ID: "§III.B.1", Specs: parsingCostSpecs, Render: (*Session).ParsingCost},
		{ID: "§III.B.2", Specs: mapOutputWriteShareSpecs, Render: (*Session).MapOutputWriteShare},
		{ID: "Fig 2(a)", Specs: fig2Specs, Render: (*Session).Fig2a},
		{ID: "Fig 2(b)", Specs: fig2Specs, Render: (*Session).Fig2b},
		{ID: "Fig 2(c)", Specs: fig2Specs, Render: (*Session).Fig2c},
		{ID: "Fig 2(d)", Specs: fig2Specs, Render: (*Session).Fig2d},
		{ID: "Fig 2(e)", Specs: fig2eSpecs, Render: (*Session).Fig2e},
		{ID: "Fig 2(f)", Specs: fig2fSpecs, Render: (*Session).Fig2f},
		{ID: "Fig 3", Specs: fig3Specs, Render: (*Session).Fig3},
		{ID: "Fig 4", Specs: fig4Specs, Render: (*Session).Fig4},
		{ID: "§V", Specs: secVHashVsHadoopSpecs, Render: (*Session).SecVHashVsHadoop},
		{ID: "§V (spills)", Specs: secVSpillSpecs, Render: (*Session).SecVSpillReduction},
		{ID: "§IV/§V (latency)", Specs: secVLatencySpecs, Render: (*Session).SecVIncrementalLatency},
		{ID: "§I/§IV (streaming)", Specs: streamingSpecs, Render: (*Session).Streaming},
		{ID: "Fault tolerance",
			Specs:  func(*Session) []runSpec { return []runSpec{specHadoopSessionization()} },
			After:  func(s *Session) []runSpec { return []runSpec{s.faultSpec()} },
			Render: (*Session).FaultTolerance},
		{ID: "Chaos sweep", Specs: chaosSpecs, After: chaosAfterSpecs, Render: (*Session).ChaosSweep},
		{ID: "Ablation (fan-in)", Specs: ablationFanInSpecs, Render: (*Session).AblationFanIn},
		{ID: "Ablation (HOP chunk)", Specs: ablationHOPChunkSpecs, Render: (*Session).AblationHOPChunk},
		{ID: "Ablation (hot-key memory)", Specs: ablationHotKeyMemorySpecs, Render: (*Session).AblationHotKeyMemory},
		{ID: "Resident (iterative)", Render: (*Session).ResidentIterative},
		{ID: "Service (saturation)", Render: (*Session).ServiceSaturation},
		{ID: "Incremental (delta sweep)", Render: (*Session).IncrementalDelta},
	}
}

// All renders every experiment in paper order, serially. Kept as the
// reference execution path: RunAll's output is defined to be byte-identical
// to this.
func (s *Session) All() []*Report {
	reps := make([]*Report, 0, len(Experiments()))
	for _, e := range Experiments() {
		reps = append(reps, e.Render(s))
	}
	return reps
}

// dedupeSpecs drops duplicate specs, preserving first-seen order (runSpec
// is comparable — it is the cache key).
func dedupeSpecs(specs []runSpec) []runSpec {
	seen := make(map[runSpec]bool, len(specs))
	out := specs[:0]
	for _, sp := range specs {
		if !seen[sp] {
			seen[sp] = true
			out = append(out, sp)
		}
	}
	return out
}

// prefetch executes the given specs on up to workers goroutines. Each run
// owns a private sim.Env/cluster/DFS, so concurrent runs share nothing but
// the session's result cache. A panic inside a run is captured by the pool
// and returned as an error.
func (s *Session) prefetch(ctx context.Context, workers int, specs []runSpec) error {
	specs = dedupeSpecs(specs)
	return parallel.ForEach(ctx, workers, len(specs), func(i int) error {
		s.Run(specs[i])
		return nil
	})
}

// RunAll executes every run the given experiments need — fanning out up to
// workers concurrent simulations (GOMAXPROCS when workers <= 0) — then
// renders each report in order. Because rendering happens serially against
// a fully warmed cache, and each run is deterministic on its private
// virtual cluster, the returned reports are byte-identical to a serial
// s.All() regardless of workers or scheduling.
func (s *Session) RunAll(ctx context.Context, workers int, exps []Experiment) ([]*Report, error) {
	var wave1 []runSpec
	for _, e := range exps {
		if e.Specs != nil {
			wave1 = append(wave1, e.Specs(s)...)
		}
	}
	if err := s.prefetch(ctx, workers, wave1); err != nil {
		return nil, fmt.Errorf("experiments: wave 1: %w", err)
	}
	var wave2 []runSpec
	for _, e := range exps {
		if e.After != nil {
			wave2 = append(wave2, e.After(s)...)
		}
	}
	if err := s.prefetch(ctx, workers, wave2); err != nil {
		return nil, fmt.Errorf("experiments: wave 2: %w", err)
	}
	reps := make([]*Report, 0, len(exps))
	for _, e := range exps {
		reps = append(reps, e.Render(s))
	}
	return reps, nil
}
