package experiments

import (
	"strings"
	"testing"

	"onepass/internal/engine"
	"onepass/internal/sim"
)

// testScale keeps experiment tests fast: a 256 GB paper dataset becomes
// 8 MB.
func testScale() Scale {
	return Scale{Factor: 1.0 / 32000, BlockSize: 512 << 10, Nodes: 10, Reducers: 20,
		SampleInterval: 25 * sim.Millisecond}
}

func TestTableIShapes(t *testing.T) {
	s := NewSession(testScale())
	rep := s.TableI()
	if len(rep.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 (4 metrics x 4 workloads)", len(rep.Rows))
	}
	// Qualitative Table I shape: sessionization's intermediate/input ratio
	// dwarfs the counting workloads'.
	sess := s.Run(runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 256})
	puc := s.Run(runSpec{Workload: "per-user-count", Engine: "hadoop", InputGB: 256})
	ratio := func(r *engine.Result) float64 {
		return (r.Counters.Get(engine.CtrMapOutputBytes) + r.Counters.Get(engine.CtrReduceSpillBytes)) /
			r.Counters.Get(engine.CtrMapInputBytes)
	}
	if ratio(sess) < 10*ratio(puc) {
		t.Errorf("sessionization intermediate ratio %.3f not >> per-user %.3f", ratio(sess), ratio(puc))
	}
	if ratio(sess) < 1.0 {
		t.Errorf("sessionization intermediate ratio %.3f, paper has 250%%", ratio(sess))
	}
	out := rep.Render()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "sessionization") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestTableIISortShareNearPaper(t *testing.T) {
	s := NewSession(testScale())
	res := s.hadoopSessionization()
	fn := mapFnCPU(res)
	sort := res.CPU.Seconds(engine.PhaseSort)
	share := sort / (fn + sort)
	// Paper: 39% for sessionization. Accept a generous band — the claim is
	// "sorting is a significant fraction of map-phase CPU".
	if share < 0.25 || share > 0.55 {
		t.Fatalf("sessionization sort share = %.2f, want ~0.39", share)
	}
	res2 := s.Run(runSpec{Workload: "per-user-count", Engine: "hadoop", InputGB: 256})
	share2 := res2.CPU.Seconds(engine.PhaseSort) / (mapFnCPU(res2) + res2.CPU.Seconds(engine.PhaseSort))
	if share2 <= share {
		t.Fatalf("per-user sort share %.2f should exceed sessionization's %.2f (lighter map fn)", share2, share)
	}
}

func TestFig2ValleyExists(t *testing.T) {
	s := NewSession(testScale())
	sh := shapeOf(s.hadoopSessionization())
	// Ceiling: 2 map slots on 4 cores caps map-phase utilization at 0.5
	// even for fully CPU-bound tasks; ~0.3 means tasks are ~60% CPU.
	if sh.MapMeanUtil < 0.2 {
		t.Fatalf("map phase mean util %.2f too low — cluster underutilized", sh.MapMeanUtil)
	}
	if sh.ValleyUtil > 0.6*sh.MapMeanUtil {
		t.Fatalf("no CPU valley: valley %.2f vs map mean %.2f", sh.ValleyUtil, sh.MapMeanUtil)
	}
	if sh.ValleyIowait <= sh.MapMeanIowait {
		t.Fatalf("no iowait spike: valley %.2f vs map %.2f", sh.ValleyIowait, sh.MapMeanIowait)
	}
	if sh.ValleyReadPeak <= 0 {
		t.Fatal("no disk reads after map phase")
	}
}

func TestFig2eSSDFasterButStillBlocked(t *testing.T) {
	s := NewSession(testScale())
	base := s.hadoopSessionization()
	ssd := s.Run(runSpec{Workload: "sessionization", Engine: "hadoop", InputGB: 256, SSD: true})
	if ssd.Makespan >= base.Makespan {
		t.Fatalf("SSD run %v not faster than %v", ssd.Makespan, base.Makespan)
	}
	sh := shapeOf(ssd)
	if sh.ValleyUtil > 0.7*sh.MapMeanUtil {
		t.Fatalf("SSD removed the valley (%.2f vs %.2f) — it must not", sh.ValleyUtil, sh.MapMeanUtil)
	}
}

func TestFig4HOPSlowerStillBlocked(t *testing.T) {
	s := NewSession(testScale())
	base := s.hadoopSessionization()
	hopRes := s.Run(runSpec{Workload: "sessionization", Engine: "hop", InputGB: 256, Snapshots: true})
	if hopRes.Makespan < base.Makespan {
		t.Fatalf("HOP %v faster than Hadoop %v — paper found it slower", hopRes.Makespan, base.Makespan)
	}
	if len(hopRes.Snapshots) == 0 {
		t.Fatal("HOP produced no snapshots")
	}
	sh := shapeOf(hopRes)
	if sh.ValleyUtil > 0.7*sh.MapMeanUtil {
		t.Fatalf("HOP removed the valley (%.2f vs %.2f)", sh.ValleyUtil, sh.MapMeanUtil)
	}
}

func TestSecVHashWins(t *testing.T) {
	s := NewSession(testScale())
	for _, wl := range []string{"sessionization", "per-user-count"} {
		hd := s.Run(runSpec{Workload: wl, Engine: "hadoop", InputGB: 256})
		hi := s.Run(runSpec{Workload: wl, Engine: "hash-incremental", InputGB: 256})
		if hi.CPU.Total() >= hd.CPU.Total() {
			t.Errorf("%s: hash CPU %.1f not below hadoop %.1f", wl, hi.CPU.Total(), hd.CPU.Total())
		}
		// For the aggregable workload the hash engine must also win on
		// makespan; for sessionization (holistic, list states) the paper
		// only claims comparable I/O, so allow parity within 25%.
		limit := float64(hd.Makespan)
		if wl == "sessionization" {
			limit *= 1.25
		}
		if float64(hi.Makespan) >= limit {
			t.Errorf("%s: hash makespan %v vs hadoop %v (limit %.2fs)", wl, hi.Makespan, hd.Makespan, limit/1e9)
		}
	}
}

func TestSecVSpillReductionOrdersOfMagnitude(t *testing.T) {
	s := NewSession(testScale())
	hd := s.Run(runSpec{Workload: "per-user-count", Engine: "hadoop", InputGB: 256})
	hot := s.Run(runSpec{Workload: "per-user-count", Engine: "hash-hotkey", InputGB: 256, HotCounters: 2048})
	hdSpill := hd.Counters.Get(engine.CtrReduceSpillBytes)
	hotSpill := hot.Counters.Get(engine.CtrReduceSpillBytes)
	if hdSpill == 0 {
		t.Fatal("hadoop did not spill — the segment-count merge trigger (§III.B.4) should force it")
	}
	// Ample memory for aggregate states: the hash engine should spill
	// nothing at all, reproducing the paper's orders-of-magnitude claim.
	if hotSpill*20 > hdSpill {
		t.Fatalf("hot-key spill %v not far below hadoop's %v", hotSpill, hdSpill)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID: "X", Title: "t",
		Rows:    []Row{{Name: "a", Paper: "1", Measured: "2", Note: "n"}},
		Figures: []Figure{{Title: "f", Lines: []string{"l1"}, Notes: []string{"note"}}},
	}
	out := rep.Render()
	for _, want := range []string{"## X — t", "| a", "| 1", "| 2", "l1", "- note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestStreamingIncrementalAnswersFastestAfterArrival(t *testing.T) {
	s := NewSession(testScale())
	spec := runSpec{Workload: "per-user-count", InputGB: 64, StreamPerMinute: 1}
	hdSpec, hiSpec := spec, spec
	hdSpec.Engine = "hadoop"
	hiSpec.Engine = "hash-incremental"
	hd := s.Run(hdSpec)
	hi := s.Run(hiSpec)
	// Both makespans are dominated by the 60s arrival window; the question
	// is the post-arrival lag.
	if hd.Makespan.Seconds() < 60 || hi.Makespan.Seconds() < 60 {
		t.Fatalf("streamed runs finished before the stream: %v / %v", hd.Makespan, hi.Makespan)
	}
	lagHD := hd.Makespan.Seconds() - 60
	lagHI := hi.Makespan.Seconds() - 60
	if lagHI >= lagHD {
		t.Fatalf("hash post-arrival lag %.2fs not below hadoop's %.2fs", lagHI, lagHD)
	}
}

func TestStreamedMapsStartDuringArrival(t *testing.T) {
	s := NewSession(testScale())
	res := s.Run(runSpec{Workload: "per-user-count", Engine: "hash-incremental",
		InputGB: 64, StreamPerMinute: 1})
	mapStart, mapEnd, ok := res.Timeline.PhaseWindow(engine.SpanMap)
	if !ok {
		t.Fatal("no map spans")
	}
	// Map tasks must track arrivals: the first starts when the first block
	// lands (at 60s/#blocks into the stream), the last near the stream's
	// end.
	if mapStart.Seconds() > 31 {
		t.Fatalf("first map at %v — should start when the first block arrives", mapStart)
	}
	if mapEnd.Seconds() < 55 {
		t.Fatalf("last map at %v — tasks did not track the arrival schedule", mapEnd)
	}
}

// TestServiceSaturationKnee renders the service experiment at test scale
// and checks the open-loop fleet exhibits a latency knee: overload p95 well
// above underload p95 for every engine, with all fairness audits clean
// (ServiceSaturation panics on any invariant failure).
func TestServiceSaturationKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run service sweep")
	}
	s := NewSession(testScale())
	rep := s.ServiceSaturation()
	if len(rep.Figures) != len(serviceEngines) {
		t.Fatalf("figures = %d, want %d", len(rep.Figures), len(serviceEngines))
	}
	if len(rep.Rows) != len(serviceEngines) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(serviceEngines))
	}
	for _, f := range rep.Figures {
		// One line per load point per tenant.
		if len(f.Lines) != 2*len(serviceLoadMults) {
			t.Errorf("%s: %d lines, want %d", f.Title, len(f.Lines), 2*len(serviceLoadMults))
		}
	}
	out := rep.Render()
	if !strings.Contains(out, "latency knee") || !strings.Contains(out, "hash-incremental") {
		t.Fatalf("render broken:\n%s", out)
	}
}

// TestResidentIterativeChain: the chained-PageRank experiment must show the
// resident engine reading zero disk after the init stage while agreeing
// bit-for-bit with the disk engine's final ranks.
func TestResidentIterativeChain(t *testing.T) {
	s := NewSession(testScale())
	rep := s.ResidentIterative()
	if len(rep.Rows) != residentIterations+4 {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), residentIterations+4)
	}
	var agree, afterInit *Row
	for i := range rep.Rows {
		switch rep.Rows[i].Name {
		case "final ranks":
			agree = &rep.Rows[i]
		case "disk reads after init":
			afterInit = &rep.Rows[i]
		}
	}
	if agree == nil || agree.Note != "bit-identical" {
		t.Fatalf("final ranks disagree: %+v", agree)
	}
	if afterInit == nil || afterInit.Measured != "0.0 MB" {
		t.Fatalf("resident chain read disk after init: %+v", afterInit)
	}
	if afterInit.Paper == "0.0 MB" {
		t.Fatalf("disk engine read no disk after init — the comparison is vacuous: %+v", afterInit)
	}
}
