package experiments

import (
	"fmt"

	"onepass/internal/engine"
	"onepass/internal/sim"
)

// figWidth is the sparkline width for rendered figures.
const figWidth = 72

// phaseShape summarizes the blocking-merge signature of a run: CPU
// utilization during the map phase, the post-map valley, and the iowait and
// disk-read behaviour inside the valley.
type phaseShape struct {
	MapMeanUtil    float64
	ValleyUtil     float64 // minimum smoothed utilization after the map phase
	MapMeanIowait  float64
	ValleyIowait   float64 // iowait at the valley
	ValleyReadPeak float64 // peak disk bytes read per second after map phase
	MapEnd         sim.Time
}

func shapeOf(res *engine.Result) phaseShape {
	_, mapEnd, _ := res.Timeline.PhaseWindow(engine.SpanMap)
	bucket := res.CPUUtil.Bucket
	endBucket := int(int64(sim.Duration(res.Makespan)) / int64(bucket))
	mapEndBucket := int(int64(mapEnd) / int64(bucket))
	sh := phaseShape{MapEnd: mapEnd}
	sh.MapMeanUtil = res.CPUUtil.MeanOver(0, mapEndBucket)
	sh.MapMeanIowait = res.Iowait.MeanOver(0, mapEndBucket)
	// The valley of Fig 2 is the between-phase window where the framework
	// re-reads spilled runs, so bound the search to the region with merge
	// I/O: the quiet CPU tail after the last reducer's reads complete is a
	// different (and uninteresting) kind of idle.
	lastRead := mapEndBucket
	for i := mapEndBucket; i < endBucket; i++ {
		if res.BytesRead.At(i) > 0 {
			lastRead = i
		}
	}
	searchEnd := lastRead + 1
	if searchEnd > endBucket-1 {
		searchEnd = endBucket - 1
	}
	// Smoothed minimum over the merge region (3-bucket window).
	sh.ValleyUtil = 2.0
	valleyAt := mapEndBucket
	for i := mapEndBucket; i < searchEnd; i++ {
		v := res.CPUUtil.MeanOver(i, i+3)
		if v < sh.ValleyUtil {
			sh.ValleyUtil = v
			valleyAt = i
		}
	}
	if sh.ValleyUtil > 1.5 { // no post-map region at tiny scales
		sh.ValleyUtil = res.CPUUtil.MeanOver(mapEndBucket, endBucket)
	}
	sh.ValleyIowait = res.Iowait.MeanOver(valleyAt, valleyAt+3)
	for i := mapEndBucket; i < endBucket; i++ {
		if v := res.BytesRead.At(i); v > sh.ValleyReadPeak {
			sh.ValleyReadPeak = v
		}
	}
	return sh
}

// fig2Specs covers Figs 2(a)–(d): four views of one shared run.
func fig2Specs(*Session) []runSpec {
	return []runSpec{specHadoopSessionization()}
}

func fig2eSpecs(*Session) []runSpec {
	return []runSpec{specHadoopSessionization(),
		{Workload: "sessionization", Engine: "hadoop", InputGB: 256, SSD: true}}
}

func fig2fSpecs(*Session) []runSpec {
	return []runSpec{specHadoopSessionization(),
		{Workload: "sessionization", Engine: "hadoop", InputGB: 256, Split: true}}
}

func fig3Specs(*Session) []runSpec {
	return []runSpec{{Workload: "inverted-index", Engine: "hadoop", InputGB: 427}}
}

func fig4Specs(*Session) []runSpec {
	return []runSpec{specHadoopSessionization(),
		{Workload: "sessionization", Engine: "hop", InputGB: 256, Snapshots: true}}
}

// Fig2a reproduces the sessionization task timeline: map, shuffle, merge,
// and reduce task counts over time, with merge activity bridging the gap.
func (s *Session) Fig2a() *Report {
	res := s.hadoopSessionization()
	fig := Figure{Title: "Fig 2(a): task timeline, sessionization on Hadoop"}
	counts := res.Timeline.Counts(res.CPUUtil.Bucket, sim.Time(int64(res.Makespan)))
	for _, phase := range []string{engine.SpanMap, engine.SpanShuffle, engine.SpanMerge, engine.SpanReduce} {
		if series, ok := counts[phase]; ok {
			fig.Lines = append(fig.Lines, seriesLine(phase, series, figWidth))
		}
	}
	byPhase := res.Timeline.CountByPhase()
	mStart, mEnd, _ := res.Timeline.PhaseWindow(engine.SpanMerge)
	_, mapEnd, _ := res.Timeline.PhaseWindow(engine.SpanMap)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d map, %d merge, %d reduce spans", byPhase[engine.SpanMap], byPhase[engine.SpanMerge], byPhase[engine.SpanReduce]),
		fmt.Sprintf("background merges start at %v, before the last map ends at %v (paper: 'some periodic background merges take place even before all map tasks complete')", mStart, mapEnd),
		fmt.Sprintf("merge activity extends to %v, past the map phase — the blocking bridge of Fig 2(a)", mEnd),
	)
	return &Report{ID: "Fig 2(a)", Title: "Task timeline (sessionization, Hadoop)", Figures: []Figure{fig}}
}

// Fig2b reproduces the CPU-utilization plot: busy map phase, idle valley
// during the multi-pass merge.
func (s *Session) Fig2b() *Report {
	res := s.hadoopSessionization()
	sh := shapeOf(res)
	fig := Figure{
		Title: "Fig 2(b): CPU utilization, sessionization on Hadoop",
		Lines: []string{seriesLine("cpu-util", res.CPUUtil, figWidth)},
		Notes: []string{
			fmt.Sprintf("map-phase mean utilization %s; post-map valley minimum %s", pct(sh.MapMeanUtil), pct(sh.ValleyUtil)),
			"paper: 'there is an extended period where the CPUs are mostly idle'",
		},
	}
	return &Report{
		ID: "Fig 2(b)", Title: "CPU utilization (sessionization, Hadoop)",
		Rows: []Row{{
			Name:     "post-map CPU valley vs map-phase mean",
			Paper:    "deep valley (mostly idle)",
			Measured: fmt.Sprintf("%s valley vs %s map mean", pct(sh.ValleyUtil), pct(sh.MapMeanUtil)),
		}},
		Figures: []Figure{fig},
	}
}

// Fig2c reproduces the CPU iowait plot: the valley is disk wait.
func (s *Session) Fig2c() *Report {
	res := s.hadoopSessionization()
	sh := shapeOf(res)
	fig := Figure{
		Title: "Fig 2(c): CPU iowait, sessionization on Hadoop",
		Lines: []string{seriesLine("cpu-iowait", res.Iowait, figWidth)},
		Notes: []string{"paper: the idle period 'is largely due to outstanding disk I/O requests'"},
	}
	return &Report{
		ID: "Fig 2(c)", Title: "CPU iowait (sessionization, Hadoop)",
		Rows: []Row{{
			Name:     "iowait in the valley vs map phase",
			Paper:    "spike during merge",
			Measured: fmt.Sprintf("%s valley vs %s map mean", pct(sh.ValleyIowait), pct(sh.MapMeanIowait)),
		}},
		Figures: []Figure{fig},
	}
}

// Fig2d reproduces the disk bytes-read plot: the merge re-reads spilled
// runs.
func (s *Session) Fig2d() *Report {
	res := s.hadoopSessionization()
	sh := shapeOf(res)
	fig := Figure{
		Title: "Fig 2(d): disk bytes read per second, sessionization on Hadoop",
		Lines: []string{seriesLine("bytes-read", res.BytesRead, figWidth)},
		Notes: []string{"paper: 'a large number of bytes read from disk in the same period'"},
	}
	return &Report{
		ID: "Fig 2(d)", Title: "Disk reads (sessionization, Hadoop)",
		Rows: []Row{{
			Name:     "peak post-map read rate",
			Paper:    "read surge during merge",
			Measured: fmtBytes(sh.ValleyReadPeak) + "/s",
		}},
		Figures: []Figure{fig},
	}
}

// Fig2e reproduces the HDD+SSD experiment: moving intermediate data to a
// per-node SSD cuts the runtime substantially (paper: 76 → 43 min) but the
// merge valley persists.
func (s *Session) Fig2e() *Report {
	base := s.hadoopSessionization()
	ssd := s.Run(fig2eSpecs(s)[1])
	shSSD := shapeOf(ssd)
	speedup := 1 - float64(ssd.Makespan)/float64(base.Makespan)
	fig := Figure{
		Title: "Fig 2(e): CPU utilization with HDD+SSD (intermediate data on SSD)",
		Lines: []string{seriesLine("cpu-util", ssd.CPUUtil, figWidth)},
	}
	return &Report{
		ID: "Fig 2(e)", Title: "Separate storage devices (HDD + SSD)",
		Rows: []Row{
			{
				Name:     "runtime reduction from SSD",
				Paper:    "43% (76 → 43 min)",
				Measured: fmt.Sprintf("%s (%s → %s)", pct(speedup), fmtDur(base.Makespan), fmtDur(ssd.Makespan)),
			},
			{
				Name:     "blocking valley still present",
				Paper:    "yes ('a significant period where CPU utilization is low')",
				Measured: fmt.Sprintf("valley %s vs map mean %s", pct(shSSD.ValleyUtil), pct(shSSD.MapMeanUtil)),
			},
		},
		Figures: []Figure{fig},
	}
}

// Fig2f reproduces the split storage/compute architecture: contention
// relief without SSD speed (paper: 76 → 55 min), blocking remains.
func (s *Session) Fig2f() *Report {
	base := s.hadoopSessionization()
	split := s.Run(fig2fSpecs(s)[1])
	shSplit := shapeOf(split)
	// The paper halved the input for the 5-node compute tier; we keep the
	// input constant and report per-makespan shape instead, noting the
	// substitution.
	fig := Figure{
		Title: "Fig 2(f): CPU utilization with split storage/compute (5+5 nodes)",
		Lines: []string{seriesLine("cpu-util", split.CPUUtil, figWidth)},
	}
	return &Report{
		ID: "Fig 2(f)", Title: "Separate distributed storage system",
		Rows: []Row{
			{
				Name:     "makespan (baseline vs split)",
				Paper:    "76 → 55 min (with input reduced for 5 compute nodes)",
				Measured: fmt.Sprintf("%s → %s (same input on half the compute)", fmtDur(base.Makespan), fmtDur(split.Makespan)),
				Note:     "loses data locality; all input crosses the network",
			},
			{
				Name:     "blocking + I/O remain",
				Paper:    "yes",
				Measured: fmt.Sprintf("valley %s vs map mean %s", pct(shSplit.ValleyUtil), pct(shSplit.MapMeanUtil)),
			},
		},
		Figures: []Figure{fig},
	}
}

// Fig3 reproduces the inverted-index task timeline: the blocking merge
// phase is present in this workload as well.
func (s *Session) Fig3() *Report {
	res := s.Run(fig3Specs(s)[0])
	fig := Figure{Title: "Fig 3: task timeline, inverted index on Hadoop"}
	counts := res.Timeline.Counts(res.CPUUtil.Bucket, sim.Time(int64(res.Makespan)))
	for _, phase := range []string{engine.SpanMap, engine.SpanShuffle, engine.SpanMerge, engine.SpanReduce} {
		if series, ok := counts[phase]; ok {
			fig.Lines = append(fig.Lines, seriesLine(phase, series, figWidth))
		}
	}
	spill := res.Counters.Get(engine.CtrReduceSpillBytes)
	return &Report{
		ID: "Fig 3", Title: "Inverted index timeline (Hadoop)",
		Rows: []Row{{
			Name:     "merge-phase I/O",
			Paper:    "150 GB ('progress is stopped until local intermediate data is merged')",
			Measured: fmtBytes(spill),
		}},
		Figures: []Figure{fig},
	}
}

// Fig4 reproduces the MapReduce Online measurements: same valley and iowait
// spike, total runtime slightly longer than stock Hadoop, lower map-phase
// CPU utilization with similar total map-phase cycles.
func (s *Session) Fig4() *Report {
	base := s.hadoopSessionization()
	hopRes := s.Run(fig4Specs(s)[1])
	shHop := shapeOf(hopRes)
	shBase := shapeOf(base)
	figs := []Figure{
		{
			Title: "Fig 4(a): CPU utilization, sessionization on MapReduce Online",
			Lines: []string{seriesLine("cpu-util", hopRes.CPUUtil, figWidth)},
		},
		{
			Title: "Fig 4(b): CPU iowait, sessionization on MapReduce Online",
			Lines: []string{seriesLine("cpu-iowait", hopRes.Iowait, figWidth)},
		},
	}
	return &Report{
		ID: "Fig 4", Title: "MapReduce Online (sessionization)",
		Rows: []Row{
			{
				Name:     "total running time vs Hadoop",
				Paper:    "longer than stock Hadoop",
				Measured: fmt.Sprintf("%s vs %s", fmtDur(hopRes.Makespan), fmtDur(base.Makespan)),
			},
			{
				Name:     "valley + iowait spike still present",
				Paper:    "yes ('similar pattern of low values in the middle')",
				Measured: fmt.Sprintf("valley %s, iowait %s", pct(shHop.ValleyUtil), pct(shHop.ValleyIowait)),
			},
			{
				Name:     "map-phase CPU utilization vs Hadoop",
				Paper:    "lower (same total cycles, spread out)",
				Measured: fmt.Sprintf("%s vs %s", pct(shHop.MapMeanUtil), pct(shBase.MapMeanUtil)),
			},
			{
				Name:     "snapshots produced",
				Paper:    "25/50/75% snapshots",
				Measured: fmt.Sprintf("%d snapshot emissions", len(hopRes.Snapshots)),
			},
		},
		Figures: figs,
	}
}
