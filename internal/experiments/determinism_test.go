package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// renderAll concatenates every report, mirroring what cmd/experiments
// writes between header and footer.
func renderAll(reps []*Report) []byte {
	var b bytes.Buffer
	for _, rep := range reps {
		b.WriteString(rep.Render())
		b.WriteString("\n")
	}
	return b.Bytes()
}

// TestParallelSweepByteIdenticalToSerial is the determinism regression
// gate: the full sweep rendered after parallel prefetch (4 workers) must be
// byte-identical to the serial reference path, and every run a renderer
// performs must have been declared (and therefore prefetched) by its
// experiment — otherwise parallelism silently degrades to serial render-
// time execution.
func TestParallelSweepByteIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full double sweep in -short mode")
	}
	scale := testScale()

	serial := NewSession(scale)
	serialOut := renderAll(serial.All())
	serialRuns, _ := serial.RunStats()

	par := NewSession(scale)
	reps, err := par.RunAll(context.Background(), 4, Experiments())
	if err != nil {
		t.Fatal(err)
	}
	parOut := renderAll(reps)
	parRuns, _ := par.RunStats()

	if !bytes.Equal(serialOut, parOut) {
		d := diffLine(serialOut, parOut)
		t.Fatalf("parallel sweep output differs from serial at line %d:\nserial: %s\nparallel: %s",
			d.line, d.a, d.b)
	}
	if serialRuns != parRuns {
		t.Errorf("parallel session executed %d runs, serial %d — duplicate or missing executions", parRuns, serialRuns)
	}

	// Spec coverage: the cache keys after a full parallel sweep are exactly
	// the specs the experiment registry declares. A render that ran an
	// undeclared spec (cache key not declared) or a declared spec no render
	// consumed (wasted prefetch) both fail here.
	declared := make(map[runSpec]bool)
	for _, e := range Experiments() {
		if e.Specs != nil {
			for _, sp := range e.Specs(par) {
				declared[sp] = true
			}
		}
		if e.After != nil {
			for _, sp := range e.After(par) {
				declared[sp] = true
			}
		}
	}
	par.mu.Lock()
	cached := make([]runSpec, 0, len(par.results))
	for sp := range par.results {
		cached = append(cached, sp)
	}
	par.mu.Unlock()
	for _, sp := range cached {
		if !declared[sp] {
			t.Errorf("render executed undeclared spec %+v — add it to the experiment's Specs/After", sp)
		}
	}
	if len(cached) != len(declared) {
		t.Errorf("declared %d specs but cache holds %d — some declared specs are never rendered", len(declared), len(cached))
	}
}

type lineDiff struct {
	line int
	a, b string
}

func diffLine(a, b []byte) lineDiff {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return lineDiff{line: i + 1, a: al[i], b: bl[i]}
		}
	}
	return lineDiff{line: len(al), a: "<end>", b: "<end>"}
}
