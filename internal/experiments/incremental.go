package experiments

// The incremental (delta sweep) experiment is the ROADMAP's i2MapReduce
// extension measured: after a one-pass run has primed fine-grained
// reduce-side state, how much cheaper is maintaining the answer under a
// delta than recomputing it? Each cell applies a seeded delta (record
// updates + deletes in a deterministic block subset, plus appended blocks)
// at 0.1% / 1% / 10% of the base, then compares a full re-run over the
// evolved input with the incremental re-run (changed blocks + preserved
// state only) on the same engine — makespan, disk bytes read, and the
// byte-identity verdict that makes the numbers trustworthy.
//
// Like the service and resident experiments this one does not go through
// Session.Run: each data point is a multi-job incremental pipeline on its
// own simulated cluster, so it declares no specs and builds everything at
// render time (deterministically — virtual time, seeded deltas).

import (
	"fmt"

	"onepass"
)

// incrementalEngines is the full engine registry: every engine is
// delta-capable (kept in sync by TestSweepEnginesMatchRegistry).
var incrementalEngines = onepass.EngineNames()

// incrementalFracs are the swept delta sizes: one per decade.
var incrementalFracs = []float64{0.001, 0.01, 0.1}

// incrementalInputGB is the base input in paper-scale GB — sized so the
// base file spans enough blocks that a 0.1% delta is still sub-block
// sparse after scaling.
const incrementalInputGB = 64

// incrementalSeed fixes the delta derivation (which blocks go dirty, which
// records mutate); any one seed reproduces byte for byte.
const incrementalSeed = 2012

func (s *Session) incrementalConfig(eng onepass.Engine) onepass.Config {
	cfg := onepass.DefaultConfig()
	cfg.Engine = eng
	cfg.Nodes = s.Scale.Nodes
	cfg.BlockSize = s.Scale.BlockSize
	cfg.Reducers = s.Scale.Reducers
	cfg.Parallelism = s.Parallelism
	cfg.Audit = true
	return cfg
}

// incrementalCell runs one (engine, delta, workload) comparison: the
// incremental path via RunDelta and the full re-run over the evolved
// dataset on a fresh cluster, returning both costs and the verdict inputs.
func (s *Session) incrementalCell(eng onepass.Engine, w *onepass.Workload, d onepass.Delta) (dr *onepass.DeltaResult, full *onepass.Result, fullDisk float64) {
	cfg := s.incrementalConfig(eng)
	data := onepass.Dataset{
		Path: "input/" + w.Name,
		Size: s.Scale.Bytes(incrementalInputGB),
		Gen:  w.Gen,
	}
	dr, err := onepass.RunDelta(cfg, data, w.Job, d)
	if err != nil {
		panic(fmt.Sprintf("experiments: incremental (%s/%s): %v", eng, w.Name, err))
	}
	cl := onepass.NewCluster(cfg)
	v2 := onepass.DeltaDataset(data, d, cfg.BlockSize)
	if err := cl.Register(v2); err != nil {
		panic(fmt.Sprintf("experiments: incremental (%s/%s): %v", eng, w.Name, err))
	}
	job := w.Job
	job.InputPath = v2.Path
	job.RetainOutput = true
	full, err = cl.RunJob(job)
	if err != nil {
		panic(fmt.Sprintf("experiments: incremental full re-run (%s/%s): %v", eng, w.Name, err))
	}
	return dr, full, cl.DiskBytesRead()
}

// IncrementalDelta renders the delta sweep: full-re-run vs incremental
// cost as a function of delta size, across every engine, with byte-identity
// checked per cell, plus the sliding-window sessionization scenario showing
// how an append-only delta confines re-folding to trailing windows.
func (s *Session) IncrementalDelta() *Report {
	rep := &Report{
		ID:    "Incremental (delta sweep)",
		Title: "full re-run vs incremental re-run over delta inputs (per-user-count)",
	}
	cc := s.Scale.clickCfg()
	for _, name := range incrementalEngines {
		eng, err := onepass.ParseEngine(name)
		if err != nil {
			panic(fmt.Sprintf("experiments: incremental: %v", err))
		}
		for _, frac := range incrementalFracs {
			s.logf("running incremental delta sweep: %s at %.1f%%...", name, frac*100)
			d := onepass.DefaultDelta(cc, incrementalSeed, frac)
			dr, full, fullDisk := s.incrementalCell(eng, onepass.PerUserCount(cc), d)
			verdict := "identical output"
			if dr.Incremental.OutputChecksum != full.OutputChecksum {
				verdict = fmt.Sprintf("OUTPUT DIVERGED (%016x vs %016x)",
					dr.Incremental.OutputChecksum, full.OutputChecksum)
			}
			rep.Rows = append(rep.Rows, Row{
				Name: fmt.Sprintf("%s, %.1f%% delta", name, frac*100),
				Paper: fmt.Sprintf("full %.2fs / %s read",
					full.Makespan.Seconds(), fmtBytes(fullDisk)),
				Measured: fmt.Sprintf("incr %.2fs / %s read",
					dr.Incremental.Makespan.Seconds(), fmtBytes(dr.Stats.IncrementalDiskReadBytes)),
				Note: fmt.Sprintf("%s; %d/%d blocks changed, %d/%d keys re-folded",
					verdict, dr.Stats.DirtyBlocks+dr.Stats.AppendedBlocks,
					dr.Stats.BaseBlocks+dr.Stats.AppendedBlocks,
					dr.Stats.AffectedKeys, dr.Stats.TotalKeys),
			})
		}
	}

	// The sliding-window scenario: appended (later) clicks touch only the
	// newest windows, so the affected-key set stays small even though the
	// sessionization state itself is holistic.
	s.logf("running incremental delta sweep: windowed sessionization (append-only)...")
	wd := onepass.Delta{Seed: incrementalSeed, AppendFrac: 0.01, Clicks: cc}
	w := onepass.WindowedSessionization(cc, 0)
	dr, full, fullDisk := s.incrementalCell(onepass.HashIncremental, w, wd)
	verdict := "identical output"
	if dr.Incremental.OutputChecksum != full.OutputChecksum {
		verdict = fmt.Sprintf("OUTPUT DIVERGED (%016x vs %016x)",
			dr.Incremental.OutputChecksum, full.OutputChecksum)
	}
	rep.Rows = append(rep.Rows, Row{
		Name: "windowed-sessionization, 1% append",
		Paper: fmt.Sprintf("full %.2fs / %s read",
			full.Makespan.Seconds(), fmtBytes(fullDisk)),
		Measured: fmt.Sprintf("incr %.2fs / %s read",
			dr.Incremental.Makespan.Seconds(), fmtBytes(dr.Stats.IncrementalDiskReadBytes)),
		Note: fmt.Sprintf("%s; %d/%d window keys re-folded on hash-incremental",
			verdict, dr.Stats.AffectedKeys, dr.Stats.TotalKeys),
	})
	return rep
}
