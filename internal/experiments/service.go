package experiments

// The service saturation experiment is not a paper table — it is the
// load-vs-latency curve the paper's one-pass argument implies: a shared
// cluster serving many tenants' jobs has a capacity knee, and engines that
// finish jobs sooner push the knee to higher offered load. An open-loop
// client fleet (internal/loadgen) offers Poisson traffic at multiples of
// the cluster's measured per-engine service rate; per-tenant queue-wait and
// end-to-end job latency quantiles come back from the service's mergeable
// histograms.
//
// Unlike every other experiment this one does not go through Session.Run:
// each data point is a whole multi-job service run on its own simulated
// cluster, not one engine run, so it declares no specs and builds its
// services directly at render time (deterministically — seeded arrivals on
// virtual time).

import (
	"fmt"

	"onepass"
	"onepass/internal/loadgen"
	"onepass/internal/service"
	"onepass/internal/sim"
)

// serviceEngines is the full engine registry — every engine, resident
// included, gets service-scheduler coverage (kept in sync by
// TestSweepEnginesMatchRegistry).
var serviceEngines = onepass.EngineNames()

// serviceLoadMults are the offered-load multipliers of the calibrated
// service rate: comfortably under, at, and far past the knee.
var serviceLoadMults = []float64{0.25, 1, 4}

// serviceInputGB is the per-job input in paper-scale GB (scaled by
// Scale.Factor like every experiment input).
const serviceInputGB = 8

const serviceJobsPerTenant = 10

func (s *Session) serviceConfig() service.Config {
	return service.Config{
		Tenants: []service.TenantConfig{
			{Name: "gold", Weight: 2},
			{Name: "silver", Weight: 1},
		},
		Nodes:              s.Scale.Nodes,
		BlockSize:          s.Scale.BlockSize,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		Reducers:           s.Scale.Reducers,
		SampleInterval:     s.sampleInterval(),
		Parallelism:        s.Parallelism,
		Audit:              true,
	}
}

// serviceRun executes one fleet: both tenants offer ratePerTenant jobs/s of
// Poisson traffic, jobs each, on the named engine. Fairness invariants are
// always armed; a failure is a bug, so it panics like Session.execute does.
func (s *Session) serviceRun(engineName string, ratePerTenant float64, jobs int) *service.Report {
	svc, err := service.New(s.serviceConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: service config: %v", err))
	}
	w := s.workload("per-user-count", false, false)
	path := "input/" + w.Name
	if err := svc.RegisterInput(path, s.Scale.Bytes(serviceInputGB), w.Gen); err != nil {
		panic(err)
	}
	req := service.JobRequest{Engine: engineName, Job: w.Job, InputPath: path}
	if err := loadgen.Drive(svc, []loadgen.TenantLoad{
		{Tenant: "gold", Arrival: loadgen.Poisson(1001, ratePerTenant), Jobs: jobs, Mix: []service.JobRequest{req}},
		{Tenant: "silver", Arrival: loadgen.Poisson(2002, ratePerTenant), Jobs: jobs, Mix: []service.JobRequest{req}},
	}); err != nil {
		panic(err)
	}
	rep, err := svc.Run()
	if err != nil {
		panic(fmt.Sprintf("experiments: service run (%s at %.3f jobs/s/tenant): %v", engineName, ratePerTenant, err))
	}
	return rep
}

// serviceRate calibrates one engine's service capacity: an uncontended run
// (one job per tenant) measures the median job execution time; with four
// default-grant jobs fitting the slot capacity, the cluster's service rate
// is 4 jobs per execution time.
func (s *Session) serviceRate(engineName string) float64 {
	cal := s.serviceRun(engineName, 1, 1)
	var exec sim.Duration
	for _, tr := range cal.Tenants {
		if d := sim.Duration(tr.Exec.P50()); d > exec {
			exec = d
		}
	}
	if exec <= 0 {
		panic("experiments: service calibration measured zero execution time")
	}
	return 4.0 / exec.Seconds()
}

// ServiceSaturation renders the saturation experiment: per engine, offered
// load vs per-tenant job latency and queue wait, with the knee factor (p95
// latency at 4x load over 0.25x) as the headline number.
func (s *Session) ServiceSaturation() *Report {
	rep := &Report{
		ID:    "Service (saturation)",
		Title: "multi-tenant job service: open-loop offered load vs per-tenant latency",
	}
	for _, eng := range serviceEngines {
		total := s.serviceRate(eng)
		fig := Figure{Title: fmt.Sprintf("%s — offered load vs latency (service rate %.2f jobs/s)", eng, total)}
		var p95Low, p95High sim.Duration
		for _, mult := range serviceLoadMults {
			perTenant := mult * total / 2
			r := s.serviceRun(eng, perTenant, serviceJobsPerTenant)
			for _, tr := range r.Tenants {
				fig.Lines = append(fig.Lines, fmt.Sprintf(
					"load %.2fx %-6s (%6.2f jobs/s offered): latency p50/p95/p99 %s/%s/%s  queue-wait p50/p95 %s/%s",
					mult, tr.Name, perTenant,
					fmtDur(sim.Duration(tr.Latency.P50())), fmtDur(sim.Duration(tr.Latency.P95())), fmtDur(sim.Duration(tr.Latency.P99())),
					fmtDur(sim.Duration(tr.QueueWait.P50())), fmtDur(sim.Duration(tr.QueueWait.P95()))))
				if tr.Name == "gold" {
					switch mult {
					case serviceLoadMults[0]:
						p95Low = sim.Duration(tr.Latency.P95())
					case serviceLoadMults[len(serviceLoadMults)-1]:
						p95High = sim.Duration(tr.Latency.P95())
					}
				}
			}
		}
		knee := float64(p95High) / float64(p95Low)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"latency knee: gold p95 grows %.1fx from %.2fx to %.2fx offered load; fairness and conservation audits passed on every run",
			knee, serviceLoadMults[0], serviceLoadMults[len(serviceLoadMults)-1]))
		rep.Figures = append(rep.Figures, fig)
		rep.Rows = append(rep.Rows, Row{
			Name:     eng,
			Paper:    "knee past capacity",
			Measured: fmt.Sprintf("p95 ×%.1f at %gx load", knee, serviceLoadMults[len(serviceLoadMults)-1]),
			Note:     fmt.Sprintf("service rate %.2f jobs/s, 2 tenants (weights 2:1), Poisson arrivals", total),
		})
	}
	return rep
}
