package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkSpaceSavingOffer(b *testing.B) {
	s := NewSpaceSaving(4096)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([][]byte, 1<<12)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("u%d", zipf.Uint64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(keys[i&(1<<12-1)], 1)
	}
}

func BenchmarkSpaceSavingEstimate(b *testing.B) {
	s := NewSpaceSaving(4096)
	for i := 0; i < 1<<14; i++ {
		s.Offer([]byte(fmt.Sprintf("u%d", i%8192)), 1)
	}
	key := []byte("u42")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate(key)
	}
}
