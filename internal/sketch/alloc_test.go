package sketch

import (
	"fmt"
	"testing"
)

// Allocation budget for the sketch hit path: the hot-key engine calls Offer
// once per shuffled record, and almost every call in a skewed stream hits an
// already-tracked key. That path must not allocate.

func TestAllocBudgetOfferHit(t *testing.T) {
	s := NewSpaceSaving(64)
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("hot-%03d", i))
		s.Offer(keys[i], 1)
	}
	avg := testing.AllocsPerRun(1000, func() {
		for _, k := range keys {
			s.Offer(k, 1)
		}
	})
	if avg != 0 {
		t.Fatalf("tracked-key Offer allocates %.1f/op, budget 0", avg)
	}
}

func TestAllocBudgetEstimate(t *testing.T) {
	s := NewSpaceSaving(64)
	key := []byte("hot-000")
	s.Offer(key, 3)
	avg := testing.AllocsPerRun(1000, func() {
		if _, _, ok := s.Estimate(key); !ok {
			t.Fatal("key lost")
		}
	})
	if avg != 0 {
		t.Fatalf("Estimate allocates %.1f/op, budget 0", avg)
	}
}
