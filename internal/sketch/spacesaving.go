// Package sketch implements the SpaceSaving frequent-items algorithm
// (Metwally, Agrawal, El Abbadi 2005) — the "existing online frequent
// algorithm" the paper's hash engine borrows (§V) to identify hot keys whose
// reduce states deserve memory when the full key set does not fit. With k
// counters over a stream of N items, every key whose true frequency exceeds
// N/k is guaranteed to be tracked, and each estimate overshoots the true
// count by at most the recorded error bound.
package sketch

import (
	"container/heap"
	"sort"
)

// Entry is one tracked key with its estimated count and maximum
// overestimation error.
type Entry struct {
	Key   string
	Count uint64
	Err   uint64
}

type item struct {
	key   string
	count uint64
	err   uint64
	idx   int // heap index
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].key < h[j].key // deterministic eviction order
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *itemHeap) Push(x interface{}) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SpaceSaving tracks the (approximately) k most frequent keys of a stream.
type SpaceSaving struct {
	k     int
	items map[string]*item
	heap  itemHeap
	// slots preallocates all k counters: the sketch's footprint is fixed by
	// construction, so after warm-up no item structs are ever allocated —
	// evictions recycle the minimum counter in place.
	slots []item
	// intern caches owned strings for keys that have been tracked, so a key
	// that churns in and out of the counter set (the moderately hot tail)
	// does not reallocate its string on every re-entry. Bounded: cleared
	// when it outgrows a small multiple of k.
	intern map[string]string
	n      uint64
}

// NewSpaceSaving returns a sketch with k counters. The frequency guarantee
// threshold is N/k where N is the stream length so far.
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		panic("sketch: k must be positive")
	}
	return &SpaceSaving{
		k:      k,
		items:  make(map[string]*item, k),
		heap:   make(itemHeap, 0, k),
		slots:  make([]item, k),
		intern: make(map[string]string, k),
	}
}

// internKey returns an owned string for key, reusing a prior allocation when
// the key has been tracked before.
func (s *SpaceSaving) internKey(key []byte) string {
	if v, ok := s.intern[string(key)]; ok {
		return v
	}
	if len(s.intern) >= 4*s.k {
		s.intern = make(map[string]string, s.k)
	}
	v := string(key)
	s.intern[v] = v
	return v
}

// K returns the number of counters.
func (s *SpaceSaving) K() int { return s.k }

// N returns the total weight offered so far.
func (s *SpaceSaving) N() uint64 { return s.n }

// Tracked returns the number of keys currently monitored.
func (s *SpaceSaving) Tracked() int { return len(s.items) }

// Offer feeds one occurrence of key with the given weight (use 1 for plain
// counting).
func (s *SpaceSaving) Offer(key []byte, weight uint64) {
	if weight == 0 {
		return
	}
	s.n += weight
	if it, ok := s.items[string(key)]; ok {
		it.count += weight
		heap.Fix(&s.heap, it.idx)
		return
	}
	if len(s.items) < s.k {
		it := &s.slots[len(s.heap)]
		*it = item{key: s.internKey(key), count: weight}
		s.items[it.key] = it
		heap.Push(&s.heap, it)
		return
	}
	// Replace the current minimum in place: the newcomer inherits its count
	// as the error bound, the classic SpaceSaving step.
	min := s.heap[0]
	delete(s.items, min.key)
	min.err = min.count
	min.count += weight
	min.key = s.internKey(key)
	s.items[min.key] = min
	heap.Fix(&s.heap, 0)
}

// Estimate returns the estimated count and error bound for key, and whether
// the key is currently tracked. For a tracked key the true count lies in
// [Count-Err, Count].
func (s *SpaceSaving) Estimate(key []byte) (count, errBound uint64, tracked bool) {
	it, ok := s.items[string(key)]
	if !ok {
		return 0, 0, false
	}
	return it.count, it.err, true
}

// GuaranteedCount returns the provable lower bound on key's true count
// (Count-Err), or 0 if untracked.
func (s *SpaceSaving) GuaranteedCount(key []byte) uint64 {
	it, ok := s.items[string(key)]
	if !ok {
		return 0
	}
	return it.count - it.err
}

// Top returns up to n tracked entries ordered by descending estimated count
// (ties broken by key for determinism).
func (s *SpaceSaving) Top(n int) []Entry {
	out := make([]Entry, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, Entry{Key: it.key, Count: it.count, Err: it.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// MinCount returns the smallest tracked count (the eviction threshold), or
// 0 when fewer than k keys are tracked.
func (s *SpaceSaving) MinCount() uint64 {
	if len(s.items) < s.k || len(s.heap) == 0 {
		return 0
	}
	return s.heap[0].count
}

// IsHot reports whether key is tracked with a guaranteed count strictly
// above the current eviction threshold — a conservative "definitely
// frequent" test the hot-key engine uses for pinning decisions.
func (s *SpaceSaving) IsHot(key []byte) bool {
	it, ok := s.items[string(key)]
	if !ok {
		return false
	}
	return it.count-it.err > 0 && (len(s.items) < s.k || it.count > s.heap[0].count)
}
