package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Offer([]byte(fmt.Sprintf("k%d", i)), 1)
		}
	}
	for i := 0; i < 5; i++ {
		c, e, ok := s.Estimate([]byte(fmt.Sprintf("k%d", i)))
		if !ok || c != uint64(i+1) || e != 0 {
			t.Fatalf("k%d: c=%d e=%d ok=%v", i, c, e, ok)
		}
	}
	if s.Tracked() != 5 || s.N() != 15 {
		t.Fatalf("tracked=%d n=%d", s.Tracked(), s.N())
	}
}

func TestEvictionTracksNewcomer(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Offer([]byte("a"), 5)
	s.Offer([]byte("b"), 3)
	s.Offer([]byte("c"), 1) // evicts b (min), inherits err=3
	c, e, ok := s.Estimate([]byte("c"))
	if !ok || c != 4 || e != 3 {
		t.Fatalf("c: count=%d err=%d ok=%v", c, e, ok)
	}
	if _, _, ok := s.Estimate([]byte("b")); ok {
		t.Fatal("b should be evicted")
	}
	if s.GuaranteedCount([]byte("c")) != 1 {
		t.Fatalf("guaranteed = %d", s.GuaranteedCount([]byte("c")))
	}
	if s.GuaranteedCount([]byte("b")) != 0 {
		t.Fatal("untracked guaranteed count must be 0")
	}
}

func TestZeroWeightIgnored(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Offer([]byte("a"), 0)
	if s.N() != 0 || s.Tracked() != 0 {
		t.Fatal("zero weight must be a no-op")
	}
}

func TestTopOrderingAndLimit(t *testing.T) {
	s := NewSpaceSaving(10)
	s.Offer([]byte("low"), 1)
	s.Offer([]byte("high"), 10)
	s.Offer([]byte("mid"), 5)
	top := s.Top(2)
	if len(top) != 2 || top[0].Key != "high" || top[1].Key != "mid" {
		t.Fatalf("top = %v", top)
	}
	all := s.Top(0)
	if len(all) != 3 {
		t.Fatalf("top(0) = %v", all)
	}
}

func TestTopDeterministicTieBreak(t *testing.T) {
	s := NewSpaceSaving(5)
	s.Offer([]byte("zz"), 2)
	s.Offer([]byte("aa"), 2)
	top := s.Top(0)
	if top[0].Key != "aa" || top[1].Key != "zz" {
		t.Fatalf("tie break = %v", top)
	}
}

func TestHeavyHitterAlwaysTracked(t *testing.T) {
	// A key with frequency > N/k must be tracked regardless of stream order.
	rng := rand.New(rand.NewSource(42))
	s := NewSpaceSaving(20)
	const total = 20000
	hot := 0
	for i := 0; i < total; i++ {
		if rng.Float64() < 0.10 { // hot key: ~10% > 1/20 = 5%
			s.Offer([]byte("HOT"), 1)
			hot++
		} else {
			s.Offer([]byte(fmt.Sprintf("cold-%d", rng.Intn(5000))), 1)
		}
	}
	c, e, ok := s.Estimate([]byte("HOT"))
	if !ok {
		t.Fatal("heavy hitter lost")
	}
	if c < uint64(hot) {
		t.Fatalf("estimate %d below true count %d", c, hot)
	}
	if c-e > uint64(hot) {
		t.Fatalf("lower bound %d above true count %d", c-e, hot)
	}
	if !s.IsHot([]byte("HOT")) {
		t.Fatal("IsHot must fire for a dominant key")
	}
}

func TestMinCount(t *testing.T) {
	s := NewSpaceSaving(2)
	if s.MinCount() != 0 {
		t.Fatal("undersubscribed sketch has threshold 0")
	}
	s.Offer([]byte("a"), 5)
	s.Offer([]byte("b"), 3)
	if s.MinCount() != 3 {
		t.Fatalf("min = %d", s.MinCount())
	}
}

func TestInvalidKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpaceSaving(0)
}

// Property (the SpaceSaving guarantees): for any stream, (1) every tracked
// estimate bounds its true count from above, (2) estimate - err bounds it
// from below, and (3) any key with true count > N/k is tracked.
func TestSpaceSavingGuaranteesProperty(t *testing.T) {
	f := func(stream []uint8, k uint8) bool {
		kk := int(k%16) + 2
		s := NewSpaceSaving(kk)
		truth := map[string]uint64{}
		for _, b := range stream {
			key := fmt.Sprintf("k%d", b%32)
			s.Offer([]byte(key), 1)
			truth[key]++
		}
		n := uint64(len(stream))
		for key, trueCount := range truth {
			est, errB, tracked := s.Estimate([]byte(key))
			if tracked {
				if est < trueCount {
					return false // estimate must not undercount
				}
				if est-errB > trueCount {
					return false // lower bound must hold
				}
			} else if trueCount > n/uint64(kk) {
				return false // heavy hitters must be tracked
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
