package hadoop

import (
	"testing"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/enginetest"
	"onepass/internal/faults"
	"onepass/internal/gen"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

func smallClicks() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	cfg.Users = 300
	cfg.URLs = 150
	return cfg
}

func smallDocs() gen.DocConfig {
	cfg := gen.DefaultDocConfig()
	cfg.Vocab = 400
	cfg.WordsPerDoc = 60
	return cfg
}

func run(t *testing.T, w *workloads.Workload, cfg enginetest.Config, opts Options) (*enginetest.Fixture, *engine.Result) {
	t.Helper()
	f := enginetest.New(t, w, cfg)
	res, err := Run(f.RT, f.Job, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestAllWorkloadsMatchReference(t *testing.T) {
	cases := []*workloads.Workload{
		workloads.Sessionization(smallClicks()),
		workloads.PageFrequency(smallClicks()),
		workloads.PerUserCount(smallClicks()),
		workloads.InvertedIndex(smallDocs()),
	}
	for _, w := range cases {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, res := run(t, w, enginetest.Config{}, Options{})
			f.CheckOutput(t, w, res)
		})
	}
}

func TestSpillAndMultiPassMergeStillCorrect(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	// Tiny reducer memory forces spills; tiny fan-in forces multi-pass.
	f, res := run(t, w, enginetest.Config{MemPerTask: 4 << 10, Reducers: 2}, Options{FanIn: 2})
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrReduceSpillBytes) == 0 {
		t.Fatal("expected reduce-side spills")
	}
	if res.Counters.Get(engine.CtrMergePasses) == 0 {
		t.Fatal("expected multi-pass merges")
	}
}

func TestNoSpillWhenMemoryAmple(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	_, res := run(t, w, enginetest.Config{MemPerTask: 1 << 30}, Options{})
	if res.Counters.Get(engine.CtrReduceSpillBytes) != 0 {
		t.Fatalf("unexpected spills: %v bytes", res.Counters.Get(engine.CtrReduceSpillBytes))
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	w := workloads.PageFrequency(smallClicks())
	_, withCombiner := run(t, w, enginetest.Config{}, Options{})
	w2 := workloads.PageFrequency(smallClicks())
	w2.Job.Combine, w2.Job.Monoid = nil, nil
	f2 := enginetest.New(t, w2, enginetest.Config{})
	noCombiner, err := Run(f2.RT, f2.Job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := withCombiner.Counters.Get(engine.CtrShuffleBytes)
	snc := noCombiner.Counters.Get(engine.CtrShuffleBytes)
	if sc >= snc/2 {
		t.Fatalf("combiner shuffle %v should be far below %v", sc, snc)
	}
	f2.CheckOutput(t, w2, noCombiner)
}

func TestPhaseCPUAccounting(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{})
	for _, phase := range []string{engine.PhaseParse, engine.PhaseMapFn, engine.PhaseSort, engine.PhaseReduce} {
		if res.CPU.Seconds(phase) <= 0 {
			t.Errorf("phase %s has no CPU", phase)
		}
	}
	if res.Counters.Get(engine.CtrSortComparisons) == 0 {
		t.Error("sort comparisons not counted")
	}
}

func TestTimelineHasAllFourOperations(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	f, res := run(t, w, enginetest.Config{MemPerTask: 8 << 10}, Options{FanIn: 2})
	counts := res.Timeline.CountByPhase()
	for _, span := range []string{engine.SpanMap, engine.SpanShuffle, engine.SpanMerge, engine.SpanReduce} {
		if counts[span] == 0 {
			t.Errorf("timeline missing %s spans: %v", span, counts)
		}
	}
	if counts[engine.SpanMap] != len(f.Blocks) {
		t.Errorf("map spans = %d, blocks = %d", counts[engine.SpanMap], len(f.Blocks))
	}
}

func TestReduceBlockedUntilMapsDone(t *testing.T) {
	// Sort-merge is blocking: first output must come after the last map
	// task finishes.
	w := workloads.Sessionization(smallClicks())
	_, res := run(t, w, enginetest.Config{}, Options{})
	_, mapEnd, ok := res.Timeline.PhaseWindow(engine.SpanMap)
	if !ok {
		t.Fatal("no map spans")
	}
	if res.FirstOutputAt < mapEnd {
		t.Fatalf("first output at %v before maps ended at %v — sort-merge cannot do that", res.FirstOutputAt, mapEnd)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	_, res1 := run(t, w, enginetest.Config{}, Options{})
	w2 := workloads.PerUserCount(smallClicks())
	_, res2 := run(t, w2, enginetest.Config{}, Options{})
	if res1.Makespan != res2.Makespan {
		t.Fatalf("makespans differ: %v vs %v", res1.Makespan, res2.Makespan)
	}
	if res1.OutputPairs != res2.OutputPairs {
		t.Fatalf("output pairs differ")
	}
}

func TestSplitTopologyRuns(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, Cluster: func(c *cluster.Config) { c.SplitStorage = true }})
	res, err := Run(f.RT, f.Job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	// All input must have crossed the network (no data locality).
	if res.NetBytes.Sum() == 0 {
		t.Fatal("split topology moved no network bytes")
	}
}

func TestInvalidJobRejected(t *testing.T) {
	env := sim.New()
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 2
	c := cluster.New(env, ccfg)
	rt := engine.NewRuntime(env, c, dfs.New(c, 1<<20, 1))
	if _, err := Run(rt, engine.Job{}, Options{}); err == nil {
		t.Fatal("empty job must be rejected")
	}
	w := workloads.PerUserCount(smallClicks())
	job := w.Job
	job.InputPath = "missing"
	job.OutputPath = "out"
	job.Reducers = 2
	if _, err := Run(rt, job, Options{}); err == nil {
		t.Fatal("missing input must be rejected")
	}
}

func TestNodeFailureReexecutesLostMaps(t *testing.T) {
	w := workloads.PerUserCount(smallClicks())
	// Enough blocks that node 1 is still mapping when it dies at 20ms.
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 32 * 64 << 10})
	// Fail node 1 shortly into the run: its completed map outputs are lost
	// and must be recomputed when reducers ask for them. (The failure model
	// is TaskTracker death: DFS replicas stay readable.)
	res, err := Run(f.RT, f.Job, Options{Faults: faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.NodeFailure, Node: 1, At: 20 * sim.Millisecond}}}})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get("faults.injected") != 1 {
		t.Fatal("fault not injected")
	}
	if res.Counters.Get(engine.CtrTasksReexecuted) == 0 {
		t.Fatal("no map tasks were re-executed after the failure")
	}
}

func TestNodeFailureBeforeAnyMapsStillCorrect(t *testing.T) {
	// Failing a node at t=0 removes its slots entirely; the remaining nodes
	// absorb all tasks.
	w := workloads.PerUserCount(smallClicks())
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4})
	res, err := Run(f.RT, f.Job, Options{Faults: faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.NodeFailure, Node: 2, At: 0}}}})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrTasksReexecuted) != 0 {
		t.Fatal("nothing should need re-execution when the node dies before completing any map")
	}
}

func TestSpeculativeExecutionOnStraggler(t *testing.T) {
	w := workloads.Sessionization(smallClicks())
	// SSD topology separates scratch from DFS, so slowing node 3's scratch
	// makes only its *computation side* straggle — the case speculation
	// addresses (the data itself stays readable at full speed).
	f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 16 * 64 << 10,
		Cluster: func(c *cluster.Config) { c.SSDIntermediate = true }})
	f.Job.Speculation = true
	f.RT.Cluster.Node(3).ScratchDevice().SetSlowdown(100)
	res, err := Run(f.RT, f.Job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.CheckOutput(t, w, res)
	if res.Counters.Get(engine.CtrMapTasksSpeculative) == 0 {
		t.Fatal("no speculative attempts launched against the straggler")
	}
}

func TestSpeculationReducesStragglerLatency(t *testing.T) {
	run := func(speculate bool) *engine.Result {
		w := workloads.Sessionization(smallClicks())
		f := enginetest.New(t, w, enginetest.Config{Nodes: 4, InputSize: 16 * 64 << 10,
			Cluster: func(c *cluster.Config) { c.SSDIntermediate = true }})
		f.Job.Speculation = speculate
		f.RT.Cluster.Node(3).ScratchDevice().SetSlowdown(100)
		res, err := Run(f.RT, f.Job, Options{})
		if err != nil {
			t.Fatal(err)
		}
		f.CheckOutput(t, w, res)
		return res
	}
	plain := run(false)
	spec := run(true)
	// Makespans round to the sampler tick at this scale; first output is
	// un-rounded and, for sort-merge, gated on the last (straggling) map.
	if spec.FirstOutputAt >= plain.FirstOutputAt {
		t.Fatalf("speculation did not improve first-answer latency: %v vs %v",
			spec.FirstOutputAt, plain.FirstOutputAt)
	}
}

func TestReduceSideCombineDuringSpill(t *testing.T) {
	// The paper (§II.A): "It can be further applied in a reducer when its
	// data buffer fills up." With the segment-count trigger forcing spills
	// of an aggregable workload, the spilled runs must be combined (small)
	// yet the answer exact.
	w := workloads.PerUserCount(smallClicks())
	f, res := run(t, w, enginetest.Config{InputSize: 16 * 64 << 10}, Options{SegmentLimit: 4})
	f.CheckOutput(t, w, res)
	spill := res.Counters.Get(engine.CtrReduceSpillBytes)
	if spill == 0 {
		t.Fatal("segment limit did not force spills")
	}
	// Combined spills must be far below the raw shuffled volume.
	shuffled := res.Counters.Get(engine.CtrShuffleBytes)
	if spill > shuffled {
		t.Fatalf("spill %v exceeds shuffle %v — combiner not applied at spill time", spill, shuffled)
	}
}
