package hadoop

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/engine"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/sortmerge"
	"onepass/internal/trace"
)

// The reduce-side sort-merge machinery is exported because MapReduce Online
// (internal/hop) is a fork of this engine, exactly as the real HOP forked
// Hadoop: same spill/multi-pass-merge/final-scan data path, different
// shuffle in front of it.

// ReduceSide is one reducer's sort-merge state.
type ReduceSide struct {
	rt    *engine.Runtime
	job   *engine.Job
	costs engine.CostModel
	node  *cluster.Node
	r     int

	Merger   *sortmerge.Merger
	Acc      *sortmerge.Accumulator
	spillSeq int
}

// NewReduceSide builds the spill/merge state for reducer r on node.
func NewReduceSide(rt *engine.Runtime, job *engine.Job, costs engine.CostModel,
	node *cluster.Node, r, fanIn int) *ReduceSide {
	return &ReduceSide{
		rt: rt, job: job, costs: costs, node: node, r: r,
		Merger: sortmerge.NewMerger(node.ScratchStore(), fmt.Sprintf("%s/red-%04d", job.Name, r), fanIn),
		Acc:    sortmerge.NewAccumulator(rt.TaskMemory(job)),
	}
}

// Add buffers one sorted segment; when the buffer exceeds its budget it is
// spilled and background multi-pass merges run as needed.
func (rs *ReduceSide) Add(p *sim.Proc, segment []byte) {
	if len(segment) == 0 {
		return
	}
	rs.Acc.Add(segment)
	if rs.Acc.Over() {
		rs.Spill(p)
		for rs.Merger.NeedsPass() {
			rs.MergePass(p)
		}
	}
}

// Spill merges the in-memory segments into one sorted on-disk run. When
// the job has a combiner it is applied to each key group on the way out —
// "it can be further applied in a reducer when its data buffer fills up"
// (§II.A) — which shrinks the run but, as §III.B.4 observes, still writes
// the data to disk to wait for a single sorted run.
func (rs *ReduceSide) Spill(p *sim.Proc) {
	if rs.Acc.Segments() == 0 {
		return
	}
	span := rs.rt.Timeline.Begin(engine.SpanMerge, p.Now())
	var cmps int64
	// The spill can never exceed the buffered bytes (combining only
	// shrinks it), so size the output once instead of growing it.
	out := make([]byte, 0, rs.Acc.Bytes())
	emit := func(k, v []byte) {
		out = kv.AppendPair(out, k, v)
	}
	if rs.job.Combine != nil {
		var g kv.Grouper
		combineInputs := 0
		combine := func(key []byte, vals [][]byte) {
			rs.job.Combine(key, vals, emit)
			combineInputs += len(vals)
		}
		kv.MergeStreams(rs.Acc.Streams(), &cmps, func(k, v []byte) {
			g.Add(k, v, nil, combine)
		})
		g.Flush(combine)
		rs.node.Compute(p, engine.Dur(float64(combineInputs), rs.costs.CombineNsPerRecord), engine.PhaseCombine)
	} else {
		kv.MergeStreams(rs.Acc.Streams(), &cmps, emit)
	}
	rs.node.Compute(p, engine.Dur(float64(cmps), rs.costs.CompareNs)+
		engine.Dur(float64(len(out)), rs.costs.SerializeNsPerByte), engine.PhaseMerge)
	rs.rt.Counters.Add(engine.CtrMergeComparisons, float64(cmps))
	rs.spillSeq++
	run := sortmerge.WriteRun(p, rs.node.ScratchStore(),
		fmt.Sprintf("%s/red-%04d/spill-%04d", rs.job.Name, rs.r, rs.spillSeq), out)
	rs.rt.Counters.Add(engine.CtrReduceSpillBytes, float64(run.Size()))
	if rs.rt.Auditing() {
		rs.rt.Audit.SpillWritten(rs.node.ID, run.Size())
	}
	rs.Merger.AddRun(run)
	span.End(p.Now())
	if rs.rt.Tracing() {
		rs.rt.Emit(trace.Spill, "reduce-spill", rs.node.ID, rs.r, 0,
			trace.Num("bytes", float64(run.Size())), trace.Num("spill", float64(rs.spillSeq)))
	}
}

// MergePass runs one charged multi-pass merge step.
func (rs *ReduceSide) MergePass(p *sim.Proc) {
	span := rs.rt.Timeline.Begin(engine.SpanMerge, p.Now())
	cmpBefore, outBefore := rs.Merger.Comparisons, rs.Merger.BytesOut
	inBefore := rs.Merger.BytesIn
	rs.Merger.MergePass(p)
	dCmp := rs.Merger.Comparisons - cmpBefore
	dBytes := rs.Merger.BytesOut - outBefore
	if rs.rt.Auditing() {
		rs.rt.Audit.SpillRead(rs.node.ID, rs.Merger.BytesIn-inBefore)
		rs.rt.Audit.SpillWritten(rs.node.ID, dBytes)
	}
	rs.node.Compute(p, engine.Dur(float64(dCmp), rs.costs.CompareNs)+
		engine.Dur(float64(2*dBytes), rs.costs.SerializeNsPerByte), engine.PhaseMerge)
	rs.rt.Counters.Add(engine.CtrMergeComparisons, float64(dCmp))
	rs.rt.Counters.Add(engine.CtrReduceSpillBytes, float64(dBytes))
	rs.rt.Counters.Add(engine.CtrMergePasses, 1)
	span.End(p.Now())
	if rs.rt.Tracing() {
		rs.rt.Emit(trace.MergePass, "merge-pass", rs.node.ID, rs.r, 0,
			trace.Num("bytes", float64(dBytes)), trace.Num("runsLeft", float64(rs.Merger.Runs())))
	}
}

// Finish completes the blocking tail: multi-pass merge down to one wave,
// then the final merge feeding the reduce function, emitting into oc.
func (rs *ReduceSide) Finish(p *sim.Proc, oc *engine.OutputCollector) {
	for rs.Merger.Runs() > rs.Merger.FanIn {
		rs.MergePass(p)
	}
	span := rs.rt.Timeline.Begin(engine.SpanReduce, p.Now())
	rs.rt.Emit(trace.PhaseStart, engine.SpanReduce, rs.node.ID, rs.r, 0)
	if rs.rt.Auditing() {
		// The final merge streams every remaining run back off disk exactly
		// once; record it now, before the streams lazily drain.
		rs.rt.Audit.SpillRead(rs.node.ID, rs.Merger.TotalRunBytes())
	}
	streams := rs.Merger.FinalStreams(p)
	streams = append(streams, rs.Acc.Streams()...)
	cmps, inputs := MergeGroupReduce(streams, rs.job, func(k, v []byte) {
		oc.Emit(p, rs.r, rs.node.ID, k, v)
	})
	rs.node.Compute(p, engine.Dur(float64(cmps), rs.costs.CompareNs), engine.PhaseMerge)
	rs.node.Compute(p, engine.Dur(float64(inputs), rs.costs.ReduceNsPerRecord), engine.PhaseReduce)
	rs.node.Compute(p, engine.Dur(float64(inputs), rs.costs.FrameworkNsPerRecord), engine.PhaseFramework)
	rs.rt.Counters.Add(engine.CtrMergeComparisons, float64(cmps))
	rs.Merger.DeleteAll()
	oc.Close(p, rs.r)
	span.End(p.Now())
	rs.rt.Emit(trace.PhaseEnd, engine.SpanReduce, rs.node.ID, rs.r, 0)
}

// MergeGroupReduce merges sorted streams, groups equal keys, and applies
// the job's reduce function, returning comparison and input-value counts.
func MergeGroupReduce(streams []kv.PairStream, job *engine.Job, emit engine.Emit) (cmps int64, inputs int) {
	var g kv.Grouper
	reduce := func(key []byte, vals [][]byte) {
		job.Reduce(key, vals, emit)
		inputs += len(vals)
	}
	kv.MergeStreams(streams, &cmps, func(k, v []byte) {
		g.Add(k, v, nil, reduce)
	})
	g.Flush(reduce)
	return cmps, inputs
}

// JobCosts fills the cost fields the reduce side needs with defaults.
func JobCosts(job *engine.Job) engine.CostModel {
	c := job.Costs
	d := engine.DefaultCosts()
	if c.CompareNs == 0 {
		c.CompareNs = d.CompareNs
	}
	if c.SerializeNsPerByte == 0 {
		c.SerializeNsPerByte = d.SerializeNsPerByte
	}
	if c.CombineNsPerRecord == 0 {
		c.CombineNsPerRecord = d.CombineNsPerRecord
	}
	if c.ReduceNsPerRecord == 0 {
		c.ReduceNsPerRecord = d.ReduceNsPerRecord
	}
	if c.FrameworkNsPerRecord == 0 {
		c.FrameworkNsPerRecord = d.FrameworkNsPerRecord
	}
	return c
}
