package hadoop

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/engine"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/sortmerge"
	"onepass/internal/trace"
)

// The reduce-side sort-merge machinery is exported because MapReduce Online
// (internal/hop) is a fork of this engine, exactly as the real HOP forked
// Hadoop: same spill/multi-pass-merge/final-scan data path, different
// shuffle in front of it.

// ReduceSide is one reducer's sort-merge state.
type ReduceSide struct {
	rt    *engine.Runtime
	job   *engine.Job
	costs engine.CostModel
	node  *cluster.Node
	r     int

	Merger   *sortmerge.Merger
	Acc      *sortmerge.Accumulator
	spillSeq int

	// combine is this reduce side's effective combiner (explicit or
	// monoid-derived), resolved once on the per-task job clone so derived
	// scratch is owned by exactly this task.
	combine engine.CombineFunc
}

// NewReduceSide builds the spill/merge state for reducer r on node. The
// reduce side keeps its own TaskJob view of the user functions: its spill
// combines and reduce scans run inside pooled closures, concurrent with
// other tasks'.
func NewReduceSide(rt *engine.Runtime, job *engine.Job, costs engine.CostModel,
	node *cluster.Node, r, fanIn int) *ReduceSide {
	rs := &ReduceSide{
		rt: rt, job: rt.TaskJob(job), costs: costs, node: node, r: r,
		Merger: sortmerge.NewMerger(node.ScratchStore(), fmt.Sprintf("%s/red-%04d", job.Name, r), fanIn),
		Acc:    sortmerge.NewAccumulator(rt.TaskMemory(job)),
	}
	rs.combine = rs.job.EffectiveCombine()
	// A merge pass rewrites its inputs verbatim, so its serialization cost
	// is known before the merge runs; charging it through the hook overlaps
	// the pooled merge work (MergePass below then charges only comparisons).
	rs.Merger.Charge = func(p *sim.Proc, inBytes int64) {
		node.Compute(p, engine.Dur(float64(2*inBytes), costs.SerializeNsPerByte), engine.PhaseMerge)
	}
	return rs
}

// Job returns the reduce side's (possibly per-task) view of the job.
func (rs *ReduceSide) Job() *engine.Job { return rs.job }

// Add buffers one sorted segment; when the buffer exceeds its budget it is
// spilled and background multi-pass merges run as needed.
func (rs *ReduceSide) Add(p *sim.Proc, segment []byte) {
	if len(segment) == 0 {
		return
	}
	rs.Acc.Add(segment)
	if rs.Acc.Over() {
		rs.Spill(p)
		for rs.Merger.NeedsPass() {
			rs.MergePass(p)
		}
	}
}

// Spill merges the in-memory segments into one sorted on-disk run. When
// the job has a combiner it is applied to each key group on the way out —
// "it can be further applied in a reducer when its data buffer fills up"
// (§II.A) — which shrinks the run but, as §III.B.4 observes, still writes
// the data to disk to wait for a single sorted run.
func (rs *ReduceSide) Spill(p *sim.Proc) {
	if rs.Acc.Segments() == 0 {
		return
	}
	span := rs.rt.Timeline.Begin(engine.SpanMerge, p.Now())
	rs.rt.Emit(trace.PhaseStart, engine.SpanMerge, rs.node.ID, rs.r, 0)
	bufBytes := rs.Acc.Bytes()
	segs := rs.Acc.TakeSegments()
	var out []byte
	var cmps int64
	combineInputs := 0
	work := rs.rt.StartJobWork(p, rs.job, func() {
		streams := make([]kv.PairStream, len(segs))
		for i, s := range segs {
			streams[i] = kv.NewSliceStream(s)
		}
		// The spill can never exceed the buffered bytes (combining only
		// shrinks it), so size the output once instead of growing it.
		out = make([]byte, 0, bufBytes)
		emit := func(k, v []byte) {
			out = kv.AppendPair(out, k, v)
		}
		if rs.combine != nil {
			var g kv.Grouper
			combine := func(key []byte, vals [][]byte) {
				rs.combine(key, vals, emit)
				combineInputs += len(vals)
			}
			kv.MergeStreams(streams, &cmps, func(k, v []byte) {
				g.Add(k, v, nil, combine)
			})
			g.Flush(combine)
		} else {
			kv.MergeStreams(streams, &cmps, emit)
		}
	})
	if rs.combine == nil {
		// Without a combiner the spill rewrites its input verbatim, so the
		// serialization charge is known up front and overlaps the merge.
		rs.node.Compute(p, engine.Dur(float64(bufBytes), rs.costs.SerializeNsPerByte), engine.PhaseMerge)
	}
	work.Wait()
	if rs.combine != nil {
		rs.node.Compute(p, engine.Dur(float64(combineInputs), rs.costs.CombineNsPerRecord), engine.PhaseCombine)
		rs.node.Compute(p, engine.Dur(float64(cmps), rs.costs.CompareNs)+
			engine.Dur(float64(len(out)), rs.costs.SerializeNsPerByte), engine.PhaseMerge)
	} else {
		rs.node.Compute(p, engine.Dur(float64(cmps), rs.costs.CompareNs), engine.PhaseMerge)
	}
	rs.rt.Counters.Add(engine.CtrMergeComparisons, float64(cmps))
	rs.spillSeq++
	run := sortmerge.WriteRun(p, rs.node.ScratchStore(),
		fmt.Sprintf("%s/red-%04d/spill-%04d", rs.job.Name, rs.r, rs.spillSeq), out)
	rs.rt.Counters.Add(engine.CtrReduceSpillBytes, float64(run.Size()))
	if rs.rt.Auditing() {
		rs.rt.Audit.SpillWritten(rs.node.ID, run.Size())
	}
	rs.Merger.AddRun(run)
	span.End(p.Now())
	rs.rt.Emit(trace.PhaseEnd, engine.SpanMerge, rs.node.ID, rs.r, 0)
	if rs.rt.Tracing() {
		rs.rt.Emit(trace.Spill, "reduce-spill", rs.node.ID, rs.r, 0,
			trace.Num("bytes", float64(run.Size())), trace.Num("spill", float64(rs.spillSeq)))
	}
}

// MergePass runs one charged multi-pass merge step.
func (rs *ReduceSide) MergePass(p *sim.Proc) {
	span := rs.rt.Timeline.Begin(engine.SpanMerge, p.Now())
	rs.rt.Emit(trace.PhaseStart, engine.SpanMerge, rs.node.ID, rs.r, 0)
	cmpBefore, outBefore := rs.Merger.Comparisons, rs.Merger.BytesOut
	inBefore := rs.Merger.BytesIn
	rs.Merger.MergePass(p)
	dCmp := rs.Merger.Comparisons - cmpBefore
	dBytes := rs.Merger.BytesOut - outBefore
	if rs.rt.Auditing() {
		rs.rt.Audit.SpillRead(rs.node.ID, rs.Merger.BytesIn-inBefore)
		rs.rt.Audit.SpillWritten(rs.node.ID, dBytes)
	}
	// Serialization was charged through Merger.Charge, overlapping the
	// merge; only the comparison cost depends on the merge's outcome.
	rs.node.Compute(p, engine.Dur(float64(dCmp), rs.costs.CompareNs), engine.PhaseMerge)
	rs.rt.Counters.Add(engine.CtrMergeComparisons, float64(dCmp))
	rs.rt.Counters.Add(engine.CtrReduceSpillBytes, float64(dBytes))
	rs.rt.Counters.Add(engine.CtrMergePasses, 1)
	span.End(p.Now())
	rs.rt.Emit(trace.PhaseEnd, engine.SpanMerge, rs.node.ID, rs.r, 0)
	if rs.rt.Tracing() {
		rs.rt.Emit(trace.MergePass, "merge-pass", rs.node.ID, rs.r, 0,
			trace.Num("bytes", float64(dBytes)), trace.Num("runsLeft", float64(rs.Merger.Runs())))
	}
}

// Finish completes the blocking tail: multi-pass merge down to one wave,
// then the final merge feeding the reduce function, emitting into oc.
func (rs *ReduceSide) Finish(p *sim.Proc, oc *engine.OutputCollector) {
	for rs.Merger.Runs() > rs.Merger.FanIn {
		rs.MergePass(p)
	}
	span := rs.rt.Timeline.Begin(engine.SpanReduce, p.Now())
	rs.rt.Emit(trace.PhaseStart, engine.SpanReduce, rs.node.ID, rs.r, 0)
	if rs.rt.Auditing() {
		// The final merge reads every remaining run back off disk exactly
		// once; record it before the reads below.
		rs.rt.Audit.SpillRead(rs.node.ID, rs.Merger.TotalRunBytes())
	}
	// Read the remaining runs up front so the final merge + reduce scan is
	// pure in-memory work a pooled closure can own; the output pairs stage
	// into a flat buffer and replay through the collector after the join.
	datas := rs.Merger.ReadRuns(p)
	segs := rs.Acc.TakeSegments()
	// The reduce and framework charges depend only on the total input pair
	// count, which a cheap pre-scan provides — charging them between
	// dispatch and join overlaps the real merge and reduce work.
	inputs := 0
	for _, d := range datas {
		inputs += kv.CountPairs(d)
	}
	for _, s := range segs {
		inputs += kv.CountPairs(s)
	}
	var staged []byte
	var cmps int64
	work := rs.rt.StartJobWork(p, rs.job, func() {
		streams := make([]kv.PairStream, 0, len(datas)+len(segs))
		for _, d := range datas {
			streams = append(streams, kv.NewSliceStream(d))
		}
		for _, s := range segs {
			streams = append(streams, kv.NewSliceStream(s))
		}
		cmps, _ = MergeGroupReduce(streams, rs.job, func(k, v []byte) {
			staged = kv.AppendPair(staged, k, v)
		})
	})
	rs.node.Compute(p, engine.Dur(float64(inputs), rs.costs.ReduceNsPerRecord), engine.PhaseReduce)
	rs.node.Compute(p, engine.Dur(float64(inputs), rs.costs.FrameworkNsPerRecord), engine.PhaseFramework)
	work.Wait()
	rs.node.Compute(p, engine.Dur(float64(cmps), rs.costs.CompareNs), engine.PhaseMerge)
	rs.rt.Counters.Add(engine.CtrMergeComparisons, float64(cmps))
	for off := 0; off < len(staged); {
		k, v, n := kv.DecodePair(staged[off:])
		if n == 0 {
			break
		}
		oc.Emit(p, rs.r, rs.node.ID, k, v)
		off += n
	}
	rs.Merger.DeleteAll()
	oc.Close(p, rs.r)
	span.End(p.Now())
	rs.rt.Emit(trace.PhaseEnd, engine.SpanReduce, rs.node.ID, rs.r, 0)
}

// MergeGroupReduce merges sorted streams, groups equal keys, and applies
// the job's reduce function, returning comparison and input-value counts.
func MergeGroupReduce(streams []kv.PairStream, job *engine.Job, emit engine.Emit) (cmps int64, inputs int) {
	var g kv.Grouper
	reduce := func(key []byte, vals [][]byte) {
		job.Reduce(key, vals, emit)
		inputs += len(vals)
	}
	kv.MergeStreams(streams, &cmps, func(k, v []byte) {
		g.Add(k, v, nil, reduce)
	})
	g.Flush(reduce)
	return cmps, inputs
}

// JobCosts fills the cost fields the reduce side needs with defaults.
func JobCosts(job *engine.Job) engine.CostModel {
	c := job.Costs
	d := engine.DefaultCosts()
	if c.CompareNs == 0 {
		c.CompareNs = d.CompareNs
	}
	if c.SerializeNsPerByte == 0 {
		c.SerializeNsPerByte = d.SerializeNsPerByte
	}
	if c.CombineNsPerRecord == 0 {
		c.CombineNsPerRecord = d.CombineNsPerRecord
	}
	if c.ReduceNsPerRecord == 0 {
		c.ReduceNsPerRecord = d.ReduceNsPerRecord
	}
	if c.FrameworkNsPerRecord == 0 {
		c.FrameworkNsPerRecord = d.FrameworkNsPerRecord
	}
	return c
}
