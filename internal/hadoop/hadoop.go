// Package hadoop is the stock-Hadoop baseline engine: the sort-merge
// implementation of MapReduce group-by exactly as the paper's §II.A
// describes it. Map tasks sort their output buffer on (partition, key),
// optionally combine, and synchronously persist one file per reducer.
// Reducers pull completed map outputs, buffer them in memory, spill merged
// runs when the buffer fills, multi-pass merge whenever the on-disk run
// count reaches the fan-in F, and finally merge everything into one sorted
// scan feeding the reduce function. The blocking merge valley of Fig. 2 and
// the sort CPU of Table II are emergent properties of this code.
package hadoop

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/faults"
	"onepass/internal/hashlib"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/sortmerge"
	"onepass/internal/trace"
)

// PartitionSeed fixes the hash partitioner across all engines so a key maps
// to the same reducer everywhere.
const PartitionSeed = 42

// Partitioner returns the shared cross-engine partitioner.
func Partitioner() engine.Partitioner {
	h := hashlib.Shared(PartitionSeed, 0)
	return func(key []byte, n int) int { return h.Bucket(key, n) }
}

// Options tunes the engine.
type Options struct {
	// FanIn is the multi-pass merge factor F (Hadoop's io.sort.factor).
	FanIn int
	// SegmentLimit caps buffered in-memory shuffle segments per reducer
	// before a forced spill (mapreduce.reduce.merge.inmem.threshold;
	// Hadoop default 1000). Zero disables the trigger.
	SegmentLimit int
	// Faults is the deterministic fault schedule to inject during the run.
	Faults faults.Schedule
}

// Run executes job on rt with the sort-merge engine.
func Run(rt *engine.Runtime, job engine.Job, opts Options) (*engine.Result, error) {
	var res *engine.Result
	if err := Start(rt, job, opts, func(_ *sim.Proc, r *engine.Result) { res = r }); err != nil {
		return nil, err
	}
	rt.Env.Run()
	rt.FinishResult(res)
	return res, nil
}

// Start launches job on rt without driving the simulation: it spawns the
// map/reduce slot processes and the job controller, then returns. The
// controller invokes done at the virtual instant the job completes (after
// JobDone and StopSampling); the caller owns running rt.Env and calling
// rt.FinishResult on the Result done receives. Run wraps Start for the
// one-job-per-simulation case; internal/service uses Start to multiplex
// concurrent jobs over one shared environment.
func Start(rt *engine.Runtime, job engine.Job, opts Options, done func(p *sim.Proc, res *engine.Result)) error {
	if err := job.Validate(); err != nil {
		return err
	}
	if job.Reduce == nil {
		return fmt.Errorf("hadoop: job %q has no reduce function", job.Name)
	}
	blocks, err := rt.InputBlocks(job.InputPath)
	if err != nil {
		return err
	}
	if len(blocks) == 0 {
		return fmt.Errorf("%s: input %q has no blocks (was a chained stage's output discarded?)", "hadoop", job.InputPath)
	}
	fanIn := opts.FanIn
	if fanIn == 0 {
		fanIn = sortmerge.DefaultFanIn
	}
	costs := JobCosts(&job)
	rt.EngineLabel = "hadoop"
	res := &engine.Result{Job: job.Name, Engine: "hadoop"}
	oc := rt.NewOutputCollector(&job, res)
	reg := rt.NewRegistry(len(blocks))
	partition := Partitioner()
	// Fault tolerance: a lost map output is recomputed from its DFS block
	// (replicas permitting) on the node that asked for it.
	blockByTask := make(map[int]*dfs.Block, len(blocks))
	for _, b := range blocks {
		blockByTask[b.Index] = b
	}
	reg.Reexec = func(p *sim.Proc, readerNode int, lost *engine.MapOutput) *engine.MapOutput {
		node := rt.Cluster.Node(readerNode)
		if node.Failed() {
			node = surviving(rt)
		}
		// The recovery attempt is a real map task: span it like one (attempt
		// 1) so the profiler's critical path sees the re-executed work
		// instead of an unexplained hole inside the requesting reducer.
		span := rt.Timeline.Begin(engine.SpanMap, p.Now())
		rt.Emit(trace.TaskStart, engine.SpanMap, node.ID, lost.TaskID, 1)
		out := executeMapAttempt(rt, p, node, &job, costs, blockByTask[lost.TaskID], partition)
		span.End(p.Now())
		rt.Emit(trace.TaskFinish, engine.SpanMap, node.ID, lost.TaskID, 1)
		return out
	}
	rt.InstallFaults(opts.Faults, reg.FailNode)

	rt.StartSampling()
	mapsWG := rt.RunMaps(&job, blocks, func(p *sim.Proc, node *cluster.Node, b *dfs.Block) {
		RunMapTask(rt, p, node, &job, costs, b, partition, reg)
	})
	redsWG := rt.RunReduces(&job, func(p *sim.Proc, node *cluster.Node, r int) {
		runReduceTask(rt, p, node, &job, costs, reg, oc, r, fanIn, opts.SegmentLimit)
	})
	rt.Env.Go("job-controller", func(p *sim.Proc) {
		mapsWG.Wait(p)
		redsWG.Wait(p)
		rt.JobDone()
		rt.StopSampling()
		done(p, res)
	})
	return nil
}

// surviving returns the first compute node that has not failed; recovery
// re-executes lost map tasks there when the requesting node is itself dead.
func surviving(rt *engine.Runtime) *cluster.Node {
	for _, n := range rt.Cluster.ComputeNodes() {
		if !n.Failed() {
			return n
		}
	}
	panic("hadoop: no surviving compute node for re-execution")
}

// RunMapTask is the stock map-side path: map, buffer-sort on (partition,
// key), optional combine, synchronous map-output write, registration for
// pull shuffle. Exported for reuse as other engines' map side where noted.
func RunMapTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner, reg *engine.Registry) {
	out := executeMapAttempt(rt, p, node, job, costs, b, partition)
	reg.Complete(out)
}

// executeMapAttempt runs the map-side data path without committing, so the
// same code serves first attempts, speculative backups, and post-failure
// re-execution.
func executeMapAttempt(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, b *dfs.Block, partition engine.Partitioner) *engine.MapOutput {
	// tj is this attempt's own view of the user functions (see TaskJob):
	// the sort and combine below run inside the pooled map closure, where
	// scratch shared with a concurrent attempt would race.
	tj := rt.TaskJob(job)
	// Sort the map output buffer on (partition, key) — the CPU cost of
	// Table II's "Sorting" row, measured from real comparisons — and apply
	// the combiner, all inside the map-task closure; the charges land after
	// the join, in the same order as before.
	var cmps int64
	var rawBytes int64
	var combined *kv.Buffer
	combineInputs := 0
	buf, err := rt.ExecuteMapWith(p, node, tj, b, partition, func(buf *kv.Buffer) {
		buf.SortByPartitionKey(&cmps)
		rawBytes = buf.Bytes()
		combined, combineInputs = engine.CombineSorted(tj, buf)
	})
	if err != nil {
		panic(fmt.Sprintf("hadoop: %v", err))
	}
	node.Compute(p, engine.Dur(float64(cmps), costs.CompareNs), engine.PhaseSort)
	rt.Counters.Add(engine.CtrSortComparisons, float64(cmps))

	if job.HasCombiner() {
		node.Compute(p, engine.Dur(float64(combineInputs), costs.CombineNsPerRecord), engine.PhaseCombine)
		buf = combined
		if rt.Auditing() {
			rt.Audit.CombineSaved(b.Index, rawBytes-buf.Bytes())
		}
	}
	out := rt.WriteMapOutput(p, node, job, b.Index, buf)
	if rt.Auditing() {
		rt.Audit.MapFinalPairs(b.Index, buf.Bytes())
		// Pull shuffle moves whole partitions: record each as one unit so
		// FetchPart deliveries must balance against it.
		for r, n := range out.PartLen {
			rt.Audit.ShuffleProduced(node.ID, b.Index, r, -1, n)
		}
	}
	return out
}

func runReduceTask(rt *engine.Runtime, p *sim.Proc, node *cluster.Node, job *engine.Job,
	costs engine.CostModel, reg *engine.Registry, oc *engine.OutputCollector, r, fanIn, segLimit int) {

	rs := NewReduceSide(rt, job, costs, node, r, fanIn)
	rs.Acc.SegmentLimit = segLimit

	// Shuffle: pull partitions from completed mappers as they appear.
	shuffleSpan := rt.Timeline.Begin(engine.SpanShuffle, p.Now())
	rt.Emit(trace.PhaseStart, engine.SpanShuffle, node.ID, r, 0)
	seen := 0
	for {
		reg.WaitBeyond(p, seen)
		for ; seen < reg.Completed(); seen++ {
			out := reg.Out(seen)
			data := reg.FetchPart(p, node.ID, out, r)
			if rt.Auditing() {
				rt.Audit.ShuffleIngested(node.ID, out.TaskID, r, -1, int64(len(data)))
			}
			if len(data) > 0 {
				// Spills alias the fetched bytes; copy before the source
				// file is released.
				data = append([]byte(nil), data...)
			}
			out.ConsumePart(r)
			rs.Add(p, data)
		}
		if reg.AllDone() {
			break
		}
	}
	shuffleSpan.End(p.Now())
	rt.Emit(trace.PhaseEnd, engine.SpanShuffle, node.ID, r, 0)

	rs.Finish(p, oc)
}
