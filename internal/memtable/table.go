package memtable

import (
	"onepass/internal/hashlib"
)

// Table is an open-addressing (linear probing) hash table from byte-string
// keys to a caller-defined uint64 value — a counter, a packed pair, or an
// id into a ListStore. Keys are copied into the arena once on first insert.
// Deletion uses tombstones so the hot-key engine can evict cold keys.
type Table struct {
	h     *hashlib.Func
	arena *Arena

	entries []entry
	live    int
	tombs   int
}

type entryState uint8

const (
	empty entryState = iota
	occupied
	tombstone
)

type entry struct {
	hash  uint64
	key   []byte
	val   uint64
	state entryState
}

const entryOverhead = 8 + 24 + 8 + 1 // approximate per-slot bytes for accounting

// NewTable returns a table using hash function h and key storage in arena.
func NewTable(h *hashlib.Func, arena *Arena, initialCap int) *Table {
	capacity := 16
	for capacity < initialCap {
		capacity *= 2
	}
	return &Table{h: h, arena: arena, entries: make([]entry, capacity)}
}

// Len returns the number of live keys.
func (t *Table) Len() int { return t.live }

// UsedBytes approximates the table's memory footprint: slot array plus key
// bytes in the arena. Engines compare this against the task memory budget.
func (t *Table) UsedBytes() int64 {
	return int64(len(t.entries))*entryOverhead + t.arena.Used()
}

func (t *Table) probe(hash uint64, key []byte) (idx int, found bool) {
	mask := uint64(len(t.entries) - 1)
	i := hash & mask
	firstTomb := -1
	for {
		e := &t.entries[i]
		switch e.state {
		case empty:
			if firstTomb >= 0 {
				return firstTomb, false
			}
			return int(i), false
		case tombstone:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case occupied:
			if e.hash == hash && bytesEqual(e.key, key) {
				return int(i), true
			}
		}
		i = (i + 1) & mask
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns the value for key.
func (t *Table) Get(key []byte) (uint64, bool) {
	idx, found := t.probe(t.h.Hash(key), key)
	if !found {
		return 0, false
	}
	return t.entries[idx].val, true
}

// Put inserts or overwrites key with val.
func (t *Table) Put(key []byte, val uint64) {
	t.Upsert(key, func(old uint64, exists bool) uint64 { return val })
}

// Upsert applies f to the current value (or to 0 with exists=false) and
// stores the result. It returns true if the key was newly inserted.
func (t *Table) Upsert(key []byte, f func(old uint64, exists bool) uint64) bool {
	t.maybeGrow()
	hash := t.h.Hash(key)
	idx, found := t.probe(hash, key)
	e := &t.entries[idx]
	if found {
		e.val = f(e.val, true)
		return false
	}
	if e.state == tombstone {
		t.tombs--
	}
	*e = entry{hash: hash, key: t.arena.Copy(key), val: f(0, false), state: occupied}
	t.live++
	return true
}

// Add adds delta to key's value (starting from 0) and returns the new value.
func (t *Table) Add(key []byte, delta uint64) uint64 {
	var out uint64
	t.Upsert(key, func(old uint64, _ bool) uint64 {
		out = old + delta
		return out
	})
	return out
}

// Delete removes key, leaving a tombstone. It reports whether the key was
// present. The key's arena bytes are not reclaimed until the arena resets —
// the same trade the paper's byte-array design makes.
func (t *Table) Delete(key []byte) bool {
	idx, found := t.probe(t.h.Hash(key), key)
	if !found {
		return false
	}
	t.entries[idx].state = tombstone
	t.entries[idx].key = nil
	t.live--
	t.tombs++
	return true
}

// Iterate visits live entries in slot order until f returns false. The key
// slice aliases arena memory and must not be retained across a Reset.
func (t *Table) Iterate(f func(key []byte, val uint64) bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.state == occupied {
			if !f(e.key, e.val) {
				return
			}
		}
	}
}

// SetValue overwrites the value of an existing key; it reports whether the
// key was present.
func (t *Table) SetValue(key []byte, val uint64) bool {
	idx, found := t.probe(t.h.Hash(key), key)
	if !found {
		return false
	}
	t.entries[idx].val = val
	return true
}

// Reset empties the table in place: the slot array is cleared and kept, and
// the arena's slabs are recycled, so a reused table refills without
// reallocating. Keys previously returned by Iterate must not be retained.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.live, t.tombs = 0, 0
	t.arena.Reset()
}

func (t *Table) maybeGrow() {
	if (t.live+t.tombs)*10 < len(t.entries)*7 {
		return
	}
	old := t.entries
	t.entries = make([]entry, len(old)*2)
	t.live, t.tombs = 0, 0
	for i := range old {
		e := &old[i]
		if e.state != occupied {
			continue
		}
		idx, _ := t.probe(e.hash, e.key)
		t.entries[idx] = *e
		t.live++
	}
}
