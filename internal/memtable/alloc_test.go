package memtable

import (
	"fmt"
	"testing"

	"onepass/internal/hashlib"
)

// Allocation budgets for the per-record table paths. Insert exercises the
// Reset-recycling contract: once slots and arena slabs exist, a fill/reset
// cycle must allocate nothing.

func allocKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user-%07d", i))
	}
	return keys
}

func TestAllocBudgetInsertResetCycle(t *testing.T) {
	keys := allocKeys(128)
	tb := NewTable(hashlib.NewFamily(1).New(), NewArena(0), 256)
	fill := func() {
		for _, k := range keys {
			tb.Add(k, 1)
		}
	}
	fill() // warm-up allocates the slab and settles the slot array
	tb.Reset()
	avg := testing.AllocsPerRun(100, func() {
		fill()
		tb.Reset()
	})
	if avg != 0 {
		t.Fatalf("insert+reset cycle allocates %.1f/op, budget 0", avg)
	}
}

func TestAllocBudgetUpdateAndGet(t *testing.T) {
	keys := allocKeys(128)
	tb := NewTable(hashlib.NewFamily(1).New(), NewArena(0), 256)
	for _, k := range keys {
		tb.Add(k, 1)
	}
	avg := testing.AllocsPerRun(1000, func() {
		for _, k := range keys {
			tb.Add(k, 1)
			if _, ok := tb.Get(k); !ok {
				t.Fatal("key lost")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("update+get allocates %.1f/op, budget 0", avg)
	}
}
