package memtable

import (
	"fmt"
	"testing"

	"onepass/internal/hashlib"
)

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user-%07d", i))
	}
	return keys
}

func BenchmarkTableAdd(b *testing.B) {
	keys := benchKeys(1 << 14)
	tb := NewTable(hashlib.NewFamily(1).New(), NewArena(0), 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Add(keys[i&(1<<14-1)], 1)
	}
}

func BenchmarkTableGet(b *testing.B) {
	keys := benchKeys(1 << 14)
	tb := NewTable(hashlib.NewFamily(1).New(), NewArena(0), 1<<14)
	for _, k := range keys {
		tb.Put(k, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(keys[i&(1<<14-1)])
	}
}

func BenchmarkListStoreAppend(b *testing.B) {
	s := NewListStore(NewArena(0))
	ids := make([]ListID, 1024)
	for i := range ids {
		ids[i] = s.NewList()
	}
	rec := []byte("869769600 /en/page/1234")
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(ids[i&1023], rec)
	}
}

func BenchmarkArenaCopy(b *testing.B) {
	a := NewArena(0)
	payload := make([]byte, 48)
	b.SetBytes(48)
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 {
			a.Reset() // bound memory across the run
		}
		_ = a.Copy(payload)
	}
}
