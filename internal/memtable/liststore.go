package memtable

import "encoding/binary"

// ListStore holds per-key growable record lists in arena-backed chunks:
// the reduce-side state for holistic functions (sessionization click lists,
// inverted-index postings). Records are length-prefixed inside chunks;
// chunks double from 64 bytes up to 16 KB as a list grows.
type ListStore struct {
	arena  *Arena
	chunks []chunk
	lists  []listMeta
}

type chunk struct {
	buf  []byte
	used int
	next int32
}

type listMeta struct {
	head, tail int32
	bytes      int64
	count      int
}

const (
	minChunk = 64
	maxChunk = 16 << 10
)

// ListID names one list within a store.
type ListID int32

// NewListStore returns an empty store over arena.
func NewListStore(arena *Arena) *ListStore {
	return &ListStore{arena: arena}
}

// NewList creates an empty list.
func (s *ListStore) NewList() ListID {
	s.lists = append(s.lists, listMeta{head: -1, tail: -1})
	return ListID(len(s.lists) - 1)
}

// Lists returns the number of lists created.
func (s *ListStore) Lists() int { return len(s.lists) }

func (s *ListStore) newChunk(size int) int32 {
	s.chunks = append(s.chunks, chunk{buf: s.arena.Alloc(size), next: -1})
	return int32(len(s.chunks) - 1)
}

// Append adds one record to the end of the list.
func (s *ListStore) Append(id ListID, rec []byte) {
	m := &s.lists[id]
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	need := n + len(rec)

	if m.tail < 0 || len(s.chunks[m.tail].buf)-s.chunks[m.tail].used < need {
		size := minChunk
		if m.tail >= 0 {
			size = len(s.chunks[m.tail].buf) * 2
			if size > maxChunk {
				size = maxChunk
			}
		}
		if size < need {
			size = need
		}
		c := s.newChunk(size)
		if m.tail < 0 {
			m.head = c
		} else {
			s.chunks[m.tail].next = c
		}
		m.tail = c
	}
	c := &s.chunks[m.tail]
	copy(c.buf[c.used:], hdr[:n])
	copy(c.buf[c.used+n:], rec)
	c.used += need
	m.bytes += int64(len(rec))
	m.count++
}

// Iterate visits the list's records in append order until f returns false.
// Record slices alias arena memory.
func (s *ListStore) Iterate(id ListID, f func(rec []byte) bool) {
	m := &s.lists[id]
	for ci := m.head; ci >= 0; ci = s.chunks[ci].next {
		c := &s.chunks[ci]
		off := 0
		for off < c.used {
			l, n := binary.Uvarint(c.buf[off:c.used])
			off += n
			if !f(c.buf[off : off+int(l)]) {
				return
			}
			off += int(l)
		}
	}
}

// Records returns a copy of all records in the list.
func (s *ListStore) Records(id ListID) [][]byte {
	var out [][]byte
	s.Iterate(id, func(rec []byte) bool {
		out = append(out, append([]byte(nil), rec...))
		return true
	})
	return out
}

// ListBytes returns the payload bytes stored in the list.
func (s *ListStore) ListBytes(id ListID) int64 { return s.lists[id].bytes }

// ListLen returns the number of records in the list.
func (s *ListStore) ListLen(id ListID) int { return s.lists[id].count }

// UsedBytes returns the arena bytes consumed by this store's chunks. (The
// arena may be shared; this counts only list chunks.)
func (s *ListStore) UsedBytes() int64 {
	var t int64
	for i := range s.chunks {
		t += int64(len(s.chunks[i].buf))
	}
	return t
}
