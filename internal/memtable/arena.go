// Package memtable is the paper's byte-array memory-management library
// (§V): an arena allocator, an open-addressing hash table whose keys live in
// arena slabs, and a chunked list store for per-key growable state. The
// point in the paper was to avoid per-object JVM overhead; here it gives the
// same flat-memory layout plus the exact byte accounting the hash engines
// need to decide when a reducer's in-memory state exceeds its budget and
// something must spill.
package memtable

// Arena is a slab allocator. Allocations are never freed individually;
// Reset recycles all slabs at once (the lifetime pattern of a task's
// in-memory state).
type Arena struct {
	slabSize int
	slabs    [][]byte
	cur      []byte
	used     int64
	// free holds standard-size slabs recycled by Reset, already zeroed so
	// Alloc's zeroed-slice contract holds without touching them again.
	free [][]byte
}

// DefaultSlabSize is 256 KB: big enough to amortize slab overhead, small
// enough that a nearly-empty arena doesn't distort memory accounting.
const DefaultSlabSize = 256 << 10

// NewArena returns an arena with the given slab size (DefaultSlabSize if
// slabSize <= 0).
func NewArena(slabSize int) *Arena {
	if slabSize <= 0 {
		slabSize = DefaultSlabSize
	}
	return &Arena{slabSize: slabSize}
}

// Alloc returns a zeroed n-byte slice inside the arena.
func (a *Arena) Alloc(n int) []byte {
	if n <= 0 {
		return nil
	}
	a.used += int64(n)
	if n > a.slabSize {
		// Oversized allocation gets a dedicated slab.
		slab := make([]byte, n)
		a.slabs = append(a.slabs, slab)
		return slab
	}
	if len(a.cur) < n {
		if k := len(a.free); k > 0 {
			a.cur = a.free[k-1]
			a.free[k-1] = nil
			a.free = a.free[:k-1]
		} else {
			a.cur = make([]byte, a.slabSize)
		}
		a.slabs = append(a.slabs, a.cur)
	}
	out := a.cur[:n:n]
	a.cur = a.cur[n:]
	return out
}

// Copy allocates and fills a copy of b.
func (a *Arena) Copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := a.Alloc(len(b))
	copy(out, b)
	return out
}

// Used returns total bytes handed out since the last Reset.
func (a *Arena) Used() int64 { return a.used }

// Footprint returns total bytes reserved from the host (slab capacity).
func (a *Arena) Footprint() int64 {
	var t int64
	for _, s := range a.slabs {
		t += int64(len(s))
	}
	return t
}

// Reset discards all allocations. Previously returned slices must no longer
// be used. Standard-size slabs are zeroed and kept for reuse; oversized
// dedicated slabs are released to the garbage collector.
func (a *Arena) Reset() {
	for i, s := range a.slabs {
		if len(s) == a.slabSize {
			for j := range s {
				s[j] = 0
			}
			a.free = append(a.free, s)
		}
		a.slabs[i] = nil
	}
	a.slabs = a.slabs[:0]
	a.cur = nil
	a.used = 0
}
