package memtable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"onepass/internal/hashlib"
)

func newTable(cap int) *Table {
	return NewTable(hashlib.NewFamily(1).New(), NewArena(0), cap)
}

func TestArenaAllocAndCopy(t *testing.T) {
	a := NewArena(128)
	b1 := a.Alloc(10)
	if len(b1) != 10 {
		t.Fatalf("len = %d", len(b1))
	}
	src := []byte("hello")
	c := a.Copy(src)
	src[0] = 'X'
	if string(c) != "hello" {
		t.Fatalf("copy aliased source: %q", c)
	}
	if a.Used() != 15 {
		t.Fatalf("used = %d", a.Used())
	}
	if a.Copy(nil) != nil || a.Alloc(0) != nil {
		t.Fatal("empty alloc should be nil")
	}
}

func TestArenaOversizedAllocation(t *testing.T) {
	a := NewArena(64)
	big := a.Alloc(1000)
	if len(big) != 1000 {
		t.Fatalf("len = %d", len(big))
	}
	if a.Footprint() < 1000 {
		t.Fatalf("footprint = %d", a.Footprint())
	}
}

func TestArenaAllocationsDoNotOverlap(t *testing.T) {
	a := NewArena(64)
	x := a.Alloc(10)
	y := a.Alloc(10)
	for i := range x {
		x[i] = 1
	}
	for i := range y {
		y[i] = 2
	}
	for i := range x {
		if x[i] != 1 {
			t.Fatal("allocations overlap")
		}
	}
	// Appending to x must not clobber y (capacity is clipped).
	_ = append(x, 9, 9, 9)
	for i := range y {
		if y[i] != 2 {
			t.Fatal("append through earlier allocation clobbered later one")
		}
	}
}

func TestArenaReset(t *testing.T) {
	a := NewArena(64)
	a.Alloc(100)
	a.Reset()
	if a.Used() != 0 || a.Footprint() != 0 {
		t.Fatal("reset must clear accounting")
	}
}

func TestTablePutGet(t *testing.T) {
	tb := newTable(4)
	tb.Put([]byte("a"), 1)
	tb.Put([]byte("b"), 2)
	tb.Put([]byte("a"), 3) // overwrite
	if v, ok := tb.Get([]byte("a")); !ok || v != 3 {
		t.Fatalf("a = %d,%v", v, ok)
	}
	if v, ok := tb.Get([]byte("b")); !ok || v != 2 {
		t.Fatalf("b = %d,%v", v, ok)
	}
	if _, ok := tb.Get([]byte("c")); ok {
		t.Fatal("missing key found")
	}
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestTableAdd(t *testing.T) {
	tb := newTable(4)
	if got := tb.Add([]byte("k"), 5); got != 5 {
		t.Fatalf("first add = %d", got)
	}
	if got := tb.Add([]byte("k"), 7); got != 12 {
		t.Fatalf("second add = %d", got)
	}
}

func TestTableUpsertNewFlag(t *testing.T) {
	tb := newTable(4)
	if !tb.Upsert([]byte("x"), func(old uint64, exists bool) uint64 {
		if exists {
			t.Error("first upsert must see exists=false")
		}
		return 1
	}) {
		t.Fatal("first upsert must report new")
	}
	if tb.Upsert([]byte("x"), func(old uint64, exists bool) uint64 {
		if !exists || old != 1 {
			t.Errorf("second upsert saw old=%d exists=%v", old, exists)
		}
		return 2
	}) {
		t.Fatal("second upsert must not report new")
	}
}

func TestTableDelete(t *testing.T) {
	tb := newTable(4)
	tb.Put([]byte("a"), 1)
	tb.Put([]byte("b"), 2)
	if !tb.Delete([]byte("a")) {
		t.Fatal("delete existing failed")
	}
	if tb.Delete([]byte("a")) {
		t.Fatal("double delete should fail")
	}
	if _, ok := tb.Get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tb.Get([]byte("b")); !ok || v != 2 {
		t.Fatal("surviving key broken after delete")
	}
	// Reinsert after tombstone.
	tb.Put([]byte("a"), 9)
	if v, ok := tb.Get([]byte("a")); !ok || v != 9 {
		t.Fatal("reinsert after tombstone failed")
	}
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestTableSetValue(t *testing.T) {
	tb := newTable(4)
	tb.Put([]byte("a"), 1)
	if !tb.SetValue([]byte("a"), 42) {
		t.Fatal("SetValue on existing failed")
	}
	if tb.SetValue([]byte("zz"), 1) {
		t.Fatal("SetValue on missing should fail")
	}
	if v, _ := tb.Get([]byte("a")); v != 42 {
		t.Fatalf("v = %d", v)
	}
}

func TestTableGrowthKeepsAllKeys(t *testing.T) {
	tb := newTable(4)
	const n = 10000
	for i := 0; i < n; i++ {
		tb.Put([]byte(fmt.Sprintf("key-%d", i)), uint64(i))
	}
	if tb.Len() != n {
		t.Fatalf("len = %d", tb.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := tb.Get([]byte(fmt.Sprintf("key-%d", i))); !ok || v != uint64(i) {
			t.Fatalf("key-%d = %d,%v", i, v, ok)
		}
	}
}

func TestTableIterateVisitsAllLiveKeys(t *testing.T) {
	tb := newTable(4)
	want := map[string]uint64{"a": 1, "b": 2, "c": 3}
	for k, v := range want {
		tb.Put([]byte(k), v)
	}
	tb.Delete([]byte("b"))
	got := map[string]uint64{}
	tb.Iterate(func(k []byte, v uint64) bool {
		got[string(k)] = v
		return true
	})
	if len(got) != 2 || got["a"] != 1 || got["c"] != 3 {
		t.Fatalf("iterate = %v", got)
	}
	// Early termination.
	calls := 0
	tb.Iterate(func(k []byte, v uint64) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop visited %d", calls)
	}
}

func TestTableUsedBytesGrows(t *testing.T) {
	tb := newTable(4)
	before := tb.UsedBytes()
	for i := 0; i < 100; i++ {
		tb.Put([]byte(fmt.Sprintf("key-%d", i)), 0)
	}
	if tb.UsedBytes() <= before {
		t.Fatal("UsedBytes must grow with inserts")
	}
}

// Property: the table behaves exactly like map[string]uint64 under a random
// operation sequence of puts, adds, and deletes.
func TestTableModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint64
	}
	f := func(ops []op) bool {
		tb := newTable(4)
		model := map[string]uint64{}
		for _, o := range ops {
			key := []byte(fmt.Sprintf("k%d", o.Key%32))
			switch o.Kind % 3 {
			case 0:
				tb.Put(key, o.Val)
				model[string(key)] = o.Val
			case 1:
				tb.Add(key, o.Val)
				model[string(key)] += o.Val
			case 2:
				delete(model, string(key))
				tb.Delete(key)
			}
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tb.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestListStoreAppendIterate(t *testing.T) {
	s := NewListStore(NewArena(0))
	l := s.NewList()
	recs := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, r := range recs {
		s.Append(l, r)
	}
	got := s.Records(l)
	if len(got) != 3 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("rec %d = %q", i, got[i])
		}
	}
	if s.ListLen(l) != 3 {
		t.Fatalf("len = %d", s.ListLen(l))
	}
	if s.ListBytes(l) != int64(len("onetwothree")) {
		t.Fatalf("bytes = %d", s.ListBytes(l))
	}
}

func TestListStoreManyListsIndependent(t *testing.T) {
	s := NewListStore(NewArena(0))
	var ids []ListID
	for i := 0; i < 50; i++ {
		ids = append(ids, s.NewList())
	}
	for round := 0; round < 20; round++ {
		for i, id := range ids {
			s.Append(id, []byte(fmt.Sprintf("list%d-rec%d", i, round)))
		}
	}
	if s.Lists() != 50 {
		t.Fatalf("lists = %d", s.Lists())
	}
	for i, id := range ids {
		recs := s.Records(id)
		if len(recs) != 20 {
			t.Fatalf("list %d has %d records", i, len(recs))
		}
		for r, rec := range recs {
			want := fmt.Sprintf("list%d-rec%d", i, r)
			if string(rec) != want {
				t.Fatalf("list %d rec %d = %q, want %q", i, r, rec, want)
			}
		}
	}
}

func TestListStoreLargeRecords(t *testing.T) {
	s := NewListStore(NewArena(0))
	l := s.NewList()
	big := make([]byte, 40000) // bigger than maxChunk
	for i := range big {
		big[i] = byte(i)
	}
	s.Append(l, big)
	s.Append(l, []byte("small"))
	recs := s.Records(l)
	if !bytes.Equal(recs[0], big) || string(recs[1]) != "small" {
		t.Fatal("large record round trip failed")
	}
}

func TestListStoreEmptyList(t *testing.T) {
	s := NewListStore(NewArena(0))
	l := s.NewList()
	if len(s.Records(l)) != 0 || s.ListLen(l) != 0 || s.ListBytes(l) != 0 {
		t.Fatal("fresh list must be empty")
	}
}

func TestListStoreIterateEarlyStop(t *testing.T) {
	s := NewListStore(NewArena(0))
	l := s.NewList()
	for i := 0; i < 10; i++ {
		s.Append(l, []byte{byte(i)})
	}
	n := 0
	s.Iterate(l, func(rec []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d", n)
	}
}

func TestListStoreUsedBytes(t *testing.T) {
	s := NewListStore(NewArena(0))
	l := s.NewList()
	if s.UsedBytes() != 0 {
		t.Fatal("empty store should use no bytes")
	}
	s.Append(l, make([]byte, 1000))
	if s.UsedBytes() < 1000 {
		t.Fatalf("used = %d", s.UsedBytes())
	}
}

// Property: any sequence of appends across interleaved lists is returned
// exactly, in order, per list.
func TestListStoreProperty(t *testing.T) {
	f := func(assign []uint8, payload []byte) bool {
		s := NewListStore(NewArena(128))
		const nLists = 4
		var ids [nLists]ListID
		for i := range ids {
			ids[i] = s.NewList()
		}
		model := make([][][]byte, nLists)
		for i, a := range assign {
			l := int(a) % nLists
			end := i + 5
			if end > len(payload) {
				end = len(payload)
			}
			start := i
			if start > len(payload) {
				start = len(payload)
			}
			rec := payload[start:end]
			s.Append(ids[l], rec)
			model[l] = append(model[l], append([]byte(nil), rec...))
		}
		for l := 0; l < nLists; l++ {
			got := s.Records(ids[l])
			if len(got) != len(model[l]) {
				return false
			}
			for i := range got {
				if !bytes.Equal(got[i], model[l][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
