package kv

import "sort"

// Buffer is the map-side output buffer: raw pair bytes in one flat array
// plus one reference per pair carrying its partition — the byte-array
// layout Hadoop sorts on the compound (partition, key) before writing the
// map output file (§II.A).
type Buffer struct {
	data []byte
	refs []ref
}

type ref struct {
	part       int32
	off        int32
	klen, vlen int32
}

// NewBuffer returns an empty buffer with an initial byte capacity hint.
func NewBuffer(capBytes int) *Buffer {
	if capBytes < 0 {
		capBytes = 0
	}
	return &Buffer{data: make([]byte, 0, capBytes)}
}

// Add appends one pair destined for partition p.
func (b *Buffer) Add(p int, key, val []byte) {
	off := int32(len(b.data))
	b.data = append(b.data, key...)
	b.data = append(b.data, val...)
	b.refs = append(b.refs, ref{part: int32(p), off: off, klen: int32(len(key)), vlen: int32(len(val))})
}

// Len returns the number of pairs buffered.
func (b *Buffer) Len() int { return len(b.refs) }

// Bytes returns the payload byte volume (keys + values).
func (b *Buffer) Bytes() int64 { return int64(len(b.data)) }

// Key returns the i-th pair's key (aliasing the buffer).
func (b *Buffer) Key(i int) []byte {
	r := b.refs[i]
	return b.data[r.off : r.off+r.klen]
}

// Val returns the i-th pair's value (aliasing the buffer).
func (b *Buffer) Val(i int) []byte {
	r := b.refs[i]
	return b.data[r.off+r.klen : r.off+r.klen+r.vlen]
}

// Partition returns the i-th pair's partition.
func (b *Buffer) Partition(i int) int { return int(b.refs[i].part) }

// Reset clears the buffer for reuse, keeping capacity.
func (b *Buffer) Reset() {
	b.data = b.data[:0]
	b.refs = b.refs[:0]
}

// SortByPartitionKey sorts pairs by (partition, key), counting key
// comparisons into counter — the CPU the paper's Table II attributes to
// map-side sorting.
func (b *Buffer) SortByPartitionKey(counter *int64) {
	// sort.Slice with an offset tiebreak gives the same order as a stable
	// sort (offsets increase in insertion order) at a fraction of the cost.
	sort.Slice(b.refs, func(i, j int) bool {
		if counter != nil {
			*counter++
		}
		ri, rj := b.refs[i], b.refs[j]
		if ri.part != rj.part {
			return ri.part < rj.part
		}
		if c := Compare(b.data[ri.off:ri.off+ri.klen], b.data[rj.off:rj.off+rj.klen], nil); c != 0 {
			return c < 0
		}
		return ri.off < rj.off
	})
}

// PartitionRange returns the index range [lo, hi) of pairs in partition p.
// The buffer must already be sorted by partition (SortByPartitionKey).
func (b *Buffer) PartitionRange(p int) (lo, hi int) {
	lo = sort.Search(len(b.refs), func(i int) bool { return int(b.refs[i].part) >= p })
	hi = sort.Search(len(b.refs), func(i int) bool { return int(b.refs[i].part) > p })
	return lo, hi
}

// EncodeRange returns the encoded bytes of pairs [lo, hi), sized exactly up
// front so the result carries no append-growth slack.
func (b *Buffer) EncodeRange(lo, hi int) []byte {
	size := 0
	for i := lo; i < hi; i++ {
		r := b.refs[i]
		size += EncodedSize(b.data[r.off:r.off+r.klen], b.data[r.off+r.klen:r.off+r.klen+r.vlen])
	}
	out := make([]byte, 0, size)
	for i := lo; i < hi; i++ {
		out = AppendPair(out, b.Key(i), b.Val(i))
	}
	return out
}

// RangeStream streams pairs [lo, hi) of the buffer in index order.
type RangeStream struct {
	buf *Buffer
	cur int
	end int
}

// NewRangeStream returns a stream over pairs [lo, hi).
func (b *Buffer) NewRangeStream(lo, hi int) *RangeStream {
	return &RangeStream{buf: b, cur: lo, end: hi}
}

// Peek implements PairStream.
func (s *RangeStream) Peek() ([]byte, []byte, bool) {
	if s.cur >= s.end {
		return nil, nil, false
	}
	return s.buf.Key(s.cur), s.buf.Val(s.cur), true
}

// Advance implements PairStream.
func (s *RangeStream) Advance() { s.cur++ }
