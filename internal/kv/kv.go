// Package kv defines the key-value record model shared by all engines:
// a compact length-prefixed encoding, a byte-array map-output buffer that
// sorts by (partition, key) exactly like Hadoop's map-side buffer, counted
// byte-string comparison (the engines charge CPU per real comparison), and
// a k-way merge over sorted pair streams.
package kv

import (
	"bytes"
	"encoding/binary"
)

// AppendPair appends the encoding of (key, val) to dst and returns dst.
// Layout: uvarint(klen) uvarint(vlen) key val.
func AppendPair(dst, key, val []byte) []byte {
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	dst = append(dst, hdr[:n]...)
	dst = append(dst, key...)
	dst = append(dst, val...)
	return dst
}

// EncodedSize returns the encoded size of (key, val).
func EncodedSize(key, val []byte) int {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[:], uint64(len(val)))
	return n + len(key) + len(val)
}

// DecodePair decodes one pair from the front of buf. It returns n=0 when
// buf does not hold a complete pair (clean EOF or a partial record at a
// chunk boundary); otherwise n is the encoded length consumed.
func DecodePair(buf []byte) (key, val []byte, n int) {
	klen, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, 0
	}
	vlen, v := binary.Uvarint(buf[k:])
	if v <= 0 {
		return nil, nil, 0
	}
	total := k + v + int(klen) + int(vlen)
	if len(buf) < total {
		return nil, nil, 0
	}
	key = buf[k+v : k+v+int(klen)]
	val = buf[k+v+int(klen) : total]
	return key, val, total
}

// CountPairs returns the number of complete encoded pairs at the front of
// buf — a cheap pre-scan (length fields only, no payload work) that lets
// charge sites know record counts before a pooled closure has processed
// the data.
func CountPairs(buf []byte) int {
	n := 0
	for len(buf) > 0 {
		_, _, sz := DecodePair(buf)
		if sz == 0 {
			return n
		}
		buf = buf[sz:]
		n++
	}
	return n
}

// Compare compares two byte-string keys, incrementing *counter by the
// byte positions examined (a proxy for real comparison cost, charged to
// virtual CPU by the engines). A nil counter is allowed.
func Compare(a, b []byte, counter *int64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if counter != nil {
		// Cost model: one comparison operation; byte-length effects are
		// second-order, so count operations, not bytes.
		*counter++
	}
	return bytes.Compare(a, b)
}

// Decoder iterates the pairs of one encoded byte buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Next returns the next pair; ok=false at end of buffer.
func (d *Decoder) Next() (key, val []byte, ok bool) {
	key, val, n := DecodePair(d.buf[d.off:])
	if n == 0 {
		return nil, nil, false
	}
	d.off += n
	return key, val, true
}

// Remaining returns the undecoded byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// PairStream is a peekable stream of key-value pairs, the interface the
// k-way merge and grouping operators consume.
type PairStream interface {
	// Peek returns the current pair without consuming it; ok=false at end.
	Peek() (key, val []byte, ok bool)
	// Advance consumes the current pair.
	Advance()
}

// SliceStream streams an in-memory encoded buffer.
type SliceStream struct {
	dec              *Decoder
	curKey, curVal   []byte
	valid, exhausted bool
}

// NewSliceStream returns a stream over encoded pairs in buf.
func NewSliceStream(buf []byte) *SliceStream {
	return &SliceStream{dec: NewDecoder(buf)}
}

// Peek implements PairStream.
func (s *SliceStream) Peek() ([]byte, []byte, bool) {
	if !s.valid && !s.exhausted {
		s.curKey, s.curVal, s.valid = s.dec.Next()
		if !s.valid {
			s.exhausted = true
		}
	}
	return s.curKey, s.curVal, s.valid
}

// Advance implements PairStream.
func (s *SliceStream) Advance() { s.valid = false }

// MergeStreams merges sorted streams into emit in ascending key order,
// using a tournament among current heads; comparisons are counted into
// counter. Ties are broken by stream index, so merging is stable across
// runs — the order Hadoop's merge produces.
func MergeStreams(streams []PairStream, counter *int64, emit func(key, val []byte)) {
	type head struct {
		idx int
	}
	// Simple binary heap over stream indices keyed by their peeked key.
	h := make([]int, 0, len(streams))
	less := func(a, b int) bool {
		ka, _, _ := streams[a].Peek()
		kb, _, _ := streams[b].Peek()
		if c := Compare(ka, kb, counter); c != 0 {
			return c < 0
		}
		return a < b
	}
	var down func(i int)
	down = func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				return
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				return
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	for i, s := range streams {
		if _, _, ok := s.Peek(); ok {
			h = append(h, i)
			up(len(h) - 1)
		}
	}
	for len(h) > 0 {
		top := h[0]
		k, v, _ := streams[top].Peek()
		emit(k, v)
		streams[top].Advance()
		if _, _, ok := streams[top].Peek(); ok {
			down(0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				down(0)
			}
		}
	}
}

// Grouper accumulates consecutive equal-key pairs into reused staging
// buffers and hands each completed group to a callback. It replaces the
// per-pair key/value copies the reduce-side group-by used to make: the key
// and value payloads are copied once into buffers owned by the Grouper (so
// they survive the source stream advancing), and those buffers are recycled
// from one group to the next. Callbacks must not retain key or vals past
// their return.
type Grouper struct {
	key      []byte // current group's key, copied out of the stream
	valBytes []byte // concatenated value payloads of the current group
	bounds   []int  // value i spans valBytes[bounds[i]:bounds[i+1]]
	vals     [][]byte
	have     bool
}

// Add feeds one pair in sorted order. When k starts a new group, the
// previous group is flushed to fn first. Comparisons are counted into
// counter (nil allowed).
func (g *Grouper) Add(k, v []byte, counter *int64, fn func(key []byte, vals [][]byte)) {
	if !g.have || Compare(g.key, k, counter) != 0 {
		g.Flush(fn)
		g.key = append(g.key[:0], k...)
		g.have = true
	}
	g.valBytes = append(g.valBytes, v...)
	g.bounds = append(g.bounds, len(g.valBytes))
}

// Flush emits the pending group, if any, and resets the staging buffers.
func (g *Grouper) Flush(fn func(key []byte, vals [][]byte)) {
	if !g.have {
		return
	}
	// Materialize vals only now: valBytes may have been reallocated by
	// growth while the group was accumulating.
	g.vals = g.vals[:0]
	start := 0
	for _, end := range g.bounds {
		g.vals = append(g.vals, g.valBytes[start:end])
		start = end
	}
	fn(g.key, g.vals)
	g.valBytes = g.valBytes[:0]
	g.bounds = g.bounds[:0]
	g.have = false
}

// GroupSorted walks a sorted stream and invokes fn once per distinct key
// with all its values, in order — the reduce-side grouping over a merged
// run. Keys and values are staged in buffers reused from one group to the
// next (see Grouper): fn must not retain key or vals past its return.
func GroupSorted(s PairStream, counter *int64, fn func(key []byte, vals [][]byte)) {
	var g Grouper
	for {
		k, v, ok := s.Peek()
		if !ok {
			break
		}
		g.Add(k, v, counter, fn)
		s.Advance()
	}
	g.Flush(fn)
}
