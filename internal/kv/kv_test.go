package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendPair(buf, []byte("key1"), []byte("value-one"))
	buf = AppendPair(buf, []byte(""), []byte("empty-key"))
	buf = AppendPair(buf, []byte("k3"), nil)
	d := NewDecoder(buf)
	k, v, ok := d.Next()
	if !ok || string(k) != "key1" || string(v) != "value-one" {
		t.Fatalf("pair 1 = %q %q %v", k, v, ok)
	}
	k, v, ok = d.Next()
	if !ok || len(k) != 0 || string(v) != "empty-key" {
		t.Fatalf("pair 2 = %q %q %v", k, v, ok)
	}
	k, v, ok = d.Next()
	if !ok || string(k) != "k3" || len(v) != 0 {
		t.Fatalf("pair 3 = %q %q %v", k, v, ok)
	}
	if _, _, ok = d.Next(); ok {
		t.Fatal("decoder must end")
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	key, val := []byte("some-key"), bytes.Repeat([]byte("v"), 300)
	var buf []byte
	buf = AppendPair(buf, key, val)
	if EncodedSize(key, val) != len(buf) {
		t.Fatalf("EncodedSize = %d, encoded = %d", EncodedSize(key, val), len(buf))
	}
}

func TestDecodePairPartialInput(t *testing.T) {
	var buf []byte
	buf = AppendPair(buf, []byte("abcdef"), []byte("0123456789"))
	for cut := 0; cut < len(buf); cut++ {
		if _, _, n := DecodePair(buf[:cut]); n != 0 {
			t.Fatalf("partial buffer of %d bytes decoded n=%d", cut, n)
		}
	}
	if _, _, n := DecodePair(buf); n != len(buf) {
		t.Fatalf("full decode n=%d want %d", n, len(buf))
	}
}

func TestCompareCounts(t *testing.T) {
	var c int64
	if Compare([]byte("a"), []byte("b"), &c) >= 0 {
		t.Fatal("a < b")
	}
	if Compare([]byte("b"), []byte("a"), &c) <= 0 {
		t.Fatal("b > a")
	}
	if Compare([]byte("x"), []byte("x"), &c) != 0 {
		t.Fatal("x == x")
	}
	if c != 3 {
		t.Fatalf("counter = %d, want 3", c)
	}
	Compare([]byte("x"), []byte("y"), nil) // nil counter must not panic
}

func TestBufferAddAndAccess(t *testing.T) {
	b := NewBuffer(0)
	b.Add(1, []byte("k1"), []byte("v1"))
	b.Add(0, []byte("k0"), []byte("v0"))
	if b.Len() != 2 || b.Bytes() != 8 {
		t.Fatalf("len=%d bytes=%d", b.Len(), b.Bytes())
	}
	if string(b.Key(0)) != "k1" || string(b.Val(1)) != "v0" || b.Partition(0) != 1 {
		t.Fatal("accessors broken")
	}
	b.Reset()
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBufferSortByPartitionKey(t *testing.T) {
	b := NewBuffer(0)
	b.Add(1, []byte("b"), []byte("3"))
	b.Add(0, []byte("z"), []byte("2"))
	b.Add(1, []byte("a"), []byte("4"))
	b.Add(0, []byte("a"), []byte("1"))
	var cmps int64
	b.SortByPartitionKey(&cmps)
	var got []string
	for i := 0; i < b.Len(); i++ {
		got = append(got, fmt.Sprintf("%d/%s=%s", b.Partition(i), b.Key(i), b.Val(i)))
	}
	want := []string{"0/a=1", "0/z=2", "1/a=4", "1/b=3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted = %v", got)
	}
	if cmps == 0 {
		t.Fatal("comparisons must be counted")
	}
}

func TestBufferSortStableForEqualKeys(t *testing.T) {
	b := NewBuffer(0)
	b.Add(0, []byte("k"), []byte("first"))
	b.Add(0, []byte("k"), []byte("second"))
	b.SortByPartitionKey(nil)
	if string(b.Val(0)) != "first" || string(b.Val(1)) != "second" {
		t.Fatal("sort must be stable")
	}
}

func TestBufferPartitionRange(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 10; i++ {
		b.Add(i%3, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	b.SortByPartitionKey(nil)
	total := 0
	for p := 0; p < 3; p++ {
		lo, hi := b.PartitionRange(p)
		for i := lo; i < hi; i++ {
			if b.Partition(i) != p {
				t.Fatalf("index %d in range of p%d has partition %d", i, p, b.Partition(i))
			}
		}
		total += hi - lo
	}
	if total != 10 {
		t.Fatalf("ranges cover %d pairs", total)
	}
	if lo, hi := b.PartitionRange(99); lo != hi {
		t.Fatal("missing partition must have empty range")
	}
}

func TestEncodeRangeAndSliceStream(t *testing.T) {
	b := NewBuffer(0)
	b.Add(0, []byte("a"), []byte("1"))
	b.Add(0, []byte("b"), []byte("2"))
	enc := b.EncodeRange(0, 2)
	s := NewSliceStream(enc)
	k, v, ok := s.Peek()
	if !ok || string(k) != "a" || string(v) != "1" {
		t.Fatalf("peek = %q %q %v", k, v, ok)
	}
	// Peek must be idempotent.
	k2, _, _ := s.Peek()
	if string(k2) != "a" {
		t.Fatal("second peek differs")
	}
	s.Advance()
	k, _, _ = s.Peek()
	if string(k) != "b" {
		t.Fatalf("after advance = %q", k)
	}
	s.Advance()
	if _, _, ok := s.Peek(); ok {
		t.Fatal("stream must end")
	}
}

func TestRangeStream(t *testing.T) {
	b := NewBuffer(0)
	b.Add(0, []byte("x"), []byte("1"))
	b.Add(0, []byte("y"), []byte("2"))
	b.Add(0, []byte("z"), []byte("3"))
	s := b.NewRangeStream(1, 3)
	var keys []string
	for {
		k, _, ok := s.Peek()
		if !ok {
			break
		}
		keys = append(keys, string(k))
		s.Advance()
	}
	if !reflect.DeepEqual(keys, []string{"y", "z"}) {
		t.Fatalf("keys = %v", keys)
	}
}

func encodeSorted(pairs map[string]string) []byte {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = AppendPair(out, []byte(k), []byte(pairs[k]))
	}
	return out
}

func TestMergeStreamsProducesSortedUnion(t *testing.T) {
	a := encodeSorted(map[string]string{"apple": "1", "mango": "2", "zebra": "3"})
	b := encodeSorted(map[string]string{"banana": "4", "mango": "5"})
	c := encodeSorted(map[string]string{})
	var cmps int64
	var got []string
	MergeStreams([]PairStream{NewSliceStream(a), NewSliceStream(b), NewSliceStream(c)}, &cmps,
		func(k, v []byte) { got = append(got, fmt.Sprintf("%s=%s", k, v)) })
	want := []string{"apple=1", "banana=4", "mango=2", "mango=5", "zebra=3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged = %v", got)
	}
	if cmps == 0 {
		t.Fatal("merge comparisons must be counted")
	}
}

func TestMergeStreamsEmptyInput(t *testing.T) {
	called := false
	MergeStreams(nil, nil, func(k, v []byte) { called = true })
	if called {
		t.Fatal("no emit for no streams")
	}
}

func TestGroupSorted(t *testing.T) {
	var buf []byte
	buf = AppendPair(buf, []byte("a"), []byte("1"))
	buf = AppendPair(buf, []byte("a"), []byte("2"))
	buf = AppendPair(buf, []byte("b"), []byte("3"))
	groups := map[string][]string{}
	GroupSorted(NewSliceStream(buf), nil, func(k []byte, vals [][]byte) {
		var vs []string
		for _, v := range vals {
			vs = append(vs, string(v))
		}
		groups[string(k)] = vs
	})
	if !reflect.DeepEqual(groups["a"], []string{"1", "2"}) || !reflect.DeepEqual(groups["b"], []string{"3"}) {
		t.Fatalf("groups = %v", groups)
	}
}

func TestGroupSortedEmpty(t *testing.T) {
	GroupSorted(NewSliceStream(nil), nil, func(k []byte, vals [][]byte) {
		t.Fatal("no groups expected")
	})
}

// Property: encode/decode round-trips arbitrary pair sequences.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		var buf []byte
		for _, p := range pairs {
			buf = AppendPair(buf, p[0], p[1])
		}
		d := NewDecoder(buf)
		for _, p := range pairs {
			k, v, ok := d.Next()
			if !ok || !bytes.Equal(k, p[0]) || !bytes.Equal(v, p[1]) {
				return false
			}
		}
		_, _, ok := d.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging R sorted random runs yields a sorted permutation of the
// union of inputs.
func TestMergeStreamsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		runs := rng.Intn(6) + 1
		var streams []PairStream
		var all []string
		for r := 0; r < runs; r++ {
			n := rng.Intn(30)
			keys := make([]string, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%03d", rng.Intn(50))
				all = append(all, keys[i])
			}
			sort.Strings(keys)
			var buf []byte
			for _, k := range keys {
				buf = AppendPair(buf, []byte(k), []byte("v"))
			}
			streams = append(streams, NewSliceStream(buf))
		}
		var got []string
		MergeStreams(streams, nil, func(k, v []byte) { got = append(got, string(k)) })
		sort.Strings(all)
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge is not a sorted permutation", trial)
		}
	}
}

// Property: sorting a buffer yields (partition, key)-ordered pairs and
// preserves the multiset of pairs.
func TestBufferSortProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuffer(0)
		count := map[string]int{}
		for i := 0; i < int(n); i++ {
			p := rng.Intn(4)
			key := fmt.Sprintf("k%d", rng.Intn(20))
			val := fmt.Sprintf("v%d", i)
			b.Add(p, []byte(key), []byte(val))
			count[fmt.Sprintf("%d/%s/%s", p, key, val)]++
		}
		b.SortByPartitionKey(nil)
		for i := 0; i < b.Len(); i++ {
			count[fmt.Sprintf("%d/%s/%s", b.Partition(i), b.Key(i), b.Val(i))]--
			if i > 0 {
				if b.Partition(i-1) > b.Partition(i) {
					return false
				}
				if b.Partition(i-1) == b.Partition(i) && bytes.Compare(b.Key(i-1), b.Key(i)) > 0 {
					return false
				}
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
