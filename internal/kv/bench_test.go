package kv

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func BenchmarkAppendDecodePair(b *testing.B) {
	key, val := []byte("user-1234567"), []byte("869769600 /en/page/123")
	b.SetBytes(int64(EncodedSize(key, val)))
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendPair(buf[:0], key, val)
		_, _, n := DecodePair(buf)
		if n == 0 {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkBufferSort64K(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	keys := make([][]byte, 1<<16)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("u%07d", rng.Intn(1<<20)))
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		buf := NewBuffer(1 << 20)
		for j, k := range keys {
			buf.Add(j&15, k, []byte("1"))
		}
		b.StartTimer()
		var cmps int64
		buf.SortByPartitionKey(&cmps)
	}
}

func BenchmarkMergeStreams8Way(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	runs := make([][]byte, 8)
	for r := range runs {
		keys := make([]string, 4096)
		for i := range keys {
			keys[i] = fmt.Sprintf("u%07d", rng.Intn(1<<20))
		}
		sort.Strings(keys)
		var enc []byte
		for _, k := range keys {
			enc = AppendPair(enc, []byte(k), []byte("1"))
		}
		runs[r] = enc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]PairStream, len(runs))
		for r, enc := range runs {
			streams[r] = NewSliceStream(enc)
		}
		n := 0
		MergeStreams(streams, nil, func(k, v []byte) { n++ })
		if n != 8*4096 {
			b.Fatal("merge lost records")
		}
	}
}
