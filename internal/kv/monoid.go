package kv

// Monoid is the typed commutative-aggregate contract of "Monoidify!"
// (Lin, 2013): a reduce whose value space carries an associative Combine
// with an identity element. A workload that declares its reduce as a monoid
// lets every engine combine partial results in-node before shuffle, and
// lets the hash and resident engines merge partial states associatively —
// the map output, the in-flight partials, and the final answer all live in
// the same byte-encoded value space.
//
// Laws (checked by the property tests in internal/workloads):
//
//	Combine(Identity(), x) == x == Combine(x, Identity())   (identity)
//	Combine(Combine(a, b), c) == Combine(a, Combine(b, c))  (associativity)
//
// and, for monoids that additionally implement Commutative:
//
//	Combine(a, b) == Combine(b, a)                          (commutativity)
//
// Combine may reuse a's storage; callers that need both inputs afterwards
// must pass copies. Implementations must be stateless (safe to share across
// the intra-run worker pool).
type Monoid interface {
	// Identity returns the neutral element. The returned slice must not be
	// retained and mutated by the caller without copying.
	Identity() []byte
	// Combine folds b into a, returning the combined element. It may
	// append into (and return) a's storage.
	Combine(a, b []byte) []byte
}

// CommutativeMonoid marks a Monoid whose Combine is order-insensitive
// byte-for-byte. Engines exploit commutativity to fold partials in arrival
// order; the cross-engine differential checker relies on it for output
// byte-identity under reordered shuffles.
type CommutativeMonoid interface {
	Monoid
	// Commutative is a marker; implementations declare, the property tests
	// verify.
	Commutative()
}

// IsCommutative reports whether m declares the commutativity law.
func IsCommutative(m Monoid) bool {
	_, ok := m.(CommutativeMonoid)
	return ok
}
