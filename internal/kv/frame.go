package kv

import "encoding/binary"

// Value framing: a length-prefixed concatenation of opaque byte strings.
// The incremental re-run path uses it to carry a whole value *list* as one
// engine value — a holistic job's per-block partial is the framed multiset
// of its raw map-output values — but the encoding is workload-agnostic.

// AppendFramed appends uvarint(len(b)) + b to dst and returns dst.
func AppendFramed(dst, b []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(b)))
	dst = append(dst, hdr[:n]...)
	return append(dst, b...)
}

// Frames calls fn for each framed byte string in buf, in order. It reports
// whether buf was consumed exactly (no partial trailing frame). The yielded
// slices alias buf.
func Frames(buf []byte, fn func(b []byte)) bool {
	for len(buf) > 0 {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return false
		}
		fn(buf[n : n+int(l)])
		buf = buf[n+int(l):]
	}
	return true
}

// CountFrames returns the number of complete frames at the front of buf.
func CountFrames(buf []byte) int {
	n := 0
	Frames(buf, func([]byte) { n++ })
	return n
}
