package kv

import "testing"

// Allocation budgets: these hot paths run once per record in every engine,
// so a single stray allocation multiplies into millions per run. The
// budgets fail `go test` locally, before CI's benchmark ratchet sees it.

func TestAllocBudgetAppendDecodePair(t *testing.T) {
	key := []byte("user-0012345")
	val := []byte("8,1754390400")
	buf := make([]byte, 0, 256)
	avg := testing.AllocsPerRun(1000, func() {
		buf = buf[:0]
		buf = AppendPair(buf, key, val)
		k, v, n := DecodePair(buf)
		if n == 0 || len(k) != len(key) || len(v) != len(val) {
			t.Fatal("round-trip failed")
		}
	})
	if avg != 0 {
		t.Fatalf("encode+decode allocates %.1f/op, budget 0", avg)
	}
}

func TestAllocBudgetBufferAdd(t *testing.T) {
	b := NewBuffer(1 << 20)
	key := []byte("user-0012345")
	val := []byte("1")
	avg := testing.AllocsPerRun(1000, func() {
		b.Reset()
		for i := 0; i < 16; i++ {
			b.Add(i%4, key, val)
		}
	})
	// Steady-state adds reuse the buffer's data and ref slices entirely.
	if avg != 0 {
		t.Fatalf("Buffer.Add allocates %.1f/op, budget 0", avg)
	}
}

func TestAllocBudgetGrouper(t *testing.T) {
	keys := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	val := []byte("1")
	var g Grouper
	sink := func(key []byte, vals [][]byte) {}
	// Warm up so the grouper's staging buffers reach steady-state size.
	for _, k := range keys {
		g.Add(k, val, nil, sink)
	}
	g.Flush(sink)
	avg := testing.AllocsPerRun(1000, func() {
		for _, k := range keys {
			g.Add(k, val, nil, sink)
			g.Add(k, val, nil, sink)
		}
		g.Flush(sink)
	})
	if avg != 0 {
		t.Fatalf("Grouper allocates %.1f/op, budget 0", avg)
	}
}
