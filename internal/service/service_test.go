package service_test

import (
	"strings"
	"testing"

	"onepass/internal/gen"
	"onepass/internal/loadgen"
	"onepass/internal/service"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

// testConfig is a small shared-cluster shape: 6 nodes, enough slots for
// three concurrent default-grant jobs.
func testConfig(tenants ...service.TenantConfig) service.Config {
	return service.Config{
		Tenants:            tenants,
		Nodes:              6,
		BlockSize:          256 << 10,
		MapSlotsPerNode:    3,
		ReduceSlotsPerNode: 3,
		Reducers:           6,
		Audit:              true,
	}
}

// register installs the per-user-count clickstream input and returns a
// request template against it.
func register(t *testing.T, svc *service.Service, size int64) service.JobRequest {
	t.Helper()
	w := workloads.PerUserCount(gen.DefaultClickConfig())
	if err := svc.RegisterInput("input/"+w.Name, size, w.Gen); err != nil {
		t.Fatal(err)
	}
	return service.JobRequest{
		Engine:    "hash-incremental",
		Job:       w.Job,
		InputPath: "input/" + w.Name,
	}
}

func runFleet(t *testing.T, cfg service.Config, loads func(req service.JobRequest) []loadgen.TenantLoad) (*service.Report, error) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := register(t, svc, 1<<20)
	if err := loadgen.Drive(svc, loads(req)); err != nil {
		t.Fatal(err)
	}
	return svc.Run()
}

func twoTenantLoads(req service.JobRequest, jobs int) func(service.JobRequest) []loadgen.TenantLoad {
	return func(r service.JobRequest) []loadgen.TenantLoad {
		return []loadgen.TenantLoad{
			{Tenant: "gold", Arrival: loadgen.Poisson(7, 2.0), Jobs: jobs, Mix: []service.JobRequest{r}},
			{Tenant: "bronze", Arrival: loadgen.Poisson(11, 2.0), Jobs: jobs, Mix: []service.JobRequest{r}},
		}
	}
}

func TestServiceRunsFleetCleanly(t *testing.T) {
	cfg := testConfig(
		service.TenantConfig{Name: "gold", Weight: 2},
		service.TenantConfig{Name: "bronze", Weight: 1},
	)
	rep, err := runFleet(t, cfg, twoTenantLoads(service.JobRequest{}, 6))
	if err != nil {
		t.Fatalf("service run failed: %v", err)
	}
	if rep.Jobs != 12 {
		t.Fatalf("completed %d jobs, want 12", rep.Jobs)
	}
	for _, tr := range rep.Tenants {
		if tr.Jobs != 6 {
			t.Errorf("tenant %s completed %d jobs, want 6", tr.Name, tr.Jobs)
		}
		if tr.Latency.Count() != 6 || tr.QueueWait.Count() != 6 {
			t.Errorf("tenant %s histograms incomplete: latency %d, queue-wait %d",
				tr.Name, tr.Latency.Count(), tr.QueueWait.Count())
		}
		if tr.SlotSeconds <= 0 {
			t.Errorf("tenant %s accrued no slot-seconds", tr.Name)
		}
	}
	if rep.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestServiceDeterministic(t *testing.T) {
	run := func() string {
		cfg := testConfig(
			service.TenantConfig{Name: "gold", Weight: 2},
			service.TenantConfig{Name: "bronze", Weight: 1},
		)
		rep, err := runFleet(t, cfg, twoTenantLoads(service.JobRequest{}, 5))
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render() + "\n" + string(js)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different reports:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestServiceAllEngines runs one job per engine through the service to pin
// the Start-based dispatch for every engine name.
func TestServiceAllEngines(t *testing.T) {
	engines := []string{"hadoop", "hop", "hash-hybrid", "hash-incremental", "hash-hotkey"}
	cfg := testConfig(service.TenantConfig{Name: "solo"})
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := register(t, svc, 1<<20)
	var mix []service.JobRequest
	for _, e := range engines {
		r := req
		r.Engine = e
		mix = append(mix, r)
	}
	if err := loadgen.Drive(svc, []loadgen.TenantLoad{
		{Tenant: "solo", Arrival: loadgen.Constant(4), Jobs: len(mix), Mix: mix},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run()
	if err != nil {
		t.Fatalf("service run failed: %v", err)
	}
	if rep.Jobs != len(engines) {
		t.Fatalf("completed %d jobs, want %d", rep.Jobs, len(engines))
	}
}

// TestWeightedSharesUnderBacklog drives two tenants with identical demand
// far above capacity and checks the joint-backlog accounting tracks the
// 3:1 weights: per-unit-weight service agrees across the pair (so raw
// slot-time split ~3:1), and the favored tenant's jobs get through faster.
// Whole-run slot-second totals can NOT show this — both tenants submit the
// same total work, so totals equalize no matter the weights.
func TestWeightedSharesUnderBacklog(t *testing.T) {
	cfg := testConfig(
		service.TenantConfig{Name: "heavy", Weight: 3},
		service.TenantConfig{Name: "light", Weight: 1},
	)
	rep, err := runFleet(t, cfg, func(r service.JobRequest) []loadgen.TenantLoad {
		return []loadgen.TenantLoad{
			// Jobs at this scale finish in ~0.04s, so the whole batch must
			// arrive as a burst to stand a backlog on a 3-concurrent-job
			// cluster.
			{Tenant: "heavy", Arrival: loadgen.Constant(200), Jobs: 12, Mix: []service.JobRequest{r}},
			{Tenant: "light", Arrival: loadgen.Constant(200), Jobs: 12, Mix: []service.JobRequest{r}},
		}
	})
	if err != nil {
		t.Fatalf("service run failed: %v", err)
	}
	if len(rep.Pairs) != 1 {
		t.Fatalf("got %d pair reports, want 1:\n%s", len(rep.Pairs), rep.Render())
	}
	p := rep.Pairs[0]
	if p.JointSeconds <= 0 {
		t.Fatalf("no joint backlog recorded:\n%s", rep.Render())
	}
	// Raw slot-time ratio during joint backlog: NormA*3 vs NormB*1.
	ratio := (p.NormA * 3) / (p.NormB * 1)
	if ratio < 1.8 || ratio > 5 {
		t.Errorf("joint-backlog slot-time ratio %.2f not near the 3:1 weights (%+v)", ratio, p)
	}
	var heavyP50, lightP50 int64
	for _, tr := range rep.Tenants {
		switch tr.Name {
		case "heavy":
			heavyP50 = tr.Latency.P50()
		case "light":
			lightP50 = tr.Latency.P50()
		}
	}
	if lightP50 <= heavyP50 {
		t.Errorf("weight-1 tenant p50 latency %d should exceed weight-3 tenant's %d", lightP50, heavyP50)
	}
}

// TestQuotaEnforced pins MaxRunning=1: the tenant's jobs serialize even
// with free slots, and MaxQueued rejections are counted.
func TestQuotaEnforced(t *testing.T) {
	cfg := testConfig(
		service.TenantConfig{Name: "capped", MaxRunning: 1, MaxQueued: 2},
	)
	rep, err := runFleet(t, cfg, func(r service.JobRequest) []loadgen.TenantLoad {
		return []loadgen.TenantLoad{
			{Tenant: "capped", Arrival: loadgen.Constant(50), Jobs: 10, Mix: []service.JobRequest{r}},
		}
	})
	if err != nil {
		t.Fatalf("service run failed: %v", err)
	}
	tr := rep.Tenants[0]
	if tr.Rejected == 0 {
		t.Error("burst at 50 jobs/s against MaxQueued=2 rejected nothing")
	}
	if tr.Jobs+tr.Rejected != 10 {
		t.Errorf("jobs %d + rejected %d != 10 submitted", tr.Jobs, tr.Rejected)
	}
	// With MaxRunning=1 every completed job but the first waited for its
	// predecessor: p50 queue wait must exceed half the median execution.
	if tr.Jobs > 2 && tr.QueueWait.P50() < tr.Exec.P50()/2 {
		t.Errorf("MaxRunning=1 but p50 queue wait %d < half p50 exec %d", tr.QueueWait.P50(), tr.Exec.P50())
	}
}

// TestStarvationCaught rigs a strict-priority config where a high-priority
// tenant's flood locks out a low-priority one, and requires the
// tenant-starvation invariant to fire and fail the run.
func TestStarvationCaught(t *testing.T) {
	cfg := testConfig(
		service.TenantConfig{Name: "vip", Priority: 1},
		service.TenantConfig{Name: "peasant", Priority: 0},
	)
	cfg.StarvationPasses = 8
	rep, err := runFleet(t, cfg, func(r service.JobRequest) []loadgen.TenantLoad {
		return []loadgen.TenantLoad{
			// The vip burst stands a backlog for the whole drain (~40 jobs,
			// 3 at a time); the low-priority tenant's jobs arrive just after
			// the slots fill, so it holds demand while vip's strict priority
			// wins every admission.
			{Tenant: "vip", Arrival: loadgen.Constant(300), Jobs: 40, Mix: []service.JobRequest{r}},
			{Tenant: "peasant", Arrival: loadgen.Constant(50), Jobs: 6, Mix: []service.JobRequest{r}},
		}
	})
	if err == nil {
		t.Fatal("strict-priority lockout ran clean; want tenant-starvation failure")
	}
	if !strings.Contains(err.Error(), "tenant-starvation") {
		t.Fatalf("run failed but not with tenant-starvation:\n%v", err)
	}
	found := false
	for _, f := range rep.Failures {
		if f.Invariant == "tenant-starvation" && strings.Contains(f.Where, "peasant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no tenant-starvation failure naming peasant in report:\n%s", rep.Render())
	}
}

// TestSubmitValidation covers the admission-control error paths.
func TestSubmitValidation(t *testing.T) {
	if _, err := service.New(service.Config{}); err == nil {
		t.Error("empty tenant set accepted")
	}
	if _, err := service.New(service.Config{Tenants: []service.TenantConfig{{Name: "a", Weight: -1}}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := service.New(service.Config{Tenants: []service.TenantConfig{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Error("duplicate tenant accepted")
	}

	cfg := testConfig(service.TenantConfig{Name: "a"})
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := register(t, svc, 1<<20)
	svc.AddSubmitter()
	var errs []string
	svc.Env().Go("probe", func(p *sim.Proc) {
		defer svc.SubmitterDone()
		bad := []service.JobRequest{
			func() (r service.JobRequest) { r = req; r.Tenant = "nobody"; return }(),
			func() (r service.JobRequest) { r = req; r.Tenant = "a"; r.Engine = "spark"; return }(),
			func() (r service.JobRequest) { r = req; r.Tenant = "a"; r.MapSlotsPerNode = 99; return }(),
		}
		for _, b := range bad {
			if err := svc.Submit(p, b); err != nil {
				errs = append(errs, err.Error())
			}
		}
	})
	if _, err := svc.Run(); err != nil {
		t.Fatalf("run with only rejected submissions failed: %v", err)
	}
	if len(errs) != 3 {
		t.Fatalf("got %d submit errors, want 3: %v", len(errs), errs)
	}
	for i, want := range []string{"unknown tenant", "unknown engine", "exceeds capacity"} {
		if !strings.Contains(errs[i], want) {
			t.Errorf("error %d = %q, want %q", i, errs[i], want)
		}
	}
}
