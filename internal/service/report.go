package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"onepass/internal/engine"
	"onepass/internal/metrics"
	"onepass/internal/sim"
)

// TenantReport is one tenant's end-of-run accounting.
type TenantReport struct {
	Name     string
	Weight   float64
	Priority int `json:",omitempty"`

	Jobs     int // completed jobs
	Rejected int `json:",omitempty"` // submissions refused by MaxQueued

	// SlotSeconds is slot-units x seconds held; NormService divides by
	// weight — equal values across backlogged tenants is what "fair" means
	// here.
	SlotSeconds float64
	NormService float64

	// All three in virtual nanoseconds: submit->launch, submit->finish,
	// launch->finish.
	QueueWait *metrics.Histogram
	Latency   *metrics.Histogram
	Exec      *metrics.Histogram
}

// PairReport is the joint-backlog accounting for one same-priority tenant
// pair: over the windows where both tenants had queued demand, the
// slot-seconds each accrued divided by its weight. Fairness means NormA and
// NormB agree (the slot-share invariant enforces it within tolerance);
// total slot-seconds over a whole run do NOT show this — identical
// submitted work equalizes them regardless of weights.
type PairReport struct {
	A, B         string
	JointSeconds float64
	NormA, NormB float64
}

// Report is the deterministic end-of-run summary: same config and seed,
// byte-identical Render and JSON.
type Report struct {
	Makespan sim.Duration
	Jobs     int
	Tenants  []TenantReport        // sorted by name
	Pairs    []PairReport          `json:",omitempty"` // sorted by (A, B)
	Failures []engine.AuditFailure `json:",omitempty"`
}

func (s *Service) report() *Report {
	rep := &Report{Makespan: sim.Duration(s.env.Now())}
	for _, t := range s.tenants {
		rep.Jobs += t.jobs
		rep.Tenants = append(rep.Tenants, TenantReport{
			Name:        t.cfg.Name,
			Weight:      t.weight,
			Priority:    t.cfg.Priority,
			Jobs:        t.jobs,
			Rejected:    t.rejected,
			SlotSeconds: t.slotSeconds,
			NormService: t.normService(),
			QueueWait:   t.queueWait,
			Latency:     t.latency,
			Exec:        t.exec,
		})
	}
	for i := 0; i < len(s.tenants); i++ {
		for k := i + 1; k < len(s.tenants); k++ {
			ps, ok := s.pairs[[2]int{i, k}]
			if !ok || !ps.everBacklog {
				continue
			}
			a, b := s.tenants[i], s.tenants[k]
			rep.Pairs = append(rep.Pairs, PairReport{
				A: a.cfg.Name, B: b.cfg.Name,
				JointSeconds: ps.jointTime.Seconds(),
				NormA:        ps.srvA / a.weight,
				NormB:        ps.srvB / b.weight,
			})
		}
	}
	if s.audit != nil {
		rep.Failures = append(rep.Failures, s.audit.Failures()...)
	}
	rep.Failures = append(rep.Failures, s.jobFails...)
	sort.SliceStable(rep.Failures, func(i, j int) bool {
		a, b := rep.Failures[i], rep.Failures[j]
		if a.Invariant != b.Invariant {
			return a.Invariant < b.Invariant
		}
		return a.Where < b.Where
	})
	return rep
}

// JSON renders the report deterministically.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render formats the report as a fixed-width text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service run: %d jobs over %d tenants, makespan %s\n\n",
		r.Jobs, len(r.Tenants), r.Makespan)
	fmt.Fprintf(&b, "%-12s %6s %4s %5s %4s %12s | %-28s | %-28s\n",
		"tenant", "weight", "prio", "jobs", "rej", "slot-sec", "queue-wait p50/p95/p99", "latency p50/p95/p99")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-12s %6.2f %4d %5d %4d %12.2f | %-28s | %-28s\n",
			t.Name, t.Weight, t.Priority, t.Jobs, t.Rejected, t.SlotSeconds,
			quantiles(t.QueueWait), quantiles(t.Latency))
	}
	if len(r.Pairs) > 0 {
		b.WriteString("\njoint-backlog fair-share (slot-seconds per unit weight):\n")
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "  %s vs %s: %.2f vs %.2f over %.2fs joint backlog\n",
				p.A, p.B, p.NormA, p.NormB, p.JointSeconds)
		}
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, "\nINVARIANT FAILURES (%d):\n%s", len(r.Failures),
			engine.FormatAuditFailures(r.Failures))
	}
	return b.String()
}

func quantiles(h *metrics.Histogram) string {
	if h == nil || h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f/%.2f/%.2f s",
		sim.Duration(h.P50()).Seconds(),
		sim.Duration(h.P95()).Seconds(),
		sim.Duration(h.P99()).Seconds())
}
