// Package service is the long-running job layer over one simulated
// cluster: a job queue with per-tenant admission control, a fair-share /
// capacity scheduler that multiplexes many concurrent jobs, and per-tenant
// accounting. It is the substrate the ROADMAP's "heavy traffic" north star
// needs — instead of one engine run per simulation, a fleet of tenants
// submits jobs continuously (internal/loadgen) and the scheduler hands out
// map/reduce slots, the same slot currency engine.RunMaps and
// engine.RunReduces consume.
//
// Scheduling model. Capacity is MapSlotsPerNode/ReduceSlotsPerNode per
// compute node; every job receives a per-node grant (default 1 map + 1
// reduce slot per node) wired into the engine via Job.MapSlotsPerNode /
// Job.ReduceSlotsPerNode, held non-preemptively for the job's lifetime.
// Admission picks the highest priority class first, and within a class the
// tenant with the least normalized service (held-slot-seconds divided by
// weight) — a deterministic fair-share rule under which backlogged tenants'
// slot-time converges to their weight ratios. Per-tenant quotas bound both
// queued jobs (MaxQueued: submissions beyond it are rejected) and
// concurrently running jobs (MaxRunning). When the fair-order head job does
// not fit the free slots, admission waits rather than skipping ahead, so
// large jobs cannot be starved by a stream of small ones.
//
// Fairness invariants (armed by Config.Audit) report through the same
// engine.Audit ledger as the conservation checks: fair-pick (every
// admission chose a minimal-normalized-service tenant of the top eligible
// priority class), tenant-starvation (an eligible tenant passed over for
// StarvationPasses consecutive admissions), slot-conservation (grants never
// exceed capacity and every slot returns), and slot-share (pairwise
// normalized service under joint backlog stays within ShareTolerance).
// Everything runs at virtual instants in the single-threaded simulation, so
// two runs at the same seed produce byte-identical reports.
package service

import (
	"fmt"
	"math"
	"sort"

	"onepass"
	"onepass/internal/cluster"
	"onepass/internal/core"
	"onepass/internal/dfs"
	"onepass/internal/disk"
	"onepass/internal/engine"
	"onepass/internal/hadoop"
	"onepass/internal/hop"
	"onepass/internal/metrics"
	"onepass/internal/resident"
	"onepass/internal/sim"
)

// TenantConfig describes one tenant's share of the cluster.
type TenantConfig struct {
	Name string
	// Weight is the fair-share weight (default 1): under sustained backlog a
	// tenant's slot-seconds converge to its share of the sum of backlogged
	// tenants' weights. Must be positive and finite.
	Weight float64
	// Priority is a strict class: the scheduler never admits a lower class
	// while a higher one has an admissible job. Weights apply within a
	// class. Deliberately starving a low class is caught by the
	// tenant-starvation audit.
	Priority int
	// MaxQueued bounds the tenant's queue; submissions beyond it are
	// rejected at Submit (admission control). 0 = unlimited.
	MaxQueued int
	// MaxRunning bounds the tenant's concurrently running jobs (quota).
	// 0 = unlimited.
	MaxRunning int
}

// Config sizes the shared cluster and tunes the scheduler.
type Config struct {
	Tenants []TenantConfig

	// Cluster shape (zero values fall back to cluster.DefaultConfig).
	Nodes         int
	CoresPerNode  int
	MemoryPerNode int64
	BlockSize     int64 // DFS block size (default 1 MB)

	// MapSlotsPerNode / ReduceSlotsPerNode are the slot capacity the
	// scheduler divides among running jobs, per compute node (default 4+4:
	// at the default 1+1 grant, four concurrent jobs).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int

	// Reducers is the default per-job reducer count (default = nodes).
	Reducers int
	// MemoryPerTask is the per-task buffer budget handed to every job; zero
	// keeps the engine default (a quarter of node memory), which is usually
	// too generous when several jobs share a node.
	MemoryPerTask int64
	// SampleInterval is each job's metrics bucket width.
	SampleInterval sim.Duration

	// Audit arms the per-job conservation audits, the end-of-run leak sweep
	// over the shared environment, and the scheduler fairness invariants.
	Audit bool
	// StarvationPasses is the tenant-starvation threshold: an eligible
	// tenant passed over by this many consecutive admissions is declared
	// starved (default 64 — generous enough for legitimate 10:1 weight
	// skew, small enough to catch strict-priority lockout).
	StarvationPasses int
	// ShareTolerance is the relative normalized-service gap allowed between
	// two same-priority tenants under joint backlog, beyond a one-job
	// granularity allowance (default 0.35).
	ShareTolerance float64

	// Parallelism sets the intra-run worker pool width (sim.Env.SetWorkers).
	Parallelism int
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.BlockSize == 0 {
		c.BlockSize = 1 << 20
	}
	if c.MapSlotsPerNode == 0 {
		c.MapSlotsPerNode = 4
	}
	if c.ReduceSlotsPerNode == 0 {
		c.ReduceSlotsPerNode = 4
	}
	if c.Reducers == 0 {
		c.Reducers = c.Nodes
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = engine.SampleInterval
	}
	if c.StarvationPasses == 0 {
		c.StarvationPasses = 64
	}
	if c.ShareTolerance == 0 {
		c.ShareTolerance = 0.35
	}
}

// Validate rejects malformed tenant sets before any simulation runs.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("service: no tenants configured")
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("service: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("service: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		w := t.Weight
		if w == 0 {
			w = 1
		}
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
			return fmt.Errorf("service: tenant %q weight %g must be positive and finite", t.Name, t.Weight)
		}
		if t.MaxQueued < 0 || t.MaxRunning < 0 {
			return fmt.Errorf("service: tenant %q has negative quota", t.Name)
		}
	}
	return nil
}

// JobRequest is one job submission. The Job template supplies the user
// functions and costs; the service owns placement-facing fields (input and
// output paths aside, it overwrites Reducers, slot grants, and output
// handling).
type JobRequest struct {
	Tenant string
	Engine string // any name accepted by onepass.ParseEngine ("hadoop", "hop", "hash-hybrid", ..., "resident")
	Job    engine.Job
	// InputPath names a dataset registered with RegisterInput.
	InputPath string
	// Reducers overrides Config.Reducers when positive.
	Reducers int
	// MapSlotsPerNode / ReduceSlotsPerNode ask for a larger grant than the
	// default 1+1 per node. The request must fit the configured capacity.
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
}

// job is one queued/running/completed submission.
type job struct {
	id     int
	req    JobRequest
	tenant *tenant

	submitted sim.Time
	started   sim.Time
	finished  sim.Time

	mapGrant    int // per-node map slots held
	reduceGrant int // per-node reduce slots held
	units       int // total slot units held = (mapGrant+reduceGrant) * computeNodes

	res *engine.Result
}

// tenant is the live scheduling state behind one TenantConfig.
type tenant struct {
	cfg    TenantConfig
	weight float64

	queue   []*job
	running int

	// Service accounting: heldUnits integrates into slotSeconds between
	// accrual instants; normalized service (slotSeconds/weight) drives the
	// fair-share pick.
	heldUnits   int
	slotSeconds float64
	lastAccrual sim.Time

	// passedOver counts consecutive admissions that launched another tenant
	// while this one was eligible; starvedAt remembers the first violation
	// so the audit fires once.
	passedOver int
	starved    bool

	// maxJobNorm is the largest single completed job's normalized
	// slot-seconds — the granularity allowance in the slot-share check.
	maxJobNorm float64

	jobs      int
	rejected  int
	queueWait *metrics.Histogram // submit -> launch, ns
	latency   *metrics.Histogram // submit -> completion, ns
	exec      *metrics.Histogram // launch -> completion, ns
}

func (t *tenant) normService() float64 { return t.slotSeconds / t.weight }

// backlogged reports unmet demand: jobs waiting in queue.
func (t *tenant) backlogged() bool { return len(t.queue) > 0 }

// pairShare accumulates, for one ordered tenant pair, the service each side
// accrued while both were backlogged (joint-backlog window) and that
// window's length — the basis of the slot-share invariant.
type pairShare struct {
	jointTime    sim.Duration
	srvA, srvB   float64 // slot-seconds during joint backlog
	everBacklog  bool
	lastBothFrom sim.Time
}

// Service multiplexes jobs from many tenants over one simulated cluster.
type Service struct {
	cfg Config

	env *sim.Env
	cl  *cluster.Cluster
	d   *dfs.DFS

	tenants []*tenant // sorted by name: the deterministic iteration order
	byName  map[string]*tenant

	wake *sim.Trigger

	computeNodes int
	freeMap      int // free map slot units (per-node slots x compute nodes)
	freeReduce   int
	capMap       int
	capReduce    int

	nextID     int
	queued     int
	running    int
	submitters int // registered producers still live
	completed  []*job

	// pairs[i][j] for i<j tracks joint-backlog share accounting.
	pairs map[[2]int]*pairShare

	audit    *engine.Audit // service-level ledger; nil unless cfg.Audit
	jobFails []engine.AuditFailure
}

// New builds the service's private simulation substrate. Register inputs
// with RegisterInput, attach submitters (loadgen), then call Run.
func New(cfg Config) (*Service, error) {
	cfg.defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	env := sim.New()
	env.SetWorkers(cfg.Parallelism)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = cfg.Nodes
	if cfg.CoresPerNode > 0 {
		ccfg.CoresPerNode = cfg.CoresPerNode
	}
	if cfg.MemoryPerNode > 0 {
		ccfg.MemoryPerNode = cfg.MemoryPerNode
	}
	ccfg.DiskProfile = disk.HDD
	cl := cluster.New(env, ccfg)
	s := &Service{
		cfg:    cfg,
		env:    env,
		cl:     cl,
		d:      dfs.New(cl, cfg.BlockSize, 1),
		byName: make(map[string]*tenant),
		wake:   env.NewTrigger("service-wake"),
		pairs:  make(map[[2]int]*pairShare),
	}
	s.computeNodes = len(cl.ComputeNodes())
	s.capMap = cfg.MapSlotsPerNode * s.computeNodes
	s.capReduce = cfg.ReduceSlotsPerNode * s.computeNodes
	s.freeMap, s.freeReduce = s.capMap, s.capReduce
	for _, tc := range cfg.Tenants {
		w := tc.Weight
		if w == 0 {
			w = 1
		}
		t := &tenant{
			cfg: tc, weight: w,
			queueWait: metrics.NewHistogram(),
			latency:   metrics.NewHistogram(),
			exec:      metrics.NewHistogram(),
		}
		s.tenants = append(s.tenants, t)
		s.byName[tc.Name] = t
	}
	sort.Slice(s.tenants, func(i, j int) bool { return s.tenants[i].cfg.Name < s.tenants[j].cfg.Name })
	if cfg.Audit {
		s.audit = engine.NewAudit()
	}
	return s, nil
}

// Env exposes the simulation environment so load generators can spawn
// their submitter processes before Run.
func (s *Service) Env() *sim.Env { return s.env }

// RegisterInput registers a deterministic generated dataset jobs can name
// as their InputPath. Call before Run.
func (s *Service) RegisterInput(path string, size int64, gen func(block int, size int64) []byte) error {
	return s.d.RegisterGenerated(path, size, gen)
}

// AddSubmitter registers one producer process; the scheduler keeps draining
// until every registered submitter called SubmitterDone and all work
// finished.
func (s *Service) AddSubmitter() { s.submitters++ }

// SubmitterDone marks one producer finished.
func (s *Service) SubmitterDone() {
	s.submitters--
	if s.submitters < 0 {
		panic("service: SubmitterDone without AddSubmitter")
	}
	s.wake.Broadcast()
}

// Submit enqueues a job for req.Tenant at the current virtual instant. It
// returns an error (and rejects the job) when the tenant is unknown, the
// engine is unknown, the grant exceeds capacity, or the tenant's queue is
// full (MaxQueued admission control).
func (s *Service) Submit(p *sim.Proc, req JobRequest) error {
	t, ok := s.byName[req.Tenant]
	if !ok {
		return fmt.Errorf("service: unknown tenant %q", req.Tenant)
	}
	if !validEngine(req.Engine) {
		return fmt.Errorf("service: unknown engine %q", req.Engine)
	}
	mapGrant, reduceGrant := req.MapSlotsPerNode, req.ReduceSlotsPerNode
	if mapGrant == 0 {
		mapGrant = 1
	}
	if reduceGrant == 0 {
		reduceGrant = 1
	}
	if mapGrant < 0 || reduceGrant < 0 ||
		mapGrant > s.cfg.MapSlotsPerNode || reduceGrant > s.cfg.ReduceSlotsPerNode {
		return fmt.Errorf("service: grant %d+%d slots/node exceeds capacity %d+%d",
			mapGrant, reduceGrant, s.cfg.MapSlotsPerNode, s.cfg.ReduceSlotsPerNode)
	}
	if t.cfg.MaxQueued > 0 && len(t.queue) >= t.cfg.MaxQueued {
		t.rejected++
		return fmt.Errorf("service: tenant %q queue full (%d)", req.Tenant, t.cfg.MaxQueued)
	}
	s.accrueAll(p.Now())
	j := &job{
		id: s.nextID, req: req, tenant: t, submitted: p.Now(),
		mapGrant: mapGrant, reduceGrant: reduceGrant,
		units: (mapGrant + reduceGrant) * s.computeNodes,
	}
	s.nextID++
	t.queue = append(t.queue, j)
	s.queued++
	s.wake.Broadcast()
	return nil
}

func validEngine(name string) bool {
	_, err := onepass.ParseEngine(name)
	return err == nil
}

// accrueAll advances every tenant's slot-second integral — and every
// pair's joint-backlog window — to now. Called before any state change that
// affects holdings or backlog.
func (s *Service) accrueAll(now sim.Time) {
	for i, t := range s.tenants {
		if t.lastAccrual < now {
			dt := now.Sub(t.lastAccrual).Seconds()
			t.slotSeconds += float64(t.heldUnits) * dt
			_ = i
		}
	}
	// Joint-backlog pair accounting: while both tenants of a same-priority
	// pair have queued demand, their service rates should track their
	// weights; accumulate window length and in-window service.
	for i := 0; i < len(s.tenants); i++ {
		for k := i + 1; k < len(s.tenants); k++ {
			a, b := s.tenants[i], s.tenants[k]
			if a.cfg.Priority != b.cfg.Priority {
				continue
			}
			if a.backlogged() && b.backlogged() {
				ps := s.pair(i, k)
				dt := now.Sub(maxTime(a.lastAccrual, b.lastAccrual))
				if dt > 0 {
					ps.jointTime += dt
					ps.srvA += float64(a.heldUnits) * dt.Seconds()
					ps.srvB += float64(b.heldUnits) * dt.Seconds()
				}
				ps.everBacklog = true
			}
		}
	}
	for _, t := range s.tenants {
		t.lastAccrual = now
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func (s *Service) pair(i, k int) *pairShare {
	key := [2]int{i, k}
	ps, ok := s.pairs[key]
	if !ok {
		ps = &pairShare{}
		s.pairs[key] = ps
	}
	return ps
}

// eligible reports whether t can be admitted right now: demand queued and
// quota headroom.
func (s *Service) eligible(t *tenant) bool {
	if len(t.queue) == 0 {
		return false
	}
	if t.cfg.MaxRunning > 0 && t.running >= t.cfg.MaxRunning {
		return false
	}
	return true
}

// pick returns the admission choice under the fair-share rule: top priority
// class, then least normalized service, then lexical tenant name. Nil when
// no tenant is eligible.
func (s *Service) pick() *tenant {
	var best *tenant
	for _, t := range s.tenants {
		if !s.eligible(t) {
			continue
		}
		if best == nil ||
			t.cfg.Priority > best.cfg.Priority ||
			(t.cfg.Priority == best.cfg.Priority && t.normService() < best.normService()) {
			best = t
		}
	}
	return best
}

// admit launches fair-order head jobs until slots or demand run out.
func (s *Service) admit(p *sim.Proc) {
	for {
		t := s.pick()
		if t == nil {
			return
		}
		j := t.queue[0]
		if j.mapGrant*s.computeNodes > s.freeMap || j.reduceGrant*s.computeNodes > s.freeReduce {
			// The fair-order head does not fit: wait for slots instead of
			// skipping ahead, so a large job is never starved by small ones.
			return
		}
		s.launch(p, t, j)
	}
}

// launch grants j its slots, charges the pass-over counters, and starts the
// engine. Runs inside the scheduler process; spawning the engine's
// processes does not block.
func (s *Service) launch(p *sim.Proc, t *tenant, j *job) {
	now := p.Now()
	s.accrueAll(now)

	if s.audit != nil {
		s.checkFairPick(t)
		for _, o := range s.tenants {
			if o == t || !s.eligible(o) {
				continue
			}
			o.passedOver++
			if o.passedOver >= s.cfg.StarvationPasses && !o.starved {
				o.starved = true
				s.audit.Fail("tenant-starvation", "tenant "+o.cfg.Name,
					fmt.Sprintf("passed over by %d consecutive admissions while holding demand (%d queued)",
						o.passedOver, len(o.queue)))
			}
		}
		t.passedOver = 0
	}

	t.queue = t.queue[1:]
	s.queued--
	t.running++
	s.running++
	s.freeMap -= j.mapGrant * s.computeNodes
	s.freeReduce -= j.reduceGrant * s.computeNodes
	if s.audit != nil && (s.freeMap < 0 || s.freeReduce < 0) {
		s.audit.Fail("slot-conservation", "scheduler",
			fmt.Sprintf("free slots went negative: map %d, reduce %d", s.freeMap, s.freeReduce))
	}
	t.heldUnits += j.units
	j.started = now
	t.queueWait.Record(int64(now.Sub(j.submitted)))

	rt := engine.NewRuntimeSampled(s.env, s.cl, s.d, s.cfg.SampleInterval)
	if s.cfg.Audit {
		rt.Audit = engine.NewAudit()
		rt.Audit.SharedRuntime = true
	}
	jb := j.req.Job
	jb.InputPath = j.req.InputPath
	jb.OutputPath = fmt.Sprintf("out/job-%d", j.id)
	jb.DiscardOutput = true
	jb.RetainOutput = false
	jb.Reducers = j.req.Reducers
	if jb.Reducers == 0 {
		jb.Reducers = s.cfg.Reducers
	}
	jb.MapSlotsPerNode = j.mapGrant
	jb.ReduceSlotsPerNode = j.reduceGrant
	if s.cfg.MemoryPerTask > 0 {
		jb.MemoryPerTask = s.cfg.MemoryPerTask
	}
	done := func(cp *sim.Proc, res *engine.Result) {
		// The sampler's final tick is scheduled at this same instant but runs
		// only after this process blocks; yield once so the series include
		// the completion sample before FinishResult snapshots them.
		cp.Yield()
		rt.FinishResult(res)
		s.complete(cp, j, res)
	}
	eng, err := onepass.ParseEngine(j.req.Engine)
	if err == nil {
		switch eng {
		case onepass.Hadoop:
			err = hadoop.Start(rt, jb, hadoop.Options{}, done)
		case onepass.MapReduceOnline:
			err = hop.Start(rt, jb, hop.Options{DisableSnapshots: true}, done)
		case onepass.HashHybrid:
			err = core.Start(rt, jb, core.Options{Mode: core.HybridHash}, done)
		case onepass.HashIncremental:
			err = core.Start(rt, jb, core.Options{Mode: core.Incremental}, done)
		case onepass.HashHotKey:
			err = core.Start(rt, jb, core.Options{Mode: core.HotKey}, done)
		case onepass.Resident:
			err = resident.Start(rt, jb, resident.Options{}, done)
		default:
			err = fmt.Errorf("service: unknown engine %q", j.req.Engine)
		}
	}
	if err != nil {
		// Submit pre-validated the request; a Start failure here is a
		// configuration bug (e.g. unregistered input) that would otherwise
		// strand the job's slots. Fail loudly.
		panic(fmt.Sprintf("service: launching job %d (%s/%s): %v", j.id, j.req.Tenant, j.req.Engine, err))
	}
}

// checkFairPick re-derives the admission rule and records a fair-pick
// violation if the scheduler's choice disagrees — a regression net for
// future scheduler changes.
func (s *Service) checkFairPick(chosen *tenant) {
	if !s.eligible(chosen) {
		s.audit.Fail("fair-pick", "tenant "+chosen.cfg.Name, "admitted while ineligible")
		return
	}
	for _, o := range s.tenants {
		if o == chosen || !s.eligible(o) {
			continue
		}
		if o.cfg.Priority > chosen.cfg.Priority {
			s.audit.Fail("fair-pick", "tenant "+chosen.cfg.Name,
				fmt.Sprintf("admitted over higher-priority %s (%d > %d)", o.cfg.Name, o.cfg.Priority, chosen.cfg.Priority))
		} else if o.cfg.Priority == chosen.cfg.Priority && o.normService() < chosen.normService() {
			s.audit.Fail("fair-pick", "tenant "+chosen.cfg.Name,
				fmt.Sprintf("admitted with normalized service %.6f over %s at %.6f",
					chosen.normService(), o.cfg.Name, o.normService()))
		}
	}
}

// complete returns j's slots and records its latency. Runs inside the job's
// controller process at the completion instant.
func (s *Service) complete(p *sim.Proc, j *job, res *engine.Result) {
	now := p.Now()
	s.accrueAll(now)
	t := j.tenant
	t.heldUnits -= j.units
	t.running--
	s.running--
	s.freeMap += j.mapGrant * s.computeNodes
	s.freeReduce += j.reduceGrant * s.computeNodes
	j.finished = now
	j.res = res
	t.jobs++
	t.latency.Record(int64(now.Sub(j.submitted)))
	t.exec.Record(int64(now.Sub(j.started)))
	if norm := float64(j.units) * now.Sub(j.started).Seconds() / t.weight; norm > t.maxJobNorm {
		t.maxJobNorm = norm
	}
	for _, f := range res.AuditFailures {
		f.Where = fmt.Sprintf("job %d (%s/%s) %s", j.id, j.req.Tenant, j.req.Engine, f.Where)
		s.jobFails = append(s.jobFails, f)
	}
	s.completed = append(s.completed, j)
	s.wake.Broadcast()
}

// scheduler is the admission process: admit whatever fits, sleep on the
// wake trigger, exit when every submitter finished and all work drained.
func (s *Service) scheduler(p *sim.Proc) {
	for {
		s.admit(p)
		if s.submitters == 0 && s.queued == 0 && s.running == 0 {
			return
		}
		s.wake.Wait(p)
	}
}

// Run drives the simulation to completion and returns the service report.
// The returned error is non-nil when any armed invariant — per-job
// conservation, scheduler fairness, or the end-of-run leak sweep — failed;
// the report is returned either way.
func (s *Service) Run() (*Report, error) {
	s.env.Go("service-scheduler", s.scheduler)
	s.env.Run()
	s.accrueAll(s.env.Now())
	if s.audit != nil {
		if s.freeMap != s.capMap || s.freeReduce != s.capReduce {
			s.audit.Fail("slot-conservation", "scheduler",
				fmt.Sprintf("slots not returned: map %d/%d, reduce %d/%d free at shutdown",
					s.freeMap, s.capMap, s.freeReduce, s.capReduce))
		}
		s.checkShares()
		s.audit.CheckSim(s.env, s.cl)
	}
	rep := s.report()
	if len(rep.Failures) > 0 {
		return rep, fmt.Errorf("service: %d invariant failure(s):\n%s",
			len(rep.Failures), engine.FormatAuditFailures(rep.Failures))
	}
	return rep, nil
}

// checkShares enforces the slot-share invariant: for every same-priority
// tenant pair, normalized service accrued during joint-backlog windows must
// agree within ShareTolerance plus a one-job granularity allowance. A
// tenant whose weight entitles it to slot-time but accrued none under joint
// backlog fails here even before the starvation counter trips.
func (s *Service) checkShares() {
	for i := 0; i < len(s.tenants); i++ {
		for k := i + 1; k < len(s.tenants); k++ {
			ps, ok := s.pairs[[2]int{i, k}]
			if !ok || !ps.everBacklog {
				continue
			}
			a, b := s.tenants[i], s.tenants[k]
			// Windows shorter than a couple of completed jobs are dominated
			// by non-preemptive granularity; skip them.
			floor := 2 * (a.maxJobNorm*a.weight + b.maxJobNorm*b.weight) / float64(s.capMap+s.capReduce)
			if ps.jointTime.Seconds() < floor || ps.jointTime == 0 {
				continue
			}
			na := ps.srvA / a.weight
			nb := ps.srvB / b.weight
			gap := math.Abs(na - nb)
			allow := s.cfg.ShareTolerance*math.Max(na, nb) + 2*math.Max(a.maxJobNorm, b.maxJobNorm)
			if gap > allow {
				s.audit.Fail("slot-share", fmt.Sprintf("tenants %s/%s", a.cfg.Name, b.cfg.Name),
					fmt.Sprintf("normalized service gap %.3f exceeds %.3f over %.1fs joint backlog (%s=%.3f, %s=%.3f per unit weight)",
						gap, allow, ps.jointTime.Seconds(), a.cfg.Name, na, b.cfg.Name, nb))
			}
		}
	}
}
