// Package dfs is the HDFS stand-in: a block-oriented distributed file
// system over the simulated cluster's disks. Files are split into fixed-size
// blocks placed round-robin across storage nodes with optional replication;
// block granularity drives MapReduce task granularity, and locality-aware
// reads let the scheduler place map tasks next to their data, exactly the
// two roles HDFS plays in the paper's §II description.
//
// Input datasets are registered with a deterministic per-block content
// generator and materialized lazily on read, so a simulated 256 MB (or GB)
// dataset does not have to live in host memory all at once.
package dfs

import (
	"fmt"
	"sort"
	"strings"

	"onepass/internal/cluster"
	"onepass/internal/sim"
)

// DefaultBlockSize matches Hadoop's default of 64 MB.
const DefaultBlockSize = 64 << 20

// Block is one block of a DFS file.
type Block struct {
	Path  string
	Index int
	Size  int64
	// AvailableAt is when the block finishes arriving into the system —
	// zero for preloaded data, staggered for streams. Schedulers must not
	// start a map task on a block before this instant.
	AvailableAt sim.Time
	// replicas are node IDs hosting the block; dead replicas are removed by
	// failure injection.
	replicas []int
	gen      func() []byte
	// mem marks a memory-resident block (see RegisterResident): reads are
	// served from the hosting node's memory and charge no disk I/O, only
	// the network transfer when the reader is remote.
	mem bool
}

// Resident reports whether the block is memory-resident.
func (b *Block) Resident() bool { return b.mem }

// Replicas returns the IDs of nodes currently holding the block.
func (b *Block) Replicas() []int { return b.replicas }

// Peek returns the block contents without charging any I/O — for tests and
// verification only; simulated reads go through DFS.ReadBlock.
func (b *Block) Peek() []byte { return b.gen() }

// fileMeta is the NameNode-side record of one file.
type fileMeta struct {
	path   string
	blocks []*Block
	size   int64
	// sink output files track size only.
	discard bool
}

// DFS is the distributed file system.
type DFS struct {
	cluster     *cluster.Cluster
	blockSize   int64
	replication int
	files       map[string]*fileMeta
	nextPlace   int
}

// New creates a DFS over c with the given block size and replication
// factor. The paper's configuration used 64 MB blocks and replication 1.
func New(c *cluster.Cluster, blockSize int64, replication int) *DFS {
	if blockSize <= 0 {
		panic("dfs: block size must be positive")
	}
	storage := len(c.StorageNodes())
	if replication < 1 {
		replication = 1
	}
	if replication > storage {
		replication = storage
	}
	return &DFS{cluster: c, blockSize: blockSize, replication: replication, files: make(map[string]*fileMeta)}
}

// BlockSize returns the configured block size.
func (d *DFS) BlockSize() int64 { return d.blockSize }

// RegisterGenerated creates a preloaded file of totalSize bytes whose block
// contents come from gen(blockIndex, blockSize). gen must be deterministic:
// re-reads (e.g. by a re-executed task) must observe identical bytes.
func (d *DFS) RegisterGenerated(path string, totalSize int64, gen func(block int, size int64) []byte) error {
	return d.RegisterStream(path, totalSize, 0, gen)
}

// RegisterStream creates a file whose blocks *arrive over time* at rate
// bytes/second (0 = preloaded): block i becomes available once its last
// byte has streamed in. This is the paper's one-pass analytics setting —
// the query runs while the data is still arriving, instead of after a
// separate loading phase.
func (d *DFS) RegisterStream(path string, totalSize int64, rate float64, gen func(block int, size int64) []byte) error {
	if _, ok := d.files[path]; ok {
		return fmt.Errorf("dfs: file %q already exists", path)
	}
	meta := &fileMeta{path: path, size: totalSize}
	storage := d.cluster.StorageNodes()
	nBlocks := int((totalSize + d.blockSize - 1) / d.blockSize)
	var streamed int64
	for i := 0; i < nBlocks; i++ {
		size := d.blockSize
		if int64(i+1)*d.blockSize > totalSize {
			size = totalSize - int64(i)*d.blockSize
		}
		b := &Block{Path: path, Index: i, Size: size}
		if rate > 0 {
			streamed += size
			b.AvailableAt = sim.Time(float64(streamed) / rate * float64(sim.Second))
		}
		for r := 0; r < d.replication; r++ {
			node := storage[(d.nextPlace+r)%len(storage)].ID
			b.replicas = append(b.replicas, node)
		}
		d.nextPlace++
		idx, sz := i, size
		b.gen = func() []byte { return gen(idx, sz) }
		meta.blocks = append(meta.blocks, b)
	}
	d.files[path] = meta
	return nil
}

// Blocks returns the blocks of a file in order.
func (d *DFS) Blocks(path string) ([]*Block, error) {
	meta, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", path)
	}
	return meta.blocks, nil
}

// BlocksUnder returns the blocks of every file whose path starts with
// prefix + "/", in path order — how a chained job reads the part files a
// previous job wrote under its output path.
func (d *DFS) BlocksUnder(prefix string) ([]*Block, error) {
	var paths []string
	for p := range d.files {
		if strings.HasPrefix(p, prefix+"/") {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("dfs: no files under %q", prefix)
	}
	sort.Strings(paths)
	var out []*Block
	for _, p := range paths {
		for _, b := range d.files[p].blocks {
			// Shallow-copy with a globally unique index: engines use the
			// block index as the map-task id, and every part file starts
			// its own numbering at zero.
			nb := *b
			nb.Index = len(out)
			out = append(out, &nb)
		}
	}
	return out, nil
}

// Size returns the total size of a file.
func (d *DFS) Size(path string) (int64, error) {
	meta, ok := d.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: file %q not found", path)
	}
	return meta.size, nil
}

// Exists reports whether path exists.
func (d *DFS) Exists(path string) bool {
	_, ok := d.files[path]
	return ok
}

// Paths lists all file paths, sorted.
func (d *DFS) Paths() []string {
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// IsLocal reports whether the block has a replica on node.
func (b *Block) IsLocal(node int) bool {
	for _, r := range b.replicas {
		if r == node {
			return true
		}
	}
	return false
}

// ReadBlock reads a block from the perspective of readerNode: it charges a
// sequential read on the hosting replica's DFS device (preferring a local
// replica) plus a network transfer when remote, and returns the block
// contents. It fails only if every replica has been lost.
func (d *DFS) ReadBlock(p *sim.Proc, b *Block, readerNode int) ([]byte, error) {
	if len(b.replicas) == 0 {
		return nil, fmt.Errorf("dfs: block %s[%d] has no live replicas", b.Path, b.Index)
	}
	src := b.replicas[0]
	for _, r := range b.replicas {
		if r == readerNode {
			src = r
			break
		}
	}
	if !b.mem {
		d.cluster.Node(src).DFSDevice().Read(p, b.Size, true)
	}
	d.cluster.Net.Transfer(p, src, readerNode, b.Size)
	return b.gen(), nil
}

// RegisterResident publishes data as a memory-resident single-block file
// hosted on node — the resident engine's in-memory hand-off between the
// jobs of a chain. The file lives in the same namespace as disk-backed
// files, so any engine (or the reference checker) can read it; reads charge
// no disk I/O, which is exactly the M3R saving the chained-iteration
// experiments measure. The caller must not mutate data afterwards.
func (d *DFS) RegisterResident(path string, node int, data []byte) error {
	if _, ok := d.files[path]; ok {
		return fmt.Errorf("dfs: file %q already exists", path)
	}
	b := &Block{Path: path, Index: 0, Size: int64(len(data)), replicas: []int{node}, mem: true}
	b.gen = func() []byte { return data }
	d.files[path] = &fileMeta{path: path, size: int64(len(data)), blocks: []*Block{b}}
	return nil
}

// KillReplica removes node's replica of block idx of path, simulating a
// DataNode loss. Reads fall back to surviving replicas.
func (d *DFS) KillReplica(path string, idx, node int) error {
	meta, ok := d.files[path]
	if !ok || idx < 0 || idx >= len(meta.blocks) {
		return fmt.Errorf("dfs: no block %s[%d]", path, idx)
	}
	b := meta.blocks[idx]
	kept := b.replicas[:0]
	for _, r := range b.replicas {
		if r != node {
			kept = append(kept, r)
		}
	}
	b.replicas = kept
	return nil
}

// Writer appends job output to a DFS file from one node. With replication
// r, each append is written to the local DFS device and transferred to and
// written on r-1 follower nodes, like the HDFS write pipeline.
type Writer struct {
	dfs     *DFS
	meta    *fileMeta
	node    int
	targets []int
	// buf accumulates retained content; the file's single logical block
	// aliases it, so appends stay amortized-linear.
	buf []byte
}

// CreateWriter opens path for writing from node. If discard is true, block
// payloads are not retained (sink mode for large benchmark outputs).
func (d *DFS) CreateWriter(path string, node int, discard bool) (*Writer, error) {
	if _, ok := d.files[path]; ok {
		return nil, fmt.Errorf("dfs: file %q already exists", path)
	}
	meta := &fileMeta{path: path, discard: discard}
	d.files[path] = meta
	w := &Writer{dfs: d, meta: meta, node: node}
	// Pipeline targets: this node (or the first storage node if this node
	// doesn't store DFS data) plus replication-1 followers.
	storage := d.cluster.StorageNodes()
	primary := -1
	for i, n := range storage {
		if n.ID == node {
			primary = i
			break
		}
	}
	if primary < 0 {
		primary = node % len(storage)
	}
	for r := 0; r < d.replication; r++ {
		w.targets = append(w.targets, storage[(primary+r)%len(storage)].ID)
	}
	return w, nil
}

// Append writes data to the file through the replication pipeline.
func (w *Writer) Append(p *sim.Proc, data []byte) {
	n := int64(len(data))
	for _, t := range w.targets {
		w.dfs.cluster.Net.Transfer(p, w.node, t, n)
		w.dfs.cluster.Node(t).DFSDevice().Write(p, n, true)
	}
	w.meta.size += n
	if !w.meta.discard {
		// Retained output is modelled as a single logical block on the
		// primary target, which is all tests need to verify contents.
		if len(w.meta.blocks) == 0 {
			b := &Block{Path: w.meta.path, Index: 0, replicas: append([]int(nil), w.targets...)}
			b.gen = func() []byte { return w.buf }
			w.meta.blocks = append(w.meta.blocks, b)
		}
		w.buf = append(w.buf, data...)
		w.meta.blocks[0].Size += n
	}
}
