package dfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"onepass/internal/cluster"
	"onepass/internal/sim"
)

func newTestCluster(nodes int, split bool) (*sim.Env, *cluster.Cluster) {
	env := sim.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = 2
	cfg.SplitStorage = split
	return env, cluster.New(env, cfg)
}

func blockGen(block int, size int64) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = byte((block*31 + i) % 253)
	}
	return out
}

func TestRegisterSplitsIntoBlocks(t *testing.T) {
	_, c := newTestCluster(4, false)
	d := New(c, 1000, 1)
	if err := d.RegisterGenerated("in", 2500, blockGen); err != nil {
		t.Fatal(err)
	}
	blocks, err := d.Blocks("in")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	if blocks[0].Size != 1000 || blocks[2].Size != 500 {
		t.Fatalf("sizes = %d, %d", blocks[0].Size, blocks[2].Size)
	}
	if sz, _ := d.Size("in"); sz != 2500 {
		t.Fatalf("size = %d", sz)
	}
	if !d.Exists("in") || d.Exists("out") {
		t.Fatal("existence checks failed")
	}
	if paths := d.Paths(); len(paths) != 1 || paths[0] != "in" {
		t.Fatalf("paths = %v", paths)
	}
}

func TestRegisterDuplicateFails(t *testing.T) {
	_, c := newTestCluster(2, false)
	d := New(c, 1000, 1)
	if err := d.RegisterGenerated("in", 100, blockGen); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterGenerated("in", 100, blockGen); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestPlacementRoundRobinAndReplication(t *testing.T) {
	_, c := newTestCluster(4, false)
	d := New(c, 100, 2)
	if err := d.RegisterGenerated("in", 400, blockGen); err != nil {
		t.Fatal(err)
	}
	blocks, _ := d.Blocks("in")
	counts := make(map[int]int)
	for _, b := range blocks {
		if len(b.Replicas()) != 2 {
			t.Fatalf("replicas = %v", b.Replicas())
		}
		if b.Replicas()[0] == b.Replicas()[1] {
			t.Fatal("replicas must be distinct nodes")
		}
		for _, r := range b.Replicas() {
			counts[r]++
		}
	}
	// 4 blocks x 2 replicas over 4 nodes round-robin: each node gets 2.
	for node, n := range counts {
		if n != 2 {
			t.Fatalf("node %d holds %d replicas, want 2", node, n)
		}
	}
}

func TestReplicationClampedToStorageNodes(t *testing.T) {
	_, c := newTestCluster(2, false)
	d := New(c, 100, 5)
	d.RegisterGenerated("in", 100, blockGen)
	blocks, _ := d.Blocks("in")
	if len(blocks[0].Replicas()) != 2 {
		t.Fatalf("replicas = %v, want clamped to 2", blocks[0].Replicas())
	}
}

func TestLocalReadAvoidsNetwork(t *testing.T) {
	env, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	d.RegisterGenerated("in", 1000, blockGen)
	blocks, _ := d.Blocks("in")
	local := blocks[0].Replicas()[0]
	env.Go("r", func(p *sim.Proc) {
		data, err := d.ReadBlock(p, blocks[0], local)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(data, blockGen(0, 1000)) {
			t.Error("content mismatch")
		}
	})
	env.Run()
	if c.Net.BytesTransferred() != 0 {
		t.Fatalf("local read moved %v network bytes", c.Net.BytesTransferred())
	}
}

func TestRemoteReadUsesNetwork(t *testing.T) {
	env, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	d.RegisterGenerated("in", 1000, blockGen)
	blocks, _ := d.Blocks("in")
	owner := blocks[0].Replicas()[0]
	remote := (owner + 1) % 3
	env.Go("r", func(p *sim.Proc) {
		if _, err := d.ReadBlock(p, blocks[0], remote); err != nil {
			t.Error(err)
		}
	})
	env.Run()
	if c.Net.BytesTransferred() != 1000 {
		t.Fatalf("network bytes = %v, want 1000", c.Net.BytesTransferred())
	}
	if got := c.Node(owner).DFSDevice().BytesRead(); got != 1000 {
		t.Fatalf("owner disk read = %v", got)
	}
}

func TestIsLocal(t *testing.T) {
	_, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	d.RegisterGenerated("in", 1000, blockGen)
	blocks, _ := d.Blocks("in")
	owner := blocks[0].Replicas()[0]
	if !blocks[0].IsLocal(owner) {
		t.Fatal("owner should be local")
	}
	if blocks[0].IsLocal(owner + 1) {
		t.Fatal("non-owner should not be local")
	}
}

func TestReplicaFailover(t *testing.T) {
	env, c := newTestCluster(3, false)
	d := New(c, 1000, 2)
	d.RegisterGenerated("in", 1000, blockGen)
	blocks, _ := d.Blocks("in")
	first := blocks[0].Replicas()[0]
	if err := d.KillReplica("in", 0, first); err != nil {
		t.Fatal(err)
	}
	env.Go("r", func(p *sim.Proc) {
		data, err := d.ReadBlock(p, blocks[0], first)
		if err != nil {
			t.Errorf("read after replica loss: %v", err)
		}
		if !bytes.Equal(data, blockGen(0, 1000)) {
			t.Error("content mismatch after failover")
		}
	})
	env.Run()
}

func TestAllReplicasLostFails(t *testing.T) {
	env, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	d.RegisterGenerated("in", 1000, blockGen)
	blocks, _ := d.Blocks("in")
	d.KillReplica("in", 0, blocks[0].Replicas()[0])
	env.Go("r", func(p *sim.Proc) {
		if _, err := d.ReadBlock(p, blocks[0], 0); err == nil {
			t.Error("expected error with no replicas")
		}
	})
	env.Run()
}

func TestKillReplicaMissingBlock(t *testing.T) {
	_, c := newTestCluster(2, false)
	d := New(c, 1000, 1)
	if err := d.KillReplica("nope", 0, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	env, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	env.Go("w", func(p *sim.Proc) {
		w, err := d.CreateWriter("out", 1, false)
		if err != nil {
			t.Error(err)
			return
		}
		w.Append(p, []byte("hello "))
		w.Append(p, []byte("world"))
	})
	env.Run()
	if sz, _ := d.Size("out"); sz != 11 {
		t.Fatalf("size = %d", sz)
	}
	blocks, _ := d.Blocks("out")
	if got := blocks[0].gen(); !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("content = %q", got)
	}
	// Written on node 1's device.
	if got := c.Node(1).DFSDevice().BytesWritten(); got != 11 {
		t.Fatalf("disk bytes = %v", got)
	}
}

func TestWriterReplicationPipeline(t *testing.T) {
	env, c := newTestCluster(3, false)
	d := New(c, 1000, 2)
	env.Go("w", func(p *sim.Proc) {
		w, err := d.CreateWriter("out", 0, true)
		if err != nil {
			t.Error(err)
			return
		}
		w.Append(p, make([]byte, 500))
	})
	env.Run()
	if got := c.DiskBytesWritten(); got != 1000 {
		t.Fatalf("total disk writes = %v, want 1000 (2 replicas)", got)
	}
	if got := c.Net.BytesTransferred(); got != 500 {
		t.Fatalf("network = %v, want 500 (one remote follower)", got)
	}
}

func TestWriterFromComputeNodeInSplitTopology(t *testing.T) {
	env, c := newTestCluster(4, true) // storage {0,1}, compute {2,3}
	d := New(c, 1000, 1)
	env.Go("w", func(p *sim.Proc) {
		w, err := d.CreateWriter("out", 3, true)
		if err != nil {
			t.Error(err)
			return
		}
		w.Append(p, make([]byte, 100))
	})
	env.Run()
	// Output must land on a storage node's disk, over the network.
	if got := c.Net.BytesTransferred(); got != 100 {
		t.Fatalf("network = %v, want 100", got)
	}
	if got := c.Node(3).DFSDevice().BytesWritten(); got != 0 {
		t.Fatalf("compute node wrote %v locally, want 0", got)
	}
}

func TestCreateWriterDuplicateFails(t *testing.T) {
	_, c := newTestCluster(2, false)
	d := New(c, 1000, 1)
	if _, err := d.CreateWriter("x", 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateWriter("x", 0, true); err == nil {
		t.Fatal("expected duplicate error")
	}
}

// Property: for any file size and block size, the blocks partition the file
// exactly and every block read returns its generator content.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(size uint32, blockSize uint16) bool {
		bs := int64(blockSize%5000) + 1
		total := int64(size % 100000)
		_, c := newTestCluster(3, false)
		d := New(c, bs, 1)
		if err := d.RegisterGenerated("f", total, func(b int, s int64) []byte { return make([]byte, s) }); err != nil {
			return false
		}
		blocks, _ := d.Blocks("f")
		var sum int64
		for i, b := range blocks {
			if b.Index != i {
				return false
			}
			if b.Size <= 0 || b.Size > bs {
				return false
			}
			sum += b.Size
		}
		wantBlocks := int((total + bs - 1) / bs)
		return sum == total && len(blocks) == wantBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyGenerationIsDeterministic(t *testing.T) {
	env, c := newTestCluster(2, false)
	d := New(c, 1<<10, 1)
	calls := 0
	d.RegisterGenerated("in", 1<<10, func(b int, s int64) []byte {
		calls++
		return blockGen(b, s)
	})
	blocks, _ := d.Blocks("in")
	var first, second []byte
	env.Go("r", func(p *sim.Proc) {
		first, _ = d.ReadBlock(p, blocks[0], 0)
		second, _ = d.ReadBlock(p, blocks[0], 0)
	})
	env.Run()
	if calls != 2 {
		t.Fatalf("generator calls = %d, want 2 (lazy, uncached)", calls)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-reads must be identical")
	}
}

func TestRegisterStreamArrivalTimes(t *testing.T) {
	_, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	// 4 blocks at 500 bytes/sec: block i available at (i+1)*2 seconds.
	if err := d.RegisterStream("s", 4000, 500, blockGen); err != nil {
		t.Fatal(err)
	}
	blocks, _ := d.Blocks("s")
	for i, b := range blocks {
		want := sim.Time(int64(i+1) * 2 * int64(sim.Second))
		if b.AvailableAt != want {
			t.Fatalf("block %d available at %v, want %v", i, b.AvailableAt, want)
		}
	}
	// Preloaded files have zero arrival times.
	d.RegisterGenerated("p", 2000, blockGen)
	pre, _ := d.Blocks("p")
	for _, b := range pre {
		if b.AvailableAt != 0 {
			t.Fatal("preloaded block has nonzero arrival time")
		}
	}
}

func TestBlocksUnderPrefix(t *testing.T) {
	_, c := newTestCluster(3, false)
	d := New(c, 1000, 1)
	d.RegisterGenerated("out/part-0", 1500, blockGen)
	d.RegisterGenerated("out/part-1", 800, blockGen)
	d.RegisterGenerated("outlier", 500, blockGen)
	blocks, err := d.BlocksUnder("out")
	if err != nil {
		t.Fatal(err)
	}
	// part-0 has 2 blocks, part-1 has 1; "outlier" must not match.
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	for i, b := range blocks {
		if b.Index != i {
			t.Fatalf("block %d has index %d — chained task ids must be unique", i, b.Index)
		}
	}
	if _, err := d.BlocksUnder("nope"); err == nil {
		t.Fatal("missing prefix must error")
	}
}
