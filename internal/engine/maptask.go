package engine

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// Partitioner assigns a key to one of n reduce partitions.
type Partitioner func(key []byte, n int) int

// ExecuteMap performs the data-path of one map task shared by every
// engine: read the block (DFS I/O), iterate its records (parse CPU), run
// the map function (CPU), and partition the emitted pairs into a buffer
// (hash CPU). Sorting/combining/writing are engine-specific and happen on
// the returned buffer.
func (rt *Runtime) ExecuteMap(p *sim.Proc, node *cluster.Node, job *Job, b *dfs.Block, part Partitioner) (*kv.Buffer, error) {
	costs := job.Costs.merged()
	data, err := rt.DFS.ReadBlock(p, b, node.ID)
	if err != nil {
		return nil, fmt.Errorf("map task %s[%d]: %w", b.Path, b.Index, err)
	}
	rt.Counters.Add(CtrMapInputBytes, float64(len(data)))

	// Parse: charge per input byte at the format's rate.
	parseNs := costs.ParseNsPerByte
	if job.BinaryInput {
		parseNs = costs.BinaryParseNsPerByte
	}
	node.Compute(p, Dur(float64(len(data)), parseNs), PhaseParse)

	// Map function over real records.
	buf := kv.NewBuffer(len(data))
	records := 0
	var outBytes int64
	emit := func(key, val []byte) {
		pt := part(key, job.Reducers)
		buf.Add(pt, key, val)
		outBytes += int64(len(key) + len(val))
	}
	job.Reader(data, func(rec []byte) {
		records++
		job.Map(rec, emit)
	})
	node.Compute(p, Dur(float64(records), costs.MapNsPerRecord)+
		Dur(float64(outBytes), costs.MapNsPerOutputByte), PhaseMapFn)
	node.Compute(p, Dur(float64(records), costs.FrameworkNsPerRecord), PhaseFramework)
	// Partition decisions (one hash per emitted pair).
	node.Compute(p, Dur(float64(buf.Len()), costs.HashNs), PhaseHash)
	rt.Counters.Add(CtrHashOps, float64(buf.Len()))

	rt.Counters.Add(CtrMapInputRecords, float64(records))
	rt.Counters.Add(CtrMapOutputRecords, float64(buf.Len()))
	rt.Counters.Add(CtrMapOutputBytes, float64(outBytes))
	if rt.Auditing() {
		rt.Audit.MapRawPairs(b.Index, outBytes)
	}
	return buf, nil
}

// CombineSorted applies the job's combiner to each (partition, key) group
// of an already-sorted buffer and returns the combined buffer plus the
// number of input values consumed (for CPU charging). Without a combiner it
// returns the input unchanged.
func CombineSorted(job *Job, buf *kv.Buffer) (*kv.Buffer, int) {
	if job.Combine == nil || buf.Len() == 0 {
		return buf, 0
	}
	out := kv.NewBuffer(int(buf.Bytes()))
	inputs := 0
	i := 0
	var vals [][]byte // reused across groups; the combiner must not retain it
	for i < buf.Len() {
		p := buf.Partition(i)
		key := buf.Key(i)
		j := i + 1
		for j < buf.Len() && buf.Partition(j) == p && kv.Compare(buf.Key(j), key, nil) == 0 {
			j++
		}
		vals = vals[:0]
		for k := i; k < j; k++ {
			vals = append(vals, buf.Val(k))
		}
		inputs += len(vals)
		job.Combine(key, vals, func(k, v []byte) { out.Add(p, k, v) })
		i = j
	}
	return out, inputs
}

// WriteMapOutput persists a (sorted or partition-grouped) buffer as one
// partition-indexed scratch file on the node's scratch store — the
// synchronous map-output write required for fault tolerance (§III.B.2).
// It returns the MapOutput for shuffle registration.
func (rt *Runtime) WriteMapOutput(p *sim.Proc, node *cluster.Node, job *Job, taskID int, buf *kv.Buffer) *MapOutput {
	writeStart := p.Now()
	costs := job.Costs.merged()
	out := NewMapOutput(p, node.ScratchStore(),
		fmt.Sprintf("%s/map-%05d/file.out", job.Name, taskID),
		taskID, node.ID, job.Reducers,
		func(r int) []byte {
			lo, hi := buf.PartitionRange(r)
			return buf.EncodeRange(lo, hi)
		})
	total := out.File.Size()
	node.Compute(p, Dur(float64(total), costs.SerializeNsPerByte), PhaseMapFn)
	rt.Counters.Add(CtrMapWrittenBytes, float64(total))
	// §III.B.2: how long the synchronous map-output write takes relative to
	// the whole map task (the paper measured 1.3 s of 21.6 s ≈ 6%).
	rt.Counters.Add(CtrMapOutputWriteSeconds, p.Now().Sub(writeStart).Seconds())
	if rt.Tracing() {
		rt.Emit(trace.OutputWrite, "map-output", node.ID, taskID, 0,
			trace.Num("bytes", float64(total)),
			trace.Num("seconds", p.Now().Sub(writeStart).Seconds()))
	}
	return out
}
