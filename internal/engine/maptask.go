package engine

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/kv"
	"onepass/internal/metrics"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// Partitioner assigns a key to one of n reduce partitions.
type Partitioner func(key []byte, n int) int

// ExecuteMap performs the data-path of one map task shared by every
// engine: read the block (DFS I/O), iterate its records (parse CPU), run
// the map function (CPU), and partition the emitted pairs into a buffer
// (hash CPU). Sorting/combining/writing are engine-specific and happen on
// the returned buffer.
func (rt *Runtime) ExecuteMap(p *sim.Proc, node *cluster.Node, job *Job, b *dfs.Block, part Partitioner) (*kv.Buffer, error) {
	return rt.ExecuteMapWith(p, node, job, b, part, nil)
}

// ExecuteMapWith is ExecuteMap with an engine-supplied post step: pure data
// work over the finished buffer (sort, combine, chunk encoding) that runs
// inside the same dispatched closure as the map loop, so with the worker
// pool enabled it overlaps other tasks' virtual I/O and compute. post must
// follow the StartWork ownership rules — no Runtime, Proc, or shared-
// scratch access — and job should be the per-task clone from TaskJob when
// the pool is on. The CPU charges for whatever post did are the caller's
// responsibility, after this returns.
func (rt *Runtime) ExecuteMapWith(p *sim.Proc, node *cluster.Node, job *Job, b *dfs.Block, part Partitioner, post func(*kv.Buffer)) (*kv.Buffer, error) {
	costs := job.Costs.merged()
	data, err := rt.DFS.ReadBlock(p, b, node.ID)
	if err != nil {
		return nil, fmt.Errorf("map task %s[%d]: %w", b.Path, b.Index, err)
	}
	rt.Counters.Add(CtrMapInputBytes, float64(len(data)))

	// The record loop is pure data work: it reads only the fetched block and
	// writes only the task-owned buffer, two locals, and a task-owned
	// counter delta. Dispatch it (plus the engine's post step) to the pool,
	// overlapping the parse charge below, which depends only on len(data).
	// Serially the closure runs inline here — either way it executes zero
	// virtual operations, so the event schedule is identical in both modes.
	buf := kv.NewBuffer(len(data))
	records := 0
	var outBytes int64
	var delta metrics.Delta
	work := rt.StartJobWork(p, job, func() {
		emit := func(key, val []byte) {
			pt := part(key, job.Reducers)
			buf.Add(pt, key, val)
			outBytes += int64(len(key) + len(val))
		}
		job.Reader(data, func(rec []byte) {
			records++
			job.Map(rec, emit)
		})
		if post != nil {
			post(buf)
		}
		// Counter increments stay in the closure's own delta — never the
		// shared Counters bag, whose summation order would then depend on
		// real-goroutine interleaving — and merge at the join below.
		delta.Add(CtrMapInputRecords, float64(records))
		delta.Add(CtrMapOutputRecords, float64(buf.Len()))
		delta.Add(CtrMapOutputBytes, float64(outBytes))
	})

	// Parse: charge per input byte at the format's rate.
	parseNs := costs.ParseNsPerByte
	if job.BinaryInput {
		parseNs = costs.BinaryParseNsPerByte
	}
	node.Compute(p, Dur(float64(len(data)), parseNs), PhaseParse)
	work.Wait()
	delta.ApplyTo(rt.Counters)

	node.Compute(p, Dur(float64(records), costs.MapNsPerRecord)+
		Dur(float64(outBytes), costs.MapNsPerOutputByte), PhaseMapFn)
	node.Compute(p, Dur(float64(records), costs.FrameworkNsPerRecord), PhaseFramework)
	// Partition decisions (one hash per emitted pair).
	node.Compute(p, Dur(float64(buf.Len()), costs.HashNs), PhaseHash)
	rt.Counters.Add(CtrHashOps, float64(buf.Len()))
	if rt.Auditing() {
		rt.Audit.MapRawPairs(b.Index, outBytes)
	}
	return buf, nil
}

// CombineSorted applies the job's effective combiner (explicit Combine or
// one derived from a declared Monoid) to each (partition, key) group of an
// already-sorted buffer and returns the combined buffer plus the number of
// input values consumed (for CPU charging). Without a combiner it returns
// the input unchanged.
func CombineSorted(job *Job, buf *kv.Buffer) (*kv.Buffer, int) {
	combine := job.EffectiveCombine()
	if combine == nil || buf.Len() == 0 {
		return buf, 0
	}
	out := kv.NewBuffer(int(buf.Bytes()))
	inputs := 0
	i := 0
	var vals [][]byte // reused across groups; the combiner must not retain it
	for i < buf.Len() {
		p := buf.Partition(i)
		key := buf.Key(i)
		j := i + 1
		for j < buf.Len() && buf.Partition(j) == p && kv.Compare(buf.Key(j), key, nil) == 0 {
			j++
		}
		vals = vals[:0]
		for k := i; k < j; k++ {
			vals = append(vals, buf.Val(k))
		}
		inputs += len(vals)
		combine(key, vals, func(k, v []byte) { out.Add(p, k, v) })
		i = j
	}
	return out, inputs
}

// WriteMapOutput persists a (sorted or partition-grouped) buffer as one
// partition-indexed scratch file on the node's scratch store — the
// synchronous map-output write required for fault tolerance (§III.B.2).
// It returns the MapOutput for shuffle registration.
func (rt *Runtime) WriteMapOutput(p *sim.Proc, node *cluster.Node, job *Job, taskID int, buf *kv.Buffer) *MapOutput {
	writeStart := p.Now()
	costs := job.Costs.merged()
	out := NewMapOutput(p, node.ScratchStore(),
		fmt.Sprintf("%s/map-%05d/file.out", job.Name, taskID),
		taskID, node.ID, job.Reducers,
		func(r int) []byte {
			lo, hi := buf.PartitionRange(r)
			return buf.EncodeRange(lo, hi)
		})
	total := out.File.Size()
	node.Compute(p, Dur(float64(total), costs.SerializeNsPerByte), PhaseMapFn)
	rt.Counters.Add(CtrMapWrittenBytes, float64(total))
	// §III.B.2: how long the synchronous map-output write takes relative to
	// the whole map task (the paper measured 1.3 s of 21.6 s ≈ 6%).
	rt.Counters.Add(CtrMapOutputWriteSeconds, p.Now().Sub(writeStart).Seconds())
	if rt.Tracing() {
		rt.Emit(trace.OutputWrite, "map-output", node.ID, taskID, 0,
			trace.Num("bytes", float64(total)),
			trace.Num("seconds", p.Now().Sub(writeStart).Seconds()))
	}
	return out
}
