package engine

import "onepass/internal/kv"

// MonoidAgg adapts a kv.Monoid to the Aggregator contract: the per-key
// state IS the monoid element, initialised from the identity and folded
// with Combine. Because Combine is associative, map-side partial states
// and reduce-side merges compose without a separate Merge law — the same
// property "Monoidify!" (Lin, 2013) exploits to make combiners free.
type MonoidAgg struct {
	M kv.Monoid
}

// Init starts a key's state from the identity folded with its first value.
func (a MonoidAgg) Init(val []byte) []byte {
	state := append([]byte(nil), a.M.Identity()...)
	return a.M.Combine(state, val)
}

// Update folds one more value into state.
func (a MonoidAgg) Update(state, val []byte) []byte { return a.M.Combine(state, val) }

// Merge combines two partial states; states and values share one space.
func (a MonoidAgg) Merge(x, y []byte) []byte { return a.M.Combine(x, y) }

// Final emits the state unchanged: a monoid's running element is already
// the answer encoding.
func (a MonoidAgg) Final(key, state []byte, emit Emit) { emit(key, state) }

// MonoidCombiner derives a CombineFunc from a monoid: fold the group's
// values left-to-right starting from the identity and emit the single
// combined element. The scratch buffer is reused across groups, so each
// derived combiner must be owned by exactly one task attempt (TaskJob
// re-derives it from the cloned job's Monoid).
func MonoidCombiner(m kv.Monoid) CombineFunc {
	var out []byte
	return func(key []byte, vals [][]byte, emit Emit) {
		out = append(out[:0], m.Identity()...)
		for _, v := range vals {
			out = m.Combine(out, v)
		}
		emit(key, out)
	}
}
