package engine

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/metrics"
	"onepass/internal/sim"
)

// Runtime bundles the simulated substrate a job runs on plus the metric
// collectors every engine feeds: the virtual iostat/ps of the paper's
// profiling harness.
type Runtime struct {
	Env      *sim.Env
	Cluster  *cluster.Cluster
	DFS      *dfs.DFS
	Timeline *metrics.Timeline
	Counters *metrics.Counters

	sampler *metrics.Sampler
	// start and cpuBase make results job-relative when several jobs chain
	// on one shared cluster/virtual clock.
	start   sim.Time
	cpuBase *metrics.CPUAccount

	CPUUtil      *metrics.Series
	Iowait       *metrics.Series
	BytesRead    *metrics.Series
	BytesWritten *metrics.Series
	NetBytes     *metrics.Series
}

// SampleInterval is the metrics bucket width: 1 virtual second, like the
// paper's profiler.
const SampleInterval = sim.Second

// NewRuntime wires a runtime over the given substrate and registers the
// standard probes at the default 1 s sample interval.
func NewRuntime(env *sim.Env, c *cluster.Cluster, d *dfs.DFS) *Runtime {
	return NewRuntimeSampled(env, c, d, SampleInterval)
}

// NewRuntimeSampled is NewRuntime with an explicit metrics bucket width,
// for small-scale runs whose phases are shorter than a virtual second.
func NewRuntimeSampled(env *sim.Env, c *cluster.Cluster, d *dfs.DFS, sample sim.Duration) *Runtime {
	rt := &Runtime{
		Env:      env,
		Cluster:  c,
		DFS:      d,
		Timeline: metrics.NewTimeline(),
		Counters: metrics.NewCounters(),
		start:    env.Now(),
		cpuBase:  c.CPUAccount().Clone(),
	}
	rt.sampler = metrics.NewSampler(env, sample)
	cores := float64(c.TotalCores())
	interval := sample.Seconds()
	rt.CPUUtil = rt.sampler.TrackDelta("cpu-util", "fraction",
		func() float64 { return c.CPUBusyIntegral() }, 1/(cores*interval))
	rt.Iowait = rt.sampler.TrackDelta("cpu-iowait", "fraction",
		func() float64 { return c.IowaitIntegral() }, 1/(cores*interval))
	rt.BytesRead = rt.sampler.TrackDelta("disk-bytes-read", "bytes",
		func() float64 { return c.DiskBytesRead() }, 1)
	rt.BytesWritten = rt.sampler.TrackDelta("disk-bytes-written", "bytes",
		func() float64 { return c.DiskBytesWritten() }, 1)
	rt.NetBytes = rt.sampler.TrackDelta("net-bytes", "bytes",
		func() float64 { return c.Net.BytesTransferred() }, 1)
	return rt
}

// InputBlocks resolves a job's input: a registered file's blocks, or — for
// chained jobs reading a previous job's output directory — the blocks of
// every part file under the path.
func (rt *Runtime) InputBlocks(path string) ([]*dfs.Block, error) {
	if blocks, err := rt.DFS.Blocks(path); err == nil {
		return blocks, nil
	}
	return rt.DFS.BlocksUnder(path)
}

// StartSampling begins the periodic metric snapshots.
func (rt *Runtime) StartSampling() { rt.sampler.Start() }

// StopSampling ends them at the sampler's next tick.
func (rt *Runtime) StopSampling() { rt.sampler.Stop() }

// WaitGroup is a virtual-time completion barrier.
type WaitGroup struct {
	n    int
	trig *sim.Trigger
}

// NewWaitGroup returns a barrier expecting n completions.
func (rt *Runtime) NewWaitGroup(name string, n int) *WaitGroup {
	return &WaitGroup{n: n, trig: rt.Env.NewTrigger(name)}
}

// Done marks one completion.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("engine: WaitGroup over-done")
	}
	if w.n == 0 {
		w.trig.Broadcast()
	}
}

// Wait blocks p until the count drains.
func (w *WaitGroup) Wait(p *sim.Proc) {
	for w.n > 0 {
		w.trig.Wait(p)
	}
}

// Pending returns the remaining count.
func (w *WaitGroup) Pending() int { return w.n }

// Result is everything a job run reports: the paper's tables come from the
// counters and CPU account, the figures from the series and timeline.
type Result struct {
	Job    string
	Engine string

	Makespan sim.Duration

	// Output holds the job's output pairs when Job.RetainOutput is set.
	Output      map[string]string
	OutputPairs int
	OutputBytes int64

	// FirstOutputAt is when the first output pair was produced — the
	// incremental-processing latency metric. Zero time means no output.
	FirstOutputAt sim.Time
	haveFirst     bool
	Snapshots     []Snapshot

	CPU      *metrics.CPUAccount
	Counters *metrics.Counters

	CPUUtil      *metrics.Series
	Iowait       *metrics.Series
	BytesRead    *metrics.Series
	BytesWritten *metrics.Series
	NetBytes     *metrics.Series
	Timeline     *metrics.Timeline
}

// Shared counter names.
const (
	CtrMapInputBytes    = "map.input.bytes"
	CtrMapInputRecords  = "map.input.records"
	CtrMapOutputBytes   = "map.output.bytes"
	CtrMapOutputRecords = "map.output.records"
	CtrShuffleBytes     = "shuffle.bytes"
	CtrReduceSpillBytes = "reduce.spill.bytes"
	CtrMapSpillBytes    = "map.spill.bytes"
	CtrSortComparisons  = "sort.comparisons"
	CtrMergeComparisons = "merge.comparisons"
	CtrHashOps          = "hash.ops"
	CtrMergePasses      = "merge.passes"
	CtrOutputBytes      = "output.bytes"
	CtrMapTasks         = "map.tasks"
	CtrReduceTasks      = "reduce.tasks"
	// CtrMapOutputWriteSeconds accumulates virtual seconds map tasks spent
	// blocked in the synchronous map-output write (§III.B.2).
	CtrMapOutputWriteSeconds = "map.output.write.seconds"
	// CtrMapWrittenBytes is post-combine map output actually persisted —
	// Table I's "Map output data" column (CtrMapOutputBytes counts raw
	// emissions before combining).
	CtrMapWrittenBytes = "map.output.written.bytes"
	// CtrMapTasksReexecuted counts map tasks re-run after their output was
	// lost to a node failure.
	CtrMapTasksReexecuted = "map.tasks.reexecuted"
	// CtrMapTasksSpeculative counts speculative (backup) attempts launched;
	// the Wasted variant counts attempts that lost the commit race.
	CtrMapTasksSpeculative       = "map.tasks.speculative"
	CtrMapTasksSpeculativeWasted = "map.tasks.speculative.wasted"
)

// FinishResult snapshots runtime state into a Result after Env.Run has
// drained.
func (rt *Runtime) FinishResult(res *Result) {
	res.Makespan = rt.Env.Now().Sub(rt.start)
	res.CPU = rt.Cluster.CPUAccount()
	res.CPU.Sub(rt.cpuBase)
	res.Counters = rt.Counters
	res.CPUUtil = rt.CPUUtil
	res.Iowait = rt.Iowait
	res.BytesRead = rt.BytesRead
	res.BytesWritten = rt.BytesWritten
	res.NetBytes = rt.NetBytes
	res.Timeline = rt.Timeline
}

// RenderTimeline draws the run's task timeline as per-phase sparklines at
// the metrics bucket width.
func (r *Result) RenderTimeline(width int) string {
	return r.Timeline.Render(r.CPUUtil.Bucket, sim.Time(int64(r.Makespan)), width)
}

// Summary renders the headline numbers.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s/%s: makespan=%v cpu=%.1fs output=%d pairs (%s), first output at %v",
		r.Engine, r.Job, r.Makespan, r.CPU.Total(), r.OutputPairs,
		metrics.FormatBytes(float64(r.OutputBytes)), r.FirstOutputAt)
}
