package engine

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/metrics"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// Runtime bundles the simulated substrate a job runs on plus the metric
// collectors every engine feeds: the virtual iostat/ps of the paper's
// profiling harness.
type Runtime struct {
	Env      *sim.Env
	Cluster  *cluster.Cluster
	DFS      *dfs.DFS
	Timeline *metrics.Timeline
	Counters *metrics.Counters

	// Tracer, when non-nil, receives every structured trace event; nil (the
	// default) keeps tracing free of cost — emission sites guard with
	// Tracing(). EngineLabel stamps events with the engine that owns the run.
	Tracer      trace.Sink
	EngineLabel string

	// Audit, when non-nil, arms the end-of-run invariant checks; nil (the
	// default) keeps the ledger free of cost — emission sites guard with
	// Auditing(), mirroring the Tracer nil path.
	Audit *Audit

	sampler *metrics.Sampler
	// start and cpuBase make results job-relative when several jobs chain
	// on one shared cluster/virtual clock.
	start   sim.Time
	cpuBase *metrics.CPUAccount

	// jobDone fires once when the engine declares the job complete; pending
	// fault injectors wait on it so a fault scheduled past job completion
	// cancels instead of extending virtual time.
	jobDone  *sim.Trigger
	finished bool

	CPUUtil      *metrics.Series
	Iowait       *metrics.Series
	BytesRead    *metrics.Series
	BytesWritten *metrics.Series
	NetBytes     *metrics.Series
	// PerNode holds one sampled series set per node — the paper's per-node
	// CPU/iowait/disk plots next to the cluster aggregates above.
	PerNode []*NodeSeries
}

// NodeSeries is one node's sampled series set.
type NodeSeries struct {
	Node         int             `json:"node"`
	CPUUtil      *metrics.Series `json:"cpuUtil"`
	Iowait       *metrics.Series `json:"iowait"`
	BytesRead    *metrics.Series `json:"bytesRead"`
	BytesWritten *metrics.Series `json:"bytesWritten"`
}

// Tracing reports whether a trace sink is attached; emission sites use it to
// skip argument construction entirely on the nil-sink fast path.
func (rt *Runtime) Tracing() bool { return rt.Tracer != nil }

// Auditing reports whether the invariant ledger is armed; emission sites use
// it to skip all bookkeeping on the nil fast path.
func (rt *Runtime) Auditing() bool { return rt.Audit != nil }

// Emit records one trace event at the current virtual instant, stamped with
// the runtime's engine label. No-op without a sink, but callers on hot paths
// should guard with Tracing() to avoid building args.
func (rt *Runtime) Emit(typ trace.Type, name string, node, task, attempt int, args ...trace.Arg) {
	if rt.Tracer == nil {
		return
	}
	rt.Tracer.Emit(trace.Event{
		At: rt.Env.Now(), Type: typ, Name: name, Engine: rt.EngineLabel,
		Node: node, Task: task, Attempt: attempt, Args: args,
	})
}

// SampleInterval is the metrics bucket width: 1 virtual second, like the
// paper's profiler.
const SampleInterval = sim.Second

// NewRuntime wires a runtime over the given substrate and registers the
// standard probes at the default 1 s sample interval.
func NewRuntime(env *sim.Env, c *cluster.Cluster, d *dfs.DFS) *Runtime {
	return NewRuntimeSampled(env, c, d, SampleInterval)
}

// NewRuntimeSampled is NewRuntime with an explicit metrics bucket width,
// for small-scale runs whose phases are shorter than a virtual second.
func NewRuntimeSampled(env *sim.Env, c *cluster.Cluster, d *dfs.DFS, sample sim.Duration) *Runtime {
	rt := &Runtime{
		Env:      env,
		Cluster:  c,
		DFS:      d,
		Timeline: metrics.NewTimeline(),
		Counters: metrics.NewCounters(),
		start:    env.Now(),
		cpuBase:  c.CPUAccount().Clone(),
	}
	rt.jobDone = env.NewTrigger("job-done")
	rt.sampler = metrics.NewSampler(env, sample)
	cores := float64(c.TotalCores())
	interval := sample.Seconds()
	rt.CPUUtil = rt.sampler.TrackDelta("cpu-util", "fraction",
		func() float64 { return c.CPUBusyIntegral() }, 1/(cores*interval))
	rt.Iowait = rt.sampler.TrackDelta("cpu-iowait", "fraction",
		func() float64 { return c.IowaitIntegral() }, 1/(cores*interval))
	rt.BytesRead = rt.sampler.TrackDelta("disk-bytes-read", "bytes",
		func() float64 { return c.DiskBytesRead() }, 1)
	rt.BytesWritten = rt.sampler.TrackDelta("disk-bytes-written", "bytes",
		func() float64 { return c.DiskBytesWritten() }, 1)
	rt.NetBytes = rt.sampler.TrackDelta("net-bytes", "bytes",
		func() float64 { return c.Net.BytesTransferred() }, 1)
	for _, n := range c.Nodes() {
		n := n
		id := "-n" + fmt.Sprint(n.ID)
		nodeCores := float64(n.Cores())
		rt.PerNode = append(rt.PerNode, &NodeSeries{
			Node: n.ID,
			CPUUtil: rt.sampler.TrackDelta("cpu-util"+id, "fraction",
				func() float64 { return n.CPUBusyIntegral() }, 1/(nodeCores*interval)),
			Iowait: rt.sampler.TrackDelta("cpu-iowait"+id, "fraction",
				func() float64 { return n.IowaitIntegral() }, 1/(nodeCores*interval)),
			BytesRead: rt.sampler.TrackDelta("disk-bytes-read"+id, "bytes",
				func() float64 { return n.DiskBytesRead() }, 1),
			BytesWritten: rt.sampler.TrackDelta("disk-bytes-written"+id, "bytes",
				func() float64 { return n.DiskBytesWritten() }, 1),
		})
	}
	return rt
}

// TaskJob returns the job a single task attempt should call user functions
// through. With the worker pool disabled (or when the job supplies no Fresh
// factory) it is the job itself; with the pool enabled it is a copy whose
// user functions come from an independent Fresh() construction, so scratch
// buffers those functions keep across calls are owned by exactly one
// concurrently-running task. Engines call it once per owner (map attempt,
// reduce side), not per work item.
func (rt *Runtime) TaskJob(job *Job) *Job {
	if job.Fresh == nil || rt.Env.Workers() <= 1 {
		return job
	}
	fresh := job.Fresh()
	clone := *job
	clone.Reader = fresh.Reader
	clone.Map = fresh.Map
	clone.Reduce = fresh.Reduce
	// The optional functions track the job's current declaration, not
	// Fresh's: a runner that stripped one (Config.DisableMonoid, a
	// combiner-off A/B run) must see it stay stripped on every task clone.
	if job.Combine != nil {
		clone.Combine = fresh.Combine
	}
	if job.Agg != nil {
		clone.Agg = fresh.Agg
	}
	if job.Monoid != nil {
		clone.Monoid = fresh.Monoid
	}
	return &clone
}

// StartJobWork dispatches fn — pure data work that calls job's user
// functions — to the worker pool when the job declares those functions
// pool-safe via Fresh, and runs it inline otherwise. Either way the caller
// gets a Work handle to join before reading fn's results.
func (rt *Runtime) StartJobWork(p *sim.Proc, job *Job, fn func()) *sim.Work {
	if job.Fresh == nil {
		return sim.Do(fn)
	}
	return p.StartWork(fn)
}

// InputBlocks resolves a job's input: a registered file's blocks, or — for
// chained jobs reading a previous job's output directory — the blocks of
// every part file under the path.
func (rt *Runtime) InputBlocks(path string) ([]*dfs.Block, error) {
	if blocks, err := rt.DFS.Blocks(path); err == nil {
		return blocks, nil
	}
	return rt.DFS.BlocksUnder(path)
}

// JobDone marks the job complete, releasing every process parked on the
// completion trigger — in particular pending fault injectors, which would
// otherwise keep the event heap alive and stretch the measured makespan.
// Engines call it once, after their last barrier drains.
func (rt *Runtime) JobDone() {
	rt.finished = true
	rt.jobDone.Broadcast()
}

// waitDoneOr blocks p until the job completes or d elapses, reporting true
// when the job finished first.
func (rt *Runtime) waitDoneOr(p *sim.Proc, d sim.Duration) bool {
	if rt.finished {
		return true
	}
	return rt.jobDone.WaitTimeout(p, d)
}

// StartSampling begins the periodic metric snapshots.
func (rt *Runtime) StartSampling() { rt.sampler.Start() }

// StopSampling ends them at the sampler's next tick.
func (rt *Runtime) StopSampling() { rt.sampler.Stop() }

// WaitGroup is a virtual-time completion barrier.
type WaitGroup struct {
	n    int
	trig *sim.Trigger
}

// NewWaitGroup returns a barrier expecting n completions.
func (rt *Runtime) NewWaitGroup(name string, n int) *WaitGroup {
	return &WaitGroup{n: n, trig: rt.Env.NewTrigger(name)}
}

// Done marks one completion.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("engine: WaitGroup over-done")
	}
	if w.n == 0 {
		w.trig.Broadcast()
	}
}

// Wait blocks p until the count drains.
func (w *WaitGroup) Wait(p *sim.Proc) {
	for w.n > 0 {
		w.trig.Wait(p)
	}
}

// Pending returns the remaining count.
func (w *WaitGroup) Pending() int { return w.n }

// Result is everything a job run reports: the paper's tables come from the
// counters and CPU account, the figures from the series and timeline.
type Result struct {
	Job    string
	Engine string

	Makespan sim.Duration

	// Output holds the job's output pairs when Job.RetainOutput is set.
	Output      map[string]string
	OutputPairs int
	OutputBytes int64
	// OutputChecksum is an order-independent digest of every output pair
	// (sum of per-pair FNV hashes), so runs that discard output payloads can
	// still be compared for semantic equality — the chaos sweep's proof that
	// recovery reproduced the fault-free answer.
	OutputChecksum uint64

	// FirstOutputAt is when the first output pair was produced — the
	// incremental-processing latency metric. Zero time means no output.
	FirstOutputAt sim.Time
	haveFirst     bool
	Snapshots     []Snapshot

	// Progress is the progress-vs-accuracy series for engines that answer
	// early (hash-hotkey, threshold queries): one point per emission batch
	// relating map progress to output coverage and spill volume.
	Progress []ProgressPoint

	CPU      *metrics.CPUAccount
	Counters *metrics.Counters

	CPUUtil      *metrics.Series
	Iowait       *metrics.Series
	BytesRead    *metrics.Series
	BytesWritten *metrics.Series
	NetBytes     *metrics.Series
	PerNode      []*NodeSeries
	Timeline     *metrics.Timeline

	// AuditFailures holds the invariants an armed audit found violated
	// (empty or nil after a clean audited run; always nil when the run was
	// not audited). Excluded from cache serialization when empty so audited
	// and unaudited runs persist identically.
	AuditFailures []AuditFailure `json:"AuditFailures,omitempty"`

	// Pool reports the intra-run worker pool's real-time activity: closures
	// dispatched via StartWork, aggregate wall time inside them, and the
	// peak in flight. Real-time observability only — excluded from JSON so
	// serial and pooled runs serialize byte-identically.
	Pool sim.WorkStats `json:"-"`
}

// AuditError returns a non-nil error summarizing the violated invariants,
// or nil when the run passed (or was not audited).
func (r *Result) AuditError() error {
	if len(r.AuditFailures) == 0 {
		return nil
	}
	return fmt.Errorf("engine: %d audit failure(s):\n%s",
		len(r.AuditFailures), FormatAuditFailures(r.AuditFailures))
}

// ProgressPoint is one sample of the one-pass "early answers" story: how far
// the map phase had progressed when output pairs were emitted, and how much
// intermediate data had been spilled by then. Coverage at a point is
// Pairs / the run's final OutputPairs.
type ProgressPoint struct {
	At sim.Time `json:"at"`
	// MapFraction is completed map tasks over total, in [0,1] (-1 when the
	// emitting engine has no map-progress view).
	MapFraction float64 `json:"mapFraction"`
	// Pairs is the cumulative output pairs emitted up to and including this
	// point.
	Pairs int `json:"pairs"`
	// SpilledBytes is cumulative intermediate data forced to disk so far.
	SpilledBytes int64 `json:"spilledBytes"`
}

// Shared counter names.
const (
	CtrMapInputBytes    = "map.input.bytes"
	CtrMapInputRecords  = "map.input.records"
	CtrMapOutputBytes   = "map.output.bytes"
	CtrMapOutputRecords = "map.output.records"
	CtrShuffleBytes     = "shuffle.bytes"
	CtrReduceSpillBytes = "reduce.spill.bytes"
	CtrMapSpillBytes    = "map.spill.bytes"
	CtrSortComparisons  = "sort.comparisons"
	CtrMergeComparisons = "merge.comparisons"
	CtrHashOps          = "hash.ops"
	CtrMergePasses      = "merge.passes"
	CtrOutputBytes      = "output.bytes"
	CtrMapTasks         = "map.tasks"
	CtrReduceTasks      = "reduce.tasks"
	// CtrMapOutputWriteSeconds accumulates virtual seconds map tasks spent
	// blocked in the synchronous map-output write (§III.B.2).
	CtrMapOutputWriteSeconds = "map.output.write.seconds"
	// CtrMapWrittenBytes is post-combine map output actually persisted —
	// Table I's "Map output data" column (CtrMapOutputBytes counts raw
	// emissions before combining).
	CtrMapWrittenBytes = "map.output.written.bytes"
	// CtrTasksReexecuted counts map tasks re-run after their output was
	// lost to a node failure.
	CtrTasksReexecuted = "tasks.reexecuted"
	// CtrMapTasksSpeculative counts speculative (backup) attempts launched;
	// the Wasted variant counts attempts that lost the commit race.
	CtrMapTasksSpeculative       = "map.tasks.speculative"
	CtrMapTasksSpeculativeWasted = "map.tasks.speculative.wasted"
	// CtrFaultsInjected counts faults the injector actually fired (faults
	// scheduled past job completion are canceled, not injected).
	CtrFaultsInjected = "faults.injected"
	// CtrShuffleRetries counts pull fetches abandoned mid-transfer because
	// the source died, then retried after backoff.
	CtrShuffleRetries = "shuffle.retries"
	// CtrShuffleDupChunks counts push chunks a reducer discarded as
	// duplicates of a (map task, seq) pair it already ingested — recovery
	// re-pushes overlapping with the original delivery.
	CtrShuffleDupChunks = "shuffle.duplicate.chunks"
)

// CtrTimelineForceClosed counts spans an engine left open at FinishResult
// time; non-zero means a Begin without a matching End (clamped to the
// horizon rather than left reporting Finish == 0).
const CtrTimelineForceClosed = "timeline.spans.forceclosed"

// FinishResult snapshots runtime state into a Result after Env.Run has
// drained.
func (rt *Runtime) FinishResult(res *Result) {
	if rt.Audit != nil {
		// Check span closure before CloseOpenAt clamps the leaks away.
		if err := rt.Timeline.CheckClosed(); err != nil {
			rt.Audit.fail("trace-span-leak", "timeline", err.Error())
		}
	}
	if n := rt.Timeline.CloseOpenAt(rt.Env.Now()); n > 0 {
		rt.Counters.Add(CtrTimelineForceClosed, float64(n))
	}
	res.Makespan = rt.Env.Now().Sub(rt.start)
	res.CPU = rt.Cluster.CPUAccount()
	res.CPU.Sub(rt.cpuBase)
	res.Counters = rt.Counters
	res.CPUUtil = rt.CPUUtil
	res.Iowait = rt.Iowait
	res.BytesRead = rt.BytesRead
	res.BytesWritten = rt.BytesWritten
	res.NetBytes = rt.NetBytes
	res.PerNode = rt.PerNode
	res.Timeline = rt.Timeline
	res.Pool = rt.Env.WorkStats()
	if rt.Audit != nil {
		res.AuditFailures = rt.Audit.Finish(rt)
	}
}

// RenderTimeline draws the run's task timeline as per-phase sparklines at
// the metrics bucket width.
func (r *Result) RenderTimeline(width int) string {
	return r.Timeline.Render(r.CPUUtil.Bucket, sim.Time(int64(r.Makespan)), width)
}

// Summary renders the headline numbers.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s/%s: makespan=%v cpu=%.1fs output=%d pairs (%s), first output at %v",
		r.Engine, r.Job, r.Makespan, r.CPU.Total(), r.OutputPairs,
		metrics.FormatBytes(float64(r.OutputBytes)), r.FirstOutputAt)
}
