// Package engine holds the runtime shared by all three MapReduce engines:
// the job specification (map/combine/reduce plus the incremental aggregator
// contract), the calibrated cost model that converts real work (records,
// bytes, comparisons, hash operations) into virtual CPU time, slot-based
// task scheduling with data locality, the map-output registry behind both
// pull- and push-based shuffle, and result/metrics collection.
package engine

import (
	"fmt"

	"onepass/internal/kv"
	"onepass/internal/sim"
)

// Emit collects one output pair from a user function.
type Emit func(key, val []byte)

// RecordReader iterates the records of one raw input block.
type RecordReader func(block []byte, yield func(rec []byte))

// MapFunc transforms one input record into zero or more pairs.
type MapFunc func(rec []byte, emit Emit)

// ReduceFunc folds all values of one key into output pairs.
type ReduceFunc func(key []byte, vals [][]byte, emit Emit)

// CombineFunc performs partial aggregation over the values of one key,
// usually emitting a single pair under the same key. Nil when the analytic
// function has no useful combiner (e.g. sessionization).
type CombineFunc func(key []byte, vals [][]byte, emit Emit)

// Aggregator is the incremental-processing contract of the hash engines
// (§IV point 3): per-key state folded value-by-value as data arrives, with
// mergeable partials so map-side combining composes with reduce-side
// incremental update. States are plain byte strings so they can live in
// byte-array memory and spill to simulated disk unchanged.
type Aggregator interface {
	// Init returns the state for a key's first value.
	Init(val []byte) []byte
	// Update folds one more value into state, returning the new state
	// (which may reuse state's storage).
	Update(state, val []byte) []byte
	// Merge combines two partial states.
	Merge(a, b []byte) []byte
	// Final emits the key's result from its state.
	Final(key, state []byte, emit Emit)
}

// Job is a complete MapReduce job specification.
type Job struct {
	Name      string
	InputPath string
	Reader    RecordReader
	Map       MapFunc
	Combine   CombineFunc
	Reduce    ReduceFunc
	// Agg enables incremental evaluation on the hash engines. Optional;
	// when nil the hash engines fall back to value-list states.
	Agg Aggregator

	// Monoid declares the reduce as a typed commutative aggregate over the
	// map-output value space (see kv.Monoid): every engine then combines
	// in-node before shuffle (EffectiveCombine) and the hash and resident
	// engines fold partial states associatively (MonoidAgg). Reduce must
	// still be set — it is the law the monoid is checked against and the
	// fallback when Config.DisableMonoid strips this field. Mutually
	// exclusive with explicit Combine/Agg.
	Monoid kv.Monoid

	// BinaryInput marks the input as the pre-parsed binary format, charged
	// at the cheap parse rate (§III.B.1's SequenceFile experiment).
	BinaryInput bool

	Reducers   int
	OutputPath string
	// DiscardOutput drops output payloads (I/O still charged) — sink mode
	// for large benchmark runs.
	DiscardOutput bool
	// RetainOutput additionally keeps an in-memory copy of all output pairs
	// on the Result for verification. Mutually exclusive with DiscardOutput
	// having any effect on verification.
	RetainOutput bool

	Costs CostModel

	// MapSlotsPerNode and ReduceSlotsPerNode bound concurrent tasks per
	// node (Hadoop's slot model). Zero means the engine default (2 and 2).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int

	// MemoryPerTask caps a task's in-memory buffers (map output buffer,
	// reducer merge buffer, hash-table budget). Zero = cluster default
	// (node memory / 4).
	MemoryPerTask int64

	// EmitThreshold, when set, asks incremental engines to emit a key's
	// current aggregate as soon as the predicate becomes true — the §IV
	// "output a group as soon as its count reaches the threshold" example.
	EmitWhen func(key, state []byte) bool

	// Progress, when set, receives task-completion callbacks ("map" /
	// "reduce", done, total) — the progress reporter of the paper's Fig. 5
	// system-utilities column.
	Progress func(phase string, done, total int)

	// OrderInsensitive declares that Reduce's output is independent of the
	// order of vals — a multiset function, not a sequence function (e.g. a
	// reducer that sorts its values before emitting). Monoid-declared jobs
	// are order-insensitive by law; this flag extends the same promise to
	// holistic reducers, which is what lets the incremental re-run path
	// regroup a key's preserved per-block value lists in block order rather
	// than in the original engine's arrival order.
	OrderInsensitive bool

	// Speculation enables speculative execution of straggling map tasks:
	// once the task queue drains, idle slots re-run the oldest in-flight
	// tasks and the first attempt to finish wins (Hadoop's backup tasks;
	// the improved strategy of [Zaharia et al., OSDI'08] is cited by the
	// paper's related work). Requires pull shuffle: duplicate attempts
	// commit idempotently through the map-output registry.
	Speculation bool

	// Fresh, when set, returns an independently-constructed copy of this job
	// whose user functions (Reader, Map, Combine, Reduce, Agg, Monoid) share no
	// scratch state with any other copy. Parallel intra-run execution uses it
	// to give every concurrently-running task its own function instances;
	// without it, tasks whose user functions might keep scratch buffers run
	// inline on the event loop instead of on the worker pool. Jobs whose
	// functions are stateless may leave it nil.
	Fresh func() Job
}

// Validate checks the spec for the common mistakes.
func (j *Job) Validate() error {
	switch {
	case j.Name == "":
		return fmt.Errorf("engine: job needs a name")
	case j.InputPath == "":
		return fmt.Errorf("engine: job %q needs an input path", j.Name)
	case j.Reader == nil:
		return fmt.Errorf("engine: job %q needs a record reader", j.Name)
	case j.Map == nil:
		return fmt.Errorf("engine: job %q needs a map function", j.Name)
	case j.Reduce == nil && j.Agg == nil:
		return fmt.Errorf("engine: job %q needs a reduce function or aggregator", j.Name)
	case j.Monoid != nil && j.Reduce == nil:
		return fmt.Errorf("engine: job %q declares a monoid without the reduce it abbreviates", j.Name)
	case j.Monoid != nil && (j.Combine != nil || j.Agg != nil):
		return fmt.Errorf("engine: job %q mixes a monoid with an explicit combiner/aggregator", j.Name)
	case j.Reducers <= 0:
		return fmt.Errorf("engine: job %q needs a positive reducer count", j.Name)
	}
	return nil
}

// EffectiveCombine resolves the job's map-side combiner: the explicit
// Combine when set, a combiner derived from the declared Monoid otherwise,
// nil when the job has neither. The derived combiner keeps reusable scratch,
// so call this once per task attempt on the TaskJob clone, never on a job
// shared across concurrent attempts.
func (j *Job) EffectiveCombine() CombineFunc {
	if j.Combine != nil {
		return j.Combine
	}
	if j.Monoid != nil {
		return MonoidCombiner(j.Monoid)
	}
	return nil
}

// HasCombiner reports whether EffectiveCombine would return a combiner,
// without constructing one — for cost-charging conditions outside the task
// closure.
func (j *Job) HasCombiner() bool { return j.Combine != nil || j.Monoid != nil }

// Phase names used in CPU accounting and timelines, shared across engines
// so Table II and the figures can compare like with like.
const (
	PhaseParse   = "parse"
	PhaseMapFn   = "map-fn"
	PhaseSort    = "sort"
	PhaseCombine = "combine"
	PhaseMerge   = "merge"
	PhaseReduce  = "reduce-fn"
	PhaseHash    = "hash"
	PhaseUpdate  = "state-update"
	// PhaseFramework is runtime overhead outside user code and group-by
	// work (excluded from Table II's map-function/sort split, as in the
	// paper's profiling).
	PhaseFramework = "framework"
)

// Timeline span names (the four operations of the paper's Fig. 2(a)).
const (
	SpanMap     = "map"
	SpanShuffle = "shuffle"
	SpanMerge   = "merge"
	SpanReduce  = "reduce"
)

// Snapshot is one early answer emitted before job completion: HOP's
// periodic snapshots and the hash engines' incremental/approximate emits.
type Snapshot struct {
	At       sim.Time
	Fraction float64 // input fraction represented, if known (HOP snapshots)
	Pairs    int     // number of pairs in this snapshot
}
