package engine

import (
	"bytes"
	"fmt"
	"testing"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/kv"
	"onepass/internal/sim"
)

func testRuntime(nodes int) *Runtime {
	env := sim.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = 2
	c := cluster.New(env, cfg)
	return NewRuntime(env, c, dfs.New(c, 64<<10, 1))
}

func TestWaitGroup(t *testing.T) {
	rt := testRuntime(2)
	wg := rt.NewWaitGroup("x", 3)
	doneAt := sim.Time(-1)
	rt.Env.Go("waiter", func(p *sim.Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 0; i < 3; i++ {
		d := sim.Duration(i+1) * sim.Second
		rt.Env.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	rt.Env.Run()
	if doneAt != sim.Time(3*sim.Second) {
		t.Fatalf("waiter released at %v, want 3s", doneAt)
	}
	if wg.Pending() != 0 {
		t.Fatalf("pending = %d", wg.Pending())
	}
}

func TestWaitGroupOverDonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt := testRuntime(2)
	wg := rt.NewWaitGroup("x", 1)
	rt.Env.Go("a", func(p *sim.Proc) { wg.Done(); wg.Done() })
	rt.Env.Run()
}

func TestMapOutputSingleFileIndex(t *testing.T) {
	rt := testRuntime(2)
	rt.Env.Go("w", func(p *sim.Proc) {
		store := rt.Cluster.Node(0).ScratchStore()
		out := NewMapOutput(p, store, "job/map-0/file.out", 0, 0, 3, func(r int) []byte {
			return bytes.Repeat([]byte{byte('a' + r)}, (r+1)*10)
		})
		if out.Parts() != 3 {
			t.Errorf("parts = %d", out.Parts())
		}
		if out.PartSize(1) != 20 {
			t.Errorf("part 1 size = %d", out.PartSize(1))
		}
		if got := out.PartData(2); len(got) != 30 || got[0] != 'c' {
			t.Errorf("part 2 data = %q", got)
		}
		if out.File.Size() != 60 {
			t.Errorf("file size = %d", out.File.Size())
		}
		// Consuming all partitions deletes the file.
		for r := 0; r < 3; r++ {
			out.ConsumePart(r)
		}
		if store.Exists("job/map-0/file.out") {
			t.Error("file not deleted after full consumption")
		}
	})
	rt.Env.Run()
}

func TestRegistryPullFlow(t *testing.T) {
	rt := testRuntime(3)
	reg := rt.NewRegistry(2)
	var fetched [][]byte
	rt.Env.Go("reducer", func(p *sim.Proc) {
		seen := 0
		for {
			reg.WaitBeyond(p, seen)
			for ; seen < reg.Completed(); seen++ {
				out := reg.Out(seen)
				data := reg.FetchPart(p, 2, out, 0)
				fetched = append(fetched, append([]byte(nil), data...))
				out.ConsumePart(0)
			}
			if reg.AllDone() {
				return
			}
		}
	})
	for i := 0; i < 2; i++ {
		i := i
		rt.Env.Go(fmt.Sprintf("mapper%d", i), func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Second)
			store := rt.Cluster.Node(i).ScratchStore()
			out := NewMapOutput(p, store, fmt.Sprintf("m%d", i), i, i, 1, func(int) []byte {
				return []byte{byte('0' + i)}
			})
			reg.Complete(out)
		})
	}
	rt.Env.Run()
	if len(fetched) != 2 || fetched[0][0] != '0' || fetched[1][0] != '1' {
		t.Fatalf("fetched = %q", fetched)
	}
	// Remote fetches moved bytes over the network.
	if rt.Cluster.Net.BytesTransferred() == 0 {
		t.Fatal("no network transfer for remote fetch")
	}
}

func TestRegistryFreshWindowSkipsSourceDisk(t *testing.T) {
	fetchAfter := func(delay sim.Duration) float64 {
		rt := testRuntime(2)
		reg := rt.NewRegistry(1)
		rt.Env.Go("mapper", func(p *sim.Proc) {
			store := rt.Cluster.Node(0).ScratchStore()
			out := NewMapOutput(p, store, "m0", 0, 0, 1, func(int) []byte {
				return make([]byte, 100<<10)
			})
			reg.Complete(out)
		})
		rt.Env.Go("reducer", func(p *sim.Proc) {
			reg.WaitBeyond(p, 0)
			p.Sleep(delay)
			reg.FetchPart(p, 1, reg.Out(0), 0)
		})
		readBefore := 0.0
		_ = readBefore
		rt.Env.Run()
		return rt.Cluster.Node(0).ScratchDevice().BytesRead()
	}
	if fresh := fetchAfter(sim.Second); fresh != 0 {
		t.Fatalf("fresh fetch read %v bytes from source disk", fresh)
	}
	if stale := fetchAfter(60 * sim.Second); stale == 0 {
		t.Fatal("stale fetch must re-read the source disk")
	}
}

func TestFetchPartRetriesWhenSourceDiesMidTransfer(t *testing.T) {
	rt := testRuntime(3)
	reg := rt.NewRegistry(1)
	payload := bytes.Repeat([]byte{'x'}, 4<<20) // ~30ms transfer: room to die mid-flight
	reg.Reexec = func(p *sim.Proc, readerNode int, lost *MapOutput) *MapOutput {
		node := rt.Cluster.Node(2)
		return NewMapOutput(p, node.ScratchStore(), "m0/reexec", lost.TaskID, node.ID, 1,
			func(int) []byte { return payload })
	}
	var fetched []byte
	rt.Env.Go("mapper", func(p *sim.Proc) {
		store := rt.Cluster.Node(0).ScratchStore()
		out := NewMapOutput(p, store, "m0", 0, 0, 1, func(int) []byte { return payload })
		reg.Complete(out)
	})
	rt.Env.Go("reducer", func(p *sim.Proc) {
		reg.WaitBeyond(p, 0)
		out := reg.Out(0)
		fetched = append([]byte(nil), reg.FetchPart(p, 1, out, 0)...)
		out.ConsumePart(0)
	})
	rt.Env.Go("killer", func(p *sim.Proc) {
		reg.WaitBeyond(p, 0)     // completion broadcast: the fetch is starting
		p.Sleep(sim.Millisecond) // well inside the transfer
		rt.Cluster.Node(0).Fail()
		reg.FailNode(0)
	})
	rt.Env.Run()
	if got := rt.Counters.Get(CtrShuffleRetries); got == 0 {
		t.Fatal("mid-transfer death did not count a shuffle retry")
	}
	if got := rt.Counters.Get(CtrTasksReexecuted); got != 1 {
		t.Fatalf("tasks.reexecuted = %v, want 1", got)
	}
	if !bytes.Equal(fetched, payload) {
		t.Fatalf("fetched %d bytes, want the full %d-byte payload from the recovered attempt",
			len(fetched), len(payload))
	}
}

func TestPushChannelBackpressureAndOrder(t *testing.T) {
	rt := testRuntime(2)
	chans := rt.NewPushChannels(1, 100)
	pc := chans[0]
	var got []string
	rt.Env.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			data := bytes.Repeat([]byte{byte('a' + i)}, 60)
			for !pc.TryPush(p, 0, 1, i, 0, data) {
				pc.WaitSpace(p)
			}
		}
		pc.Close()
	})
	rt.Env.Go("consumer", func(p *sim.Proc) {
		for {
			c, ok := pc.Pop(p)
			if !ok {
				return
			}
			got = append(got, string(c.Data[:1]))
			p.Sleep(sim.Second) // slow consumer forces backpressure
		}
	})
	rt.Env.Run()
	if len(got) != 5 {
		t.Fatalf("got %d chunks", len(got))
	}
	for i, s := range got {
		if s != string(rune('a'+i)) {
			t.Fatalf("order broken: %v", got)
		}
	}
	if pc.QueuedBytes() != 0 {
		t.Fatalf("queued = %d", pc.QueuedBytes())
	}
}

func TestRunMapsPrefersLocalBlocks(t *testing.T) {
	rt := testRuntime(4)
	if err := rt.DFS.RegisterGenerated("in", 8*64<<10, func(b int, s int64) []byte {
		return make([]byte, s)
	}); err != nil {
		t.Fatal(err)
	}
	blocks, _ := rt.DFS.Blocks("in")
	job := &Job{Name: "t", Reducers: 1}
	local, total := 0, 0
	wg := rt.RunMaps(job, blocks, func(p *sim.Proc, node *cluster.Node, b *dfs.Block) {
		total++
		if b.IsLocal(node.ID) {
			local++
		}
		p.Sleep(sim.Second) // yield so every node's slots participate
	})
	rt.Env.Run()
	if wg.Pending() != 0 {
		t.Fatal("maps incomplete")
	}
	if total != 8 {
		t.Fatalf("ran %d tasks", total)
	}
	// Round-robin placement over 4 nodes, 8 blocks: all should be local.
	if local != 8 {
		t.Fatalf("only %d/8 tasks were data-local", local)
	}
}

func TestRunReducesPlacementAndSlots(t *testing.T) {
	rt := testRuntime(2)
	job := &Job{Name: "t", Reducers: 4}
	nodesSeen := map[int]int{}
	wg := rt.RunReduces(job, func(p *sim.Proc, node *cluster.Node, r int) {
		nodesSeen[node.ID]++
		p.Sleep(sim.Second)
	})
	rt.Env.Run()
	if wg.Pending() != 0 {
		t.Fatal("reduces incomplete")
	}
	if nodesSeen[0] != 2 || nodesSeen[1] != 2 {
		t.Fatalf("placement = %v, want 2 per node", nodesSeen)
	}
	// Default slots let all 4 run concurrently: total time ~1s.
	if got := rt.Env.Now().Seconds(); got > 1.5 {
		t.Fatalf("reduce waves serialized: %v", got)
	}
}

func TestExecuteMapCountsAndCharges(t *testing.T) {
	rt := testRuntime(2)
	content := []byte("aa 1\nbb 2\ncc 3\n")
	rt.DFS.RegisterGenerated("in", int64(len(content)), func(b int, s int64) []byte { return content })
	blocks, _ := rt.DFS.Blocks("in")
	job := &Job{
		Name: "t", InputPath: "in", Reducers: 2,
		Reader: func(block []byte, yield func([]byte)) {
			for _, line := range bytes.Split(bytes.TrimSpace(block), []byte("\n")) {
				yield(line)
			}
		},
		Map: func(rec []byte, emit Emit) { emit(rec[:2], rec[3:]) },
	}
	rt.Env.Go("m", func(p *sim.Proc) {
		node := rt.Cluster.Node(blocks[0].Replicas()[0])
		buf, err := rt.ExecuteMap(p, node, job, blocks[0], func(k []byte, n int) int { return int(k[0]) % n })
		if err != nil {
			t.Error(err)
			return
		}
		if buf.Len() != 3 {
			t.Errorf("pairs = %d", buf.Len())
		}
	})
	rt.Env.Run()
	if got := rt.Counters.Get(CtrMapInputRecords); got != 3 {
		t.Fatalf("input records = %v", got)
	}
	if rt.Counters.Get(CtrMapOutputBytes) == 0 {
		t.Fatal("output bytes not counted")
	}
	if rt.Cluster.CPUAccount().Seconds(PhaseParse) <= 0 {
		t.Fatal("parse CPU not charged")
	}
	if rt.Cluster.CPUAccount().Seconds(PhaseFramework) <= 0 {
		t.Fatal("framework CPU not charged")
	}
}

func TestCombineSorted(t *testing.T) {
	job := &Job{
		Combine: func(key []byte, vals [][]byte, emit Emit) {
			total := 0
			for _, v := range vals {
				total += int(v[0])
			}
			emit(key, []byte{byte(total)})
		},
	}
	buf := kv.NewBuffer(0)
	buf.Add(0, []byte("a"), []byte{1})
	buf.Add(0, []byte("a"), []byte{2})
	buf.Add(1, []byte("a"), []byte{5})
	buf.Add(1, []byte("b"), []byte{7})
	buf.SortByPartitionKey(nil)
	out, inputs := CombineSorted(job, buf)
	if inputs != 4 {
		t.Fatalf("inputs = %d", inputs)
	}
	if out.Len() != 3 {
		t.Fatalf("combined pairs = %d", out.Len())
	}
	// Partition 0 "a" combined to 3; partition 1 "a" stays 5.
	vals := map[string]byte{}
	for i := 0; i < out.Len(); i++ {
		vals[fmt.Sprintf("%d/%s", out.Partition(i), out.Key(i))] = out.Val(i)[0]
	}
	if vals["0/a"] != 3 || vals["1/a"] != 5 || vals["1/b"] != 7 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestCombineSortedWithoutCombiner(t *testing.T) {
	buf := kv.NewBuffer(0)
	buf.Add(0, []byte("k"), []byte("v"))
	out, inputs := CombineSorted(&Job{}, buf)
	if out != buf || inputs != 0 {
		t.Fatal("no-combiner case must return input unchanged")
	}
}

func TestOutputCollectorBuffersAndFlushes(t *testing.T) {
	rt := testRuntime(2)
	job := &Job{Name: "t", OutputPath: "out", RetainOutput: true, Reducers: 1}
	res := &Result{}
	oc := rt.NewOutputCollector(job, res)
	rt.Env.Go("r", func(p *sim.Proc) {
		oc.Emit(p, 0, 0, []byte("k1"), []byte("v1"))
		oc.Emit(p, 0, 0, []byte("k2"), []byte("v2"))
		// Buffered: nothing on disk yet.
		if got := rt.Cluster.Node(0).DFSDevice().BytesWritten(); got != 0 {
			t.Errorf("premature flush: %v bytes", got)
		}
		oc.Close(p, 0)
		if got := rt.Cluster.Node(0).DFSDevice().BytesWritten(); got == 0 {
			t.Error("close did not flush")
		}
	})
	rt.Env.Run()
	if res.OutputPairs != 2 || res.Output["k1"] != "v1" {
		t.Fatalf("result output = %+v", res.Output)
	}
	if !res.haveFirst {
		t.Fatal("first output not recorded")
	}
}

func TestCostModelMergeDefaults(t *testing.T) {
	c := CostModel{CompareNs: 99}.merged()
	if c.CompareNs != 99 {
		t.Fatal("override lost")
	}
	d := DefaultCosts()
	if c.ParseNsPerByte != d.ParseNsPerByte || c.FrameworkNsPerRecord != d.FrameworkNsPerRecord {
		t.Fatal("defaults not filled")
	}
}

func TestJobSlotDefaults(t *testing.T) {
	j := &Job{Reducers: 60}
	if j.mapSlots() != DefaultMapSlots {
		t.Fatalf("map slots = %d", j.mapSlots())
	}
	if got := j.reduceSlots(10); got != 6 {
		t.Fatalf("reduce slots = %d, want 6 (60 reducers / 10 nodes)", got)
	}
	j.MapSlotsPerNode = 4
	if j.mapSlots() != 4 {
		t.Fatal("explicit map slots ignored")
	}
}

func TestProgressReporter(t *testing.T) {
	rt := testRuntime(2)
	rt.DFS.RegisterGenerated("in", 4*64<<10, func(b int, s int64) []byte { return make([]byte, s) })
	blocks, _ := rt.DFS.Blocks("in")
	var events []string
	job := &Job{Name: "t", Reducers: 2, Progress: func(phase string, done, total int) {
		events = append(events, fmt.Sprintf("%s %d/%d", phase, done, total))
	}}
	mwg := rt.RunMaps(job, blocks, func(p *sim.Proc, node *cluster.Node, b *dfs.Block) {
		p.Sleep(sim.Second)
	})
	rwg := rt.RunReduces(job, func(p *sim.Proc, node *cluster.Node, r int) {
		p.Sleep(sim.Second)
	})
	rt.Env.Run()
	if mwg.Pending() != 0 || rwg.Pending() != 0 {
		t.Fatal("tasks incomplete")
	}
	if len(events) != 6 {
		t.Fatalf("events = %v", events)
	}
	last := events[len(events)-1]
	if last != "map 4/4" && last != "reduce 2/2" {
		t.Fatalf("final event = %q", last)
	}
}
