package engine

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// DefaultMapSlots is Hadoop's classic 2 concurrent map tasks per node.
const DefaultMapSlots = 2

func (j *Job) mapSlots() int {
	if j.MapSlotsPerNode > 0 {
		return j.MapSlotsPerNode
	}
	return DefaultMapSlots
}

func (j *Job) reduceSlots(computeNodes int) int {
	if j.ReduceSlotsPerNode > 0 {
		return j.ReduceSlotsPerNode
	}
	// Default: enough slots that all reducers of the job run concurrently,
	// as in the paper's configuration (e.g. 60 reducers on 10 nodes).
	s := (j.Reducers + computeNodes - 1) / computeNodes
	if s < 1 {
		s = 1
	}
	return s
}

// TaskMemory returns the per-task buffer budget.
func (rt *Runtime) TaskMemory(j *Job) int64 {
	if j.MemoryPerTask > 0 {
		return j.MemoryPerTask
	}
	return rt.Cluster.Config().MemoryPerNode / 4
}

// RunMaps schedules one map task per input block across compute-node map
// slots with data-local placement preference (block-level scheduling,
// §II.A). It returns a WaitGroup that drains when every block is mapped.
// Each task is wrapped in a SpanMap timeline span.
func (rt *Runtime) RunMaps(job *Job, blocks []*dfs.Block, task func(p *sim.Proc, node *cluster.Node, b *dfs.Block)) *WaitGroup {
	wg := rt.NewWaitGroup("maps:"+job.Name, len(blocks))
	pending := append([]*dfs.Block(nil), blocks...)
	// take returns the next runnable block for nodeID (local preferred), or
	// nil with how long to wait for the next streamed block to arrive
	// (§I's one-pass setting: tasks start as data arrives, not after a
	// loading phase). wait <= 0 with a nil block means the queue drained.
	take := func(nodeID int) (*dfs.Block, sim.Duration) {
		if len(pending) == 0 {
			return nil, 0
		}
		now := rt.Env.Now()
		pick := -1
		var soonest sim.Time = -1
		for i, b := range pending {
			if b.AvailableAt <= now {
				if b.IsLocal(nodeID) {
					pick = i
					break
				}
				if pick < 0 {
					pick = i
				}
			} else if soonest < 0 || b.AvailableAt < soonest {
				soonest = b.AvailableAt
			}
		}
		if pick < 0 {
			return nil, soonest.Sub(now)
		}
		b := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		return b, 0
	}
	// flight tracks one block's attempts for speculative execution: the
	// first finished attempt wins; others are wasted work (counted).
	type flight struct {
		b        *dfs.Block
		start    sim.Time
		done     bool
		attempts int
	}
	var inFlight []*flight
	pickStraggler := func() *flight {
		var oldest *flight
		for _, fl := range inFlight {
			if fl.done || fl.attempts > 1 {
				continue
			}
			if oldest == nil || fl.start < oldest.start {
				oldest = fl
			}
		}
		return oldest
	}
	for _, node := range rt.Cluster.ComputeNodes() {
		node := node
		for s := 0; s < job.mapSlots(); s++ {
			rt.Env.Go(fmt.Sprintf("map-slot-n%d-%d", node.ID, s), func(p *sim.Proc) {
				run := func(fl *flight) {
					attempt := fl.attempts - 1
					if rt.Auditing() {
						rt.Audit.TaskLaunched("map")
					}
					span := rt.Timeline.Begin(SpanMap, p.Now())
					rt.Emit(trace.TaskStart, SpanMap, node.ID, fl.b.Index, attempt)
					task(p, node, fl.b)
					span.End(p.Now())
					rt.Emit(trace.TaskFinish, SpanMap, node.ID, fl.b.Index, attempt)
					if !fl.done {
						fl.done = true
						rt.Counters.Add(CtrMapTasks, 1)
						if rt.Auditing() {
							rt.Audit.TaskCompleted("map")
						}
						wg.Done()
						if job.Progress != nil {
							job.Progress("map", len(blocks)-wg.Pending(), len(blocks))
						}
					}
				}
				for {
					if node.Failed() {
						return
					}
					b, wait := take(node.ID)
					if b != nil {
						fl := &flight{b: b, start: p.Now(), attempts: 1}
						inFlight = append(inFlight, fl)
						run(fl)
						continue
					}
					if wait > 0 {
						p.Sleep(wait)
						continue
					}
					// Queue drained: optionally back up the oldest
					// still-running attempt (speculative execution).
					if !job.Speculation {
						return
					}
					fl := pickStraggler()
					if fl == nil {
						return
					}
					fl.attempts++
					rt.Counters.Add(CtrMapTasksSpeculative, 1)
					run(fl)
				}
			})
		}
	}
	return wg
}

// RunReduces starts job.Reducers reduce tasks round-robin across compute
// nodes, each holding a reduce slot for its lifetime. Phase spans inside a
// reduce task (shuffle/merge/reduce) are the engine's responsibility.
func (rt *Runtime) RunReduces(job *Job, task func(p *sim.Proc, node *cluster.Node, r int)) *WaitGroup {
	nodes := rt.Cluster.ComputeNodes()
	wg := rt.NewWaitGroup("reduces:"+job.Name, job.Reducers)
	slots := make(map[int]*sim.Resource, len(nodes))
	for _, n := range nodes {
		slots[n.ID] = rt.Env.NewResource(fmt.Sprintf("reduce-slots-n%d-%s", n.ID, job.Name), job.reduceSlots(len(nodes)))
	}
	for r := 0; r < job.Reducers; r++ {
		r := r
		node := nodes[r%len(nodes)]
		rt.Env.Go(fmt.Sprintf("reduce-%d-n%d", r, node.ID), func(p *sim.Proc) {
			slot := slots[node.ID]
			slot.Acquire(p, 1)
			if rt.Auditing() {
				rt.Audit.TaskLaunched("reduce")
			}
			rt.Emit(trace.TaskStart, SpanReduce, node.ID, r, 0)
			task(p, node, r)
			rt.Emit(trace.TaskFinish, SpanReduce, node.ID, r, 0)
			slot.Release(1)
			rt.Counters.Add(CtrReduceTasks, 1)
			if rt.Auditing() {
				rt.Audit.TaskCompleted("reduce")
			}
			wg.Done()
			if job.Progress != nil {
				job.Progress("reduce", job.Reducers-wg.Pending(), job.Reducers)
			}
		})
	}
	return wg
}

// ReducerNode returns the node reducer r runs on under RunReduces placement.
func (rt *Runtime) ReducerNode(r int) *cluster.Node {
	nodes := rt.Cluster.ComputeNodes()
	return nodes[r%len(nodes)]
}
