package engine

import (
	"fmt"

	"onepass/internal/faults"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// InstallFaults spawns one injector process per scheduled fault. Every
// injector waits on the job-completion trigger with its fault time as the
// timeout, so a fault scheduled past job completion cancels cleanly instead
// of keeping the event heap alive and stretching the measured makespan.
//
// onNodeFail, when non-nil, runs right after a NodeFailure is applied —
// engines pass the hook that marks the dead node's registered map outputs
// lost (Registry.FailNode). Windowed degradations are restored when their
// window closes or the job finishes, whichever comes first, so a shared
// cluster is handed back clean to chained jobs.
func (rt *Runtime) InstallFaults(sched faults.Schedule, onNodeFail func(node int)) {
	if sched.Empty() {
		return
	}
	if err := sched.Validate(len(rt.Cluster.Nodes())); err != nil {
		panic(err)
	}
	for i, f := range sched.Faults {
		f := f
		rt.Env.Go(fmt.Sprintf("fault-%d-%s-n%d", i, f.Kind, f.Node), func(p *sim.Proc) {
			delay := f.At - rt.Env.Now().Sub(rt.start)
			if rt.waitDoneOr(p, delay) {
				return // job finished before the fault was due
			}
			rt.inject(p, f, onNodeFail)
		})
	}
}

func (rt *Runtime) inject(p *sim.Proc, f faults.Fault, onNodeFail func(node int)) {
	node := rt.Cluster.Node(f.Node)
	rt.Counters.Add(CtrFaultsInjected, 1)
	rt.Emit(trace.Fault, "fault-"+f.Kind.String(), f.Node, -1, 0,
		trace.Num("factor", f.Factor), trace.Num("windowSec", f.For.Seconds()))
	switch f.Kind {
	case faults.NodeFailure:
		node.Fail()
		if onNodeFail != nil {
			onNodeFail(f.Node)
		}
		return
	case faults.DiskSlow:
		node.SetDiskSlowdown(f.Factor)
	case faults.NetDegrade:
		rt.Cluster.Net.SetDegraded(f.Node, f.Factor)
	case faults.Straggler:
		node.SetCPUSlowdown(f.Factor)
	}
	// Hold the degradation for its window (or until the job ends), then
	// restore. Overlapping windows on the same node restore to full speed
	// when the first one closes; schedules wanting compound behaviour should
	// use disjoint windows.
	if f.For > 0 {
		rt.waitDoneOr(p, f.For)
	} else if !rt.finished {
		rt.jobDone.Wait(p)
	}
	switch f.Kind {
	case faults.DiskSlow:
		node.SetDiskSlowdown(1)
	case faults.NetDegrade:
		rt.Cluster.Net.SetDegraded(f.Node, 1)
	case faults.Straggler:
		node.SetCPUSlowdown(1)
	}
	rt.Emit(trace.Fault, "fault-"+f.Kind.String()+"-restored", f.Node, -1, 0)
}
