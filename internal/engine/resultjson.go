package engine

import (
	"encoding/json"

	"onepass/internal/metrics"
	"onepass/internal/sim"
)

// resultJSON mirrors Result for persistence. Result's only unexported field
// (haveFirst) distinguishes "no output" from "first output at virtual time
// zero", so it must round-trip for cached results to render identically to
// fresh ones.
type resultJSON struct {
	Job    string       `json:"job"`
	Engine string       `json:"engine"`
	Mk     sim.Duration `json:"makespan"`

	Output      map[string]string `json:"output,omitempty"`
	OutputPairs int               `json:"outputPairs"`
	OutputBytes int64             `json:"outputBytes"`

	FirstOutputAt sim.Time        `json:"firstOutputAt"`
	HaveFirst     bool            `json:"haveFirst"`
	Snapshots     []Snapshot      `json:"snapshots,omitempty"`
	Progress      []ProgressPoint `json:"progress,omitempty"`

	CPU      *metrics.CPUAccount `json:"cpu"`
	Counters *metrics.Counters   `json:"counters"`

	CPUUtil      *metrics.Series   `json:"cpuUtil"`
	Iowait       *metrics.Series   `json:"iowait"`
	BytesRead    *metrics.Series   `json:"bytesRead"`
	BytesWritten *metrics.Series   `json:"bytesWritten"`
	NetBytes     *metrics.Series   `json:"netBytes"`
	PerNode      []*NodeSeries     `json:"perNode,omitempty"`
	Timeline     *metrics.Timeline `json:"timeline"`
}

// MarshalJSON encodes the result, including the unexported first-output
// marker, for the experiment run cache.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Job: r.Job, Engine: r.Engine, Mk: r.Makespan,
		Output: r.Output, OutputPairs: r.OutputPairs, OutputBytes: r.OutputBytes,
		FirstOutputAt: r.FirstOutputAt, HaveFirst: r.haveFirst, Snapshots: r.Snapshots,
		Progress: r.Progress,
		CPU:      r.CPU, Counters: r.Counters,
		CPUUtil: r.CPUUtil, Iowait: r.Iowait, BytesRead: r.BytesRead,
		BytesWritten: r.BytesWritten, NetBytes: r.NetBytes, PerNode: r.PerNode,
		Timeline: r.Timeline,
	})
}

// UnmarshalJSON decodes a result persisted by MarshalJSON.
func (r *Result) UnmarshalJSON(b []byte) error {
	var rj resultJSON
	if err := json.Unmarshal(b, &rj); err != nil {
		return err
	}
	*r = Result{
		Job: rj.Job, Engine: rj.Engine, Makespan: rj.Mk,
		Output: rj.Output, OutputPairs: rj.OutputPairs, OutputBytes: rj.OutputBytes,
		FirstOutputAt: rj.FirstOutputAt, haveFirst: rj.HaveFirst, Snapshots: rj.Snapshots,
		Progress: rj.Progress,
		CPU:      rj.CPU, Counters: rj.Counters,
		CPUUtil: rj.CPUUtil, Iowait: rj.Iowait, BytesRead: rj.BytesRead,
		BytesWritten: rj.BytesWritten, NetBytes: rj.NetBytes, PerNode: rj.PerNode,
		Timeline: rj.Timeline,
	}
	return nil
}
