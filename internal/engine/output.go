package engine

import (
	"fmt"

	"onepass/internal/kv"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// OutputCollector funnels reducer emits into DFS part files and the Result,
// recording first-output latency — the observable that distinguishes
// incremental engines from blocking ones.
type OutputCollector struct {
	rt      *Runtime
	job     *Job
	res     *Result
	writers map[int]*dfsWriterRef

	// NewSink, when set, replaces the DFS writer for each partition: the
	// returned append function receives every flushed write-behind buffer.
	// The resident engine uses it to land reduce output in memory (then
	// publishes it via dfs.RegisterResident) while keeping the checksum,
	// serialize charges, retained output, and counters identical to the
	// disk path.
	NewSink func(r, nodeID int) func(p *sim.Proc, data []byte)
}

type dfsWriterRef struct {
	append func(p *sim.Proc, data []byte)
	buf    []byte
}

// outputFlushBytes is the per-reducer write-behind buffer for job output —
// emits stream into memory and hit the DFS in large sequential appends.
const outputFlushBytes = 128 << 10

// NewOutputCollector returns a collector for job writing under
// job.OutputPath (part-r-N per reducer).
func (rt *Runtime) NewOutputCollector(job *Job, res *Result) *OutputCollector {
	if job.RetainOutput {
		res.Output = make(map[string]string)
	}
	return &OutputCollector{rt: rt, job: job, res: res, writers: make(map[int]*dfsWriterRef)}
}

// Emit writes one output pair from reducer r running on node.
func (oc *OutputCollector) Emit(p *sim.Proc, r int, nodeID int, key, val []byte) {
	w := oc.writers[r]
	if w == nil {
		if oc.NewSink != nil {
			w = &dfsWriterRef{append: oc.NewSink(r, nodeID)}
		} else {
			path := fmt.Sprintf("%s/part-r-%05d", oc.job.OutputPath, r)
			dw, err := oc.rt.DFS.CreateWriter(path, nodeID, oc.job.DiscardOutput)
			if err != nil {
				panic(fmt.Sprintf("engine: creating output %s: %v", path, err))
			}
			w = &dfsWriterRef{append: dw.Append}
		}
		oc.writers[r] = w
	}
	// Consume key and val completely before the first blocking call: callers
	// pass scratch buffers that other processes may overwrite while this one
	// is suspended inside Compute or a DFS append. The pair is encoded
	// straight into the write-behind buffer (dfs.Writer.Append copies, so the
	// buffer is reused across flushes) and the checksum/retained copies are
	// staged now, applied after the charge to keep event ordering identical.
	before := len(w.buf)
	w.buf = kv.AppendPair(w.buf, key, val)
	encLen := len(w.buf) - before
	sum := pairHash(key, val)
	var retKey, retVal string
	if oc.job.RetainOutput {
		retKey, retVal = string(key), string(val)
	}
	node := oc.rt.Cluster.Node(nodeID)
	node.Compute(p, Dur(float64(encLen), oc.job.Costs.merged().SerializeNsPerByte), PhaseReduce)
	if len(w.buf) >= outputFlushBytes {
		w.append(p, w.buf)
		w.buf = w.buf[:0]
	}

	if !oc.res.haveFirst {
		oc.res.haveFirst = true
		oc.res.FirstOutputAt = p.Now()
		oc.rt.Emit(trace.FirstOutput, "first-output", nodeID, r, 0)
	}
	oc.res.OutputPairs++
	oc.res.OutputBytes += int64(encLen)
	// Summing per-pair hashes keeps the digest independent of emission
	// order (reducers finish in nondeterministic-looking but seeded order)
	// while still catching a duplicated or missing pair.
	oc.res.OutputChecksum += sum
	oc.rt.Counters.Add(CtrOutputBytes, float64(encLen))
	if oc.job.RetainOutput {
		oc.res.Output[retKey] = retVal
	}
}

// Close flushes reducer r's buffered output; every engine's reduce task
// calls it once after its last emit.
func (oc *OutputCollector) Close(p *sim.Proc, r int) {
	w := oc.writers[r]
	if w == nil || len(w.buf) == 0 {
		return
	}
	w.append(p, w.buf)
	w.buf = w.buf[:0]
}

// NoteSnapshot records an early-answer snapshot on the result.
func (oc *OutputCollector) NoteSnapshot(at sim.Time, fraction float64, pairs int) {
	oc.res.Snapshots = append(oc.res.Snapshots, Snapshot{At: at, Fraction: fraction, Pairs: pairs})
}

// NoteProgress appends one progress-vs-accuracy point. Pairs and
// SpilledBytes are cumulative; engines batch calls (per emission burst, not
// per pair) to bound the series.
func (oc *OutputCollector) NoteProgress(at sim.Time, mapFraction float64, pairs int, spilledBytes int64) {
	oc.res.Progress = append(oc.res.Progress, ProgressPoint{
		At: at, MapFraction: mapFraction, Pairs: pairs, SpilledBytes: spilledBytes,
	})
}

// OutputPairs returns the pairs emitted so far.
func (oc *OutputCollector) OutputPairs() int { return oc.res.OutputPairs }

// pairHash digests one key/value pair with FNV-1a, with a separator so
// ("ab","c") and ("a","bc") differ.
func pairHash(key, val []byte) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for _, b := range val {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
