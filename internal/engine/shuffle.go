package engine

import (
	"fmt"

	"onepass/internal/disk"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// MapOutput is one completed map task's partitioned output, persisted on
// the mapper node's scratch store as a single partition-ordered file plus
// an index — Hadoop's file.out/file.out.index layout, whose synchronous
// write the paper measures in §III.B.2.
type MapOutput struct {
	TaskID int
	Node   int
	Store  *disk.Store

	// File holds all partitions back to back; PartOff/PartLen index them.
	File    *disk.File
	PartOff []int64
	PartLen []int64

	// Leftover, when non-nil for a partition, supersedes the main file for
	// pull fetches: the hash engine stages chunks it could not push there.
	Leftover []*disk.File

	CompletedAt sim.Time
	// Pushed marks partitions already delivered through push shuffle, so
	// pull-side fetchers skip them.
	Pushed []bool
	// Delivered counts push chunks successfully delivered per partition.
	// Re-execution after a node failure regenerates only the undelivered
	// tail, so recovered pulls never duplicate chunks a reducer already
	// ingested.
	Delivered []int
	// Lost marks the output as unavailable (its node failed); fetches
	// trigger re-execution of the map task.
	Lost bool

	consumed int
}

// NewMapOutput writes buf's partitions (already grouped by partition) as
// one file on node's scratch store and returns the indexed output.
// Callers charge serialization CPU themselves.
func NewMapOutput(p *sim.Proc, store *disk.Store, name string, taskID, node, parts int,
	encoded func(part int) []byte) *MapOutput {
	out := &MapOutput{
		TaskID: taskID, Node: node, Store: store,
		PartOff: make([]int64, parts), PartLen: make([]int64, parts),
		Pushed: make([]bool, parts), Delivered: make([]int, parts),
	}
	// Collect the partitions first so the concatenated file is allocated at
	// its exact size instead of doubling up to it.
	encs := make([][]byte, parts)
	total := 0
	for r := 0; r < parts; r++ {
		encs[r] = encoded(r)
		total += len(encs[r])
	}
	all := make([]byte, 0, total)
	for r := 0; r < parts; r++ {
		out.PartOff[r] = int64(len(all))
		out.PartLen[r] = int64(len(encs[r]))
		all = append(all, encs[r]...)
	}
	out.File = store.Create(name, false)
	if len(all) > 0 {
		store.Append(p, out.File, all)
	}
	return out
}

// Parts returns the number of reduce partitions.
func (o *MapOutput) Parts() int { return len(o.PartLen) }

// PartSize returns the byte size of partition part.
func (o *MapOutput) PartSize(part int) int64 {
	if o.Leftover != nil && o.Leftover[part] != nil {
		return o.Leftover[part].Size()
	}
	return o.PartLen[part]
}

// PartData returns partition part's encoded pairs without charging I/O.
func (o *MapOutput) PartData(part int) []byte {
	if o.Leftover != nil && o.Leftover[part] != nil {
		return o.Leftover[part].Data()
	}
	if o.File == nil || o.File.Data() == nil {
		return nil
	}
	off := o.PartOff[part]
	return o.File.Data()[off : off+o.PartLen[part]]
}

// ConsumePart releases partition part after its one consumer fetched it;
// when every partition is consumed the backing file is deleted so host
// memory stays bounded across large runs.
func (o *MapOutput) ConsumePart(part int) {
	if o.Leftover != nil && o.Leftover[part] != nil {
		o.Store.Delete(o.Leftover[part].Name())
		o.Leftover[part] = nil
		return
	}
	o.consumed++
	if o.consumed >= len(o.PartLen) && o.File != nil {
		o.Store.Delete(o.File.Name())
	}
}

// ReleaseFile drops the persisted copy early (hash engine: everything was
// pushed, the file existed only for fault tolerance).
func (o *MapOutput) ReleaseFile() {
	if o.File != nil {
		o.Store.Delete(o.File.Name())
		o.File = nil
	}
}

// WasPushed reports whether partition part was already push-delivered.
func (o *MapOutput) WasPushed(part int) bool {
	return o.Pushed != nil && o.Pushed[part]
}

// Registry is the pull-shuffle rendezvous: the centralized service reducers
// poll for completed mappers (§II.A). Completions are broadcast so waiting
// fetchers wake immediately rather than on a poll interval — the paper's
// "data transfer happens soon after a mapper completes".
type Registry struct {
	rt        *Runtime
	totalMaps int
	outs      []*MapOutput
	byTask    map[int]bool
	trig      *sim.Trigger
	// FreshWindow is how long a completed map output is assumed to remain
	// in the mapper's page cache; fetches within it skip the source disk
	// read.
	FreshWindow sim.Duration
	// Reexec, when set, re-runs a lost map task and returns its fresh
	// output — the fault-tolerance path that justifies persisting map
	// output in the first place (§III.B.2). It receives the lost output so
	// push engines can regenerate only the chunks that were never
	// delivered (lost.Delivered / lost.Pushed).
	Reexec func(p *sim.Proc, readerNode int, lost *MapOutput) *MapOutput
	// reexecWait serializes recovery: the first fetcher of a lost output
	// re-runs the task, later fetchers wait for it instead of piling on.
	reexecWait map[int]*sim.Trigger
}

// NewRegistry returns a registry expecting totalMaps completions.
func (rt *Runtime) NewRegistry(totalMaps int) *Registry {
	return &Registry{
		rt:          rt,
		totalMaps:   totalMaps,
		byTask:      make(map[int]bool),
		trig:        rt.Env.NewTrigger("map-completions"),
		FreshWindow: 30 * sim.Second,
		reexecWait:  make(map[int]*sim.Trigger),
	}
}

// Complete registers a finished map task and wakes waiting fetchers. It is
// idempotent per task id: a speculative attempt that loses the race has its
// output discarded, exactly like Hadoop killing the backup task's commit.
// It reports whether this attempt won.
func (g *Registry) Complete(out *MapOutput) bool {
	if g.byTask[out.TaskID] {
		out.ReleaseFile()
		g.rt.Counters.Add(CtrMapTasksSpeculativeWasted, 1)
		if g.rt.Auditing() {
			g.rt.Audit.TaskWasted("map")
		}
		return false
	}
	g.byTask[out.TaskID] = true
	out.CompletedAt = g.rt.Env.Now()
	if g.rt.Cluster.Node(out.Node).Failed() {
		// The task finished writing to a machine that just died: the bytes
		// are gone; the first fetch will trigger re-execution.
		out.Lost = true
	}
	g.outs = append(g.outs, out)
	if len(g.outs) > g.totalMaps {
		panic("engine: more map completions than map tasks")
	}
	g.trig.Broadcast()
	return true
}

// FailNode marks every completed output persisted on node as lost.
func (g *Registry) FailNode(node int) {
	for _, out := range g.outs {
		if out.Node == node {
			out.Lost = true
		}
	}
}

// Completed returns the number of registered map outputs.
func (g *Registry) Completed() int { return len(g.outs) }

// TotalMaps returns the expected number of map tasks.
func (g *Registry) TotalMaps() int { return g.totalMaps }

// AllDone reports whether every map task has completed.
func (g *Registry) AllDone() bool { return len(g.outs) == g.totalMaps }

// Out returns the i-th completed map output (completion order).
func (g *Registry) Out(i int) *MapOutput { return g.outs[i] }

// WaitBeyond blocks p until more than seen outputs exist or all maps are
// done.
func (g *Registry) WaitBeyond(p *sim.Proc, seen int) {
	for len(g.outs) <= seen && !g.AllDone() {
		g.trig.Wait(p)
	}
}

// fetchBackoff is the deterministic exponential backoff a fetcher sleeps
// after abandoning a transfer whose source died mid-flight: 200ms doubling
// per attempt, capped at 5s (Hadoop's fetch retry, minus the jitter —
// determinism is the reproduction's invariant).
func fetchBackoff(attempt int) sim.Duration {
	d := 200 * sim.Millisecond
	for ; attempt > 0 && d < 5*sim.Second; attempt-- {
		d *= 2
	}
	if d > 5*sim.Second {
		d = 5 * sim.Second
	}
	return d
}

// FetchPart transfers partition part of a completed map output to
// readerNode, charging the source disk (unless still fresh in cache) and
// the network, and returns the encoded pair bytes. A source that dies
// mid-transfer voids the fetch: the fetcher backs off and retries against
// the re-executed attempt rather than returning bytes from a dead machine.
// The caller must ConsumePart afterwards.
func (g *Registry) FetchPart(p *sim.Proc, readerNode int, out *MapOutput, part int) []byte {
	for attempt := 0; ; attempt++ {
		for out.Lost {
			if g.Reexec == nil {
				panic("engine: lost map output with no re-execution path")
			}
			if tr, inFlight := g.reexecWait[out.TaskID]; inFlight {
				// Another reducer is already recovering this task.
				tr.Wait(p)
				continue
			}
			tr := g.rt.Env.NewTrigger(fmt.Sprintf("reexec-%d", out.TaskID))
			g.reexecWait[out.TaskID] = tr
			fresh := g.Reexec(p, readerNode, out)
			out.Store = fresh.Store
			out.File = fresh.File
			out.PartOff, out.PartLen = fresh.PartOff, fresh.PartLen
			out.Leftover = fresh.Leftover
			out.Pushed, out.Delivered = fresh.Pushed, fresh.Delivered
			out.Node = fresh.Node
			out.CompletedAt = p.Now()
			out.Lost = false
			delete(g.reexecWait, out.TaskID)
			tr.Broadcast()
			g.rt.Counters.Add(CtrTasksReexecuted, 1)
			g.rt.Emit(trace.Fault, "map-reexec", readerNode, -1, 0,
				trace.Num("map", float64(out.TaskID)))
		}
		size := out.PartSize(part)
		if size == 0 {
			return nil
		}
		aged := p.Now().Sub(out.CompletedAt) > g.FreshWindow
		if aged {
			// Aged out of the mapper's memory: read back from its disk, as a
			// random access competing with everything else on that spindle.
			out.Store.Device().Read(p, size, false)
		}
		g.rt.Cluster.Net.Transfer(p, out.Node, readerNode, size)
		if out.Lost {
			// The source died while we were mid-fetch: the connection is
			// gone and the bytes cannot be trusted. Back off, then loop back
			// into the re-execution path above.
			g.rt.Counters.Add(CtrShuffleRetries, 1)
			g.rt.Emit(trace.Fault, "shuffle-retry", readerNode, part, attempt,
				trace.Num("map", float64(out.TaskID)))
			p.Sleep(fetchBackoff(attempt))
			continue
		}
		data := out.PartData(part)
		g.rt.Counters.Add(CtrShuffleBytes, float64(size))
		if g.rt.Tracing() {
			diskRead := 0.0
			if aged {
				diskRead = 1
			}
			// part doubles as the reducer index under every engine's
			// partition→reducer identity mapping.
			g.rt.Emit(trace.ShuffleTransfer, "shuffle-transfer", readerNode, part, 0,
				trace.Str("mode", "pull"), trace.Num("map", float64(out.TaskID)),
				trace.Num("bytes", float64(size)), trace.Num("diskRead", diskRead))
		}
		return data
	}
}

// PushChunk is one eagerly-pushed piece of map output (HOP-style pipelining
// and the hash engine's push shuffle).
type PushChunk struct {
	FromNode int
	MapTask  int
	// Seq numbers the chunk within its (map task, reducer) stream. The map
	// function is deterministic, so a re-pushed chunk carries identical
	// content under the same (MapTask, Seq) — reducers dedup on that pair
	// when recovery or speculation can re-deliver.
	Seq  int
	Data []byte
}

// PushChannel is one reducer's inbound push queue with a byte-bounded
// backpressure threshold: when the reducer falls behind, TryPush refuses
// and the mapper stages the chunk to local disk instead — MapReduce
// Online's adaptive flow control (§III.D).
type PushChannel struct {
	rt      *Runtime
	reducer int
	// queue is FIFO with an explicit head index; popped slots are zeroed and
	// the backing array is rewound or compacted instead of reallocated.
	queue       []PushChunk
	head        int
	queuedBytes int64
	limit       int64
	trig        *sim.Trigger
	closed      bool
}

// NewPushChannels returns one channel per reducer with the given
// backpressure limit in bytes.
func (rt *Runtime) NewPushChannels(reducers int, limit int64) []*PushChannel {
	out := make([]*PushChannel, reducers)
	for r := range out {
		out[r] = &PushChannel{
			rt:      rt,
			reducer: r,
			limit:   limit,
			trig:    rt.Env.NewTrigger(fmt.Sprintf("push-r%d", r)),
		}
	}
	return out
}

// TryPush attempts to push data from fromNode to the reducer (running on
// toNode). It returns false without transferring when the queue is over its
// backpressure limit, or when the sending node has failed — a dead machine's
// NIC delivers nothing, so the chunk must reach the reducer through the
// recovery path instead.
func (pc *PushChannel) TryPush(p *sim.Proc, fromNode, toNode, mapTask, seq int, data []byte) bool {
	if pc.closed {
		// Only a losing attempt (speculation or recovery racing the
		// winner) can still be pushing after the reducer closed its
		// queue; the winner already delivered this (MapTask, Seq)
		// identity, so the chunk is a duplicate — drop it as accepted.
		return true
	}
	if pc.queuedBytes >= pc.limit {
		return false
	}
	if pc.rt.Cluster.Node(fromNode).Failed() {
		return false
	}
	pc.rt.Cluster.Net.Transfer(p, fromNode, toNode, int64(len(data)))
	if pc.rt.Cluster.Node(fromNode).Failed() {
		// Died mid-transfer: the chunk never fully arrived.
		return false
	}
	pc.rt.Counters.Add(CtrShuffleBytes, float64(len(data)))
	if pc.rt.Auditing() {
		// The one point where a pushed chunk has actually crossed the wire:
		// refused, dropped-as-duplicate, and died-mid-transfer attempts never
		// reach here, so the produced ledger records real transfers only.
		pc.rt.Audit.ShuffleProduced(fromNode, mapTask, pc.reducer, seq, int64(len(data)))
	}
	if pc.rt.Tracing() {
		pc.rt.Emit(trace.ShuffleTransfer, "shuffle-transfer", fromNode, mapTask, 0,
			trace.Str("mode", "push"), trace.Num("reducer", float64(pc.reducer)),
			trace.Num("bytes", float64(len(data))))
	}
	pc.queue = append(pc.queue, PushChunk{FromNode: fromNode, MapTask: mapTask, Seq: seq, Data: data})
	pc.queuedBytes += int64(len(data))
	pc.trig.Broadcast()
	return true
}

// Pop blocks p until a chunk is available or the channel is closed and
// drained; ok=false means end of stream.
func (pc *PushChannel) Pop(p *sim.Proc) (PushChunk, bool) {
	for pc.head == len(pc.queue) {
		if pc.closed {
			return PushChunk{}, false
		}
		pc.trig.Wait(p)
	}
	c := pc.queue[pc.head]
	pc.queue[pc.head] = PushChunk{} // release the chunk data reference
	pc.head++
	if pc.head == len(pc.queue) {
		pc.queue = pc.queue[:0]
		pc.head = 0
	} else if pc.head >= 64 && pc.head*2 >= len(pc.queue) {
		n := copy(pc.queue, pc.queue[pc.head:])
		pc.queue = pc.queue[:n]
		pc.head = 0
	}
	pc.queuedBytes -= int64(len(c.Data))
	pc.trig.Broadcast() // wake throttled producers polling for space
	return c, true
}

// QueuedBytes returns the bytes currently enqueued.
func (pc *PushChannel) QueuedBytes() int64 { return pc.queuedBytes }

// Close marks end of stream and wakes consumers.
func (pc *PushChannel) Close() {
	pc.closed = true
	pc.trig.Broadcast()
}

// WaitSpace blocks p until the queue is under its limit or closed.
func (pc *PushChannel) WaitSpace(p *sim.Proc) {
	for pc.queuedBytes >= pc.limit && !pc.closed {
		pc.trig.Wait(p)
	}
}
