package engine

import (
	"fmt"
	"sort"
	"strings"

	"onepass/internal/cluster"
	"onepass/internal/sim"
)

// AuditFailure is one violated runtime invariant, with enough node/task
// attribution to localize the bug that broke it.
type AuditFailure struct {
	// Invariant names the check that fired, e.g. "shuffle-conservation".
	Invariant string
	// Where attributes the failure to a node, task, or resource.
	Where string
	// Detail states the two sides that should have agreed.
	Detail string
}

func (f AuditFailure) String() string {
	return fmt.Sprintf("%s [%s]: %s", f.Invariant, f.Where, f.Detail)
}

// auditChunkKey identifies one unit of shuffled map output: a pushed chunk
// (seq >= 0) or a whole pulled partition / staged leftover (seq == -1).
type auditChunkKey struct {
	task, part, seq int
}

// Audit is the end-of-run invariant ledger. A Runtime carries a nil *Audit
// by default — every emission site is guarded by Runtime.Auditing(), so the
// disarmed path costs one pointer compare, mirroring trace.Sink. When armed
// it records byte-conservation ledgers (map output vs shuffle delivery net
// of combine savings, spill writes vs read-backs) and task accounting while
// the run executes, then Finish cross-checks them and sweeps the simulation
// for leaks (held resources, queued disk requests, stranded scratch files).
//
// All bookkeeping happens outside virtual time and never touches counters,
// series, or the event heap, so audited runs are byte-identical to
// unaudited ones — the determinism oracle (PR 1's cache byte-identity,
// PR 3's checksum equivalence) is unaffected by arming audits.
//
// No locking: the simulator runs exactly one process at a time, and each
// run owns a private Audit.
type Audit struct {
	// Shuffle ledger: bytes handed to the shuffle per chunk at the point of
	// actual transfer, vs bytes a reducer accepted. produced is first-wins
	// with an equality assertion (re-records come from speculative or
	// re-executed attempts, which must be deterministic); ingested
	// accumulates, since duplicate-delivery bugs must surface as imbalance.
	produced map[auditChunkKey]int64
	prodNode map[auditChunkKey]int
	ingested map[auditChunkKey]int64

	// Combine ledger, per map task: raw pair bytes out of the map function,
	// bytes the combiner elided, and final pair bytes entering the shuffle.
	rawPairs     map[int]int64
	finalPairs   map[int]int64
	combineSaved map[int]int64

	// Spill ledger, per node: intermediate bytes written to local runs,
	// stashes, or hash buckets, and bytes read back out of them.
	spillWritten map[int]int64
	spillRead    map[int]int64

	// Task accounting, per kind ("map", "reduce"): every attempt launched
	// must be accounted for as the committed completion or a wasted
	// speculative/re-executed duplicate.
	launched  map[string]int
	completed map[string]int
	wasted    map[string]int

	// SharedRuntime marks the runtime as one of several multiplexed over a
	// shared environment (internal/service): Finish then skips the
	// simulation-wide leak sweep, whose resources, live processes, and
	// scratch files legitimately belong to concurrently running jobs. The
	// service runs one CheckSim sweep itself after the whole environment
	// drains.
	SharedRuntime bool

	failures []AuditFailure
}

// NewAudit returns an armed, empty ledger.
func NewAudit() *Audit {
	return &Audit{
		produced:     make(map[auditChunkKey]int64),
		prodNode:     make(map[auditChunkKey]int),
		ingested:     make(map[auditChunkKey]int64),
		rawPairs:     make(map[int]int64),
		finalPairs:   make(map[int]int64),
		combineSaved: make(map[int]int64),
		spillWritten: make(map[int]int64),
		spillRead:    make(map[int]int64),
		launched:     make(map[string]int),
		completed:    make(map[string]int),
		wasted:       make(map[string]int),
	}
}

func (a *Audit) fail(invariant, where, detail string) {
	a.failures = append(a.failures, AuditFailure{Invariant: invariant, Where: where, Detail: detail})
}

// Fail records an externally-detected invariant violation — the hook the
// service-level fairness checks (fair admission order, starvation,
// slot conservation, weighted slot shares) report through, so scheduler
// violations surface exactly like engine conservation failures.
func (a *Audit) Fail(invariant, where, detail string) { a.fail(invariant, where, detail) }

// Failures returns the failures accumulated so far without running the
// end-of-run checks (Finish runs those).
func (a *Audit) Failures() []AuditFailure { return a.failures }

// recordOnce implements first-wins-with-equality for per-task byte figures:
// a second attempt at the same task (speculation, re-execution) must
// reproduce the first attempt's bytes exactly or the engine is
// nondeterministic.
func (a *Audit) recordOnce(m map[int]int64, invariant, what string, task int, n int64) {
	if prev, ok := m[task]; ok {
		if prev != n {
			a.fail(invariant, fmt.Sprintf("map task %d", task),
				fmt.Sprintf("%s differs across attempts: %d then %d bytes (nondeterministic attempt)", what, prev, n))
		}
		return
	}
	m[task] = n
}

// MapRawPairs records the pair bytes emitted by the map function for task,
// before any combining.
func (a *Audit) MapRawPairs(task int, bytes int64) {
	a.recordOnce(a.rawPairs, "combine-conservation", "raw map-output pair bytes", task, bytes)
}

// MapFinalPairs records the pair bytes leaving the map side for task after
// combining (equal to the raw bytes when the job has no combiner).
func (a *Audit) MapFinalPairs(task int, bytes int64) {
	a.recordOnce(a.finalPairs, "combine-conservation", "final map-output pair bytes", task, bytes)
}

// CombineSaved records the pair bytes the combiner elided for task.
func (a *Audit) CombineSaved(task int, bytes int64) {
	a.recordOnce(a.combineSaved, "combine-conservation", "combiner-elided pair bytes", task, bytes)
}

// ShuffleProduced records bytes actually transferred into the shuffle from
// node, as one chunk (seq >= 0) or a whole partition/leftover (seq == -1).
func (a *Audit) ShuffleProduced(node, task, part, seq int, n int64) {
	k := auditChunkKey{task: task, part: part, seq: seq}
	if prev, ok := a.produced[k]; ok {
		if prev != n {
			a.fail("shuffle-conservation", a.where(k),
				fmt.Sprintf("produced size differs across attempts: %d then %d bytes (nondeterministic attempt)", prev, n))
		}
		return
	}
	a.produced[k] = n
	a.prodNode[k] = node
}

// ShuffleIngested records bytes a reducer on node accepted for the chunk.
func (a *Audit) ShuffleIngested(node, task, part, seq int, n int64) {
	a.ingested[auditChunkKey{task: task, part: part, seq: seq}] += n
}

// SpillWritten records intermediate bytes written to node's local disk.
func (a *Audit) SpillWritten(node int, n int64) { a.spillWritten[node] += n }

// SpillRead records intermediate bytes read back on node.
func (a *Audit) SpillRead(node int, n int64) { a.spillRead[node] += n }

// TaskLaunched records one task attempt of the given kind starting.
func (a *Audit) TaskLaunched(kind string) { a.launched[kind]++ }

// TaskCompleted records the attempt that committed the task's output.
func (a *Audit) TaskCompleted(kind string) { a.completed[kind]++ }

// TaskWasted records an attempt whose output lost to an earlier committer.
func (a *Audit) TaskWasted(kind string) { a.wasted[kind]++ }

func (a *Audit) where(k auditChunkKey) string {
	unit := "part"
	if k.seq >= 0 {
		unit = fmt.Sprintf("chunk %d of part", k.seq)
	}
	if n, ok := a.prodNode[k]; ok {
		return fmt.Sprintf("map task %d, %s %d (produced on node %d)", k.task, unit, k.part, n)
	}
	return fmt.Sprintf("map task %d, %s %d", k.task, unit, k.part)
}

// Finish runs every end-of-run check and returns the accumulated failures
// in deterministic order. rt supplies the simulation state for leak checks;
// ledger-only callers (unit tests) may pass nil.
func (a *Audit) Finish(rt *Runtime) []AuditFailure {
	a.checkConservation()
	if rt != nil && !a.SharedRuntime {
		a.CheckSim(rt.Env, rt.Cluster)
	}
	return a.failures
}

// checkConservation cross-checks the byte ledgers and task accounting.
func (a *Audit) checkConservation() {
	// Shuffle: compare the union of chunk keys, treating a missing side as
	// zero — an empty partition may be produced but never recorded as
	// ingested (zero-size fetches skip the transfer) and vice versa.
	keys := make([]auditChunkKey, 0, len(a.produced)+len(a.ingested))
	for k := range a.produced {
		keys = append(keys, k)
	}
	for k := range a.ingested {
		if _, ok := a.produced[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].task != keys[j].task {
			return keys[i].task < keys[j].task
		}
		if keys[i].part != keys[j].part {
			return keys[i].part < keys[j].part
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		if p, in := a.produced[k], a.ingested[k]; p != in {
			a.fail("shuffle-conservation", a.where(k),
				fmt.Sprintf("produced %d bytes but reducers ingested %d", p, in))
		}
	}

	// Combine: raw map output must equal combiner savings plus final output,
	// per task.
	tasks := make([]int, 0, len(a.rawPairs))
	for t := range a.rawPairs {
		tasks = append(tasks, t)
	}
	for t := range a.finalPairs {
		if _, ok := a.rawPairs[t]; !ok {
			tasks = append(tasks, t)
		}
	}
	sort.Ints(tasks)
	for _, t := range tasks {
		raw, saved, final := a.rawPairs[t], a.combineSaved[t], a.finalPairs[t]
		if raw != saved+final {
			a.fail("combine-conservation", fmt.Sprintf("map task %d", t),
				fmt.Sprintf("raw %d bytes != combiner-elided %d + final %d", raw, saved, final))
		}
	}

	// Spills: every intermediate byte written on a node must be read back.
	nodes := make([]int, 0, len(a.spillWritten))
	for n := range a.spillWritten {
		nodes = append(nodes, n)
	}
	for n := range a.spillRead {
		if _, ok := a.spillWritten[n]; !ok {
			nodes = append(nodes, n)
		}
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if w, r := a.spillWritten[n], a.spillRead[n]; w != r {
			a.fail("spill-conservation", fmt.Sprintf("node %d", n),
				fmt.Sprintf("spilled %d bytes to disk but read back %d", w, r))
		}
	}

	// Tasks: every launched attempt is either the committed completion or a
	// wasted duplicate.
	kinds := make([]string, 0, len(a.launched))
	for k := range a.launched {
		kinds = append(kinds, k)
	}
	for k := range a.completed {
		if _, ok := a.launched[k]; !ok {
			kinds = append(kinds, k)
		}
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if a.launched[k] != a.completed[k]+a.wasted[k] {
			a.fail("task-accounting", fmt.Sprintf("%s tasks", k),
				fmt.Sprintf("launched %d != completed %d + wasted %d",
					a.launched[k], a.completed[k], a.wasted[k]))
		}
	}
}

// CheckSim sweeps the simulation for leaks once the run is over: every
// resource idle, every disk queue drained, no live processes, and no data
// left on surviving nodes' scratch disks. Finish calls it with the
// runtime's own environment for single-job runs; the service calls it once
// over the shared environment after every multiplexed job drains.
func (a *Audit) CheckSim(env *sim.Env, cl *cluster.Cluster) {
	for _, r := range env.Resources() {
		if r.InUse() != 0 || r.Waiting() != 0 {
			a.fail("resource-leak", r.Name(),
				fmt.Sprintf("%d units still held, %d still queued after run", r.InUse(), r.Waiting()))
		}
	}
	if n := env.LiveCount(); n != 0 {
		a.fail("proc-leak", "simulation", fmt.Sprintf("%d processes still live after run", n))
	}
	for _, node := range cl.Nodes() {
		for _, dev := range []struct {
			label string
			pend  int
		}{
			{"dfs disk", node.DFSDevice().Pending()},
			{"scratch disk", node.ScratchDevice().Pending()},
		} {
			if dev.pend != 0 {
				a.fail("disk-queue-leak", fmt.Sprintf("node %d %s", node.ID, dev.label),
					fmt.Sprintf("%d requests still pending after run", dev.pend))
			}
		}
		if node.Failed() {
			// A failed node legitimately strands the map outputs and staged
			// leftovers that recovery re-created elsewhere.
			continue
		}
		for _, name := range node.ScratchStore().Names() {
			f, err := node.ScratchStore().Open(name)
			if err != nil || f.Size() == 0 {
				// Zero-size files are pipelining progress markers (HOP keeps
				// one per map task for its registry), not leaked data.
				continue
			}
			a.fail("scratch-leak", fmt.Sprintf("node %d", node.ID),
				fmt.Sprintf("scratch file %q holds %d undeleted bytes after run", name, f.Size()))
		}
	}
}

// FormatAuditFailures renders failures one per line for reports and errors.
func FormatAuditFailures(failures []AuditFailure) string {
	msgs := make([]string, len(failures))
	for i, f := range failures {
		msgs[i] = f.String()
	}
	return strings.Join(msgs, "\n")
}
