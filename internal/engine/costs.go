package engine

import "onepass/internal/sim"

// CostModel converts real work done by the engines — records parsed, bytes
// moved through user code, key comparisons executed by real sorts and
// merges, hash-table operations — into virtual CPU time. The defaults are
// calibrated so stock-Hadoop sessionization reproduces the paper's Table II
// split (map fn ≈ 61% / sort ≈ 39% of map-phase CPU; per-user count ≈
// 52%/48%) at the 64 MB block size; see DESIGN.md §5.
type CostModel struct {
	// ParseNsPerByte is charged per input byte while iterating records of
	// line-oriented text (the regexp-ish field extraction path).
	ParseNsPerByte float64
	// BinaryParseNsPerByte is the cheap path for binary (SequenceFile-like)
	// input.
	BinaryParseNsPerByte float64
	// MapNsPerRecord is the map function body per record.
	MapNsPerRecord float64
	// MapNsPerOutputByte covers constructing and buffering emitted pairs.
	MapNsPerOutputByte float64
	// CompareNs is charged per key comparison counted by real sorts and
	// merges.
	CompareNs float64
	// HashNs is charged per hash-table operation (hash + probe) in the
	// hash engines and per partition decision in all engines.
	HashNs float64
	// CombineNsPerRecord is the combine function per input value.
	CombineNsPerRecord float64
	// ReduceNsPerRecord is the reduce function per input value.
	ReduceNsPerRecord float64
	// UpdateNsPerRecord is the incremental aggregator per value.
	UpdateNsPerRecord float64
	// SerializeNsPerByte covers encoding/decoding records at spill and
	// shuffle boundaries.
	SerializeNsPerByte float64
	// FrameworkNsPerRecord is the per-record runtime overhead outside user
	// code and sorting: deserialization, the collect path, object churn,
	// GC. It dominates real Hadoop map tasks (a 64 MB block took 21.6 s in
	// the paper while its map function + sort account for ~2.5 CPU-s). The
	// hash engine sets a lower value through its byte-array memory
	// management (§V), which is exactly the overhead that library exists
	// to remove.
	FrameworkNsPerRecord float64
}

// DefaultCosts returns the calibrated model.
func DefaultCosts() CostModel {
	return CostModel{
		ParseNsPerByte:       6.0,
		BinaryParseNsPerByte: 0.8,
		MapNsPerRecord:       90,
		MapNsPerOutputByte:   2.0,
		CompareNs:            15,
		HashNs:               25,
		CombineNsPerRecord:   40,
		ReduceNsPerRecord:    60,
		UpdateNsPerRecord:    45,
		SerializeNsPerByte:   0.5,
		FrameworkNsPerRecord: 5000,
	}
}

// merged returns j's cost model with zero fields replaced by defaults, so
// workloads override only what they need.
func (c CostModel) merged() CostModel {
	d := DefaultCosts()
	pick := func(v, def float64) float64 {
		if v == 0 {
			return def
		}
		return v
	}
	return CostModel{
		ParseNsPerByte:       pick(c.ParseNsPerByte, d.ParseNsPerByte),
		BinaryParseNsPerByte: pick(c.BinaryParseNsPerByte, d.BinaryParseNsPerByte),
		MapNsPerRecord:       pick(c.MapNsPerRecord, d.MapNsPerRecord),
		MapNsPerOutputByte:   pick(c.MapNsPerOutputByte, d.MapNsPerOutputByte),
		CompareNs:            pick(c.CompareNs, d.CompareNs),
		HashNs:               pick(c.HashNs, d.HashNs),
		CombineNsPerRecord:   pick(c.CombineNsPerRecord, d.CombineNsPerRecord),
		ReduceNsPerRecord:    pick(c.ReduceNsPerRecord, d.ReduceNsPerRecord),
		UpdateNsPerRecord:    pick(c.UpdateNsPerRecord, d.UpdateNsPerRecord),
		SerializeNsPerByte:   pick(c.SerializeNsPerByte, d.SerializeNsPerByte),
		FrameworkNsPerRecord: pick(c.FrameworkNsPerRecord, d.FrameworkNsPerRecord),
	}
}

// Dur converts n work units at nsPerUnit into a virtual duration.
func Dur(n float64, nsPerUnit float64) sim.Duration {
	return sim.Duration(n * nsPerUnit)
}
