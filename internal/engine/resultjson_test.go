package engine

import (
	"encoding/json"
	"testing"

	"onepass/internal/metrics"
	"onepass/internal/sim"
)

// sampleResult builds a Result with every field populated the way a real
// run populates them, including the unexported first-output marker.
func sampleResult() *Result {
	cpu := metrics.NewCPUAccount()
	cpu.Add(PhaseMapFn, 1500*sim.Millisecond)
	cpu.Add(PhaseSort, 700*sim.Millisecond)
	ctr := metrics.NewCounters()
	ctr.Add(CtrMapInputBytes, 1<<20)
	ctr.Add(CtrSortComparisons, 12345)
	series := func(name string) *metrics.Series {
		s := metrics.NewSeries(name, "fraction", 250*sim.Millisecond)
		s.Add(0, 0.25)
		s.Add(sim.Time(600*int64(sim.Millisecond)), 1.0/3.0)
		return s
	}
	tl := metrics.NewTimeline()
	tl.Begin(SpanMap, 0).End(sim.Time(int64(2 * sim.Second)))
	tl.Begin(SpanReduce, sim.Time(int64(sim.Second))).End(sim.Time(int64(3 * sim.Second)))
	return &Result{
		Job: "per-user-count", Engine: "hash-incremental",
		Makespan:    3 * sim.Second,
		Output:      map[string]string{"u1": "7"},
		OutputPairs: 1, OutputBytes: 42,
		FirstOutputAt: sim.Time(int64(sim.Second)), haveFirst: true,
		Snapshots: []Snapshot{{At: sim.Time(int64(sim.Second)), Fraction: 0.25, Pairs: 3}},
		CPU:       cpu, Counters: ctr,
		CPUUtil: series("cpu-util"), Iowait: series("cpu-iowait"),
		BytesRead: series("disk-bytes-read"), BytesWritten: series("disk-bytes-written"),
		NetBytes: series("net-bytes"), Timeline: tl,
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res := sampleResult()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}

	if got.Makespan != res.Makespan || got.Job != res.Job || got.Engine != res.Engine {
		t.Fatalf("headline mismatch: %s vs %s", got.Summary(), res.Summary())
	}
	if got.FirstOutputAt != res.FirstOutputAt || got.haveFirst != res.haveFirst {
		t.Fatalf("first-output marker lost: %v/%v vs %v/%v",
			got.FirstOutputAt, got.haveFirst, res.FirstOutputAt, res.haveFirst)
	}
	if got.OutputPairs != res.OutputPairs || got.Output["u1"] != "7" {
		t.Fatalf("output lost: %+v", got)
	}
	if len(got.Snapshots) != 1 || got.Snapshots[0] != res.Snapshots[0] {
		t.Fatalf("snapshots lost: %+v", got.Snapshots)
	}
	if got.CPU.Total() != res.CPU.Total() {
		t.Fatalf("CPU total %v != %v", got.CPU.Total(), res.CPU.Total())
	}
	for _, n := range res.Counters.Names() {
		if got.Counters.Get(n) != res.Counters.Get(n) {
			t.Fatalf("counter %s: %v != %v", n, got.Counters.Get(n), res.Counters.Get(n))
		}
	}
	if got.CPUUtil.Len() != res.CPUUtil.Len() || got.CPUUtil.Bucket != res.CPUUtil.Bucket {
		t.Fatal("cpuUtil series mismatch")
	}
	if got.CPUUtil.At(2) != res.CPUUtil.At(2) {
		t.Fatalf("series value mismatch: %v != %v", got.CPUUtil.At(2), res.CPUUtil.At(2))
	}
	if len(got.Timeline.Spans()) != len(res.Timeline.Spans()) {
		t.Fatalf("timeline spans %d != %d", len(got.Timeline.Spans()), len(res.Timeline.Spans()))
	}
	if _, end, ok := got.Timeline.PhaseWindow(SpanReduce); !ok || end != sim.Time(int64(3*sim.Second)) {
		t.Fatalf("timeline phase window lost: %v %v", end, ok)
	}

	// A second marshal of the decoded result must be byte-identical: the
	// run cache and the determinism guarantee both rest on this.
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("re-marshal of decoded result differs from original")
	}
}
