package engine

import (
	"strings"
	"testing"
)

// balancedAudit builds a ledger in which every invariant holds: one map task
// whose combiner elided 40 of 100 raw bytes, whose 60 final bytes were
// shuffled as one pushed chunk and one leftover partition and fully
// ingested, 500 spill bytes written and read back, and clean task
// accounting including one wasted speculative attempt.
func balancedAudit() *Audit {
	a := NewAudit()
	a.MapRawPairs(0, 100)
	a.CombineSaved(0, 40)
	a.MapFinalPairs(0, 60)
	a.ShuffleProduced(1, 0, 0, 0, 50)
	a.ShuffleIngested(2, 0, 0, 0, 50)
	a.ShuffleProduced(1, 0, 1, -1, 10)
	a.ShuffleIngested(3, 0, 1, -1, 10)
	a.SpillWritten(2, 500)
	a.SpillRead(2, 500)
	a.TaskLaunched("map")
	a.TaskLaunched("map")
	a.TaskCompleted("map")
	a.TaskWasted("map")
	a.TaskLaunched("reduce")
	a.TaskCompleted("reduce")
	return a
}

func wantInvariant(t *testing.T, failures []AuditFailure, invariant, detail string) {
	t.Helper()
	if len(failures) != 1 {
		t.Fatalf("got %d failures, want exactly 1 (%s):\n%s",
			len(failures), invariant, FormatAuditFailures(failures))
	}
	f := failures[0]
	if f.Invariant != invariant {
		t.Fatalf("invariant %q fired, want %q (%s)", f.Invariant, invariant, f)
	}
	if !strings.Contains(f.Detail, detail) {
		t.Fatalf("failure %q does not mention %q", f, detail)
	}
	if f.Where == "" {
		t.Fatalf("failure %q has no attribution", f)
	}
}

func TestAuditBalancedLedgerPasses(t *testing.T) {
	if failures := balancedAudit().Finish(nil); len(failures) != 0 {
		t.Fatalf("balanced ledger failed:\n%s", FormatAuditFailures(failures))
	}
}

func TestAuditShuffleConservationFires(t *testing.T) {
	// A chunk handed to the shuffle that no reducer ever accepted — the
	// signature of a dropped transfer.
	a := balancedAudit()
	a.ShuffleProduced(1, 7, 2, 0, 999)
	wantInvariant(t, a.Finish(nil), "shuffle-conservation", "produced 999 bytes but reducers ingested 0")
}

func TestAuditShuffleDuplicateDeliveryFires(t *testing.T) {
	// The same chunk ingested twice — dedup logic broken on the reduce side.
	a := balancedAudit()
	a.ShuffleIngested(2, 0, 0, 0, 50)
	wantInvariant(t, a.Finish(nil), "shuffle-conservation", "ingested 100")
}

func TestAuditNondeterministicAttemptFires(t *testing.T) {
	// A re-executed attempt producing a different chunk size than the
	// original — recovery is supposed to be byte-deterministic.
	a := balancedAudit()
	a.ShuffleProduced(4, 0, 0, 0, 51)
	wantInvariant(t, a.Finish(nil), "shuffle-conservation", "nondeterministic attempt")
}

func TestAuditCombineConservationFires(t *testing.T) {
	// Final bytes exceeding raw minus combiner savings — a counter that
	// forgot part of the data path.
	a := balancedAudit()
	a.MapRawPairs(5, 100)
	a.CombineSaved(5, 40)
	a.MapFinalPairs(5, 61)
	wantInvariant(t, a.Finish(nil), "combine-conservation", "raw 100 bytes != combiner-elided 40 + final 61")
}

func TestAuditSpillConservationFires(t *testing.T) {
	// Bytes spilled to disk that were never merged or hashed back.
	a := balancedAudit()
	a.SpillWritten(3, 123)
	wantInvariant(t, a.Finish(nil), "spill-conservation", "spilled 123 bytes to disk but read back 0")
}

func TestAuditTaskAccountingFires(t *testing.T) {
	// A launched attempt that neither committed nor lost a speculative race.
	a := balancedAudit()
	a.TaskLaunched("reduce")
	wantInvariant(t, a.Finish(nil), "task-accounting", "launched 2 != completed 1 + wasted 0")
}

func TestAuditErrorFormatting(t *testing.T) {
	res := &Result{}
	if err := res.AuditError(); err != nil {
		t.Fatalf("clean result returned audit error %v", err)
	}
	res.AuditFailures = []AuditFailure{{Invariant: "spill-conservation", Where: "node 3", Detail: "spilled 1 byte"}}
	err := res.AuditError()
	if err == nil {
		t.Fatal("failing result returned nil audit error")
	}
	for _, want := range []string{"spill-conservation", "node 3", "1 audit failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("audit error %q missing %q", err, want)
		}
	}
}
