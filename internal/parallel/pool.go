// Package parallel provides a small bounded worker pool for CPU-bound
// fan-out: N goroutines drain an indexed task list, a panic in any task is
// captured and returned as an error (with the stack it carried), and a
// context cancellation stops new tasks from starting. The experiment driver
// uses it to run independent simulations concurrently — each task owns its
// own sim.Env, so the pool needs no shared-state machinery beyond the index
// feed.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered inside a pool task so the caller can
// distinguish "task panicked" from "task returned an error", re-panic if it
// wants the old behaviour, and log the original stack.
type PanicError struct {
	Index int    // task index that panicked
	Value any    // the recovered value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// Workers clamps n to a sane pool size: n if positive, else GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0..n-1) on up to workers goroutines (GOMAXPROCS when
// workers <= 0) and blocks until every started task finished. The first
// task error or captured panic cancels dispatch — tasks already running
// complete, tasks not yet started are skipped — and is returned. A nil ctx
// is treated as context.Background(); a ctx cancellation likewise stops
// dispatch and surfaces as ctx.Err().
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64 // next task index to claim
		stop     atomic.Bool  // set on first failure: stop claiming tasks
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}

	runOne := func(i int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runOne(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
