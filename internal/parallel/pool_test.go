package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAllTasks(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	if err := ForEach(context.Background(), 8, n, func(i int) error {
		if done[i].Swap(true) {
			return fmt.Errorf("task %d ran twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), workers, 50, func(i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", p, workers)
	}
}

func TestForEachDefaultsToGOMAXPROCS(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(7); w != 7 {
		t.Fatalf("Workers(7) = %d", w)
	}
	// And ForEach accepts workers <= 0 without spinning up unbounded goroutines.
	if err := ForEach(context.Background(), 0, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 1, 100, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Single worker: dispatch must stop right after the failing task.
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks after error with 1 worker, want 4", got)
	}
}

func TestForEachCapturesPanic(t *testing.T) {
	err := ForEach(context.Background(), 4, 10, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 5 || pe.Value != "kaboom" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic stack/message not captured: %v", err)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var once sync.Once
	err := ForEach(ctx, 2, 1000, func(i int) error {
		started.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s > 10 {
		t.Fatalf("%d tasks started after cancellation", s)
	}
}

func TestForEachConcurrentStress(t *testing.T) {
	// Exercised under -race by CI: many workers hammering shared counters
	// through the pool must not race.
	var sum atomic.Int64
	if err := ForEach(context.Background(), 16, 500, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(500 * 499 / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}
