// Package incr holds the preserved reduce-side state of the incremental
// re-run path (i2MapReduce-style): per-(block, key) partial aggregates
// captured from a tagged run, plus the per-key finals of the last merge.
// The structures are pure data — the root package's delta runner decides
// how they are produced (a capture job), persisted (a spill-backed DFS
// write for the disk engines, a memory-resident block for the resident
// engine), and consumed (a merge job whose input this package encodes).
package incr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"onepass/internal/kv"
)

// Merge-input value markers: the first byte of every value in the encoded
// merge input says whether the rest is a cached final ('F', the key was
// untouched by the delta) or one block's partial aggregate ('P', followed
// by uvarint(block) then the partial payload).
const (
	MarkFinal   = 'F'
	MarkPartial = 'P'
)

// State is one job's preserved aggregation state between runs. It only
// composes under the aggregation law it was built with, so it is keyed by
// a monoid identity string: replaying it under a different monoid (or a
// different holistic reducer) is a checked error, not silent corruption.
type State struct {
	monoidKey string
	blocks    map[int]map[string][]byte // block → key → partial aggregate
	finals    map[string][]byte         // key → final value of the last merge
}

// New returns empty state bound to an aggregation law's identity string.
func New(monoidKey string) *State {
	return &State{
		monoidKey: monoidKey,
		blocks:    make(map[int]map[string][]byte),
		finals:    make(map[string][]byte),
	}
}

// MonoidKey returns the aggregation-law identity this state composes under.
func (s *State) MonoidKey() string { return s.monoidKey }

// CheckKey rejects partials produced under a different aggregation law.
func (s *State) CheckKey(monoidKey string) error {
	if monoidKey != s.monoidKey {
		return fmt.Errorf("incr: state preserved under %q cannot absorb partials from %q",
			s.monoidKey, monoidKey)
	}
	return nil
}

// ReplaceBlock installs block b's new per-key partials, replacing whatever
// the block held before (nil/empty partials removes the block — every
// record deleted). Keys present before or after are recorded in affected
// (when non-nil): they are exactly the keys whose groups must be re-folded.
func (s *State) ReplaceBlock(b int, partials map[string][]byte, affected map[string]bool) {
	for k := range s.blocks[b] {
		if affected != nil {
			affected[k] = true
		}
	}
	for k := range partials {
		if affected != nil {
			affected[k] = true
		}
	}
	if len(partials) == 0 {
		delete(s.blocks, b)
		return
	}
	s.blocks[b] = partials
}

// SetFinals replaces the cached finals wholesale with a merge run's retained
// output — called after every merge so unaffected keys can be served from
// cache on the next delta.
func (s *State) SetFinals(out map[string]string) {
	s.finals = make(map[string][]byte, len(out))
	for k, v := range out {
		s.finals[k] = []byte(v)
	}
}

// Keys returns the number of distinct keys with live partials.
func (s *State) Keys() int {
	seen := make(map[string]bool)
	for _, partials := range s.blocks {
		for k := range partials {
			seen[k] = true
		}
	}
	return len(seen)
}

// Blocks returns the number of blocks with live partials.
func (s *State) Blocks() int { return len(s.blocks) }

// MergeInput encodes the merge job's input: one kv pair per (key, source),
// keys ascending. An affected key contributes its partials — one 'P' value
// per holding block, blocks ascending, so the merge input is deterministic
// regardless of map iteration or capture order. An unaffected key
// contributes its single cached 'F' final. affected == nil means every key
// is affected (the priming run, before any final exists).
func (s *State) MergeInput(affected map[string]bool) ([]byte, error) {
	keys := make(map[string][]int) // key → holding blocks
	for b, partials := range s.blocks {
		for k := range partials {
			keys[k] = append(keys[k], b)
		}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var out, val []byte
	for _, k := range sorted {
		if affected != nil && !affected[k] {
			final, ok := s.finals[k]
			if !ok {
				return nil, fmt.Errorf("incr: key %q unaffected but has no cached final", k)
			}
			val = append(val[:0], MarkFinal)
			val = append(val, final...)
			out = kv.AppendPair(out, []byte(k), val)
			continue
		}
		blocks := keys[k]
		sort.Ints(blocks)
		for _, b := range blocks {
			val = append(val[:0], MarkPartial)
			val = binary.AppendUvarint(val, uint64(b))
			val = append(val, s.blocks[b][k]...)
			out = kv.AppendPair(out, []byte(k), val)
		}
	}
	return out, nil
}

// DecodePartial splits a 'P'-marked merge value into its block index and
// partial payload.
func DecodePartial(val []byte) (block int, payload []byte, err error) {
	if len(val) == 0 || val[0] != MarkPartial {
		return 0, nil, fmt.Errorf("incr: not a partial value (marker %q)", val[:min(1, len(val))])
	}
	b, n := binary.Uvarint(val[1:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("incr: truncated partial block index")
	}
	return int(b), val[1+n:], nil
}
