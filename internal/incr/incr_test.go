package incr

import (
	"bytes"
	"testing"

	"onepass/internal/kv"
)

func decodeInput(t *testing.T, buf []byte) (keys []string, vals [][]byte) {
	t.Helper()
	dec := kv.NewDecoder(buf)
	for {
		k, v, ok := dec.Next()
		if !ok {
			break
		}
		keys = append(keys, string(k))
		vals = append(vals, append([]byte(nil), v...))
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d undecoded bytes in merge input", dec.Remaining())
	}
	return keys, vals
}

func TestStateMergeInputDeterministic(t *testing.T) {
	build := func() *State {
		s := New("count")
		// Insertion order deliberately scrambled: maps and block order must
		// not leak into the encoding.
		s.ReplaceBlock(2, map[string][]byte{"b": []byte("5"), "a": []byte("1")}, nil)
		s.ReplaceBlock(0, map[string][]byte{"a": []byte("3")}, nil)
		s.ReplaceBlock(1, map[string][]byte{"c": []byte("2")}, nil)
		return s
	}
	in1, err := build().MergeInput(nil)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := build().MergeInput(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in1, in2) {
		t.Fatal("merge input not deterministic")
	}
	keys, vals := decodeInput(t, in1)
	wantKeys := []string{"a", "a", "b", "c"}
	if len(keys) != len(wantKeys) {
		t.Fatalf("got keys %v, want %v", keys, wantKeys)
	}
	for i := range wantKeys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("got keys %v, want %v", keys, wantKeys)
		}
	}
	// "a" appears in blocks 0 and 2 — partials must come out in block order.
	b0, p0, err := DecodePartial(vals[0])
	if err != nil {
		t.Fatal(err)
	}
	b1, p1, err := DecodePartial(vals[1])
	if err != nil {
		t.Fatal(err)
	}
	if b0 != 0 || string(p0) != "3" || b1 != 2 || string(p1) != "1" {
		t.Fatalf("partials for a: (%d,%q) (%d,%q)", b0, p0, b1, p1)
	}
}

func TestStateAffectedAndFinals(t *testing.T) {
	s := New("count")
	s.ReplaceBlock(0, map[string][]byte{"a": []byte("3"), "b": []byte("1")}, nil)
	s.ReplaceBlock(1, map[string][]byte{"b": []byte("5")}, nil)
	s.SetFinals(map[string]string{"a": "3", "b": "6"})

	// Replacing block 1 with a block that drops b and introduces c affects
	// exactly {b, c}; a stays served from its cached final.
	affected := make(map[string]bool)
	s.ReplaceBlock(1, map[string][]byte{"c": []byte("2")}, affected)
	if !affected["b"] || !affected["c"] || affected["a"] || len(affected) != 2 {
		t.Fatalf("affected = %v, want {b c}", affected)
	}
	in, err := s.MergeInput(affected)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := decodeInput(t, in)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	if vals[0][0] != MarkFinal || string(vals[0][1:]) != "3" {
		t.Fatalf("a not served from final: %q", vals[0])
	}
	if vals[1][0] != MarkPartial || vals[2][0] != MarkPartial {
		t.Fatalf("b/c not partials: %q %q", vals[1], vals[2])
	}

	// Emptying a block removes it and affects its keys.
	affected = make(map[string]bool)
	s.ReplaceBlock(1, nil, affected)
	if !affected["c"] || len(affected) != 1 {
		t.Fatalf("affected = %v, want {c}", affected)
	}
	if s.Blocks() != 1 || s.Keys() != 2 {
		t.Fatalf("blocks=%d keys=%d after removal", s.Blocks(), s.Keys())
	}
}

func TestStateMissingFinal(t *testing.T) {
	s := New("count")
	s.ReplaceBlock(0, map[string][]byte{"a": []byte("3")}, nil)
	if _, err := s.MergeInput(map[string]bool{}); err == nil {
		t.Fatal("unaffected key with no cached final must error")
	}
}

func TestStateCheckKey(t *testing.T) {
	s := New("monoid:workloads.CountMonoid")
	if err := s.CheckKey("monoid:workloads.CountMonoid"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckKey("monoid:workloads.PostingsMonoid"); err == nil {
		t.Fatal("mismatched monoid key accepted")
	}
}

func TestDecodePartialErrors(t *testing.T) {
	if _, _, err := DecodePartial([]byte{MarkFinal, '1'}); err == nil {
		t.Fatal("final marker accepted as partial")
	}
	if _, _, err := DecodePartial(nil); err == nil {
		t.Fatal("empty value accepted as partial")
	}
}
