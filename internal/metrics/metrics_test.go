package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"onepass/internal/sim"
)

func TestSeriesAddSet(t *testing.T) {
	s := NewSeries("x", "v", sim.Second)
	s.Add(sim.Time(500*sim.Millisecond), 2)
	s.Add(sim.Time(900*sim.Millisecond), 3)
	s.Add(sim.Time(2500*sim.Millisecond), 7)
	if got := s.At(0); got != 5 {
		t.Fatalf("bucket 0 = %v, want 5", got)
	}
	if got := s.At(1); got != 0 {
		t.Fatalf("bucket 1 = %v, want 0", got)
	}
	if got := s.At(2); got != 7 {
		t.Fatalf("bucket 2 = %v, want 7", got)
	}
	s.Set(sim.Time(0), 10)
	if got := s.At(0); got != 10 {
		t.Fatalf("after Set bucket 0 = %v, want 10", got)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries("x", "v", sim.Second)
	for i, v := range []float64{1, 5, 3} {
		s.Set(sim.Time(int64(i)*int64(sim.Second)), v)
	}
	if s.Max() != 5 {
		t.Fatalf("max = %v", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Sum() != 9 {
		t.Fatalf("sum = %v", s.Sum())
	}
	if got := s.MeanOver(1, 3); got != 4 {
		t.Fatalf("meanover = %v", got)
	}
	if got := s.MeanOver(-5, 100); got != 3 {
		t.Fatalf("clamped meanover = %v", got)
	}
	if got := s.At(99); got != 0 {
		t.Fatalf("out of range At = %v", got)
	}
}

func TestSeriesSparkAndDownsample(t *testing.T) {
	s := NewSeries("x", "v", sim.Second)
	for i := 0; i < 8; i++ {
		s.Set(sim.Time(int64(i)*int64(sim.Second)), float64(i))
	}
	spark := s.Spark()
	if len([]rune(spark)) != 8 {
		t.Fatalf("spark width = %d, want 8: %q", len([]rune(spark)), spark)
	}
	d := s.Downsample(2)
	if d.Len() != 4 {
		t.Fatalf("downsampled len = %d, want 4", d.Len())
	}
	if d.At(0) != 0.5 || d.At(3) != 6.5 {
		t.Fatalf("downsample values wrong: %v", d.Values())
	}
	if (&Series{}).Spark() == "" {
		t.Fatal("empty spark should render placeholder")
	}
}

func TestSeriesDownsampleFactorOneIsIdentity(t *testing.T) {
	s := NewSeries("x", "v", sim.Second)
	s.Add(0, 1)
	if s.Downsample(1) != s {
		t.Fatal("factor 1 should return the receiver")
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("bytes", 5)
	c.Add("bytes", 7)
	c.Add("alpha", 1)
	if c.Get("bytes") != 12 {
		t.Fatalf("bytes = %v", c.Get("bytes"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should be 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "bytes" {
		t.Fatalf("names = %v", names)
	}
}

func TestCPUAccount(t *testing.T) {
	a := NewCPUAccount()
	a.Add("map-fn", 6*sim.Second)
	a.Add("sort", 4*sim.Second)
	if a.Total() != 10 {
		t.Fatalf("total = %v", a.Total())
	}
	if got := a.Share("sort"); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("sort share = %v, want 0.4", got)
	}
	b := NewCPUAccount()
	b.Add("sort", 1*sim.Second)
	a.Merge(b)
	if a.Seconds("sort") != 5 {
		t.Fatalf("merged sort = %v", a.Seconds("sort"))
	}
	if got := NewCPUAccount().Share("x"); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
	ph := a.Phases()
	if len(ph) != 2 || ph[0] != "map-fn" {
		t.Fatalf("phases = %v", ph)
	}
}

func TestSamplerDeltaAndGauge(t *testing.T) {
	env := sim.New()
	s := NewSampler(env, sim.Second)
	cum := 0.0
	inst := 0.0
	deltas := s.TrackDelta("d", "v", func() float64 { return cum }, 1)
	gauges := s.TrackGauge("g", "v", func() float64 { return inst })
	s.Start()
	env.Go("driver", func(p *sim.Proc) {
		cum, inst = 2, 2
		p.Sleep(sim.Second) // sampler ticks at 1s after this
		cum, inst = 5, 9
		p.Sleep(sim.Second)
		s.Stop()
	})
	env.Run()
	if deltas.At(0) != 2 || deltas.At(1) != 3 {
		t.Fatalf("deltas = %v", deltas.Values())
	}
	if gauges.At(0) != 2 || gauges.At(1) != 9 {
		t.Fatalf("gauges = %v", gauges.Values())
	}
}

func TestSamplerTrackDeltaAfterStart(t *testing.T) {
	env := sim.New()
	s := NewSampler(env, sim.Second)
	cum := 0.0
	var late *Series
	s.Start()
	env.Go("driver", func(p *sim.Proc) {
		cum = 100 // history accumulated before the probe is registered
		late = s.TrackDelta("late", "v", func() float64 { return cum }, 1)
		p.Sleep(sim.Second)
		cum = 103
		p.Sleep(sim.Second)
		s.Stop()
	})
	env.Run()
	// The first bucket must hold only the delta since registration, not the
	// probe's whole cumulative history.
	if late.At(0) != 0 || late.At(1) != 3 {
		t.Fatalf("late deltas = %v, want [0 3]", late.Values())
	}
}

func TestSamplerUtilizationFromResource(t *testing.T) {
	env := sim.New()
	cpu := env.NewResource("cpu", 4)
	s := NewSampler(env, sim.Second)
	util := s.TrackDelta("cpu", "util", func() float64 { return cpu.BusyIntegral() }, 1.0/4.0)
	s.Start()
	env.Go("worker", func(p *sim.Proc) {
		cpu.Use(p, 2, 3*sim.Second) // 50% busy for 3s
		s.Stop()
	})
	env.Run()
	for i := 0; i < 3; i++ {
		if got := util.At(i); math.Abs(got-0.5) > 1e-9 {
			t.Fatalf("util[%d] = %v, want 0.5", i, got)
		}
	}
}

func TestSamplerStartTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env := sim.New()
	s := NewSampler(env, sim.Second)
	s.Start()
	s.Start()
}

func TestTimelineCounts(t *testing.T) {
	tl := NewTimeline()
	m1 := tl.Begin("map", 0)
	m2 := tl.Begin("map", sim.Time(1*sim.Second))
	r := tl.Begin("reduce", sim.Time(2*sim.Second))
	m1.End(sim.Time(2 * sim.Second))
	m2.End(sim.Time(3 * sim.Second))
	r.End(sim.Time(4 * sim.Second))
	counts := tl.Counts(sim.Second, sim.Time(4*sim.Second))
	maps := counts["map"]
	if maps.At(0) != 1 || maps.At(1) != 2 || maps.At(2) != 1 || maps.At(3) != 0 {
		t.Fatalf("map counts = %v", maps.Values())
	}
	reduces := counts["reduce"]
	if reduces.At(1) != 0 || reduces.At(2) != 1 || reduces.At(3) != 1 {
		t.Fatalf("reduce counts = %v", reduces.Values())
	}
}

func TestTimelinePhaseWindowAndCounts(t *testing.T) {
	tl := NewTimeline()
	a := tl.Begin("merge", sim.Time(5*sim.Second))
	a.End(sim.Time(9 * sim.Second))
	b := tl.Begin("merge", sim.Time(2*sim.Second))
	b.End(sim.Time(6 * sim.Second))
	start, end, ok := tl.PhaseWindow("merge")
	if !ok || start != sim.Time(2*sim.Second) || end != sim.Time(9*sim.Second) {
		t.Fatalf("window = %v..%v ok=%v", start, end, ok)
	}
	if _, _, ok := tl.PhaseWindow("nope"); ok {
		t.Fatal("missing phase should report !ok")
	}
	if n := tl.CountByPhase()["merge"]; n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline()
	s := tl.Begin("map", 0)
	s.End(sim.Time(10 * sim.Second))
	out := tl.Render(sim.Second, sim.Time(10*sim.Second), 5)
	if !strings.Contains(out, "map") || !strings.Contains(out, "peak=1") {
		t.Fatalf("render = %q", out)
	}
}

func TestSpanDoubleEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tl := NewTimeline()
	s := tl.Begin("x", 0)
	s.End(1)
	s.End(2)
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		512:     "512 B",
		2048:    "2.00 KB",
		3 << 20: "3.00 MB",
		5 << 30: "5.00 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: for any set of spans, total bucket-count mass across phases
// equals the sum over spans of the number of buckets each overlaps.
func TestTimelineCountMassProperty(t *testing.T) {
	f := func(startsMs, lensMs []uint16) bool {
		n := len(startsMs)
		if len(lensMs) < n {
			n = len(lensMs)
		}
		if n > 30 {
			n = 30
		}
		tl := NewTimeline()
		end := sim.Time(0)
		expected := 0
		bucket := sim.Second
		for i := 0; i < n; i++ {
			start := sim.Time(int64(startsMs[i]%10000) * int64(sim.Millisecond))
			fin := start.Add(sim.Duration(int64(lensMs[i]%10000)) * sim.Millisecond)
			sp := tl.Begin("p", start)
			sp.End(fin)
			if fin > end {
				end = fin
			}
			first := int(int64(start) / int64(bucket))
			last := int(int64(fin) / int64(bucket))
			if fin > start && int64(fin)%int64(bucket) == 0 {
				last--
			}
			expected += last - first + 1
		}
		if n == 0 {
			return true
		}
		counts := tl.Counts(bucket, end)
		return int(counts["p"].Sum()) == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCPUAccountCloneSub(t *testing.T) {
	a := NewCPUAccount()
	a.Add("x", 5*sim.Second)
	base := a.Clone()
	a.Add("x", 3*sim.Second)
	a.Add("y", 2*sim.Second)
	a.Sub(base)
	if a.Seconds("x") != 3 || a.Seconds("y") != 2 {
		t.Fatalf("after sub: x=%v y=%v", a.Seconds("x"), a.Seconds("y"))
	}
	if base.Seconds("x") != 5 {
		t.Fatal("clone aliased the original")
	}
}
