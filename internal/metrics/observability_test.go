package metrics

import (
	"strings"
	"testing"

	"onepass/internal/sim"
)

func TestTimelineOpenSpanDetection(t *testing.T) {
	tl := NewTimeline()
	a := tl.Begin("map", 0)
	b := tl.Begin("reduce", sim.Time(sim.Second))
	a.End(sim.Time(2 * sim.Second))

	if a.Open() {
		t.Fatal("ended span reports Open")
	}
	if !b.Open() {
		t.Fatal("live span reports closed")
	}
	open := tl.OpenSpans()
	if len(open) != 1 || open[0] != b {
		t.Fatalf("OpenSpans = %v, want just the reduce span", open)
	}
	err := tl.CheckClosed()
	if err == nil {
		t.Fatal("CheckClosed ignored an open span")
	}
	if !strings.Contains(err.Error(), "reduce@") {
		t.Fatalf("CheckClosed error %q does not name the open span", err)
	}

	if n := tl.CloseOpenAt(sim.Time(5 * sim.Second)); n != 1 {
		t.Fatalf("CloseOpenAt closed %d spans, want 1", n)
	}
	if b.Open() || b.Finish != sim.Time(5*sim.Second) {
		t.Fatalf("span not clamped to horizon: open=%v finish=%v", b.Open(), b.Finish)
	}
	if err := tl.CheckClosed(); err != nil {
		t.Fatalf("CheckClosed after CloseOpenAt: %v", err)
	}
	// Closed span durations must be untouched by the force-close.
	if a.Finish != sim.Time(2*sim.Second) {
		t.Fatalf("closed span finish moved to %v", a.Finish)
	}
	if n := tl.CloseOpenAt(sim.Time(9 * sim.Second)); n != 0 {
		t.Fatalf("second CloseOpenAt closed %d spans, want 0", n)
	}
}

func TestTimelineCheckClosedEmpty(t *testing.T) {
	if err := NewTimeline().CheckClosed(); err != nil {
		t.Fatalf("empty timeline: %v", err)
	}
}

// The sampler's contract is one final sample on its first tick after Stop, so
// work done in the last partial interval is still captured — for both delta
// and gauge probes.
func TestSamplerFinalPartialInterval(t *testing.T) {
	env := sim.New()
	s := NewSampler(env, sim.Second)
	cum := 0.0
	inst := 0.0
	deltas := s.TrackDelta("d", "v", func() float64 { return cum }, 1)
	gauges := s.TrackGauge("g", "v", func() float64 { return inst })
	s.Start()
	env.Go("driver", func(p *sim.Proc) {
		cum, inst = 4, 4
		// Land strictly inside the third interval: updates at exactly a tick
		// boundary would race the sampler's same-instant sample.
		p.Sleep(2*sim.Second + sim.Second/4)
		cum, inst = 7, 11 // last partial interval's activity
		p.Sleep(sim.Second / 4)
		s.Stop() // at 2.5s; sampler's final tick is at 3s
	})
	env.Run()

	if deltas.Len() != 3 {
		t.Fatalf("delta series has %d buckets, want 3: %v", deltas.Len(), deltas.Values())
	}
	if deltas.At(2) != 3 {
		t.Fatalf("final partial interval delta = %v, want 3", deltas.At(2))
	}
	// No samples may be lost: the per-bucket deltas must sum to the probe's
	// final cumulative value.
	total := 0.0
	for _, v := range deltas.Values() {
		total += v
	}
	if total != cum {
		t.Fatalf("delta series sums to %v, probe ended at %v", total, cum)
	}
	if gauges.Len() != 3 || gauges.At(2) != 11 {
		t.Fatalf("gauge series = %v, want final bucket 11", gauges.Values())
	}
}
