package metrics

import "testing"

func TestDeltaAppliesInRecordedOrder(t *testing.T) {
	var d Delta
	d.Add("b", 2)
	d.Add("a", 1)
	d.Add("b", 3)
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (repeats fold)", d.Len())
	}
	c := NewCounters()
	d.ApplyTo(c)
	if got := c.Get("b"); got != 5 {
		t.Errorf("b = %v, want 5", got)
	}
	if got := c.Get("a"); got != 1 {
		t.Errorf("a = %v, want 1", got)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d after ApplyTo, want 0 (reset for reuse)", d.Len())
	}
	// Reuse after reset starts clean.
	d.Add("a", 7)
	d.ApplyTo(c)
	if got := c.Get("a"); got != 8 {
		t.Errorf("a = %v after reuse, want 8", got)
	}
}
