package metrics

// Delta is an ordered batch of counter increments recorded off the event
// loop. Pooled work closures must not touch a shared Counters bag directly:
// even though Counters is mutex-safe, map iteration order and float
// summation order would then depend on real-goroutine interleaving. A
// closure instead accumulates into its own Delta and the submitting process
// applies it after the join, at a deterministic point in virtual order.
// Increments apply in the order they were recorded, so repeated runs sum
// identically.
type Delta struct {
	names []string
	vals  []float64
}

// Add accumulates v into name. Repeats of a name fold into the earlier
// entry, keeping application order independent of how many times a closure
// touched the counter.
func (d *Delta) Add(name string, v float64) {
	for i, n := range d.names {
		if n == name {
			d.vals[i] += v
			return
		}
	}
	d.names = append(d.names, name)
	d.vals = append(d.vals, v)
}

// ApplyTo drains the delta into c in recorded order and resets it for
// reuse.
func (d *Delta) ApplyTo(c *Counters) {
	for i, n := range d.names {
		c.Add(n, d.vals[i])
	}
	d.names = d.names[:0]
	d.vals = d.vals[:0]
}

// Len returns the number of distinct counters recorded.
func (d *Delta) Len() int { return len(d.names) }
