// Package metrics collects the observables the paper plots: per-second CPU
// utilization, CPU iowait, disk bytes read/written, task timelines, and
// per-phase CPU-cycle accounting. All values are keyed by virtual time from
// the sim package; a Sampler process snapshots cumulative integrals every
// bucket and stores per-bucket deltas, mirroring how iostat/ps sampled the
// paper's physical cluster.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"onepass/internal/sim"
)

// Series is a bucketed time series. Bucket i covers virtual time
// [i*Bucket, (i+1)*Bucket).
type Series struct {
	Name   string
	Unit   string
	Bucket sim.Duration
	vals   []float64
}

// NewSeries returns an empty series with the given bucket width.
func NewSeries(name, unit string, bucket sim.Duration) *Series {
	if bucket <= 0 {
		panic("metrics: bucket must be positive")
	}
	return &Series{Name: name, Unit: unit, Bucket: bucket}
}

func (s *Series) bucketIndex(t sim.Time) int {
	return int(int64(t) / int64(s.Bucket))
}

func (s *Series) grow(idx int) {
	for len(s.vals) <= idx {
		s.vals = append(s.vals, 0)
	}
}

// Add accumulates v into the bucket containing t.
func (s *Series) Add(t sim.Time, v float64) {
	idx := s.bucketIndex(t)
	s.grow(idx)
	s.vals[idx] += v
}

// Set overwrites the bucket containing t.
func (s *Series) Set(t sim.Time, v float64) {
	idx := s.bucketIndex(t)
	s.grow(idx)
	s.vals[idx] = v
}

// Values returns the underlying bucket values.
func (s *Series) Values() []float64 { return s.vals }

// Len returns the number of buckets recorded.
func (s *Series) Len() int { return len(s.vals) }

// At returns the value of bucket i, or 0 past the end.
func (s *Series) At(i int) float64 {
	if i < 0 || i >= len(s.vals) {
		return 0
	}
	return s.vals[i]
}

// Max returns the largest bucket value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean over all buckets (0 for empty).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Sum returns the total over all buckets.
func (s *Series) Sum() float64 {
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// MeanOver returns the mean over buckets [from, to) clamped to the series.
func (s *Series) MeanOver(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.vals) {
		to = len(s.vals)
	}
	if to <= from {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

// sparkRunes index by level, low to high.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders the series as a sparkline scaled to its own maximum, for
// eyeballing figure shapes in bench output.
func (s *Series) Spark() string {
	if len(s.vals) == 0 {
		return "(empty)"
	}
	max := s.Max()
	var b strings.Builder
	for _, v := range s.vals {
		level := 0
		if max > 0 {
			level = int(v / max * float64(len(sparkRunes)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkRunes) {
			level = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// Downsample returns a new series whose buckets each aggregate factor
// consecutive buckets of s using the mean. Used to keep sparklines readable
// for long runs.
func (s *Series) Downsample(factor int) *Series {
	if factor <= 1 {
		return s
	}
	out := NewSeries(s.Name, s.Unit, s.Bucket*sim.Duration(factor))
	for i := 0; i < len(s.vals); i += factor {
		end := i + factor
		if end > len(s.vals) {
			end = len(s.vals)
		}
		sum := 0.0
		for _, v := range s.vals[i:end] {
			sum += v
		}
		out.vals = append(out.vals, sum/float64(end-i))
	}
	return out
}

// seriesJSON is the persisted form of a Series.
type seriesJSON struct {
	Name   string       `json:"name"`
	Unit   string       `json:"unit"`
	Bucket sim.Duration `json:"bucket"`
	Vals   []float64    `json:"vals"`
}

// MarshalJSON encodes the series with its bucket width, for run caching.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesJSON{Name: s.Name, Unit: s.Unit, Bucket: s.Bucket, Vals: s.vals})
}

// UnmarshalJSON decodes a series persisted by MarshalJSON.
func (s *Series) UnmarshalJSON(b []byte) error {
	var sj seriesJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return err
	}
	if sj.Bucket <= 0 {
		return fmt.Errorf("metrics: series %q has non-positive bucket %d", sj.Name, sj.Bucket)
	}
	s.Name, s.Unit, s.Bucket, s.vals = sj.Name, sj.Unit, sj.Bucket, sj.Vals
	return nil
}

// Counters is a bag of named cumulative counters (bytes spilled, records
// emitted, comparisons executed, ...). It is safe for concurrent use: the
// parallel experiment driver runs many simulations at once, and while each
// run owns its own bag, nothing in the type should force that discipline on
// future callers (e.g. a shared cross-run aggregate).
type Counters struct {
	mu   sync.Mutex
	vals map[string]float64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters { return &Counters{vals: make(map[string]float64)} }

// Add accumulates v into name.
func (c *Counters) Add(name string, v float64) {
	c.mu.Lock()
	c.vals[name] += v
	c.mu.Unlock()
}

// Get returns the value of name (0 if absent).
func (c *Counters) Get(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Names returns all counter names, sorted.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MarshalJSON encodes the bag as a plain name→value object (keys sorted by
// encoding/json, so output is deterministic).
func (c *Counters) MarshalJSON() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(c.vals)
}

// UnmarshalJSON replaces the bag's contents.
func (c *Counters) UnmarshalJSON(b []byte) error {
	vals := make(map[string]float64)
	if err := json.Unmarshal(b, &vals); err != nil {
		return err
	}
	c.mu.Lock()
	c.vals = vals
	c.mu.Unlock()
	return nil
}

// CPUAccount attributes CPU seconds to named phases ("map-fn", "sort",
// "merge", ...), reproducing the paper's Table II accounting.
type CPUAccount struct {
	seconds map[string]float64
}

// NewCPUAccount returns an empty account.
func NewCPUAccount() *CPUAccount { return &CPUAccount{seconds: make(map[string]float64)} }

// Add charges d of CPU time to phase.
func (a *CPUAccount) Add(phase string, d sim.Duration) { a.seconds[phase] += d.Seconds() }

// Seconds returns the CPU seconds charged to phase.
func (a *CPUAccount) Seconds(phase string) float64 { return a.seconds[phase] }

// Total returns the CPU seconds across all phases. Summation follows the
// sorted phase order: float addition is order-sensitive in its last bits,
// and map iteration order would make byte-identical runs report totals
// differing by ULPs.
func (a *CPUAccount) Total() float64 {
	t := 0.0
	for _, phase := range a.Phases() {
		t += a.seconds[phase]
	}
	return t
}

// Share returns phase's fraction of the total (0 if the account is empty).
func (a *CPUAccount) Share(phase string) float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	return a.seconds[phase] / t
}

// Phases returns all phase names, sorted.
func (a *CPUAccount) Phases() []string {
	names := make([]string, 0, len(a.seconds))
	for n := range a.seconds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every phase of other into a.
func (a *CPUAccount) Merge(other *CPUAccount) {
	for phase, s := range other.seconds {
		a.seconds[phase] += s
	}
}

// Clone returns a copy of the account.
func (a *CPUAccount) Clone() *CPUAccount {
	out := NewCPUAccount()
	out.Merge(a)
	return out
}

// Sub subtracts a baseline from every phase (for per-job accounting on a
// shared cluster).
func (a *CPUAccount) Sub(base *CPUAccount) {
	for phase, s := range base.seconds {
		a.seconds[phase] -= s
	}
}

// MarshalJSON encodes the account as a phase→seconds object.
func (a *CPUAccount) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.seconds)
}

// UnmarshalJSON replaces the account's contents.
func (a *CPUAccount) UnmarshalJSON(b []byte) error {
	seconds := make(map[string]float64)
	if err := json.Unmarshal(b, &seconds); err != nil {
		return err
	}
	a.seconds = seconds
	return nil
}

// FormatBytes renders a byte count with a binary-ish human suffix.
func FormatBytes(b float64) string {
	abs := math.Abs(b)
	switch {
	case abs >= 1<<30:
		return fmt.Sprintf("%.2f GB", b/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.2f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
