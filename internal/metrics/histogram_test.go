package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func histJSON(t *testing.T, h *Histogram) string {
	t.Helper()
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestHistogramQuantileExactSmall pins exactness on the singleton-bucket
// range: every value below 1<<subBits is its own bucket, so quantiles are
// exact order statistics (lowest value at rank ceil(q*n)).
func TestHistogramQuantileExactSmall(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 50; v++ {
		h.Record(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.5, 25}, {0.95, 48}, {0.99, 50}, {1, 50},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Min() != 1 || h.Max() != 50 || h.Count() != 50 || h.Sum() != 50*51/2 {
		t.Errorf("stats: min=%d max=%d count=%d sum=%d", h.Min(), h.Max(), h.Count(), h.Sum())
	}
	if h.Mean() != 25.5 {
		t.Errorf("mean = %v, want 25.5", h.Mean())
	}
}

// TestHistogramQuantileExactRepresentable pins exactness for large values
// with at most subBits significant bits — bucket lows land exactly on the
// recorded values.
func TestHistogramQuantileExactRepresentable(t *testing.T) {
	h := NewHistogram()
	// 100 values across four magnitudes, each with a single significant bit
	// (2^20ns ≈ 1.05ms), so every value is its bucket's lower bound.
	u := int64(1) << 20
	h.RecordN(u, 50)
	h.RecordN(4*u, 45)
	h.RecordN(32*u, 4)
	h.RecordN(1<<40, 1)
	if got := h.P50(); got != u {
		t.Errorf("p50 = %d, want %d", got, u)
	}
	if got := h.P95(); got != 4*u {
		t.Errorf("p95 = %d, want %d", got, 4*u)
	}
	if got := h.P99(); got != 32*u {
		t.Errorf("p99 = %d, want %d", got, 32*u)
	}
	if got := h.Max(); got != 1<<40 {
		t.Errorf("max = %d, want %d", got, int64(1)<<40)
	}
}

// TestHistogramQuantileErrorBound checks the log-bucket error contract on an
// adversarial distribution: every reported quantile is within 1/32 relative
// error of the exact order statistic, and never above it.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		rank := int64(math.Ceil(q * float64(len(vals)))) // same rank rule as Quantile
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got > exact {
			t.Errorf("q=%v: reported %d above exact %d", q, got, exact)
		}
		if float64(exact-got) > float64(exact)/32+1 {
			t.Errorf("q=%v: reported %d vs exact %d exceeds 1/32 relative error", q, got, exact)
		}
	}
}

// TestHistogramMergeAssociativeCommutative merges three random histograms in
// every grouping and order; all must serialize byte-identically, and match a
// histogram fed every value directly.
func TestHistogramMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parts := make([]*Histogram, 3)
	all := NewHistogram()
	for i := range parts {
		parts[i] = NewHistogram()
		for j := 0; j < 500+i*100; j++ {
			v := rng.Int63n(1 << 35)
			parts[i].Record(v)
			all.Record(v)
		}
	}
	clone := func(h *Histogram) *Histogram {
		out := NewHistogram()
		out.Merge(h)
		return out
	}
	// (a+b)+c
	abc := clone(parts[0])
	abc.Merge(parts[1])
	abc.Merge(parts[2])
	// a+(b+c)
	bc := clone(parts[1])
	bc.Merge(parts[2])
	aBC := clone(parts[0])
	aBC.Merge(bc)
	// c+b+a
	cba := clone(parts[2])
	cba.Merge(parts[1])
	cba.Merge(parts[0])

	want := histJSON(t, all)
	for name, h := range map[string]*Histogram{"(a+b)+c": abc, "a+(b+c)": aBC, "c+b+a": cba} {
		if got := histJSON(t, h); got != want {
			t.Errorf("%s serialization diverges from direct recording:\n got %s\nwant %s", name, got, want)
		}
	}
	// Merging an empty histogram is the identity.
	withEmpty := clone(all)
	withEmpty.Merge(NewHistogram())
	if got := histJSON(t, withEmpty); got != want {
		t.Errorf("merge with empty changed encoding")
	}
}

// TestHistogramJSONRoundTrip decodes an encoded histogram and requires
// identical re-encoding and identical quantiles.
func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewHistogram()
	for i := 0; i < 2000; i++ {
		h.Record(rng.Int63n(1 << 44))
	}
	enc := histJSON(t, h)
	back := NewHistogram()
	if err := json.Unmarshal([]byte(enc), back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := histJSON(t, back); got != enc {
		t.Fatalf("round trip changed encoding:\n got %s\nwant %s", got, enc)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("q=%v: %d after round trip, want %d", q, back.Quantile(q), h.Quantile(q))
		}
	}
	// Corrupt headers must be rejected, not silently accepted.
	bad := NewHistogram()
	if err := json.Unmarshal([]byte(`{"count":5,"sum":1,"min":0,"max":1,"buckets":[[1,2]]}`), bad); err == nil {
		t.Error("mismatched bucket total accepted")
	}
	if err := json.Unmarshal([]byte(`{"count":1,"sum":1,"min":0,"max":1,"buckets":[[1,-1]]}`), bad); err == nil {
		t.Error("negative bucket count accepted")
	}
}

// TestHistogramBucketScheme pins the bucket math: contiguous indices across
// the singleton/log boundary and bucketLow inverting bucketOf on bucket
// lower bounds.
func TestHistogramBucketScheme(t *testing.T) {
	prev := -1
	for v := int64(0); v < 4096; v++ {
		idx := bucketOf(v)
		if idx != prev && idx != prev+1 {
			t.Fatalf("bucketOf(%d) = %d, previous index %d: not contiguous", v, idx, prev)
		}
		prev = idx
		if low := bucketLow(idx); low > v || bucketOf(low) != idx {
			t.Fatalf("bucketLow(%d) = %d not a lower bound for v=%d", idx, low, v)
		}
	}
	if bucketOf(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0")
	}
}

// TestHistogramQuantileNaN pins the NaN guard: NaN fails both clamp
// comparisons (q <= 0 and q >= 1 are false), and without the explicit check
// the rank computation hits int64(math.Ceil(NaN*count)), whose result is
// platform-undefined. NaN q must deterministically report Min.
func TestHistogramQuantileNaN(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{3, 17, 290, 4096} {
		h.Record(v)
	}
	if got := h.Quantile(math.NaN()); got != h.Min() {
		t.Errorf("Quantile(NaN) = %d, want Min() = %d", got, h.Min())
	}
	empty := NewHistogram()
	if got := empty.Quantile(math.NaN()); got != 0 {
		t.Errorf("empty Quantile(NaN) = %d, want 0", got)
	}
	// Infinities were already handled by the clamps; pin that too.
	if got := h.Quantile(math.Inf(1)); got != h.Max() {
		t.Errorf("Quantile(+Inf) = %d, want Max() = %d", got, h.Max())
	}
	if got := h.Quantile(math.Inf(-1)); got != h.Min() {
		t.Errorf("Quantile(-Inf) = %d, want Min() = %d", got, h.Min())
	}
}

// TestHistogramEmpty pins zero-value-ish behaviour.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram must report zeros")
	}
	if h.Summary() != "empty" {
		t.Errorf("Summary() = %q", h.Summary())
	}
}
