package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Histogram is a mergeable log-bucketed histogram of non-negative int64
// values (virtual-time durations in nanoseconds, byte counts, queue waits).
// It is the latency machinery behind the run profiler's per-phase skew
// statistics and the p50/p95/p99 reporting a multi-tenant job service needs:
// per-tenant histograms recorded independently and merged at read time must
// give the same answer as one histogram fed everything, so Merge is exact,
// associative, and commutative (integer bucket counts and sums — no float
// accumulation order to drift).
//
// Bucketing is HDR-style: values below 1<<subBits land in singleton buckets
// (exact), larger values in log2 major buckets split into 1<<(subBits-1)
// linear sub-buckets, bounding relative quantile error at 2^-(subBits-1)
// (~1.6% at subBits=6). Count, Sum, Min, and Max are tracked exactly, so
// Max (and any quantile that resolves to the min or max) is exact for every
// distribution, and all quantiles are exact for values under 1<<subBits or
// with at most subBits significant bits (the determinism oracle the tests
// pin). Quantiles return the lowest value of the resolved bucket — a
// deterministic representative, never an interpolation.
//
// The zero value is NOT ready; use NewHistogram. Determinism: all iteration
// is over sorted bucket indices, so JSON bytes and quantiles are pure
// functions of the recorded multiset.
type Histogram struct {
	count int64
	sum   int64
	min   int64 // valid only when count > 0
	max   int64
	// buckets maps bucket index -> count. Sparse: runs record a handful of
	// distinct phases, not the full index space.
	buckets map[int]int64
}

// subBits fixes the histogram resolution: 64 singleton buckets, then 32
// linear sub-buckets per power of two (max relative error 1/32).
const subBits = 6

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64)}
}

// bucketOf maps a value to its bucket index. Negative values clamp to 0
// (durations cannot be negative; clamping keeps Record total).
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBits {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= subBits
	shift := e - subBits + 1       // >= 1
	// v>>shift is in [1<<(subBits-1), 1<<subBits); indices are contiguous:
	// shift s covers [s<<(subBits-1) + 1<<(subBits-1), s<<(subBits-1) + 1<<subBits).
	return shift<<(subBits-1) + int(uint64(v)>>uint(shift))
}

// bucketLow returns the lowest value mapping to bucket index idx — the
// deterministic representative quantiles report.
func bucketLow(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	shift := idx>>(subBits-1) - 1
	sub := idx - shift<<(subBits-1)
	return int64(sub) << uint(shift)
}

// Record adds one occurrence of v.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n occurrences of v. n <= 0 is a no-op.
func (h *Histogram) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * n
	h.buckets[bucketOf(v)] += n
}

// Merge folds other into h. Exact: bucket counts, sums, and extrema combine
// with integer arithmetic, so (a merge b) merge c == a merge (b merge c) and
// a merge b == b merge a, byte-for-byte in the JSON encoding.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for idx, n := range other.buckets {
		h.buckets[idx] += n
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the exact smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact-sum mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// sortedIndices returns the occupied bucket indices in ascending order.
func (h *Histogram) sortedIndices() []int {
	idxs := make([]int, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs
}

// Quantile returns the value at quantile q in [0,1]: the lowest value of the
// bucket containing rank ceil(q*count), clamped so Quantile(0) == Min() and
// Quantile(1) == Max() exactly. A NaN q reports Min — NaN fails both clamp
// comparisons, and int64(math.Ceil(NaN * count)) is platform-undefined.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		return h.max
	}
	var cum int64
	idxs := h.sortedIndices()
	for _, idx := range idxs {
		cum += h.buckets[idx]
		if cum >= rank {
			v := bucketLow(idx)
			// The lowest occupied bucket cannot report below the exact min,
			// nor any bucket above the exact max.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P95, P99 are the profiler's standard quantile shorthands.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }

// P95 returns the 95th percentile.
func (h *Histogram) P95() int64 { return h.Quantile(0.95) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// histogramJSON is the persisted form: sparse [index, count] pairs in
// ascending index order, so encoding is deterministic and merging two
// decoded histograms equals decoding a merged one.
type histogramJSON struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Min     int64      `json:"min"`
	Max     int64      `json:"max"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON encodes the histogram deterministically.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	hj := histogramJSON{Count: h.count, Sum: h.sum, Min: h.Min(), Max: h.max,
		Buckets: make([][2]int64, 0, len(h.buckets))}
	for _, idx := range h.sortedIndices() {
		hj.Buckets = append(hj.Buckets, [2]int64{int64(idx), h.buckets[idx]})
	}
	return json.Marshal(hj)
}

// UnmarshalJSON decodes a histogram persisted by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var hj histogramJSON
	if err := json.Unmarshal(b, &hj); err != nil {
		return err
	}
	h.count, h.sum, h.min, h.max = hj.Count, hj.Sum, hj.Min, hj.Max
	h.buckets = make(map[int]int64, len(hj.Buckets))
	var total int64
	for _, p := range hj.Buckets {
		if p[1] <= 0 {
			return fmt.Errorf("metrics: histogram bucket %d has non-positive count %d", p[0], p[1])
		}
		h.buckets[int(p[0])] += p[1]
		total += p[1]
	}
	if total != h.count {
		return fmt.Errorf("metrics: histogram bucket counts sum to %d, header says %d", total, h.count)
	}
	return nil
}

// Summary renders the headline statistics on one line, durations formatted
// by the caller's unit choice (raw integers here — the profiler wraps them
// as virtual durations).
func (h *Histogram) Summary() string {
	if h.count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%d p50=%d p95=%d p99=%d max=%d mean=%.1f",
		h.count, h.Min(), h.P50(), h.P95(), h.P99(), h.max, h.Mean())
	return b.String()
}
