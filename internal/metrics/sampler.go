package metrics

import "onepass/internal/sim"

// A Probe returns a cumulative quantity (a time integral such as busy
// unit-seconds, or a byte counter) as of the current virtual time.
type Probe func() float64

// Sampler is a simulation process that snapshots probes every interval and
// records per-interval deltas into series — the virtual-time analogue of the
// iostat/ps logging loop the paper used.
type Sampler struct {
	env      *sim.Env
	interval sim.Duration
	probes   []probeEntry
	stop     *sim.Trigger
	stopped  bool
	started  bool
}

type probeEntry struct {
	probe  Probe
	scale  float64 // multiplier applied to each delta
	series *Series
	last   float64
	gauge  bool // record the instantaneous value rather than the delta
}

// NewSampler returns a sampler ticking at the given interval.
func NewSampler(env *sim.Env, interval sim.Duration) *Sampler {
	if interval <= 0 {
		panic("metrics: sampler interval must be positive")
	}
	return &Sampler{env: env, interval: interval, stop: env.NewTrigger("sampler-stop")}
}

// TrackDelta records scale x (probe delta per interval) into a new series.
// For a busy-time integral, scale = 1/(intervalSeconds x capacity) yields
// utilization in [0,1].
func (s *Sampler) TrackDelta(name, unit string, probe Probe, scale float64) *Series {
	series := NewSeries(name, unit, s.interval)
	e := probeEntry{probe: probe, scale: scale, series: series}
	if s.started {
		// Registered mid-run: baseline at the current probe value, or the
		// first bucket would absorb the probe's whole cumulative history.
		e.last = probe()
	}
	s.probes = append(s.probes, e)
	return series
}

// TrackGauge records the instantaneous probe value each tick.
func (s *Sampler) TrackGauge(name, unit string, probe Probe) *Series {
	series := NewSeries(name, unit, s.interval)
	s.probes = append(s.probes, probeEntry{probe: probe, scale: 1, series: series, gauge: true})
	return series
}

// Start spawns the sampling process. The sampler runs until Stop is called,
// taking one final sample at the stop instant so the last partial interval
// is captured. The inter-tick wait is interruptible: a pending tick must not
// outlive the job, or it would stretch the measured makespan of any run
// shorter than the next tick boundary (the same hazard fault injectors
// avoid by waiting on the job-completion trigger).
func (s *Sampler) Start() {
	if s.started {
		panic("metrics: sampler started twice")
	}
	s.started = true
	for i := range s.probes {
		s.probes[i].last = s.probes[i].probe()
	}
	s.env.Go("metrics-sampler", func(p *sim.Proc) {
		for {
			fired := s.stop.WaitTimeout(p, s.interval)
			s.sample(p.Now())
			if fired || s.stopped {
				return
			}
		}
	})
}

// Stop wakes the sampler for its final partial sample and exits it.
func (s *Sampler) Stop() {
	s.stopped = true
	s.stop.Broadcast()
}

func (s *Sampler) sample(now sim.Time) {
	// Record into the bucket that just ended: now falls exactly on a bucket
	// boundary, so step back one nanosecond.
	at := now - 1
	if at < 0 {
		at = 0
	}
	for i := range s.probes {
		e := &s.probes[i]
		cur := e.probe()
		if e.gauge {
			e.series.Set(at, cur)
			continue
		}
		e.series.Add(at, (cur-e.last)*e.scale)
		e.last = cur
	}
}
