package metrics

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"onepass/internal/sim"
)

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := NewSeries("cpu-util", "fraction", 250*sim.Millisecond)
	s.Add(0, 0.25)
	s.Add(sim.Time(300*int64(sim.Millisecond)), 0.5)
	s.Add(sim.Time(900*int64(sim.Millisecond)), 1.0/3.0) // non-representable fraction must survive exactly
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Unit != s.Unit || got.Bucket != s.Bucket {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, s)
	}
	if !reflect.DeepEqual(got.Values(), s.Values()) {
		t.Fatalf("values mismatch: %v vs %v", got.Values(), s.Values())
	}
	// And the re-marshal is byte-identical — run caching depends on it.
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-marshal differs:\n%s\n%s", b, b2)
	}
}

func TestSeriesJSONRejectsBadBucket(t *testing.T) {
	var s Series
	if err := json.Unmarshal([]byte(`{"name":"x","unit":"u","bucket":0,"vals":[]}`), &s); err == nil {
		t.Fatal("unmarshal accepted a zero bucket")
	}
}

func TestCountersJSONRoundTrip(t *testing.T) {
	c := NewCounters()
	c.Add("map.input.bytes", 1<<20)
	c.Add("sort.comparisons", 12345.0)
	c.Add("sort.comparisons", 1.0/3.0)
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	got := NewCounters()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Names(), c.Names()) {
		t.Fatalf("names mismatch: %v vs %v", got.Names(), c.Names())
	}
	for _, n := range c.Names() {
		if got.Get(n) != c.Get(n) {
			t.Fatalf("%s: %v != %v", n, got.Get(n), c.Get(n))
		}
	}
}

func TestCPUAccountJSONRoundTrip(t *testing.T) {
	a := NewCPUAccount()
	a.Add("map-fn", 1500*sim.Millisecond)
	a.Add("sort", 700*sim.Millisecond)
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	got := NewCPUAccount()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Phases(), a.Phases()) {
		t.Fatalf("phases mismatch: %v vs %v", got.Phases(), a.Phases())
	}
	if got.Total() != a.Total() {
		t.Fatalf("total %v != %v", got.Total(), a.Total())
	}
}

func TestTimelineJSONRoundTrip(t *testing.T) {
	tl := NewTimeline()
	sp := tl.Begin("map", 0)
	sp.End(sim.Time(int64(2 * sim.Second)))
	sp2 := tl.Begin("reduce", sim.Time(int64(sim.Second)))
	sp2.End(sim.Time(int64(3 * sim.Second)))
	b, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	got := NewTimeline()
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if len(got.Spans()) != 2 {
		t.Fatalf("spans = %d, want 2", len(got.Spans()))
	}
	for i, s := range got.Spans() {
		o := tl.Spans()[i]
		if s.Phase != o.Phase || s.Start != o.Start || s.Finish != o.Finish {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, s, o)
		}
	}
	if !reflect.DeepEqual(got.Phases(), tl.Phases()) {
		t.Fatalf("phase order mismatch: %v vs %v", got.Phases(), tl.Phases())
	}
}

func TestCountersConcurrentAccumulation(t *testing.T) {
	// The parallel experiment driver can expose one bag to many goroutines;
	// under -race this test proves Add/Get/Names hold up.
	c := NewCounters()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add("shared", 1)
				_ = c.Get("shared")
				_ = c.Names()
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != goroutines*perG {
		t.Fatalf("shared = %v, want %v", got, goroutines*perG)
	}
}
