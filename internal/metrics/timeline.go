package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"onepass/internal/sim"
)

// Span is one task-phase interval on the timeline (e.g. one map task's
// execution, one multi-pass merge operation).
type Span struct {
	Phase  string
	Start  sim.Time
	Finish sim.Time
	open   bool
}

// Timeline records task spans and reproduces the paper's Fig. 2(a)/Fig. 3
// "number of tasks per operation over time" plots.
type Timeline struct {
	spans []*Span
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Begin opens a span for phase at time t. Call End on the returned span.
func (tl *Timeline) Begin(phase string, t sim.Time) *Span {
	s := &Span{Phase: phase, Start: t, open: true}
	tl.spans = append(tl.spans, s)
	return s
}

// End closes the span at time t.
func (s *Span) End(t sim.Time) {
	if !s.open {
		panic("metrics: span ended twice")
	}
	s.Finish = t
	s.open = false
}

// Spans returns all recorded spans.
func (tl *Timeline) Spans() []*Span { return tl.spans }

// Open reports whether the span is still open.
func (s *Span) Open() bool { return s.open }

// OpenSpans returns the spans still open, in recorded order.
func (tl *Timeline) OpenSpans() []*Span {
	var out []*Span
	for _, s := range tl.spans {
		if s.open {
			out = append(out, s)
		}
	}
	return out
}

// CheckClosed returns an error naming any span still open. An un-End()ed
// span reports Finish == 0 and silently corrupts duration math, so result
// rendering should check (or CloseOpenAt) before trusting the timeline.
func (tl *Timeline) CheckClosed() error {
	open := tl.OpenSpans()
	if len(open) == 0 {
		return nil
	}
	names := make([]string, 0, len(open))
	for _, s := range open {
		names = append(names, fmt.Sprintf("%s@%v", s.Phase, s.Start))
	}
	return fmt.Errorf("metrics: %d open span(s): %s", len(open), strings.Join(names, ", "))
}

// CloseOpenAt force-closes every open span at time t and returns how many it
// closed — the close-at helper for result finalization, where a leaked span
// should clamp to the horizon rather than report Finish == 0.
func (tl *Timeline) CloseOpenAt(t sim.Time) int {
	n := 0
	for _, s := range tl.spans {
		if s.open {
			s.End(t)
			n++
		}
	}
	return n
}

// Phases returns the distinct phase names in first-seen order.
func (tl *Timeline) Phases() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range tl.spans {
		if !seen[s.Phase] {
			seen[s.Phase] = true
			out = append(out, s.Phase)
		}
	}
	return out
}

// Counts returns, for each phase, a series of the number of spans active in
// each bucket. end is the overall horizon (usually the job makespan).
func (tl *Timeline) Counts(bucket sim.Duration, end sim.Time) map[string]*Series {
	out := make(map[string]*Series)
	for _, phase := range tl.Phases() {
		out[phase] = NewSeries(phase, "tasks", bucket)
	}
	nBuckets := int(int64(end)/int64(bucket)) + 1
	for _, s := range tl.spans {
		series := out[s.Phase]
		e := s.Finish
		if s.open {
			e = end
		}
		first := int(int64(s.Start) / int64(bucket))
		last := int(int64(e) / int64(bucket))
		if e > s.Start && int64(e)%int64(bucket) == 0 {
			last-- // span ending exactly on a boundary is not active in the next bucket
		}
		if last >= nBuckets {
			last = nBuckets - 1
		}
		for b := first; b <= last; b++ {
			series.Add(sim.Time(int64(b)*int64(bucket)), 1)
		}
	}
	// Pad all series to the full horizon so they align.
	for _, s := range out {
		s.Set(sim.Time(int64(nBuckets-1)*int64(bucket)), s.At(nBuckets-1))
	}
	return out
}

// PhaseWindow returns the earliest start and latest end across spans of
// phase, and whether any such span exists.
func (tl *Timeline) PhaseWindow(phase string) (start, end sim.Time, ok bool) {
	for _, s := range tl.spans {
		if s.Phase != phase {
			continue
		}
		if !ok || s.Start < start {
			start = s.Start
		}
		if s.Finish > end {
			end = s.Finish
		}
		ok = true
	}
	return start, end, ok
}

// CountByPhase returns the number of spans per phase.
func (tl *Timeline) CountByPhase() map[string]int {
	out := make(map[string]int)
	for _, s := range tl.spans {
		out[s.Phase]++
	}
	return out
}

// Render draws the per-phase task-count sparklines, one row per phase,
// ordered by first appearance — a textual Fig. 2(a).
func (tl *Timeline) Render(bucket sim.Duration, end sim.Time, maxWidth int) string {
	counts := tl.Counts(bucket, end)
	var b strings.Builder
	phases := tl.Phases()
	width := 0
	for _, p := range phases {
		if counts[p].Len() > width {
			width = counts[p].Len()
		}
	}
	factor := 1
	if maxWidth > 0 && width > maxWidth {
		factor = (width + maxWidth - 1) / maxWidth
	}
	nameW := 0
	for _, p := range phases {
		if len(p) > nameW {
			nameW = len(p)
		}
	}
	for _, p := range phases {
		s := counts[p].Downsample(factor)
		fmt.Fprintf(&b, "%-*s |%s| peak=%d\n", nameW, p, s.Spark(), int(counts[p].Max()))
	}
	return b.String()
}

// spanJSON is the persisted form of a Span. Open spans only exist while a
// run is in flight; persisted timelines are always fully closed, but the
// flag round-trips anyway so a marshaled timeline is faithful.
type spanJSON struct {
	Phase  string   `json:"phase"`
	Start  sim.Time `json:"start"`
	Finish sim.Time `json:"finish"`
	Open   bool     `json:"open,omitempty"`
}

// MarshalJSON encodes the timeline as its span list, in recorded order.
func (tl *Timeline) MarshalJSON() ([]byte, error) {
	out := make([]spanJSON, len(tl.spans))
	for i, s := range tl.spans {
		out[i] = spanJSON{Phase: s.Phase, Start: s.Start, Finish: s.Finish, Open: s.open}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a timeline persisted by MarshalJSON.
func (tl *Timeline) UnmarshalJSON(b []byte) error {
	var in []spanJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	tl.spans = make([]*Span, len(in))
	for i, s := range in {
		tl.spans[i] = &Span{Phase: s.Phase, Start: s.Start, Finish: s.Finish, open: s.Open}
	}
	return nil
}

// SortSpans orders spans by (start, phase) for stable test assertions.
func (tl *Timeline) SortSpans() {
	sort.SliceStable(tl.spans, func(i, j int) bool {
		if tl.spans[i].Start != tl.spans[j].Start {
			return tl.spans[i].Start < tl.spans[j].Start
		}
		return tl.spans[i].Phase < tl.spans[j].Phase
	})
}
