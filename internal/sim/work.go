package sim

// Parallel intra-run execution. The simulator's determinism contract —
// exactly one process executes at any virtual instant — is about *virtual*
// effects: clock reads, event scheduling, resource accounting, trace
// emission. Pure data work (sorting a buffer, folding records into a hash
// table, merging sorted runs) has no virtual effect at all, so it can run
// on real goroutines concurrently with the event loop without perturbing
// the schedule, as long as the submitting process joins the work before
// anything reads its results.
//
// StartWork dispatches such a closure to a bounded pool; Work.Wait joins
// it. The join blocks in real time only — it consumes no virtual time, no
// event-heap sequence numbers, and no scheduler state — so a run with
// workers enabled replays the exact event sequence of a serial run. With
// workers disabled (the default) StartWork runs the closure inline at the
// submit point, which keeps the serial path cheap.
//
// Ownership rule: between StartWork and Wait the closure has exclusive
// access to everything it captures. The submitting process must not touch
// captured state in that window, and the closure must not touch the Env,
// Proc, any Resource or Trigger, or any shared scratch buffer.

import "time"

// Work is a handle to one dispatched closure.
type Work struct {
	p    *Proc
	done chan struct{}
	err  interface{}
}

// WorkStats summarizes a run's StartWork activity: how many closures were
// dispatched, the aggregate real time spent inside them, and the peak
// number in flight at once. Busy is measured on the inline path too, so a
// serial run reports the closure share of its wall clock — the Amdahl
// numerator for the overlap a multi-core host can realize. All of it is
// real-time observability with zero virtual effect; none of it may feed
// back into simulation state.
type WorkStats struct {
	Dispatched  int64
	MaxInFlight int64
	Busy        time.Duration
}

// Add accumulates another run's stats (for sweeps spanning many Envs).
func (s *WorkStats) Add(o WorkStats) {
	s.Dispatched += o.Dispatched
	s.Busy += o.Busy
	if o.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = o.MaxInFlight
	}
}

// SetWorkers bounds the pool for pure data work at n concurrent closures.
// n <= 1 disables the pool: StartWork runs closures inline. Must be called
// before Run; changing it mid-run would let serial and parallel segments
// interleave within one schedule.
func (e *Env) SetWorkers(n int) {
	if e.inRun {
		panic("sim: SetWorkers called during Run")
	}
	if n > 1 {
		e.workSem = make(chan struct{}, n)
		e.workers = n
	} else {
		e.workSem = nil
		e.workers = 1
	}
}

// Workers returns the configured pool width (1 when the pool is disabled).
func (e *Env) Workers() int {
	if e.workers == 0 {
		return 1
	}
	return e.workers
}

// WorkStats returns the pool activity so far. It is exact after Run; during
// Run it is a racy snapshot, fine for progress displays only.
func (e *Env) WorkStats() WorkStats {
	return WorkStats{
		Dispatched:  e.workDispatched.Load(),
		MaxInFlight: e.workMaxInFlight.Load(),
		Busy:        time.Duration(e.workBusyNs.Load()),
	}
}

// StartWork dispatches fn to the worker pool and returns a handle the
// calling process must Wait on before it next reads anything fn writes —
// and before the process exits (leaking unjoined work is a panic). fn must
// be pure data work: no Env, Proc, Resource, or Trigger use, and no shared
// scratch. When the pool is disabled fn runs inline before StartWork
// returns.
func (p *Proc) StartWork(fn func()) *Work {
	e := p.env
	if e.workSem == nil {
		e.workDispatched.Add(1)
		t0 := time.Now()
		fn()
		e.workBusyNs.Add(int64(time.Since(t0)))
		return &Work{}
	}
	w := &Work{p: p, done: make(chan struct{})}
	p.unjoined++
	e.pendingWork++
	go func() {
		e.workSem <- struct{}{}
		e.workDispatched.Add(1)
		cur := e.workInFlight.Add(1)
		for {
			peak := e.workMaxInFlight.Load()
			if cur <= peak || e.workMaxInFlight.CompareAndSwap(peak, cur) {
				break
			}
		}
		t0 := time.Now()
		defer func() {
			e.workBusyNs.Add(int64(time.Since(t0)))
			e.workInFlight.Add(-1)
			if r := recover(); r != nil {
				w.err = r
			}
			<-e.workSem
			close(w.done)
		}()
		fn()
	}()
	return w
}

// Do runs fn inline and returns an already-joined handle. Call sites that
// are pool-eligible only under some runtime condition use it for the
// inline branch so both branches produce a Work to Wait on.
func Do(fn func()) *Work {
	fn()
	return &Work{}
}

// Wait joins the work: it blocks (in real time only) until the closure has
// finished, then re-raises any panic the closure hit on the submitting
// process's goroutine, where the simulator's normal failure path handles
// it. Waiting on an already-joined handle (including any handle from the
// inline path) is a no-op.
func (w *Work) Wait() {
	if w.done == nil {
		return
	}
	<-w.done
	w.done = nil
	w.p.unjoined--
	w.p.env.pendingWork--
	if w.err != nil {
		panic(w.err)
	}
}
