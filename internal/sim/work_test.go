package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// With the pool disabled, StartWork must run the closure inline, before it
// returns, on the submitting goroutine.
func TestStartWorkInlineWhenSerial(t *testing.T) {
	e := New()
	ran := false
	e.Go("p", func(p *Proc) {
		w := p.StartWork(func() { ran = true })
		if !ran {
			t.Error("StartWork did not run closure inline with pool disabled")
		}
		w.Wait()
	})
	e.Run()
	if e.Workers() != 1 {
		t.Errorf("Workers() = %d, want 1 by default", e.Workers())
	}
}

// With the pool enabled, submitted closures run concurrently but never more
// than the configured width at once, and Wait observes their effects.
func TestStartWorkBoundedConcurrency(t *testing.T) {
	e := New()
	e.SetWorkers(3)
	if e.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", e.Workers())
	}
	const n = 24
	var inFlight, maxSeen atomic.Int64
	results := make([]int, n)
	e.Go("p", func(p *Proc) {
		works := make([]*Work, n)
		for i := range works {
			i := i
			works[i] = p.StartWork(func() {
				cur := inFlight.Add(1)
				for {
					old := maxSeen.Load()
					if cur <= old || maxSeen.CompareAndSwap(old, cur) {
						break
					}
				}
				results[i] = i * i
				inFlight.Add(-1)
			})
		}
		for _, w := range works {
			w.Wait()
		}
		for i, r := range results {
			if r != i*i {
				t.Errorf("results[%d] = %d, want %d", i, r, i*i)
			}
		}
	})
	e.Run()
	if got := maxSeen.Load(); got > 3 {
		t.Errorf("max in-flight closures = %d, want <= 3", got)
	}
}

// Joining work must not advance virtual time or consume event sequence
// numbers: a run that dispatches work interleaved with sleeps must replay
// the exact virtual schedule of a serial run.
func TestWorkJoinHasNoVirtualEffect(t *testing.T) {
	schedule := func(workers int) string {
		e := New()
		e.SetWorkers(workers)
		var log strings.Builder
		for i := 0; i < 4; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				sum := 0
				w := p.StartWork(func() {
					for k := 0; k < 1000*(i+1); k++ {
						sum += k
					}
				})
				p.Sleep(Duration(i+1) * Millisecond)
				w.Wait()
				fmt.Fprintf(&log, "%s@%v sum=%d;", p.Name(), p.Now(), sum)
			})
		}
		e.Run()
		return log.String()
	}
	serial, parallel := schedule(1), schedule(4)
	if serial != parallel {
		t.Errorf("virtual schedule diverged:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

// A panic inside a pooled closure must surface through Wait on the
// submitting process and out of Run, like any process failure.
func TestWorkPanicPropagates(t *testing.T) {
	e := New()
	e.SetWorkers(2)
	e.Go("p", func(p *Proc) {
		w := p.StartWork(func() { panic("boom in worker") })
		w.Wait()
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic")
		}
		if fmt.Sprint(r) != "boom in worker" {
			t.Fatalf("Run panicked with %v, want the closure's panic", r)
		}
	}()
	e.Run()
}

// A process that exits without joining its work is a bug the simulator must
// catch: the closure could still be mutating captured state after the
// process's results were consumed.
func TestUnjoinedWorkPanics(t *testing.T) {
	e := New()
	e.SetWorkers(2)
	e.Go("leaky", func(p *Proc) {
		p.StartWork(func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on unjoined work")
		}
		if !strings.Contains(fmt.Sprint(r), "unjoined") {
			t.Fatalf("Run panicked with %v, want an unjoined-work diagnostic", r)
		}
	}()
	e.Run()
}

// Do returns an already-joined handle; waiting on it (even repeatedly) is a
// no-op, matching the handles StartWork returns on the inline path.
func TestDoIsAlreadyJoined(t *testing.T) {
	ran := false
	w := Do(func() { ran = true })
	if !ran {
		t.Fatal("Do did not run closure inline")
	}
	w.Wait()
	w.Wait()
}

// WorkStats must count dispatches on both paths, measure aggregate closure
// time, and never report more in flight than the configured width.
func TestWorkStats(t *testing.T) {
	for _, workers := range []int{1, 3} {
		e := New()
		e.SetWorkers(workers)
		e.Go("p", func(p *Proc) {
			works := make([]*Work, 6)
			for i := range works {
				works[i] = p.StartWork(func() {
					s := 0
					for k := 0; k < 1_000_000; k++ {
						s += k
					}
					_ = s
				})
			}
			for _, w := range works {
				w.Wait()
			}
		})
		e.Run()
		ws := e.WorkStats()
		if ws.Dispatched != 6 {
			t.Errorf("workers=%d: Dispatched = %d, want 6", workers, ws.Dispatched)
		}
		if ws.Busy <= 0 {
			t.Errorf("workers=%d: Busy = %v, want > 0", workers, ws.Busy)
		}
		if ws.MaxInFlight > int64(workers) {
			t.Errorf("workers=%d: MaxInFlight = %d exceeds pool width", workers, ws.MaxInFlight)
		}
		if workers == 1 && ws.MaxInFlight != 0 {
			t.Errorf("serial run reported %d in flight, want 0 (inline path)", ws.MaxInFlight)
		}
	}
	var acc WorkStats
	acc.Add(WorkStats{Dispatched: 2, MaxInFlight: 3, Busy: 5})
	acc.Add(WorkStats{Dispatched: 1, MaxInFlight: 2, Busy: 7})
	if acc.Dispatched != 3 || acc.MaxInFlight != 3 || acc.Busy != 12 {
		t.Errorf("Add folded to %+v", acc)
	}
}

// SetWorkers during Run is a determinism hazard and must panic.
func TestSetWorkersDuringRunPanics(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("SetWorkers during Run did not panic")
			}
		}()
		p.Env().SetWorkers(4)
	})
	e.Run()
}
