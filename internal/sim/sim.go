// Package sim provides a deterministic discrete-event simulation engine.
//
// The engines in this repository do real data processing (real records,
// real sorts, real hash tables) but run inside a simulated cluster whose
// notion of time is virtual. sim supplies that virtual time: processes are
// goroutine-backed coroutines that advance the clock only through explicit
// operations (Sleep, resource acquisition), and exactly one process executes
// at any instant, which makes every run fully deterministic and free of data
// races by construction.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Time is an absolute instant in virtual nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds returns d expressed in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

func (d Duration) String() string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// Seconds converts a floating-point number of seconds to a Duration.
func Seconds(s float64) Duration {
	if math.IsInf(s, 1) {
		return Duration(math.MaxInt64)
	}
	return Duration(s * float64(Second))
}

// event is a scheduled resumption of a process.
type event struct {
	at       Time
	seq      uint64
	p        *Proc
	canceled *bool // optional cancellation flag shared with the scheduler
}

// eventHeap is a binary min-heap ordered by (at, seq). It is typed rather
// than backed by container/heap so that pushing an event does not box it in
// an interface{} — the event queue is the single hottest allocation site in
// the simulator, and the slice's capacity is reused across the whole run.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the *Proc reference so it can be collected
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Env is a simulation environment: a virtual clock plus the set of processes
// advancing it. The zero value is not usable; call New.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	live   map[*Proc]struct{}
	inRun  bool
	// failure carries a panic out of a process goroutine so Run can re-panic
	// on the caller's goroutine, where tests can recover it.
	failure interface{}
	failed  bool
	// resources lists every Resource ever created on this environment, in
	// creation order, so leak audits can verify all units were released.
	resources []*Resource
	// Worker pool for pure data work (see work.go). workSem is nil when the
	// pool is disabled; pendingWork counts dispatched-but-unjoined closures
	// across all processes so Run can assert the pool drained.
	workSem     chan struct{}
	workers     int
	pendingWork int
	// Pool observability (WorkStats): updated from worker goroutines, hence
	// atomic; real-time only, never read back into simulation state.
	workDispatched  atomic.Int64
	workInFlight    atomic.Int64
	workMaxInFlight atomic.Int64
	workBusyNs      atomic.Int64
}

// New returns a fresh simulation environment at time zero.
func New() *Env {
	return &Env{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Resources returns every resource created on this environment in creation
// order. Leak audits use it to assert that nothing is held or queued once a
// run completes.
func (e *Env) Resources() []*Resource { return e.resources }

// LiveCount returns the number of processes that have started but not yet
// exited. After Run returns normally it is zero by construction (Run panics
// on deadlock instead), so a nonzero value outside Run means leaked procs.
func (e *Env) LiveCount() int { return len(e.live) }

func (e *Env) nextSeq() uint64 {
	e.seq++
	return e.seq
}

func (e *Env) schedule(p *Proc, at Time) {
	if at < e.now {
		at = e.now
	}
	e.events.push(event{at: at, seq: e.nextSeq(), p: p})
}

// scheduleCancelable schedules a resumption that is skipped at pop time if
// *canceled has been set by then.
func (e *Env) scheduleCancelable(p *Proc, at Time, canceled *bool) {
	if at < e.now {
		at = e.now
	}
	e.events.push(event{at: at, seq: e.nextSeq(), p: p, canceled: canceled})
}

// blockKind classifies what a blocked process is waiting for. Together with
// blockName/blockArg it carries enough to render a deadlock diagnostic
// without formatting a string on every block — blocking is the single most
// frequent operation in the simulator, and the description is only ever read
// on the (fatal) deadlock path.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockSleep
	blockTrigger
	blockTriggerTimeout
	blockResource
)

// Proc is a simulation process. All blocking methods must be called from the
// goroutine running the process body.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	// What the process is waiting for; used in deadlock diagnostics and
	// formatted lazily (see blockedOn).
	blockKind blockKind
	blockName string
	blockArg  int64
	// granted is set by Resource.Release before rescheduling a waiter. It
	// lives on the process rather than the wait queue entry because a process
	// waits for at most one resource at a time, which lets the queue hold
	// plain values instead of per-wait heap allocations.
	granted bool
	// unjoined counts StartWork dispatches this process has not yet joined
	// with Work.Wait. Only the process's own goroutine touches it.
	unjoined int
}

// blockedOn renders the deadlock diagnostic for the current block reason.
func (p *Proc) blockedOn() string {
	switch p.blockKind {
	case blockSleep:
		return fmt.Sprintf("sleep %v", Duration(p.blockArg))
	case blockTrigger:
		return "trigger " + p.blockName
	case blockTriggerTimeout:
		return fmt.Sprintf("trigger %s (timeout %v)", p.blockName, Duration(p.blockArg))
	case blockResource:
		return fmt.Sprintf("resource %s (%d units)", p.blockName, p.blockArg)
	default:
		return "nothing"
	}
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a process. It may be called before Run or from inside a running
// process; the new process starts at the current virtual time, after the
// caller next blocks.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live[p] = struct{}{}
	e.schedule(p, e.now)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.failure = r
				e.failed = true
			}
			delete(e.live, p)
			e.yield <- struct{}{}
		}()
		fn(p)
		if p.unjoined != 0 {
			panic(fmt.Sprintf("sim: process %s exited with %d unjoined StartWork dispatches", p.name, p.unjoined))
		}
	}()
	return p
}

// Run executes events until none remain. It panics if processes are still
// blocked when the event queue drains (a deadlock) so that engine bugs
// surface loudly in tests.
func (e *Env) Run() {
	if e.inRun {
		panic("sim: Run called reentrantly")
	}
	e.inRun = true
	defer func() { e.inRun = false }()
	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.canceled != nil && *ev.canceled {
			continue
		}
		e.now = ev.at
		ev.p.resume <- struct{}{}
		<-e.yield
		if e.failed {
			panic(e.failure)
		}
	}
	if e.pendingWork != 0 {
		panic(fmt.Sprintf("sim: run drained with %d unjoined StartWork dispatches", e.pendingWork))
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, fmt.Sprintf("%s (waiting on %s)", p.name, p.blockedOn()))
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: deadlock at %v: %d blocked processes: %v", e.now, len(names), names))
	}
}

// block suspends the process until some other agent schedules it again. The
// kind/name/arg triple describes the wait for deadlock diagnostics.
func (p *Proc) block(kind blockKind, name string, arg int64) {
	p.blockKind, p.blockName, p.blockArg = kind, name, arg
	p.env.yield <- struct{}{}
	<-p.resume
	p.blockKind, p.blockName, p.blockArg = blockNone, "", 0
}

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero (the process still yields, so other same-instant events
// run first).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now.Add(d))
	p.block(blockSleep, "", int64(d))
}

// Yield lets all other events scheduled at the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Trigger is a broadcast condition: processes Wait on it and are all
// released by the next Broadcast. It has no memory — a Broadcast with no
// waiters is a no-op — so callers must re-check their condition in a loop.
type Trigger struct {
	env     *Env
	name    string
	waiters []*Proc
	timed   []timedWaiter
}

// timedWaiter is a WaitTimeout caller. done is shared with the pending timer
// event: Broadcast sets it, which both tells the woken process the trigger
// fired and cancels the stale timer still sitting in the event heap.
type timedWaiter struct {
	p    *Proc
	done *bool
}

// NewTrigger returns a trigger bound to e.
func (e *Env) NewTrigger(name string) *Trigger {
	return &Trigger{env: e, name: name}
}

// Wait blocks p until the next Broadcast.
func (t *Trigger) Wait(p *Proc) {
	t.waiters = append(t.waiters, p)
	p.block(blockTrigger, t.name, 0)
}

// WaitTimeout blocks p until the next Broadcast or until d elapses,
// whichever comes first, and reports whether the broadcast fired. Only one
// resumption ever reaches p: Broadcast marks the waiter done before
// scheduling it, which cancels the timer event, and the timer path removes
// the waiter from the trigger before returning.
func (t *Trigger) WaitTimeout(p *Proc, d Duration) (fired bool) {
	if d < 0 {
		d = 0
	}
	done := false
	t.env.scheduleCancelable(p, t.env.now.Add(d), &done)
	t.timed = append(t.timed, timedWaiter{p: p, done: &done})
	p.block(blockTriggerTimeout, t.name, int64(d))
	if done {
		return true
	}
	// Timed out: unregister so a later Broadcast doesn't resume us again.
	for i, w := range t.timed {
		if w.p == p {
			t.timed = append(t.timed[:i], t.timed[i+1:]...)
			break
		}
	}
	return false
}

// Broadcast wakes every current waiter at the current instant.
func (t *Trigger) Broadcast() {
	for _, w := range t.waiters {
		t.env.schedule(w, t.env.now)
	}
	t.waiters = t.waiters[:0]
	for _, w := range t.timed {
		*w.done = true
		t.env.schedule(w.p, t.env.now)
	}
	t.timed = t.timed[:0]
}
