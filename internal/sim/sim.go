// Package sim provides a deterministic discrete-event simulation engine.
//
// The engines in this repository do real data processing (real records,
// real sorts, real hash tables) but run inside a simulated cluster whose
// notion of time is virtual. sim supplies that virtual time: processes are
// goroutine-backed coroutines that advance the clock only through explicit
// operations (Sleep, resource acquisition), and exactly one process executes
// at any instant, which makes every run fully deterministic and free of data
// races by construction.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Time is an absolute instant in virtual nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds returns d expressed in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

func (d Duration) String() string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// Seconds converts a floating-point number of seconds to a Duration.
func Seconds(s float64) Duration {
	if math.IsInf(s, 1) {
		return Duration(math.MaxInt64)
	}
	return Duration(s * float64(Second))
}

// event is a scheduled resumption of a process.
type event struct {
	at       Time
	seq      uint64
	p        *Proc
	canceled *bool // optional cancellation flag shared with the scheduler
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus the set of processes
// advancing it. The zero value is not usable; call New.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	yield  chan struct{}
	live   map[*Proc]struct{}
	inRun  bool
	// failure carries a panic out of a process goroutine so Run can re-panic
	// on the caller's goroutine, where tests can recover it.
	failure interface{}
	failed  bool
}

// New returns a fresh simulation environment at time zero.
func New() *Env {
	return &Env{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

func (e *Env) nextSeq() uint64 {
	e.seq++
	return e.seq
}

func (e *Env) schedule(p *Proc, at Time) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.events, event{at: at, seq: e.nextSeq(), p: p})
}

// scheduleCancelable schedules a resumption that is skipped at pop time if
// *canceled has been set by then.
func (e *Env) scheduleCancelable(p *Proc, at Time, canceled *bool) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.events, event{at: at, seq: e.nextSeq(), p: p, canceled: canceled})
}

// Proc is a simulation process. All blocking methods must be called from the
// goroutine running the process body.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	// blockedOn describes what the process is waiting for; used in deadlock
	// diagnostics.
	blockedOn string
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a process. It may be called before Run or from inside a running
// process; the new process starts at the current virtual time, after the
// caller next blocks.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live[p] = struct{}{}
	e.schedule(p, e.now)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				e.failure = r
				e.failed = true
			}
			delete(e.live, p)
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

// Run executes events until none remain. It panics if processes are still
// blocked when the event queue drains (a deadlock) so that engine bugs
// surface loudly in tests.
func (e *Env) Run() {
	if e.inRun {
		panic("sim: Run called reentrantly")
	}
	e.inRun = true
	defer func() { e.inRun = false }()
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.canceled != nil && *ev.canceled {
			continue
		}
		e.now = ev.at
		ev.p.resume <- struct{}{}
		<-e.yield
		if e.failed {
			panic(e.failure)
		}
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, fmt.Sprintf("%s (waiting on %s)", p.name, p.blockedOn))
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: deadlock at %v: %d blocked processes: %v", e.now, len(names), names))
	}
}

// block suspends the process until some other agent schedules it again.
func (p *Proc) block(what string) {
	p.blockedOn = what
	p.env.yield <- struct{}{}
	<-p.resume
	p.blockedOn = ""
}

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero (the process still yields, so other same-instant events
// run first).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now.Add(d))
	p.block(fmt.Sprintf("sleep %v", d))
}

// Yield lets all other events scheduled at the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Trigger is a broadcast condition: processes Wait on it and are all
// released by the next Broadcast. It has no memory — a Broadcast with no
// waiters is a no-op — so callers must re-check their condition in a loop.
type Trigger struct {
	env     *Env
	name    string
	waiters []*Proc
	timed   []timedWaiter
}

// timedWaiter is a WaitTimeout caller. done is shared with the pending timer
// event: Broadcast sets it, which both tells the woken process the trigger
// fired and cancels the stale timer still sitting in the event heap.
type timedWaiter struct {
	p    *Proc
	done *bool
}

// NewTrigger returns a trigger bound to e.
func (e *Env) NewTrigger(name string) *Trigger {
	return &Trigger{env: e, name: name}
}

// Wait blocks p until the next Broadcast.
func (t *Trigger) Wait(p *Proc) {
	t.waiters = append(t.waiters, p)
	p.block("trigger " + t.name)
}

// WaitTimeout blocks p until the next Broadcast or until d elapses,
// whichever comes first, and reports whether the broadcast fired. Only one
// resumption ever reaches p: Broadcast marks the waiter done before
// scheduling it, which cancels the timer event, and the timer path removes
// the waiter from the trigger before returning.
func (t *Trigger) WaitTimeout(p *Proc, d Duration) (fired bool) {
	if d < 0 {
		d = 0
	}
	done := false
	t.env.scheduleCancelable(p, t.env.now.Add(d), &done)
	t.timed = append(t.timed, timedWaiter{p: p, done: &done})
	p.block(fmt.Sprintf("trigger %s (timeout %v)", t.name, d))
	if done {
		return true
	}
	// Timed out: unregister so a later Broadcast doesn't resume us again.
	for i, w := range t.timed {
		if w.p == p {
			t.timed = append(t.timed[:i], t.timed[i+1:]...)
			break
		}
	}
	return false
}

// Broadcast wakes every current waiter at the current instant.
func (t *Trigger) Broadcast() {
	for _, w := range t.waiters {
		t.env.schedule(w, t.env.now)
	}
	t.waiters = t.waiters[:0]
	for _, w := range t.timed {
		*w.done = true
		t.env.schedule(w.p, t.env.now)
	}
	t.timed = t.timed[:0]
}
