package sim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestClockAdvancesThroughSleep(t *testing.T) {
	e := New()
	var at []Time
	e.Go("a", func(p *Proc) {
		p.Sleep(3 * Second)
		at = append(at, p.Now())
		p.Sleep(2 * Second)
		at = append(at, p.Now())
	})
	e.Run()
	want := []Time{Time(3 * Second), Time(5 * Second)}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("timestamps = %v, want %v", at, want)
	}
	if e.Now() != Time(5*Second) {
		t.Fatalf("final time = %v, want 5s", e.Now())
	}
}

func TestSameInstantEventsRunInSpawnOrder(t *testing.T) {
	e := New()
	var order []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		e.Go(name, func(p *Proc) {
			order = append(order, name)
			p.Sleep(Second)
			order = append(order, name+"-end")
		})
	}
	e.Run()
	want := []string{"p1", "p2", "p3", "p1-end", "p2-end", "p3-end"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := New()
	e.Go("a", func(p *Proc) {
		p.Sleep(-5 * Second)
		if p.Now() != 0 {
			t.Errorf("time moved on negative sleep: %v", p.Now())
		}
	})
	e.Run()
}

func TestSpawnFromRunningProcess(t *testing.T) {
	e := New()
	var got []string
	e.Go("parent", func(p *Proc) {
		p.Sleep(Second)
		p.Env().Go("child", func(c *Proc) {
			got = append(got, fmt.Sprintf("child@%v", c.Now()))
			c.Sleep(Second)
			got = append(got, fmt.Sprintf("child-end@%v", c.Now()))
		})
		p.Sleep(Second)
		got = append(got, fmt.Sprintf("parent@%v", p.Now()))
	})
	e.Run()
	// At t=2s the parent's wake event was scheduled (at t=1s, when it slept)
	// before the child's, so the parent runs first — FIFO on schedule order.
	want := []string{"child@1.000s", "parent@2.000s", "child-end@2.000s"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestResourceSerializesContenders(t *testing.T) {
	e := New()
	r := e.NewResource("disk", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 1, Second)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(Second), Time(2 * Second), Time(3 * Second)}
	if !reflect.DeepEqual(ends, want) {
		t.Fatalf("ends = %v, want %v", ends, want)
	}
}

func TestResourceFIFOGrantOrder(t *testing.T) {
	e := New()
	r := e.NewResource("r", 2)
	var order []string
	// First holder takes both units for 1s; then three waiters of 1 unit
	// each must be granted in arrival order.
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(Second)
		r.Release(2)
	})
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			p.Yield() // let holder acquire first
			r.Acquire(p, 1)
			order = append(order, name)
			p.Sleep(Second)
			r.Release(1)
		})
	}
	e.Run()
	if !reflect.DeepEqual(order, []string{"w1", "w2", "w3"}) {
		t.Fatalf("grant order = %v", order)
	}
}

func TestResourceLargeRequestNotStarved(t *testing.T) {
	// A 2-unit request at the head of the queue must block later 1-unit
	// requests (strict FIFO), so it cannot be starved.
	e := New()
	r := e.NewResource("r", 2)
	var got []string
	e.Go("small0", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(Second)
		r.Release(1)
	})
	e.Go("big", func(p *Proc) {
		p.Yield()
		r.Acquire(p, 2)
		got = append(got, fmt.Sprintf("big@%v", p.Now()))
		p.Sleep(Second)
		r.Release(2)
	})
	e.Go("small1", func(p *Proc) {
		p.Yield()
		p.Yield()
		r.Acquire(p, 1)
		got = append(got, fmt.Sprintf("small1@%v", p.Now()))
		r.Release(1)
	})
	e.Run()
	want := []string{"big@1.000s", "small1@2.000s"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestResourceBusyIntegral(t *testing.T) {
	e := New()
	r := e.NewResource("cpu", 4)
	e.Go("a", func(p *Proc) { r.Use(p, 2, 10*Second) })
	e.Go("b", func(p *Proc) { r.Use(p, 1, 4*Second) })
	e.Run()
	// 2 units x 10s + 1 unit x 4s = 24 unit-seconds.
	if got := r.BusyIntegral(); got != 24 {
		t.Fatalf("busy integral = %v, want 24", got)
	}
}

func TestResourceQueueIntegral(t *testing.T) {
	e := New()
	r := e.NewResource("disk", 1)
	e.Go("a", func(p *Proc) { r.Use(p, 1, 2*Second) })
	e.Go("b", func(p *Proc) { r.Use(p, 1, 2*Second) }) // waits 2s
	e.Run()
	if got := r.QueueIntegral(); got != 2 {
		t.Fatalf("queue integral = %v, want 2", got)
	}
}

func TestResourceOnChangeHook(t *testing.T) {
	e := New()
	r := e.NewResource("disk", 1)
	var events []string
	r.OnChange = func(now Time, inUse, waiting int) {
		events = append(events, fmt.Sprintf("%v:%d/%d", now, inUse, waiting))
	}
	e.Go("a", func(p *Proc) { r.Use(p, 1, Second) })
	e.Go("b", func(p *Proc) { r.Use(p, 1, Second) })
	e.Run()
	joined := strings.Join(events, " ")
	// b must be observed waiting at t=0 while a holds the unit.
	if !strings.Contains(joined, "0.000s:1/1") {
		t.Fatalf("missing waiting observation in %q", joined)
	}
}

func TestTriggerBroadcastWakesAllWaiters(t *testing.T) {
	e := New()
	tr := e.NewTrigger("ready")
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			tr.Wait(p)
			woke++
			if p.Now() != Time(3*Second) {
				t.Errorf("waiter woke at %v, want 3s", p.Now())
			}
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(3 * Second)
		tr.Broadcast()
	})
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestBroadcastWithNoWaitersIsNoop(t *testing.T) {
	e := New()
	tr := e.NewTrigger("t")
	e.Go("s", func(p *Proc) { tr.Broadcast(); p.Sleep(Second) })
	e.Run() // must not panic or deadlock
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e := New()
	tr := e.NewTrigger("never")
	e.Go("stuck", func(p *Proc) { tr.Wait(p) })
	e.Run()
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	e := New()
	r := e.NewResource("r", 1)
	e.Go("a", func(p *Proc) { r.Release(1) })
	e.Run()
}

func TestAcquireBeyondCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := New()
	r := e.NewResource("r", 1)
	e.Go("a", func(p *Proc) { r.Acquire(p, 2) })
	e.Run()
}

func TestDurationConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := Time(90 * Second).Seconds(); got != 90 {
		t.Fatalf("Time.Seconds() = %v", got)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical traces.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		r := e.NewResource("r", 3)
		var trace []string
		for i := 0; i < 20; i++ {
			i := i
			units := 1 + rng.Intn(3)
			d := Duration(rng.Intn(1000)) * Millisecond
			start := Duration(rng.Intn(2000)) * Millisecond
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(start)
				r.Acquire(p, units)
				p.Sleep(d)
				r.Release(units)
				trace = append(trace, fmt.Sprintf("p%d@%v", i, p.Now()))
			})
		}
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic traces:\n%v\n%v", a, b)
	}
}

// Property: for any schedule of exclusive users of a unit resource, the
// total busy integral equals the sum of hold durations, and completion time
// is at least the max individual finish.
func TestResourceBusyIntegralProperty(t *testing.T) {
	f := func(holdsMs []uint16) bool {
		if len(holdsMs) > 50 {
			holdsMs = holdsMs[:50]
		}
		e := New()
		r := e.NewResource("r", 1)
		var totalHold Duration
		for i, h := range holdsMs {
			d := Duration(h%2000) * Millisecond
			totalHold += d
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) { r.Use(p, 1, d) })
		}
		e.Run()
		got := r.BusyIntegral()
		want := totalHold.Seconds()
		return math.Abs(got-want) < 1e-9 && e.Now() == Time(totalHold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitTimeoutBroadcastWins(t *testing.T) {
	e := New()
	tr := e.NewTrigger("cond")
	var fired bool
	var at Time
	e.Go("waiter", func(p *Proc) {
		fired = tr.WaitTimeout(p, 10*Second)
		at = p.Now()
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(2 * Second)
		tr.Broadcast()
	})
	e.Run()
	if !fired {
		t.Error("WaitTimeout reported timeout despite broadcast at 2s")
	}
	if at != Time(2*Second) {
		t.Errorf("woke at %v, want 2s", at)
	}
	// The canceled timer event must not have extended virtual time to 10s.
	if e.Now() != Time(2*Second) {
		t.Errorf("sim ended at %v, want 2s (stale timer extended the run)", e.Now())
	}
}

func TestWaitTimeoutTimerWins(t *testing.T) {
	e := New()
	tr := e.NewTrigger("cond")
	var fired bool
	e.Go("waiter", func(p *Proc) {
		fired = tr.WaitTimeout(p, 3*Second)
	})
	e.Run()
	if fired {
		t.Error("WaitTimeout reported broadcast with no signaler")
	}
	if e.Now() != Time(3*Second) {
		t.Errorf("sim ended at %v, want 3s", e.Now())
	}
}

func TestWaitTimeoutLateBroadcastDoesNotDoubleResume(t *testing.T) {
	e := New()
	tr := e.NewTrigger("cond")
	wakes := 0
	e.Go("waiter", func(p *Proc) {
		tr.WaitTimeout(p, 1*Second) // times out
		wakes++
		p.Sleep(5 * Second) // a broadcast at 2s must not cut this short
		wakes++
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(2 * Second)
		tr.Broadcast()
	})
	e.Run()
	if wakes != 2 {
		t.Errorf("wakes = %d, want 2", wakes)
	}
	if e.Now() != Time(6*Second) {
		t.Errorf("sim ended at %v, want 6s", e.Now())
	}
}

func TestWaitTimeoutMixedWaiters(t *testing.T) {
	e := New()
	tr := e.NewTrigger("cond")
	var plainWoke, timedFired bool
	e.Go("plain", func(p *Proc) {
		tr.Wait(p)
		plainWoke = true
	})
	e.Go("timed", func(p *Proc) {
		timedFired = tr.WaitTimeout(p, 30*Second)
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(1 * Second)
		tr.Broadcast()
	})
	e.Run()
	if !plainWoke || !timedFired {
		t.Errorf("plainWoke=%v timedFired=%v, want both true", plainWoke, timedFired)
	}
	if e.Now() != Time(1*Second) {
		t.Errorf("sim ended at %v, want 1s", e.Now())
	}
}
