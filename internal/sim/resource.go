package sim

import "fmt"

// Resource is a capacity-limited, FIFO-granting resource: CPU cores on a
// node, the single request slot of a disk, a network link. Acquire blocks
// until the requested units are available; Release hands freed units to
// waiters in arrival order.
//
// The resource keeps two time integrals that metric samplers read:
// busy (units-in-use x time) and queue (waiting-units x time). Utilization
// of a window [a,b) is (busyIntegral(b)-busyIntegral(a)) / (cap x (b-a)).
type Resource struct {
	env  *Env
	name string
	cap  int

	inUse int
	// waiters is a FIFO queue stored by value: head indexes the next waiter
	// to grant, and entries are compacted in place rather than allocated per
	// blocked Acquire.
	waiters []resWaiter
	head    int

	lastChange    Time
	busyIntegral  float64 // unit-seconds of use
	queueIntegral float64 // unit-seconds of waiting

	// OnChange, if set, is called after every state change with the units in
	// use and the units waiting. Cluster nodes use it to maintain iowait
	// accounting across a node's devices.
	OnChange func(now Time, inUse, waiting int)
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity and registers it
// with the environment so end-of-run leak audits can sweep every resource
// ever created.
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive, got %d", name, capacity))
	}
	r := &Resource{env: e, name: name, cap: capacity}
	e.resources = append(e.resources, r)
	return r
}

// Name returns the diagnostic name the resource was created with.
func (r *Resource) Name() string { return r.name }

// Cap returns the resource capacity in units.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the total units requested by blocked acquirers.
func (r *Resource) Waiting() int {
	total := 0
	for _, w := range r.waiters[r.head:] {
		total += w.n
	}
	return total
}

// advance accrues the integrals up to now. It must be called before any
// change to inUse or the waiter set.
func (r *Resource) advance() {
	now := r.env.now
	dt := now.Sub(r.lastChange).Seconds()
	if dt > 0 {
		r.busyIntegral += float64(r.inUse) * dt
		r.queueIntegral += float64(r.Waiting()) * dt
	}
	r.lastChange = now
}

func (r *Resource) changed() {
	if r.OnChange != nil {
		r.OnChange(r.env.now, r.inUse, r.Waiting())
	}
}

// BusyIntegral returns unit-seconds of use accrued through the current time.
func (r *Resource) BusyIntegral() float64 {
	r.advance()
	return r.busyIntegral
}

// QueueIntegral returns unit-seconds of waiting accrued through now.
func (r *Resource) QueueIntegral() float64 {
	r.advance()
	return r.queueIntegral
}

// Acquire blocks p until n units are available and takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.cap {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d of %q", n, r.cap, r.name))
	}
	r.advance()
	if r.head == len(r.waiters) && r.inUse+n <= r.cap {
		r.inUse += n
		r.changed()
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	r.changed()
	p.granted = false
	p.block(blockResource, r.name, int64(n))
	if !p.granted {
		panic(fmt.Sprintf("sim: process %s woken without grant on %q", p.name, r.name))
	}
	p.granted = false
}

// Release returns n units and grants queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.advance()
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: over-release of %q", r.name))
	}
	for r.head < len(r.waiters) {
		w := r.waiters[r.head]
		if r.inUse+w.n > r.cap {
			break
		}
		r.inUse += w.n
		w.p.granted = true
		r.waiters[r.head] = resWaiter{} // release the *Proc reference
		r.head++
		r.env.schedule(w.p, r.env.now)
	}
	if r.head == len(r.waiters) {
		// Queue drained: rewind so the backing array is reused.
		r.waiters = r.waiters[:0]
		r.head = 0
	} else if r.head >= 64 && r.head*2 >= len(r.waiters) {
		// Compact occasionally so a never-empty queue cannot grow without
		// bound behind the head index.
		n := copy(r.waiters, r.waiters[r.head:])
		r.waiters = r.waiters[:n]
		r.head = 0
	}
	r.changed()
}

// Use acquires n units, holds them for d, and releases them.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.advance()
	r.Release(n)
}
