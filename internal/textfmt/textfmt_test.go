package textfmt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestClickTextRoundTrip(t *testing.T) {
	c := Click{Time: 869769600, User: 12345, URL: []byte("/en/page/678")}
	line := AppendClickText(nil, c)
	if line[len(line)-1] != '\n' {
		t.Fatal("missing newline")
	}
	got, err := ParseClickText(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != c.Time || got.User != c.User || !bytes.Equal(got.URL, c.URL) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestClickTextParseWithoutNewline(t *testing.T) {
	got, err := ParseClickText([]byte("100 u7 /x"))
	if err != nil || got.User != 7 || string(got.URL) != "/x" {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestClickTextMalformed(t *testing.T) {
	for _, in := range []string{"", "100", "100 u7", "abc u7 /x", "100 x7 /x", "100 u /x", "100 uZZ /x"} {
		if _, err := ParseClickText([]byte(in)); err == nil {
			t.Errorf("ParseClickText(%q) should fail", in)
		}
	}
}

func TestClickBinaryRoundTrip(t *testing.T) {
	c := Click{Time: 4294967295, User: 0, URL: []byte("/path")}
	buf := AppendClickBinary(nil, c)
	got, n := ParseClickBinary(buf)
	if n != len(buf) {
		t.Fatalf("n = %d, want %d", n, len(buf))
	}
	if got.Time != c.Time || got.User != c.User || !bytes.Equal(got.URL, c.URL) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestClickBinaryShortBuffer(t *testing.T) {
	buf := AppendClickBinary(nil, Click{URL: []byte("/long/url/here")})
	for cut := 0; cut < len(buf); cut++ {
		if _, n := ParseClickBinary(buf[:cut]); n != 0 {
			t.Fatalf("short buffer %d parsed n=%d", cut, n)
		}
	}
}

func TestNextLine(t *testing.T) {
	line, rest, ok := NextLine([]byte("one\ntwo\n"))
	if !ok || string(line) != "one" || string(rest) != "two\n" {
		t.Fatalf("line=%q rest=%q ok=%v", line, rest, ok)
	}
	_, rest, ok = NextLine([]byte("partial"))
	if ok || string(rest) != "partial" {
		t.Fatal("unterminated line must report !ok")
	}
	line, rest, ok = NextLine([]byte("\n"))
	if !ok || len(line) != 0 || len(rest) != 0 {
		t.Fatal("empty line parse failed")
	}
}

func TestDocTextRoundTrip(t *testing.T) {
	d := Doc{ID: 42, Words: [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}}
	line := AppendDocText(nil, d)
	got, err := ParseDocText(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || len(got.Words) != 3 || string(got.Words[2]) != "gamma" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDocTextNoWords(t *testing.T) {
	got, err := ParseDocText(AppendDocText(nil, Doc{ID: 7}))
	if err != nil || got.ID != 7 || len(got.Words) != 0 {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestDocTextMalformed(t *testing.T) {
	for _, in := range []string{"", "x42 w", "dxx w"} {
		if _, err := ParseDocText([]byte(in)); err == nil {
			t.Errorf("ParseDocText(%q) should fail", in)
		}
	}
}

// Property: text and binary click encodings round-trip arbitrary records
// (URL constrained to non-space, non-newline bytes as the generator emits).
func TestClickRoundTripProperty(t *testing.T) {
	sanitize := func(url []byte) []byte {
		out := make([]byte, 0, len(url))
		for _, b := range url {
			if b != ' ' && b != '\n' && b >= 33 && b < 127 {
				out = append(out, b)
			}
		}
		return out
	}
	f := func(ts, user uint32, rawURL []byte) bool {
		c := Click{Time: ts, User: user, URL: sanitize(rawURL)}
		gotT, err := ParseClickText(AppendClickText(nil, c))
		if err != nil || gotT.Time != c.Time || gotT.User != c.User || !bytes.Equal(gotT.URL, c.URL) {
			return false
		}
		gotB, n := ParseClickBinary(AppendClickBinary(nil, c))
		return n > 0 && gotB.Time == c.Time && gotB.User == c.User && bytes.Equal(gotB.URL, c.URL)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
