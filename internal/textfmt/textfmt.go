// Package textfmt defines the input record formats of the two benchmark
// applications: click-log records (timestamp, user, url) and web-document
// records (doc id, words). Each has a line-oriented text encoding (parsed
// field-by-field, the expensive path) and a compact binary encoding (the
// "SequenceFile" path), which together reproduce the paper's §III.B.1
// parsing-cost experiment.
package textfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
)

// Click is one click-stream record.
type Click struct {
	Time uint32
	User uint32
	URL  []byte
}

// AppendClickText appends the text encoding: "<time> u<user> <url>\n".
func AppendClickText(dst []byte, c Click) []byte {
	dst = strconv.AppendUint(dst, uint64(c.Time), 10)
	dst = append(dst, ' ', 'u')
	dst = strconv.AppendUint(dst, uint64(c.User), 10)
	dst = append(dst, ' ')
	dst = append(dst, c.URL...)
	return append(dst, '\n')
}

// ParseClickText parses one text line (without requiring the trailing
// newline). The returned URL aliases line.
func ParseClickText(line []byte) (Click, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return Click{}, fmt.Errorf("textfmt: malformed click %q", line)
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 {
		return Click{}, fmt.Errorf("textfmt: malformed click %q", line)
	}
	sp2 += sp1 + 1
	ts, err := strconv.ParseUint(string(line[:sp1]), 10, 32)
	if err != nil {
		return Click{}, fmt.Errorf("textfmt: bad timestamp in %q: %v", line, err)
	}
	userField := line[sp1+1 : sp2]
	if len(userField) < 2 || userField[0] != 'u' {
		return Click{}, fmt.Errorf("textfmt: bad user in %q", line)
	}
	user, err := strconv.ParseUint(string(userField[1:]), 10, 32)
	if err != nil {
		return Click{}, fmt.Errorf("textfmt: bad user in %q: %v", line, err)
	}
	return Click{Time: uint32(ts), User: uint32(user), URL: line[sp2+1:]}, nil
}

// AppendClickBinary appends the binary encoding:
// u32 time, u32 user, u16 urlLen, url.
func AppendClickBinary(dst []byte, c Click) []byte {
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:], c.Time)
	binary.LittleEndian.PutUint32(hdr[4:], c.User)
	binary.LittleEndian.PutUint16(hdr[8:], uint16(len(c.URL)))
	dst = append(dst, hdr[:]...)
	return append(dst, c.URL...)
}

// ParseClickBinary decodes one binary click from the front of buf,
// returning the bytes consumed (0 if buf is too short).
func ParseClickBinary(buf []byte) (Click, int) {
	if len(buf) < 10 {
		return Click{}, 0
	}
	urlLen := int(binary.LittleEndian.Uint16(buf[8:]))
	if len(buf) < 10+urlLen {
		return Click{}, 0
	}
	return Click{
		Time: binary.LittleEndian.Uint32(buf[0:]),
		User: binary.LittleEndian.Uint32(buf[4:]),
		URL:  buf[10 : 10+urlLen],
	}, 10 + urlLen
}

// NextLine splits buf at the first newline, returning the line (without the
// newline) and the rest. ok=false when buf holds no complete line; callers
// treat a non-empty remainder without '\n' as a final unterminated line.
func NextLine(buf []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return nil, buf, false
	}
	return buf[:i], buf[i+1:], true
}

// Doc is one web-document record: an id and its word tokens.
type Doc struct {
	ID    uint32
	Words [][]byte
}

// AppendDocText appends "d<id> w w w ...\n".
func AppendDocText(dst []byte, d Doc) []byte {
	dst = append(dst, 'd')
	dst = strconv.AppendUint(dst, uint64(d.ID), 10)
	for _, w := range d.Words {
		dst = append(dst, ' ')
		dst = append(dst, w...)
	}
	return append(dst, '\n')
}

// ParseDocText parses one document line. Word slices alias line.
func ParseDocText(line []byte) (Doc, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	if len(line) == 0 || line[0] != 'd' {
		return Doc{}, fmt.Errorf("textfmt: malformed doc %q", line)
	}
	fields := bytes.Split(line, []byte(" "))
	id, err := strconv.ParseUint(string(fields[0][1:]), 10, 32)
	if err != nil {
		return Doc{}, fmt.Errorf("textfmt: bad doc id in %q: %v", line, err)
	}
	return Doc{ID: uint32(id), Words: fields[1:]}, nil
}
