// Package textfmt defines the input record formats of the two benchmark
// applications: click-log records (timestamp, user, url) and web-document
// records (doc id, words). Each has a line-oriented text encoding (parsed
// field-by-field, the expensive path) and a compact binary encoding (the
// "SequenceFile" path), which together reproduce the paper's §III.B.1
// parsing-cost experiment.
package textfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Click is one click-stream record.
type Click struct {
	Time uint32
	User uint32
	URL  []byte
}

// AppendClickText appends the text encoding: "<time> u<user> <url>\n".
func AppendClickText(dst []byte, c Click) []byte {
	dst = strconv.AppendUint(dst, uint64(c.Time), 10)
	dst = append(dst, ' ', 'u')
	dst = strconv.AppendUint(dst, uint64(c.User), 10)
	dst = append(dst, ' ')
	dst = append(dst, c.URL...)
	return append(dst, '\n')
}

// parseUint32 parses a base-10 uint32 from b without converting to string
// (strconv.ParseUint(string(b), ...) would allocate once per call, and this
// runs for every field of every text record).
func parseUint32(b []byte) (uint32, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if n > math.MaxUint32 {
			return 0, false
		}
	}
	return uint32(n), true
}

// ParseClickText parses one text line (without requiring the trailing
// newline). The returned URL aliases line.
func ParseClickText(line []byte) (Click, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 < 0 {
		return Click{}, fmt.Errorf("textfmt: malformed click %q", line)
	}
	sp2 := bytes.IndexByte(line[sp1+1:], ' ')
	if sp2 < 0 {
		return Click{}, fmt.Errorf("textfmt: malformed click %q", line)
	}
	sp2 += sp1 + 1
	ts, ok := parseUint32(line[:sp1])
	if !ok {
		return Click{}, fmt.Errorf("textfmt: bad timestamp in %q", line)
	}
	userField := line[sp1+1 : sp2]
	if len(userField) < 2 || userField[0] != 'u' {
		return Click{}, fmt.Errorf("textfmt: bad user in %q", line)
	}
	user, ok := parseUint32(userField[1:])
	if !ok {
		return Click{}, fmt.Errorf("textfmt: bad user in %q", line)
	}
	return Click{Time: ts, User: user, URL: line[sp2+1:]}, nil
}

// AppendClickBinary appends the binary encoding:
// u32 time, u32 user, u16 urlLen, url.
func AppendClickBinary(dst []byte, c Click) []byte {
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:], c.Time)
	binary.LittleEndian.PutUint32(hdr[4:], c.User)
	binary.LittleEndian.PutUint16(hdr[8:], uint16(len(c.URL)))
	dst = append(dst, hdr[:]...)
	return append(dst, c.URL...)
}

// ParseClickBinary decodes one binary click from the front of buf,
// returning the bytes consumed (0 if buf is too short).
func ParseClickBinary(buf []byte) (Click, int) {
	if len(buf) < 10 {
		return Click{}, 0
	}
	urlLen := int(binary.LittleEndian.Uint16(buf[8:]))
	if len(buf) < 10+urlLen {
		return Click{}, 0
	}
	return Click{
		Time: binary.LittleEndian.Uint32(buf[0:]),
		User: binary.LittleEndian.Uint32(buf[4:]),
		URL:  buf[10 : 10+urlLen],
	}, 10 + urlLen
}

// NextLine splits buf at the first newline, returning the line (without the
// newline) and the rest. ok=false when buf holds no complete line; callers
// treat a non-empty remainder without '\n' as a final unterminated line.
func NextLine(buf []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return nil, buf, false
	}
	return buf[:i], buf[i+1:], true
}

// Doc is one web-document record: an id and its word tokens.
type Doc struct {
	ID    uint32
	Words [][]byte
}

// AppendDocText appends "d<id> w w w ...\n".
func AppendDocText(dst []byte, d Doc) []byte {
	dst = append(dst, 'd')
	dst = strconv.AppendUint(dst, uint64(d.ID), 10)
	for _, w := range d.Words {
		dst = append(dst, ' ')
		dst = append(dst, w...)
	}
	return append(dst, '\n')
}

// ParseDocText parses one document line. Word slices alias line.
func ParseDocText(line []byte) (Doc, error) {
	return ParseDocTextInto(line, nil)
}

// ParseDocTextInto is ParseDocText with a caller-supplied word slice that is
// truncated and reused, so a streaming parser allocates nothing per record
// once the slice has grown to the widest document. The returned Doc.Words
// aliases both words and line.
func ParseDocTextInto(line []byte, words [][]byte) (Doc, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	if len(line) == 0 || line[0] != 'd' {
		return Doc{}, fmt.Errorf("textfmt: malformed doc %q", line)
	}
	idField := line
	rest := []byte(nil)
	if sp := bytes.IndexByte(line, ' '); sp >= 0 {
		idField, rest = line[:sp], line[sp+1:]
	}
	id, ok := parseUint32(idField[1:])
	if !ok {
		return Doc{}, fmt.Errorf("textfmt: bad doc id in %q", line)
	}
	words = words[:0]
	for len(rest) > 0 {
		sp := bytes.IndexByte(rest, ' ')
		if sp < 0 {
			words = append(words, rest)
			break
		}
		words = append(words, rest[:sp])
		rest = rest[sp+1:]
	}
	return Doc{ID: id, Words: words}, nil
}
