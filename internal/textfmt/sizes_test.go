package textfmt

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"4096", 4096},
		{"512KB", 512 << 10},
		{"64MB", 64 << 20},
		{"1GB", 1 << 30},
		{"2GB", 2 << 30},
		{" 16MB", 16 << 20},
		{"7 KB", 7 << 10}, // inner space trimmed after suffix strip
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Fatalf("ParseSize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeMalformed(t *testing.T) {
	for _, in := range []string{"", "MB", "12TB", "1.5GB", "abc", "GB64", "64mb"} {
		if n, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error", in, n)
		}
	}
}

func TestParseSizeRejectsNonPositive(t *testing.T) {
	for _, in := range []string{"0", "0MB", "-1", "-64MB", "-999GB"} {
		if n, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error (non-positive size)", in, n)
		}
	}
}

func TestParseSizeRejectsOverflow(t *testing.T) {
	// 99999999999 * 2^30 wraps int64; the old code returned a large negative
	// size here.
	for _, in := range []string{"99999999999GB", "9223372036854775807MB", "10000000000000000KB"} {
		if n, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want overflow error", in, n)
		}
	}
	// The largest representable sizes still parse.
	if n, err := ParseSize("8589934591GB"); err != nil || n != (int64(8589934591)<<30) {
		t.Errorf("ParseSize(8589934591GB) = %d, %v; want max in-range value", n, err)
	}
	if n, err := ParseSize("9223372036854775807"); err != nil || n != int64(9223372036854775807) {
		t.Errorf("ParseSize(max int64) = %d, %v", n, err)
	}
}
