package textfmt

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"4096", 4096},
		{"512KB", 512 << 10},
		{"64MB", 64 << 20},
		{"1GB", 1 << 30},
		{"2GB", 2 << 30},
		{" 16MB", 16 << 20},
		{"7 KB", 7 << 10}, // inner space trimmed after suffix strip
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Fatalf("ParseSize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeMalformed(t *testing.T) {
	for _, in := range []string{"", "MB", "12TB", "1.5GB", "abc", "GB64", "64mb"} {
		if n, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error", in, n)
		}
	}
}
