package textfmt

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses a human byte size with an optional binary suffix
// ("64MB", "1GB", "512KB", "4096"). The shared helper behind every CLI's
// size flags.
func ParseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("textfmt: bad size %q: %w", s, err)
	}
	return n * mult, nil
}
