package textfmt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseSize parses a human byte size with an optional binary suffix
// ("64MB", "1GB", "512KB", "4096"). The shared helper behind every CLI's
// size flags. Sizes must be positive and fit in int64 after applying the
// suffix multiplier: "0", "-64MB", and "99999999999GB" are all errors, not
// silently zero, negative, or wrapped-around byte counts.
func ParseSize(s string) (int64, error) {
	orig := s
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("textfmt: bad size %q: %w", s, err)
	}
	if n <= 0 {
		return 0, fmt.Errorf("textfmt: size %q must be positive", orig)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("textfmt: size %q overflows int64", orig)
	}
	return n * mult, nil
}
