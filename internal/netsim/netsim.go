// Package netsim models the cluster interconnect: per-node full-duplex NICs
// with finite bandwidth. Shuffle transfers chunk through the sender's egress
// and the receiver's ingress simultaneously, so many mappers pushing to one
// reducer queue on that reducer's ingress — the network effect behind
// MapReduce Online's finer-granularity transmission cost (§III.D).
package netsim

import (
	"fmt"

	"onepass/internal/sim"
)

// Network is the cluster interconnect.
type Network struct {
	env     *sim.Env
	bw      float64 // bytes/second per NIC direction
	latency sim.Duration
	chunk   int64
	nics    []nic

	bytesTransferred float64
}

type nic struct {
	egress  *sim.Resource
	ingress *sim.Resource
	// slow scales transfer times through this NIC (>= 1; 0 means 1). Set by
	// the fault injector to model a degraded link.
	slow float64
}

// New creates a network connecting n nodes, each with the given per-direction
// NIC bandwidth (bytes/second) and per-transfer latency.
func New(env *sim.Env, n int, bw float64, latency sim.Duration) *Network {
	if n <= 0 {
		panic("netsim: need at least one node")
	}
	if bw <= 0 {
		panic("netsim: bandwidth must be positive")
	}
	net := &Network{env: env, bw: bw, latency: latency, chunk: 1 << 20}
	for i := 0; i < n; i++ {
		net.nics = append(net.nics, nic{
			egress:  env.NewResource(fmt.Sprintf("nic%d-eg", i), 1),
			ingress: env.NewResource(fmt.Sprintf("nic%d-in", i), 1),
		})
	}
	return net
}

// GigabitEthernet is the paper cluster's 1 GbE link rate in bytes/second.
const GigabitEthernet = 125e6

// BytesTransferred returns cumulative bytes moved across the network
// (loopback excluded).
func (n *Network) BytesTransferred() float64 { return n.bytesTransferred }

// Nodes returns the number of attached nodes.
func (n *Network) Nodes() int { return len(n.nics) }

// IngressBusyIntegral returns busy seconds of node's receive side.
func (n *Network) IngressBusyIntegral(node int) float64 {
	return n.nics[node].ingress.BusyIntegral()
}

// SetDegraded scales transfer times through node's NIC by factor — the
// link-degradation fault. Factors below 1 reset the NIC to full speed.
// Transfers already in their current chunk are unaffected; the next chunk
// sees the new rate.
func (n *Network) SetDegraded(node int, factor float64) {
	if factor < 1 {
		factor = 1
	}
	n.nics[node].slow = factor
}

// Transfer moves bytes from node `from` to node `to`, blocking p for the
// transfer duration. A transfer between a node and itself is free (loopback
// never left the machine in the paper's measurements either).
func (n *Network) Transfer(p *sim.Proc, from, to int, bytes int64) {
	if from == to || bytes <= 0 {
		return
	}
	p.Sleep(n.latency)
	src, dst := &n.nics[from], &n.nics[to]
	// Acquire the two resources in a global (nodeID, direction) order so
	// that concurrent opposing transfers cannot deadlock.
	first, second := src.egress, dst.ingress
	if to < from {
		first, second = dst.ingress, src.egress
	}
	for remaining := bytes; remaining > 0; remaining -= n.chunk {
		c := n.chunk
		if remaining < c {
			c = remaining
		}
		d := sim.Seconds(float64(c) / n.bw)
		// A degraded link slows the whole path; the worse endpoint dominates.
		if s := src.slow; s > 1 && s > dst.slow {
			d = sim.Duration(float64(d) * s)
		} else if s := dst.slow; s > 1 {
			d = sim.Duration(float64(d) * s)
		}
		first.Acquire(p, 1)
		second.Acquire(p, 1)
		p.Sleep(d)
		first.Release(1)
		second.Release(1)
	}
	n.bytesTransferred += float64(bytes)
}
