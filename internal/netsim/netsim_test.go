package netsim

import (
	"fmt"
	"math"
	"testing"

	"onepass/internal/sim"
)

func TestTransferTime(t *testing.T) {
	env := sim.New()
	n := New(env, 2, 100e6, sim.Millisecond)
	env.Go("x", func(p *sim.Proc) { n.Transfer(p, 0, 1, 50e6) })
	env.Run()
	want := 0.001 + 0.5
	if got := env.Now().Seconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
	if n.BytesTransferred() != 50e6 {
		t.Fatalf("bytes = %v", n.BytesTransferred())
	}
}

func TestLoopbackFree(t *testing.T) {
	env := sim.New()
	n := New(env, 2, 100e6, sim.Millisecond)
	env.Go("x", func(p *sim.Proc) { n.Transfer(p, 1, 1, 1e9) })
	env.Run()
	if env.Now() != 0 || n.BytesTransferred() != 0 {
		t.Fatal("loopback must be free and unaccounted")
	}
}

func TestReceiverIngressContention(t *testing.T) {
	// Two senders to one receiver: receiver ingress is the bottleneck, so
	// total time ~= sum of transfer times.
	env := sim.New()
	n := New(env, 3, 100e6, 0)
	for i := 0; i < 2; i++ {
		src := i
		env.Go(fmt.Sprintf("s%d", i), func(p *sim.Proc) { n.Transfer(p, src, 2, 50e6) })
	}
	env.Run()
	if got := env.Now().Seconds(); math.Abs(got-1.0) > 0.02 {
		t.Fatalf("elapsed = %v, want ~1.0 (ingress serialized)", got)
	}
}

func TestDisjointPairsRunInParallel(t *testing.T) {
	env := sim.New()
	n := New(env, 4, 100e6, 0)
	env.Go("a", func(p *sim.Proc) { n.Transfer(p, 0, 1, 50e6) })
	env.Go("b", func(p *sim.Proc) { n.Transfer(p, 2, 3, 50e6) })
	env.Run()
	if got := env.Now().Seconds(); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("elapsed = %v, want 0.5 (parallel)", got)
	}
}

func TestOpposingTransfersFullDuplexNoDeadlock(t *testing.T) {
	env := sim.New()
	n := New(env, 2, 100e6, 0)
	env.Go("a", func(p *sim.Proc) { n.Transfer(p, 0, 1, 50e6) })
	env.Go("b", func(p *sim.Proc) { n.Transfer(p, 1, 0, 50e6) })
	env.Run()
	// Full duplex: both directions proceed simultaneously.
	if got := env.Now().Seconds(); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("elapsed = %v, want 0.5 (full duplex)", got)
	}
}

func TestManyToManyShuffleNoDeadlock(t *testing.T) {
	env := sim.New()
	const nodes = 5
	n := New(env, nodes, 100e6, 0)
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			src, dst := i, j
			env.Go(fmt.Sprintf("t%d-%d", i, j), func(p *sim.Proc) {
				n.Transfer(p, src, dst, 10e6)
			})
		}
	}
	env.Run() // panics on deadlock
	if n.BytesTransferred() != float64(nodes*(nodes-1))*10e6 {
		t.Fatalf("bytes = %v", n.BytesTransferred())
	}
	if n.IngressBusyIntegral(0) <= 0 {
		t.Fatal("ingress busy integral should be positive")
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { New(sim.New(), 0, 1, 0) },
		func() { New(sim.New(), 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
