package disk

import (
	"fmt"
	"sort"

	"onepass/internal/sim"
)

// Store is a local file system on one device. It holds real file contents
// in memory while charging device time for every access, so the engines can
// write intermediate runs, read them back, and merge them with faithful I/O
// accounting.
type Store struct {
	dev   *Device
	files map[string]*File
}

// NewStore returns an empty store backed by dev.
func NewStore(dev *Device) *Store {
	return &Store{dev: dev, files: make(map[string]*File)}
}

// Device returns the backing device.
func (s *Store) Device() *Device { return s.dev }

// File is a stored byte sequence.
type File struct {
	name string
	data []byte
	// discard indicates a sink file: sizes are tracked and I/O charged, but
	// contents are dropped to bound host memory for large benchmark runs.
	discard bool
	size    int64
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Data returns the raw retained contents (nil for discard files). Callers
// are responsible for charging device time via Store read methods; Data
// itself is free, mirroring data already resident in the page cache.
func (f *File) Data() []byte { return f.data }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Create makes (or truncates) a file. If discard is true the contents are
// not retained — used for final job output in benchmark sink mode.
func (s *Store) Create(name string, discard bool) *File {
	f := &File{name: name, discard: discard}
	s.files[name] = f
	return f
}

// Append writes data to the end of f, charging sequential device time.
func (s *Store) Append(p *sim.Proc, f *File, data []byte) {
	s.dev.Write(p, int64(len(data)), true)
	f.size += int64(len(data))
	if !f.discard {
		f.data = append(f.data, data...)
	}
}

// AppendSize accounts a write of n bytes of already-stored data (used when
// the caller assembled the file contents itself via AppendNoIO and wants a
// single accounted flush).
func (s *Store) AppendSize(p *sim.Proc, f *File, n int64) {
	s.dev.Write(p, n, true)
	f.size += n
}

// Open returns the named file.
func (s *Store) Open(name string) (*File, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("disk: file %q not found", name)
	}
	return f, nil
}

// Exists reports whether the named file exists.
func (s *Store) Exists(name string) bool {
	_, ok := s.files[name]
	return ok
}

// Delete removes the named file and frees its contents.
func (s *Store) Delete(name string) {
	delete(s.files, name)
}

// Names returns all file names, sorted.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalSize returns the sum of all file sizes.
func (s *Store) TotalSize() int64 {
	var t int64
	for _, f := range s.files {
		t += f.size
	}
	return t
}

// ReadAll reads the whole file sequentially and returns its contents.
func (s *Store) ReadAll(p *sim.Proc, f *File) []byte {
	s.dev.Read(p, f.size, true)
	return f.data
}

// Reader streams a file in buffered chunks. Each buffer refill charges a
// random read against the device: this is the access pattern of a k-way
// merge pulling from many runs at once.
type Reader struct {
	store   *Store
	file    *File
	pos     int64
	bufEnd  int64
	bufSize int64
}

// NewReader returns a streaming reader over f with the given buffer size.
func (s *Store) NewReader(f *File, bufSize int64) *Reader {
	if bufSize <= 0 {
		bufSize = 1 << 20
	}
	if f.discard {
		panic("disk: cannot read a discard (sink) file")
	}
	return &Reader{store: s, file: f, bufSize: bufSize}
}

// Remaining returns the bytes left to consume.
func (r *Reader) Remaining() int64 { return r.file.size - r.pos }

// Next returns the next n bytes (fewer at EOF; nil when exhausted),
// charging a device read whenever the buffer needs refilling.
func (r *Reader) Next(p *sim.Proc, n int64) []byte {
	if r.pos >= r.file.size {
		return nil
	}
	if r.pos+n > r.file.size {
		n = r.file.size - r.pos
	}
	// Refill the window as many times as needed to cover [pos, pos+n).
	for r.bufEnd < r.pos+n {
		fill := r.bufSize
		if r.bufEnd+fill > r.file.size {
			fill = r.file.size - r.bufEnd
		}
		r.store.dev.Read(p, fill, false)
		r.bufEnd += fill
	}
	out := r.file.data[r.pos : r.pos+n]
	r.pos += n
	return out
}
