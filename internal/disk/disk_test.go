package disk

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"onepass/internal/sim"
)

func TestSequentialReadTime(t *testing.T) {
	env := sim.New()
	d := NewDevice(env, "d0", HDD)
	env.Go("r", func(p *sim.Proc) {
		d.Read(p, 100e6, true) // 100 MB at 100 MB/s = 1s + 24 chunk seeks of 0.8ms
	})
	env.Run()
	chunks := math.Ceil(100e6 / float64(4<<20))
	want := 1.0 + chunks*0.0008
	if got := env.Now().Seconds(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
	if d.BytesRead() != 100e6 {
		t.Fatalf("bytesRead = %v", d.BytesRead())
	}
}

func TestRandomReadSlowerThanSequential(t *testing.T) {
	elapsed := func(sequential bool) float64 {
		env := sim.New()
		d := NewDevice(env, "d0", HDD)
		env.Go("r", func(p *sim.Proc) { d.Read(p, 50e6, sequential) })
		env.Run()
		return env.Now().Seconds()
	}
	seq, rnd := elapsed(true), elapsed(false)
	if rnd < 2*seq {
		t.Fatalf("random (%.3fs) should be much slower than sequential (%.3fs)", rnd, seq)
	}
}

func TestSSDRandomPenaltySmall(t *testing.T) {
	ratio := func(p Profile) float64 {
		run := func(sequential bool) float64 {
			env := sim.New()
			d := NewDevice(env, "d0", p)
			env.Go("r", func(pr *sim.Proc) { d.Read(pr, 50e6, sequential) })
			env.Run()
			return env.Now().Seconds()
		}
		return run(false) / run(true)
	}
	if hdd, ssd := ratio(HDD), ratio(SSD); ssd > hdd/2 {
		t.Fatalf("SSD random/seq ratio %.2f should be far below HDD's %.2f", ssd, hdd)
	}
}

func TestContentionSerializes(t *testing.T) {
	env := sim.New()
	d := NewDevice(env, "d0", HDD)
	var done []float64
	for i := 0; i < 2; i++ {
		env.Go("r", func(p *sim.Proc) {
			d.Read(p, 50e6, true)
			done = append(done, p.Now().Seconds())
		})
	}
	env.Run()
	// Two 0.5s streams on one device must take ~1s total, not 0.5s.
	if env.Now().Seconds() < 1.0 {
		t.Fatalf("contended elapsed = %v, want >= 1s", env.Now().Seconds())
	}
	// Chunked interleaving: both finish near the end, neither gets the
	// device exclusively first.
	if done[0] < 0.9*done[1] {
		t.Fatalf("streams did not interleave: %v", done)
	}
}

func TestSlowdownInjection(t *testing.T) {
	run := func(slow float64) float64 {
		env := sim.New()
		d := NewDevice(env, "d0", HDD)
		d.SetSlowdown(slow)
		env.Go("r", func(p *sim.Proc) { d.Read(p, 10e6, true) })
		env.Run()
		return env.Now().Seconds()
	}
	if r := run(3) / run(1); math.Abs(r-3) > 1e-6 {
		t.Fatalf("slowdown ratio = %v, want 3", r)
	}
}

func TestZeroByteTransferIsFree(t *testing.T) {
	env := sim.New()
	d := NewDevice(env, "d0", HDD)
	env.Go("r", func(p *sim.Proc) {
		d.Read(p, 0, true)
		d.Write(p, -5, true)
	})
	env.Run()
	if env.Now() != 0 || d.BytesRead() != 0 || d.BytesWritten() != 0 {
		t.Fatal("zero/negative transfers should be free")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	env := sim.New()
	d := NewDevice(env, "d0", SSD)
	s := NewStore(d)
	payload := []byte("hello one-pass analytics")
	env.Go("w", func(p *sim.Proc) {
		f := s.Create("run0", false)
		s.Append(p, f, payload[:5])
		s.Append(p, f, payload[5:])
		got := s.ReadAll(p, f)
		if !bytes.Equal(got, payload) {
			t.Errorf("round trip = %q", got)
		}
		if f.Size() != int64(len(payload)) {
			t.Errorf("size = %d", f.Size())
		}
	})
	env.Run()
	if d.BytesWritten() != float64(len(payload)) {
		t.Fatalf("bytesWritten = %v", d.BytesWritten())
	}
}

func TestStoreOpenMissing(t *testing.T) {
	s := NewStore(NewDevice(sim.New(), "d", HDD))
	if _, err := s.Open("nope"); err == nil {
		t.Fatal("expected error for missing file")
	}
	if s.Exists("nope") {
		t.Fatal("Exists should be false")
	}
}

func TestStoreDeleteAndNames(t *testing.T) {
	s := NewStore(NewDevice(sim.New(), "d", HDD))
	s.Create("b", false)
	s.Create("a", false)
	if names := s.Names(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
	s.Delete("a")
	if s.Exists("a") || len(s.Names()) != 1 {
		t.Fatal("delete failed")
	}
}

func TestDiscardFileTracksSizeOnly(t *testing.T) {
	env := sim.New()
	s := NewStore(NewDevice(env, "d", HDD))
	env.Go("w", func(p *sim.Proc) {
		f := s.Create("sink", true)
		s.Append(p, f, make([]byte, 1000))
		if f.Size() != 1000 {
			t.Errorf("size = %d", f.Size())
		}
		if len(f.data) != 0 {
			t.Errorf("discard file retained %d bytes", len(f.data))
		}
	})
	env.Run()
	if s.TotalSize() != 1000 {
		t.Fatalf("total = %d", s.TotalSize())
	}
}

func TestReaderStreamsAndCharges(t *testing.T) {
	env := sim.New()
	d := NewDevice(env, "d0", SSD)
	s := NewStore(d)
	content := make([]byte, 10000)
	for i := range content {
		content[i] = byte(i % 251)
	}
	env.Go("rw", func(p *sim.Proc) {
		f := s.Create("run", false)
		s.Append(p, f, content)
		r := s.NewReader(f, 4096)
		var got []byte
		for {
			chunk := r.Next(p, 1500)
			if chunk == nil {
				break
			}
			got = append(got, chunk...)
		}
		if !bytes.Equal(got, content) {
			t.Error("streamed content mismatch")
		}
		if r.Remaining() != 0 {
			t.Errorf("remaining = %d", r.Remaining())
		}
	})
	env.Run()
	if d.BytesRead() != float64(len(content)) {
		t.Fatalf("bytesRead = %v, want %d", d.BytesRead(), len(content))
	}
}

func TestReaderOnDiscardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStore(NewDevice(sim.New(), "d", HDD))
	f := s.Create("sink", true)
	s.NewReader(f, 0)
}

// Property: streaming any content through a Reader with any buffer and
// request sizes reproduces the content exactly and charges exactly its size.
func TestReaderProperty(t *testing.T) {
	f := func(content []byte, buf, req uint16) bool {
		env := sim.New()
		d := NewDevice(env, "d0", SSD)
		s := NewStore(d)
		ok := true
		env.Go("t", func(p *sim.Proc) {
			file := s.Create("f", false)
			s.Append(p, file, content)
			r := s.NewReader(file, int64(buf%512)+1)
			var got []byte
			for {
				c := r.Next(p, int64(req%97)+1)
				if c == nil {
					break
				}
				got = append(got, c...)
			}
			ok = bytes.Equal(got, content)
		})
		env.Run()
		return ok && d.BytesRead() == float64(len(content))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
