// Package disk models storage devices (HDD and SSD) and a local file store
// on top of them. Requests are chunked and serialized through a single
// device slot, so competing streams (HDFS input reads vs. map-output writes
// vs. multi-pass merge traffic) queue against each other — the disk
// contention effect §III.C of the paper studies. File contents are real
// bytes: the engines re-read exactly what they wrote.
package disk

import (
	"fmt"

	"onepass/internal/sim"
)

// Profile describes a device's service characteristics.
type Profile struct {
	Name string
	// Seek is the positioning cost charged per random-access chunk; a tenth
	// of it is charged per sequential chunk (track-to-track).
	Seek sim.Duration
	// ReadBW and WriteBW are sequential transfer rates in bytes/second.
	ReadBW  float64
	WriteBW float64
	// SeqChunk and RandChunk are the request sizes the device splits
	// sequential and random transfers into.
	SeqChunk  int64
	RandChunk int64
}

// HDD approximates the 7200rpm SATA disks of the paper's cluster.
var HDD = Profile{
	Name:      "hdd",
	Seek:      8 * sim.Millisecond,
	ReadBW:    100e6,
	WriteBW:   90e6,
	SeqChunk:  4 << 20,
	RandChunk: 256 << 10,
}

// SSD approximates the Intel SSD added in §III.C: near-zero seek, higher
// bandwidth, and random I/O nearly as fast as sequential.
var SSD = Profile{
	Name:      "ssd",
	Seek:      100 * sim.Microsecond,
	ReadBW:    250e6,
	WriteBW:   200e6,
	SeqChunk:  4 << 20,
	RandChunk: 256 << 10,
}

// Device is one storage device: a serialized request slot plus transfer
// accounting.
type Device struct {
	env     *sim.Env
	name    string
	profile Profile
	slot    *sim.Resource

	bytesRead    float64
	bytesWritten float64
	// slow scales every service time; >1 models a degraded device for
	// straggler injection.
	slow float64
}

// NewDevice creates a device owned by env.
func NewDevice(env *sim.Env, name string, p Profile) *Device {
	return &Device{env: env, name: name, profile: p, slot: env.NewResource(name, 1), slow: 1}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Profile returns the device profile.
func (d *Device) Profile() Profile { return d.profile }

// SetSlowdown scales all service times by f (>=1). Used for fault/straggler
// injection in tests.
func (d *Device) SetSlowdown(f float64) {
	if f < 1 {
		f = 1
	}
	d.slow = f
}

// BytesRead returns cumulative bytes read.
func (d *Device) BytesRead() float64 { return d.bytesRead }

// BytesWritten returns cumulative bytes written.
func (d *Device) BytesWritten() float64 { return d.bytesWritten }

// BusyIntegral returns device busy time in seconds, cumulative.
func (d *Device) BusyIntegral() float64 { return d.slot.BusyIntegral() }

// QueueIntegral returns request-seconds spent waiting, cumulative.
func (d *Device) QueueIntegral() float64 { return d.slot.QueueIntegral() }

// Pending returns the number of requests in service or queued right now.
func (d *Device) Pending() int { return d.slot.InUse() + d.slot.Waiting() }

// OnChange installs a hook invoked on every queue state change; the cluster
// node uses it to maintain iowait accounting.
func (d *Device) OnChange(fn func(now sim.Time, inUse, waiting int)) {
	d.slot.OnChange = fn
}

func (d *Device) transfer(p *sim.Proc, bytes int64, bw float64, sequential bool, write bool) {
	if bytes <= 0 {
		return
	}
	chunk := d.profile.SeqChunk
	seek := d.profile.Seek / 10
	if !sequential {
		chunk = d.profile.RandChunk
		seek = d.profile.Seek
	}
	for remaining := bytes; remaining > 0; remaining -= chunk {
		n := chunk
		if remaining < chunk {
			n = remaining
		}
		service := seek + sim.Seconds(float64(n)/bw)
		service = sim.Duration(float64(service) * d.slow)
		d.slot.Use(p, 1, service)
	}
	if write {
		d.bytesWritten += float64(bytes)
	} else {
		d.bytesRead += float64(bytes)
	}
}

// Read blocks p for the duration of reading bytes from the device.
func (d *Device) Read(p *sim.Proc, bytes int64, sequential bool) {
	d.transfer(p, bytes, d.profile.ReadBW, sequential, false)
}

// Write blocks p for the duration of writing bytes to the device.
func (d *Device) Write(p *sim.Proc, bytes int64, sequential bool) {
	d.transfer(p, bytes, d.profile.WriteBW, sequential, true)
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s, read=%s, written=%s)", d.name, d.profile.Name,
		fmtBytes(d.bytesRead), fmtBytes(d.bytesWritten))
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", b/(1<<20))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
