// Package loadgen is the YCSB-style open-loop client fleet for
// internal/service: each tenant gets one submitter process whose arrival
// process fires independently of job completions (open loop — queueing
// delay cannot throttle the offered load, which is what exposes the latency
// knee as the cluster saturates). Arrival generators are seeded and run on
// virtual time, so a fleet is exactly reproducible: same seeds, same
// virtual-instant submission schedule, byte-identical service reports.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"onepass/internal/service"
	"onepass/internal/sim"
)

// Arrival yields successive inter-arrival gaps on virtual time.
type Arrival interface {
	Next() sim.Duration
}

type constant struct{ gap sim.Duration }

// Constant returns a deterministic arrival process: one job every
// 1/jobsPerSec seconds.
func Constant(jobsPerSec float64) Arrival {
	if !(jobsPerSec > 0) || math.IsInf(jobsPerSec, 0) {
		panic(fmt.Sprintf("loadgen: arrival rate %g must be positive and finite", jobsPerSec))
	}
	return constant{gap: sim.Duration(math.Round(float64(sim.Second) / jobsPerSec))}
}

func (c constant) Next() sim.Duration { return c.gap }

type poisson struct {
	rng  *rand.Rand
	rate float64
}

// Poisson returns a seeded Poisson arrival process (exponential
// inter-arrival gaps, rounded to the nanosecond) at jobsPerSec mean rate.
// Same seed, same gap sequence.
func Poisson(seed int64, jobsPerSec float64) Arrival {
	if !(jobsPerSec > 0) || math.IsInf(jobsPerSec, 0) {
		panic(fmt.Sprintf("loadgen: arrival rate %g must be positive and finite", jobsPerSec))
	}
	return &poisson{rng: rand.New(rand.NewSource(seed)), rate: jobsPerSec}
}

func (p *poisson) Next() sim.Duration {
	return sim.Duration(math.Round(p.rng.ExpFloat64() / p.rate * float64(sim.Second)))
}

// TenantLoad describes one tenant's traffic: an arrival process, a total
// job count, and a mix of job requests cycled round-robin. Each request's
// Tenant field is overwritten with TenantLoad.Tenant at submission.
type TenantLoad struct {
	Tenant  string
	Arrival Arrival
	Jobs    int
	Mix     []service.JobRequest
}

// Drive spawns one open-loop submitter process per load on the service's
// environment. Call before svc.Run; Run then sees every submitter through
// AddSubmitter/SubmitterDone and keeps scheduling until all traffic drains.
// Rejected submissions (queue-full admission control) are counted per
// tenant by the service and do not stop the submitter; any other Submit
// error is a configuration bug and panics.
func Drive(svc *service.Service, loads []TenantLoad) error {
	for _, l := range loads {
		if l.Arrival == nil {
			return fmt.Errorf("loadgen: tenant %q has no arrival process", l.Tenant)
		}
		if len(l.Mix) == 0 {
			return fmt.Errorf("loadgen: tenant %q has an empty job mix", l.Tenant)
		}
		if l.Jobs <= 0 {
			return fmt.Errorf("loadgen: tenant %q job count %d must be positive", l.Tenant, l.Jobs)
		}
		l := l
		svc.AddSubmitter()
		svc.Env().Go("loadgen-"+l.Tenant, func(p *sim.Proc) {
			defer svc.SubmitterDone()
			for i := 0; i < l.Jobs; i++ {
				p.Sleep(l.Arrival.Next())
				req := l.Mix[i%len(l.Mix)]
				req.Tenant = l.Tenant
				if err := svc.Submit(p, req); err != nil && !strings.Contains(err.Error(), "queue full") {
					panic(fmt.Sprintf("loadgen: tenant %s job %d: %v", l.Tenant, i, err))
				}
			}
		})
	}
	return nil
}
