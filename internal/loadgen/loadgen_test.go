package loadgen

import (
	"math"
	"testing"

	"onepass/internal/sim"
)

func TestConstantGap(t *testing.T) {
	a := Constant(4)
	for i := 0; i < 3; i++ {
		if got := a.Next(); got != sim.Duration(250*1e6) {
			t.Fatalf("gap %d = %v, want 0.25s", i, got)
		}
	}
}

func TestPoissonDeterministicAndRate(t *testing.T) {
	const n = 20000
	a, b := Poisson(42, 5), Poisson(42, 5)
	var sum sim.Duration
	for i := 0; i < n; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, ga, gb)
		}
		if ga < 0 {
			t.Fatalf("draw %d: negative gap %v", i, ga)
		}
		sum += ga
	}
	mean := sum.Seconds() / n
	if math.Abs(mean-0.2) > 0.01 {
		t.Fatalf("mean gap %.4fs, want ~0.2s at 5 jobs/s", mean)
	}
	if c := Poisson(43, 5).Next(); c == Poisson(42, 5).Next() {
		t.Fatal("different seeds produced the same first gap")
	}
}

func TestArrivalRejectsBadRates(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Constant(%g) did not panic", rate)
				}
			}()
			Constant(rate)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Poisson(1, %g) did not panic", rate)
				}
			}()
			Poisson(1, rate)
		}()
	}
}
