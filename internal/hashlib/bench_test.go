package hashlib

import (
	"fmt"
	"testing"
)

func BenchmarkHash16B(b *testing.B) {
	h := NewFamily(1).New()
	key := []byte("user-123456-page")
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		_ = h.Hash(key)
	}
}

func BenchmarkHash64B(b *testing.B) {
	h := NewFamily(1).New()
	key := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = h.Hash(key)
	}
}

func BenchmarkBucket(b *testing.B) {
	h := NewFamily(1).New()
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("user-%06d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Bucket(keys[i&63], 60)
	}
}
