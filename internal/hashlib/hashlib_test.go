package hashlib

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := NewFamily(7).New()
	b := NewFamily(7).New()
	key := []byte("user-12345")
	if a.Hash(key) != b.Hash(key) {
		t.Fatal("same seed must give same function")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewFamily(1).New()
	b := NewFamily(2).New()
	same := 0
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if a.Hash(key) == b.Hash(key) {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d/100 collisions across seeds", same)
	}
}

func TestFamilyMembersIndependent(t *testing.T) {
	f := NewFamily(3)
	a, b := f.New(), f.New()
	same := 0
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if a.Bucket(key, 16) == b.Bucket(key, 16) {
			same++
		}
	}
	// Expected agreement for independent functions: ~100/16 ≈ 6.
	if same > 20 {
		t.Fatalf("family members agree on %d/100 bucket choices", same)
	}
}

func TestNewAtMatchesSequentialDraws(t *testing.T) {
	f := NewFamily(9)
	f.New()
	second := f.New()
	direct := NewAt(9, 1)
	key := []byte("abc")
	if second.Hash(key) != direct.Hash(key) {
		t.Fatal("NewAt must match sequential draws")
	}
}

func TestEmptyAndShortKeys(t *testing.T) {
	h := NewFamily(5).New()
	if h.Hash(nil) != h.Hash([]byte{}) {
		t.Fatal("nil and empty must hash alike")
	}
	if h.Hash([]byte{0}) == h.Hash(nil) {
		t.Fatal("single zero byte must differ from empty")
	}
	if h.Hash([]byte{0}) == h.Hash([]byte{0, 0}) {
		t.Fatal("length must perturb the hash")
	}
}

func TestLongKeysMix(t *testing.T) {
	h := NewFamily(5).New()
	// Two long keys differing only at position 40 (beyond tabWidth).
	a := make([]byte, 64)
	b := make([]byte, 64)
	b[40] = 1
	if h.Hash(a) == h.Hash(b) {
		t.Fatal("difference beyond table width must change the hash")
	}
}

func TestBucketRangeProperty(t *testing.T) {
	h := NewFamily(11).New()
	f := func(key []byte, n uint8) bool {
		buckets := int(n%64) + 1
		b := h.Bucket(key, buckets)
		return b >= 0 && b < buckets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketSingleAndZero(t *testing.T) {
	h := NewFamily(1).New()
	if h.Bucket([]byte("x"), 1) != 0 || h.Bucket([]byte("x"), 0) != 0 {
		t.Fatal("degenerate bucket counts must map to 0")
	}
}

// Chi-square-style uniformity check: hash 40k distinct keys into 64 buckets
// and require each bucket to be within 25% of the mean.
func TestBucketUniformity(t *testing.T) {
	h := NewFamily(123).New()
	const n = 40000
	const buckets = 64
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[h.Bucket([]byte(fmt.Sprintf("user-%d", i)), buckets)]++
	}
	mean := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-mean) > 0.25*mean {
			t.Fatalf("bucket %d has %d keys, mean %.0f — too skewed", b, c, mean)
		}
	}
}

// Avalanche: flipping any single bit of an 8-byte key should flip roughly
// half the output bits on average.
func TestAvalanche(t *testing.T) {
	h := NewFamily(77).New()
	var totalFlips, trials int
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("%08d", i))
		base := h.Hash(key)
		for bit := 0; bit < 8*len(key); bit++ {
			mut := append([]byte(nil), key...)
			mut[bit/8] ^= 1 << (bit % 8)
			diff := base ^ h.Hash(mut)
			totalFlips += popcount(diff)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average = %.1f output bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Pairwise-independence spot check: over random key pairs, the collision
// probability into k buckets should be close to 1/k.
func TestPairwiseCollisionRate(t *testing.T) {
	h := NewFamily(31).New()
	const k = 32
	const pairs = 20000
	coll := 0
	for i := 0; i < pairs; i++ {
		a := []byte(fmt.Sprintf("alpha-%d", i))
		b := []byte(fmt.Sprintf("beta-%d", i))
		if h.Bucket(a, k) == h.Bucket(b, k) {
			coll++
		}
	}
	rate := float64(coll) / pairs
	if rate > 2.0/k || rate < 0.5/k {
		t.Fatalf("collision rate = %.4f, want ~%.4f", rate, 1.0/k)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
