// Package hashlib is the paper's "hash function library": a seeded family
// of pairwise-independent hash functions over byte-string keys. The hash
// engine draws distinct functions from one family for map-side partitioning,
// reduce-side grouping, and each recursion level of hybrid hash, so that a
// key collision at one level does not correlate with collisions at the next.
//
// The construction is simple tabulation hashing (Zobrist): the key is
// consumed byte-by-byte against per-position random tables, which is 3-wise
// independent for fixed-length keys, combined with a length perturbation for
// variable-length keys. Table entries come from a SplitMix64 stream seeded
// per function.
package hashlib

import "sync"

// tabWidth is the number of byte-position tables; positions beyond it wrap
// with a rotation so long keys still mix well.
const tabWidth = 16

// Func is one hash function from a family.
type Func struct {
	tables [tabWidth][256]uint64
	lenMix uint64
}

// Family is a seeded generator of independent hash functions.
type Family struct {
	state uint64
}

// NewFamily returns a family seeded by seed.
func NewFamily(seed uint64) *Family {
	return &Family{state: seed*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019}
}

// splitmix64 advances the family's generator state.
func (f *Family) next() uint64 {
	f.state += 0x9E3779B97F4A7C15
	z := f.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New draws the next hash function from the family.
func (f *Family) New() *Func {
	fn := &Func{lenMix: f.next() | 1}
	for i := 0; i < tabWidth; i++ {
		for b := 0; b < 256; b++ {
			fn.tables[i][b] = f.next()
		}
	}
	return fn
}

// NewAt returns the i-th function of a family with the given seed,
// deterministically: NewAt(s, i) == NewFamily(s) advanced i times.
func NewAt(seed uint64, i int) *Func {
	f := NewFamily(seed)
	var fn *Func
	for j := 0; j <= i; j++ {
		fn = f.New()
	}
	return fn
}

var (
	sharedMu    sync.Mutex
	sharedFuncs = map[[2]uint64]*Func{}
)

// Shared returns NewAt(seed, i) from a process-wide cache. A Func is
// immutable once built, so sharing one instance across tasks and concurrent
// runs is safe — and avoids regenerating the 32 KB tabulation tables for
// every hash-table the engines construct.
func Shared(seed uint64, i int) *Func {
	k := [2]uint64{seed, uint64(i)}
	sharedMu.Lock()
	fn := sharedFuncs[k]
	if fn == nil {
		fn = NewAt(seed, i)
		sharedFuncs[k] = fn
	}
	sharedMu.Unlock()
	return fn
}

// Hash returns the 64-bit hash of key.
func (h *Func) Hash(key []byte) uint64 {
	var acc uint64
	for i, b := range key {
		v := h.tables[i%tabWidth][b]
		rot := uint(i/tabWidth) & 63
		acc ^= (v << rot) | (v >> (64 - rot))
	}
	return acc ^ (uint64(len(key)) * h.lenMix)
}

// Bucket maps key into [0, n) using the high bits of the hash (the low-bias
// multiply-shift reduction).
func (h *Func) Bucket(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	// Multiply-high reduction: unbiased enough and cheaper than mod.
	hi, _ := mul64(h.Hash(key), uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo), without
// math/bits so the package stays dependency-light for cost accounting.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	w0 := t & mask
	k := t >> 32
	t = a1*b0 + k
	w1 := t & mask
	w2 := t >> 32
	t = a0*b1 + w1
	k = t >> 32
	hi = a1*b1 + w2 + k
	lo = (t << 32) + w0
	return hi, lo
}
