// Package cluster assembles the simulated hardware the paper's experiments
// ran on: nodes with CPU cores, one or two storage devices, a memory budget,
// and a shared network. Three topologies mirror §III: the baseline (one HDD
// per node serving both HDFS and intermediate data), the HDD+SSD variant
// (intermediate data moved to a per-node SSD), and the split architecture
// (dedicated storage nodes and compute nodes, à la S3+EC2).
package cluster

import (
	"fmt"

	"onepass/internal/disk"
	"onepass/internal/metrics"
	"onepass/internal/netsim"
	"onepass/internal/sim"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the total number of worker nodes (the paper used 10 plus a
	// head node; the head node is implicit here).
	Nodes        int
	CoresPerNode int
	// MemoryPerNode bounds per-task buffers (map output buffer, reducer
	// merge buffer, hash table budgets).
	MemoryPerNode int64
	// DiskProfile is the primary device on every node.
	DiskProfile disk.Profile
	// SSDIntermediate adds a second, SSD device per node and directs
	// intermediate data (map output, spills, merges) to it (§III.C).
	SSDIntermediate bool
	// SplitStorage dedicates the first half of the nodes to storage (DFS
	// blocks only) and the second half to computation (§III.C).
	SplitStorage bool
	// NetBandwidth is per-NIC-direction bandwidth in bytes/second.
	NetBandwidth float64
	NetLatency   sim.Duration
}

// DefaultConfig mirrors the paper's testbed at simulation scale: 10 worker
// nodes, 4 cores each, 1 GbE, one HDD per node, 1 GB task memory.
func DefaultConfig() Config {
	return Config{
		Nodes:         10,
		CoresPerNode:  4,
		MemoryPerNode: 1 << 30,
		DiskProfile:   disk.HDD,
		NetBandwidth:  netsim.GigabitEthernet,
		NetLatency:    200 * sim.Microsecond,
	}
}

// Node is one machine.
type Node struct {
	ID    int
	env   *sim.Env
	cores *sim.Resource

	// dfsStore holds DFS blocks and job output; scratch holds intermediate
	// data. They share a device unless the SSD topology is active.
	dfsDev, scratchDev     *disk.Device
	dfsStore, scratchStore *disk.Store

	memory int64

	cpuByPhase *metrics.CPUAccount

	// iowait accounting: integral over time of min(idle cores, processes
	// blocked on this node's disks), in core-seconds.
	busyCores      int
	ioPending      int
	lastChange     sim.Time
	iowaitIntegral float64

	failed  bool
	cpuSlow float64
}

// Cluster is the full simulated testbed.
type Cluster struct {
	Env   *sim.Env
	Net   *netsim.Network
	nodes []*Node
	cfg   Config
}

// New builds a cluster per cfg.
func New(env *sim.Env, cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic("cluster: need positive node and core counts")
	}
	if cfg.SplitStorage && cfg.Nodes < 2 {
		panic("cluster: split topology needs at least 2 nodes")
	}
	c := &Cluster{Env: env, cfg: cfg, Net: netsim.New(env, cfg.Nodes, cfg.NetBandwidth, cfg.NetLatency)}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			ID:         i,
			env:        env,
			cores:      env.NewResource(fmt.Sprintf("node%d-cpu", i), cfg.CoresPerNode),
			memory:     cfg.MemoryPerNode,
			cpuByPhase: metrics.NewCPUAccount(),
		}
		n.cores.OnChange = func(now sim.Time, inUse, _ int) {
			n.advance(now)
			n.busyCores = inUse
		}
		primary := disk.NewDevice(env, fmt.Sprintf("node%d-hdd", i), cfg.DiskProfile)
		n.watchDevice(primary)
		n.dfsDev = primary
		n.dfsStore = disk.NewStore(primary)
		if cfg.SSDIntermediate {
			ssd := disk.NewDevice(env, fmt.Sprintf("node%d-ssd", i), disk.SSD)
			n.watchDevice(ssd)
			n.scratchDev = ssd
			n.scratchStore = disk.NewStore(ssd)
		} else {
			n.scratchDev = primary
			n.scratchStore = n.dfsStore
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

func (n *Node) watchDevice(d *disk.Device) {
	var pending int
	d.OnChange(func(now sim.Time, inUse, waiting int) {
		n.advance(now)
		n.ioPending += inUse + waiting - pending
		pending = inUse + waiting
	})
}

// advance accrues the iowait integral up to now.
func (n *Node) advance(now sim.Time) {
	dt := now.Sub(n.lastChange).Seconds()
	if dt > 0 {
		idle := n.cores.Cap() - n.busyCores
		blocked := n.ioPending
		if blocked > idle {
			blocked = idle
		}
		if blocked > 0 {
			n.iowaitIntegral += float64(blocked) * dt
		}
	}
	n.lastChange = now
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns all nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given id.
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// ComputeNodes returns the nodes that run map/reduce tasks.
func (c *Cluster) ComputeNodes() []*Node {
	if c.cfg.SplitStorage {
		return c.nodes[c.cfg.Nodes/2:]
	}
	return c.nodes
}

// StorageNodes returns the nodes that host DFS blocks.
func (c *Cluster) StorageNodes() []*Node {
	if c.cfg.SplitStorage {
		return c.nodes[:c.cfg.Nodes/2]
	}
	return c.nodes
}

// Cores returns the node's CPU resource capacity.
func (n *Node) Cores() int { return n.cores.Cap() }

// Memory returns the node's task memory budget in bytes.
func (n *Node) Memory() int64 { return n.memory }

// DFSStore returns the store holding DFS blocks and job output.
func (n *Node) DFSStore() *disk.Store { return n.dfsStore }

// ScratchStore returns the store for intermediate data.
func (n *Node) ScratchStore() *disk.Store { return n.scratchStore }

// DFSDevice returns the device backing DFS data.
func (n *Node) DFSDevice() *disk.Device { return n.dfsDev }

// ScratchDevice returns the device backing intermediate data.
func (n *Node) ScratchDevice() *disk.Device { return n.scratchDev }

// Compute charges d of CPU on one core, attributed to phase. It blocks p
// until a core is free and the work is done.
func (n *Node) Compute(p *sim.Proc, d sim.Duration, phase string) {
	if d <= 0 {
		return
	}
	if n.cpuSlow > 1 {
		d = sim.Duration(float64(d) * n.cpuSlow)
	}
	n.cores.Use(p, 1, d)
	n.cpuByPhase.Add(phase, d)
}

// SetCPUSlowdown scales all subsequent CPU work on the node by factor — the
// straggler fault. Factors below 1 reset to full speed. Work already holding
// a core is unaffected.
func (n *Node) SetCPUSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	n.cpuSlow = factor
}

// SetDiskSlowdown scales service times on every device the node owns — the
// disk-degradation fault. Factors below 1 reset to full speed.
func (n *Node) SetDiskSlowdown(factor float64) {
	n.dfsDev.SetSlowdown(factor)
	if n.scratchDev != n.dfsDev {
		n.scratchDev.SetSlowdown(factor)
	}
}

// Fail marks the node as dead: schedulers stop assigning work to it and
// its persisted map outputs are treated as lost. In-flight operations run
// to completion (the failure model is "machine lost between tasks", which
// is where Hadoop's fault-tolerance mechanisms engage).
func (n *Node) Fail() { n.failed = true }

// Failed reports whether the node has been failed.
func (n *Node) Failed() bool { return n.failed }

// CPUAccount returns the node's per-phase CPU accounting.
func (n *Node) CPUAccount() *metrics.CPUAccount { return n.cpuByPhase }

// CPUBusyIntegral returns cumulative core-seconds of CPU use on the node.
func (n *Node) CPUBusyIntegral() float64 { return n.cores.BusyIntegral() }

// IowaitIntegral returns cumulative core-seconds idle-while-disk-pending.
func (n *Node) IowaitIntegral() float64 {
	n.advance(n.env.Now())
	return n.iowaitIntegral
}

// DiskBytesRead returns cumulative bytes read across the node's devices.
func (n *Node) DiskBytesRead() float64 {
	t := n.dfsDev.BytesRead()
	if n.scratchDev != n.dfsDev {
		t += n.scratchDev.BytesRead()
	}
	return t
}

// DiskBytesWritten returns cumulative bytes written across the node's devices.
func (n *Node) DiskBytesWritten() float64 {
	t := n.dfsDev.BytesWritten()
	if n.scratchDev != n.dfsDev {
		t += n.scratchDev.BytesWritten()
	}
	return t
}

// Aggregates across compute nodes, for the cluster-level plots.

// CPUBusyIntegral sums compute-node core-seconds of use.
func (c *Cluster) CPUBusyIntegral() float64 {
	t := 0.0
	for _, n := range c.ComputeNodes() {
		t += n.CPUBusyIntegral()
	}
	return t
}

// IowaitIntegral sums compute-node iowait core-seconds.
func (c *Cluster) IowaitIntegral() float64 {
	t := 0.0
	for _, n := range c.ComputeNodes() {
		t += n.IowaitIntegral()
	}
	return t
}

// TotalCores returns the number of compute cores across compute nodes.
func (c *Cluster) TotalCores() int {
	t := 0
	for _, n := range c.ComputeNodes() {
		t += n.Cores()
	}
	return t
}

// DiskBytesRead sums bytes read across every device on all nodes.
func (c *Cluster) DiskBytesRead() float64 {
	t := 0.0
	for _, n := range c.nodes {
		t += n.DiskBytesRead()
	}
	return t
}

// DiskBytesWritten sums bytes written across every device on all nodes.
func (c *Cluster) DiskBytesWritten() float64 {
	t := 0.0
	for _, n := range c.nodes {
		t += n.DiskBytesWritten()
	}
	return t
}

// CPUAccount merges all nodes' per-phase CPU accounts.
func (c *Cluster) CPUAccount() *metrics.CPUAccount {
	total := metrics.NewCPUAccount()
	for _, n := range c.nodes {
		total.Merge(n.cpuByPhase)
	}
	return total
}
