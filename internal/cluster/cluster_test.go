package cluster

import (
	"math"
	"testing"

	"onepass/internal/disk"
	"onepass/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	return cfg
}

func TestTopologyBaseline(t *testing.T) {
	c := New(sim.New(), testConfig())
	if len(c.Nodes()) != 4 || len(c.ComputeNodes()) != 4 || len(c.StorageNodes()) != 4 {
		t.Fatal("baseline topology should use all nodes for everything")
	}
	n := c.Node(0)
	if n.DFSStore() != n.ScratchStore() {
		t.Fatal("baseline shares one device between DFS and scratch")
	}
	if c.TotalCores() != 8 {
		t.Fatalf("cores = %d", c.TotalCores())
	}
}

func TestTopologySSD(t *testing.T) {
	cfg := testConfig()
	cfg.SSDIntermediate = true
	c := New(sim.New(), cfg)
	n := c.Node(0)
	if n.DFSStore() == n.ScratchStore() {
		t.Fatal("SSD topology must separate scratch from DFS")
	}
	if n.ScratchDevice().Profile().Name != "ssd" {
		t.Fatalf("scratch device = %v", n.ScratchDevice().Profile().Name)
	}
	if n.DFSDevice().Profile().Name != "hdd" {
		t.Fatalf("dfs device = %v", n.DFSDevice().Profile().Name)
	}
}

func TestTopologySplit(t *testing.T) {
	cfg := testConfig()
	cfg.SplitStorage = true
	c := New(sim.New(), cfg)
	if len(c.StorageNodes()) != 2 || len(c.ComputeNodes()) != 2 {
		t.Fatalf("split = %d storage / %d compute", len(c.StorageNodes()), len(c.ComputeNodes()))
	}
	if c.StorageNodes()[0].ID == c.ComputeNodes()[0].ID {
		t.Fatal("storage and compute sets must be disjoint")
	}
	if c.TotalCores() != 4 {
		t.Fatalf("compute cores = %d", c.TotalCores())
	}
}

func TestComputeChargesCoreAndPhase(t *testing.T) {
	env := sim.New()
	c := New(env, testConfig())
	n := c.Node(0)
	env.Go("w", func(p *sim.Proc) {
		n.Compute(p, 2*sim.Second, "map-fn")
		n.Compute(p, sim.Second, "sort")
	})
	env.Run()
	if got := n.CPUAccount().Seconds("map-fn"); got != 2 {
		t.Fatalf("map-fn = %v", got)
	}
	if got := n.CPUAccount().Share("sort"); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("sort share = %v", got)
	}
	if got := n.CPUBusyIntegral(); got != 3 {
		t.Fatalf("busy = %v", got)
	}
	if got := c.CPUAccount().Total(); got != 3 {
		t.Fatalf("cluster total = %v", got)
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	env := sim.New()
	c := New(env, testConfig())
	env.Go("w", func(p *sim.Proc) { c.Node(0).Compute(p, 0, "x") })
	env.Run()
	if env.Now() != 0 {
		t.Fatal("zero compute should not advance time")
	}
}

func TestCoresLimitParallelism(t *testing.T) {
	env := sim.New()
	c := New(env, testConfig()) // 2 cores per node
	n := c.Node(1)
	for i := 0; i < 4; i++ {
		env.Go("w", func(p *sim.Proc) { n.Compute(p, sim.Second, "x") })
	}
	env.Run()
	if got := env.Now().Seconds(); got != 2 {
		t.Fatalf("4 tasks on 2 cores took %vs, want 2s", got)
	}
}

func TestIowaitAccounting(t *testing.T) {
	env := sim.New()
	c := New(env, testConfig())
	n := c.Node(0)
	env.Go("io", func(p *sim.Proc) {
		// Pure I/O with idle CPUs: the whole wait is iowait.
		n.DFSDevice().Read(p, 100e6, true) // ~1s on HDD
	})
	env.Run()
	elapsed := env.Now().Seconds()
	if got := n.IowaitIntegral(); math.Abs(got-elapsed) > 1e-6 {
		t.Fatalf("iowait = %v, want %v (one core idle-waiting)", got, elapsed)
	}
}

func TestIowaitZeroWhenCPUSaturated(t *testing.T) {
	env := sim.New()
	cfg := testConfig()
	cfg.CoresPerNode = 1
	c := New(env, cfg)
	n := c.Node(0)
	// One core, fully busy, while I/O also pending: no *idle* core is
	// waiting, so iowait stays zero (matches how iostat attributes iowait).
	env.Go("cpu", func(p *sim.Proc) { n.Compute(p, 2*sim.Second, "x") })
	env.Go("io", func(p *sim.Proc) {
		p.Yield()
		n.DFSDevice().Read(p, 100e6, true)
	})
	env.Run()
	// I/O outlives the compute, so some tail iowait exists; but during the
	// first 2s there must be none. Measure precisely: the read takes ~1.02s
	// starting at t~0, compute holds the core 0..2s, so iowait only accrues
	// where read extends past 2s — it doesn't. Expect ~0.
	if got := n.IowaitIntegral(); got > 0.01 {
		t.Fatalf("iowait = %v, want ~0 while CPU saturated", got)
	}
}

func TestClusterDiskByteAggregation(t *testing.T) {
	env := sim.New()
	cfg := testConfig()
	cfg.SSDIntermediate = true
	c := New(env, cfg)
	env.Go("w", func(p *sim.Proc) {
		c.Node(0).DFSDevice().Write(p, 1000, true)
		c.Node(0).ScratchDevice().Write(p, 500, true)
		c.Node(1).DFSDevice().Read(p, 300, true)
	})
	env.Run()
	if got := c.DiskBytesWritten(); got != 1500 {
		t.Fatalf("written = %v", got)
	}
	if got := c.DiskBytesRead(); got != 300 {
		t.Fatalf("read = %v", got)
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 10 {
		t.Fatalf("nodes = %d, want 10 (paper's cluster)", cfg.Nodes)
	}
	if cfg.MemoryPerNode != 1<<30 {
		t.Fatalf("memory = %d, want 1GB (paper's JVM heap)", cfg.MemoryPerNode)
	}
	if cfg.DiskProfile.Name != disk.HDD.Name {
		t.Fatal("default disk should be HDD")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []Config{
		{Nodes: 0, CoresPerNode: 1, NetBandwidth: 1},
		{Nodes: 1, CoresPerNode: 0, NetBandwidth: 1},
		{Nodes: 1, CoresPerNode: 1, NetBandwidth: 1, SplitStorage: true},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(sim.New(), cfg)
		}()
	}
}
