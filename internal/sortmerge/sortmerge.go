// Package sortmerge implements the disk-resident half of Hadoop's group-by:
// sorted run files on a scratch store, streaming readers over them, and the
// multi-pass merge that combines runs whenever their number reaches the
// fan-in F — the blocking, I/O-intensive operation the paper identifies as
// the central obstacle to one-pass analytics (§III.B.4).
package sortmerge

import (
	"fmt"

	"onepass/internal/disk"
	"onepass/internal/kv"
	"onepass/internal/sim"
)

// DefaultFanIn mirrors Hadoop's io.sort.factor default of 10.
const DefaultFanIn = 10

// Run is one sorted run file on a scratch store.
type Run struct {
	Store *disk.Store
	File  *disk.File
}

// Size returns the run's byte size.
func (r *Run) Size() int64 { return r.File.Size() }

// WriteRun persists encoded sorted pairs as a new run file, charging a
// sequential write.
func WriteRun(p *sim.Proc, store *disk.Store, name string, encoded []byte) *Run {
	f := store.Create(name, false)
	if len(encoded) > 0 {
		store.Append(p, f, encoded)
	}
	return &Run{Store: store, File: f}
}

// Stream reads a run back as a kv.PairStream, charging a random read per
// buffer refill — the k-way merge access pattern on a spindle.
type Stream struct {
	p *sim.Proc
	r *disk.Reader
	// buf[off:] holds undecoded bytes; on refill the remainder is copied to
	// the front so the buffer is reused instead of reallocated per refill.
	buf   []byte
	off   int
	key   []byte
	val   []byte
	valid bool
	done  bool
}

// streamBuf is the per-run merge buffer size (Hadoop's io.file.buffer.size
// scaled up to merge usage).
const streamBuf = 256 << 10

// NewStream opens a run for streaming by process p.
func NewStream(p *sim.Proc, run *Run) *Stream {
	return &Stream{p: p, r: run.Store.NewReader(run.File, streamBuf)}
}

// Peek implements kv.PairStream.
func (s *Stream) Peek() ([]byte, []byte, bool) {
	if s.valid {
		return s.key, s.val, true
	}
	if s.done {
		return nil, nil, false
	}
	for {
		k, v, n := kv.DecodePair(s.buf[s.off:])
		if n > 0 {
			s.key, s.val = k, v
			s.off += n
			s.valid = true
			return s.key, s.val, true
		}
		chunk := s.r.Next(s.p, streamBuf)
		if chunk == nil {
			if s.off != len(s.buf) {
				panic("sortmerge: trailing partial record in run")
			}
			s.done = true
			return nil, nil, false
		}
		// The previous pair has been consumed (valid is false), so the
		// remainder can move: compact it to the front, then append.
		rest := copy(s.buf, s.buf[s.off:])
		s.buf = append(s.buf[:rest], chunk...)
		s.off = 0
	}
}

// Advance implements kv.PairStream.
func (s *Stream) Advance() { s.valid = false }

// Merger tracks a reducer's on-disk runs and performs multi-pass merging.
type Merger struct {
	FanIn  int
	store  *disk.Store
	prefix string
	runs   []*Run
	seq    int

	// Comparisons accumulates key comparisons across merge passes; BytesIn
	// and BytesOut accumulate merge I/O (the paper's 370 GB for a 256 GB
	// sessionization input lives here).
	Comparisons int64
	BytesIn     int64
	BytesOut    int64
	Passes      int

	// Charge, when set, is called by MergePass between dispatching the pure
	// merge work and joining it, with the pass's input byte volume. Virtual
	// time the owner charges here (serialization, say) overlaps the real
	// merge when the worker pool is enabled; a pass rewrites its inputs
	// verbatim, so inBytes is also the output size.
	Charge func(p *sim.Proc, inBytes int64)
}

// NewMerger returns a merger writing merged runs under prefix on store.
func NewMerger(store *disk.Store, prefix string, fanIn int) *Merger {
	if fanIn < 2 {
		fanIn = DefaultFanIn
	}
	return &Merger{FanIn: fanIn, store: store, prefix: prefix}
}

// AddRun registers a new on-disk run.
func (m *Merger) AddRun(r *Run) { m.runs = append(m.runs, r) }

// Runs returns the current run count.
func (m *Merger) Runs() int { return len(m.runs) }

// RunList returns the current runs (oldest first).
func (m *Merger) RunList() []*Run { return m.runs }

// NeedsPass reports whether the number of on-disk runs has reached the
// fan-in threshold, triggering a background merge (§II.A).
func (m *Merger) NeedsPass() bool { return len(m.runs) >= m.FanIn }

// MergePass merges the F oldest runs into one new run: it reads every
// input byte, re-writes every output byte, and counts real comparisons.
// The inputs are deleted afterwards.
func (m *Merger) MergePass(p *sim.Proc) *Run {
	n := m.FanIn
	if n > len(m.runs) {
		n = len(m.runs)
	}
	if n < 2 {
		return nil
	}
	victims := m.runs[:n]
	m.runs = append([]*Run(nil), m.runs[n:]...)

	var inBytes int64
	datas := make([][]byte, len(victims))
	for i, r := range victims {
		datas[i] = readRun(p, r)
		inBytes += r.Size()
	}
	// With the inputs in memory the k-way merge is pure data work: dispatch
	// it to the pool and let the owner's Charge hook account virtual time
	// over it. Comparisons fold in after the join so the worker never
	// touches shared counters.
	var out []byte
	var cmps int64
	work := p.StartWork(func() {
		streams := make([]kv.PairStream, len(datas))
		for i, d := range datas {
			streams[i] = kv.NewSliceStream(d)
		}
		// A merge pass rewrites its inputs verbatim, so the output is
		// exactly inBytes — allocate it once.
		out = make([]byte, 0, inBytes)
		kv.MergeStreams(streams, &cmps, func(k, v []byte) {
			out = kv.AppendPair(out, k, v)
		})
	})
	if m.Charge != nil {
		m.Charge(p, inBytes)
	}
	work.Wait()
	m.Comparisons += cmps
	m.seq++
	merged := WriteRun(p, m.store, fmt.Sprintf("%s/merged-%04d", m.prefix, m.seq), out)
	for _, r := range victims {
		r.Store.Delete(r.File.Name())
	}
	m.runs = append(m.runs, merged)
	m.BytesIn += inBytes
	m.BytesOut += merged.Size()
	m.Passes++
	return merged
}

// FinalStreams opens every remaining run for the final merge feeding the
// reduce function. The runs stay registered; callers should DeleteAll when
// the reduce scan completes.
func (m *Merger) FinalStreams(p *sim.Proc) []kv.PairStream {
	out := make([]kv.PairStream, len(m.runs))
	for i, r := range m.runs {
		out[i] = NewStream(p, r)
	}
	return out
}

// ReadRuns streams every remaining run fully into memory (charging the
// reads) and returns one encoded byte slice per run, oldest first. The runs
// stay registered for DeleteAll. The final merge uses it so the merge and
// reduce scan become pure in-memory work a pooled closure can own.
func (m *Merger) ReadRuns(p *sim.Proc) [][]byte {
	out := make([][]byte, len(m.runs))
	for i, r := range m.runs {
		out[i] = readRun(p, r)
	}
	return out
}

// readRun reads one run back in full, charging the same buffered reads the
// lazy Stream would.
func readRun(p *sim.Proc, r *Run) []byte {
	out := make([]byte, 0, r.Size())
	rd := r.Store.NewReader(r.File, streamBuf)
	for {
		chunk := rd.Next(p, streamBuf)
		if chunk == nil {
			return out
		}
		out = append(out, chunk...)
	}
}

// TotalRunBytes returns the byte volume of the remaining runs.
func (m *Merger) TotalRunBytes() int64 {
	var t int64
	for _, r := range m.runs {
		t += r.Size()
	}
	return t
}

// DeleteAll removes all remaining run files.
func (m *Merger) DeleteAll() {
	for _, r := range m.runs {
		r.Store.Delete(r.File.Name())
	}
	m.runs = nil
}

// Accumulator is the reduce-side in-memory buffer of fetched (already
// sorted) map-output segments. When the budget fills, the segments are
// merged and spilled to disk as one run.
type Accumulator struct {
	segs   [][]byte
	bytes  int64
	Budget int64
	// SegmentLimit, when positive, forces a spill once this many buffered
	// segments accumulate even if the byte budget is not exhausted —
	// Hadoop's mapreduce.reduce.merge.inmem.threshold (default 1000). This
	// is why the paper saw 1.4 GB of reduce spill on per-user count "even
	// if there is ample memory" (§III.B.4).
	SegmentLimit int
}

// NewAccumulator returns a buffer with the given byte budget.
func NewAccumulator(budget int64) *Accumulator {
	return &Accumulator{Budget: budget}
}

// Add buffers one sorted encoded segment.
func (a *Accumulator) Add(seg []byte) {
	if len(seg) == 0 {
		return
	}
	a.segs = append(a.segs, seg)
	a.bytes += int64(len(seg))
}

// Bytes returns the buffered byte volume.
func (a *Accumulator) Bytes() int64 { return a.bytes }

// Segments returns the number of buffered segments.
func (a *Accumulator) Segments() int { return len(a.segs) }

// Over reports whether the buffer exceeds its byte budget or its segment
// limit.
func (a *Accumulator) Over() bool {
	return a.bytes > a.Budget || (a.SegmentLimit > 0 && len(a.segs) >= a.SegmentLimit)
}

// Streams opens the in-memory segments as pair streams and clears the
// accumulator (the caller owns the merge).
func (a *Accumulator) Streams() []kv.PairStream {
	out := a.PeekStreams()
	a.segs = nil
	a.bytes = 0
	return out
}

// TakeSegments returns the raw buffered segments and clears the
// accumulator. Callers that merge inside a pooled closure take the bytes on
// the event loop and open streams over them inside the closure.
func (a *Accumulator) TakeSegments() [][]byte {
	segs := a.segs
	a.segs = nil
	a.bytes = 0
	return segs
}

// PeekStreams opens the segments without clearing them — used for HOP's
// snapshot re-merges, which must leave the buffered data in place.
func (a *Accumulator) PeekStreams() []kv.PairStream {
	out := make([]kv.PairStream, len(a.segs))
	for i, seg := range a.segs {
		out[i] = kv.NewSliceStream(seg)
	}
	return out
}
