package sortmerge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"onepass/internal/disk"
	"onepass/internal/kv"
	"onepass/internal/sim"
)

func newStore(env *sim.Env) *disk.Store {
	return disk.NewStore(disk.NewDevice(env, "scratch", disk.SSD))
}

func encodeKeys(keys []string) []byte {
	var out []byte
	for _, k := range keys {
		out = kv.AppendPair(out, []byte(k), []byte("v-"+k))
	}
	return out
}

func TestStreamRoundTrip(t *testing.T) {
	env := sim.New()
	store := newStore(env)
	keys := []string{"a", "b", "c", "d"}
	env.Go("t", func(p *sim.Proc) {
		run := WriteRun(p, store, "run0", encodeKeys(keys))
		s := NewStream(p, run)
		for _, want := range keys {
			k, v, ok := s.Peek()
			if !ok || string(k) != want || string(v) != "v-"+want {
				t.Errorf("got %q/%q ok=%v, want %q", k, v, ok, want)
			}
			s.Advance()
		}
		if _, _, ok := s.Peek(); ok {
			t.Error("stream must end")
		}
	})
	env.Run()
}

func TestStreamChargesReads(t *testing.T) {
	env := sim.New()
	dev := disk.NewDevice(env, "scratch", disk.SSD)
	store := disk.NewStore(dev)
	big := make([]string, 0, 20000)
	for i := 0; i < 20000; i++ {
		big = append(big, fmt.Sprintf("key-%08d", i))
	}
	sort.Strings(big)
	env.Go("t", func(p *sim.Proc) {
		run := WriteRun(p, store, "run0", encodeKeys(big))
		written := dev.BytesWritten()
		s := NewStream(p, run)
		n := 0
		for {
			_, _, ok := s.Peek()
			if !ok {
				break
			}
			s.Advance()
			n++
		}
		if n != len(big) {
			t.Errorf("read %d records", n)
		}
		if dev.BytesRead() != written {
			t.Errorf("read %v bytes, wrote %v", dev.BytesRead(), written)
		}
	})
	env.Run()
}

func TestMergerMultiPass(t *testing.T) {
	env := sim.New()
	store := newStore(env)
	rng := rand.New(rand.NewSource(7))
	env.Go("t", func(p *sim.Proc) {
		m := NewMerger(store, "red0", 4)
		var all []string
		for r := 0; r < 10; r++ {
			n := 20 + rng.Intn(20)
			keys := make([]string, n)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%04d", rng.Intn(1000))
			}
			sort.Strings(keys)
			all = append(all, keys...)
			m.AddRun(WriteRun(p, store, fmt.Sprintf("red0/run-%d", r), encodeKeys(keys)))
			for m.NeedsPass() {
				m.MergePass(p)
			}
		}
		if m.Runs() >= 4 {
			t.Errorf("runs after background merges = %d, want < fan-in", m.Runs())
		}
		if m.Passes == 0 || m.BytesIn == 0 || m.Comparisons == 0 {
			t.Errorf("merge accounting empty: passes=%d in=%d cmp=%d", m.Passes, m.BytesIn, m.Comparisons)
		}
		// Final merge must produce the global sorted order.
		var got []string
		kv.MergeStreams(m.FinalStreams(p), nil, func(k, v []byte) { got = append(got, string(k)) })
		sort.Strings(all)
		if len(got) != len(all) {
			t.Fatalf("merged %d records, want %d", len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("record %d = %q, want %q", i, got[i], all[i])
			}
		}
		m.DeleteAll()
		if len(store.Names()) != 0 {
			t.Errorf("leftover files: %v", store.Names())
		}
	})
	env.Run()
}

func TestMergePassDeletesInputs(t *testing.T) {
	env := sim.New()
	store := newStore(env)
	env.Go("t", func(p *sim.Proc) {
		m := NewMerger(store, "x", 2)
		m.AddRun(WriteRun(p, store, "x/r0", encodeKeys([]string{"a", "c"})))
		m.AddRun(WriteRun(p, store, "x/r1", encodeKeys([]string{"b", "d"})))
		before := len(store.Names())
		m.MergePass(p)
		after := store.Names()
		if before != 2 || len(after) != 1 {
			t.Errorf("files before=%d after=%v", before, after)
		}
		if m.Runs() != 1 {
			t.Errorf("runs = %d", m.Runs())
		}
	})
	env.Run()
}

func TestMergePassOnSingleRunIsNoop(t *testing.T) {
	env := sim.New()
	store := newStore(env)
	env.Go("t", func(p *sim.Proc) {
		m := NewMerger(store, "x", 4)
		m.AddRun(WriteRun(p, store, "x/r0", encodeKeys([]string{"a"})))
		if m.MergePass(p) != nil {
			t.Error("merge of one run should be nil")
		}
		if m.Runs() != 1 {
			t.Errorf("runs = %d", m.Runs())
		}
	})
	env.Run()
}

func TestMergerFanInDefault(t *testing.T) {
	m := NewMerger(nil, "x", 0)
	if m.FanIn != DefaultFanIn {
		t.Fatalf("fan-in = %d", m.FanIn)
	}
}

func TestAccumulatorSpillCycle(t *testing.T) {
	a := NewAccumulator(100)
	a.Add(make([]byte, 60))
	if a.Over() {
		t.Fatal("not over yet")
	}
	a.Add(make([]byte, 60))
	if !a.Over() {
		t.Fatal("should be over budget")
	}
	if a.Segments() != 2 || a.Bytes() != 120 {
		t.Fatalf("segments=%d bytes=%d", a.Segments(), a.Bytes())
	}
	streams := a.Streams()
	if len(streams) != 2 {
		t.Fatalf("streams = %d", len(streams))
	}
	if a.Segments() != 0 || a.Bytes() != 0 || a.Over() {
		t.Fatal("Streams must clear the accumulator")
	}
	a.Add(nil) // empty segments ignored
	if a.Segments() != 0 {
		t.Fatal("empty segment must be ignored")
	}
}

// Property: merging runs written from any random sorted inputs through the
// Merger (with intermediate passes) preserves the multiset and global order.
func TestMergerPermutationProperty(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		env := sim.New()
		store := newStore(env)
		env.Go("t", func(p *sim.Proc) {
			m := NewMerger(store, "x", 2+rng.Intn(3))
			counts := map[string]int{}
			nRuns := 1 + rng.Intn(8)
			for r := 0; r < nRuns; r++ {
				n := rng.Intn(30)
				keys := make([]string, n)
				for i := range keys {
					keys[i] = fmt.Sprintf("k%02d", rng.Intn(40))
					counts[keys[i]]++
				}
				sort.Strings(keys)
				m.AddRun(WriteRun(p, store, fmt.Sprintf("x/r%d", r), encodeKeys(keys)))
				if m.NeedsPass() {
					m.MergePass(p)
				}
			}
			var prev string
			kv.MergeStreams(m.FinalStreams(p), nil, func(k, v []byte) {
				ks := string(k)
				if ks < prev {
					t.Errorf("trial %d: order violated", trial)
				}
				prev = ks
				counts[ks]--
			})
			for k, c := range counts {
				if c != 0 {
					t.Errorf("trial %d: key %q count off by %d", trial, k, c)
				}
			}
		})
		env.Run()
	}
}
