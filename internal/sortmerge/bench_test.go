package sortmerge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"onepass/internal/disk"
	"onepass/internal/kv"
	"onepass/internal/sim"
)

// BenchmarkMultiPassMerge measures the real merge work (comparisons +
// framing) over simulated runs, end to end through the disk model.
func BenchmarkMultiPassMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	runs := make([][]byte, 16)
	for r := range runs {
		keys := make([]string, 4096)
		for i := range keys {
			keys[i] = fmt.Sprintf("u%07d", rng.Intn(1<<20))
		}
		sort.Strings(keys)
		var enc []byte
		for _, k := range keys {
			enc = kv.AppendPair(enc, []byte(k), []byte("v"))
		}
		runs[r] = enc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := sim.New()
		store := disk.NewStore(disk.NewDevice(env, "d", disk.SSD))
		env.Go("merge", func(p *sim.Proc) {
			m := NewMerger(store, "b", 4)
			for r, enc := range runs {
				m.AddRun(WriteRun(p, store, fmt.Sprintf("r%d", r), enc))
				for m.NeedsPass() {
					m.MergePass(p)
				}
			}
			n := 0
			kv.MergeStreams(m.FinalStreams(p), nil, func(k, v []byte) { n++ })
			if n != 16*4096 {
				b.Fail()
			}
		})
		env.Run()
	}
}

func BenchmarkRunStream(b *testing.B) {
	env := sim.New()
	store := disk.NewStore(disk.NewDevice(env, "d", disk.SSD))
	var enc []byte
	for i := 0; i < 1<<14; i++ {
		enc = kv.AppendPair(enc, []byte(fmt.Sprintf("u%07d", i)), []byte("value-bytes"))
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e2 := sim.New()
		s2 := disk.NewStore(disk.NewDevice(e2, "d", disk.SSD))
		e2.Go("s", func(p *sim.Proc) {
			run := WriteRun(p, s2, "r", enc)
			st := NewStream(p, run)
			for {
				_, _, ok := st.Peek()
				if !ok {
					break
				}
				st.Advance()
			}
		})
		e2.Run()
	}
	_ = store
	_ = env
}
