package gen

import (
	"math/rand"
	"strconv"
)

// GraphConfig parameterizes the synthetic web-graph generator used by the
// graph-query workload (PageRank) the paper lists among its ongoing-work
// benchmark extensions. Vertices get Zipf-skewed out-degrees and endpoints,
// like a web link graph.
type GraphConfig struct {
	Seed uint64
	// Nodes is the vertex count.
	Nodes int
	// AvgDegree is the mean out-degree.
	AvgDegree int
	// EndpointSkew biases edge targets toward low vertex ids (> 1).
	EndpointSkew float64
}

// DefaultGraphConfig returns a small-web-like graph.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{Seed: 7, Nodes: 20000, AvgDegree: 12, EndpointSkew: 1.3}
}

// Block generates adjacency records "v<id> <t1> <t2> ...\n" for a
// contiguous vertex range per block, sized to fit the byte budget. Vertex
// ids are deterministic per (seed, block); every vertex appears in exactly
// one block across the full sweep of blocks.
func (c GraphConfig) Block(block int, size int64) []byte {
	rng := blockRand(c.Seed, block)
	targets := rand.NewZipf(rng, c.EndpointSkew, 1, uint64(c.Nodes-1))
	out := make([]byte, 0, size)
	// Vertices are striped across blocks by a fixed stride so any prefix of
	// blocks covers a spread of ids; a block owns ids ≡ block (mod stride)
	// conceptually, but since callers generate all blocks of the registered
	// size, a simple running id per block position is enough: each block
	// packs sequential vertices starting where the previous (same-size)
	// block ended. Determinism comes from the per-block id base.
	stride := c.vertexStride(size)
	base := block * stride
	var line []byte
	for i := 0; i < stride; i++ {
		v := base + i
		if v >= c.Nodes {
			break
		}
		deg := 1 + rng.Intn(2*c.AvgDegree)
		line = line[:0]
		line = append(line, 'v')
		line = strconv.AppendInt(line, int64(v), 10)
		for e := 0; e < deg; e++ {
			line = append(line, ' ', 'v')
			line = strconv.AppendUint(line, targets.Uint64(), 10)
		}
		line = append(line, '\n')
		out = append(out, line...)
	}
	return out
}

// vertexStride is how many vertices each block owns: sized against the
// worst-case line length so a block's vertices always fit its byte budget
// and no vertex is ever silently dropped between blocks.
func (c GraphConfig) vertexStride(size int64) int {
	maxLine := 9 + 2*c.AvgDegree*9
	stride := int(size) / maxLine
	if stride < 1 {
		stride = 1
	}
	return stride
}

// TotalBytes estimates the dataset size needed to cover every vertex at
// the given block size.
func (c GraphConfig) TotalBytes(blockSize int64) int64 {
	stride := c.vertexStride(blockSize)
	blocks := (c.Nodes + stride - 1) / stride
	return int64(blocks) * blockSize
}
