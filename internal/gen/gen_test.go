package gen

import (
	"bytes"
	"testing"

	"onepass/internal/textfmt"
)

func TestClickBlockDeterministic(t *testing.T) {
	cfg := DefaultClickConfig()
	a := cfg.Block(3, 10000)
	b := cfg.Block(3, 10000)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, block) must generate identical bytes")
	}
	c := cfg.Block(4, 10000)
	if bytes.Equal(a, c) {
		t.Fatal("different blocks must differ")
	}
	cfg2 := cfg
	cfg2.Seed = 999
	if bytes.Equal(a, cfg2.Block(3, 10000)) {
		t.Fatal("different seeds must differ")
	}
}

func TestClickBlockRespectsSizeAndParses(t *testing.T) {
	cfg := DefaultClickConfig()
	const size = 8 << 10
	block := cfg.Block(0, size)
	if int64(len(block)) > size {
		t.Fatalf("block = %d bytes, cap %d", len(block), size)
	}
	if len(block) < size/2 {
		t.Fatalf("block suspiciously small: %d", len(block))
	}
	n := 0
	rest := block
	for {
		line, r, ok := textfmt.NextLine(rest)
		if !ok {
			break
		}
		rest = r
		c, err := textfmt.ParseClickText(line)
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if int(c.User) >= cfg.Users {
			t.Fatalf("user %d out of range", c.User)
		}
		if !bytes.HasPrefix(c.URL, []byte("/en/page/")) {
			t.Fatalf("url = %q", c.URL)
		}
		n++
	}
	if len(rest) != 0 {
		t.Fatalf("trailing partial record of %d bytes", len(rest))
	}
	if n < 50 {
		t.Fatalf("only %d records in 8KB", n)
	}
}

func TestClickBlockBinaryParses(t *testing.T) {
	cfg := DefaultClickConfig()
	cfg.Binary = true
	block := cfg.Block(0, 8<<10)
	n := 0
	for off := 0; off < len(block); {
		c, used := textfmt.ParseClickBinary(block[off:])
		if used == 0 {
			t.Fatalf("partial binary record at offset %d", off)
		}
		if int(c.User) >= cfg.Users {
			t.Fatalf("user out of range")
		}
		off += used
		n++
	}
	if n < 50 {
		t.Fatalf("only %d binary records", n)
	}
}

func TestClickSkewProducesHotKeys(t *testing.T) {
	cfg := DefaultClickConfig()
	counts := map[uint32]int{}
	total := 0
	for b := 0; b < 4; b++ {
		rest := cfg.Block(b, 64<<10)
		for {
			line, r, ok := textfmt.NextLine(rest)
			if !ok {
				break
			}
			rest = r
			c, _ := textfmt.ParseClickText(line)
			counts[c.User]++
			total++
		}
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	// Zipf with s=1.1: the hottest user should hold a visible share.
	if float64(max)/float64(total) < 0.02 {
		t.Fatalf("hottest user share = %.4f — skew missing", float64(max)/float64(total))
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct users — too concentrated", len(counts))
	}
}

func TestDocBlockParsesAndDeterministic(t *testing.T) {
	cfg := DefaultDocConfig()
	a := cfg.Block(1, 32<<10)
	if !bytes.Equal(a, cfg.Block(1, 32<<10)) {
		t.Fatal("doc generation must be deterministic")
	}
	docs := 0
	words := 0
	rest := a
	for {
		line, r, ok := textfmt.NextLine(rest)
		if !ok {
			break
		}
		rest = r
		d, err := textfmt.ParseDocText(line)
		if err != nil {
			t.Fatalf("doc %d: %v", docs, err)
		}
		words += len(d.Words)
		docs++
	}
	if len(rest) != 0 {
		t.Fatal("trailing partial document")
	}
	if docs < 3 {
		t.Fatalf("docs = %d", docs)
	}
	if words/docs < cfg.WordsPerDoc/3 {
		t.Fatalf("mean words/doc = %d, config %d", words/docs, cfg.WordsPerDoc)
	}
}

func TestDocBlockTinySizeClipsAtTokenBoundary(t *testing.T) {
	cfg := DefaultDocConfig()
	block := cfg.Block(0, 64) // smaller than one document
	if len(block) == 0 {
		t.Fatal("tiny block should still hold a clipped document")
	}
	line, _, ok := textfmt.NextLine(block)
	if !ok {
		t.Fatal("clipped document must end in newline")
	}
	if _, err := textfmt.ParseDocText(line); err != nil {
		t.Fatalf("clipped document must parse: %v", err)
	}
}

func TestDistinctURLsPerBlockBounded(t *testing.T) {
	// Page-frequency's tiny intermediate/input ratio (0.4%) relies on few
	// distinct URLs per block relative to records.
	cfg := DefaultClickConfig()
	urls := map[string]bool{}
	recs := 0
	rest := cfg.Block(0, 256<<10)
	for {
		line, r, ok := textfmt.NextLine(rest)
		if !ok {
			break
		}
		rest = r
		c, _ := textfmt.ParseClickText(line)
		urls[string(c.URL)] = true
		recs++
	}
	if float64(len(urls)) > 0.5*float64(recs) {
		t.Fatalf("distinct urls %d vs records %d — combiner would be useless", len(urls), recs)
	}
}
