// Package gen synthesizes the paper's two datasets at configurable scale:
// a World Cup '98-style click log (Zipf-distributed users and URLs) and a
// GOV2-style document collection (Zipf vocabulary). Generation is
// deterministic per (seed, block), so the DFS can materialize blocks lazily
// and re-reads always see identical bytes.
package gen

import (
	"math/rand"
	"strconv"

	"onepass/internal/textfmt"
)

// ClickConfig parameterizes the click-log generator.
type ClickConfig struct {
	Seed uint64
	// Users and URLs are the distinct entity counts.
	Users int
	URLs  int
	// UserSkew and URLSkew are Zipf s parameters (> 1; larger = more skew).
	UserSkew float64
	URLSkew  float64
	// Binary selects the SequenceFile-style encoding instead of text.
	Binary bool
	// BaseTime is the first timestamp; records within a block step forward.
	BaseTime uint32
}

// DefaultClickConfig mirrors the World Cup log's character: heavy user and
// URL skew with large entity counts.
func DefaultClickConfig() ClickConfig {
	return ClickConfig{
		Seed:     1998,
		Users:    200000,
		URLs:     50000,
		UserSkew: 1.1,
		URLSkew:  1.3,
		BaseTime: 869769600, // 1998-06-24, mid World Cup
	}
}

func lastSpace(b []byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == ' ' {
			return i
		}
	}
	return -1
}

func blockRand(seed uint64, block int) *rand.Rand {
	s := seed ^ uint64(block+1)*0x9E3779B97F4A7C15
	return rand.New(rand.NewSource(int64(s)))
}

// Block generates one block of at most size bytes of click records. The
// last record is never truncated, so blocks parse cleanly in isolation —
// the property HDFS text input splits give Hadoop via line boundaries.
func (c ClickConfig) Block(block int, size int64) []byte {
	rng := blockRand(c.Seed, block)
	users := rand.NewZipf(rng, c.UserSkew, 1, uint64(c.Users-1))
	urls := rand.NewZipf(rng, c.URLSkew, 1, uint64(c.URLs-1))
	out := make([]byte, 0, size)
	ts := c.BaseTime + uint32(block)
	var urlBuf, rec []byte
	for {
		urlBuf = appendURL(urlBuf[:0], urls.Uint64())
		click := textfmt.Click{Time: ts, User: uint32(users.Uint64()), URL: urlBuf}
		rec = rec[:0]
		if c.Binary {
			rec = textfmt.AppendClickBinary(rec, click)
		} else {
			rec = textfmt.AppendClickText(rec, click)
		}
		if int64(len(out)+len(rec)) > size {
			return out
		}
		out = append(out, rec...)
		ts += uint32(rng.Intn(3))
	}
}

// DocConfig parameterizes the document generator.
type DocConfig struct {
	Seed uint64
	// Vocab is the vocabulary size; word ids are Zipf-distributed with
	// WordSkew, so low ids are stopword-frequent.
	Vocab    int
	WordSkew float64
	// WordsPerDoc is the mean document length in words.
	WordsPerDoc int
}

// DefaultDocConfig approximates GOV2's text statistics at generator scale.
func DefaultDocConfig() DocConfig {
	return DocConfig{Seed: 2004, Vocab: 80000, WordSkew: 1.15, WordsPerDoc: 300}
}

// Block generates one block of at most size bytes of document records.
func (c DocConfig) Block(block int, size int64) []byte {
	rng := blockRand(c.Seed, block)
	words := rand.NewZipf(rng, c.WordSkew, 1, uint64(c.Vocab-1))
	out := make([]byte, 0, size)
	docID := uint32(block) * 1000000
	var line []byte
	for {
		n := c.WordsPerDoc/2 + rng.Intn(c.WordsPerDoc)
		line = line[:0]
		line = append(line, 'd')
		line = strconv.AppendUint(line, uint64(docID), 10)
		for w := 0; w < n; w++ {
			line = append(line, ' ', 'w')
			line = strconv.AppendUint(line, words.Uint64(), 10)
		}
		line = append(line, '\n')
		if int64(len(out)+len(line)) > size {
			if len(out) == 0 && size >= 8 {
				// A single document larger than the block: clip the word
				// list at a token boundary so the block is never empty.
				clip := line[:size-1]
				if i := lastSpace(clip); i > 0 {
					clip = clip[:i]
				}
				out = append(out, clip...)
				out = append(out, '\n')
			}
			return out
		}
		out = append(out, line...)
		docID++
	}
}
