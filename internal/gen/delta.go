package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"onepass/internal/textfmt"
)

// appendURL writes the click-log URL encoding for a drawn URL id — the one
// place the base generator and the delta rewriter must agree on it.
func appendURL(dst []byte, id uint64) []byte {
	dst = append(dst, "/en/page/"...)
	return strconv.AppendUint(dst, id, 10)
}

// Delta describes a seeded, replayable evolution of a click-log file —
// i2MapReduce's delta-input model. A delta selects a deterministic subset
// of the base file's blocks as dirty and rewrites them record by record
// (each record independently deleted, updated in place, or kept), then
// appends fresh blocks of new clicks past the end of the base file. Every
// decision derives from (Seed, block), so a delta can be re-materialized
// block by block in any order and always yields identical bytes — the same
// property ClickConfig.Block gives base data, extended to its evolution.
type Delta struct {
	// Seed drives every dirty-block coin, per-record mutation draw, and
	// appended-block generator, independently of the base Clicks.Seed.
	Seed uint64
	// DirtyFrac is the expected fraction of base blocks rewritten. When
	// positive, at least one block is always dirty (a delta that changes
	// nothing is not a delta).
	DirtyFrac float64
	// UpdateFrac and DeleteFrac are per-record probabilities within a dirty
	// block: a deleted record is dropped, an updated record keeps its
	// timestamp but redraws its user and URL from the base distributions.
	// Their sum must not exceed 1; the remainder of records pass unchanged.
	UpdateFrac float64
	DeleteFrac float64
	// AppendFrac is the number of appended blocks as a fraction of the base
	// block count. When positive, at least one block is appended.
	AppendFrac float64
	// Clicks must be the exact generator config of the base file: dirty
	// blocks are re-derived from it before mutation, and appended blocks
	// extend its timeline (block index beyond the base advances BaseTime).
	Clicks ClickConfig
}

// DefaultDelta is the standard mixed delta at a given overall size: frac of
// the base blocks dirty (half their touched records updated, a quarter
// deleted) and frac of the base size appended as new clicks.
func DefaultDelta(clicks ClickConfig, seed uint64, frac float64) Delta {
	return Delta{
		Seed:       seed,
		DirtyFrac:  frac,
		UpdateFrac: 0.5,
		DeleteFrac: 0.25,
		AppendFrac: frac,
		Clicks:     clicks,
	}
}

// Salts separate the three random streams a Delta consumes so that, e.g.,
// the dirty-block coin for block i never correlates with block i's
// per-record mutation draws.
const (
	deltaDirtySalt  = 0x8F1BBCDCBFA53E0B
	deltaMutateSalt = 0x2545F4914F6CDD1D
	deltaAppendSalt = 0xD6E8FEB86659FD93
)

// Validate rejects fraction parameters outside their documented ranges.
func (d Delta) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DirtyFrac", d.DirtyFrac},
		{"UpdateFrac", d.UpdateFrac},
		{"DeleteFrac", d.DeleteFrac},
		{"AppendFrac", d.AppendFrac},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("gen: delta %s %v outside [0,1]", f.name, f.v)
		}
	}
	if d.UpdateFrac+d.DeleteFrac > 1 {
		return fmt.Errorf("gen: delta UpdateFrac+DeleteFrac %v exceeds 1",
			d.UpdateFrac+d.DeleteFrac)
	}
	if d.Clicks.Users <= 0 || d.Clicks.URLs <= 0 {
		return fmt.Errorf("gen: delta Clicks needs positive Users/URLs (got %d/%d)",
			d.Clicks.Users, d.Clicks.URLs)
	}
	return nil
}

// Zero reports whether the delta changes nothing at all.
func (d Delta) Zero() bool { return d.DirtyFrac <= 0 && d.AppendFrac <= 0 }

// DirtyBlocks returns the sorted base-block indices this delta rewrites:
// an independent seeded coin per block, forced to at least one block when
// DirtyFrac is positive so no delta silently degenerates to append-only.
func (d Delta) DirtyBlocks(nBase int) []int {
	if d.DirtyFrac <= 0 || nBase <= 0 {
		return nil
	}
	var dirty []int
	for b := 0; b < nBase; b++ {
		if blockRand(d.Seed^deltaDirtySalt, b).Float64() < d.DirtyFrac {
			dirty = append(dirty, b)
		}
	}
	if len(dirty) == 0 {
		dirty = append(dirty, int(d.Seed%uint64(nBase)))
	}
	return dirty
}

// AppendCount returns the number of appended blocks: ceil(AppendFrac·nBase),
// at least one when AppendFrac is positive.
func (d Delta) AppendCount(nBase int) int {
	if d.AppendFrac <= 0 || nBase <= 0 {
		return 0
	}
	n := int(math.Ceil(d.AppendFrac * float64(nBase)))
	if n < 1 {
		n = 1
	}
	return n
}

// MutatedBlock re-derives base block b (at its registered size) and rewrites
// it record by record: per record, one seeded draw decides delete / update /
// keep. Updates preserve the record's timestamp and encoding but redraw the
// user and URL from the base config's Zipf distributions. The result is
// deterministic per (Seed, block) and never splits a record.
func (d Delta) MutatedBlock(b int, size int64) []byte {
	base := d.Clicks.Block(b, size)
	rng := blockRand(d.Seed^deltaMutateSalt, b)
	users := rand.NewZipf(rng, d.Clicks.UserSkew, 1, uint64(d.Clicks.Users-1))
	urls := rand.NewZipf(rng, d.Clicks.URLSkew, 1, uint64(d.Clicks.URLs-1))
	out := make([]byte, 0, len(base))
	var urlBuf []byte
	rewrite := func(c textfmt.Click) textfmt.Click {
		urlBuf = appendURL(urlBuf[:0], urls.Uint64())
		return textfmt.Click{Time: c.Time, User: uint32(users.Uint64()), URL: urlBuf}
	}
	if d.Clicks.Binary {
		for rest := base; len(rest) > 0; {
			c, n := textfmt.ParseClickBinary(rest)
			if n == 0 {
				out = append(out, rest...) // trailing garbage: keep verbatim
				break
			}
			rec := rest[:n]
			rest = rest[n:]
			switch p := rng.Float64(); {
			case p < d.DeleteFrac:
			case p < d.DeleteFrac+d.UpdateFrac:
				out = textfmt.AppendClickBinary(out, rewrite(c))
			default:
				out = append(out, rec...)
			}
		}
		return out
	}
	for rest := base; len(rest) > 0; {
		line, next, ok := textfmt.NextLine(rest)
		if !ok {
			out = append(out, rest...) // unterminated tail: keep verbatim
			break
		}
		rec := rest[:len(line)+1]
		rest = next
		c, err := textfmt.ParseClickText(line)
		if err != nil {
			out = append(out, rec...)
			continue
		}
		switch p := rng.Float64(); {
		case p < d.DeleteFrac:
		case p < d.DeleteFrac+d.UpdateFrac:
			out = textfmt.AppendClickText(out, rewrite(c))
		default:
			out = append(out, rec...)
		}
	}
	return out
}

// AppendedBlock generates appended block i (zero-based past the base): new
// clicks from a Seed-derived generator at block index nBase+i, so appended
// timestamps continue past the base timeline exactly as if the log had kept
// growing.
func (d Delta) AppendedBlock(i, nBase int, size int64) []byte {
	cfg := d.Clicks
	cfg.Seed = d.Clicks.Seed ^ (d.Seed + deltaAppendSalt)
	return cfg.Block(nBase+i, size)
}

// Apply returns the changed file's generator: the base generator with dirty
// blocks mutated and AppendCount(nBase) appended blocks past the base.
// Callers size the new file as nBase+AppendCount blocks; per-block sizes are
// the caller's (the DFS layout's) concern, exactly as with ClickConfig.Block.
func (d Delta) Apply(nBase int) func(block int, size int64) []byte {
	dirty := make(map[int]bool, nBase)
	for _, b := range d.DirtyBlocks(nBase) {
		dirty[b] = true
	}
	return func(block int, size int64) []byte {
		switch {
		case block >= nBase:
			return d.AppendedBlock(block-nBase, nBase, size)
		case dirty[block]:
			return d.MutatedBlock(block, size)
		default:
			return d.Clicks.Block(block, size)
		}
	}
}
