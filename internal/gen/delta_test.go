package gen

import (
	"bytes"
	"testing"

	"onepass/internal/textfmt"
)

func testDelta(binary bool) Delta {
	cc := DefaultClickConfig()
	cc.Users = 500
	cc.URLs = 200
	cc.Binary = binary
	return Delta{
		Seed:       7,
		DirtyFrac:  0.25,
		UpdateFrac: 0.4,
		DeleteFrac: 0.2,
		AppendFrac: 0.1,
		Clicks:     cc,
	}
}

func countClicks(t *testing.T, binary bool, block []byte) int {
	t.Helper()
	n := 0
	if binary {
		for rest := block; len(rest) > 0; {
			_, sz := textfmt.ParseClickBinary(rest)
			if sz == 0 {
				t.Fatalf("unparseable binary tail of %d bytes", len(rest))
			}
			rest = rest[sz:]
			n++
		}
		return n
	}
	for rest := block; len(rest) > 0; {
		line, next, ok := textfmt.NextLine(rest)
		if !ok {
			t.Fatalf("unterminated text tail %q", rest)
		}
		if _, err := textfmt.ParseClickText(line); err != nil {
			t.Fatalf("bad click line: %v", err)
		}
		rest = next
		n++
	}
	return n
}

// TestDeltaReplayable: every delta-derived block is a pure function of
// (Seed, block) — repeated materialization yields identical bytes.
func TestDeltaReplayable(t *testing.T) {
	for _, binary := range []bool{false, true} {
		d := testDelta(binary)
		const size = 4 << 10
		for b := 0; b < 8; b++ {
			if !bytes.Equal(d.MutatedBlock(b, size), d.MutatedBlock(b, size)) {
				t.Fatalf("binary=%v: MutatedBlock(%d) not replayable", binary, b)
			}
			if !bytes.Equal(d.AppendedBlock(b, 8, size), d.AppendedBlock(b, 8, size)) {
				t.Fatalf("binary=%v: AppendedBlock(%d) not replayable", binary, b)
			}
		}
	}
}

// TestDeltaDirtyBlocks: selection is in range, sorted, non-empty whenever
// DirtyFrac > 0, and roughly proportional to DirtyFrac at scale.
func TestDeltaDirtyBlocks(t *testing.T) {
	d := testDelta(false)
	const nBase = 1000
	dirty := d.DirtyBlocks(nBase)
	if len(dirty) == 0 {
		t.Fatal("no dirty blocks at DirtyFrac=0.25")
	}
	for i, b := range dirty {
		if b < 0 || b >= nBase {
			t.Fatalf("dirty block %d out of range", b)
		}
		if i > 0 && dirty[i-1] >= b {
			t.Fatalf("dirty blocks not sorted/unique: %v", dirty[:i+1])
		}
	}
	if got := len(dirty); got < nBase/8 || got > nBase/2 {
		t.Fatalf("dirty count %d wildly off 0.25·%d", got, nBase)
	}
	// A tiny fraction over a tiny file still forces at least one block.
	d.DirtyFrac = 1e-9
	if got := d.DirtyBlocks(4); len(got) != 1 {
		t.Fatalf("forced dirty block: got %v", got)
	}
	d.DirtyFrac = 0
	if got := d.DirtyBlocks(nBase); got != nil {
		t.Fatalf("DirtyFrac=0 selected %v", got)
	}
}

// TestDeltaMutation: mutated blocks parse as clicks, deletes shrink the
// record count, updates change bytes while keeping timestamps aligned.
func TestDeltaMutation(t *testing.T) {
	for _, binary := range []bool{false, true} {
		d := testDelta(binary)
		const size = 16 << 10
		base := d.Clicks.Block(0, size)
		mut := d.MutatedBlock(0, size)
		if bytes.Equal(base, mut) {
			t.Fatalf("binary=%v: mutation changed nothing", binary)
		}
		nb, nm := countClicks(t, binary, base), countClicks(t, binary, mut)
		if nm >= nb {
			t.Fatalf("binary=%v: DeleteFrac=0.2 kept %d of %d records", binary, nm, nb)
		}
		if nm < nb/2 {
			t.Fatalf("binary=%v: only %d of %d records survived a 20%% delete", binary, nm, nb)
		}
	}
}

// TestDeltaAppend: appended blocks parse, continue the base timeline, and
// AppendCount rounds up with a floor of one.
func TestDeltaAppend(t *testing.T) {
	d := testDelta(false)
	const size = 8 << 10
	const nBase = 10
	app := d.AppendedBlock(0, nBase, size)
	countClicks(t, false, app)
	base := d.Clicks.Block(0, size)
	if bytes.Equal(app, base) {
		t.Fatal("appended block replays the base generator stream")
	}
	line, _, _ := textfmt.NextLine(app)
	c, err := textfmt.ParseClickText(line)
	if err != nil {
		t.Fatal(err)
	}
	if c.Time < d.Clicks.BaseTime+uint32(nBase) {
		t.Fatalf("appended timestamp %d precedes end of base timeline %d",
			c.Time, d.Clicks.BaseTime+uint32(nBase))
	}
	if got := d.AppendCount(nBase); got != 1 {
		t.Fatalf("AppendCount(%d) at 0.1 = %d, want 1", nBase, got)
	}
	d.AppendFrac = 0.5
	if got := d.AppendCount(nBase); got != 5 {
		t.Fatalf("AppendCount(%d) at 0.5 = %d, want 5", nBase, got)
	}
	d.AppendFrac = 0
	if got := d.AppendCount(nBase); got != 0 {
		t.Fatalf("AppendCount(%d) at 0 = %d, want 0", nBase, got)
	}
}

// TestDeltaApply: the changed-file generator leaves clean blocks
// byte-identical to the base, substitutes mutations for dirty blocks, and
// serves appended blocks past the base.
func TestDeltaApply(t *testing.T) {
	d := testDelta(false)
	const size = 4 << 10
	const nBase = 20
	gen := d.Apply(nBase)
	dirty := make(map[int]bool)
	for _, b := range d.DirtyBlocks(nBase) {
		dirty[b] = true
	}
	for b := 0; b < nBase; b++ {
		want := d.Clicks.Block(b, size)
		if dirty[b] {
			want = d.MutatedBlock(b, size)
		}
		if !bytes.Equal(gen(b, size), want) {
			t.Fatalf("Apply block %d (dirty=%v) mismatches", b, dirty[b])
		}
	}
	if !bytes.Equal(gen(nBase+1, size), d.AppendedBlock(1, nBase, size)) {
		t.Fatal("Apply appended block mismatches AppendedBlock")
	}
}

// TestDeltaValidate rejects out-of-range fractions.
func TestDeltaValidate(t *testing.T) {
	d := testDelta(false)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := d
	bad.DirtyFrac = 1.5
	if bad.Validate() == nil {
		t.Fatal("DirtyFrac=1.5 accepted")
	}
	bad = d
	bad.UpdateFrac, bad.DeleteFrac = 0.8, 0.4
	if bad.Validate() == nil {
		t.Fatal("UpdateFrac+DeleteFrac>1 accepted")
	}
	bad = d
	bad.Clicks.Users = 0
	if bad.Validate() == nil {
		t.Fatal("zero Users accepted")
	}
}
