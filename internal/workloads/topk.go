package workloads

import (
	"bytes"
	"sort"

	"onepass/internal/engine"
	"onepass/internal/kv"
)

// The paper's ongoing-work section calls out "complex queries such as
// top-k" as the next step for one-pass analytics, and §IV poses "how to
// support the combine function for complex analytical tasks such as top-k"
// as an open question. This file answers it for top-k: partial top-k lists
// are a mergeable bounded state, so the task gets a combiner and an
// incremental aggregator and runs on every engine as the second stage of a
// chained job (counts from page-frequency in, global top-k out).

// TopKKey is the single group key all candidates fold into.
var TopKKey = []byte("top")

// topEntry is one (count, name) candidate.
type topEntry struct {
	count uint64
	name  []byte
}

// encodeTop frames a top-k list as "count name\n" lines, ordered by
// descending count (ties by name ascending) — both the state encoding and
// the final output format.
func encodeTop(entries []topEntry) []byte {
	var out []byte
	for _, e := range entries {
		out = appendUint(out, e.count)
		out = append(out, ' ')
		out = append(out, e.name...)
		out = append(out, '\n')
	}
	return out
}

func decodeTop(b []byte) []topEntry {
	var out []topEntry
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		if nl < 0 {
			break
		}
		line := b[:nl]
		b = b[nl+1:]
		sp := bytes.IndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		out = append(out, topEntry{count: parseUint(line[:sp]), name: append([]byte(nil), line[sp+1:]...)})
	}
	return out
}

// mergeTop merges candidate lists, keeping the k largest.
func mergeTop(k int, lists ...[]topEntry) []topEntry {
	var all []topEntry
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return bytes.Compare(all[i].name, all[j].name) < 0
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// PairReader iterates a chained job's input: the encoded (key, value)
// pairs a previous job wrote to the DFS.
func PairReader(block []byte, yield func(rec []byte)) {
	off := 0
	for off < len(block) {
		_, _, n := kv.DecodePair(block[off:])
		if n == 0 {
			return
		}
		yield(block[off : off+n])
		off += n
	}
}

// TopK builds the second-stage job: read the (name, count) pairs a counting
// job (page frequency, per-user count) wrote, and produce the k most
// frequent entries under the single key "top". Set Job.InputPath to the
// first stage's OutputPath before running.
func TopK(k int) engine.Job {
	reduceTop := func(key []byte, vals [][]byte, emit engine.Emit) {
		lists := make([][]topEntry, 0, len(vals))
		for _, v := range vals {
			lists = append(lists, decodeTop(v))
		}
		emit(key, encodeTop(mergeTop(k, lists...)))
	}
	return engine.Job{
		Name:   "top-k",
		Reader: PairReader,
		Map: func(rec []byte, emit engine.Emit) {
			name, count, n := kv.DecodePair(rec)
			if n == 0 {
				return
			}
			emit(TopKKey, encodeTop([]topEntry{{count: parseUint(count), name: name}}))
		},
		Reduce:   reduceTop,
		Monoid:   TopKMonoid{K: k},
		Reducers: 1,
		Costs:    engine.CostModel{MapNsPerRecord: 120},
		Fresh:    func() engine.Job { return TopK(k) },
	}
}

// ParseTopK decodes a TopK job's output value into (name, count) pairs in
// rank order.
func ParseTopK(val string) (names []string, counts []uint64) {
	for _, e := range decodeTop([]byte(val)) {
		names = append(names, string(e.name))
		counts = append(counts, e.count)
	}
	return names, counts
}
