package workloads

import (
	"bytes"
	"encoding/binary"

	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/kv"
)

// PageRank is the graph query from the paper's ongoing-work benchmark
// extensions ("complex queries such as top-k and graph queries"),
// implemented as iterated MapReduce jobs over chained DFS state: every
// iteration reads the previous iteration's (vertex, rank|adjacency) pairs,
// scatters rank contributions along edges, and gathers them with the
// teleport term. Ranks use fixed-point parts-per-billion arithmetic so the
// result is bit-identical across engines and value orderings (uint64
// addition commutes; floating point would not).

// RankScale is the fixed-point unit: 1.0 == 1e9.
const RankScale = 1_000_000_000

// Damping is the standard PageRank damping factor, in percent.
const Damping = 85

// Vertex state message tags.
const (
	tagAdjacency = 'A' // payload: space-separated neighbour names
	tagContrib   = 'C' // payload: 8-byte fixed-point contribution
)

func encodeRankState(rank uint64, adj []byte) []byte {
	out := make([]byte, 8, 8+len(adj))
	binary.LittleEndian.PutUint64(out, rank)
	return append(out, adj...)
}

// DecodeRank splits a PageRank output value into the fixed-point rank and
// the adjacency list text.
func DecodeRank(val []byte) (rank uint64, adj []byte) {
	if len(val) < 8 {
		return 0, nil
	}
	return binary.LittleEndian.Uint64(val[:8]), val[8:]
}

// scatter emits one vertex's adjacency preservation message plus its rank
// contributions to each neighbour.
func scatter(vertex []byte, rank uint64, adj []byte, emit engine.Emit) {
	emit(vertex, append([]byte{tagAdjacency}, adj...))
	if len(adj) == 0 {
		// Dangling vertex: its mass leaks, the standard simplification.
		return
	}
	targets := bytes.Split(adj, []byte(" "))
	contrib := rank * Damping / 100 / uint64(len(targets))
	var msg [9]byte
	msg[0] = tagContrib
	binary.LittleEndian.PutUint64(msg[1:], contrib)
	for _, t := range targets {
		if len(t) > 0 {
			emit(t, msg[:])
		}
	}
}

// gather folds one vertex's messages into its next state.
func gather(nodes int, key []byte, vals [][]byte, emit engine.Emit) {
	var adj []byte
	var sum uint64
	for _, v := range vals {
		if len(v) == 0 {
			continue
		}
		switch v[0] {
		case tagAdjacency:
			adj = v[1:]
		case tagContrib:
			sum += binary.LittleEndian.Uint64(v[1:])
		}
	}
	rank := uint64(RankScale)*(100-Damping)/100/uint64(nodes) + sum
	emit(key, encodeRankState(rank, adj))
}

// prAgg is the incremental aggregator: state = 1 flag byte ("adjacency
// seen"), 8-byte contribution sum, adjacency text. Merge adds sums and
// keeps whichever adjacency arrived — exact under any arrival order.
type prAgg struct{ nodes int }

func prState(seenAdj bool, sum uint64, adj []byte) []byte {
	out := make([]byte, 9, 9+len(adj))
	if seenAdj {
		out[0] = 1
	}
	binary.LittleEndian.PutUint64(out[1:], sum)
	return append(out, adj...)
}

func prDecode(state []byte) (seenAdj bool, sum uint64, adj []byte) {
	return state[0] == 1, binary.LittleEndian.Uint64(state[1:9]), state[9:]
}

func (a prAgg) Init(val []byte) []byte {
	return a.Update(prState(false, 0, nil), val)
}

func (a prAgg) Update(state, val []byte) []byte {
	seen, sum, adj := prDecode(state)
	if len(val) > 0 {
		switch val[0] {
		case tagAdjacency:
			return prState(true, sum, val[1:])
		case tagContrib:
			return prState(seen, sum+binary.LittleEndian.Uint64(val[1:]), adj)
		}
	}
	return state
}

func (a prAgg) Merge(x, y []byte) []byte {
	sx, nx, ax := prDecode(x)
	sy, ny, ay := prDecode(y)
	adj := ax
	seen := sx
	if sy {
		adj = ay
		seen = true
	}
	return prState(seen, nx+ny, adj)
}

func (a prAgg) Final(key, state []byte, emit engine.Emit) {
	_, sum, adj := prDecode(state)
	rank := uint64(RankScale)*(100-Damping)/100/uint64(a.nodes) + sum
	emit(key, encodeRankState(rank, adj))
}

// PageRankInit builds iteration zero: it reads the adjacency text the graph
// generator produced and assigns every vertex rank 1/N.
func PageRankInit(cfg gen.GraphConfig) *Workload {
	w := &Workload{Name: "pagerank-init", Gen: cfg.Block}
	w.Job = engine.Job{
		Name:   w.Name,
		Reader: LineReader,
		Map: func(rec []byte, emit engine.Emit) {
			sp := bytes.IndexByte(rec, ' ')
			if sp < 0 {
				emit(rec, []byte{tagAdjacency})
				return
			}
			emit(rec[:sp], append([]byte{tagAdjacency}, rec[sp+1:]...))
		},
		Reduce: func(key []byte, vals [][]byte, emit engine.Emit) {
			var adj []byte
			for _, v := range vals {
				if len(v) > 0 && v[0] == tagAdjacency {
					adj = v[1:]
				}
			}
			emit(key, encodeRankState(RankScale/uint64(cfg.Nodes), adj))
		},
		Costs: engine.CostModel{MapNsPerRecord: 400},
	}
	w.Job.Fresh = func() engine.Job { return PageRankInit(cfg).Job }
	return w
}

// PageRankIter builds one power iteration over the previous iteration's
// output (set Job.InputPath to it before running). nodes is the graph's
// vertex count, needed for the teleport term.
func PageRankIter(nodes int) engine.Job {
	gatherN := func(key []byte, vals [][]byte, emit engine.Emit) { gather(nodes, key, vals, emit) }
	return engine.Job{
		Name:   "pagerank-iter",
		Reader: PairReader,
		Map: func(rec []byte, emit engine.Emit) {
			vertex, state, n := decodePairRecord(rec)
			if n == 0 {
				return
			}
			rank, adj := DecodeRank(state)
			scatter(vertex, rank, adj, emit)
		},
		Reduce: gatherN,
		Agg:    prAgg{nodes: nodes},
		Costs:  engine.CostModel{MapNsPerRecord: 600, ReduceNsPerRecord: 80},
		Fresh:  func() engine.Job { return PageRankIter(nodes) },
	}
}

// decodePairRecord unwraps one PairReader record.
func decodePairRecord(rec []byte) (key, val []byte, n int) {
	return kv.DecodePair(rec)
}
