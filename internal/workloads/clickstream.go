package workloads

import (
	"bytes"
	"sort"

	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/textfmt"
)

// SessionGap is the idle threshold that closes a session: 30 minutes.
const SessionGap = 30 * 60

// Sessionization reorders click logs into per-user sessions — the paper's
// headline workload: large intermediate data (map output ≈ input size, all
// of it reorganized by user), no combiner.
func Sessionization(cfg gen.ClickConfig) *Workload {
	w := &Workload{Name: "sessionization", Gen: cfg.Block}
	// Scratch buffers are per-Workload: emit targets copy immediately and the
	// simulation runs one process at a time, so reuse across records is safe.
	var keyBuf, valBuf []byte
	w.Job = engine.Job{
		Name:        w.Name,
		Reader:      clickReader(cfg),
		BinaryInput: cfg.Binary,
		Map: func(rec []byte, emit engine.Emit) {
			c, ok := parseClick(rec, cfg.Binary)
			if !ok {
				return
			}
			// key = user, value = "ts url" — everything needed to rebuild
			// the ordered session stream.
			keyBuf = appendUser(keyBuf[:0], c.User)
			valBuf = appendUint(valBuf[:0], uint64(c.Time))
			valBuf = append(valBuf, ' ')
			valBuf = append(valBuf, c.URL...)
			emit(keyBuf, valBuf)
		},
		Reduce: sessionizeReducer(),
		// The reducer sorts each user's clicks before splitting sessions, so
		// the output is a pure function of the value multiset.
		OrderInsensitive: true,
		Costs:            engine.CostModel{MapNsPerRecord: 240},
	}
	// Each Fresh() construction owns its scratch buffers, so parallel tasks
	// can run independent copies of the user functions.
	w.Job.Fresh = func() engine.Job { return Sessionization(cfg).Job }
	return w
}

// sessionClick is one parsed click inside sessionizeReducer.
type sessionClick struct {
	ts  uint64
	url []byte
}

// sessionizeReducer returns a reducer that sorts one user's clicks by time
// and splits them into sessions at SessionGap boundaries, emitting the
// reordered log: "ts@url,ts@url|ts@url" with '|' separating sessions. The
// clicks and output buffers persist across keys to avoid per-key churn.
func sessionizeReducer() engine.ReduceFunc {
	var clicks []sessionClick
	var out []byte
	return func(key []byte, vals [][]byte, emit engine.Emit) {
		clicks = clicks[:0]
		for _, v := range vals {
			sp := bytes.IndexByte(v, ' ')
			if sp < 0 {
				continue
			}
			clicks = append(clicks, sessionClick{ts: parseUint(v[:sp]), url: v[sp+1:]})
		}
		sort.Slice(clicks, func(i, j int) bool {
			if clicks[i].ts != clicks[j].ts {
				return clicks[i].ts < clicks[j].ts
			}
			return bytes.Compare(clicks[i].url, clicks[j].url) < 0
		})
		out = out[:0]
		for i, c := range clicks {
			if i > 0 {
				if c.ts-clicks[i-1].ts > SessionGap {
					out = append(out, '|')
				} else {
					out = append(out, ',')
				}
			}
			out = appendUint(out, c.ts)
			out = append(out, '@')
			out = append(out, c.url...)
		}
		emit(key, out)
	}
}

// DefaultSessionWindow is WindowedSessionization's default bucket: 1 hour.
const DefaultSessionWindow = 3600

// WindowedSessionization is the sliding-window variant of the headline
// workload, built for continuously maintained answers: clicks are bucketed
// into fixed event-time windows before sessionizing, so the key is
// "u<user>@<window>" and each group holds one user's clicks within one
// window. Because appended log blocks carry later timestamps, a delta
// re-run touches only the trailing windows' keys — closed windows are
// served unchanged from preserved state, which is exactly how an early
// answer becomes a continuously maintained one.
func WindowedSessionization(cfg gen.ClickConfig, window uint32) *Workload {
	if window == 0 {
		window = DefaultSessionWindow
	}
	w := &Workload{Name: "windowed-sessionization", Gen: cfg.Block}
	var keyBuf, valBuf []byte
	w.Job = engine.Job{
		Name:        w.Name,
		Reader:      clickReader(cfg),
		BinaryInput: cfg.Binary,
		Map: func(rec []byte, emit engine.Emit) {
			c, ok := parseClick(rec, cfg.Binary)
			if !ok {
				return
			}
			keyBuf = appendUser(keyBuf[:0], c.User)
			keyBuf = append(keyBuf, '@')
			keyBuf = appendUint(keyBuf, uint64(c.Time/window))
			valBuf = appendUint(valBuf[:0], uint64(c.Time))
			valBuf = append(valBuf, ' ')
			valBuf = append(valBuf, c.URL...)
			emit(keyBuf, valBuf)
		},
		Reduce:           sessionizeReducer(),
		OrderInsensitive: true,
		Costs:            engine.CostModel{MapNsPerRecord: 240},
	}
	w.Job.Fresh = func() engine.Job { return WindowedSessionization(cfg, window).Job }
	return w
}

// PageFrequency counts visits per URL (SELECT COUNT(*) GROUP BY url) — the
// canonical combiner-friendly workload with tiny intermediate data.
func PageFrequency(cfg gen.ClickConfig) *Workload {
	return countingWorkload("page-frequency", cfg, func(dst []byte, c textfmt.Click) []byte {
		return append(dst, c.URL...)
	}, 60)
}

// PerUserCount counts clicks per user — Table II's second column: a map
// function so light that sorting takes nearly half the map-phase CPU.
func PerUserCount(cfg gen.ClickConfig) *Workload {
	return countingWorkload("per-user-count", cfg, func(dst []byte, c textfmt.Click) []byte {
		return appendUser(dst, c.User)
	}, 60)
}

// one is the shared count value; emit targets copy, never mutate.
var one = []byte{'1'}

func countingWorkload(name string, cfg gen.ClickConfig, key func(dst []byte, c textfmt.Click) []byte, mapNs float64) *Workload {
	w := &Workload{Name: name, Gen: cfg.Block}
	var keyBuf []byte
	w.Job = engine.Job{
		Name:        name,
		Reader:      clickReader(cfg),
		BinaryInput: cfg.Binary,
		Map: func(rec []byte, emit engine.Emit) {
			c, ok := parseClick(rec, cfg.Binary)
			if !ok {
				return
			}
			keyBuf = key(keyBuf[:0], c)
			emit(keyBuf, one)
		},
		Reduce: sumReducer(),
		Monoid: CountMonoid{},
		// Addition commutes, so the reduce stays delta-capable even when
		// Config.DisableMonoid strips the monoid declaration.
		OrderInsensitive: true,
		Costs:            engine.CostModel{MapNsPerRecord: mapNs},
	}
	w.Job.Fresh = func() engine.Job { return countingWorkload(name, cfg, key, mapNs).Job }
	return w
}

// sumReducer returns a fold over ASCII decimal values with a reused output
// buffer. Combine and Reduce get separate instances so their scratch state
// never interleaves.
func sumReducer() engine.ReduceFunc {
	var out []byte
	return func(key []byte, vals [][]byte, emit engine.Emit) {
		out = appendUint(out[:0], sumValues(vals))
		emit(key, out)
	}
}

func clickReader(cfg gen.ClickConfig) engine.RecordReader {
	if cfg.Binary {
		return BinaryClickReader
	}
	return LineReader
}

func parseClick(rec []byte, binary bool) (textfmt.Click, bool) {
	if binary {
		c, n := textfmt.ParseClickBinary(rec)
		return c, n > 0
	}
	c, err := textfmt.ParseClickText(rec)
	return c, err == nil
}

func appendUser(dst []byte, user uint32) []byte {
	dst = append(dst, 'u')
	return appendUint(dst, uint64(user))
}
