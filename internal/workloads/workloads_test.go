package workloads

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/kv"
	"onepass/internal/textfmt"
)

func smallClickCfg() gen.ClickConfig {
	cfg := gen.DefaultClickConfig()
	cfg.Users = 500
	cfg.URLs = 200
	return cfg
}

func genBlocks(g func(int, int64) []byte, n int, size int64) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = g(i, size)
	}
	return out
}

func TestSessionizationReference(t *testing.T) {
	w := Sessionization(smallClickCfg())
	blocks := genBlocks(w.Gen, 2, 16<<10)
	out := Reference(w, blocks)
	if len(out) == 0 {
		t.Fatal("no users in output")
	}
	for user, sessions := range out {
		if user[0] != 'u' {
			t.Fatalf("bad key %q", user)
		}
		// Timestamps must be non-decreasing within the whole value.
		var last uint64
		for _, sess := range strings.Split(sessions, "|") {
			for _, clk := range strings.Split(sess, ",") {
				slash := strings.IndexByte(clk, '@')
				if slash < 0 {
					t.Fatalf("bad click %q", clk)
				}
				ts := parseUint([]byte(clk[:slash]))
				if ts < last {
					t.Fatalf("user %s: timestamps out of order", user)
				}
				last = ts
			}
		}
	}
}

func TestSessionizationSplitsAtGap(t *testing.T) {
	var vals [][]byte
	vals = append(vals, []byte("1000 /a"))
	vals = append(vals, []byte(fmt.Sprintf("%d /b", 1000+SessionGap)))     // same session (== gap)
	vals = append(vals, []byte(fmt.Sprintf("%d /c", 1000+2*SessionGap+1))) // new session
	var got string
	sessionizeReducer()([]byte("u1"), vals, func(k, v []byte) { got = string(v) })
	want := fmt.Sprintf("1000@/a,%d@/b|%d@/c", 1000+SessionGap, 1000+2*SessionGap+1)
	if got != want {
		t.Fatalf("sessions = %q, want %q", got, want)
	}
}

func TestSessionizationReduceSortsByTime(t *testing.T) {
	vals := [][]byte{[]byte("300 /c"), []byte("100 /a"), []byte("200 /b")}
	var got string
	sessionizeReducer()([]byte("u1"), vals, func(k, v []byte) { got = string(v) })
	if got != "100@/a,200@/b,300@/c" {
		t.Fatalf("got %q", got)
	}
}

func TestCountingWorkloadsAgainstManualCount(t *testing.T) {
	for _, mk := range []func(gen.ClickConfig) *Workload{PageFrequency, PerUserCount} {
		w := mk(smallClickCfg())
		blocks := genBlocks(w.Gen, 2, 16<<10)
		out := Reference(w, blocks)
		// Manually recount with the map function only.
		manual := map[string]uint64{}
		for _, b := range blocks {
			w.Job.Reader(b, func(rec []byte) {
				w.Job.Map(rec, func(k, v []byte) { manual[string(k)] += parseUint(v) })
			})
		}
		if len(out) != len(manual) {
			t.Fatalf("%s: %d keys vs manual %d", w.Name, len(out), len(manual))
		}
		for k, v := range manual {
			if out[k] != fmt.Sprint(v) {
				t.Fatalf("%s: key %q = %q, manual %d", w.Name, k, out[k], v)
			}
		}
	}
}

func TestCombineMatchesReduceForCounting(t *testing.T) {
	w := PageFrequency(smallClickCfg())
	vals := [][]byte{[]byte("1"), []byte("41"), []byte("0")}
	var viaCombine, viaReduce string
	combine := w.Job.EffectiveCombine()
	if combine == nil {
		t.Fatal("counting workload must derive a combiner from its monoid")
	}
	combine([]byte("k"), vals, func(k, v []byte) { viaCombine = string(v) })
	w.Job.Reduce([]byte("k"), vals, func(k, v []byte) { viaReduce = string(v) })
	if viaCombine != "42" || viaReduce != "42" {
		t.Fatalf("combine=%q reduce=%q", viaCombine, viaReduce)
	}
}

func TestCountAggMatchesReduce(t *testing.T) {
	agg := CountAgg{}
	state := agg.Init([]byte("5"))
	state = agg.Update(state, []byte("7"))
	other := agg.Init([]byte("30"))
	state = agg.Merge(state, other)
	if CountState(state) != 42 {
		t.Fatalf("state = %d", CountState(state))
	}
	var got string
	agg.Final([]byte("k"), state, func(k, v []byte) { got = string(v) })
	if got != "42" {
		t.Fatalf("final = %q", got)
	}
}

func TestBinaryClickVariantMatchesText(t *testing.T) {
	cfgText := smallClickCfg()
	cfgBin := cfgText
	cfgBin.Binary = true
	wText := PerUserCount(cfgText)
	wBin := PerUserCount(cfgBin)
	outText := Reference(wText, genBlocks(wText.Gen, 2, 16<<10))
	outBin := Reference(wBin, genBlocks(wBin.Gen, 2, 16<<10))
	// Same seed, same distribution — the *sets* of users should overlap
	// heavily and the record counts should be similar. (Byte sizes differ,
	// so blocks hold slightly different record counts; we verify the binary
	// pipeline works, not exact equality.)
	if len(outBin) == 0 {
		t.Fatal("binary variant produced nothing")
	}
	common := 0
	for k := range outBin {
		if _, ok := outText[k]; ok {
			common++
		}
	}
	if common < len(outBin)/2 {
		t.Fatalf("binary/text user overlap only %d/%d", common, len(outBin))
	}
}

func TestInvertedIndexReference(t *testing.T) {
	cfg := gen.DefaultDocConfig()
	cfg.Vocab = 500
	cfg.WordsPerDoc = 40
	w := InvertedIndex(cfg)
	blocks := genBlocks(w.Gen, 2, 8<<10)
	out := Reference(w, blocks)
	if len(out) == 0 {
		t.Fatal("empty index")
	}
	for word, postings := range out {
		if len(postings)%postingWidth != 0 {
			t.Fatalf("word %q: postings not %d-aligned", word, postingWidth)
		}
		if isStopword([]byte(word), StopwordThreshold(cfg)) {
			t.Fatalf("stopword %q indexed", word)
		}
		// Postings sorted ascending.
		for off := postingWidth; off < len(postings); off += postingWidth {
			if postings[off-postingWidth:off] > postings[off:off+postingWidth] {
				t.Fatalf("word %q: postings unsorted", word)
			}
		}
	}
}

func TestInvertedIndexPostingEncoding(t *testing.T) {
	w := InvertedIndex(gen.DefaultDocConfig())
	var keys []string
	var vals [][]byte
	// Default vocab 80000, coverage 0.80 -> threshold ~1163: w5 filtered,
	// w1999+ kept.
	w.Job.Map([]byte("d7 w1999 w5 w2000"), func(k, v []byte) {
		keys = append(keys, string(k))
		vals = append(vals, append([]byte(nil), v...))
	})
	if len(keys) != 2 || keys[0] != "w1999" || keys[1] != "w2000" {
		t.Fatalf("keys = %v", keys)
	}
	if binary.BigEndian.Uint32(vals[0][0:]) != 7 || binary.BigEndian.Uint32(vals[0][4:]) != 0 {
		t.Fatalf("posting 0 = %x", vals[0])
	}
	if binary.BigEndian.Uint32(vals[1][4:]) != 2 {
		t.Fatalf("posting 1 pos = %x", vals[1])
	}
}

func TestPostingsAggMatchesReduce(t *testing.T) {
	w := InvertedIndex(gen.DefaultDocConfig())
	mk := func(doc, pos uint32) []byte {
		var p [postingWidth]byte
		binary.BigEndian.PutUint32(p[0:], doc)
		binary.BigEndian.PutUint32(p[4:], pos)
		return p[:]
	}
	vals := [][]byte{mk(5, 1), mk(2, 9), mk(2, 3)}
	var viaReduce string
	w.Job.Reduce([]byte("w"), vals, func(k, v []byte) { viaReduce = string(v) })

	agg := PostingsAgg{}
	state := agg.Init(mk(5, 1))
	state = agg.Update(state, mk(2, 9))
	state = agg.Merge(state, agg.Init(mk(2, 3)))
	var viaAgg string
	agg.Final([]byte("w"), state, func(k, v []byte) { viaAgg = string(v) })
	if viaAgg != viaReduce {
		t.Fatalf("agg %x != reduce %x", viaAgg, viaReduce)
	}
	want := string(mk(2, 3)) + string(mk(2, 9)) + string(mk(5, 1))
	if viaReduce != want {
		t.Fatalf("reduce order wrong: %x", viaReduce)
	}
}

func TestJobTemplatesValidate(t *testing.T) {
	cfg := smallClickCfg()
	for _, w := range []*Workload{
		Sessionization(cfg), PageFrequency(cfg), PerUserCount(cfg),
		InvertedIndex(gen.DefaultDocConfig()),
	} {
		job := w.Job
		job.InputPath = "in"
		job.OutputPath = "out"
		job.Reducers = 4
		if err := job.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestValidateCatchesMissingFields(t *testing.T) {
	w := PageFrequency(smallClickCfg())
	job := w.Job
	if err := job.Validate(); err == nil {
		t.Fatal("missing input path must fail validation")
	}
	var empty engine.Job
	if err := empty.Validate(); err == nil {
		t.Fatal("empty job must fail validation")
	}
}

func TestParseAppendUintRoundTrip(t *testing.T) {
	for _, n := range []uint64{0, 1, 9, 10, 123456789, 18446744073709551615} {
		if parseUint(appendUint(nil, n)) != n {
			t.Fatalf("round trip failed for %d", n)
		}
	}
	if parseUint([]byte("12x3")) != 12 {
		t.Fatal("parse must stop at non-digit")
	}
}

func TestTopKMergeAndEncoding(t *testing.T) {
	a := decodeTop([]byte("10 /x\n5 /y\n"))
	b := decodeTop([]byte("7 /z\n"))
	merged := mergeTop(2, a, b)
	if len(merged) != 2 || merged[0].count != 10 || merged[1].count != 7 {
		t.Fatalf("merged = %+v", merged)
	}
	enc := encodeTop(merged)
	if string(enc) != "10 /x\n7 /z\n" {
		t.Fatalf("encoded = %q", enc)
	}
	names, counts := ParseTopK(string(enc))
	if len(names) != 2 || names[0] != "/x" || counts[1] != 7 {
		t.Fatalf("parsed = %v %v", names, counts)
	}
}

func TestTopKMergeTieBreak(t *testing.T) {
	m := mergeTop(2, decodeTop([]byte("5 /b\n5 /a\n5 /c\n")))
	if string(m[0].name) != "/a" || string(m[1].name) != "/b" {
		t.Fatalf("tie break = %+v", m)
	}
}

func TestTopKAggMatchesReduce(t *testing.T) {
	job := TopK(3)
	vals := [][]byte{
		[]byte("10 /a\n"), []byte("3 /b\n"), []byte("7 /c\n"), []byte("1 /d\n"),
	}
	var viaReduce string
	job.Reduce(TopKKey, vals, func(k, v []byte) { viaReduce = string(v) })
	agg := engine.MonoidAgg{M: job.Monoid}
	state := agg.Init(vals[0])
	for _, v := range vals[1:] {
		state = agg.Update(state, v)
	}
	var viaAgg string
	agg.Final(TopKKey, state, func(k, v []byte) { viaAgg = string(v) })
	if viaAgg != viaReduce {
		t.Fatalf("agg %q != reduce %q", viaAgg, viaReduce)
	}
	if viaReduce != "10 /a\n7 /c\n3 /b\n" {
		t.Fatalf("top-3 = %q", viaReduce)
	}
}

func TestPairReader(t *testing.T) {
	var buf []byte
	buf = kvAppend(buf, "k1", "v1")
	buf = kvAppend(buf, "k2", "v2")
	var recs int
	PairReader(buf, func(rec []byte) { recs++ })
	if recs != 2 {
		t.Fatalf("records = %d", recs)
	}
}

func kvAppend(buf []byte, k, v string) []byte {
	return kv.AppendPair(buf, []byte(k), []byte(v))
}

func TestWindowedTopicCountsReference(t *testing.T) {
	cfg := smallClickCfg()
	const window = 600
	w := WindowedTopicCounts(cfg, window)
	blocks := genBlocks(w.Gen, 2, 16<<10)
	out := Reference(w, blocks)
	if len(out) == 0 {
		t.Fatal("no windowed counts")
	}
	// Recount manually.
	manual := map[string]uint64{}
	for _, b := range blocks {
		w.Job.Reader(b, func(rec []byte) {
			c, err := textfmt.ParseClickText(rec)
			if err != nil {
				return
			}
			manual[fmt.Sprintf("w%d|%s", c.Time/window, c.URL)]++
		})
	}
	if len(out) != len(manual) {
		t.Fatalf("keys = %d, manual %d", len(out), len(manual))
	}
	for k, v := range manual {
		if out[k] != fmt.Sprint(v) {
			t.Fatalf("%s = %s, want %d", k, out[k], v)
		}
	}
}

func TestTopKPerWindowSplitsGroups(t *testing.T) {
	job := TopKPerWindow(2)
	var buf []byte
	buf = kvAppend(buf, "w1|/a", "10")
	buf = kvAppend(buf, "w1|/b", "5")
	buf = kvAppend(buf, "w1|/c", "7")
	buf = kvAppend(buf, "w2|/a", "3")
	groups := map[string][][]byte{}
	job.Reader(buf, func(rec []byte) {
		job.Map(rec, func(k, v []byte) {
			groups[string(k)] = append(groups[string(k)], append([]byte(nil), v...))
		})
	})
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	var top string
	job.Reduce([]byte("w1"), groups["w1"], func(k, v []byte) { top = string(v) })
	if top != "10 /a\n7 /c\n" {
		t.Fatalf("w1 top-2 = %q", top)
	}
}
