package workloads

import (
	"bytes"

	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/kv"
)

// The paper's benchmark roadmap ("we are extending our benchmark to Twitter
// feed analysis") lands here as trending-topic detection: bucket a
// timestamped event stream into event-time windows, count topics per
// window, then select each window's top-k. The click stream stands in for
// the tweet stream (url ≈ hashtag) — what matters is the shape: composite
// windowed keys, streaming arrival, and a per-group top-k second stage.

// WindowedTopicCounts is stage one: COUNT(*) GROUP BY (window, topic) with
// tumbling event-time windows of windowSecs. Keys are "w<window>|<topic>",
// so stage two can split group from member.
func WindowedTopicCounts(cfg gen.ClickConfig, windowSecs uint32) *Workload {
	w := &Workload{Name: "trending-counts", Gen: cfg.Block}
	var keyBuf []byte
	w.Job = engine.Job{
		Name:        w.Name,
		Reader:      clickReader(cfg),
		BinaryInput: cfg.Binary,
		Map: func(rec []byte, emit engine.Emit) {
			c, ok := parseClick(rec, cfg.Binary)
			if !ok {
				return
			}
			keyBuf = append(keyBuf[:0], 'w')
			keyBuf = appendUint(keyBuf, uint64(c.Time/windowSecs))
			keyBuf = append(keyBuf, '|')
			keyBuf = append(keyBuf, c.URL...)
			emit(keyBuf, one)
		},
		Reduce: sumReducer(),
		Monoid: CountMonoid{},
		Costs:  engine.CostModel{MapNsPerRecord: 80},
	}
	w.Job.Fresh = func() engine.Job { return WindowedTopicCounts(cfg, windowSecs).Job }
	return w
}

// TopKPerWindow is stage two: read stage one's (window|topic, count) pairs
// and keep each window's k most frequent topics, using the same mergeable
// partial-top-k state as global TopK — grouped by window instead of one
// global key.
func TopKPerWindow(k int) engine.Job {
	reduceTop := func(key []byte, vals [][]byte, emit engine.Emit) {
		lists := make([][]topEntry, 0, len(vals))
		for _, v := range vals {
			lists = append(lists, decodeTop(v))
		}
		emit(key, encodeTop(mergeTop(k, lists...)))
	}
	return engine.Job{
		Name:   "trending-topk",
		Reader: PairReader,
		Map: func(rec []byte, emit engine.Emit) {
			key, count, n := kv.DecodePair(rec)
			if n == 0 {
				return
			}
			sep := bytes.IndexByte(key, '|')
			if sep < 0 {
				return
			}
			window, topic := key[:sep], key[sep+1:]
			emit(window, encodeTop([]topEntry{{count: parseUint(count), name: topic}}))
		},
		Reduce:   reduceTop,
		Monoid:   TopKMonoid{K: k},
		Reducers: 4,
		Costs:    engine.CostModel{MapNsPerRecord: 150},
		Fresh:    func() engine.Job { return TopKPerWindow(k) },
	}
}
