package workloads

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"

	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/textfmt"
)

// StopwordCoverage is the fraction of word *occurrences* the stopword
// filter removes — a standard ~500-word list against a GOV2-scale Zipf
// vocabulary covers roughly 3/4-4/5 of all tokens, which is what brings the
// paper's intermediate/input ratio for inverted indexing to ~70% (Table I)
// instead of >100%. The id threshold is derived from the vocabulary size
// and skew so coverage stays constant at any generator scale.
const StopwordCoverage = 0.80

// StopwordThreshold returns the word-id cutoff achieving StopwordCoverage
// for the config's Zipf(s) vocabulary: solving sum_{k<=K} k^-s =
// coverage x sum_{k<=V} k^-s with the integral approximation
// (1-K^(1-s))/(s-1).
func StopwordThreshold(cfg gen.DocConfig) uint64 {
	e := 1 - cfg.WordSkew // negative for s > 1
	if e >= 0 || cfg.Vocab < 4 {
		return 2
	}
	k := math.Pow(1-StopwordCoverage*(1-math.Pow(float64(cfg.Vocab), e)), 1/e)
	if k < 2 {
		k = 2
	}
	return uint64(k)
}

// postingWidth is the fixed encoding of one posting: u32 doc id, u32
// position.
const postingWidth = 8

// InvertedIndex builds word → sorted postings over a document collection.
func InvertedIndex(cfg gen.DocConfig) *Workload {
	stopwords := StopwordThreshold(cfg)
	w := &Workload{Name: "inverted-index", Gen: cfg.Block}
	// Per-Workload scratch: the word slice and posting buffer are reused
	// across records (emit copies, and the simulation is single-threaded).
	var words [][]byte
	posting := make([]byte, postingWidth)
	w.Job = engine.Job{
		Name:   w.Name,
		Reader: LineReader,
		Map: func(rec []byte, emit engine.Emit) {
			d, err := textfmt.ParseDocTextInto(rec, words)
			if err != nil {
				return
			}
			words = d.Words
			for pos, word := range d.Words {
				if isStopword(word, stopwords) {
					continue
				}
				binary.BigEndian.PutUint32(posting[0:], d.ID)
				binary.BigEndian.PutUint32(posting[4:], uint32(pos))
				emit(word, posting)
			}
		},
		Reduce: reducePostingsFunc(),
		Monoid: PostingsMonoid{},
		Costs:  engine.CostModel{MapNsPerRecord: 2500, ReduceNsPerRecord: 30},
	}
	w.Job.Fresh = func() engine.Job { return InvertedIndex(cfg).Job }
	return w
}

// isStopword filters generator tokens "w<id>" with id below the threshold.
func isStopword(word []byte, threshold uint64) bool {
	if len(word) < 2 || word[0] != 'w' {
		return false
	}
	return parseUint(word[1:]) < threshold
}

// reducePostingsFunc returns a reducer producing the canonical sorted
// posting list for one word, with per-key scratch reused across keys.
func reducePostingsFunc() engine.ReduceFunc {
	var all []byte
	var scratch postingScratch
	return func(key []byte, vals [][]byte, emit engine.Emit) {
		all = all[:0]
		splitFixed(vals, postingWidth, func(unit []byte) { all = append(all, unit...) })
		emit(key, scratch.sort(all))
	}
}

// postingScratch holds the index and output buffers sortPostings needs, so
// repeated sorts (one per reduced key) reuse them.
type postingScratch struct {
	idx []int
	out []byte
}

func (s *postingScratch) sort(all []byte) []byte {
	n := len(all) / postingWidth
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	idx := s.idx[:n]
	for i := range idx {
		idx[i] = i * postingWidth
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(all[idx[a]:idx[a]+postingWidth], all[idx[b]:idx[b]+postingWidth]) < 0
	})
	out := s.out[:0]
	for _, off := range idx {
		out = append(out, all[off:off+postingWidth]...)
	}
	s.out = out
	return out
}

// sortPostings sorts a flat posting array into canonical order, allocating
// fresh scratch — the convenience form used by PostingsAgg.Final.
func sortPostings(all []byte) []byte {
	var s postingScratch
	return s.sort(all)
}
