package workloads

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"onepass/internal/engine"
	"onepass/internal/kv"
)

// The monoid laws promised by kv.Monoid's doc comment, checked over
// randomly generated elements of each declared monoid's value space.
// Combine may reuse its first argument's storage, so every evaluation gets
// fresh copies and compares against saved copies.

// elementGen produces one random canonical element of a monoid's value
// space. Elements must be canonical (reachable by folding map outputs):
// PostingsMonoid's laws, for instance, only hold over sorted lists.
var elementGens = map[string]func(rng *rand.Rand) []byte{
	"count": func(rng *rand.Rand) []byte {
		return appendUint(nil, rng.Uint64()%1_000_000)
	},
	"postings": func(rng *rand.Rand) []byte {
		n := rng.Intn(6)
		raw := make([]byte, n*postingWidth)
		rng.Read(raw)
		return sortPostings(raw)
	},
	"top-k": func(rng *rand.Rand) []byte {
		n := rng.Intn(6)
		entries := make([]topEntry, n)
		for i := range entries {
			entries[i] = topEntry{
				count: rng.Uint64() % 1000,
				name:  []byte(fmt.Sprintf("item-%d", rng.Intn(50))),
			}
		}
		// mergeTop canonicalizes: descending count, ties by name, truncated.
		return encodeTop(mergeTop(5, entries))
	},
}

func cp(b []byte) []byte { return append([]byte(nil), b...) }

func combine(m kv.Monoid, a, b []byte) []byte {
	return m.Combine(cp(a), cp(b))
}

func TestMonoidLaws(t *testing.T) {
	for name, m := range Monoids() {
		gen, ok := elementGens[name]
		if !ok {
			t.Fatalf("monoid %q has no element generator; add one to elementGens", name)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			id := m.Identity()
			for trial := 0; trial < 200; trial++ {
				a, b, c := gen(rng), gen(rng), gen(rng)

				if got := combine(m, id, a); !bytes.Equal(got, a) {
					t.Fatalf("trial %d: Combine(Identity, a) = %q, want %q", trial, got, a)
				}
				if got := combine(m, a, id); !bytes.Equal(got, a) {
					t.Fatalf("trial %d: Combine(a, Identity) = %q, want %q", trial, got, a)
				}

				left := combine(m, combine(m, a, b), c)
				right := combine(m, a, combine(m, b, c))
				if !bytes.Equal(left, right) {
					t.Fatalf("trial %d: associativity broken:\n (a·b)·c = %q\n a·(b·c) = %q\n a=%q b=%q c=%q",
						trial, left, right, a, b, c)
				}

				if kv.IsCommutative(m) {
					ab, ba := combine(m, a, b), combine(m, b, a)
					if !bytes.Equal(ab, ba) {
						t.Fatalf("trial %d: commutativity broken: a·b = %q, b·a = %q", trial, ab, ba)
					}
				}
			}
		})
	}
}

// TestMonoidIdentityUnaliased: engines hold Identity() results as initial
// states and Combine may append into its first argument, so a returned
// identity whose storage is shared across calls would let one key's fold
// bleed into another's.
func TestMonoidIdentityUnaliased(t *testing.T) {
	for name, m := range Monoids() {
		gen := elementGens[name]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			id1 := cp(m.Identity())
			st := m.Combine(cp(m.Identity()), gen(rng))
			_ = st
			if id2 := m.Identity(); !bytes.Equal(id1, id2) {
				t.Fatalf("Identity() changed after a Combine: %q then %q", id1, id2)
			}
		})
	}
}

// TestMonoidFoldMatchesReduce: a finished Combine-fold over a value
// multiset must be byte-identical to running the workload's Reduce over the
// same multiset — the substitution every engine's combining layer depends
// on.
func TestMonoidFoldMatchesReduce(t *testing.T) {
	cases := []struct {
		name   string
		m      kv.Monoid
		gen    func(rng *rand.Rand) []byte
		reduce engine.ReduceFunc
	}{
		{"count", CountMonoid{}, elementGens["count"], sumReducer()},
		{"postings", PostingsMonoid{}, elementGens["postings"], reducePostingsFunc()},
		{"top-k", TopKMonoid{K: 5}, elementGens["top-k"], TopK(5).Reduce},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			for trial := 0; trial < 50; trial++ {
				vals := make([][]byte, 1+rng.Intn(8))
				for i := range vals {
					vals[i] = tc.gen(rng)
				}
				folded := cp(tc.m.Identity())
				for _, v := range vals {
					folded = tc.m.Combine(folded, cp(v))
				}
				var reduced []byte
				tc.reduce([]byte("k"), vals, func(_, v []byte) { reduced = cp(v) })
				if !bytes.Equal(folded, reduced) {
					t.Fatalf("trial %d: fold %q != reduce %q over %q", trial, folded, reduced, vals)
				}
			}
		})
	}
}
