// Package workloads implements the paper's four benchmark tasks (Table I):
// sessionization, page-frequency counting, and per-user click counting over
// the click stream, and inverted-index construction over web documents.
// Each workload supplies the map/combine/reduce functions, an incremental
// aggregator where the analytic function supports one, per-workload cost
// hints, and a single-threaded reference evaluation used by the
// cross-engine equivalence tests.
package workloads

import (
	"onepass/internal/engine"
	"onepass/internal/textfmt"
)

// Workload couples a job template with its input generator.
type Workload struct {
	Name string
	// Gen produces the content of input block i (deterministic).
	Gen func(block int, size int64) []byte
	// Job is the job template; the runner fills in paths, reducer count,
	// and memory settings.
	Job engine.Job
}

// LineReader yields each newline-terminated record (without the newline).
func LineReader(block []byte, yield func(rec []byte)) {
	rest := block
	for {
		line, r, ok := textfmt.NextLine(rest)
		if !ok {
			return
		}
		rest = r
		if len(line) > 0 {
			yield(line)
		}
	}
}

// BinaryClickReader yields each framed binary click record.
func BinaryClickReader(block []byte, yield func(rec []byte)) {
	off := 0
	for off < len(block) {
		_, n := textfmt.ParseClickBinary(block[off:])
		if n == 0 {
			return
		}
		yield(block[off : off+n])
		off += n
	}
}

// Reference evaluates the workload's semantics directly — map every record,
// group by key, reduce each group — with no partitioning, sorting, spilling,
// or merging in the way. Engines must reproduce exactly this output.
func Reference(w *Workload, blocks [][]byte) map[string]string {
	groups := make(map[string][][]byte)
	var order []string
	emit := func(key, val []byte) {
		k := string(key)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], append([]byte(nil), val...))
	}
	for _, b := range blocks {
		w.Job.Reader(b, func(rec []byte) { w.Job.Map(rec, emit) })
	}
	out := make(map[string]string, len(groups))
	for _, k := range order {
		w.Job.Reduce([]byte(k), groups[k], func(key, val []byte) {
			out[string(key)] = string(val)
		})
	}
	return out
}

// sumValues folds ASCII decimal values — the shared body of the counting
// combiners and reducers.
func sumValues(vals [][]byte) uint64 {
	var total uint64
	for _, v := range vals {
		total += parseUint(v)
	}
	return total
}

func parseUint(b []byte) uint64 {
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}

func appendUint(dst []byte, n uint64) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, tmp[i:]...)
}

// splitFixed flattens multi-record values (combiner outputs) into single
// fixed-width units, for postings handling.
func splitFixed(vals [][]byte, width int, f func(unit []byte)) {
	for _, v := range vals {
		for off := 0; off+width <= len(v); off += width {
			f(v[off : off+width])
		}
	}
}
