package workloads

import (
	"bytes"
	"encoding/binary"

	"onepass/internal/engine"
	"onepass/internal/kv"
)

// The counting, inverted-index, and top-k workloads declare their reduces
// as monoids (kv.Monoid): the element space is the map-output value
// encoding itself, Combine folds two elements into one, and a finished
// fold is byte-identical to running the workload's Reduce over the same
// value multiset. That single declaration gives every engine map-side
// combining and gives the hash and resident engines associative state
// merging — no per-engine Combine/Agg wiring. CountAgg and PostingsAgg
// below remain as standalone Aggregator implementations (the hash engines'
// explicit contract, exercised directly by the core tests).

// CountMonoid is the counting workloads' monoid: elements are ASCII
// decimal counts, Combine is addition, the identity is "0". Commutative.
type CountMonoid struct{}

var countZero = []byte{'0'}

// Identity returns the ASCII zero count.
func (CountMonoid) Identity() []byte { return countZero }

// Combine adds two ASCII counts, reusing a's storage.
func (CountMonoid) Combine(a, b []byte) []byte {
	n := parseUint(a) + parseUint(b)
	return appendUint(a[:0], n)
}

// Commutative declares the commutativity law (addition commutes).
func (CountMonoid) Commutative() {}

// PostingsMonoid is the inverted-index monoid: elements are canonically
// sorted flat arrays of fixed-width postings, Combine is a sorted merge,
// the identity is the empty list. A single posting (what the map emits) is
// trivially sorted, so every fold stays inside the element space and the
// finished fold equals the canonical sorted list reducePostings produces.
// Commutative: equal postings are byte-identical, so merge order cannot
// show in the output.
type PostingsMonoid struct{}

// Identity returns the empty posting list.
func (PostingsMonoid) Identity() []byte { return nil }

// Combine merges two sorted posting lists into one sorted list, reusing
// a's storage: postings emitted in document order hit the O(1) append fast
// path, and the general case merges b into a from the back, so a fold over
// a group allocates only through append growth instead of one fresh buffer
// per step.
func (PostingsMonoid) Combine(a, b []byte) []byte {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 || bytes.Compare(a[len(a)-postingWidth:], b[:postingWidth]) <= 0 {
		return append(a, b...)
	}
	i := len(a) // unmerged tail of the original a
	a = append(a, b...)
	j, w := len(b), len(a) // unmerged tail of b; write cursor
	for i > 0 && j > 0 {
		// The write cursor always trails the merged region (w = i+j > i),
		// so copying a's own postings upward never clobbers unread ones.
		if bytes.Compare(a[i-postingWidth:i], b[j-postingWidth:j]) > 0 {
			copy(a[w-postingWidth:w], a[i-postingWidth:i])
			i -= postingWidth
		} else {
			copy(a[w-postingWidth:w], b[j-postingWidth:j])
			j -= postingWidth
		}
		w -= postingWidth
	}
	copy(a[i:w], b[:j]) // leftovers of b are the smallest; a's are in place
	return a
}

// Commutative declares the commutativity law (sorted multiset union).
func (PostingsMonoid) Commutative() {}

// TopKMonoid is the top-k monoid: elements are canonical bounded top-k
// lists in the encodeTop framing ("count name\n", count descending, ties
// by name), Combine merges two lists and re-truncates to K, the identity
// is the empty list. Truncated top-k selection over a total order is
// associative and commutative, which is exactly why partial top-k states
// are mergeable (§IV's open question).
type TopKMonoid struct{ K int }

// Identity returns the empty candidate list.
func (TopKMonoid) Identity() []byte { return nil }

// Combine merges two canonical lists, keeping the K largest.
func (m TopKMonoid) Combine(a, b []byte) []byte {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	return encodeTop(mergeTop(m.K, decodeTop(a), decodeTop(b)))
}

// Commutative declares the commutativity law.
func (TopKMonoid) Commutative() {}

// Monoids returns every monoid the workloads declare, labeled, for the
// law-checking property tests and the checker's monoid axis.
func Monoids() map[string]kv.Monoid {
	return map[string]kv.Monoid{
		"count":    CountMonoid{},
		"postings": PostingsMonoid{},
		"top-k":    TopKMonoid{K: 5},
	}
}

// CountAgg is the incremental aggregator for the counting workloads: an
// 8-byte running sum. Its Final output matches sumReduce exactly, so hash
// engines and sort-merge engines produce identical results.
type CountAgg struct{}

// Init parses the first ASCII value into a binary counter state.
func (CountAgg) Init(val []byte) []byte {
	var st [8]byte
	binary.LittleEndian.PutUint64(st[:], parseUint(val))
	return st[:]
}

// Update folds one more ASCII value.
func (CountAgg) Update(state, val []byte) []byte {
	binary.LittleEndian.PutUint64(state, binary.LittleEndian.Uint64(state)+parseUint(val))
	return state
}

// Merge adds two partial counts.
func (CountAgg) Merge(a, b []byte) []byte {
	binary.LittleEndian.PutUint64(a, binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
	return a
}

// Final emits the ASCII total.
func (CountAgg) Final(key, state []byte, emit engine.Emit) {
	emit(key, appendUint(nil, binary.LittleEndian.Uint64(state)))
}

// CountState reads a counting state value (exported for threshold
// predicates like Job.EmitWhen): the ASCII element of CountMonoid — what
// the hash engines hold for the monoid-declared counting workloads — or
// CountAgg's 8-byte binary state. The two are distinguishable: a binary
// state is exactly 8 bytes and, for any count reachable in practice, has
// high-order bytes outside the ASCII digit range.
func CountState(state []byte) uint64 {
	if len(state) == 8 {
		for _, c := range state {
			if c < '0' || c > '9' {
				return binary.LittleEndian.Uint64(state)
			}
		}
	}
	return parseUint(state)
}

// PostingsAgg is the incremental aggregator for inverted indexing: the
// state is the concatenation of fixed-width postings, sorted canonically at
// Final, matching reducePostings exactly.
type PostingsAgg struct{}

// Init starts the state from the first posting batch.
func (PostingsAgg) Init(val []byte) []byte {
	return append([]byte(nil), val...)
}

// Update appends more postings.
func (PostingsAgg) Update(state, val []byte) []byte {
	return append(state, val...)
}

// Merge concatenates two partial posting lists.
func (PostingsAgg) Merge(a, b []byte) []byte {
	return append(a, b...)
}

// Final emits the canonical sorted list.
func (PostingsAgg) Final(key, state []byte, emit engine.Emit) {
	emit(key, sortPostings(state))
}
