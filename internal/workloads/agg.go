package workloads

import (
	"encoding/binary"

	"onepass/internal/engine"
)

// CountAgg is the incremental aggregator for the counting workloads: an
// 8-byte running sum. Its Final output matches sumReduce exactly, so hash
// engines and sort-merge engines produce identical results.
type CountAgg struct{}

// Init parses the first ASCII value into a binary counter state.
func (CountAgg) Init(val []byte) []byte {
	var st [8]byte
	binary.LittleEndian.PutUint64(st[:], parseUint(val))
	return st[:]
}

// Update folds one more ASCII value.
func (CountAgg) Update(state, val []byte) []byte {
	binary.LittleEndian.PutUint64(state, binary.LittleEndian.Uint64(state)+parseUint(val))
	return state
}

// Merge adds two partial counts.
func (CountAgg) Merge(a, b []byte) []byte {
	binary.LittleEndian.PutUint64(a, binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
	return a
}

// Final emits the ASCII total.
func (CountAgg) Final(key, state []byte, emit engine.Emit) {
	emit(key, appendUint(nil, binary.LittleEndian.Uint64(state)))
}

// CountState reads a CountAgg state value (exported for threshold
// predicates like Job.EmitWhen).
func CountState(state []byte) uint64 { return binary.LittleEndian.Uint64(state) }

// PostingsAgg is the incremental aggregator for inverted indexing: the
// state is the concatenation of fixed-width postings, sorted canonically at
// Final, matching reducePostings exactly.
type PostingsAgg struct{}

// Init starts the state from the first posting batch.
func (PostingsAgg) Init(val []byte) []byte {
	return append([]byte(nil), val...)
}

// Update appends more postings.
func (PostingsAgg) Update(state, val []byte) []byte {
	return append(state, val...)
}

// Merge concatenates two partial posting lists.
func (PostingsAgg) Merge(a, b []byte) []byte {
	return append(a, b...)
}

// Final emits the canonical sorted list.
func (PostingsAgg) Final(key, state []byte, emit engine.Emit) {
	emit(key, sortPostings(state))
}
