package profile_test

import (
	"bytes"
	"testing"

	"onepass"
	"onepass/internal/profile"
	"onepass/internal/sim"
)

func profCfg(e onepass.Engine, workers int) onepass.Config {
	cfg := onepass.DefaultConfig()
	cfg.Engine = e
	cfg.Nodes = 4
	cfg.CoresPerNode = 2
	cfg.BlockSize = 64 << 10
	cfg.Reducers = 4
	cfg.Audit = true
	cfg.Parallelism = workers
	return cfg
}

func clicks() onepass.ClickConfig {
	c := onepass.DefaultClickConfig()
	c.Users = 300
	c.URLs = 150
	return c
}

// runProfile executes one traced run and computes its profile.
func runProfile(t *testing.T, e onepass.Engine, workers int) *onepass.RunProfile {
	t.Helper()
	cfg := profCfg(e, workers)
	tl := onepass.NewTraceLog()
	cfg.Trace = tl
	res, err := onepass.RunWorkload(cfg, onepass.Sessionization(clicks()), 256<<10)
	if err != nil {
		t.Fatalf("%v: run: %v", e, err)
	}
	rp, err := onepass.ComputeProfile(tl, res)
	if err != nil {
		t.Fatalf("%v: profile: %v", e, err)
	}
	return rp
}

// TestProfileInvariantsAllEngines pins the analyzer's arithmetic contracts
// on every engine: attribution tiles the makespan exactly, the critical
// path is contiguous over [0, makespan] and sums to it, and per-node
// utilization tiles the makespan per node. Compute itself asserts all of
// this and errors; here we re-verify from the outside so a silent analyzer
// regression cannot weaken the claim.
func TestProfileInvariantsAllEngines(t *testing.T) {
	for _, e := range onepass.Engines() {
		rp := runProfile(t, e, 0)
		var attrSum sim.Duration
		for _, s := range rp.Attribution {
			if s.Time < 0 {
				t.Errorf("%v: negative attribution %s=%s", e, s.Cause, s.Time)
			}
			attrSum += s.Time
		}
		if attrSum != rp.Makespan {
			t.Errorf("%v: attribution sums to %s, makespan %s", e, attrSum, rp.Makespan)
		}
		var pathSum sim.Duration
		for i, seg := range rp.CriticalPath {
			pathSum += seg.Duration()
			if i > 0 && seg.Start != rp.CriticalPath[i-1].End {
				t.Errorf("%v: critical path disconnected at segment %d", e, i)
			}
		}
		if len(rp.CriticalPath) == 0 || rp.CriticalPath[0].Start != 0 {
			t.Errorf("%v: critical path does not start at 0", e)
		}
		if pathSum != rp.Makespan {
			t.Errorf("%v: critical path sums to %s, makespan %s", e, pathSum, rp.Makespan)
		}
		for _, n := range rp.Nodes {
			if n.Busy+n.Iowait+n.Idle != rp.Makespan {
				t.Errorf("%v: node %d utilization sums to %s, makespan %s",
					e, n.Node, n.Busy+n.Iowait+n.Idle, rp.Makespan)
			}
		}
		if rp.Shuffle.Transfers == 0 || rp.Shuffle.TotalBytes == 0 {
			t.Errorf("%v: no shuffle transfers profiled", e)
		}
		if len(rp.Phases) == 0 {
			t.Errorf("%v: no phase statistics", e)
		}
		// Every engine moves real data: cpu must own a nonzero share, and
		// the path must include map work.
		if rp.Attribution[0].Cause != "cpu" || rp.Attribution[0].Time == 0 {
			t.Errorf("%v: cpu attribution missing or zero: %+v", e, rp.Attribution[0])
		}
		foundMap := false
		for _, ks := range rp.PathComposition {
			if ks.Kind == "map" && ks.Time > 0 {
				foundMap = true
			}
		}
		if !foundMap {
			t.Errorf("%v: critical path has no map time: %+v", e, rp.PathComposition)
		}
	}
}

// TestProfileByteIdenticalAcrossParallelism extends the PR 6 determinism
// oracle to profiles: the JSON bytes of a run's profile must be identical
// whether the run executed serially or on an intra-run worker pool of width
// 1 or 4, for every engine.
func TestProfileByteIdenticalAcrossParallelism(t *testing.T) {
	for _, e := range onepass.Engines() {
		base, err := runProfile(t, e, 0).MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, err := runProfile(t, e, workers).MarshalIndentJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(base, got) {
				t.Errorf("%v: profile at parallelism %d differs from serial", e, workers)
			}
		}
	}
}

// TestProfileSpanDAGUnderFaults is the bugfix-sweep regression: every
// engine must emit a structurally clean span DAG even through fault
// recovery, with re-executed map attempts visible as spans (attempt >= 1)
// rather than invisible holes in the critical path.
func TestProfileSpanDAGUnderFaults(t *testing.T) {
	for _, e := range onepass.Engines() {
		cfg := profCfg(e, 0)
		sched, err := onepass.ParseFaults("fail@0.02s:n1")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = sched
		tl := onepass.NewTraceLog()
		cfg.Trace = tl
		// 32 blocks so node 1 has completed map outputs to lose when it dies.
		res, err := onepass.RunWorkload(cfg, onepass.Sessionization(clicks()), 32*64<<10)
		if err != nil {
			t.Fatalf("%v: faulted run: %v", e, err)
		}
		if res.Counters.Get("tasks.reexecuted") == 0 {
			t.Fatalf("%v: fault schedule did not trigger re-execution — test is vacuous", e)
		}
		if err := profile.ValidateSpans(tl); err != nil {
			t.Errorf("%v: faulted trace has span defects:\n%v", e, err)
			continue
		}
		if _, err := onepass.ComputeProfile(tl, res); err != nil {
			t.Errorf("%v: faulted profile: %v", e, err)
			continue
		}
		spans, _ := profile.ExtractSpans(tl.Events())
		recovered := 0
		for _, sp := range spans {
			if !sp.Phase && sp.Kind == "map" && sp.Attempt >= 1 {
				recovered++
			}
		}
		if recovered == 0 {
			t.Errorf("%v: map tasks re-executed but no recovery attempt spans in trace", e)
		}
	}
}
