// Package profile is the deterministic post-run analyzer: it consumes a
// run's trace log plus its Result and answers the paper's central question —
// where did the makespan go — with checkable arithmetic instead of
// eyeballing a Gantt chart.
//
// Three decompositions, each summing exactly to the makespan:
//
//   - cause attribution: every virtual nanosecond assigned to cpu, iowait,
//     disk-queue, network, barrier-wait, or scheduler-idle (integer tiling
//     over the sampled series, asserted to tile exactly);
//   - critical path: the chain of map→shuffle→merge→reduce spans (plus
//     explicit wait/startup/finalize gaps) that bounds the run, contiguous
//     over [0, makespan], with slack figures for every span not on it;
//   - per-node utilization: busy/iowait/idle per node, same tiling.
//
// Everything is a pure function of the trace and the sampled series, which
// are themselves byte-deterministic across intra-run parallelism widths — so
// profiles are golden-testable the same way traces are.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"

	"onepass/internal/engine"
	"onepass/internal/metrics"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// PhaseStats summarizes the duration distribution of one span population
// (all map tasks, all shuffle phases, ...) through a mergeable histogram.
type PhaseStats struct {
	// Scope is "task" or "phase"; Name is the span name within it.
	Scope string       `json:"scope"`
	Name  string       `json:"name"`
	Count int          `json:"count"`
	Total sim.Duration `json:"total"`
	// Skew is max/mean duration — 1.0 means perfectly even, the paper's
	// straggler signal when it grows.
	Skew float64 `json:"skew"`
	// Hist is the duration histogram (nanoseconds); quantiles are exact for
	// small counts and within 1/32 otherwise.
	Hist *metrics.Histogram `json:"hist"`
}

// SlackEntry is how much longer one task span could have run without
// extending the run: distance to the map barrier for maps, to the last task
// end for reduces. Zero slack means the span is on the critical path's
// binding frontier.
type SlackEntry struct {
	Kind    string       `json:"kind"`
	Node    int          `json:"node"`
	Task    int          `json:"task"`
	Attempt int          `json:"attempt,omitempty"`
	Slack   sim.Duration `json:"slack"`
}

// PartitionBytes is one reduce partition's shuffled volume.
type PartitionBytes struct {
	Partition int   `json:"partition"`
	Bytes     int64 `json:"bytes"`
}

// ShuffleStats summarizes shuffle volume and its balance across partitions.
type ShuffleStats struct {
	Transfers  int   `json:"transfers"`
	TotalBytes int64 `json:"totalBytes"`
	// Partitions lists per-partition bytes in partition order.
	Partitions []PartitionBytes `json:"partitions,omitempty"`
	// MaxPartition is the hottest partition; Imbalance is its bytes over
	// the mean (1.0 = perfectly balanced hash).
	MaxPartition int     `json:"maxPartition"`
	MaxBytes     int64   `json:"maxBytes"`
	Imbalance    float64 `json:"imbalance"`
}

// RunProfile is the analyzer's complete output. It serializes
// deterministically: fixed-order slices, no maps, histograms with sorted
// bucket encoding.
type RunProfile struct {
	Job      string       `json:"job"`
	Engine   string       `json:"engine"`
	Makespan sim.Duration `json:"makespan"`

	// Attribution assigns every nanosecond of the makespan to a cause;
	// times sum exactly to Makespan.
	Attribution []Share `json:"attribution"`

	// CriticalPath tiles [0, Makespan] with the binding chain;
	// PathComposition aggregates it by segment kind.
	CriticalPath    []Segment   `json:"criticalPath"`
	PathComposition []KindShare `json:"pathComposition"`

	// Phases holds duration/skew statistics per span population in fixed
	// order (map/reduce tasks, then shuffle/merge/reduce phases).
	Phases []PhaseStats `json:"phases"`

	// TopSlack lists the task spans with the most slack (descending) —
	// the spans that could tolerate the most slowdown for free.
	TopSlack []SlackEntry `json:"topSlack,omitempty"`

	Shuffle ShuffleStats `json:"shuffle"`

	// Nodes is the per-node busy/iowait/idle split; each sums to Makespan.
	Nodes []NodeUtil `json:"nodes"`
}

// MarshalIndentJSON renders the profile as stable indented JSON — the bytes
// golden files and the cross-parallelism identity tests compare.
func (rp *RunProfile) MarshalIndentJSON() ([]byte, error) {
	b, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// topSlackN is how many high-slack spans the profile retains.
const topSlackN = 5

// Compute analyzes one completed run. It fails loudly rather than producing
// a subtly wrong report: span defects (orphaned/unclosed/zero-length), an
// attribution that does not tile the makespan, or a disconnected critical
// path are all hard errors. The trace must cover a single job starting at
// virtual time zero (runjob and the experiment driver both run jobs on a
// fresh cluster, so this holds for every profiling entry point).
func Compute(log *trace.Log, res *engine.Result) (*RunProfile, error) {
	if log == nil || res == nil {
		return nil, fmt.Errorf("profile: need both a trace log and a result")
	}
	if res.Makespan <= 0 {
		return nil, fmt.Errorf("profile: non-positive makespan %s", res.Makespan)
	}
	spans, issues := ExtractSpans(log.Events())
	if len(issues) > 0 {
		msg := fmt.Sprintf("profile: trace has %d span defect(s):", len(issues))
		for _, is := range issues {
			msg += "\n  " + is
		}
		return nil, fmt.Errorf("%s", msg)
	}

	rp := &RunProfile{Job: res.Job, Engine: res.Engine, Makespan: res.Makespan}

	var err error
	if rp.Attribution, err = attribute(res, spans, res.Makespan); err != nil {
		return nil, err
	}
	if rp.CriticalPath, err = criticalPath(spans, res.Makespan); err != nil {
		return nil, err
	}
	rp.PathComposition = pathComposition(rp.CriticalPath, res.Makespan)
	rp.Phases = phaseStats(spans)
	rp.TopSlack = topSlack(spans)
	rp.Shuffle = shuffleStats(log.Events())
	if rp.Nodes, err = nodeUtilization(res.PerNode, res.Makespan); err != nil {
		return nil, err
	}
	return rp, nil
}

// phasePopulations is the fixed reporting order of span populations.
var phasePopulations = []struct {
	scope string
	phase bool
	name  string
}{
	{"task", false, engine.SpanMap},
	{"task", false, engine.SpanReduce},
	{"phase", true, engine.SpanShuffle},
	{"phase", true, engine.SpanMerge},
	{"phase", true, engine.SpanReduce},
}

func phaseStats(spans []Span) []PhaseStats {
	var out []PhaseStats
	for _, pop := range phasePopulations {
		h := metrics.NewHistogram()
		var total, max sim.Duration
		count := 0
		for _, sp := range spans {
			if sp.Phase != pop.phase || sp.Kind != pop.name {
				continue
			}
			d := sp.Duration()
			h.Record(int64(d))
			total += d
			if d > max {
				max = d
			}
			count++
		}
		if count == 0 {
			continue
		}
		skew := 0.0
		if total > 0 {
			skew = float64(max) / (float64(total) / float64(count))
		}
		out = append(out, PhaseStats{Scope: pop.scope, Name: pop.name,
			Count: count, Total: total, Skew: skew, Hist: h})
	}
	return out
}

func topSlack(spans []Span) []SlackEntry {
	var lastMapEnd, lastTaskEnd sim.Time
	for _, sp := range spans {
		if sp.Phase {
			continue
		}
		if sp.Kind == engine.SpanMap && sp.End > lastMapEnd {
			lastMapEnd = sp.End
		}
		if sp.End > lastTaskEnd {
			lastTaskEnd = sp.End
		}
	}
	var entries []SlackEntry
	for _, sp := range spans {
		if sp.Phase {
			continue
		}
		var slack sim.Duration
		switch sp.Kind {
		case engine.SpanMap:
			slack = lastMapEnd.Sub(sp.End)
		case engine.SpanReduce:
			slack = lastTaskEnd.Sub(sp.End)
		default:
			continue
		}
		entries = append(entries, SlackEntry{Kind: sp.Kind, Node: sp.Node,
			Task: sp.Task, Attempt: sp.Attempt, Slack: slack})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Slack != b.Slack {
			return a.Slack > b.Slack
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Node < b.Node
	})
	if len(entries) > topSlackN {
		entries = entries[:topSlackN]
	}
	return entries
}

// shuffleStats folds every shuffle-transfer instant into per-partition
// volumes. Pull transfers carry the partition as the event task; push
// transfers carry the destination reducer in the "reducer" argument.
func shuffleStats(events []trace.Event) ShuffleStats {
	perPart := make(map[int]int64)
	st := ShuffleStats{MaxPartition: -1}
	for _, ev := range events {
		if ev.Type != trace.ShuffleTransfer {
			continue
		}
		part := ev.Task
		var bytes int64
		for _, a := range ev.Args {
			switch a.Key {
			case "reducer":
				part = int(a.Num)
			case "bytes":
				bytes = int64(a.Num)
			}
		}
		st.Transfers++
		st.TotalBytes += bytes
		perPart[part] += bytes
	}
	if len(perPart) == 0 {
		return st
	}
	parts := make([]int, 0, len(perPart))
	for p := range perPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var sum int64
	for _, p := range parts {
		b := perPart[p]
		st.Partitions = append(st.Partitions, PartitionBytes{Partition: p, Bytes: b})
		sum += b
		if b > st.MaxBytes || (b == st.MaxBytes && st.MaxPartition < 0) {
			st.MaxBytes, st.MaxPartition = b, p
		}
	}
	if mean := float64(sum) / float64(len(parts)); mean > 0 {
		st.Imbalance = float64(st.MaxBytes) / mean
	}
	return st
}
