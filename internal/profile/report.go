package profile

import (
	"fmt"
	"strings"

	"onepass/internal/sim"
)

// Report renders the profile as a terminal-width text report: the
// attribution table, the critical path with its composition, per-population
// duration statistics, slack, shuffle balance, and the node utilization
// footer. Pure formatting over the deterministic profile, so the text is as
// golden-testable as the JSON.
func (rp *RunProfile) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run profile: %s / %s\n", rp.Job, rp.Engine)
	fmt.Fprintf(&b, "makespan: %s\n", rp.Makespan)

	b.WriteString("\nmakespan attribution (every nanosecond assigned to one cause):\n")
	for _, s := range rp.Attribution {
		fmt.Fprintf(&b, "  %-15s %12s  %5.1f%%\n", s.Cause, s.Time, 100*s.Share)
	}
	fmt.Fprintf(&b, "  %-15s %12s  %5.1f%%\n", "total", rp.Makespan, 100.0)

	fmt.Fprintf(&b, "\ncritical path (%d segments, contiguous over [0, %s]):\n",
		len(rp.CriticalPath), rp.Makespan)
	for _, s := range rp.CriticalPath {
		who := ""
		if s.Task >= 0 {
			who = fmt.Sprintf("n%d task %d", s.Node, s.Task)
			if s.Attempt > 0 {
				who += fmt.Sprintf(" attempt %d", s.Attempt)
			}
		}
		fmt.Fprintf(&b, "  %12s  %-8s %-18s %12s\n", s.Start, s.Kind, who, s.Duration())
	}
	b.WriteString("  composition:")
	for i, ks := range rp.PathComposition {
		if i > 0 {
			b.WriteString(" |")
		}
		fmt.Fprintf(&b, " %s %.1f%%", ks.Kind, 100*ks.Share)
	}
	b.WriteString("\n")

	if len(rp.Phases) > 0 {
		b.WriteString("\nspan statistics:\n")
		fmt.Fprintf(&b, "  %-14s %5s %12s %12s %12s %12s %12s %6s\n",
			"population", "count", "p50", "p95", "p99", "max", "total", "skew")
		for _, ps := range rp.Phases {
			fmt.Fprintf(&b, "  %-14s %5d %12s %12s %12s %12s %12s %6.2f\n",
				ps.Name+" "+ps.Scope, ps.Count,
				sim.Duration(ps.Hist.P50()), sim.Duration(ps.Hist.P95()),
				sim.Duration(ps.Hist.P99()), sim.Duration(ps.Hist.Max()),
				ps.Total, ps.Skew)
		}
	}

	if len(rp.TopSlack) > 0 {
		b.WriteString("\nmost slack (could slow down for free):\n")
		for _, se := range rp.TopSlack {
			fmt.Fprintf(&b, "  %-7s task %-4d n%-3d %12s\n", se.Kind, se.Task, se.Node, se.Slack)
		}
	}

	if rp.Shuffle.Transfers > 0 {
		fmt.Fprintf(&b, "\nshuffle: %d transfers, %s across %d partitions; imbalance max/mean %.2f (hot partition %d, %s)\n",
			rp.Shuffle.Transfers, fmtBytes(rp.Shuffle.TotalBytes), len(rp.Shuffle.Partitions),
			rp.Shuffle.Imbalance, rp.Shuffle.MaxPartition, fmtBytes(rp.Shuffle.MaxBytes))
	}

	b.WriteString("\n")
	b.WriteString(RenderNodeUtil(rp.Nodes, rp.Makespan))
	return b.String()
}

// NodeUtilReport renders just the node utilization footer — the Gantt view
// appends it so "was node n3 idle" is answerable without opening Perfetto.
func (rp *RunProfile) NodeUtilReport() string {
	return RenderNodeUtil(rp.Nodes, rp.Makespan)
}

// RenderNodeUtil renders the per-node busy/iowait/idle split — also the
// Gantt chart's utilization footer.
func RenderNodeUtil(nodes []NodeUtil, makespan sim.Duration) string {
	if len(nodes) == 0 || makespan <= 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("node utilization (busy / iowait / idle):\n")
	pct := func(d sim.Duration) float64 { return 100 * float64(d) / float64(makespan) }
	for _, n := range nodes {
		fmt.Fprintf(&b, "  n%-3d %5.1f%% / %5.1f%% / %5.1f%%\n",
			n.Node, pct(n.Busy), pct(n.Iowait), pct(n.Idle))
	}
	return b.String()
}

// fmtBytes renders a byte count with a binary-unit suffix, one decimal.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
