package profile

import (
	"fmt"
	"math"

	"onepass/internal/engine"
	"onepass/internal/sim"
)

// Cause is one attribution bucket the makespan decomposes into.
type Cause string

// The attribution taxonomy, in reporting order. Every virtual nanosecond of
// the run is assigned to exactly one cause, so the shares sum to the
// makespan exactly (integer arithmetic, asserted by Compute).
const (
	// CauseCPU is compute: the cluster-average fraction of cores busy.
	CauseCPU Cause = "cpu"
	// CauseIowait is cores idle while their own node's disk had requests
	// pending — the CPU/I-O overlap the paper's §III.A measures.
	CauseIowait Cause = "iowait"
	// CauseDisk is residual time in intervals where disk traffic moved but
	// cores were neither busy nor in iowait: queueing behind other tasks'
	// disk work.
	CauseDisk Cause = "disk-queue"
	// CauseNet is residual time in intervals with network transfer in
	// flight: shuffle data movement not overlapped with compute.
	CauseNet Cause = "network"
	// CauseBarrier is residual time while some reducer sat inside an open
	// shuffle phase with no resource moving: waiting on the map barrier.
	CauseBarrier Cause = "barrier-wait"
	// CauseIdle is everything else: scheduler gaps, startup, teardown.
	CauseIdle Cause = "scheduler-idle"
)

// Causes returns the attribution taxonomy in canonical reporting order.
func Causes() []Cause {
	return []Cause{CauseCPU, CauseIowait, CauseDisk, CauseNet, CauseBarrier, CauseIdle}
}

// Share is one cause's slice of the makespan.
type Share struct {
	Cause Cause        `json:"cause"`
	Time  sim.Duration `json:"time"`
	// Share is Time / makespan in [0,1].
	Share float64 `json:"share"`
}

// NodeUtil is one node's exact busy/iowait/idle split of the makespan
// (Busy + Iowait + Idle == makespan, same integer tiling as the cluster
// attribution).
type NodeUtil struct {
	Node   int          `json:"node"`
	Busy   sim.Duration `json:"busy"`
	Iowait sim.Duration `json:"iowait"`
	Idle   sim.Duration `json:"idle"`
}

// scaled converts one sampled fraction bucket to nanoseconds within that
// bucket: the TrackDelta probes normalize by 1/(cores·interval), so
// value·interval is the per-core-average busy time regardless of whether the
// bucket is the final partial one. Rounded to the nearest nanosecond and
// capped at the bucket width so float noise cannot over-tile.
func scaled(v float64, bucket, cap sim.Duration) sim.Duration {
	d := sim.Duration(math.Round(v * float64(bucket)))
	if d < 0 {
		d = 0
	}
	if d > cap {
		d = cap
	}
	return d
}

// attribute tiles [0, makespan) with the sampled series: per interval, CPU
// first, then iowait, then the residual classified by the dominant signal
// active in that interval (network > disk > barrier > idle). Integer
// nanoseconds throughout, so the six causes sum exactly to the makespan.
func attribute(res *engine.Result, spans []Span, makespan sim.Duration) ([]Share, error) {
	if res.CPUUtil == nil || res.Iowait == nil || res.BytesRead == nil ||
		res.BytesWritten == nil || res.NetBytes == nil {
		return nil, fmt.Errorf("profile: result is missing sampled series (run without a sampler?)")
	}
	w := res.CPUUtil.Bucket
	if w <= 0 {
		return nil, fmt.Errorf("profile: CPU series has non-positive bucket %d", w)
	}
	nb := int((makespan + w - 1) / w)

	// Which intervals had a shuffle phase open on some reducer: the barrier
	// signal for residual classification.
	barrier := make([]bool, nb)
	for _, sp := range spans {
		if !sp.Phase || sp.Kind != engine.SpanShuffle {
			continue
		}
		lo, hi := int(int64(sp.Start)/int64(w)), int(int64(sp.End-1)/int64(w))
		for i := lo; i <= hi && i < nb; i++ {
			if i >= 0 {
				barrier[i] = true
			}
		}
	}

	total := make(map[Cause]sim.Duration)
	for i := 0; i < nb; i++ {
		width := w
		if last := makespan - sim.Duration(i)*w; last < width {
			width = last
		}
		cpu := scaled(res.CPUUtil.At(i), w, width)
		iow := scaled(res.Iowait.At(i), w, width-cpu)
		residual := width - cpu - iow
		total[CauseCPU] += cpu
		total[CauseIowait] += iow
		if residual == 0 {
			continue
		}
		switch {
		case res.NetBytes.At(i) > 0:
			total[CauseNet] += residual
		case res.BytesRead.At(i) > 0 || res.BytesWritten.At(i) > 0:
			total[CauseDisk] += residual
		case barrier[i]:
			total[CauseBarrier] += residual
		default:
			total[CauseIdle] += residual
		}
	}

	shares := make([]Share, 0, len(Causes()))
	var sum sim.Duration
	for _, c := range Causes() {
		t := total[c]
		sum += t
		shares = append(shares, Share{Cause: c, Time: t, Share: float64(t) / float64(makespan)})
	}
	if sum != makespan {
		return nil, fmt.Errorf("profile: attribution sums to %s, makespan is %s", sum, makespan)
	}
	return shares, nil
}

// nodeUtilization splits each node's makespan into busy/iowait/idle with the
// same integer tiling as the cluster attribution.
func nodeUtilization(perNode []*engine.NodeSeries, makespan sim.Duration) ([]NodeUtil, error) {
	out := make([]NodeUtil, 0, len(perNode))
	for _, ns := range perNode {
		if ns.CPUUtil == nil || ns.Iowait == nil {
			return nil, fmt.Errorf("profile: node %d is missing per-node series", ns.Node)
		}
		w := ns.CPUUtil.Bucket
		if w <= 0 {
			return nil, fmt.Errorf("profile: node %d series has non-positive bucket", ns.Node)
		}
		nb := int((makespan + w - 1) / w)
		u := NodeUtil{Node: ns.Node}
		for i := 0; i < nb; i++ {
			width := w
			if last := makespan - sim.Duration(i)*w; last < width {
				width = last
			}
			busy := scaled(ns.CPUUtil.At(i), w, width)
			iow := scaled(ns.Iowait.At(i), w, width-busy)
			u.Busy += busy
			u.Iowait += iow
			u.Idle += width - busy - iow
		}
		if u.Busy+u.Iowait+u.Idle != makespan {
			return nil, fmt.Errorf("profile: node %d utilization sums to %s, makespan is %s",
				ns.Node, u.Busy+u.Iowait+u.Idle, makespan)
		}
		out = append(out, u)
	}
	return out, nil
}
