package profile

import (
	"onepass/internal/engine"
	"onepass/internal/metrics"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

// AttachCounterTracks attaches the standard Perfetto counter tracks to a
// traced run's log: the sampled cluster utilization and byte-flow series
// from the Result, plus in-flight map/reduce task counts derived from the
// span events themselves. Deterministic — both sources are byte-stable
// across intra-run parallelism widths — so traces with counters remain
// golden-testable.
func AttachCounterTracks(log *trace.Log, res *engine.Result) {
	if log == nil || res == nil {
		return
	}
	for _, s := range []struct {
		name   string
		series *metrics.Series
	}{
		{"cpu-util", res.CPUUtil},
		{"cpu-iowait", res.Iowait},
		{"disk-bytes-read", res.BytesRead},
		{"disk-bytes-written", res.BytesWritten},
		{"net-bytes", res.NetBytes},
	} {
		log.AddCounterTrack(seriesTrack(s.name, s.series))
	}
	log.AddCounterTrack(log.InFlightTrack("maps-in-flight", engine.SpanMap, false))
	log.AddCounterTrack(log.InFlightTrack("reduces-in-flight", engine.SpanReduce, false))
}

// seriesTrack converts a sampled series into a stepped counter track, one
// point per bucket at the bucket's start.
func seriesTrack(name string, s *metrics.Series) trace.CounterTrack {
	if s == nil {
		return trace.CounterTrack{}
	}
	t := trace.CounterTrack{Name: name, Unit: s.Unit}
	for i := 0; i < s.Len(); i++ {
		t.Points = append(t.Points, trace.CounterPoint{
			At: sim.Time(sim.Duration(i) * s.Bucket), Value: s.At(i)})
	}
	return t
}
