package profile

import (
	"fmt"
	"sort"

	"onepass/internal/engine"
	"onepass/internal/sim"
)

// Segment is one piece of the critical path. Segments are contiguous — each
// starts where the previous ends — and together cover [0, makespan] exactly,
// which is what makes "the critical path bounds the makespan" a checkable
// claim rather than a narrative.
type Segment struct {
	// Kind is what bounded the run during this interval: "map", "shuffle",
	// "merge", "reduce" (work on the binding task), "wait" (the binding task
	// existed but its predecessor had finished — scheduling/slot delay),
	// "startup" (before the first binding task started), or "finalize"
	// (after the last task ended, job-completion bookkeeping).
	Kind string `json:"kind"`
	// Node/Task/Attempt identify the binding span; -1/-1/0 for gaps.
	Node    int `json:"node"`
	Task    int `json:"task"`
	Attempt int `json:"attempt,omitempty"`

	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
}

// Duration returns the segment length.
func (s Segment) Duration() sim.Duration { return s.End.Sub(s.Start) }

// KindShare aggregates critical-path time by segment kind; the shares sum
// exactly to the makespan, mirroring the cause attribution.
type KindShare struct {
	Kind  string       `json:"kind"`
	Time  sim.Duration `json:"time"`
	Share float64      `json:"share"`
}

// pathKinds is the canonical composition order: the paper's
// map→shuffle→merge→reduce chain, then the gap kinds.
var pathKinds = []string{"map", "shuffle", "merge", "reduce", "wait", "startup", "finalize"}

// criticalPath walks backward from the last-ending task span to time zero,
// at every step asking "what was the run waiting on at this instant":
//
//   - inside the binding reduce task, its own phase spans refine the answer
//     (shuffle ingest, blocking merge passes, the final reduce scan);
//   - the reduce task binds back to the last-ending map attempt — the map
//     barrier — and from there each map binds to the attempt whose end
//     allowed its slot to take it (latest end ≤ its start);
//   - holes between spans become explicit "wait"/"startup"/"finalize"
//     segments instead of silently vanishing.
//
// The result is validated to be contiguous over [0, makespan]; any engine
// that breaks its span DAG (orphaned or unclosed spans) surfaces here as a
// hard error, not a subtly wrong report.
func criticalPath(spans []Span, makespan sim.Duration) ([]Segment, error) {
	var maps, reduces []Span
	phasesByTask := make(map[int][]Span) // reduce task -> its phase spans
	for _, sp := range spans {
		if sp.Phase {
			phasesByTask[sp.Task] = append(phasesByTask[sp.Task], sp)
			continue
		}
		switch sp.Kind {
		case engine.SpanMap:
			maps = append(maps, sp)
		case engine.SpanReduce:
			reduces = append(reduces, sp)
		}
	}
	if len(maps) == 0 && len(reduces) == 0 {
		return nil, fmt.Errorf("profile: trace has no task spans")
	}

	// The terminal span: latest end, preferring reduce over map on ties,
	// then lowest task/node/attempt — deterministic regardless of emission
	// interleaving.
	better := func(a, b Span) bool { // a beats b as terminal
		if a.End != b.End {
			return a.End > b.End
		}
		aRed, bRed := a.Kind == engine.SpanReduce, b.Kind == engine.SpanReduce
		if aRed != bRed {
			return aRed
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Attempt < b.Attempt
	}
	all := append(append([]Span(nil), maps...), reduces...)
	terminal := all[0]
	for _, sp := range all[1:] {
		if better(sp, terminal) {
			terminal = sp
		}
	}
	if sim.Duration(terminal.End) > makespan {
		return nil, fmt.Errorf("profile: span %s ends after makespan %s", terminal, makespan)
	}

	var lastMapEnd sim.Time
	for _, m := range maps {
		if m.End > lastMapEnd {
			lastMapEnd = m.End
		}
	}
	// The map attempt binding a given instant: latest end ≤ t (the attempt
	// whose completion released the constraint), deterministic tie-break.
	bindingMap := func(t sim.Time) (Span, bool) {
		var best Span
		found := false
		for _, m := range maps {
			if m.End > t {
				continue
			}
			if !found || better(m, best) {
				best, found = m, true
			}
		}
		return best, found
	}

	var segs []Segment
	emit := func(s Segment) {
		if s.End > s.Start {
			segs = append(segs, s)
		}
	}
	if makespan > sim.Duration(terminal.End) {
		emit(Segment{Kind: "finalize", Node: -1, Task: -1,
			Start: terminal.End, End: sim.Time(makespan)})
	}

	cur, cursor := terminal, terminal.End
	for {
		if cur.Kind == engine.SpanReduce {
			// The reduce task is binding on [bind, cursor]; before bind the
			// map barrier was the constraint.
			bind := lastMapEnd
			if bind < cur.Start {
				bind = cur.Start
			}
			if bind > cursor {
				bind = cursor
			}
			refineReduce(cur, phasesByTask[cur.Task], bind, cursor, emit)
			cursor = bind
			if m, ok := bindingMap(cursor); ok && m.End == cursor {
				cur = m // the map barrier: bound by the last-ending attempt
				continue
			}
			// Reduce started at or before every map's end (or there are no
			// maps): walk to whatever map attempt preceded its start.
			if m, ok := bindingMap(cur.Start); ok {
				emit(Segment{Kind: "wait", Node: -1, Task: -1, Start: m.End, End: cursor})
				cursor, cur = m.End, m
				continue
			}
			emit(Segment{Kind: "startup", Node: -1, Task: -1, Start: 0, End: cursor})
			break
		}
		// Map attempt: it is binding over its whole extent up to the cursor.
		start := cur.Start
		if start > cursor {
			return nil, fmt.Errorf("profile: map span %s starts after path cursor %s", cur, cursor)
		}
		emit(Segment{Kind: "map", Node: cur.Node, Task: cur.Task, Attempt: cur.Attempt,
			Start: start, End: cursor})
		cursor = start
		m, ok := bindingMap(cursor)
		if !ok {
			emit(Segment{Kind: "startup", Node: -1, Task: -1, Start: 0, End: cursor})
			break
		}
		emit(Segment{Kind: "wait", Node: -1, Task: -1, Start: m.End, End: cursor})
		cursor, cur = m.End, m
	}

	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	if err := validatePath(segs, makespan); err != nil {
		return nil, err
	}
	return segs, nil
}

// refineReduce splits the binding interval [lo, hi] of reduce task r by its
// phase spans: the innermost phase covering each instant labels it (merge
// passes nest inside shuffle ingest on pipelined engines), and instants
// outside any phase fall back to the task-level "reduce" label.
func refineReduce(r Span, phases []Span, lo, hi sim.Time, emit func(Segment)) {
	if hi <= lo {
		return
	}
	// Elementary interval boundaries.
	cuts := []sim.Time{lo, hi}
	for _, p := range phases {
		if p.End <= lo || p.Start >= hi {
			continue
		}
		if p.Start > lo {
			cuts = append(cuts, p.Start)
		}
		if p.End < hi {
			cuts = append(cuts, p.End)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	// Priority when phases overlap: merge (innermost, a blocking pass)
	// over the final reduce scan over shuffle ingest.
	prio := func(kind string) int {
		switch kind {
		case engine.SpanMerge:
			return 3
		case engine.SpanReduce:
			return 2
		case engine.SpanShuffle:
			return 1
		}
		return 0
	}
	var prev *Segment
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		kind, best := "reduce", 0
		for _, p := range phases {
			if p.Start <= a && p.End >= b && prio(p.Kind) > best {
				kind, best = p.Kind, prio(p.Kind)
			}
		}
		if prev != nil && prev.Kind == kind && prev.End == a {
			prev.End = b
			continue
		}
		if prev != nil {
			emit(*prev)
		}
		prev = &Segment{Kind: kind, Node: r.Node, Task: r.Task, Attempt: r.Attempt, Start: a, End: b}
	}
	if prev != nil {
		emit(*prev)
	}
}

// validatePath asserts the connectivity contract: segments tile [0,
// makespan] with no gaps, no overlaps, and durations summing exactly to the
// makespan.
func validatePath(segs []Segment, makespan sim.Duration) error {
	if len(segs) == 0 {
		return fmt.Errorf("profile: empty critical path")
	}
	if segs[0].Start != 0 {
		return fmt.Errorf("profile: critical path starts at %s, not 0", segs[0].Start)
	}
	var sum sim.Duration
	for i, s := range segs {
		if s.End <= s.Start {
			return fmt.Errorf("profile: empty path segment %s [%s, %s]", s.Kind, s.Start, s.End)
		}
		if i > 0 && s.Start != segs[i-1].End {
			return fmt.Errorf("profile: critical path disconnected: %s ends %s, %s starts %s",
				segs[i-1].Kind, segs[i-1].End, s.Kind, s.Start)
		}
		sum += s.Duration()
	}
	if last := segs[len(segs)-1].End; sim.Duration(last) != makespan {
		return fmt.Errorf("profile: critical path ends at %s, makespan is %s", last, makespan)
	}
	if sum != makespan {
		return fmt.Errorf("profile: critical path sums to %s, makespan is %s", sum, makespan)
	}
	return nil
}

// pathComposition aggregates segment time by kind in canonical order.
func pathComposition(segs []Segment, makespan sim.Duration) []KindShare {
	total := make(map[string]sim.Duration)
	for _, s := range segs {
		total[s.Kind] += s.Duration()
	}
	out := make([]KindShare, 0, len(pathKinds))
	for _, k := range pathKinds {
		if t, ok := total[k]; ok {
			out = append(out, KindShare{Kind: k, Time: t, Share: float64(t) / float64(makespan)})
		}
	}
	return out
}
