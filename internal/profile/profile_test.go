package profile

import (
	"strings"
	"testing"

	"onepass/internal/engine"
	"onepass/internal/metrics"
	"onepass/internal/sim"
	"onepass/internal/trace"
)

const ms = sim.Millisecond

func taskEv(t trace.Type, name string, node, task, attempt int, at sim.Duration) trace.Event {
	return trace.Event{At: sim.Time(at), Type: t, Name: name, Node: node, Task: task, Attempt: attempt}
}

// TestExtractSpansDefects pins the validator's three defect classes.
func TestExtractSpansDefects(t *testing.T) {
	log := trace.NewLog()
	// Clean map span.
	log.Emit(taskEv(trace.TaskStart, "map", 0, 0, 0, 1*ms))
	log.Emit(taskEv(trace.TaskFinish, "map", 0, 0, 0, 5*ms))
	// Orphaned end: finish without start.
	log.Emit(taskEv(trace.TaskFinish, "map", 0, 7, 0, 6*ms))
	// Zero-length span.
	log.Emit(taskEv(trace.PhaseStart, "shuffle", 1, 2, 0, 8*ms))
	log.Emit(taskEv(trace.PhaseEnd, "shuffle", 1, 2, 0, 8*ms))
	// Unclosed span.
	log.Emit(taskEv(trace.TaskStart, "reduce", 2, 3, 0, 9*ms))

	spans, issues := ExtractSpans(log.Events())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (clean map + zero-length shuffle)", len(spans))
	}
	if len(issues) != 3 {
		t.Fatalf("got %d issues, want 3: %v", len(issues), issues)
	}
	for i, want := range []string{"orphaned end", "zero-length span", "unclosed task span"} {
		if !strings.Contains(issues[i], want) {
			t.Errorf("issue %d = %q, want %q", i, issues[i], want)
		}
	}
	if err := ValidateSpans(log); err == nil {
		t.Error("ValidateSpans accepted a defective trace")
	}

	clean := trace.NewLog()
	clean.Emit(taskEv(trace.TaskStart, "map", 0, 0, 0, 1*ms))
	clean.Emit(taskEv(trace.TaskFinish, "map", 0, 0, 0, 5*ms))
	if err := ValidateSpans(clean); err != nil {
		t.Errorf("ValidateSpans rejected a clean trace: %v", err)
	}
}

// TestCriticalPathSyntheticChain hand-builds the canonical shape — two map
// waves on one slot feeding a reduce with shuffle/merge/reduce phases — and
// pins the exact segment sequence, including the slot-wait gap, startup,
// and finalize tail.
func TestCriticalPathSyntheticChain(t *testing.T) {
	mk := func(kind string, phase bool, node, task int, start, end sim.Duration) Span {
		return Span{Kind: kind, Phase: phase, Node: node, Task: task,
			Start: sim.Time(start), End: sim.Time(end)}
	}
	spans := []Span{
		// Map 0 runs [1,5]ms; map 1 waits for the slot, runs [6,12]ms.
		mk("map", false, 0, 0, 1*ms, 5*ms),
		mk("map", false, 0, 1, 6*ms, 12*ms),
		// Reduce 0 runs [2,20]ms: shuffle ingest to 13, merge to 16, final
		// reduce scan to 20.
		mk("reduce", false, 1, 0, 2*ms, 20*ms),
		mk("shuffle", true, 1, 0, 2*ms, 13*ms),
		mk("merge", true, 1, 0, 13*ms, 16*ms),
		mk("reduce", true, 1, 0, 16*ms, 20*ms),
	}
	makespan := 21 * ms // 1ms of job-completion bookkeeping after the reduce

	segs, err := criticalPath(spans, makespan)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind     string
		start    sim.Duration
		duration sim.Duration
	}{
		{"startup", 0, 1 * ms},
		{"map", 1 * ms, 4 * ms},  // map 0
		{"wait", 5 * ms, 1 * ms}, // slot gap before map 1
		{"map", 6 * ms, 6 * ms},  // map 1 — the barrier-binding attempt
		{"shuffle", 12 * ms, 1 * ms},
		{"merge", 13 * ms, 3 * ms},
		{"reduce", 16 * ms, 4 * ms},
		{"finalize", 20 * ms, 1 * ms},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(segs), len(want), segs)
	}
	for i, w := range want {
		if segs[i].Kind != w.kind || segs[i].Start != sim.Time(w.start) || segs[i].Duration() != w.duration {
			t.Errorf("segment %d = %s [%s +%s], want %s [%s +%s]",
				i, segs[i].Kind, segs[i].Start, segs[i].Duration(), w.kind, sim.Time(w.start), w.duration)
		}
	}

	comp := pathComposition(segs, makespan)
	var sum sim.Duration
	for _, ks := range comp {
		sum += ks.Time
	}
	if sum != makespan {
		t.Errorf("composition sums to %s, want %s", sum, makespan)
	}
}

// TestCriticalPathRejectsDisconnectedDAG: a span ending after the declared
// makespan must be a hard error, not a silently clipped report.
func TestCriticalPathRejectsDisconnectedDAG(t *testing.T) {
	spans := []Span{
		{Kind: "map", Node: 0, Task: 0, Start: sim.Time(1 * ms), End: sim.Time(30 * ms)},
	}
	if _, err := criticalPath(spans, 20*ms); err == nil {
		t.Error("span past makespan accepted")
	}
	if _, err := criticalPath(nil, 20*ms); err == nil {
		t.Error("empty span set accepted")
	}
}

// TestAttributionTilesExactly builds synthetic series with awkward
// fractions and a non-aligned makespan, and requires the six causes to sum
// to the makespan exactly, with the documented residual precedence.
func TestAttributionTilesExactly(t *testing.T) {
	bucket := 10 * ms
	mkSeries := func(name string, vals ...float64) *metrics.Series {
		s := metrics.NewSeries(name, "x", bucket)
		for i, v := range vals {
			s.Set(sim.Time(sim.Duration(i)*bucket), v)
		}
		return s
	}
	res := &engine.Result{
		// 3.5 buckets: the last is partial.
		Makespan: 35 * ms,
		// Bucket 0: pure cpu 1/3 (non-representable fraction). Bucket 1:
		// cpu+iowait filling the bucket. Bucket 2: nothing but network
		// bytes. Bucket 3 (partial): idle.
		CPUUtil:      mkSeries("cpu", 1.0/3, 0.25, 0, 0),
		Iowait:       mkSeries("iowait", 0, 0.75, 0, 0),
		BytesRead:    mkSeries("br", 100, 0, 0, 0),
		BytesWritten: mkSeries("bw", 0, 0, 0, 0),
		NetBytes:     mkSeries("net", 0, 0, 800, 0),
	}
	shares, err := attribute(res, nil, res.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	total := make(map[Cause]sim.Duration)
	var sum sim.Duration
	for _, s := range shares {
		total[s.Cause] = s.Time
		sum += s.Time
	}
	if sum != res.Makespan {
		t.Fatalf("attribution sums to %s, want %s", sum, res.Makespan)
	}
	// Bucket 0 residual goes to disk (bytes read); bucket 2 entirely to
	// network; bucket 3 (partial, 5ms) to scheduler-idle.
	if total[CauseNet] != 10*ms {
		t.Errorf("network = %s, want 10ms", total[CauseNet])
	}
	if total[CauseIdle] != 5*ms {
		t.Errorf("scheduler-idle = %s, want 5ms", total[CauseIdle])
	}
	if total[CauseIowait] != 15*ms/2 {
		t.Errorf("iowait = %s, want 7.5ms (0.75 of bucket 1)", total[CauseIowait])
	}
	if total[CauseDisk] == 0 {
		t.Error("disk-queue got nothing despite bucket-0 residual with disk bytes")
	}
}

// TestAttributionBarrierClassification: residual time under an open shuffle
// phase with no disk or network signal classifies as barrier-wait.
func TestAttributionBarrierClassification(t *testing.T) {
	bucket := 10 * ms
	flat := func(name string, vals ...float64) *metrics.Series {
		s := metrics.NewSeries(name, "x", bucket)
		for i, v := range vals {
			s.Set(sim.Time(sim.Duration(i)*bucket), v)
		}
		return s
	}
	res := &engine.Result{
		Makespan:     20 * ms,
		CPUUtil:      flat("cpu", 0, 0),
		Iowait:       flat("iowait", 0, 0),
		BytesRead:    flat("br", 0, 0),
		BytesWritten: flat("bw", 0, 0),
		NetBytes:     flat("net", 0, 0),
	}
	spans := []Span{
		// Shuffle phase open across bucket 0 only.
		{Kind: engine.SpanShuffle, Phase: true, Node: 0, Task: 0,
			Start: 0, End: sim.Time(10 * ms)},
	}
	shares, err := attribute(res, spans, res.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	total := make(map[Cause]sim.Duration)
	for _, s := range shares {
		total[s.Cause] = s.Time
	}
	if total[CauseBarrier] != 10*ms {
		t.Errorf("barrier-wait = %s, want 10ms", total[CauseBarrier])
	}
	if total[CauseIdle] != 10*ms {
		t.Errorf("scheduler-idle = %s, want 10ms", total[CauseIdle])
	}
}

// TestReportRendersEveryBlock sanity-checks the text renderer over a real
// synthetic profile structure.
func TestReportRendersEveryBlock(t *testing.T) {
	h := metrics.NewHistogram()
	h.Record(int64(5 * ms))
	rp := &RunProfile{
		Job: "sessionization", Engine: "hadoop", Makespan: 21 * ms,
		Attribution: []Share{{Cause: CauseCPU, Time: 21 * ms, Share: 1}},
		CriticalPath: []Segment{
			{Kind: "map", Node: 0, Task: 1, Start: 0, End: sim.Time(21 * ms)},
		},
		PathComposition: []KindShare{{Kind: "map", Time: 21 * ms, Share: 1}},
		Phases: []PhaseStats{{Scope: "task", Name: "map", Count: 1,
			Total: 5 * ms, Skew: 1, Hist: h}},
		TopSlack: []SlackEntry{{Kind: "map", Node: 0, Task: 1, Slack: 2 * ms}},
		Shuffle: ShuffleStats{Transfers: 4, TotalBytes: 4096, MaxPartition: 2,
			MaxBytes: 2048, Imbalance: 2.0,
			Partitions: []PartitionBytes{{Partition: 2, Bytes: 2048}}},
		Nodes: []NodeUtil{{Node: 0, Busy: 21 * ms}},
	}
	out := rp.Report()
	for _, want := range []string{
		"run profile: sessionization / hadoop",
		"makespan attribution",
		"critical path",
		"composition:",
		"span statistics",
		"most slack",
		"shuffle: 4 transfers",
		"node utilization",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
