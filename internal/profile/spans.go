package profile

import (
	"fmt"
	"sort"

	"onepass/internal/sim"
	"onepass/internal/trace"
)

// Span is one closed task or phase span reconstructed from a trace log.
// Task spans ("map", "reduce") bracket whole tasks; phase spans ("shuffle",
// "merge", "reduce") bracket the stages inside a reduce task.
type Span struct {
	// Kind is the span name: "map"/"reduce" for task spans, the phase name
	// for phase spans.
	Kind string `json:"kind"`
	// Phase distinguishes phase spans from task spans (the trace reuses the
	// name "reduce" for both the reduce task and its final scan phase).
	Phase   bool `json:"phase,omitempty"`
	Node    int  `json:"node"`
	Task    int  `json:"task"`
	Attempt int  `json:"attempt,omitempty"`

	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
}

// Duration returns the span length.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

func (s Span) String() string {
	scope := "task"
	if s.Phase {
		scope = "phase"
	}
	return fmt.Sprintf("%s %s n%d task %d attempt %d [%s, %s]",
		s.Kind, scope, s.Node, s.Task, s.Attempt, s.Start, s.End)
}

// spanKey identifies one logical span for Start/End pairing. Task spans pair
// on (name, task, attempt) — re-executed attempts carry a distinct attempt —
// and phase spans on (name, node, task): every engine emits phase spans from
// the single process owning that reducer.
type spanKey struct {
	phase   bool
	name    string
	node    int
	task    int
	attempt int
}

func keyOf(ev trace.Event, phase bool) spanKey {
	return spanKey{phase: phase, name: ev.Name, node: ev.Node, task: ev.Task, attempt: ev.Attempt}
}

// ExtractSpans reconstructs the closed spans from a trace log and reports
// every structural defect it finds: end events with no matching start,
// start events never closed, and zero-length spans. A run whose engines
// close every span they open produces an empty issue list — the invariant
// the bugfix-sweep regression test pins per engine.
func ExtractSpans(events []trace.Event) (spans []Span, issues []string) {
	open := make(map[spanKey][]sim.Time)
	for _, ev := range events {
		isSpan, opens := ev.Type.Span()
		if !isSpan {
			continue
		}
		phase := ev.Type == trace.PhaseStart || ev.Type == trace.PhaseEnd
		k := keyOf(ev, phase)
		if opens {
			open[k] = append(open[k], ev.At)
			continue
		}
		stack := open[k]
		if len(stack) == 0 {
			issues = append(issues, fmt.Sprintf("orphaned end: %s %q n%d task %d attempt %d at %s",
				ev.Type, ev.Name, ev.Node, ev.Task, ev.Attempt, ev.At))
			continue
		}
		start := stack[len(stack)-1]
		open[k] = stack[:len(stack)-1]
		sp := Span{Kind: ev.Name, Phase: phase, Node: ev.Node, Task: ev.Task,
			Attempt: ev.Attempt, Start: start, End: ev.At}
		if sp.End == sp.Start {
			issues = append(issues, "zero-length span: "+sp.String())
		}
		if sp.End < sp.Start {
			issues = append(issues, "negative span: "+sp.String())
		}
		spans = append(spans, sp)
	}
	// Unclosed spans, in deterministic key order.
	var leftover []spanKey
	for k, stack := range open {
		for range stack {
			leftover = append(leftover, k)
		}
	}
	sort.Slice(leftover, func(i, j int) bool {
		a, b := leftover[i], leftover[j]
		if a.phase != b.phase {
			return !a.phase
		}
		if a.name != b.name {
			return a.name < b.name
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.task != b.task {
			return a.task < b.task
		}
		return a.attempt < b.attempt
	})
	for _, k := range leftover {
		scope := "task"
		if k.phase {
			scope = "phase"
		}
		issues = append(issues, fmt.Sprintf("unclosed %s span: %q n%d task %d attempt %d",
			scope, k.name, k.node, k.task, k.attempt))
	}
	// Spans close in event order; sort by (Start, End, kind, ids) so callers
	// see a deterministic timeline-ordered view.
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Phase != b.Phase {
			return !a.Phase
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Attempt < b.Attempt
	})
	return spans, issues
}

// ValidateSpans checks that a trace's span structure supports a connected
// critical path: every start has an end, no orphans, no zero-length spans.
// It returns nil on a clean trace and an error listing every defect
// otherwise — the assertion the per-engine regression tests run.
func ValidateSpans(log *trace.Log) error {
	_, issues := ExtractSpans(log.Events())
	if len(issues) == 0 {
		return nil
	}
	msg := fmt.Sprintf("profile: %d span defect(s):", len(issues))
	for _, is := range issues {
		msg += "\n  " + is
	}
	return fmt.Errorf("%s", msg)
}
