package onepass

import (
	"strings"
	"testing"
)

func tinyGraph() GraphConfig {
	cfg := DefaultGraphConfig()
	cfg.Nodes = 400
	cfg.AvgDegree = 6
	return cfg
}

// referencePageRank runs the same fixed-point power iteration directly over
// the generated adjacency lists.
func referencePageRank(t *testing.T, cfg GraphConfig, blockSize int64, iters int) map[string]uint64 {
	t.Helper()
	adj := map[string][]string{}
	total := cfg.TotalBytes(blockSize)
	for b := 0; int64(b)*blockSize < total; b++ {
		for _, line := range strings.Split(string(cfg.Block(b, blockSize)), "\n") {
			if line == "" {
				continue
			}
			parts := strings.Split(line, " ")
			adj[parts[0]] = parts[1:]
		}
	}
	ranks := map[string]uint64{}
	for v := range adj {
		ranks[v] = RankScale / uint64(cfg.Nodes)
	}
	for i := 0; i < iters; i++ {
		contrib := map[string]uint64{}
		for v, targets := range adj {
			if len(targets) == 0 {
				continue
			}
			c := ranks[v] * 85 / 100 / uint64(len(targets))
			for _, tgt := range targets {
				contrib[tgt] += c
			}
		}
		next := map[string]uint64{}
		teleport := uint64(RankScale) * 15 / 100 / uint64(cfg.Nodes)
		for v := range adj {
			next[v] = teleport + contrib[v]
		}
		ranks = next
	}
	return ranks
}

func runPageRank(t *testing.T, eng Engine, cfg GraphConfig, blockSize int64, iters int) map[string]string {
	t.Helper()
	ccfg := tinyConfig(eng)
	ccfg.BlockSize = blockSize
	cl := NewCluster(ccfg)
	w := PageRankInit(cfg)
	if err := cl.Register(Dataset{Path: "graph", Size: cfg.TotalBytes(blockSize), Gen: w.Gen}); err != nil {
		t.Fatal(err)
	}
	job := w.Job
	job.InputPath = "graph"
	job.OutputPath = "pr/0"
	job.RetainOutput = true
	if _, err := cl.RunJob(job); err != nil {
		t.Fatal(err)
	}
	var last *Result
	for i := 1; i <= iters; i++ {
		iter := PageRankIter(cfg.Nodes)
		iter.InputPath = "pr/" + string(rune('0'+i-1))
		iter.OutputPath = "pr/" + string(rune('0'+i))
		iter.RetainOutput = true
		res, err := cl.RunJob(iter)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	return last.Output
}

// TestPageRankMatchesReferenceAcrossEngines checks bit-exact rank equality
// (fixed-point arithmetic commutes) for every engine after 3 iterations.
func TestPageRankMatchesReferenceAcrossEngines(t *testing.T) {
	cfg := tinyGraph()
	const blockSize = 16 << 10
	const iters = 3
	want := referencePageRank(t, cfg, blockSize, iters)
	for _, eng := range Engines() {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			out := runPageRank(t, eng, cfg, blockSize, iters)
			if len(out) != len(want) {
				t.Fatalf("vertices = %d, want %d", len(out), len(want))
			}
			checked := 0
			for v, val := range out {
				rank, _ := DecodeRank([]byte(val))
				if rank != want[v] {
					t.Fatalf("vertex %s rank = %d, want %d", v, rank, want[v])
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("empty ranks")
			}
		})
	}
}

func TestPageRankMassConcentrates(t *testing.T) {
	// With Zipf-skewed endpoints, low-id vertices must accumulate rank.
	cfg := tinyGraph()
	out := runPageRank(t, HashIncremental, cfg, 16<<10, 3)
	r0, _ := DecodeRank([]byte(out["v0"]))
	base := uint64(RankScale) / uint64(cfg.Nodes)
	if r0 < 5*base {
		t.Fatalf("v0 rank %d not far above uniform %d", r0, base)
	}
}

func TestGraphGeneratorCoversAllVertices(t *testing.T) {
	cfg := tinyGraph()
	const blockSize = 8 << 10
	seen := map[string]bool{}
	total := cfg.TotalBytes(blockSize)
	for b := 0; int64(b)*blockSize < total; b++ {
		data := cfg.Block(b, blockSize)
		if int64(len(data)) > blockSize {
			t.Fatalf("block %d overflows budget: %d > %d", b, len(data), blockSize)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			seen[strings.Split(line, " ")[0]] = true
		}
	}
	if len(seen) != cfg.Nodes {
		t.Fatalf("generator covered %d vertices, want %d", len(seen), cfg.Nodes)
	}
	// Deterministic.
	if string(cfg.Block(1, blockSize)) != string(cfg.Block(1, blockSize)) {
		t.Fatal("graph generation must be deterministic")
	}
}
