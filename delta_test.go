package onepass

import (
	"strings"
	"testing"

	"onepass/internal/workloads"
)

func tinyDelta(cc ClickConfig, seed uint64, frac float64) Delta {
	return DefaultDelta(cc, seed, frac)
}

// fullRerun runs the plain job over the evolved dataset on a fresh cluster,
// returning the result and the cluster's total disk bytes read.
func fullRerun(t *testing.T, cfg Config, data Dataset, job Job, d Delta) (*Result, float64) {
	t.Helper()
	c := NewCluster(cfg)
	v2 := DeltaDataset(data, d, cfg.BlockSize)
	if err := c.Register(v2); err != nil {
		t.Fatal(err)
	}
	job.InputPath = v2.Path
	job.RetainOutput = true
	res, err := c.RunJob(job)
	if err != nil {
		t.Fatal(err)
	}
	return res, c.DiskBytesRead()
}

// TestIncrementalEqualsFullRerunAcrossEngines is the tentpole oracle: on
// every engine, for monoid and holistic delta-capable workloads, the
// incremental re-run after a delta is byte-identical (same OutputChecksum
// and same retained pairs) to a full re-run over the evolved dataset.
func TestIncrementalEqualsFullRerunAcrossEngines(t *testing.T) {
	cc := tinyClicks()
	const inputSize = 256 << 10
	cases := []struct {
		name string
		make func() *Workload
		// compactState marks workloads whose preserved state is far smaller
		// than their input (monoid aggregates), where the incremental path
		// must demonstrably read fewer disk bytes even at test scale.
		// Holistic state (sessionization) is input-sized, so its byte
		// savings only appear at real delta fractions — the delta sweep
		// experiment reports those; here only byte-identity is asserted.
		compactState bool
	}{
		{"per-user-count", func() *Workload { return PerUserCount(cc) }, true},
		{"sessionization", func() *Workload { return Sessionization(cc) }, false},
		{"windowed-sessionization", func() *Workload { return WindowedSessionization(cc, 1800) }, false},
	}
	for _, tc := range cases {
		for _, e := range Engines() {
			w := tc.make()
			cfg := tinyConfig(e)
			data := Dataset{Path: "input/" + w.Name, Size: inputSize, Gen: w.Gen}
			d := tinyDelta(cc, 11, 0.25)
			dr, err := RunDelta(cfg, data, w.Job, d)
			if err != nil {
				t.Fatalf("%s on %v: %v", tc.name, e, err)
			}
			full, fullBytes := fullRerun(t, cfg, data, w.Job, d)
			if dr.Incremental.OutputChecksum != full.OutputChecksum {
				t.Fatalf("%s on %v: incremental checksum %016x != full %016x",
					tc.name, e, dr.Incremental.OutputChecksum, full.OutputChecksum)
			}
			if len(dr.Incremental.Output) != len(full.Output) {
				t.Fatalf("%s on %v: %d keys incremental, %d full",
					tc.name, e, len(dr.Incremental.Output), len(full.Output))
			}
			for k, v := range full.Output {
				if dr.Incremental.Output[k] != v {
					t.Fatalf("%s on %v: key %q = %q, want %q",
						tc.name, e, k, dr.Incremental.Output[k], v)
				}
			}
			if dr.Stats.AffectedKeys == 0 || dr.Stats.AffectedKeys > dr.Stats.TotalKeys {
				t.Fatalf("%s on %v: affected keys %d of %d", tc.name, e,
					dr.Stats.AffectedKeys, dr.Stats.TotalKeys)
			}
			if tc.compactState && e != Resident &&
				dr.Stats.IncrementalDiskReadBytes >= fullBytes {
				t.Fatalf("%s on %v: incremental read %.0f bytes, full re-run %.0f",
					tc.name, e, dr.Stats.IncrementalDiskReadBytes, fullBytes)
			}
		}
	}
}

// TestIncrementalWithMonoidDisabled: DisableMonoid routes counting
// workloads down the holistic (OrderInsensitive) path and must still match
// the full re-run, which also runs monoid-free.
func TestIncrementalWithMonoidDisabled(t *testing.T) {
	cc := tinyClicks()
	w := PerUserCount(cc)
	cfg := tinyConfig(HashIncremental)
	cfg.DisableMonoid = true
	data := Dataset{Path: "input/" + w.Name, Size: 256 << 10, Gen: w.Gen}
	d := tinyDelta(cc, 3, 0.2)
	dr, err := RunDelta(cfg, data, w.Job, d)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := fullRerun(t, cfg, data, w.Job, d)
	if dr.Incremental.OutputChecksum != full.OutputChecksum {
		t.Fatalf("monoid-off incremental %016x != full %016x",
			dr.Incremental.OutputChecksum, full.OutputChecksum)
	}
}

// TestRunRoutesConfigDelta: Config.Delta turns Run into the incremental
// path and returns the incremental result.
func TestRunRoutesConfigDelta(t *testing.T) {
	cc := tinyClicks()
	w := PerUserCount(cc)
	cfg := tinyConfig(Hadoop)
	d := tinyDelta(cc, 5, 0.2)
	cfg.Delta = &d
	data := Dataset{Path: "input/" + w.Name, Size: 128 << 10, Gen: w.Gen}
	res, err := Run(cfg, data, w.Job)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := fullRerun(t, tinyConfig(Hadoop), data, w.Job, d)
	if res.OutputChecksum != full.OutputChecksum {
		t.Fatalf("Config.Delta result %016x != full re-run %016x",
			res.OutputChecksum, full.OutputChecksum)
	}
}

// TestDeltaWindowedLocality: on the windowed scenario, an append-only delta
// affects only a small fraction of keys — the sliding-window promise that
// closed windows are served from preserved state.
func TestDeltaWindowedLocality(t *testing.T) {
	cc := tinyClicks()
	w := WindowedSessionization(cc, 60)
	cfg := tinyConfig(HashIncremental)
	data := Dataset{Path: "input/" + w.Name, Size: 512 << 10, Gen: w.Gen}
	d := Delta{Seed: 9, AppendFrac: 0.1, Clicks: cc}
	dr, err := RunDelta(cfg, data, w.Job, d)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Stats.DirtyBlocks != 0 || dr.Stats.AppendedBlocks == 0 {
		t.Fatalf("append-only delta: dirty=%d appended=%d",
			dr.Stats.DirtyBlocks, dr.Stats.AppendedBlocks)
	}
	if frac := float64(dr.Stats.AffectedKeys) / float64(dr.Stats.TotalKeys); frac > 0.5 {
		t.Fatalf("append-only delta affected %.0f%% of windowed keys (%d/%d)",
			frac*100, dr.Stats.AffectedKeys, dr.Stats.TotalKeys)
	}
	full, _ := fullRerun(t, cfg, data, w.Job, d)
	if dr.Incremental.OutputChecksum != full.OutputChecksum {
		t.Fatal("windowed incremental diverged from full re-run")
	}
}

// TestDeltaRejectsIncapableJobs: order-sensitive or explicitly combined
// jobs must be rejected with an instructive error, not silently corrupted.
func TestDeltaRejectsIncapableJobs(t *testing.T) {
	cc := tinyClicks()
	cfg := tinyConfig(Hadoop)
	d := tinyDelta(cc, 1, 0.1)
	data := Dataset{Path: "input/x", Size: 64 << 10, Gen: cc.Block}

	plain := Sessionization(cc).Job
	plain.OrderInsensitive = false
	if _, err := RunDelta(cfg, data, plain, d); err == nil ||
		!strings.Contains(err.Error(), "OrderInsensitive") {
		t.Fatalf("order-sensitive job accepted: %v", err)
	}

	agg := PerUserCount(cc).Job
	agg.Monoid = nil
	agg.Agg = workloads.CountAgg{}
	if _, err := RunDelta(cfg, data, agg, d); err == nil ||
		!strings.Contains(err.Error(), "Aggregator") {
		t.Fatalf("aggregator job accepted: %v", err)
	}

	empty := PerUserCount(cc).Job
	if _, err := RunDelta(cfg, data, empty, Delta{Clicks: cc}); err == nil ||
		!strings.Contains(err.Error(), "changes nothing") {
		t.Fatalf("zero delta accepted: %v", err)
	}

	stream := data
	stream.ArrivalRate = 1 << 20
	if _, err := RunDelta(cfg, stream, PerUserCount(cc).Job, d); err == nil {
		t.Fatal("streamed base dataset accepted")
	}
}
