package onepass

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

// TopK builds the second stage of a chained analytics pipeline: reading the
// (name, count) pairs another job wrote, it produces the k most frequent
// entries — the paper's §IV open question about combiners for "complex
// analytical tasks such as top-k", answered with a mergeable bounded-state
// partial top-k. Set the returned job's InputPath to the first stage's
// OutputPath.
var TopK = workloads.TopK

// ParseTopK decodes a TopK result value into rank-ordered names and counts.
var ParseTopK = workloads.ParseTopK

// PageRank pieces (the paper's "graph queries" benchmark extension):
// PageRankInit seeds every vertex with rank 1/N from the generated graph;
// PageRankIter is one chained power iteration; DecodeRank unpacks a
// result value; DefaultGraphConfig parameterizes the synthetic link graph.
var (
	PageRankInit       = workloads.PageRankInit
	PageRankIter       = workloads.PageRankIter
	DecodeRank         = workloads.DecodeRank
	DefaultGraphConfig = gen.DefaultGraphConfig
)

// Trending pieces (the "Twitter feed analysis" benchmark extension):
// WindowedTopicCounts buckets the event stream into tumbling event-time
// windows and counts topics per window; TopKPerWindow selects each window's
// k hottest topics from those counts in a chained second stage.
var (
	WindowedTopicCounts = workloads.WindowedTopicCounts
	TopKPerWindow       = workloads.TopKPerWindow
)

// GraphConfig parameterizes the synthetic web-link graph.
type GraphConfig = gen.GraphConfig

// RankScale is PageRank's fixed-point unit (1.0 == 1e9).
const RankScale = workloads.RankScale

// Cluster is a persistent simulated testbed that can run several jobs in
// sequence over shared DFS state — the substrate for multi-stage pipelines
// (count, then top-k) where one job's output is the next job's input.
type Cluster struct {
	cfg  Config
	env  *sim.Env
	cl   *cluster.Cluster
	dfs  *dfs.DFS
	jobs int
}

// NewCluster builds a testbed from cfg. The Engine and per-job knobs in cfg
// are captured at construction and apply to every job run on the cluster;
// to run with different settings, build a new Cluster rather than mutating
// cfg afterwards.
func NewCluster(cfg Config) *Cluster {
	env := sim.New()
	env.SetWorkers(cfg.Parallelism)
	cl := cluster.New(env, cfg.clusterConfig())
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = dfs.DefaultBlockSize
	}
	return &Cluster{cfg: cfg, env: env, cl: cl, dfs: dfs.New(cl, blockSize, 1)}
}

// Register adds a dataset to the cluster's DFS.
func (c *Cluster) Register(data Dataset) error {
	if data.Gen == nil {
		return fmt.Errorf("onepass: dataset %q has no generator", data.Path)
	}
	return c.dfs.RegisterStream(data.Path, data.Size, data.ArrivalRate, data.Gen)
}

// RunJob executes one job on the cluster. Jobs run sequentially in the same
// virtual timeline; a job may read a previous job's OutputPath as its
// InputPath (all part files under it). Do not discard the output of a stage
// a later stage will read.
func (c *Cluster) RunJob(job Job) (*Result, error) {
	c.jobs++
	if job.OutputPath == "" {
		job.OutputPath = fmt.Sprintf("out/%s-%d", job.Name, c.jobs)
	}
	c.cfg.applyJobDefaults(&job, len(c.cl.ComputeNodes()))

	// Each job gets its own runtime (fresh metrics and timeline) over the
	// shared cluster, DFS, and virtual clock; dispatch threads the tracer,
	// audit, and (validated) fault schedule exactly as Run does, so chained
	// stages are traced, audited, and faulted like single-stage runs. The
	// fault schedule's offsets are job-relative: it re-arms at each stage's
	// start.
	rt := engine.NewRuntime(c.env, c.cl, c.dfs)
	return dispatch(c.cfg, rt, job)
}

// Now returns the cluster's current virtual time in seconds (advances
// across chained jobs).
func (c *Cluster) Now() float64 { return c.env.Now().Seconds() }

// DiskBytesRead returns cumulative bytes read from every simulated disk
// (DFS and scratch devices, all nodes) since the cluster was built. Deltas
// across RunJob calls attribute disk traffic per stage — the observable
// that separates the resident engine's in-memory hand-off from the disk
// engines' DFS round-trip in chained pipelines.
func (c *Cluster) DiskBytesRead() float64 { return c.cl.DiskBytesRead() }
