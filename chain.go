package onepass

import (
	"fmt"

	"onepass/internal/cluster"
	"onepass/internal/core"
	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/hadoop"
	"onepass/internal/hop"
	"onepass/internal/sim"
	"onepass/internal/workloads"
)

// TopK builds the second stage of a chained analytics pipeline: reading the
// (name, count) pairs another job wrote, it produces the k most frequent
// entries — the paper's §IV open question about combiners for "complex
// analytical tasks such as top-k", answered with a mergeable bounded-state
// partial top-k. Set the returned job's InputPath to the first stage's
// OutputPath.
var TopK = workloads.TopK

// ParseTopK decodes a TopK result value into rank-ordered names and counts.
var ParseTopK = workloads.ParseTopK

// PageRank pieces (the paper's "graph queries" benchmark extension):
// PageRankInit seeds every vertex with rank 1/N from the generated graph;
// PageRankIter is one chained power iteration; DecodeRank unpacks a
// result value; DefaultGraphConfig parameterizes the synthetic link graph.
var (
	PageRankInit       = workloads.PageRankInit
	PageRankIter       = workloads.PageRankIter
	DecodeRank         = workloads.DecodeRank
	DefaultGraphConfig = gen.DefaultGraphConfig
)

// Trending pieces (the "Twitter feed analysis" benchmark extension):
// WindowedTopicCounts buckets the event stream into tumbling event-time
// windows and counts topics per window; TopKPerWindow selects each window's
// k hottest topics from those counts in a chained second stage.
var (
	WindowedTopicCounts = workloads.WindowedTopicCounts
	TopKPerWindow       = workloads.TopKPerWindow
)

// GraphConfig parameterizes the synthetic web-link graph.
type GraphConfig = gen.GraphConfig

// RankScale is PageRank's fixed-point unit (1.0 == 1e9).
const RankScale = workloads.RankScale

// Cluster is a persistent simulated testbed that can run several jobs in
// sequence over shared DFS state — the substrate for multi-stage pipelines
// (count, then top-k) where one job's output is the next job's input.
type Cluster struct {
	cfg  Config
	env  *sim.Env
	cl   *cluster.Cluster
	dfs  *dfs.DFS
	jobs int
}

// NewCluster builds a testbed from cfg. The Engine and per-job knobs in cfg
// apply to every job run on it (they can be changed between runs by
// mutating nothing — pass a different cfg to RunJob's receiver via a new
// cluster — the engine choice is read at each RunJob call from cfg given
// at construction).
func NewCluster(cfg Config) *Cluster {
	env := sim.New()
	cl := cluster.New(env, cfg.clusterConfig())
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = dfs.DefaultBlockSize
	}
	return &Cluster{cfg: cfg, env: env, cl: cl, dfs: dfs.New(cl, blockSize, 1)}
}

// Register adds a dataset to the cluster's DFS.
func (c *Cluster) Register(data Dataset) error {
	if data.Gen == nil {
		return fmt.Errorf("onepass: dataset %q has no generator", data.Path)
	}
	return c.dfs.RegisterStream(data.Path, data.Size, data.ArrivalRate, data.Gen)
}

// RunJob executes one job on the cluster. Jobs run sequentially in the same
// virtual timeline; a job may read a previous job's OutputPath as its
// InputPath (all part files under it). Do not discard the output of a stage
// a later stage will read.
func (c *Cluster) RunJob(job Job) (*Result, error) {
	c.jobs++
	if job.OutputPath == "" {
		job.OutputPath = fmt.Sprintf("out/%s-%d", job.Name, c.jobs)
	}
	if job.Reducers <= 0 {
		if c.cfg.Reducers > 0 {
			job.Reducers = c.cfg.Reducers
		} else {
			job.Reducers = 2 * len(c.cl.ComputeNodes())
		}
	}
	if c.cfg.MemoryPerTask > 0 && job.MemoryPerTask == 0 {
		job.MemoryPerTask = c.cfg.MemoryPerTask
	}
	if !job.RetainOutput && !job.DiscardOutput {
		job.RetainOutput = c.cfg.RetainOutput
		job.DiscardOutput = c.cfg.DiscardOutput
	}

	// Each job gets its own runtime (fresh metrics and timeline) over the
	// shared cluster, DFS, and virtual clock.
	rt := engine.NewRuntime(c.env, c.cl, c.dfs)
	switch c.cfg.Engine {
	case Hadoop:
		return hadoop.Run(rt, job, hadoop.Options{FanIn: c.cfg.FanIn})
	case MapReduceOnline:
		return hop.Run(rt, job, hop.Options{
			FanIn:            c.cfg.FanIn,
			ChunkBytes:       c.cfg.ChunkBytes,
			DisableSnapshots: c.cfg.DisableSnapshots,
		})
	case HashHybrid, HashIncremental, HashHotKey:
		mode := core.HybridHash
		if c.cfg.Engine == HashIncremental {
			mode = core.Incremental
		} else if c.cfg.Engine == HashHotKey {
			mode = core.HotKey
		}
		return core.Run(rt, job, core.Options{
			Mode:             mode,
			DisablePush:      c.cfg.DisablePush,
			ChunkBytes:       c.cfg.ChunkBytes,
			SpillBuckets:     c.cfg.SpillBuckets,
			HotKeyCounters:   c.cfg.HotKeyCounters,
			ApproximateEarly: c.cfg.ApproximateEarly,
		})
	default:
		return nil, fmt.Errorf("onepass: unknown engine %v", c.cfg.Engine)
	}
}

// Now returns the cluster's current virtual time in seconds (advances
// across chained jobs).
func (c *Cluster) Now() float64 { return c.env.Now().Seconds() }
