package onepass

import (
	"strings"
	"testing"
)

// runCountTopK runs the two-stage page-count -> top-k pipeline on a fresh
// cluster built from cfg and returns both stage results.
func runCountTopK(t *testing.T, cfg Config) (*Result, *Result) {
	t.Helper()
	cl := NewCluster(cfg)
	count := PageFrequency(tinyClicks())
	if err := cl.Register(Dataset{Path: "input/clicks", Size: 256 << 10, Gen: count.Gen}); err != nil {
		t.Fatal(err)
	}
	stage1 := count.Job
	stage1.InputPath = "input/clicks"
	stage1.OutputPath = "out/counts"
	stage1.RetainOutput = true
	res1, err := cl.RunJob(stage1)
	if err != nil {
		t.Fatalf("stage 1: %v", err)
	}
	stage2 := TopK(5)
	stage2.InputPath = "out/counts"
	stage2.RetainOutput = true
	res2, err := cl.RunJob(stage2)
	if err != nil {
		t.Fatalf("stage 2: %v", err)
	}
	return res1, res2
}

// TestChainedJobsAreTraced is the regression for Cluster.RunJob silently
// dropping Config.Trace: with a trace sink configured, every stage of a
// chained pipeline must record spans, not just the first.
func TestChainedJobsAreTraced(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			cfg := tinyConfig(e)
			cfg.Audit = true
			tl := NewTraceLog()
			cfg.Trace = tl

			cl := NewCluster(cfg)
			count := PageFrequency(tinyClicks())
			if err := cl.Register(Dataset{Path: "input/clicks", Size: 256 << 10, Gen: count.Gen}); err != nil {
				t.Fatal(err)
			}
			stage1 := count.Job
			stage1.InputPath = "input/clicks"
			stage1.OutputPath = "out/counts"
			stage1.RetainOutput = true
			if _, err := cl.RunJob(stage1); err != nil {
				t.Fatalf("stage 1: %v", err)
			}
			afterStage1 := tl.Len()
			if afterStage1 == 0 {
				t.Fatal("stage 1 recorded no trace events")
			}
			stage2 := TopK(5)
			stage2.InputPath = "out/counts"
			stage2.RetainOutput = true
			if _, err := cl.RunJob(stage2); err != nil {
				t.Fatalf("stage 2: %v", err)
			}
			if tl.Len() <= afterStage1 {
				t.Fatalf("stage 2 recorded no trace events (%d after stage 1, %d after stage 2): RunJob dropped the trace sink",
					afterStage1, tl.Len())
			}
		})
	}
}

// TestChainedJobsHonorFaults is the regression for Cluster.RunJob silently
// dropping Config.Faults: a chained run under a degradation schedule must
// actually inject the faults (the counter proves the schedule reached the
// engine) and still converge to the clean pipeline's output.
func TestChainedJobsHonorFaults(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			cfg := tinyConfig(e)
			cfg.Audit = true
			clean1, clean2 := runCountTopK(t, cfg)

			// Degradations only: stage 1's retained output is written data a
			// node failure could strand for stage 2. Offsets are job-relative
			// and sit well inside stage 1's clean makespan.
			ms := clean1.Makespan
			cfg.Faults = FaultSchedule{Faults: []Fault{
				{Kind: DiskSlow, Node: 0, At: ms / 5, For: ms / 2, Factor: 6},
				{Kind: Straggler, Node: 1, At: ms / 4, For: ms / 2, Factor: 4},
			}}
			faulted1, faulted2 := runCountTopK(t, cfg)

			if got := faulted1.Counters.Get("faults.injected"); got == 0 {
				t.Fatal("stage 1 injected no faults: RunJob dropped the fault schedule")
			}
			if faulted1.OutputChecksum != clean1.OutputChecksum {
				t.Fatalf("stage 1 checksum %016x, clean %016x", faulted1.OutputChecksum, clean1.OutputChecksum)
			}
			if faulted2.OutputChecksum != clean2.OutputChecksum {
				t.Fatalf("stage 2 checksum %016x, clean %016x", faulted2.OutputChecksum, clean2.OutputChecksum)
			}
		})
	}
}

// TestRunJobValidatesFaultSchedule: an out-of-range fault node must surface
// as an error from RunJob, not a panic mid-run.
func TestRunJobValidatesFaultSchedule(t *testing.T) {
	cfg := tinyConfig(Hadoop)
	cfg.Faults = FaultSchedule{Faults: []Fault{{Kind: DiskSlow, Node: 99, Factor: 2}}}
	cl := NewCluster(cfg)
	count := PageFrequency(tinyClicks())
	if err := cl.Register(Dataset{Path: "input/clicks", Size: 128 << 10, Gen: count.Gen}); err != nil {
		t.Fatal(err)
	}
	job := count.Job
	job.InputPath = "input/clicks"
	_, err := cl.RunJob(job)
	if err == nil {
		t.Fatal("RunJob accepted a fault schedule naming node 99 on a 4-node cluster")
	}
	if !strings.Contains(err.Error(), "node") {
		t.Fatalf("error %q does not mention the offending node", err)
	}
}

// TestJobLevelSettingsWin: Run must not clobber job-level MemoryPerTask or
// output retention with the Config-level values (the documented precedence:
// job-level wins, Config fills zeroes).
func TestJobLevelSettingsWin(t *testing.T) {
	w := PerUserCount(tinyClicks())

	// Output retention: the job says discard, the config says retain.
	cfg := tinyConfig(Hadoop)
	cfg.RetainOutput = true
	job := w.Job
	job.DiscardOutput = true
	res, err := Run(cfg, Dataset{Path: "input/clicks", Size: 256 << 10, Gen: w.Gen}, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Fatalf("job-level DiscardOutput ignored: %d output keys retained", len(res.Output))
	}

	// Memory: a job-level budget far below the config-level one must force
	// reduce-side spilling the roomy config budget would never see.
	sess := Sessionization(tinyClicks())
	roomy := tinyConfig(Hadoop)
	roomy.MemoryPerTask = 8 << 20
	base, err := RunWorkload(roomy, sess, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	tight := sess.Job
	tight.MemoryPerTask = 64 << 10
	tightRes, err := Run(roomy, Dataset{Path: "input/clicks", Size: 256 << 10, Gen: sess.Gen}, tight)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tightRes.Counters.Get("reduce.spill.bytes"), base.Counters.Get("reduce.spill.bytes"); got <= want {
		t.Fatalf("job-level MemoryPerTask ignored: 64KB budget spilled %v bytes, 8MB config budget spilled %v", got, want)
	}
}
