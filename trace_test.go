package onepass

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// tracedRun executes one traced workload run and returns the result plus the
// rendered Chrome trace bytes.
func tracedRun(t *testing.T, e Engine) (*Result, []byte) {
	t.Helper()
	cfg := tinyConfig(e)
	tl := NewTraceLog()
	cfg.Trace = tl
	res, err := RunWorkload(cfg, Sessionization(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// The golden determinism property: the same spec and seed must produce a
// byte-identical Chrome trace, run to run — the simulation is a serialized
// discrete-event world, so event order is fully determined.
func TestTraceByteDeterminism(t *testing.T) {
	for _, e := range []Engine{Hadoop, MapReduceOnline, HashHotKey} {
		_, a := tracedRun(t, e)
		_, b := tracedRun(t, e)
		if !bytes.Equal(a, b) {
			t.Fatalf("%v: two identical runs produced different traces (%d vs %d bytes)", e, len(a), len(b))
		}
	}
}

// Attaching a trace sink must not perturb the simulation: the traced run's
// result must serialize identically to an untraced one.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	for _, e := range Engines() {
		traced, _ := tracedRun(t, e)
		plain, err := RunWorkload(tinyConfig(e), Sessionization(tinyClicks()), 256<<10)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		tj, err := json.Marshal(traced)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tj, pj) {
			t.Fatalf("%v: traced and untraced results differ", e)
		}
	}
}

// The trace must be loadable Chrome trace-event JSON with attributed events
// spanning several distinct names (the acceptance bar for Perfetto use).
func TestTraceChromeShape(t *testing.T) {
	_, raw := tracedRun(t, HashHotKey)
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	names := map[string]bool{}
	begins, ends, attributed := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "B":
			begins++
		case "E":
			ends++
		}
		names[ev.Name] = true
		if _, ok := ev.Args["node"]; ok {
			attributed++
			if _, ok := ev.Args["engine"]; !ok {
				t.Fatalf("event %q has node but no engine attribution", ev.Name)
			}
		}
	}
	if len(names) < 5 {
		t.Fatalf("only %d distinct event names: %v", len(names), names)
	}
	if begins != ends {
		t.Fatalf("unbalanced spans: %d B vs %d E", begins, ends)
	}
	if attributed == 0 {
		t.Fatal("no events carry node attribution")
	}
}

// Per-node sampled series must decompose the cluster aggregates: summing a
// bucket across nodes reproduces the cluster-wide series.
func TestPerNodeSeriesSumToAggregate(t *testing.T) {
	res, err := RunWorkload(tinyConfig(Hadoop), Sessionization(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != 4 {
		t.Fatalf("PerNode has %d entries, want one per node", len(res.PerNode))
	}
	checkSum := func(name string, agg func(*Result) []float64, per func(*NodeSeries) []float64) {
		total := agg(res)
		for i := range total {
			sum := 0.0
			for _, ns := range res.PerNode {
				vals := per(ns)
				if i < len(vals) {
					sum += vals[i]
				}
			}
			if math.Abs(sum-total[i]) > 1e-6*math.Max(1, math.Abs(total[i])) {
				t.Fatalf("%s bucket %d: per-node sum %v != aggregate %v", name, i, sum, total[i])
			}
		}
	}
	checkSum("disk-bytes-read",
		func(r *Result) []float64 { return r.BytesRead.Values() },
		func(ns *NodeSeries) []float64 { return ns.BytesRead.Values() })
	checkSum("disk-bytes-written",
		func(r *Result) []float64 { return r.BytesWritten.Values() },
		func(ns *NodeSeries) []float64 { return ns.BytesWritten.Values() })
	// CPU series are per-core-normalized, so the aggregate is the
	// core-weighted mean rather than the sum; with equal cores per node the
	// mean of node utilizations must match the cluster utilization.
	util := res.CPUUtil.Values()
	for i := range util {
		mean := 0.0
		for _, ns := range res.PerNode {
			vals := ns.CPUUtil.Values()
			if i < len(vals) {
				mean += vals[i]
			}
		}
		mean /= float64(len(res.PerNode))
		if math.Abs(mean-util[i]) > 1e-6 {
			t.Fatalf("cpu-util bucket %d: per-node mean %v != aggregate %v", i, mean, util[i])
		}
	}
}

// Progress-vs-accuracy series: the hot-key engine must expose at least one
// point, cumulative pairs must be non-decreasing, and the final point must
// cover the full output.
func TestHotKeyProgressSeries(t *testing.T) {
	res, err := RunWorkload(tinyConfig(HashHotKey), PerUserCount(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Progress) == 0 {
		t.Fatal("hash-hotkey run carries no progress points")
	}
	last := -1
	for i, pp := range res.Progress {
		if pp.Pairs < last {
			t.Fatalf("progress point %d: pairs %d < previous %d", i, pp.Pairs, last)
		}
		last = pp.Pairs
		if pp.MapFraction < -1 || pp.MapFraction > 1 {
			t.Fatalf("progress point %d: map fraction %v out of range", i, pp.MapFraction)
		}
	}
	if last != res.OutputPairs {
		t.Fatalf("final progress point has %d pairs, run emitted %d", last, res.OutputPairs)
	}
}
