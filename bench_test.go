// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment (results are
// cached within the shared session, like the paper plotting one run several
// ways), prints the paper-vs-measured report, and exports the headline
// quantities as benchmark metrics.
//
// Scale: a 256 GB paper dataset becomes 64 MB by default; set ONEPASS_SCALE
// (e.g. 0.001) to run closer to paper scale.
package onepass_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"onepass/internal/experiments"
)

var (
	sessOnce sync.Once
	sess     *experiments.Session
)

func session() *experiments.Session {
	sessOnce.Do(func() {
		sess = experiments.NewSession(experiments.DefaultScale())
	})
	return sess
}

var printed sync.Map

// runReport executes the experiment (cached within the session, so repeat
// invocations are free), prints the report exactly once, and pins b.N to a
// single iteration — these are end-to-end simulation runs, not
// microbenchmarks, and the interesting output is the report itself.
func runReport(b *testing.B, f func(*experiments.Session) *experiments.Report) *experiments.Report {
	b.Helper()
	rep := f(session())
	if _, dup := printed.LoadOrStore(b.Name(), true); !dup {
		fmt.Fprintln(os.Stdout, rep.Render())
	}
	for i := 1; i < b.N; i++ {
		_ = f(session()) // cached
	}
	return rep
}

func BenchmarkTableI_Workloads(b *testing.B) {
	runReport(b, (*experiments.Session).TableI)
}

func BenchmarkTableII_MapPhaseCPU(b *testing.B) {
	runReport(b, (*experiments.Session).TableII)
}

func BenchmarkTableIII_Capabilities(b *testing.B) {
	runReport(b, (*experiments.Session).TableIII)
}

func BenchmarkSecIIIB1_ParsingCost(b *testing.B) {
	runReport(b, (*experiments.Session).ParsingCost)
}

func BenchmarkSecIIIB2_MapOutputWriteShare(b *testing.B) {
	runReport(b, (*experiments.Session).MapOutputWriteShare)
}

func BenchmarkFig2a_TaskTimeline(b *testing.B) {
	runReport(b, (*experiments.Session).Fig2a)
}

func BenchmarkFig2b_CPUUtilization(b *testing.B) {
	runReport(b, (*experiments.Session).Fig2b)
}

func BenchmarkFig2c_CPUIowait(b *testing.B) {
	runReport(b, (*experiments.Session).Fig2c)
}

func BenchmarkFig2d_BytesRead(b *testing.B) {
	runReport(b, (*experiments.Session).Fig2d)
}

func BenchmarkFig2e_SSDIntermediate(b *testing.B) {
	runReport(b, (*experiments.Session).Fig2e)
}

func BenchmarkFig2f_SplitArchitecture(b *testing.B) {
	runReport(b, (*experiments.Session).Fig2f)
}

func BenchmarkFig3_InvertedIndexTimeline(b *testing.B) {
	runReport(b, (*experiments.Session).Fig3)
}

func BenchmarkFig4_MapReduceOnline(b *testing.B) {
	runReport(b, (*experiments.Session).Fig4)
}

func BenchmarkSecV_HashVsHadoop(b *testing.B) {
	runReport(b, (*experiments.Session).SecVHashVsHadoop)
}

func BenchmarkSecV_SpillReduction(b *testing.B) {
	runReport(b, (*experiments.Session).SecVSpillReduction)
}

func BenchmarkSecV_IncrementalLatency(b *testing.B) {
	runReport(b, (*experiments.Session).SecVIncrementalLatency)
}

func BenchmarkSecI_StreamingArrival(b *testing.B) {
	runReport(b, (*experiments.Session).Streaming)
}

func BenchmarkAblation_MergeFanIn(b *testing.B) {
	runReport(b, (*experiments.Session).AblationFanIn)
}

func BenchmarkAblation_HOPChunkSize(b *testing.B) {
	runReport(b, (*experiments.Session).AblationHOPChunk)
}

func BenchmarkAblation_HotKeyMemory(b *testing.B) {
	runReport(b, (*experiments.Session).AblationHotKeyMemory)
}
