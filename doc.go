// Package onepass is a from-scratch reproduction of "Towards Scalable
// One-Pass Analytics Using MapReduce" (Mazur, Li, Diao, Shenoy — IPDPS
// workshops 2011): three complete MapReduce runtimes over a deterministic
// simulated cluster, instrumented the way the paper instrumented its
// physical testbed.
//
// The engines:
//
//   - Hadoop: the stock sort-merge baseline (map-side buffer sort, pull
//     shuffle, reducer spills, blocking multi-pass merge).
//   - MapReduceOnline: the Hadoop Online Prototype (eager push pipelining
//     with backpressure, periodic snapshot answers) — still sort-merge.
//   - HashHybrid / HashIncremental / HashHotKey: the paper's contribution,
//     a purely hash-based runtime with incremental per-key aggregation and
//     a frequent-items sketch that pins hot keys in memory.
//
// All engines do real data processing — real records, real sorts with
// counted comparisons, real hash tables, real spill files re-read from a
// simulated disk — while a discrete-event simulator turns that work into
// virtual time, per-second CPU/iowait/disk series, and task timelines.
// A run is fully deterministic.
//
// Quick start:
//
//	cfg := onepass.DefaultConfig()
//	cfg.Engine = onepass.HashIncremental
//	w := onepass.PageFrequency(onepass.DefaultClickConfig())
//	res, err := onepass.RunWorkload(cfg, w, 64<<20)
//	// res.Output, res.Makespan, res.FirstOutputAt, res.CPUUtil ...
//
// Multi-stage pipelines chain jobs over one shared simulated DFS:
//
//	cl := onepass.NewCluster(cfg)
//	cl.Register(onepass.Dataset{Path: "clicks", Size: 64 << 20, Gen: w.Gen})
//	cl.RunJob(countJob)              // writes out/counts
//	cl.RunJob(onepass.TopK(10))      // reads it back (InputPath = "out/counts")
//
// Streaming arrivals (Dataset.ArrivalRate), threshold queries
// (Job.EmitWhen), fault injection, speculative execution, and iterated
// graph queries (PageRankIter) are covered in examples/ and DESIGN.md §6.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package onepass
