package onepass_test

import (
	"fmt"
	"sort"
	"strconv"

	"onepass"
)

// ExampleRunWorkload runs the paper's page-frequency query (§II's
// "SELECT COUNT(*) FROM visits GROUP BY url") on the hash engine and prints
// the most visited page.
func ExampleRunWorkload() {
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.Nodes = 4
	cfg.BlockSize = 64 << 10
	cfg.Reducers = 4
	cfg.RetainOutput = true

	clicks := onepass.DefaultClickConfig()
	clicks.Users = 500
	clicks.URLs = 100

	res, err := onepass.RunWorkload(cfg, onepass.PageFrequency(clicks), 256<<10)
	if err != nil {
		fmt.Println(err)
		return
	}
	top, best := "", uint64(0)
	for url, count := range res.Output {
		n, _ := strconv.ParseUint(count, 10, 64)
		if n > best || (n == best && url < top) {
			top, best = url, n
		}
	}
	fmt.Printf("most visited: %s (engine %s)\n", top, res.Engine)
	// Output: most visited: /en/page/0 (engine hash-incremental)
}

// ExampleNewCluster chains two jobs — count, then top-3 — over one shared
// simulated DFS.
func ExampleNewCluster() {
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.Hadoop
	cfg.Nodes = 4
	cfg.BlockSize = 64 << 10
	cfg.Reducers = 4
	cfg.RetainOutput = true
	cl := onepass.NewCluster(cfg)

	clicks := onepass.DefaultClickConfig()
	clicks.Users = 500
	clicks.URLs = 100
	w := onepass.PageFrequency(clicks)
	if err := cl.Register(onepass.Dataset{Path: "clicks", Size: 256 << 10, Gen: w.Gen}); err != nil {
		fmt.Println(err)
		return
	}

	count := w.Job
	count.InputPath = "clicks"
	count.OutputPath = "counts"
	if _, err := cl.RunJob(count); err != nil {
		fmt.Println(err)
		return
	}

	top := onepass.TopK(3)
	top.InputPath = "counts"
	res, err := cl.RunJob(top)
	if err != nil {
		fmt.Println(err)
		return
	}
	names, _ := onepass.ParseTopK(res.Output["top"])
	sort.Strings(names[:0]) // names are already rank-ordered; keep as-is
	for i, n := range names {
		fmt.Printf("%d. %s\n", i+1, n)
	}
	// Output:
	// 1. /en/page/0
	// 2. /en/page/1
	// 3. /en/page/2
}

// ExampleJob_emitWhen shows incremental processing: a threshold answer
// leaves the system while the job is still running.
func ExampleJob_emitWhen() {
	cfg := onepass.DefaultConfig()
	cfg.Engine = onepass.HashIncremental
	cfg.Nodes = 4
	cfg.BlockSize = 64 << 10
	cfg.Reducers = 4
	cfg.RetainOutput = true

	clicks := onepass.DefaultClickConfig()
	clicks.Users = 500
	clicks.URLs = 100
	w := onepass.PerUserCount(clicks)
	job := w.Job
	// The counting workloads' monoid state is the ASCII decimal count.
	job.EmitWhen = func(key, state []byte) bool {
		n, _ := strconv.ParseUint(string(state), 10, 64)
		return n >= 100
	}
	res, err := onepass.Run(cfg, onepass.Dataset{Path: "in", Size: 256 << 10, Gen: w.Gen}, job)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("first threshold answer before job end:", res.FirstOutputAt.Seconds() < res.Makespan.Seconds())
	// Output: first threshold answer before job end: true
}
