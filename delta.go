package onepass

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"onepass/internal/dfs"
	"onepass/internal/engine"
	"onepass/internal/gen"
	"onepass/internal/incr"
	"onepass/internal/kv"
	"onepass/internal/sim"
)

// Delta describes a seeded, replayable evolution of a click-log dataset —
// record updates and deletes inside a deterministic subset of blocks plus
// appended blocks of new clicks (see gen.Delta). Delta.Clicks must be the
// exact generator config behind the dataset it evolves.
type Delta = gen.Delta

// DefaultDelta is the standard mixed delta at a given overall size: frac of
// the base blocks dirty and frac of the base size appended.
var DefaultDelta = gen.DefaultDelta

// DeltaStats quantifies one incremental re-run against its full-re-run
// equivalent.
type DeltaStats struct {
	// BaseBlocks is the base file's block count; DirtyBlocks of them were
	// rewritten and AppendedBlocks were added past the base.
	BaseBlocks     int
	DirtyBlocks    int
	AppendedBlocks int
	// TotalKeys is the distinct grouping keys with live preserved state
	// after the delta; AffectedKeys of them were re-folded by the
	// incremental merge (the rest were served from cached finals).
	TotalKeys    int
	AffectedKeys int
	// StateBytes is the encoded merge input of the incremental re-run: the
	// preserved state actually consulted (cached finals plus affected keys'
	// per-block partials).
	StateBytes int
	// BaseDiskReadBytes and IncrementalDiskReadBytes split the cluster's
	// cumulative disk reads between priming (full pass over the base) and
	// the incremental re-run (delta blocks + preserved state only) — the
	// observable the incremental path exists to shrink.
	BaseDiskReadBytes        float64
	IncrementalDiskReadBytes float64
}

// DeltaResult is a completed incremental re-run: the primed base answer,
// the incrementally maintained answer after the delta, and the cost split.
// Incremental.OutputChecksum must equal a full re-run over
// DeltaDataset(data, d, cfg.BlockSize) on the same engine — the oracle the
// differential checker and the incremental-smoke CI job enforce.
type DeltaResult struct {
	Base        *Result
	Incremental *Result
	Stats       DeltaStats
}

// DeltaDataset returns the evolved dataset a delta produces — what a full
// re-run reads: the base generator with dirty blocks mutated and appended
// blocks past the base. blockSize must match the Config the base ran with
// (0 = the DFS default); the delta's block granularity is defined by it.
func DeltaDataset(data Dataset, d Delta, blockSize int64) Dataset {
	if blockSize <= 0 {
		blockSize = dfs.DefaultBlockSize
	}
	nBase := int((data.Size + blockSize - 1) / blockSize)
	apply := d.Apply(nBase)
	return Dataset{
		Path: data.Path + ".v2",
		Size: data.Size + int64(d.AppendCount(nBase))*blockSize,
		Gen: func(b int, size int64) []byte {
			if b < nBase {
				return apply(b, baseBlockSize(data.Size, blockSize, b))
			}
			return apply(b, blockSize)
		},
	}
}

func baseBlockSize(totalSize, blockSize int64, b int) int64 {
	if s := totalSize - int64(b)*blockSize; s < blockSize {
		return s
	}
	return blockSize
}

// deltaCapable rejects jobs whose reduce-side state cannot be preserved
// lawfully: composing per-block partials in block order is only correct
// when the reduce is a multiset function — declared either as a kv.Monoid
// (partials are monoid elements) or via Job.OrderInsensitive (partials are
// the raw value multisets).
func deltaCapable(job Job) error {
	switch {
	case job.Agg != nil:
		return fmt.Errorf("onepass: job %q uses an explicit Aggregator; delta re-runs need a declared Monoid or an OrderInsensitive reduce", job.Name)
	case job.Combine != nil:
		return fmt.Errorf("onepass: job %q uses an explicit combiner; delta re-runs need a declared Monoid or an OrderInsensitive reduce", job.Name)
	case job.EmitWhen != nil:
		return fmt.Errorf("onepass: job %q sets EmitWhen; early-emit predicates do not compose with preserved state", job.Name)
	case job.Monoid == nil && !job.OrderInsensitive:
		return fmt.Errorf("onepass: job %q has an order-sensitive reduce; delta re-runs need a declared Monoid or Job.OrderInsensitive", job.Name)
	}
	return nil
}

// monoidKey names the aggregation law preserved state composes under —
// partials captured under one law must never be merged under another.
func monoidKey(job Job) string {
	if job.Monoid != nil {
		return fmt.Sprintf("monoid:%T", job.Monoid)
	}
	return "holistic:" + job.Name
}

// RunDelta executes the incremental re-run path on a single simulated
// cluster: prime fine-grained reduce-side state with one pass over the base
// dataset, apply the delta, then re-map only the changed blocks and re-fold
// only the affected keys, serving every untouched key from its cached
// final. Both answers come out of real engine runs (cfg.Engine end to end),
// so Incremental.OutputChecksum is directly comparable to a full re-run
// over DeltaDataset(data, d, cfg.BlockSize).
//
// The mechanism is engine-agnostic: a capture run tags every map-output key
// with its origin block (per-(block, key) partials: monoid elements for
// monoid jobs, framed value multisets for holistic ones), and a merge run
// re-reduces the preserved state. For the disk engines the state file is
// spill-backed — written through the replicated DFS pipeline and read back
// with charged I/O; for the resident engine it is published as a
// memory-resident block, persisting the fold tables the way M3R keeps state
// across jobs.
func RunDelta(cfg Config, data Dataset, job Job, d Delta) (*DeltaResult, error) {
	cfg.Delta = nil
	if cfg.DisableMonoid {
		// Strip once up front: the capture/merge wrappers must see the
		// monoid-free job so the holistic path is used consistently.
		job.Monoid = nil
		cfg.DisableMonoid = false
	}
	if err := deltaCapable(job); err != nil {
		return nil, err
	}
	if data.Gen == nil {
		return nil, fmt.Errorf("onepass: dataset %q has no generator", data.Path)
	}
	if data.ArrivalRate > 0 {
		return nil, fmt.Errorf("onepass: delta re-runs need a materialized base dataset, not a streamed one")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("onepass: %w", err)
	}

	c := NewCluster(cfg)
	blockSize := c.dfs.BlockSize()
	nBase := int((data.Size + blockSize - 1) / blockSize)
	if nBase == 0 {
		return nil, fmt.Errorf("onepass: dataset %q is empty", data.Path)
	}
	dirty := d.DirtyBlocks(nBase)
	nApp := d.AppendCount(nBase)
	if len(dirty) == 0 && nApp == 0 {
		return nil, fmt.Errorf("onepass: delta changes nothing (zero dirty and appended fractions)")
	}

	// Phase 1 — prime: one tagged pass over the whole base captures
	// per-(block, key) partials, then a merge over all of them produces the
	// base answer and caches every key's final.
	taggedBase := data.Path + ".delta/base"
	err := c.dfs.RegisterGenerated(taggedBase, int64(nBase)*blockSize, func(b int, _ int64) []byte {
		return tagBlock(b, data.Gen(b, baseBlockSize(data.Size, blockSize, b)))
	})
	if err != nil {
		return nil, err
	}
	state := incr.New(monoidKey(job))
	capRes, err := c.RunJob(captureJob(job, taggedBase, data.Path+".delta/partials-base"))
	if err != nil {
		return nil, err
	}
	blocks, err := parseCapture(capRes.Output)
	if err != nil {
		return nil, err
	}
	for b, partials := range blocks {
		state.ReplaceBlock(b, partials, nil)
	}
	base, _, err := runMerge(c, job, state, nil, data.Path+".delta/state-base", "out/"+job.Name+"-base")
	if err != nil {
		return nil, err
	}
	state.SetFinals(base.Output)
	baseDisk := c.DiskBytesRead()

	// Phase 2 — incremental: a tagged file holding only the changed blocks
	// (mutated dirty blocks + appended blocks), a capture pass over it, and
	// a merge whose input is cached finals for untouched keys plus
	// per-block partials for affected ones.
	changed := append([]int(nil), dirty...)
	for i := 0; i < nApp; i++ {
		changed = append(changed, nBase+i)
	}
	taggedDelta := data.Path + ".delta/changed"
	err = c.dfs.RegisterGenerated(taggedDelta, int64(len(changed))*blockSize, func(i int, _ int64) []byte {
		b := changed[i]
		if b < nBase {
			return tagBlock(b, d.MutatedBlock(b, baseBlockSize(data.Size, blockSize, b)))
		}
		return tagBlock(b, d.AppendedBlock(b-nBase, nBase, blockSize))
	})
	if err != nil {
		return nil, err
	}
	if err := state.CheckKey(monoidKey(job)); err != nil {
		return nil, err
	}
	capRes, err = c.RunJob(captureJob(job, taggedDelta, data.Path+".delta/partials-delta"))
	if err != nil {
		return nil, err
	}
	newBlocks, err := parseCapture(capRes.Output)
	if err != nil {
		return nil, err
	}
	affected := make(map[string]bool)
	for _, b := range changed {
		state.ReplaceBlock(b, newBlocks[b], affected)
	}
	inc, stateBytes, err := runMerge(c, job, state, affected,
		data.Path+".delta/state-delta", "out/"+job.Name+"-incremental")
	if err != nil {
		return nil, err
	}
	state.SetFinals(inc.Output)

	return &DeltaResult{
		Base:        base,
		Incremental: inc,
		Stats: DeltaStats{
			BaseBlocks:               nBase,
			DirtyBlocks:              len(dirty),
			AppendedBlocks:           nApp,
			TotalKeys:                state.Keys(),
			AffectedKeys:             len(affected),
			StateBytes:               stateBytes,
			BaseDiskReadBytes:        baseDisk,
			IncrementalDiskReadBytes: c.DiskBytesRead() - baseDisk,
		},
	}, nil
}

// runMerge encodes the preserved state for the given affected-key set
// (nil = every key), publishes it, and re-reduces it with a real engine
// job, returning the merge result and the encoded state size.
func runMerge(c *Cluster, job Job, state *incr.State, affected map[string]bool, statePath, outPath string) (*Result, int, error) {
	input, err := state.MergeInput(affected)
	if err != nil {
		return nil, 0, err
	}
	if err := publishState(c, statePath, input); err != nil {
		return nil, 0, err
	}
	res, err := c.RunJob(mergeJob(job, statePath, outPath))
	return res, len(input), err
}

// publishState persists the encoded merge input into the cluster's DFS. The
// disk engines get the spill-backed variant — written through the
// replicated DFS pipeline, so both the write here and the merge job's read
// are charged I/O; the resident engine keeps its preserved fold state
// memory-resident, charging network hand-off only.
func publishState(c *Cluster, path string, data []byte) error {
	node := c.cl.StorageNodes()[0].ID
	if c.cfg.Engine == Resident {
		return c.dfs.RegisterResident(path, node, data)
	}
	w, err := c.dfs.CreateWriter(path, node, false)
	if err != nil {
		return err
	}
	c.env.Go("delta-state-write", func(p *sim.Proc) { w.Append(p, data) })
	c.env.Run()
	return nil
}

// deltaMagic heads every block of a tagged capture input: 4 magic bytes
// plus the little-endian origin block id.
const deltaMagic = "DLT1"

func tagBlock(id int, content []byte) []byte {
	out := make([]byte, 0, len(content)+8)
	out = append(out, deltaMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(id))
	return append(out, content...)
}

func cutTag(block []byte) (int, []byte, bool) {
	if len(block) < 8 || string(block[:4]) != deltaMagic {
		return 0, nil, false
	}
	return int(binary.LittleEndian.Uint32(block[4:8])), block[8:], true
}

// captureJob wraps a job so one engine run yields per-(block, key) partial
// aggregates: the reader peels each block's origin tag, the map prefixes
// every emitted key with uvarint(origin block), and — for holistic jobs —
// the reduce is replaced by a framing reducer whose output value is the
// key's raw value multiset for that block. Monoid jobs keep their monoid
// and reduce: per-(block, key) groups fold to monoid elements on every
// engine, and by the monoid law those elements are byte-identical across
// engines' fold orders.
func captureJob(inner Job, input, output string) Job {
	j := inner
	j.Name = inner.Name + "+capture"
	j.InputPath = input
	j.OutputPath = output
	j.RetainOutput = true
	j.DiscardOutput = false
	j.Progress = nil
	read, mapf := inner.Reader, inner.Map
	var block uint64
	var keyBuf []byte
	// The reader and map of one Job instance always run synchronously
	// within a single task closure (and parallel tasks get independent
	// Fresh clones), so the block tag handoff needs no locking.
	j.Reader = func(data []byte, yield func(rec []byte)) {
		id, rest, ok := cutTag(data)
		if !ok {
			panic(fmt.Sprintf("onepass: capture input block for %q is missing its delta tag", inner.Name))
		}
		block = uint64(id)
		read(rest, yield)
	}
	j.Map = func(rec []byte, emit Emit) {
		mapf(rec, func(k, v []byte) {
			keyBuf = binary.AppendUvarint(keyBuf[:0], block)
			keyBuf = append(keyBuf, k...)
			emit(keyBuf, v)
		})
	}
	if inner.Monoid == nil {
		j.Reduce = frameListReducer()
	}
	if f := inner.Fresh; f != nil {
		j.Fresh = func() Job { return captureJob(f(), input, output) }
	}
	return j
}

// frameListReducer emits a key's values as one length-framed value — the
// holistic per-block partial.
func frameListReducer() engine.ReduceFunc {
	var out []byte
	return func(key []byte, vals [][]byte, emit Emit) {
		out = out[:0]
		for _, v := range vals {
			out = kv.AppendFramed(out, v)
		}
		emit(key, out)
	}
}

// parseCapture splits a capture run's retained output into per-block
// per-key partials.
func parseCapture(out map[string]string) (map[int]map[string][]byte, error) {
	blocks := make(map[int]map[string][]byte)
	for k, v := range out {
		id, n := binary.Uvarint([]byte(k))
		if n <= 0 {
			return nil, fmt.Errorf("onepass: capture output key %q has no block prefix", k)
		}
		m := blocks[int(id)]
		if m == nil {
			m = make(map[string][]byte)
			blocks[int(id)] = m
		}
		m[k[n:]] = []byte(v)
	}
	return blocks, nil
}

// mergeJob re-reduces preserved state with a real engine run: the input is
// the encoded merge file (one kv pair per key-source), the map forwards
// pairs unchanged, and the reduce either passes a cached final through
// ('F') or regroups a key's per-block partials in block order and applies
// the original reduce ('P').
func mergeJob(inner Job, statePath, outPath string) Job {
	j := Job{
		Name:        inner.Name + "+merge",
		InputPath:   statePath,
		BinaryInput: true,
		Reader:      pairRecordReader,
		Map:         pairForwardMap,
		Reduce:      mergeReducer(inner),
		Reducers:    inner.Reducers,
		OutputPath:  outPath,
		// The merged answer is the run's deliverable: retained for checksum
		// comparison and finals caching.
		RetainOutput:     true,
		OrderInsensitive: true,
		Costs:            inner.Costs,
		MemoryPerTask:    inner.MemoryPerTask,
	}
	if f := inner.Fresh; f != nil {
		j.Fresh = func() Job { return mergeJob(f(), statePath, outPath) }
	}
	return j
}

// pairRecordReader yields each encoded kv pair of a state block as one
// record.
func pairRecordReader(block []byte, yield func(rec []byte)) {
	for rest := block; len(rest) > 0; {
		_, _, n := kv.DecodePair(rest)
		if n == 0 {
			panic("onepass: truncated pair in delta merge input")
		}
		yield(rest[:n])
		rest = rest[n:]
	}
}

// pairForwardMap re-emits an encoded pair's key and marked value.
func pairForwardMap(rec []byte, emit Emit) {
	k, v, n := kv.DecodePair(rec)
	if n == 0 {
		return
	}
	emit(k, v)
}

// mergeReducer rebuilds a key's reduce from its preserved sources. It also
// enforces the contract preserved finals depend on: the inner reduce must
// emit exactly one pair, under its own key — otherwise a cached final could
// silently misrepresent the key on the next delta.
func mergeReducer(inner Job) engine.ReduceFunc {
	reduce := inner.Reduce
	holistic := inner.Monoid == nil
	type part struct {
		block   int
		payload []byte
	}
	var parts []part
	var vals [][]byte
	return func(key []byte, vs [][]byte, emit Emit) {
		if len(vs) == 1 && len(vs[0]) > 0 && vs[0][0] == incr.MarkFinal {
			emit(key, vs[0][1:])
			return
		}
		parts = parts[:0]
		for _, v := range vs {
			b, payload, err := incr.DecodePartial(v)
			if err != nil {
				panic(fmt.Sprintf("onepass: delta merge key %q: %v", key, err))
			}
			parts = append(parts, part{block: b, payload: payload})
		}
		// Partials regroup in block order — deterministic no matter which
		// engine captured them or how the merge run grouped the pairs.
		sort.Slice(parts, func(i, j int) bool { return parts[i].block < parts[j].block })
		vals = vals[:0]
		for _, p := range parts {
			if holistic {
				if !kv.Frames(p.payload, func(b []byte) { vals = append(vals, b) }) {
					panic(fmt.Sprintf("onepass: corrupt framed partial for key %q", key))
				}
			} else {
				vals = append(vals, p.payload)
			}
		}
		emitted := 0
		reduce(key, vals, func(k, v []byte) {
			if !bytes.Equal(k, key) {
				panic(fmt.Sprintf("onepass: delta-capable reduce for %q emitted foreign key %q", key, k))
			}
			if emitted++; emitted > 1 {
				panic(fmt.Sprintf("onepass: delta-capable reduce for %q emitted more than one pair", key))
			}
			emit(k, v)
		})
	}
}
