// Command jobserve runs the multi-tenant job service: a fleet of simulated
// tenants submits jobs open-loop (seeded arrival processes on virtual time)
// to one shared cluster, the fair-share scheduler multiplexes them over the
// map/reduce slot pool, and the per-tenant report — queue-wait and job
// latency quantiles, slot-seconds, joint-backlog fair-share — prints at the
// end. Same flags and seed, byte-identical report.
//
//	jobserve
//	jobserve -tenant name=gold,weight=2,rate=6,jobs=12 -tenant name=bronze,rate=6,jobs=12
//	jobserve -tenant "name=etl,prio=1,rate=20,jobs=30,mix=sessionization@hadoop+per-user-count@hop"
//	jobserve -arrival constant -audit=false -json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"onepass/internal/gen"
	"onepass/internal/loadgen"
	"onepass/internal/service"
	"onepass/internal/textfmt"
	"onepass/internal/workloads"
)

type mixEntry struct{ workload, engine string }

type tenantSpec struct {
	cfg  service.TenantConfig
	rate float64
	jobs int
	mix  []mixEntry
}

// parseTenant reads one -tenant value: comma-separated key=value pairs.
// Keys: name (required), weight, prio, rate (jobs/s), jobs, maxrun,
// maxqueue, mix (workload@engine entries joined by +).
func parseTenant(spec string) (tenantSpec, error) {
	t := tenantSpec{rate: 4, jobs: 8, mix: []mixEntry{{"per-user-count", "hash-incremental"}}}
	t.cfg.Weight = 1
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return t, fmt.Errorf("bad field %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "name":
			t.cfg.Name = v
		case "weight":
			t.cfg.Weight, err = strconv.ParseFloat(v, 64)
		case "prio":
			t.cfg.Priority, err = strconv.Atoi(v)
		case "maxrun":
			t.cfg.MaxRunning, err = strconv.Atoi(v)
		case "maxqueue":
			t.cfg.MaxQueued, err = strconv.Atoi(v)
		case "rate":
			t.rate, err = strconv.ParseFloat(v, 64)
		case "jobs":
			t.jobs, err = strconv.Atoi(v)
		case "mix":
			t.mix = t.mix[:0]
			for _, m := range strings.Split(v, "+") {
				w, e, ok := strings.Cut(m, "@")
				if !ok {
					return t, fmt.Errorf("bad mix entry %q (want workload@engine)", m)
				}
				t.mix = append(t.mix, mixEntry{w, e})
			}
		default:
			return t, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return t, fmt.Errorf("bad %s=%q: %v", k, v, err)
		}
	}
	if t.cfg.Name == "" {
		return t, fmt.Errorf("missing name=")
	}
	return t, nil
}

// defaultFleet is the out-of-the-box demo: three tenants with 2:1:1
// weights mixing engines over the shared cluster.
func defaultFleet() []tenantSpec {
	mustParse := func(s string) tenantSpec {
		t, err := parseTenant(s)
		if err != nil {
			panic(err)
		}
		return t
	}
	return []tenantSpec{
		mustParse("name=gold,weight=2,rate=8,jobs=10,mix=per-user-count@hash-incremental"),
		mustParse("name=silver,weight=1,rate=8,jobs=10,mix=per-user-count@hadoop+page-frequency@hop"),
		mustParse("name=batch,weight=1,rate=4,jobs=6,mix=sessionization@hash-hybrid"),
	}
}

func lookupWorkload(name string) (*workloads.Workload, error) {
	switch name {
	case "sessionization":
		return workloads.Sessionization(gen.DefaultClickConfig()), nil
	case "page-frequency":
		return workloads.PageFrequency(gen.DefaultClickConfig()), nil
	case "per-user-count":
		return workloads.PerUserCount(gen.DefaultClickConfig()), nil
	case "inverted-index":
		return workloads.InvertedIndex(gen.DefaultDocConfig()), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, "; ") }
func (t *tenantFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	log.SetFlags(0)
	var tenantSpecs tenantFlags
	flag.Var(&tenantSpecs, "tenant",
		"tenant spec: name=N[,weight=W][,prio=P][,rate=R][,jobs=J][,maxrun=M][,maxqueue=Q][,mix=workload@engine+...]; repeatable (default: a 3-tenant demo fleet)")
	size := flag.String("size", "8MB", "per-job input size (e.g. 64MB, 1GB)")
	blockSize := flag.String("block", "1MB", "DFS block size")
	nodes := flag.Int("nodes", 10, "cluster nodes")
	reducers := flag.Int("reducers", 20, "reduce tasks per job")
	mapSlots := flag.Int("map-slots", 4, "map slot capacity per node (the scheduler's currency)")
	reduceSlots := flag.Int("reduce-slots", 4, "reduce slot capacity per node")
	memory := flag.String("taskmem", "", "per-task memory budget (default: node memory / 4)")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson | constant")
	seed := flag.Int64("seed", 1, "base seed for the arrival generators")
	audit := flag.Bool("audit", true,
		"arm conservation + fairness invariants (starvation, fair-pick, slot-share); a violation fails the run")
	starvation := flag.Int("starvation-passes", 0, "admissions a tenant may be passed over while holding demand before the starvation audit fires (0 = default 64)")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of text")
	out := flag.String("out", "", "also write the text report to this file")
	parallel := flag.Int("parallel-intra", 0,
		"worker goroutines for intra-run data work (0 or 1 = serial; results are byte-identical either way)")
	flag.Parse()

	specs := defaultFleet()
	if len(tenantSpecs) > 0 {
		specs = specs[:0]
		for _, ts := range tenantSpecs {
			t, err := parseTenant(ts)
			if err != nil {
				log.Fatalf("bad -tenant %q: %v", ts, err)
			}
			specs = append(specs, t)
		}
	}

	cfg := service.Config{
		Nodes:              *nodes,
		Reducers:           *reducers,
		MapSlotsPerNode:    *mapSlots,
		ReduceSlotsPerNode: *reduceSlots,
		Audit:              *audit,
		StarvationPasses:   *starvation,
		Parallelism:        *parallel,
	}
	var err error
	if cfg.BlockSize, err = textfmt.ParseSize(*blockSize); err != nil {
		log.Fatalf("bad -block: %v", err)
	}
	inputSize, err := textfmt.ParseSize(*size)
	if err != nil {
		log.Fatalf("bad -size: %v", err)
	}
	if *memory != "" {
		if cfg.MemoryPerTask, err = textfmt.ParseSize(*memory); err != nil {
			log.Fatalf("bad -taskmem: %v", err)
		}
	}
	for _, t := range specs {
		cfg.Tenants = append(cfg.Tenants, t.cfg)
	}

	svc, err := service.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Register each distinct workload's input once; all tenants share the
	// deterministic generated datasets.
	registered := make(map[string]bool)
	var loads []loadgen.TenantLoad
	for i, t := range specs {
		var mix []service.JobRequest
		for _, m := range t.mix {
			w, err := lookupWorkload(m.workload)
			if err != nil {
				log.Fatalf("tenant %s: %v", t.cfg.Name, err)
			}
			path := "input/" + w.Name
			if !registered[path] {
				if err := svc.RegisterInput(path, inputSize, w.Gen); err != nil {
					log.Fatal(err)
				}
				registered[path] = true
			}
			mix = append(mix, service.JobRequest{Engine: m.engine, Job: w.Job, InputPath: path})
		}
		var arr loadgen.Arrival
		switch *arrival {
		case "poisson":
			arr = loadgen.Poisson(*seed*31+int64(i), t.rate)
		case "constant":
			arr = loadgen.Constant(t.rate)
		default:
			log.Fatalf("bad -arrival %q (want poisson or constant)", *arrival)
		}
		loads = append(loads, loadgen.TenantLoad{Tenant: t.cfg.Name, Arrival: arr, Jobs: t.jobs, Mix: mix})
	}
	if err := loadgen.Drive(svc, loads); err != nil {
		log.Fatal(err)
	}

	rep, runErr := svc.Run()
	text := rep.Render()
	if *jsonOut {
		js, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(js))
	} else {
		fmt.Print(text)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}
