// Command datagen materializes the synthetic datasets to local files, for
// inspecting what the simulated DFS serves the engines or for feeding the
// record formats into other tools.
//
//	datagen -kind clicks -size 16MB -o clicks.log
//	datagen -kind docs -size 8MB -o docs.txt
//	datagen -kind clicks -binary -size 4MB -o clicks.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"onepass/internal/gen"
	"onepass/internal/textfmt"
)

func main() {
	log.SetFlags(0)
	kind := flag.String("kind", "clicks", "clicks | docs")
	size := flag.String("size", "16MB", "total output size")
	blockSize := flag.String("block", "1MB", "generation block size (affects per-block key locality)")
	out := flag.String("o", "", "output file (default stdout)")
	binary := flag.Bool("binary", false, "binary (SequenceFile-like) click encoding")
	seed := flag.Uint64("seed", 0, "override generator seed")
	users := flag.Int("users", 0, "override distinct users (clicks)")
	urls := flag.Int("urls", 0, "override distinct URLs (clicks)")
	flag.Parse()

	total, err := textfmt.ParseSize(*size)
	if err != nil {
		log.Fatalf("bad -size: %v", err)
	}
	block, err := textfmt.ParseSize(*blockSize)
	if err != nil {
		log.Fatalf("bad -block: %v", err)
	}

	var blockGen func(int, int64) []byte
	switch *kind {
	case "clicks":
		cfg := gen.DefaultClickConfig()
		cfg.Binary = *binary
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *users < 0 {
			log.Fatalf("bad -users: %d: must be positive", *users)
		}
		if *urls < 0 {
			log.Fatalf("bad -urls: %d: must be positive", *urls)
		}
		if *users > 0 {
			cfg.Users = *users
		}
		if *urls > 0 {
			cfg.URLs = *urls
		}
		blockGen = cfg.Block
	case "docs":
		cfg := gen.DefaultDocConfig()
		if *seed != 0 {
			cfg.Seed = *seed
		}
		blockGen = cfg.Block
	default:
		log.Fatalf("unknown -kind %q", *kind)
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	var written int64
	for i := 0; written < total; i++ {
		remaining := total - written
		if remaining > block {
			remaining = block
		}
		data := blockGen(i, remaining)
		if len(data) == 0 {
			break
		}
		if _, err := w.Write(data); err != nil {
			log.Fatal(err)
		}
		written += int64(len(data))
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes of %s data\n", written, *kind)
}
