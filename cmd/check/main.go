// Command check runs the cross-engine differential checker: fuzzed
// (workload, config, faults) tuples across every registered engine with
// invariant audits armed, asserting identical output, reference agreement,
// monoid-on/off equivalence, fault convergence, and chained-pipeline
// trace/fault propagation.
//
// Usage:
//
//	go run ./cmd/check [-seeds N] [-seed BASE] [-out report.md] [-q]
//
// Exit status is non-zero if any tuple fails; -out writes a Markdown report
// of the failing tuples (the CI artifact).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"onepass/internal/check"
)

func main() {
	log.SetFlags(0)
	seeds := flag.Int("seeds", 25, "number of fuzzed tuples to check")
	seed := flag.Int64("seed", 1, "base seed (tuple i uses seed+i)")
	out := flag.String("out", "", "write a Markdown report to this file")
	parallel := flag.Int("parallel-intra", 0,
		"worker goroutines for intra-run data work (0 or 1 = serial; reports are byte-identical either way)")
	quiet := flag.Bool("q", false, "suppress per-tuple progress")
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	rep := check.Run(check.Options{Seeds: *seeds, Seed: *seed, Parallelism: *parallel, Log: progress})

	if *out != "" {
		if err := os.WriteFile(*out, []byte(rep.Markdown(*seed)), 0o644); err != nil {
			log.Fatalf("check: writing report: %v", err)
		}
	}
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintln(os.Stderr, f)
		}
		log.Fatalf("check: %d tuples, %d runs, %d FAILURE(S)", rep.Tuples, rep.Runs, len(rep.Failures))
	}
	fmt.Printf("check: %d tuples, %d runs, all engines agree, all audits clean\n", rep.Tuples, rep.Runs)
}
