// Command profilediff compares a RunProfile JSON (cmd/runjob -profile-json,
// cmd/experiments -profile-dir) against a checked-in golden profile and
// fails (exit 1) when the run's shape drifts beyond tolerance. It is CI's
// profile regression gate — the trace-level analogue of the benchdiff
// ratchet:
//
//	go run ./cmd/runjob -workload sessionization -engine hadoop -size 8MB \
//	  -profile-json /tmp/profile.json
//	go run ./cmd/profilediff -golden ci/profile-golden.json -current /tmp/profile.json
//
// Three things gate, all two-sided:
//
//   - makespan: relative drift beyond -makespan-tol (default 5%). The
//     simulation is deterministic, so any drift at a fixed config means a
//     code change moved the virtual clock; the tolerance is headroom for
//     intentional cost-model adjustments, not for noise.
//   - attribution shares: each cause's share of the makespan may move at
//     most -share-tol (default 5 points). A run whose time shifts from cpu
//     to network has changed shape even if the makespan held still.
//   - critical-path composition: same tolerance per path kind, so the
//     bottleneck structure (map-bound vs shuffle-bound vs reduce-bound)
//     cannot drift silently.
//
// Faster runs fail too: an unclaimed improvement means the golden profile
// is stale, and a stale golden would let a follow-up change give the win
// back unnoticed. Accept intentional movement by refreshing the golden:
//
//	go run ./cmd/profilediff -golden ci/profile-golden.json -current /tmp/profile.json -update
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"onepass/internal/sim"
)

// profShape is the gated slice of a RunProfile. Parsing only these fields
// keeps the gate focused on run shape; byte-level identity of the full
// profile is CI's separate determinism check.
type profShape struct {
	Job         string       `json:"job"`
	Engine      string       `json:"engine"`
	Makespan    sim.Duration `json:"makespan"`
	Attribution []shareEntry `json:"attribution"`
	Composition []shareEntry `json:"pathComposition"`
}

// shareEntry covers both attribution rows (cause) and path-composition rows
// (kind): a label with a share of the makespan.
type shareEntry struct {
	Cause string  `json:"cause"`
	Kind  string  `json:"kind"`
	Share float64 `json:"share"`
}

func (e shareEntry) label() string {
	if e.Cause != "" {
		return e.Cause
	}
	return e.Kind
}

func loadShape(path string) (*profShape, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p profShape
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Makespan <= 0 || len(p.Attribution) == 0 {
		return nil, fmt.Errorf("%s: not a RunProfile (no makespan/attribution)", path)
	}
	return &p, nil
}

// shareMap indexes entries by label. Labels absent from one side read as
// share 0, so a cause appearing or vanishing shows up as a full-size drift.
func shareMap(entries []shareEntry) map[string]float64 {
	m := make(map[string]float64, len(entries))
	for _, e := range entries {
		m[e.label()] = e.Share
	}
	return m
}

// labelUnion returns golden-side labels in order, then current-only labels
// in their own order — deterministic without sorting away the profile's
// canonical cause ordering.
func labelUnion(golden, current []shareEntry) []string {
	var out []string
	seen := make(map[string]bool)
	for _, e := range golden {
		if !seen[e.label()] {
			seen[e.label()] = true
			out = append(out, e.label())
		}
	}
	for _, e := range current {
		if !seen[e.label()] {
			seen[e.label()] = true
			out = append(out, e.label())
		}
	}
	return out
}

// compareShares prints one row per label and returns how many drifted
// beyond tol (absolute share points).
func compareShares(section string, golden, current []shareEntry, tol float64) int {
	g, c := shareMap(golden), shareMap(current)
	bad := 0
	for _, label := range labelUnion(golden, current) {
		delta := c[label] - g[label]
		status := "ok"
		if delta > tol || delta < -tol {
			status = "DRIFT"
			bad++
		}
		fmt.Printf("%-8s %-12s %-15s %6.1f%% -> %6.1f%% (%+.1f pts)\n",
			status, section, label, 100*g[label], 100*c[label], 100*delta)
	}
	return bad
}

func main() {
	golden := flag.String("golden", "ci/profile-golden.json", "checked-in golden profile")
	current := flag.String("current", "", "profile JSON to compare (required)")
	makespanTol := flag.Float64("makespan-tol", 0.05, "fail when |current/golden - 1| of the makespan exceeds this")
	shareTol := flag.Float64("share-tol", 0.05, "fail when any attribution or path-composition share moves more than this (absolute)")
	update := flag.Bool("update", false, "rewrite the golden from -current instead of gating")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "usage: profilediff -golden ci/profile-golden.json -current profile.json [-update]")
		os.Exit(2)
	}

	cur, err := loadShape(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profilediff: %v\n", err)
		os.Exit(2)
	}

	if *update {
		data, err := os.ReadFile(*current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profilediff: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*golden, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "profilediff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("golden %s refreshed from %s (%s/%s, makespan %s)\n",
			*golden, *current, cur.Job, cur.Engine, cur.Makespan)
		return
	}

	gold, err := loadShape(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profilediff: %v\n", err)
		os.Exit(2)
	}
	if gold.Job != cur.Job || gold.Engine != cur.Engine {
		fmt.Fprintf(os.Stderr, "profilediff: golden is %s/%s but current is %s/%s — wrong golden file?\n",
			gold.Job, gold.Engine, cur.Job, cur.Engine)
		os.Exit(2)
	}

	bad := 0
	drift := float64(cur.Makespan)/float64(gold.Makespan) - 1
	status := "ok"
	if drift > *makespanTol || drift < -*makespanTol {
		status = "DRIFT"
		bad++
	}
	fmt.Printf("%-8s %-12s %-15s %v -> %v (%+.1f%%)\n",
		status, "makespan", "", gold.Makespan, cur.Makespan, 100*drift)

	bad += compareShares("attribution", gold.Attribution, cur.Attribution, *shareTol)
	bad += compareShares("path", gold.Composition, cur.Composition, *shareTol)

	fmt.Printf("\n%s/%s: makespan ±%.0f%%, shares ±%.0f pts: %d drift(s)\n",
		cur.Job, cur.Engine, 100**makespanTol, 100**shareTol, bad)
	if bad > 0 {
		fmt.Println("intentional movement? refresh the golden:")
		fmt.Printf("  go run ./cmd/profilediff -golden %s -current %s -update\n", *golden, *current)
		os.Exit(1)
	}
}
