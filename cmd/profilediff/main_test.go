package main

import (
	"strings"
	"testing"

	"onepass/internal/sim"
)

func shapeFixture() *profShape {
	return &profShape{
		Job: "sessionization", Engine: "hadoop", Makespan: sim.Duration(500 * sim.Millisecond),
		Attribution: []shareEntry{
			{Cause: "cpu", Share: 0.30},
			{Cause: "network", Share: 0.60},
			{Cause: "scheduler-idle", Share: 0.10},
		},
		Composition: []shareEntry{
			{Kind: "map", Share: 0.40},
			{Kind: "reduce", Share: 0.60},
		},
	}
}

func TestCompareSharesWithinTolerance(t *testing.T) {
	g := shapeFixture()
	c := shapeFixture()
	c.Attribution[0].Share = 0.33 // +3 pts, under the 5-pt tolerance
	c.Attribution[1].Share = 0.57
	if bad := compareShares("attribution", g.Attribution, c.Attribution, 0.05); bad != 0 {
		t.Fatalf("3-pt drift flagged at 5-pt tolerance: %d", bad)
	}
}

func TestCompareSharesFlagsDriftBothWays(t *testing.T) {
	g := shapeFixture()
	c := shapeFixture()
	// cpu gains 10 pts at network's expense: both rows drift.
	c.Attribution[0].Share = 0.40
	c.Attribution[1].Share = 0.50
	if bad := compareShares("attribution", g.Attribution, c.Attribution, 0.05); bad != 2 {
		t.Fatalf("got %d drifts, want 2 (gain and loss both gate)", bad)
	}
}

func TestCompareSharesNewAndVanishedCauses(t *testing.T) {
	g := shapeFixture()
	c := shapeFixture()
	// barrier-wait appears with 8 pts; scheduler-idle vanishes entirely.
	c.Attribution = []shareEntry{
		{Cause: "cpu", Share: 0.30},
		{Cause: "network", Share: 0.62},
		{Cause: "barrier-wait", Share: 0.08},
	}
	if bad := compareShares("attribution", g.Attribution, c.Attribution, 0.05); bad != 2 {
		t.Fatalf("got %d drifts, want 2 (new cause + vanished cause)", bad)
	}
}

func TestLabelUnionKeepsGoldenOrder(t *testing.T) {
	g := []shareEntry{{Cause: "cpu"}, {Cause: "network"}}
	c := []shareEntry{{Cause: "network"}, {Cause: "disk-queue"}}
	got := labelUnion(g, c)
	want := []string{"cpu", "network", "disk-queue"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("labelUnion = %v, want %v", got, want)
	}
}
