// Command benchdiff compares `go test -bench` output against a checked-in
// baseline and fails (exit 1) when a benchmark regresses beyond a
// threshold. It is CI's benchmark smoke gate:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | tee /tmp/bench.txt
//	go run ./cmd/benchdiff -baseline ci/bench-baseline.txt -current /tmp/bench.txt
//
// The default metric is allocs/op: allocation counts are stable across
// machines and Go patch releases, so a >25% jump is a real regression, not
// scheduler noise — which also makes the check meaningful at -benchtime=1x,
// where ns/op from a single iteration is mostly noise. Pass -metric ns/op
// (with a generous -threshold) only on a quiet, pinned machine.
//
// Refresh the baseline after intentional changes:
//
//	go test -bench=. -benchtime=1x -benchmem ./... > ci/bench-baseline.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry holds one benchmark's metrics, keyed by unit ("ns/op", "B/op", ...).
type entry map[string]float64

// parseBench reads `go test -bench` output into key→metrics, where key is
// "pkg.BenchmarkName" with the -GOMAXPROCS suffix stripped so runs from
// hosts with different core counts compare.
func parseBench(path string) (map[string]entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]entry)
	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines: name, iterations, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip -GOMAXPROCS
			}
		}
		e := make(entry)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a value/unit pair (e.g. trailing note)
			}
			e[fields[i+1]] = v
		}
		if len(e) > 0 {
			out[pkg+"."+name] = e
		}
	}
	return out, sc.Err()
}

func main() {
	baseline := flag.String("baseline", "ci/bench-baseline.txt", "checked-in baseline bench output")
	current := flag.String("current", "", "bench output to compare (required)")
	metric := flag.String("metric", "allocs/op", "metric to gate on (allocs/op, B/op, ns/op)")
	threshold := flag.Float64("threshold", 0.25, "fail when current > baseline * (1+threshold)")
	minVal := flag.Float64("min", 8, "skip comparisons where both values are below this (noise floor)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline ci/bench-baseline.txt -current bench.txt")
		os.Exit(2)
	}

	base, err := parseBench(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 || len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks parsed (baseline %d, current %d)\n", len(base), len(cur))
		os.Exit(2)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions, compared := 0, 0
	for _, k := range keys {
		b, ok := base[k][*metric]
		if !ok {
			continue
		}
		ce, ok := cur[k]
		if !ok {
			fmt.Printf("MISSING  %-60s (in baseline, not in current run)\n", k)
			continue
		}
		c, ok := ce[*metric]
		if !ok {
			continue
		}
		compared++
		if b < *minVal && c < *minVal {
			continue
		}
		delta := 0.0
		if b > 0 {
			delta = c/b - 1
		} else if c > 0 {
			delta = 1 // 0 → nonzero counts as full regression
		}
		status := "ok      "
		if delta > *threshold {
			status = "REGRESS "
			regressions++
		}
		fmt.Printf("%s %-60s %12.1f -> %12.1f %s (%+.1f%%)\n", status, k, b, c, *metric, 100*delta)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("NEW      %-60s (not in baseline — refresh ci/bench-baseline.txt)\n", k)
		}
	}

	fmt.Printf("\ncompared %d benchmarks on %s at +%.0f%% threshold: %d regression(s)\n",
		compared, *metric, 100**threshold, regressions)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: nothing compared — metric missing? (run benchmarks with -benchmem)")
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}
