// Command benchdiff compares `go test -bench` output against a checked-in
// baseline and fails (exit 1) when a benchmark drifts beyond a threshold in
// EITHER direction. It is CI's benchmark smoke gate:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | tee /tmp/bench.txt
//	go run ./cmd/benchdiff -baseline ci/bench-baseline.txt -current /tmp/bench.txt
//
// The default metrics are allocs/op and B/op: allocation counts and byte
// volumes are stable across machines and Go patch releases, so a >25% jump
// is a real regression, not scheduler noise — which also makes the check
// meaningful at -benchtime=1x, where ns/op from a single iteration is mostly
// noise. Pass -metrics ns/op (with a generous -threshold) only on a quiet,
// pinned machine.
//
// The gate is a two-sided ratchet. Regressions fail for the obvious reason.
// Improvements beyond the threshold ALSO fail: an unclaimed improvement
// means the checked-in baseline is stale, and a stale baseline would let a
// follow-up change silently give the win back. Claim improvements (and
// accept intentional regressions) by refreshing the baseline in place:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | tee /tmp/bench.txt
//	go run ./cmd/benchdiff -current /tmp/bench.txt -update
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry holds one benchmark's metrics, keyed by unit ("ns/op", "B/op", ...).
type entry map[string]float64

// parseBench reads `go test -bench` output into key→metrics, where key is
// "pkg.BenchmarkName" with the -GOMAXPROCS suffix stripped so runs from
// hosts with different core counts compare.
func parseBench(r io.Reader) (map[string]entry, error) {
	out := make(map[string]entry)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark lines: name, iterations, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip -GOMAXPROCS
			}
		}
		e := make(entry)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a value/unit pair (e.g. trailing note)
			}
			e[fields[i+1]] = v
		}
		if len(e) > 0 {
			out[pkg+"."+name] = e
		}
	}
	return out, sc.Err()
}

func parseBenchFile(path string) (map[string]entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// row is one (benchmark, metric) comparison.
type row struct {
	key    string
	metric string
	base   float64
	cur    float64
	delta  float64 // cur/base - 1
	status string  // "ok", "REGRESS", "IMPROVE"
}

// report is the outcome of comparing a current run against the baseline.
type report struct {
	rows         []row
	missing      []string // in baseline, absent from current run
	added        []string // in current run, absent from baseline
	compared     int
	regressions  int
	improvements int
}

// compare evaluates every baseline benchmark on each metric with a two-sided
// threshold. Comparisons where both sides sit below minVal are skipped as
// noise-floor.
func compare(base, cur map[string]entry, metrics []string, threshold, minVal float64) report {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var rep report
	for _, k := range keys {
		ce, inCur := cur[k]
		seen := false
		for _, m := range metrics {
			b, ok := base[k][m]
			if !ok {
				continue
			}
			seen = true
			if !inCur {
				continue
			}
			c, ok := ce[m]
			if !ok {
				continue
			}
			rep.compared++
			if b < minVal && c < minVal {
				continue
			}
			delta := 0.0
			if b > 0 {
				delta = c/b - 1
			} else if c > 0 {
				delta = 1 // 0 → nonzero counts as full regression
			}
			r := row{key: k, metric: m, base: b, cur: c, delta: delta, status: "ok"}
			switch {
			case delta > threshold:
				r.status = "REGRESS"
				rep.regressions++
			case delta < -threshold:
				r.status = "IMPROVE"
				rep.improvements++
			}
			rep.rows = append(rep.rows, r)
		}
		if seen && !inCur {
			rep.missing = append(rep.missing, k)
		}
	}
	added := make([]string, 0)
	for k := range cur {
		if _, ok := base[k]; !ok {
			added = append(added, k)
		}
	}
	sort.Strings(added)
	rep.added = added
	return rep
}

// benchstatTable renders an old/new/delta comparison in the layout of
// golang.org/x/perf/cmd/benchstat, one section per metric — the nightly
// workflow uploads this as its comparison artifact without needing the tool
// itself installed.
func benchstatTable(base, cur map[string]entry, metrics []string) string {
	keys := make([]string, 0, len(base))
	for k := range base {
		if _, ok := cur[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&sb, "%-52s %15s %15s %9s\n", "name", "old "+m, "new "+m, "delta")
		for _, k := range keys {
			b, okB := base[k][m]
			c, okC := cur[k][m]
			if !okB || !okC {
				continue
			}
			name := k
			if i := strings.LastIndex(name, ".Benchmark"); i >= 0 {
				name = name[i+len(".Benchmark"):]
			}
			delta := "~"
			if b > 0 {
				delta = fmt.Sprintf("%+.2f%%", 100*(c/b-1))
			}
			fmt.Fprintf(&sb, "%-52s %15s %15s %9s\n", name, humanize(b), humanize(c), delta)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// humanize renders a metric value the way benchstat does: scaled with a
// k/M/G suffix and two significant decimals.
func humanize(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// verdict maps a report to the process exit code: 0 passes, 1 fails the
// gate. Both regressions and unclaimed improvements fail — the two sides of
// the ratchet.
func verdict(rep report) int {
	if rep.regressions > 0 || rep.improvements > 0 {
		return 1
	}
	return 0
}

func main() {
	baseline := flag.String("baseline", "ci/bench-baseline.txt", "checked-in baseline bench output")
	current := flag.String("current", "", "bench output to compare (required)")
	metrics := flag.String("metrics", "allocs/op,B/op", "comma-separated metrics to gate on")
	metricOld := flag.String("metric", "", "deprecated alias for -metrics (single metric)")
	threshold := flag.Float64("threshold", 0.25, "fail when |current/baseline - 1| exceeds this")
	minVal := flag.Float64("min", 8, "skip comparisons where both values are below this (noise floor)")
	update := flag.Bool("update", false, "rewrite the baseline from -current instead of gating")
	benchstat := flag.String("benchstat", "", "also write a benchstat-style comparison table to this file")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline ci/bench-baseline.txt -current bench.txt [-update]")
		os.Exit(2)
	}
	gateOn := strings.Split(*metrics, ",")
	if *metricOld != "" {
		gateOn = []string{*metricOld}
	}

	cur, err := parseBenchFile(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks parsed from %s\n", *current)
		os.Exit(2)
	}

	if *update {
		data, err := os.ReadFile(*current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("baseline %s refreshed from %s (%d benchmarks)\n", *baseline, *current, len(cur))
		return
	}

	base, err := parseBenchFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks parsed from %s\n", *baseline)
		os.Exit(2)
	}

	if *benchstat != "" {
		if err := os.WriteFile(*benchstat, []byte(benchstatTable(base, cur, gateOn)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}

	rep := compare(base, cur, gateOn, *threshold, *minVal)
	for _, k := range rep.missing {
		fmt.Printf("MISSING  %-60s (in baseline, not in current run)\n", k)
	}
	for _, r := range rep.rows {
		fmt.Printf("%-8s %-60s %14.1f -> %14.1f %s (%+.1f%%)\n",
			r.status, r.key, r.base, r.cur, r.metric, 100*r.delta)
	}
	for _, k := range rep.added {
		fmt.Printf("NEW      %-60s (not in baseline — refresh it with -update)\n", k)
	}

	fmt.Printf("\ncompared %d benchmark metrics (%s) at ±%.0f%%: %d regression(s), %d unclaimed improvement(s)\n",
		rep.compared, strings.Join(gateOn, ", "), 100**threshold, rep.regressions, rep.improvements)
	if rep.compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: nothing compared — metric missing? (run benchmarks with -benchmem)")
		os.Exit(2)
	}
	if rep.improvements > 0 {
		fmt.Println("improvements beyond the threshold mean the baseline is stale; refresh the baseline:")
		fmt.Printf("  go test -bench=. -benchtime=1x -benchmem -run '^$' ./... | tee /tmp/bench.txt\n")
		fmt.Printf("  go run ./cmd/benchdiff -baseline %s -current /tmp/bench.txt -update\n", *baseline)
	}
	os.Exit(verdict(rep))
}
