package main

import (
	"strings"
	"testing"
)

const sampleBench = `
goos: linux
goarch: amd64
pkg: onepass
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableI_Workloads 	       1	14090653780 ns/op	8497055488 B/op	52483022 allocs/op
cpu-util         |█▇▇▄▁▄▆▃▁▁▁▂▂▁▁▁▁▁▁▁▁▁▁| max=0.46 mean=0.13
BenchmarkFig2a_TaskTimeline-8         	       1	     80512 ns/op	    9016 B/op	     117 allocs/op
pkg: onepass/internal/kv
BenchmarkAppendDecodePair 	       1	      1397 ns/op	  25.77 MB/s	      80 B/op	       3 allocs/op
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	e := got["onepass.BenchmarkTableI_Workloads"]
	if e["allocs/op"] != 52483022 || e["B/op"] != 8497055488 {
		t.Fatalf("TableI metrics = %v", e)
	}
	// -GOMAXPROCS suffix must be stripped so hosts with different core
	// counts compare under the same key.
	if _, ok := got["onepass.BenchmarkFig2a_TaskTimeline"]; !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	// MB/s is a value/unit pair like any other and must not derail parsing.
	if got["onepass/internal/kv.BenchmarkAppendDecodePair"]["allocs/op"] != 3 {
		t.Fatalf("kv metrics = %v", got["onepass/internal/kv.BenchmarkAppendDecodePair"])
	}
}

func bench(allocs, bytes float64) entry {
	return entry{"allocs/op": allocs, "B/op": bytes, "ns/op": 1}
}

var gateMetrics = []string{"allocs/op", "B/op"}

func TestCompareOK(t *testing.T) {
	base := map[string]entry{"p.BenchmarkA": bench(1000, 4000)}
	cur := map[string]entry{"p.BenchmarkA": bench(1100, 4100)}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if rep.compared != 2 || rep.regressions != 0 || rep.improvements != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if verdict(rep) != 0 {
		t.Fatal("within-threshold drift must pass")
	}
}

func TestCompareRegression(t *testing.T) {
	base := map[string]entry{"p.BenchmarkA": bench(1000, 4000)}
	cur := map[string]entry{"p.BenchmarkA": bench(1300, 4000)}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if rep.regressions != 1 {
		t.Fatalf("want 1 regression, report = %+v", rep)
	}
	if verdict(rep) != 1 {
		t.Fatal("regression must fail the gate")
	}
}

func TestCompareUnclaimedImprovementFails(t *testing.T) {
	// The other side of the ratchet: a big improvement against a stale
	// baseline must fail until the baseline is refreshed with -update.
	base := map[string]entry{"p.BenchmarkA": bench(1000, 4000)}
	cur := map[string]entry{"p.BenchmarkA": bench(100, 4000)}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if rep.improvements != 1 {
		t.Fatalf("want 1 improvement, report = %+v", rep)
	}
	if verdict(rep) != 1 {
		t.Fatal("unclaimed improvement must fail the gate")
	}
}

func TestCompareBOpGated(t *testing.T) {
	// allocs/op flat but B/op tripled: the gate must catch it.
	base := map[string]entry{"p.BenchmarkA": bench(1000, 4000)}
	cur := map[string]entry{"p.BenchmarkA": bench(1000, 12000)}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if rep.regressions != 1 {
		t.Fatalf("B/op regression missed, report = %+v", rep)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// 2 → 6 allocs is +200% but both sides are under the noise floor.
	base := map[string]entry{"p.BenchmarkA": bench(2, 2)}
	cur := map[string]entry{"p.BenchmarkA": bench(6, 6)}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if rep.regressions != 0 || verdict(rep) != 0 {
		t.Fatalf("noise-floor comparison gated, report = %+v", rep)
	}
}

func TestCompareZeroToNonzero(t *testing.T) {
	base := map[string]entry{"p.BenchmarkA": bench(0, 0)}
	cur := map[string]entry{"p.BenchmarkA": bench(500, 500)}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if rep.regressions != 2 {
		t.Fatalf("0 -> nonzero must regress both metrics, report = %+v", rep)
	}
}

func TestBenchstatTable(t *testing.T) {
	base := map[string]entry{"onepass.BenchmarkTableI_Workloads": bench(52483022, 8497055488)}
	cur := map[string]entry{"onepass.BenchmarkTableI_Workloads": bench(574879, 4043316752)}
	got := benchstatTable(base, cur, gateMetrics)
	for _, want := range []string{
		"old allocs/op", "new B/op", "TableI_Workloads", "52.48M", "574.88k", "8.50G", "-98.90%",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("table missing %q:\n%s", want, got)
		}
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := map[string]entry{
		"p.BenchmarkGone": bench(1000, 4000),
		"p.BenchmarkKept": bench(1000, 4000),
	}
	cur := map[string]entry{
		"p.BenchmarkKept": bench(1000, 4000),
		"p.BenchmarkNew":  bench(1000, 4000),
	}
	rep := compare(base, cur, gateMetrics, 0.25, 8)
	if len(rep.missing) != 1 || rep.missing[0] != "p.BenchmarkGone" {
		t.Fatalf("missing = %v", rep.missing)
	}
	if len(rep.added) != 1 || rep.added[0] != "p.BenchmarkNew" {
		t.Fatalf("added = %v", rep.added)
	}
	// Missing/new entries inform but do not gate; the kept benchmark is flat.
	if verdict(rep) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}
