// Command runjob executes one workload on one engine over the simulated
// cluster and prints the run's metrics: the quickest way to poke at the
// system.
//
//	runjob -workload sessionization -engine hash-incremental -size 64MB
//	runjob -workload per-user-count -engine hadoop -ssd
//	runjob -workload sessionization -engine hash-hotkey -trace run.json
//	runjob -workload per-user-count -engine resident -delta 0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"onepass"
	"onepass/internal/metrics"
	"onepass/internal/textfmt"
)

func main() {
	log.SetFlags(0)
	workload := flag.String("workload", "sessionization",
		"sessionization | windowed-sessionization | page-frequency | per-user-count | inverted-index")
	engineName := flag.String("engine", "hadoop",
		strings.Join(onepass.EngineNames(), " | "))
	size := flag.String("size", "32MB", "input size (e.g. 64MB, 1GB)")
	nodes := flag.Int("nodes", 10, "cluster nodes")
	reducers := flag.Int("reducers", 20, "reduce tasks")
	blockSize := flag.String("block", "1MB", "DFS block size")
	ssd := flag.Bool("ssd", false, "put intermediate data on a per-node SSD")
	split := flag.Bool("split", false, "split storage/compute nodes")
	memory := flag.String("taskmem", "", "per-task memory budget (default: node memory / 4)")
	streamSecs := flag.Float64("stream", 0, "stream the input in over this many virtual seconds (0 = preloaded)")
	progress := flag.Bool("progress", false, "print task-completion progress")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
	jsonOut := flag.Bool("json", false, "print the full engine result as JSON instead of the text report")
	gantt := flag.Bool("gantt", false, "render the trace as a plain-text Gantt chart (implies tracing)")
	profileFlag := flag.Bool("profile", false,
		"print the post-run profile: makespan attribution, critical path, span statistics (implies tracing)")
	profileJSON := flag.String("profile-json", "", "write the run profile as JSON to this file (implies tracing)")
	faultSpec := flag.String("fault", "",
		"fault schedule: comma-separated kind@T[+W]:nN[xF], kinds fail|disk-slow|net-slow|straggler (e.g. 'fail@30s:n3,disk-slow@10s+20s:n1x8')")
	faultSeed := flag.Int64("fault-seed", 0, "derive a chaos fault schedule from this seed (ignored when -fault is set)")
	parallel := flag.Int("parallel-intra", 0,
		"worker goroutines for intra-run data work (0 or 1 = serial; results are byte-identical either way)")
	deltaFrac := flag.Float64("delta", 0,
		"evolve this fraction of the input (seeded updates+deletes+appends) and compare the incremental re-run against a full re-run (click workloads only)")
	deltaSeed := flag.Uint64("delta-seed", 42, "delta derivation seed (with -delta)")
	flag.Parse()

	cfg := onepass.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Reducers = *reducers
	cfg.SSDIntermediate = *ssd
	cfg.SplitStorageCompute = *split
	cfg.DiscardOutput = true
	cfg.Parallelism = *parallel

	var err error
	if cfg.BlockSize, err = textfmt.ParseSize(*blockSize); err != nil {
		log.Fatalf("bad -block: %v", err)
	}
	inputSize, err := textfmt.ParseSize(*size)
	if err != nil {
		log.Fatalf("bad -size: %v", err)
	}
	if *memory != "" {
		if cfg.MemoryPerTask, err = textfmt.ParseSize(*memory); err != nil {
			log.Fatalf("bad -taskmem: %v", err)
		}
	}

	var tl *onepass.TraceLog
	if *tracePath != "" || *gantt || *profileFlag || *profileJSON != "" {
		tl = onepass.NewTraceLog()
		cfg.Trace = tl
	}

	if cfg.Engine, err = onepass.ParseEngine(*engineName); err != nil {
		log.Fatalf("bad -engine: %v", err)
	}

	cc := onepass.DefaultClickConfig()
	var w *onepass.Workload
	clicks := true
	switch *workload {
	case "sessionization":
		w = onepass.Sessionization(cc)
	case "windowed-sessionization":
		w = onepass.WindowedSessionization(cc, 0)
	case "page-frequency":
		w = onepass.PageFrequency(cc)
	case "per-user-count":
		w = onepass.PerUserCount(cc)
	case "inverted-index":
		w = onepass.InvertedIndex(onepass.DefaultDocConfig())
		clicks = false
	default:
		log.Fatalf("unknown workload %q", *workload)
	}

	data := onepass.Dataset{Path: "input/" + w.Name, Size: inputSize, Gen: w.Gen}
	if *streamSecs > 0 {
		data.ArrivalRate = float64(inputSize) / *streamSecs
	}

	if *deltaFrac != 0 {
		if *deltaFrac < 0 || *deltaFrac > 1 {
			log.Fatalf("bad -delta: %v: must be in (0,1]", *deltaFrac)
		}
		if *streamSecs > 0 {
			log.Fatal("-delta cannot be combined with -stream: deltas evolve a stored input")
		}
		if *faultSpec != "" || *faultSeed != 0 {
			log.Fatal("-delta cannot be combined with -fault or -fault-seed")
		}
		if !clicks {
			log.Fatalf("-delta requires a click workload, not %q", *workload)
		}
		runDeltaCompare(cfg, data, w.Job, onepass.DefaultDelta(cc, *deltaSeed, *deltaFrac))
		return
	}
	job := w.Job
	if *progress {
		job.Progress = func(phase string, done, total int) {
			if done == total || done%25 == 0 {
				fmt.Fprintf(os.Stderr, "  %s %d/%d\n", phase, done, total)
			}
		}
	}
	if *faultSpec != "" {
		if cfg.Faults, err = onepass.ParseFaults(*faultSpec); err != nil {
			log.Fatalf("bad -fault: %v", err)
		}
	} else if *faultSeed != 0 {
		// Derive the chaos horizon from a fault-free run of the same job, so
		// every fault lands while the job is actually running.
		base, err := onepass.Run(cfg, data, job)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = onepass.ChaosFaults(*faultSeed, *nodes, base.Makespan)
		fmt.Fprintf(os.Stderr, "chaos schedule (seed %d): %s\n", *faultSeed, cfg.Faults.String())
	}
	res, err := onepass.Run(cfg, data, job)
	if err != nil {
		log.Fatal(err)
	}
	if *parallel != 0 {
		// Real-time pool observability (stderr, so -json output and golden
		// traces stay byte-identical): aggregate closure time from a serial
		// run is the Amdahl numerator for multi-core overlap.
		fmt.Fprintf(os.Stderr, "intra-run pool: %d closures, %s aggregate closure time, peak %d in flight\n",
			res.Pool.Dispatched, res.Pool.Busy.Round(time.Millisecond), res.Pool.MaxInFlight)
	}

	var prof *onepass.RunProfile
	if tl != nil {
		// Counter tracks (utilization, in-flight work) render in Perfetto
		// alongside the spans; attach before the Chrome export.
		onepass.AttachCounterTracks(tl, res)
		if prof, err = onepass.ComputeProfile(tl, res); err != nil {
			log.Fatalf("profile: %v", err)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tl.WriteChrome(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tl.Len(), *tracePath)
	}
	if *profileJSON != "" {
		b, err := prof.MarshalIndentJSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*profileJSON, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote profile to %s\n", *profileJSON)
	}

	if *jsonOut {
		// The deterministic Result lives under "result"; the real-time pool
		// stats (wall-clock, hence nondeterministic) live under
		// "diagnostics" so determinism checks can select one key.
		out := struct {
			Result      *onepass.Result `json:"result"`
			Diagnostics diagnostics     `json:"diagnostics"`
		}{res, diagnostics{poolStats{
			Dispatched:  res.Pool.Dispatched,
			MaxInFlight: res.Pool.MaxInFlight,
			BusyMS:      float64(res.Pool.Busy) / float64(time.Millisecond),
		}}}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		if *profileFlag {
			fmt.Fprint(os.Stderr, prof.Report())
		}
		if *gantt {
			fmt.Fprint(os.Stderr, tl.Gantt(72))
			fmt.Fprint(os.Stderr, prof.NodeUtilReport())
		}
		return
	}

	fmt.Println(res.Summary())
	fmt.Println()
	fmt.Println("Task timeline:")
	fmt.Print(res.RenderTimeline(72))
	fmt.Println()
	fmt.Printf("cpu-util   |%s| mean=%.2f\n", res.CPUUtil.Downsample(res.CPUUtil.Len()/72+1).Spark(), res.CPUUtil.Mean())
	fmt.Printf("cpu-iowait |%s| mean=%.2f\n", res.Iowait.Downsample(res.Iowait.Len()/72+1).Spark(), res.Iowait.Mean())
	fmt.Println()
	fmt.Println("CPU by phase:")
	for _, ph := range res.CPU.Phases() {
		fmt.Printf("  %-14s %8.2f s (%4.1f%%)\n", ph, res.CPU.Seconds(ph), 100*res.CPU.Share(ph))
	}
	fmt.Println()
	fmt.Println("Counters:")
	for _, name := range res.Counters.Names() {
		fmt.Printf("  %-28s %.0f\n", name, res.Counters.Get(name))
	}
	fmt.Println()
	fmt.Printf("Pool: %d closures dispatched, peak %d in flight, %s aggregate closure time\n",
		res.Pool.Dispatched, res.Pool.MaxInFlight, res.Pool.Busy.Round(time.Millisecond))
	if len(res.Snapshots) > 0 {
		fmt.Println()
		fmt.Printf("Early answers: %d snapshots, first at %v\n", len(res.Snapshots), res.Snapshots[0].At)
	}
	if len(res.Progress) > 0 {
		fmt.Println()
		fmt.Println("Progress vs accuracy (map fraction -> output coverage):")
		for _, pp := range res.Progress {
			cov := 0.0
			if res.OutputPairs > 0 {
				cov = float64(pp.Pairs) / float64(res.OutputPairs)
			}
			fmt.Printf("  t=%-12v map=%5.1f%%  pairs=%-9d coverage=%5.1f%%  spilled=%d\n",
				pp.At, 100*pp.MapFraction, pp.Pairs, 100*cov, pp.SpilledBytes)
		}
	}
	if *profileFlag {
		fmt.Println()
		fmt.Print(prof.Report())
	}
	if *gantt {
		fmt.Println()
		fmt.Println("Trace Gantt:")
		fmt.Print(tl.Gantt(72))
		fmt.Print(prof.NodeUtilReport())
	}
}

// runDeltaCompare runs the -delta comparison: the incremental path (prime
// on the base, re-run over changed blocks plus preserved state) against a
// full re-run over the evolved dataset on a fresh cluster. The report is
// deterministic — same flags, same bytes — and the process exits non-zero
// if the outputs diverge, so CI can gate on it directly.
func runDeltaCompare(cfg onepass.Config, data onepass.Dataset, job onepass.Job, d onepass.Delta) {
	cfg.DiscardOutput = false
	dr, err := onepass.RunDelta(cfg, data, job, d)
	if err != nil {
		log.Fatal(err)
	}
	cl := onepass.NewCluster(cfg)
	v2 := onepass.DeltaDataset(data, d, cfg.BlockSize)
	if err := cl.Register(v2); err != nil {
		log.Fatal(err)
	}
	job.InputPath = v2.Path
	job.RetainOutput = true
	full, err := cl.RunJob(job)
	if err != nil {
		log.Fatal(err)
	}
	fullDisk := cl.DiskBytesRead()

	st := dr.Stats
	fmt.Printf("Incremental vs full re-run: %s, delta %.3g (seed %d)\n", job.Name, d.DirtyFrac, d.Seed)
	fmt.Printf("  base:        %d blocks, makespan %.2fs, %s disk read (priming)\n",
		st.BaseBlocks, dr.Base.Makespan.Seconds(), metrics.FormatBytes(st.BaseDiskReadBytes))
	fmt.Printf("  delta:       %d dirty + %d appended blocks\n", st.DirtyBlocks, st.AppendedBlocks)
	fmt.Printf("  incremental: makespan %.2fs, %s disk read, %d/%d keys re-folded, state %s\n",
		dr.Incremental.Makespan.Seconds(), metrics.FormatBytes(st.IncrementalDiskReadBytes),
		st.AffectedKeys, st.TotalKeys, metrics.FormatBytes(float64(st.StateBytes)))
	fmt.Printf("  full re-run: makespan %.2fs, %s disk read\n",
		full.Makespan.Seconds(), metrics.FormatBytes(fullDisk))

	if dr.Incremental.OutputChecksum != full.OutputChecksum || !sameOutput(dr.Incremental.Output, full.Output) {
		fmt.Printf("  verdict: OUTPUT DIVERGED (incremental %016x, full %016x)\n",
			dr.Incremental.OutputChecksum, full.OutputChecksum)
		os.Exit(1)
	}
	fmt.Printf("  verdict: byte-identical output (checksum %016x, %d keys)\n",
		full.OutputChecksum, len(full.Output))
	if st.IncrementalDiskReadBytes < fullDisk {
		fmt.Printf("  verdict: incremental read strictly fewer disk bytes (%s < %s)\n",
			metrics.FormatBytes(st.IncrementalDiskReadBytes), metrics.FormatBytes(fullDisk))
	} else {
		fmt.Printf("  verdict: incremental read no fewer disk bytes (%s >= %s; preserved state rivals the input at this scale)\n",
			metrics.FormatBytes(st.IncrementalDiskReadBytes), metrics.FormatBytes(fullDisk))
	}
}

func sameOutput(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

// diagnostics is the runjob -json block for real-time (non-deterministic)
// run observability, kept out of the Result proper so serial and pooled
// runs still serialize byte-identically once this key is stripped.
type diagnostics struct {
	Pool poolStats `json:"pool"`
}

// poolStats mirrors sim.WorkStats for JSON consumers.
type poolStats struct {
	Dispatched  int64   `json:"dispatched"`
	MaxInFlight int64   `json:"max_in_flight"`
	BusyMS      float64 `json:"busy_ms"`
}
