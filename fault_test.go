package onepass

import (
	"bytes"
	"testing"
)

// faultedAt builds a one-failure schedule striking node at a fraction of a
// baseline makespan.
func faultedAt(node int, base Duration, frac float64) FaultSchedule {
	return FaultSchedule{Faults: []Fault{{
		Kind: NodeFailure, Node: node, At: Duration(float64(base) * frac)}}}
}

// workEnd returns when the run's last reduce span closed — the real end of
// work. Makespan itself is padded to the metrics sampler's final tick, so
// timing faults against it would schedule them after the job finished.
func workEnd(t *testing.T, res *Result) Duration {
	t.Helper()
	_, end, ok := res.Timeline.PhaseWindow("reduce")
	if !ok {
		t.Fatal("run has no reduce spans")
	}
	return Duration(end)
}

// TestFaultEquivalenceAcrossEngines is the PR's acceptance statement: every
// engine, hit by a node failure timed to land mid-run, recovers to output
// byte-identical to its fault-free run.
func TestFaultEquivalenceAcrossEngines(t *testing.T) {
	for _, e := range Engines() {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			w := Sessionization(tinyClicks())
			base, err := RunWorkload(tinyConfig(e), w, 256<<10)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyConfig(e)
			cfg.Faults = faultedAt(3, workEnd(t, base), 0.3)
			faulted, err := RunWorkload(cfg, Sessionization(tinyClicks()), 256<<10)
			if err != nil {
				t.Fatal(err)
			}
			if got := faulted.Counters.Get("faults.injected"); got != 1 {
				t.Fatalf("faults.injected = %v, want 1", got)
			}
			if faulted.OutputPairs != base.OutputPairs {
				t.Fatalf("output pairs %d, fault-free %d", faulted.OutputPairs, base.OutputPairs)
			}
			if faulted.OutputChecksum != base.OutputChecksum {
				t.Fatalf("output checksum %016x, fault-free %016x", faulted.OutputChecksum, base.OutputChecksum)
			}
			if len(faulted.Output) != len(base.Output) {
				t.Fatalf("output has %d keys, fault-free %d", len(faulted.Output), len(base.Output))
			}
			for k, v := range base.Output {
				if faulted.Output[k] != v {
					t.Fatalf("key %q = %q, fault-free %q", k, faulted.Output[k], v)
				}
			}
		})
	}
}

// TestFaultDeterminism: the same schedule and seed reproduce the run byte
// for byte, traces included.
func TestFaultDeterminism(t *testing.T) {
	for _, e := range []Engine{Hadoop, MapReduceOnline, HashIncremental} {
		e := e
		t.Run(e.String(), func(t *testing.T) {
			run := func() (*Result, []byte) {
				cfg := tinyConfig(e)
				cfg.Faults = ChaosFaults(7, cfg.Nodes, Duration(200e6)) // 200ms horizon: mid-run for these sizes
				tl := NewTraceLog()
				cfg.Trace = tl
				res, err := RunWorkload(cfg, PerUserCount(tinyClicks()), 256<<10)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := tl.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				return res, buf.Bytes()
			}
			res1, trace1 := run()
			res2, trace2 := run()
			if res1.Makespan != res2.Makespan || res1.OutputChecksum != res2.OutputChecksum {
				t.Fatalf("runs diverged: makespan %v vs %v, checksum %016x vs %016x",
					res1.Makespan, res2.Makespan, res1.OutputChecksum, res2.OutputChecksum)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Fatal("traces differ between identical faulted runs")
			}
		})
	}
}

// TestFaultPastCompletionIsCancelled is the regression test for the old
// injector, which slept until the fault time unconditionally and stretched
// the measured makespan even when the job had long finished.
func TestFaultPastCompletionIsCancelled(t *testing.T) {
	w := PerUserCount(tinyClicks())
	base, err := RunWorkload(tinyConfig(Hadoop), w, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(Hadoop)
	cfg.Faults = FaultSchedule{Faults: []Fault{{
		Kind: NodeFailure, Node: 1, At: base.Makespan * 100}}}
	late, err := RunWorkload(cfg, PerUserCount(tinyClicks()), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if late.Makespan != base.Makespan {
		t.Fatalf("a fault scheduled past completion stretched the makespan: %v vs %v",
			late.Makespan, base.Makespan)
	}
	if got := late.Counters.Get("faults.injected"); got != 0 {
		t.Fatalf("faults.injected = %v, want 0", got)
	}
}

// TestDegradationFaultsSlowButDoNotChangeOutput: the three windowed
// degradations must cost time, never answers.
func TestDegradationFaultsSlowButDoNotChangeOutput(t *testing.T) {
	w := Sessionization(tinyClicks())
	base, err := RunWorkload(tinyConfig(Hadoop), w, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{
		"disk-slow@0s:n1x50",
		"net-slow@0s:n1x50",
		"straggler@0s:n1x50",
	} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			cfg := tinyConfig(Hadoop)
			var err error
			if cfg.Faults, err = ParseFaults(spec); err != nil {
				t.Fatal(err)
			}
			res, err := RunWorkload(cfg, Sessionization(tinyClicks()), 256<<10)
			if err != nil {
				t.Fatal(err)
			}
			if workEnd(t, res) <= workEnd(t, base) {
				t.Fatalf("degradation did not slow the run: %v vs fault-free %v",
					workEnd(t, res), workEnd(t, base))
			}
			if res.OutputChecksum != base.OutputChecksum || res.OutputPairs != base.OutputPairs {
				t.Fatal("degradation changed the output")
			}
		})
	}
}

// TestFaultValidationAtAPI: an invalid schedule is rejected before the run
// starts rather than panicking inside the simulation.
func TestFaultValidationAtAPI(t *testing.T) {
	w := PerUserCount(tinyClicks())
	cfg := tinyConfig(Hadoop)
	cfg.Faults = FaultSchedule{Faults: []Fault{{Kind: NodeFailure, Node: 99, At: 0}}}
	if _, err := RunWorkload(cfg, w, 64<<10); err == nil {
		t.Fatal("out-of-range fault node must be rejected")
	}
}
